// Copyright 2026 The QPGC Authors.

#include "core/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gen/uniform.h"
#include "reach/queries.h"
#include "test_util.h"

namespace qpgc {
namespace {

TEST(SerializationTest, ReachRoundTrip) {
  const Graph g = GenerateUniform(120, 400, 1, 3);
  const ReachCompression rc = CompressR(g);
  const std::string path = ::testing::TempDir() + "/qpgc_reach_artifact.txt";
  ASSERT_TRUE(SaveReachCompression(rc, path).ok());
  auto loaded = LoadReachCompression(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEquivalentReachCompression(rc, loaded.value());
  EXPECT_EQ(loaded.value().original_size, rc.original_size);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadedArtifactAnswersQueries) {
  const Graph g = GenerateUniform(100, 350, 1, 5);
  const ReachCompression rc = CompressR(g);
  const std::string path = ::testing::TempDir() + "/qpgc_reach_q.txt";
  ASSERT_TRUE(SaveReachCompression(rc, path).ok());
  const ReachCompression loaded = LoadReachCompression(path).value();
  for (const auto& q : RandomReachQueries(g.num_nodes(), 100, 7)) {
    EXPECT_EQ(AnswerOnCompressed(loaded, q, PathMode::kReflexive,
                                 ReachAlgorithm::kBfs),
              EvalReach(g, q.u, q.v, PathMode::kReflexive,
                        ReachAlgorithm::kBfs));
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, PatternRoundTrip) {
  const Graph g = GenerateUniform(120, 400, 4, 9);
  const PatternCompression pc = CompressB(g);
  const std::string path = ::testing::TempDir() + "/qpgc_pattern_artifact.txt";
  ASSERT_TRUE(SavePatternCompression(pc, path).ok());
  auto loaded = LoadPatternCompression(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEquivalentPatternCompression(pc, loaded.value());
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/qpgc_bad_magic.txt";
  {
    std::ofstream out(path);
    out << "not-an-artifact\n1 1 1\n0\n0\n0\n0\n";
  }
  EXPECT_FALSE(LoadReachCompression(path).ok());
  EXPECT_FALSE(LoadPatternCompression(path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsTruncated) {
  const Graph g = GenerateUniform(50, 150, 1, 11);
  const ReachCompression rc = CompressR(g);
  const std::string path = ::testing::TempDir() + "/qpgc_trunc.txt";
  ASSERT_TRUE(SaveReachCompression(rc, path).ok());
  // Truncate the file to half.
  std::string content;
  {
    std::ifstream in(path);
    content.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(path);
    out << content.substr(0, content.size() / 2);
  }
  EXPECT_FALSE(LoadReachCompression(path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsOutOfRangeNodeMap) {
  const std::string path = ::testing::TempDir() + "/qpgc_badmap.txt";
  {
    std::ofstream out(path);
    // 1 class, 2 nodes, node 1 mapped to class 7 (out of range).
    out << "qpgc-reach-v2\n1 2 4\n0\n0\n0 7\n0\n0\n";
  }
  EXPECT_FALSE(LoadReachCompression(path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFile) {
  EXPECT_FALSE(LoadReachCompression("/nonexistent/rc.txt").ok());
  EXPECT_FALSE(LoadPatternCompression("/nonexistent/pc.txt").ok());
}

}  // namespace
}  // namespace qpgc
