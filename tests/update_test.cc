// Copyright 2026 The QPGC Authors.

#include "graph/update.h"

#include <gtest/gtest.h>

#include "gen/uniform.h"
#include "gen/update_gen.h"

namespace qpgc {
namespace {

TEST(UpdateTest, ApplyInsertAndDelete) {
  Graph g(3);
  g.AddEdge(0, 1);
  UpdateBatch batch;
  batch.Insert(1, 2);
  batch.Delete(0, 1);
  const UpdateBatch effective = ApplyBatch(g, batch);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(effective.size(), 2u);
  EXPECT_EQ(effective.NumInsertions(), 1u);
  EXPECT_EQ(effective.NumDeletions(), 1u);
}

TEST(UpdateTest, NoOpInsertDropped) {
  Graph g(2);
  g.AddEdge(0, 1);
  UpdateBatch batch;
  batch.Insert(0, 1);  // already present
  const UpdateBatch effective = ApplyBatch(g, batch);
  EXPECT_TRUE(effective.empty());
}

TEST(UpdateTest, NoOpDeleteDropped) {
  Graph g(2);
  UpdateBatch batch;
  batch.Delete(0, 1);  // not present
  const UpdateBatch effective = ApplyBatch(g, batch);
  EXPECT_TRUE(effective.empty());
}

TEST(UpdateTest, CancellingPairDropped) {
  // The paper's minDelta "cancellation" rule at batch level: insert then
  // delete the same edge has no net effect.
  Graph g(2);
  UpdateBatch batch;
  batch.Insert(0, 1);
  batch.Delete(0, 1);
  const UpdateBatch effective = ApplyBatch(g, batch);
  EXPECT_TRUE(effective.empty());
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(UpdateTest, DeleteThenReinsertDropped) {
  Graph g(2);
  g.AddEdge(0, 1);
  UpdateBatch batch;
  batch.Delete(0, 1);
  batch.Insert(0, 1);
  const UpdateBatch effective = ApplyBatch(g, batch);
  EXPECT_TRUE(effective.empty());
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(UpdateTest, LastWriteWins) {
  Graph g(2);
  UpdateBatch batch;
  batch.Insert(0, 1);
  batch.Delete(0, 1);
  batch.Insert(0, 1);
  const UpdateBatch effective = ApplyBatch(g, batch);
  ASSERT_EQ(effective.size(), 1u);
  EXPECT_TRUE(effective.updates[0].is_insert);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(UpdateGenTest, InsertionsAreFresh) {
  const Graph g = GenerateUniform(100, 300, 1, 5);
  const UpdateBatch batch = RandomInsertions(g, 50, 7);
  EXPECT_EQ(batch.size(), 50u);
  for (const auto& up : batch.updates) {
    EXPECT_TRUE(up.is_insert);
    EXPECT_FALSE(g.HasEdge(up.u, up.v));
    EXPECT_NE(up.u, up.v);
  }
}

TEST(UpdateGenTest, DeletionsExist) {
  const Graph g = GenerateUniform(100, 300, 1, 5);
  const UpdateBatch batch = RandomDeletions(g, 40, 9);
  EXPECT_EQ(batch.size(), 40u);
  for (const auto& up : batch.updates) {
    EXPECT_FALSE(up.is_insert);
    EXPECT_TRUE(g.HasEdge(up.u, up.v));
  }
}

TEST(UpdateGenTest, DeletionsCappedByEdgeCount) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const UpdateBatch batch = RandomDeletions(g, 100, 11);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(UpdateGenTest, MixedComposition) {
  const Graph g = GenerateUniform(100, 300, 1, 5);
  const UpdateBatch batch = RandomMixed(g, 60, 0.5, 13);
  EXPECT_EQ(batch.size(), 60u);
  EXPECT_EQ(batch.NumInsertions(), 30u);
  EXPECT_EQ(batch.NumDeletions(), 30u);
}

}  // namespace
}  // namespace qpgc
