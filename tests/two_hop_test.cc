// Copyright 2026 The QPGC Authors.

#include "index/two_hop.h"

#include <gtest/gtest.h>

#include "gen/random_models.h"
#include "gen/uniform.h"
#include "reach/compress_r.h"
#include "reach/queries.h"

namespace qpgc {
namespace {

TEST(TwoHopTest, ChainQueries) {
  Graph g(5);
  for (NodeId v = 0; v + 1 < 5; ++v) g.AddEdge(v, v + 1);
  const TwoHopIndex idx = TwoHopIndex::Build(g);
  EXPECT_TRUE(idx.Reaches(0, 4));
  EXPECT_TRUE(idx.Reaches(2, 3));
  EXPECT_FALSE(idx.Reaches(4, 0));
  EXPECT_TRUE(idx.Reaches(3, 3, PathMode::kReflexive));
  EXPECT_FALSE(idx.Reaches(3, 3, PathMode::kNonEmpty));
}

TEST(TwoHopTest, CycleQueries) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  const TwoHopIndex idx = TwoHopIndex::Build(g);
  EXPECT_TRUE(idx.Reaches(0, 0, PathMode::kNonEmpty));  // on cycle
  EXPECT_TRUE(idx.Reaches(1, 0));
  EXPECT_TRUE(idx.Reaches(0, 3));
  EXPECT_FALSE(idx.Reaches(3, 0));
}

class TwoHopAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TwoHopAgreementTest, MatchesBfsOnAllPairs) {
  const uint64_t seed = GetParam();
  Graph g;
  switch (seed % 3) {
    case 0:
      g = GenerateUniform(70, 200, 1, seed);
      break;
    case 1:
      g = PreferentialAttachment(70, 3, 0.5, seed);
      break;
    default:
      g = CitationDag(70, 4, 0.5, seed);
      break;
  }
  const TwoHopIndex idx = TwoHopIndex::Build(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(idx.Reaches(u, v), BfsReaches(g, u, v, PathMode::kReflexive))
          << "seed=" << seed << " (" << u << "," << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoHopAgreementTest,
                         ::testing::Range<uint64_t>(1, 10));

// The paper's claim: existing index techniques apply to Gr unchanged. Build
// the 2-hop index ON the compressed graph and answer original queries
// through the node map.
TEST(TwoHopTest, BuildsOnCompressedGraphUnchanged) {
  const Graph g = PreferentialAttachment(150, 3, 0.5, 77);
  const ReachCompression rc = CompressR(g);
  const TwoHopIndex on_g = TwoHopIndex::Build(g);
  const TwoHopIndex on_gr = TwoHopIndex::Build(rc.gr);
  const auto queries = RandomReachQueries(g.num_nodes(), 400, 78);
  for (const auto& q : queries) {
    const bool truth = on_g.Reaches(q.u, q.v);
    const bool via_gr =
        q.u == q.v ||
        on_gr.Reaches(rc.node_map[q.u], rc.node_map[q.v], PathMode::kNonEmpty);
    EXPECT_EQ(via_gr, truth) << "(" << q.u << "," << q.v << ")";
  }
  // And the index on Gr is smaller — the Fig. 12(d) effect.
  EXPECT_LE(on_gr.MemoryBytes(), on_g.MemoryBytes());
}

TEST(TwoHopTest, LabelEntriesPositive) {
  const Graph g = GenerateUniform(50, 150, 1, 5);
  const TwoHopIndex idx = TwoHopIndex::Build(g);
  EXPECT_GT(idx.LabelEntries(), 0u);
  EXPECT_GT(idx.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace qpgc
