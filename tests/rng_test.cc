// Copyright 2026 The QPGC Authors.

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace qpgc {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t x = rng.UniformInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // crude uniformity check
}

TEST(RngTest, UniformIsRoughlyUnbiased) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.1, 0.01);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfTest, RankZeroMostFrequent) {
  Rng rng(23);
  const ZipfSampler zipf(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
}

TEST(ZipfTest, SingleValueAlphabet) {
  Rng rng(29);
  const ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, CoversSupport) {
  Rng rng(31);
  const ZipfSampler zipf(4, 0.5);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_GT(c, 0);
}

}  // namespace
}  // namespace qpgc
