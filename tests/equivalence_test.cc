// Copyright 2026 The QPGC Authors.

#include "reach/equivalence.h"

#include <gtest/gtest.h>

#include "gen/random_models.h"
#include "gen/uniform.h"

namespace qpgc {
namespace {

TEST(EquivalenceTest, ParallelSiblingsMerge) {
  // 0 -> {2,3}, 1 -> {2,3}: nodes 0 and 1 share ancestors (none) and
  // descendants {2,3} — equivalent. 2 and 3 share ancestors {0,1} and
  // descendants (none) — equivalent.
  Graph g(4);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  const ReachPartition p = ComputeReachEquivalence(g);
  EXPECT_EQ(p.num_classes, 2u);
  EXPECT_EQ(p.class_of[0], p.class_of[1]);
  EXPECT_EQ(p.class_of[2], p.class_of[3]);
  EXPECT_NE(p.class_of[0], p.class_of[2]);
}

TEST(EquivalenceTest, DifferentDescendantsSeparate) {
  // 0 -> 2, 1 -> 3: desc differ.
  Graph g(4);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  const ReachPartition p = ComputeReachEquivalence(g);
  EXPECT_NE(p.class_of[0], p.class_of[1]);
}

TEST(EquivalenceTest, CyclicClassIsItsScc) {
  // Cycle {0,1} and a sibling trivial node 2 with the same DAG profile:
  // 3 -> {0, 2}, {0,1,2} -> 4. The cyclic pair must NOT merge with node 2
  // (members of a cyclic class reach themselves; 2 does not).
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(3, 0);
  g.AddEdge(3, 2);
  g.AddEdge(0, 4);
  g.AddEdge(2, 4);
  const ReachPartition p = ComputeReachEquivalence(g);
  EXPECT_EQ(p.class_of[0], p.class_of[1]);  // same SCC
  EXPECT_NE(p.class_of[0], p.class_of[2]);  // augmentation separates
  EXPECT_TRUE(p.cyclic[p.class_of[0]]);
  EXPECT_FALSE(p.cyclic[p.class_of[2]]);
}

TEST(EquivalenceTest, IsolatedNodesMerge) {
  Graph g(3);
  g.AddEdge(0, 1);
  // Nodes 2 is isolated; node 1 is a sink with ancestor {0} — not equal.
  const ReachPartition p = ComputeReachEquivalence(g);
  EXPECT_NE(p.class_of[1], p.class_of[2]);
  Graph h(3);  // all isolated: one class
  const ReachPartition q = ComputeReachEquivalence(h);
  EXPECT_EQ(q.num_classes, 1u);
}

TEST(EquivalenceTest, MembersConsistentWithClassOf) {
  const Graph g = GenerateUniform(100, 300, 1, 3);
  const ReachPartition p = ComputeReachEquivalence(g);
  size_t total = 0;
  for (NodeId c = 0; c < p.num_classes; ++c) {
    total += p.members[c].size();
    for (NodeId v : p.members[c]) EXPECT_EQ(p.class_of[v], c);
  }
  EXPECT_EQ(total, g.num_nodes());
}

// The blocked refinement must agree exactly with the paper's per-node BFS
// reference, across generator families and block sizes.
class EquivalenceAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceAgreementTest, BlockedMatchesReference) {
  const uint64_t seed = GetParam();
  Graph g;
  switch (seed % 4) {
    case 0:
      g = GenerateUniform(120, 420, 1, seed);
      break;
    case 1:
      g = PreferentialAttachment(120, 3, 0.5, seed);
      break;
    case 2:
      g = CitationDag(120, 4, 0.5, seed);
      break;
    default:
      g = LayeredRandom(120, 5, 3, 0.1, seed);
      break;
  }
  const ReachPartition fast = ComputeReachEquivalence(g, /*block_cols=*/19);
  const ReachPartition ref = ComputeReachEquivalenceRef(g);
  EXPECT_EQ(fast.CanonicalClasses(), ref.CanonicalClasses())
      << "seed=" << seed;
  // Cyclic flags must agree per class.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(fast.cyclic[fast.class_of[v]], ref.cyclic[ref.class_of[v]]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceAgreementTest,
                         ::testing::Range<uint64_t>(1, 17));

TEST(EquivalenceTest, EmptyGraph) {
  Graph g(0);
  const ReachPartition p = ComputeReachEquivalence(g);
  EXPECT_EQ(p.num_classes, 0u);
}

}  // namespace
}  // namespace qpgc
