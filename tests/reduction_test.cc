// Copyright 2026 The QPGC Authors.

#include "graph/reduction.h"

#include <gtest/gtest.h>

#include "gen/uniform.h"
#include "graph/closure.h"
#include "graph/condensation.h"

namespace qpgc {
namespace {

TEST(ReductionTest, RemovesTransitiveEdge) {
  Graph dag(3);
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 2);
  dag.AddEdge(0, 2);  // redundant
  const Graph r = TransitiveReductionDag(dag);
  EXPECT_EQ(r.num_edges(), 2u);
  EXPECT_TRUE(r.HasEdge(0, 1));
  EXPECT_TRUE(r.HasEdge(1, 2));
  EXPECT_FALSE(r.HasEdge(0, 2));
}

TEST(ReductionTest, DiamondKept) {
  Graph dag(4);
  dag.AddEdge(0, 1);
  dag.AddEdge(0, 2);
  dag.AddEdge(1, 3);
  dag.AddEdge(2, 3);
  const Graph r = TransitiveReductionDag(dag);
  EXPECT_EQ(r.num_edges(), 4u);  // nothing redundant in a diamond
}

TEST(ReductionTest, SelfLoopsPreserved) {
  Graph dag(2);
  dag.AddEdge(0, 0);
  dag.AddEdge(0, 1);
  const Graph r = TransitiveReductionDag(dag);
  EXPECT_TRUE(r.HasEdge(0, 0));
  EXPECT_TRUE(r.HasEdge(0, 1));
}

TEST(ReductionTest, SelfLoopNotAWitness) {
  // 0 has a self-loop and an edge to 1; the self-loop must not count as an
  // alternate path 0 -> 1.
  Graph dag(2);
  dag.AddEdge(0, 0);
  dag.AddEdge(0, 1);
  const Graph r = TransitiveReductionDag(dag);
  EXPECT_TRUE(r.HasEdge(0, 1));
}

TEST(ReductionTest, PreservesClosure) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = GenerateUniform(60, 220, 1, seed);
    const Graph dag = BuildCondensation(g).dag;
    const Graph r = TransitiveReductionDag(dag, /*block_cols=*/13);
    const BitMatrix before = DagClosure(dag, {});
    const BitMatrix after = DagClosure(r, {});
    for (NodeId u = 0; u < dag.num_nodes(); ++u) {
      for (NodeId v = 0; v < dag.num_nodes(); ++v) {
        EXPECT_EQ(before.Test(u, v), after.Test(u, v)) << "seed " << seed;
      }
    }
  }
}

TEST(ReductionTest, ReductionIsMinimal) {
  // Removing any further edge from the reduction must change the closure.
  const Graph g = GenerateUniform(30, 80, 1, 9);
  const Graph dag = BuildCondensation(g).dag;
  Graph r = TransitiveReductionDag(dag);
  const BitMatrix closure = DagClosure(r, {});
  for (const auto& [u, v] : r.EdgeList()) {
    if (u == v) continue;
    Graph pruned = r;
    pruned.RemoveEdge(u, v);
    const BitMatrix c2 = DagClosure(pruned, {});
    EXPECT_FALSE(c2.Test(u, v)) << "edge (" << u << "," << v
                                << ") was redundant in the reduction";
  }
}

TEST(ReductionTest, CountMatchesMaterialized) {
  const Graph g = GenerateUniform(50, 200, 1, 10);
  const Graph dag = BuildCondensation(g).dag;
  const Graph r = TransitiveReductionDag(dag);
  EXPECT_EQ(CountRedundantEdgesDag(dag), dag.num_edges() - r.num_edges());
}

TEST(ReductionTest, EmptyGraph) {
  Graph dag(0);
  const Graph r = TransitiveReductionDag(dag);
  EXPECT_EQ(r.num_nodes(), 0u);
}

}  // namespace
}  // namespace qpgc
