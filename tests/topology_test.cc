// Copyright 2026 The QPGC Authors.

#include "graph/topology.h"

#include <gtest/gtest.h>

#include "gen/uniform.h"
#include "reach/equivalence.h"

namespace qpgc {
namespace {

TEST(TopologyTest, TopologicalOrderRespectsEdges) {
  Graph g(5);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  const auto order = TopologicalOrder(g);
  std::vector<size_t> pos(5);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  g.ForEachEdge([&](NodeId u, NodeId v) { EXPECT_LT(pos[u], pos[v]); });
}

TEST(TopologyTest, SelfLoopsTolerated) {
  Graph g(3);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const auto order = TopologicalOrder(g);
  EXPECT_EQ(order.size(), 3u);
}

TEST(TopologyTest, ReverseTopoIsReversed) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const auto fwd = TopologicalOrder(g);
  auto rev = ReverseTopologicalOrder(g);
  std::reverse(rev.begin(), rev.end());
  EXPECT_EQ(fwd, rev);
}

TEST(TopologyTest, ReachTopoRanksChain) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  const auto r = ReachTopoRanks(g);
  EXPECT_EQ(r[3], 0u);
  EXPECT_EQ(r[2], 1u);
  EXPECT_EQ(r[1], 2u);
  EXPECT_EQ(r[0], 3u);
}

TEST(TopologyTest, SccMembersShareRank) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  const auto r = ReachTopoRanks(g);
  EXPECT_EQ(r[0], r[1]);
  EXPECT_GT(r[0], r[2]);
}

// Lemma 7: (u, v) in Re implies r(u) = r(v) — on random graphs.
TEST(TopologyTest, Lemma7RankInvariantOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = GenerateUniform(120, 400, 1, seed);
    const auto ranks = ReachTopoRanks(g);
    const ReachPartition part = ComputeReachEquivalenceRef(g);
    for (const auto& cls : part.members) {
      for (size_t i = 1; i < cls.size(); ++i) {
        EXPECT_EQ(ranks[cls[i]], ranks[cls[0]])
            << "Lemma 7 violated, seed " << seed;
      }
    }
  }
}

TEST(TopologyTest, WellFoundedBasics) {
  // 0 -> 1 -> (2 <-> 3); 4 isolated.
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);
  const auto wf = WellFounded(g);
  EXPECT_FALSE(wf[0]);  // reaches the cycle
  EXPECT_FALSE(wf[1]);
  EXPECT_FALSE(wf[2]);  // on the cycle
  EXPECT_TRUE(wf[4]);
}

TEST(TopologyTest, BisimRanksLeafAndCycle) {
  // Leaf: rank 0. Cyclic sink SCC: rank -inf. Node above the cycle: -inf
  // children contribute their own rank.
  Graph g(4);
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);  // cyclic sink SCC {1,2}
  g.AddEdge(3, 1);  // above the cycle
  const auto rb = BisimRanks(g);
  EXPECT_EQ(rb[0], 0);  // isolated leaf
  EXPECT_EQ(rb[1], kRankNegInf);
  EXPECT_EQ(rb[2], kRankNegInf);
  EXPECT_EQ(rb[3], kRankNegInf);  // NWF child contributes rb, not rb+1
}

TEST(TopologyTest, BisimRanksWellFoundedChain) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const auto rb = BisimRanks(g);
  EXPECT_EQ(rb[2], 0);
  EXPECT_EQ(rb[1], 1);
  EXPECT_EQ(rb[0], 2);
}

TEST(TopologyTest, BisimRanksMixedChildren) {
  // 4 -> leaf(5) and 4 -> cycle{1,2}: rank = max(0 + 1, -inf) = 1.
  Graph g(6);
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  g.AddEdge(4, 5);
  g.AddEdge(4, 1);
  const auto rb = BisimRanks(g);
  EXPECT_EQ(rb[5], 0);
  EXPECT_EQ(rb[4], 1);
}

TEST(TopologyTest, SelfLoopIsNegInfRank) {
  Graph g(1);
  g.AddEdge(0, 0);
  const auto rb = BisimRanks(g);
  EXPECT_EQ(rb[0], kRankNegInf);
}

}  // namespace
}  // namespace qpgc
