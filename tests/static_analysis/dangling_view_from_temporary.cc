// Copyright 2026 The QPGC Authors.
//
// Negative-compile fixture: constructs a QPGC_GSL_POINTER view
// (ReversedView) over a QPGC_GSL_OWNER temporary (Graph). The owner is
// destroyed at the end of the full expression; the view's first use reads
// freed adjacency. Under Clang with -Werror=dangling-gsl this file MUST
// fail to compile (ctest asserts the failure via WILL_FAIL); if it ever
// compiles, the Owner/Pointer annotations have stopped biting. The
// matching clean version lives in lifetime_positive.cc.

#include "graph/graph.h"
#include "graph/graph_view.h"

namespace {

qpgc::Graph MakeGraph() { return qpgc::Graph(3); }

}  // namespace

int main() {
  // THE PLANTED DANGLE: a zero-copy view over a graph that no longer
  // exists on the next line.
  const qpgc::ReversedView<qpgc::Graph> rv(MakeGraph());
  return static_cast<int>(rv.OutNeighbors(0).size());
}
