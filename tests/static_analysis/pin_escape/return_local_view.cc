// Copyright 2026 The QPGC Authors.
//
// Planted [return-local-view] violation: a span constructed over a
// function-local owner and returned. -Wreturn-stack-address catches
// `return local;`; the span wrapped around the local is invisible to the
// compiler, which is exactly the gap this analyzer rule fills.
// tools/qpgc_pin_escape.py MUST flag it; ctest runs it over this file
// WILL_FAIL. The clean shapes (return the owner by value, or view a
// parameter) are in clean_control.cc.

#include <span>
#include <vector>

#include "graph/csr.h"

namespace qpgc {

std::span<const NodeId> BoundaryExits(const CsrGraph& gr) {
  std::vector<NodeId> exits;
  for (NodeId u = 0; u < gr.num_nodes(); ++u) {
    if (gr.OutDegree(u) == 0) exits.push_back(u);
  }
  return std::span<const NodeId>(exits);
}

}  // namespace qpgc
