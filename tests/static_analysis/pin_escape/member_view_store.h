// Copyright 2026 The QPGC Authors.
//
// Planted [member-view-store] violations: snapshot-derived views stored in
// members of a non-view class. Both outlive every full expression, so no
// pin scope can cover them — by the next publish-and-retire cycle they
// point into BufferPool-recycled storage. tools/qpgc_pin_escape.py MUST
// flag both; ctest runs it over this file WILL_FAIL. The fix is to hold
// the owning shared_ptr (clean shape: SnapshotHolder in the analyzer's
// unit tests) or to annotate the class QPGC_GSL_POINTER if it is a view.

#include <span>

#include "serve/snapshot.h"

namespace qpgc {

class StaleResultCache {
 public:
  void Remember(const ServingSnapshot& snap) {
    members_ = snap.pattern_block_members(0);
    side_ = &snap;
  }

 private:
  std::span<const NodeId> members_;
  const ServingSnapshot* side_ = nullptr;
};

}  // namespace qpgc
