// Copyright 2026 The QPGC Authors.
//
// Positive control for the pin-escape analyzer fixtures: every idiom the
// serving layer actually uses, written the safe way. The analyzer
// (tools/qpgc_pin_escape.py --files) MUST report this file clean; if a
// rule starts flagging any shape here it has rotted into noise. The three
// sibling fixtures each plant one escape and MUST be flagged (ctest
// registers them WILL_FAIL). These fixtures are analyzed textually, never
// compiled — qpgc_lint.py skips this directory (SKIP_DIRS) because the
// siblings plant exactly what it bans.

#include "serve/query_service.h"
#include "serve/snapshot_manager.h"

namespace qpgc {

// A pin bound by value covers every view derived from it.
size_t NamedPinViews(const SnapshotManager& mgr) {
  const auto snap = mgr.Acquire();
  const CsrGraph& gr = snap->reach_gr();
  std::span<const NodeId> members = snap->pattern_block_members(0);
  return gr.num_nodes() + members.size();
}

// Value results through a pin temporary are safe: the pin lives for the
// whole full expression, and nothing borrowed survives it.
bool ValueThroughTemporary(const QueryService& svc, NodeId u, NodeId v) {
  return svc.Pin()->Reach(u, v, PathMode::kNonEmpty);
}

uint64_t VersionThroughTemporary(const SnapshotManager& mgr) {
  return mgr.Acquire()->version();
}

// Borrowing from a parameter the caller owns is the caller's contract.
std::span<const NodeId> FirstRun(const CsrGraph& gr) {
  return gr.OutNeighbors(0);
}

}  // namespace qpgc
