// Copyright 2026 The QPGC Authors.
//
// Planted [pin-escape] violations: references and views bound through a
// pin *temporary*. The shared_ptr returned by Acquire()/Pin() dies at the
// end of each full expression, so every handle below reads retired buffers
// on first use — exactly the shape Clang cannot see (lifetime extension
// does not flow through operator->, and libstdc++'s shared_ptr is not
// lifetimebound-annotated). tools/qpgc_pin_escape.py MUST flag all three;
// ctest runs it over this file WILL_FAIL. The clean version of each shape
// is in clean_control.cc.

#include "serve/query_service.h"
#include "serve/snapshot_manager.h"

namespace qpgc {

size_t EscapedReference(const SnapshotManager& mgr) {
  const auto& gr = mgr.Acquire()->reach_gr();
  return gr.num_nodes();
}

size_t EscapedSpan(const SnapshotManager& mgr) {
  std::span<const NodeId> members = mgr.Acquire()->pattern_block_members(0);
  return members.size();
}

size_t EscapedSpanCopy(const QueryService& svc) {
  auto members = svc.Pin()->pattern_block_members(0);
  return members.size();
}

}  // namespace qpgc
