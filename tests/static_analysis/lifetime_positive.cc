// Copyright 2026 The QPGC Authors.
//
// Positive control for the lifetime negative-compile tests: the same API
// surface as the three violation fixtures, but with every owner named and
// outliving its views. This file MUST compile cleanly under Clang with
// -Werror=dangling -Werror=dangling-gsl -Werror=return-stack-address — it
// proves the lifetimebound / GSL Owner+Pointer annotations
// (src/util/lifetime_annotations.h) are well-formed and do not reject the
// repo's safe idioms, so a failure in the sibling fixtures can only come
// from the lifetime analysis catching the planted dangle.

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "util/status.h"

namespace {

qpgc::Graph MakeGraph() { return qpgc::Graph(3); }

qpgc::Status MakeStatus() {
  return qpgc::Status::InvalidArgument("planted");
}

// Views over a parameter the caller owns: fine, and the annotation must
// not reject it.
size_t SumDegrees(const qpgc::Graph& g) {
  size_t total = 0;
  for (qpgc::NodeId u = 0; u < g.num_nodes(); ++u) {
    std::span<const qpgc::NodeId> run = g.OutNeighbors(u);
    total += run.size();
  }
  return total;
}

}  // namespace

int main() {
  // Owner named first; every handle below is tied to it.
  const qpgc::Graph g = MakeGraph();
  std::span<const qpgc::NodeId> out = g.OutNeighbors(0);
  const std::vector<qpgc::Label>& labels = g.labels();
  const qpgc::ReversedView<qpgc::Graph> rv(g);

  const qpgc::Status status = MakeStatus();
  const std::string& message = status.message();

  return (out.size() + labels.size() + rv.num_edges() + message.size() +
          SumDegrees(g)) > 0
             ? 0
             : 1;
}
