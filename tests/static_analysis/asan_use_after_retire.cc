// Copyright 2026 The QPGC Authors.
//
// Dynamic counterpart of the static lifetime gates: reproduces, at
// runtime, the exact bug class the pin-scope rule (docs/LIFETIMES.md,
// tools/qpgc_pin_escape.py) exists to prevent. A span obtained from a
// pinned snapshot is read after the pin is dropped, later publishes have
// recycled the frozen side through the BufferPool, and the manager itself
// is destroyed — a guaranteed heap-use-after-free.
//
// Built ONLY under QPGC_SANITIZE=address (tests/static_analysis/
// CMakeLists.txt) and registered WILL_FAIL: AddressSanitizer must abort
// the process with a non-zero exit. If this test ever "passes" (exits 0),
// ASan stopped seeing the dangle — e.g. the freeze buffers moved to an
// allocator ASan cannot poison — and the static rules have lost their
// runtime witness.
//
// NOTE: the escape below is written with named locals precisely so the
// textual gates (qpgc_lint [pin-ref], qpgc_pin_escape [pin-escape]) do not
// flag this file: the span outlives the *scope* of its named pin, which is
// the one shape only a runtime check can witness.

#include <cstdio>

#include "gen/uniform.h"
#include "serve/snapshot_manager.h"

namespace qpgc {
namespace {

int Run() {
  std::span<const NodeId> escaped;
  {
    SnapshotManager mgr(GenerateUniform(/*num_nodes=*/60, /*num_edges=*/140,
                                        /*num_labels=*/4, /*seed=*/11));
    {
      const auto snap = mgr.Acquire();
      // Find a non-empty block so the read below dereferences for sure.
      for (NodeId b = 0; escaped.empty() && b < 60; ++b) {
        escaped = snap->pattern_block_members(b);
      }
    }  // Pin dropped: the v1 side is retireable from here on.
    if (escaped.empty()) {
      std::fprintf(stderr, "no non-empty block; cannot plant the dangle\n");
      return 1;  // Still non-zero: WILL_FAIL stays satisfied, loudly.
    }
    // Recycle the unpinned side through the BufferPool and refreeze.
    mgr.Publish(FreezeMode::kFull);
    mgr.Publish(FreezeMode::kFull);
  }  // Manager destroyed: pool and sides freed.

  // THE PLANTED USE-AFTER-RETIRE: ASan aborts here.
  NodeId sink = 0;
  for (const NodeId v : escaped) sink += v;
  std::fprintf(stderr, "survived the dangling read (sink=%u)\n", sink);
  return 0;
}

}  // namespace
}  // namespace qpgc

int main() { return qpgc::Run(); }
