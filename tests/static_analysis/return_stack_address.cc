// Copyright 2026 The QPGC Authors.
//
// Negative-compile fixture: returns a reference obtained through a
// QPGC_LIFETIME_BOUND accessor on a function-local owner. The local dies
// at return; lifetimebound is what lets Clang see through the accessor
// call and diagnose it under -Werror=return-stack-address. This file MUST
// fail to compile (ctest asserts the failure via WILL_FAIL); if it ever
// compiles, the annotation has stopped propagating. The matching clean
// version lives in lifetime_positive.cc.

#include <string>

#include "util/status.h"

namespace {

// THE PLANTED DANGLE: message() borrows from `status`, which is destroyed
// at return.
const std::string& LeakedMessage() {
  const qpgc::Status status = qpgc::Status::IoError("planted");
  return status.message();
}

}  // namespace

int main() { return static_cast<int>(LeakedMessage().size()); }
