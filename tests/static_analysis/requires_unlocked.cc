// Copyright 2026 The QPGC Authors.
//
// Negative-compile fixture: calls a QPGC_REQUIRES(mu_) helper without
// holding mu_. Under Clang `-Wthread-safety -Werror` this file MUST fail
// to compile (ctest asserts the failure via WILL_FAIL); the matching clean
// version lives in thread_safety_positive.cc.

#include "util/thread_annotations.h"

namespace {

class Queue {
 public:
  void Push(int v) {
    qpgc::MutexLock lock(mu_);
    PushLocked(v);
  }

  // THE PLANTED VIOLATION: calling the must-hold-lock helper unlocked.
  void UnlockedPush(int v) { PushLocked(v); }

 private:
  void PushLocked(int v) QPGC_REQUIRES(mu_) { buffer_[count_++ % 8] = v; }

  qpgc::Mutex mu_;
  int buffer_[8] QPGC_GUARDED_BY(mu_) = {};
  int count_ QPGC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  queue.UnlockedPush(1);
  return 0;
}
