// Copyright 2026 The QPGC Authors.
//
// Negative-compile fixture: binds handles returned by QPGC_LIFETIME_BOUND
// accessors to temporaries that die at the end of the full expression.
// Under Clang with -Werror=dangling this file MUST fail to compile (ctest
// asserts the failure via WILL_FAIL); if it ever compiles, the
// lifetimebound annotations on the accessor surface have stopped biting.
// The matching clean version lives in lifetime_positive.cc.

#include <span>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace {

qpgc::Graph MakeGraph() { return qpgc::Graph(3); }

qpgc::Status MakeStatus() {
  return qpgc::Status::InvalidArgument("planted");
}

}  // namespace

int main() {
  // THE PLANTED DANGLES: the Graph / Status temporaries are destroyed
  // before the reference and the span are ever read.
  const std::string& message = MakeStatus().message();
  std::span<const qpgc::NodeId> out = MakeGraph().OutNeighbors(0);
  return static_cast<int>(message.size() + out.size());
}
