// Copyright 2026 The QPGC Authors.
//
// Positive control for the thread-safety negative-compile tests: the same
// shapes as the two violation fixtures, but with every contract honored.
// This file MUST compile cleanly under `-Wthread-safety -Werror` — it
// proves the annotation macros and the Mutex/MutexLock wrappers are
// well-formed, so a failure in the sibling fixtures can only come from
// Thread Safety Analysis catching the planted violation (not from an
// unrelated compile error).

#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    qpgc::MutexLock lock(mu_);
    ++value_;
  }

  int Read() const {
    qpgc::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable qpgc::Mutex mu_;
  int value_ QPGC_GUARDED_BY(mu_) = 0;
};

class Queue {
 public:
  void Push(int v) QPGC_EXCLUDES(mu_) {
    qpgc::MutexLock lock(mu_);
    PushLocked(v);
  }

 private:
  // Must-hold-lock helper, same shape as SnapshotManager::BufferPool's
  // TakeSpareLocked / StashSpareLocked.
  void PushLocked(int v) QPGC_REQUIRES(mu_) { buffer_[count_++ % 8] = v; }

  qpgc::Mutex mu_;
  int buffer_[8] QPGC_GUARDED_BY(mu_) = {};
  int count_ QPGC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  Queue queue;
  queue.Push(counter.Read());
  return 0;
}
