// Copyright 2026 The QPGC Authors.
//
// Negative-compile fixture: reads a QPGC_GUARDED_BY member without holding
// its mutex. Under Clang `-Wthread-safety -Werror` this file MUST fail to
// compile (ctest asserts the failure via WILL_FAIL); if it ever compiles,
// the annotation layer has stopped guarding anything. The matching clean
// version lives in thread_safety_positive.cc.

#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    qpgc::MutexLock lock(mu_);
    ++value_;
  }

  // THE PLANTED VIOLATION: reading value_ without mu_ held.
  int UnlockedRead() const { return value_; }

 private:
  mutable qpgc::Mutex mu_;
  int value_ QPGC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.UnlockedRead();
}
