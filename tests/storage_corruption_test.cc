// Copyright 2026 The QPGC Authors.
//
// Corruption robustness: a snapshot artifact of unknown provenance must
// never crash the reader — every mutation of the byte stream has to come
// back as a clean Status from LoadServingSnapshot / MmapSnapshot::Open
// under full verification (LoadOptions{true, true}; the trusted fast path
// deliberately skips payload checks, see storage/mmap_snapshot.h). The
// harness is deterministic: truncation at every section boundary plus a
// fixed ladder of interior lengths, one bit flipped in the header, the
// section table, and every section payload, plus targeted header-field
// lies (magic, version, counts, lengths). Runs under the CI ASan/UBSan
// job, so "no crash" includes "no out-of-bounds read while rejecting".

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/uniform.h"
#include "graph/graph.h"
#include "serve/snapshot_manager.h"
#include "storage/format.h"
#include "storage/mmap_snapshot.h"
#include "storage/snapshot_io.h"

namespace qpgc::storage {
namespace {

constexpr LoadOptions kVerifyAll{/*verify_checksums=*/true,
                                 /*validate_structure=*/true};

// Per-process scratch path: ctest runs each test case as its own process in
// parallel, and two processes mutating one shared file race (one truncates
// while another has it mmapped — SIGBUS, not a clean Status).
std::string MutantPath() {
  return ::testing::TempDir() + "qpgc_corruption_mutant." +
         std::to_string(static_cast<long>(::getpid())) + ".snap";
}

std::vector<std::byte> SaveToBytes(const SaveOptions& options = {}) {
  Graph g = GenerateUniform(60, 200, 3, 5);
  SnapshotManager mgr(std::move(g));
  const auto live = mgr.Acquire();
  const std::string path = MutantPath();
  const Status saved = SaveSnapshot(*live, path, options);
  EXPECT_TRUE(saved.ok()) << saved.message();
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  return bytes;
}

void WriteBytes(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// Both readers must reject the mutant with a clean Status (and must not
// crash, which ASan/UBSan turn into hard failures).
void ExpectRejected(std::span<const std::byte> bytes, const char* what) {
  SCOPED_TRACE(what);
  const std::string path = MutantPath();
  WriteBytes(path, bytes);
  const Result<LoadedSnapshot> loaded = LoadServingSnapshot(path, kVerifyAll);
  EXPECT_FALSE(loaded.ok()) << "full deserialize accepted the mutant";
  const Result<MmapSnapshot> mapped = MmapSnapshot::Open(path, kVerifyAll);
  EXPECT_FALSE(mapped.ok()) << "mmap open accepted the mutant";
  std::remove(path.c_str());
}

const FileHeader& HeaderOf(const std::vector<std::byte>& bytes) {
  return *reinterpret_cast<const FileHeader*>(bytes.data());
}

// Rewrites the header checksum after a deliberate header-field lie, so the
// mutant exercises the *semantic* check rather than the checksum. Hashes
// exactly as the writer does: the header bytes with the checksum field
// zeroed.
void RestampHeaderChecksum(std::vector<std::byte>* bytes) {
  FileHeader h{};
  std::memcpy(&h, bytes->data(), sizeof(FileHeader));
  FileHeader zeroed = h;
  zeroed.header_checksum = 0;
  h.header_checksum = Fnv1a64(
      {reinterpret_cast<const std::byte*>(&zeroed), sizeof(FileHeader)});
  std::memcpy(bytes->data(), &h, sizeof(FileHeader));
}

TEST(StorageCorruptionTest, RejectsShortAndEmptyFiles) {
  const std::vector<std::byte> good = SaveToBytes();
  ASSERT_GT(good.size(), sizeof(FileHeader));
  ExpectRejected({good.data(), 0}, "empty file");
  ExpectRejected({good.data(), 1}, "one byte");
  ExpectRejected({good.data(), sizeof(FileHeader) - 1}, "header minus one");
}

TEST(StorageCorruptionTest, RejectsTruncationAtEverySectionBoundary) {
  const std::vector<std::byte> good = SaveToBytes();
  const FileHeader& h = HeaderOf(good);
  std::vector<SectionEntry> table(h.section_count);
  std::memcpy(table.data(), good.data() + sizeof(FileHeader),
              table.size() * sizeof(SectionEntry));
  for (const SectionEntry& entry : table) {
    if (entry.stored_bytes == 0) continue;  // nothing interior to cut
    const std::string what =
        "truncated before end of section kind " + std::to_string(entry.kind);
    // Cut mid-payload: the entry's bounds check (or the total-length stamp)
    // must fire before anything dereferences past EOF.
    const size_t cut = entry.offset + entry.stored_bytes / 2;
    ASSERT_LT(cut, good.size());
    ExpectRejected({good.data(), cut}, what.c_str());
  }
  // A fixed interior ladder, independent of the layout.
  for (const size_t denom : {2u, 3u, 5u, 7u}) {
    ExpectRejected({good.data(), good.size() - good.size() / denom},
                   "interior truncation");
  }
  ExpectRejected({good.data(), good.size() - 1}, "last byte missing");
}

TEST(StorageCorruptionTest, RejectsBitFlipsInHeaderAndTable) {
  const std::vector<std::byte> good = SaveToBytes();
  const size_t table_end = sizeof(FileHeader) +
                           HeaderOf(good).section_count * sizeof(SectionEntry);
  for (size_t at = 0; at < table_end; at += 7) {
    std::vector<std::byte> mutant = good;
    mutant[at] ^= std::byte{0x10};
    ExpectRejected(mutant, ("header/table flip at " + std::to_string(at)).c_str());
  }
}

TEST(StorageCorruptionTest, RejectsBitFlipsInEverySectionPayload) {
  // Cover both layouts: the in-place raw encodings and the varint one.
  for (const bool varint : {false, true}) {
    SaveOptions options;
    options.varint_adjacency = varint;
    const std::vector<std::byte> good = SaveToBytes(options);
    const FileHeader& h = HeaderOf(good);
    std::vector<SectionEntry> table(h.section_count);
    std::memcpy(table.data(), good.data() + sizeof(FileHeader),
                table.size() * sizeof(SectionEntry));
    for (const SectionEntry& entry : table) {
      if (entry.stored_bytes == 0) continue;
      // First, middle, and last byte of every payload.
      for (const size_t at : {entry.offset, entry.offset + entry.stored_bytes / 2,
                              entry.offset + entry.stored_bytes - 1}) {
        std::vector<std::byte> mutant = good;
        mutant[at] ^= std::byte{0x40};
        ExpectRejected(mutant,
                       ("payload flip, kind " + std::to_string(entry.kind) +
                        " at " + std::to_string(at) +
                        (varint ? " (varint)" : ""))
                           .c_str());
      }
    }
  }
}

TEST(StorageCorruptionTest, RejectsBadMagic) {
  std::vector<std::byte> mutant = SaveToBytes();
  mutant[0] = std::byte{'X'};
  ExpectRejected(mutant, "bad magic");
}

TEST(StorageCorruptionTest, RejectsUnknownFormatVersion) {
  std::vector<std::byte> mutant = SaveToBytes();
  FileHeader h = HeaderOf(mutant);
  h.format_version = kFormatVersion + 1;
  std::memcpy(mutant.data(), &h, sizeof(FileHeader));
  RestampHeaderChecksum(&mutant);  // isolate the version check
  const std::string path = MutantPath();
  WriteBytes(path, mutant);
  const Result<MmapSnapshot> mapped = MmapSnapshot::Open(path, kVerifyAll);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().message().find("format version"),
            std::string::npos)
      << mapped.status().message();
  std::remove(path.c_str());
}

TEST(StorageCorruptionTest, RejectsHeaderFieldLies) {
  const std::vector<std::byte> good = SaveToBytes();
  struct Lie {
    const char* what;
    void (*apply)(FileHeader&);
  };
  const Lie lies[] = {
      {"section_count zero", [](FileHeader& h) { h.section_count = 0; }},
      {"section_count huge",
       [](FileHeader& h) { h.section_count = 1u << 24; }},
      {"file_bytes short", [](FileHeader& h) { h.file_bytes -= 1; }},
      {"file_bytes long", [](FileHeader& h) { h.file_bytes += 8; }},
      {"original_num_nodes off",
       [](FileHeader& h) { h.original_num_nodes += 1; }},
      {"shard out of range", [](FileHeader& h) { h.shard = h.num_shards; }},
      {"num_shards zero", [](FileHeader& h) { h.num_shards = 0; }},
  };
  for (const Lie& lie : lies) {
    std::vector<std::byte> mutant = good;
    FileHeader h = HeaderOf(mutant);
    lie.apply(h);
    std::memcpy(mutant.data(), &h, sizeof(FileHeader));
    RestampHeaderChecksum(&mutant);
    ExpectRejected(mutant, lie.what);
  }
}

// The always-on guarantees of the trusted fast path: header, table, and
// length lies are rejected even with all optional verification off.
TEST(StorageCorruptionTest, TrustedOpenStillRejectsHeaderAndTableDamage) {
  const std::vector<std::byte> good = SaveToBytes();
  const std::string path = MutantPath();

  std::vector<std::byte> bad_magic = good;
  bad_magic[3] ^= std::byte{0xFF};
  WriteBytes(path, bad_magic);
  EXPECT_FALSE(MmapSnapshot::Open(path).ok());

  std::vector<std::byte> bad_table = good;
  bad_table[sizeof(FileHeader) + 5] ^= std::byte{0x01};
  WriteBytes(path, bad_table);
  EXPECT_FALSE(MmapSnapshot::Open(path).ok());

  WriteBytes(path, {good.data(), good.size() / 2});
  EXPECT_FALSE(MmapSnapshot::Open(path).ok());

  // And the unmutated artifact still opens on the same code path.
  WriteBytes(path, good);
  const Result<MmapSnapshot> ok = MmapSnapshot::Open(path);
  EXPECT_TRUE(ok.ok()) << ok.status().message();

  std::remove(path.c_str());
}

TEST(StorageCorruptionTest, MissingFileIsCleanNotFound) {
  const Result<MmapSnapshot> mapped =
      MmapSnapshot::Open(::testing::TempDir() + "qpgc_does_not_exist.snap");
  EXPECT_FALSE(mapped.ok());
}

}  // namespace
}  // namespace qpgc::storage
