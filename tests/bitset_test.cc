// Copyright 2026 The QPGC Authors.

#include "util/bitset.h"

#include <gtest/gtest.h>

#include <vector>

namespace qpgc {
namespace {

TEST(BitsetTest, EmptyHasNoBits) {
  Bitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
}

TEST(BitsetTest, SetTestClear) {
  Bitset b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_FALSE(b.Test(128));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitsetTest, FillRespectsTail) {
  Bitset b(70);
  b.Fill();
  EXPECT_EQ(b.Count(), 70u);
  // Tail bits beyond size stay zero so word equality is well defined.
  Bitset c(70);
  for (size_t i = 0; i < 70; ++i) c.Set(i);
  EXPECT_EQ(b, c);
}

TEST(BitsetTest, OrAndAndNot) {
  Bitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  Bitset or_ab = a;
  or_ab.OrWith(b);
  EXPECT_TRUE(or_ab.Test(1));
  EXPECT_TRUE(or_ab.Test(50));
  EXPECT_TRUE(or_ab.Test(99));
  EXPECT_EQ(or_ab.Count(), 3u);

  Bitset and_ab = a;
  and_ab.AndWith(b);
  EXPECT_EQ(and_ab.Count(), 1u);
  EXPECT_TRUE(and_ab.Test(50));

  Bitset diff = a;
  diff.AndNotWith(b);
  EXPECT_EQ(diff.Count(), 1u);
  EXPECT_TRUE(diff.Test(1));
}

TEST(BitsetTest, ForEachSetBitAscending) {
  Bitset b(200);
  const std::vector<size_t> bits = {0, 3, 63, 64, 65, 127, 128, 199};
  for (size_t i : bits) b.Set(i);
  std::vector<size_t> seen;
  b.ForEachSetBit([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, bits);
  const std::vector<NodeId> vec = b.ToVector();
  ASSERT_EQ(vec.size(), bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(vec[i], static_cast<NodeId>(bits[i]));
  }
}

TEST(BitsetTest, ResizeKeepsContent) {
  Bitset b(10);
  b.Set(3);
  b.Resize(100);
  EXPECT_TRUE(b.Test(3));
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 1u);
}

TEST(BitsetTest, BytesViewIsExactContent) {
  Bitset a(65), b(65);
  a.Set(64);
  b.Set(64);
  EXPECT_EQ(a.BytesView(), b.BytesView());
  b.Set(0);
  EXPECT_NE(a.BytesView(), b.BytesView());
}

TEST(BitMatrixTest, SetAndTest) {
  BitMatrix m(3, 70);
  m.Set(0, 0);
  m.Set(1, 69);
  m.Set(2, 64);
  EXPECT_TRUE(m.Test(0, 0));
  EXPECT_TRUE(m.Test(1, 69));
  EXPECT_TRUE(m.Test(2, 64));
  EXPECT_FALSE(m.Test(0, 1));
  EXPECT_FALSE(m.Test(2, 63));
}

TEST(BitMatrixTest, OrRowInto) {
  BitMatrix m(2, 130);
  m.Set(0, 5);
  m.Set(0, 128);
  m.Set(1, 7);
  m.OrRowInto(0, 1);
  EXPECT_TRUE(m.Test(1, 5));
  EXPECT_TRUE(m.Test(1, 7));
  EXPECT_TRUE(m.Test(1, 128));
  EXPECT_FALSE(m.Test(0, 7));  // source row untouched
}

TEST(BitMatrixTest, RowBytesDistinguishRows) {
  BitMatrix m(2, 64);
  m.Set(0, 10);
  m.Set(1, 10);
  EXPECT_EQ(m.RowBytes(0), m.RowBytes(1));
  m.Set(1, 11);
  EXPECT_NE(m.RowBytes(0), m.RowBytes(1));
}

TEST(BitMatrixTest, ResetClearsAll) {
  BitMatrix m(4, 100);
  m.Set(3, 99);
  m.Reset();
  EXPECT_FALSE(m.Test(3, 99));
}

}  // namespace
}  // namespace qpgc
