// Copyright 2026 The QPGC Authors.

#include "inc/inc_rcm.h"

#include <gtest/gtest.h>

#include "gen/random_models.h"
#include "gen/uniform.h"
#include "gen/update_gen.h"
#include "test_util.h"

namespace qpgc {
namespace {

// Applies a batch and maintains the compression; checks against recompute.
void CheckIncremental(Graph g, const UpdateBatch& batch) {
  ReachCompression rc = CompressR(g);
  const UpdateBatch effective = ApplyBatch(g, batch);
  IncRCM(g, effective, rc);
  const ReachCompression batch_rc = CompressR(g);
  ExpectEquivalentReachCompression(rc, batch_rc);
}

TEST(IncRcmTest, SingleInsertionSplitsEndpointClass) {
  // {0,1} equivalent sources; inserting (0,4) splits 0 away from 1.
  Graph g(5);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  UpdateBatch batch;
  batch.Insert(0, 4);
  CheckIncremental(g, batch);
}

TEST(IncRcmTest, RedundantInsertionLeavesGrUntouched) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  ReachCompression rc = CompressR(g);
  const Graph before_gr = rc.gr;
  UpdateBatch batch;
  batch.Insert(0, 2);  // 0 already reaches 2
  const UpdateBatch effective = ApplyBatch(g, batch);
  const IncRcmStats stats = IncRCM(g, effective, rc);
  EXPECT_EQ(stats.reduced_updates, 1u);
  EXPECT_EQ(stats.kept_updates, 0u);
  EXPECT_EQ(rc.gr, before_gr);
  // And it matches the batch recompute (transitive reduction removes the
  // shortcut again).
  ExpectEquivalentReachCompression(rc, CompressR(g));
}

TEST(IncRcmTest, InsertionCreatingCycleMergesClasses) {
  // Chain 0 -> 1 -> 2; inserting (2, 0) makes one SCC.
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  UpdateBatch batch;
  batch.Insert(2, 0);
  CheckIncremental(g, batch);
}

TEST(IncRcmTest, DeletionBreakingCycle) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  UpdateBatch batch;
  batch.Delete(2, 0);
  CheckIncremental(g, batch);
}

TEST(IncRcmTest, DeletionSplitsUpstreamClass) {
  // p -> a -> z, q -> a, q -> z: p ~ q until (a, z) is deleted.
  Graph g(4);
  const NodeId p = 0, q = 1, a = 2, z = 3;
  g.AddEdge(p, a);
  g.AddEdge(a, z);
  g.AddEdge(q, a);
  g.AddEdge(q, z);
  {
    const ReachCompression rc = CompressR(g);
    ASSERT_EQ(rc.node_map[p], rc.node_map[q]);
  }
  UpdateBatch batch;
  batch.Delete(a, z);
  CheckIncremental(g, batch);
}

TEST(IncRcmTest, InsertionMergingDistantClasses) {
  // 0 -> 2, 1 -> 3; inserting (2,4),(3,4) style merges happen globally.
  Graph g(5);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  UpdateBatch batch;
  batch.Insert(2, 4);
  batch.Insert(3, 4);
  CheckIncremental(g, batch);
}

TEST(IncRcmTest, MixedBatch) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  UpdateBatch batch;
  batch.Insert(2, 3);
  batch.Delete(1, 2);
  batch.Insert(5, 0);
  CheckIncremental(g, batch);
}

TEST(IncRcmTest, MutuallyJustifyingInsertionsNotBothDropped) {
  // Regression: insertions (u,v) and (x,y) where each would be redundant
  // *given the other*. Pre-graph: u <-> x and y <-> v two-cycles. Each
  // inserted edge has an alternate path only through the other inserted
  // edge; dropping both would miss a real closure change.
  Graph g(4);
  const NodeId u = 0, x = 1, y = 2, v = 3;
  g.AddEdge(u, x);
  g.AddEdge(x, u);
  g.AddEdge(y, v);
  g.AddEdge(v, y);
  UpdateBatch batch;
  batch.Insert(u, v);
  batch.Insert(x, y);
  CheckIncremental(g, batch);
}

TEST(IncRcmTest, ExternalDeletionAggregatesCyclicClass) {
  // A cyclic class whose internal edges are untouched is aggregated, not
  // dissolved: its members cannot diverge.
  Graph g(8);
  // Cycle {0..4}, plus 4 -> 5 -> 6 and 4 -> 6 and 6 -> 7.
  for (NodeId i = 0; i < 5; ++i) g.AddEdge(i, (i + 1) % 5);
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(4, 6);
  g.AddEdge(6, 7);
  ReachCompression rc = CompressR(g);
  UpdateBatch batch;
  batch.Delete(5, 6);  // external to the cycle; 4 -> 6 survives, 5 diverges
  const UpdateBatch effective = ApplyBatch(g, batch);
  const IncRcmStats stats = IncRCM(g, effective, rc);
  ExpectEquivalentReachCompression(rc, CompressR(g));
  EXPECT_GE(stats.aggregated_classes, 1u);
}

TEST(IncRcmTest, RedundantDeletionInsideScc) {
  // Deleting one edge of a dense SCC leaves every closure intact; the
  // post-graph witness test must discharge it without touching Gr.
  Graph g(5);
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = 0; j < 5; ++j) {
      if (i != j) g.AddEdge(i, j);
    }
  }
  ReachCompression rc = CompressR(g);
  const Graph before_gr = rc.gr;
  UpdateBatch batch;
  batch.Delete(0, 1);
  const UpdateBatch effective = ApplyBatch(g, batch);
  const IncRcmStats stats = IncRCM(g, effective, rc);
  EXPECT_EQ(stats.reduced_updates, 1u);
  EXPECT_EQ(stats.kept_updates, 0u);
  EXPECT_EQ(rc.gr, before_gr);
  ExpectEquivalentReachCompression(rc, CompressR(g));
}

TEST(IncRcmTest, InsertThenDeleteDistinctEdgesInOneBatch) {
  // Mixed batch where the deletion's survival witness runs through the
  // freshly inserted edge.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  UpdateBatch batch;
  batch.Insert(1, 3);   // new shortcut
  batch.Delete(2, 3);   // 1 -> 3 still holds via the shortcut
  CheckIncremental(g, batch);
}

TEST(IncRcmTest, EmptyBatchNoOp) {
  Graph g(3);
  g.AddEdge(0, 1);
  ReachCompression rc = CompressR(g);
  const IncRcmStats stats = IncRCM(g, UpdateBatch{}, rc);
  EXPECT_EQ(stats.kept_updates, 0u);
  ExpectEquivalentReachCompression(rc, CompressR(g));
}

class IncRcmRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncRcmRandomTest, MatchesBatchRecompute) {
  const uint64_t seed = GetParam();
  Graph g;
  switch (seed % 3) {
    case 0:
      g = GenerateUniform(90, 260, 1, seed);
      break;
    case 1:
      g = PreferentialAttachment(90, 3, 0.4, seed);
      break;
    default:
      g = CitationDag(90, 3, 0.5, seed);
      break;
  }
  UpdateBatch batch;
  switch (seed % 4) {
    case 0:
      batch = RandomInsertions(g, 8, seed * 3);
      break;
    case 1:
      batch = RandomDeletions(g, 8, seed * 3);
      break;
    default:
      batch = RandomMixed(g, 10, 0.5, seed * 3);
      break;
  }
  CheckIncremental(std::move(g), batch);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncRcmRandomTest,
                         ::testing::Range<uint64_t>(1, 25));

TEST(IncRcmTest, SequenceOfBatchesStaysExact) {
  Graph g = GenerateUniform(70, 200, 1, 55);
  ReachCompression rc = CompressR(g);
  for (uint64_t step = 0; step < 6; ++step) {
    const UpdateBatch batch = RandomMixed(g, 6, 0.6, 100 + step);
    const UpdateBatch effective = ApplyBatch(g, batch);
    IncRCM(g, effective, rc);
  }
  ExpectEquivalentReachCompression(rc, CompressR(g));
}

}  // namespace
}  // namespace qpgc
