// Copyright 2026 The QPGC Authors.

#include "inc/inc_pcm.h"

#include <gtest/gtest.h>

#include "gen/random_models.h"
#include "gen/uniform.h"
#include "gen/update_gen.h"
#include "inc/inc_bsim.h"
#include "test_util.h"

namespace qpgc {
namespace {

void CheckIncremental(Graph g, const UpdateBatch& batch) {
  PatternCompression pc = CompressB(g);
  const UpdateBatch effective = ApplyBatch(g, batch);
  IncPCM(g, effective, pc);
  const PatternCompression batch_pc = CompressB(g);
  ExpectEquivalentPatternCompression(pc, batch_pc);
}

TEST(IncPcmTest, InsertionSplitsSourceBlock) {
  // Two bisimilar parents of one leaf; an extra child for one splits them.
  Graph g(std::vector<Label>{1, 1, 2, 3});
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  {
    const PatternCompression pc = CompressB(g);
    ASSERT_EQ(pc.node_map[0], pc.node_map[1]);
  }
  UpdateBatch batch;
  batch.Insert(0, 3);
  CheckIncremental(g, batch);
}

TEST(IncPcmTest, RedundantInsertionDropped) {
  // u already has a child in the target's block.
  Graph g(std::vector<Label>{1, 2, 2});
  g.AddEdge(0, 1);  // block of 1 == block of 2 (same-label leaves)
  Graph working = g;
  PatternCompression pc = CompressB(working);
  const Graph before_gr = pc.gr;
  UpdateBatch batch;
  batch.Insert(0, 2);
  const UpdateBatch effective = ApplyBatch(working, batch);
  const IncPcmStats stats = IncPCM(working, effective, pc);
  EXPECT_EQ(stats.reduced_updates, 1u);
  EXPECT_EQ(pc.gr, before_gr);
  ExpectEquivalentPatternCompression(pc, CompressB(working));
}

TEST(IncPcmTest, RedundantDeletionDropped) {
  Graph g(std::vector<Label>{1, 2, 2});
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);  // two children in the same leaf block
  Graph working = g;
  PatternCompression pc = CompressB(working);
  UpdateBatch batch;
  batch.Delete(0, 2);
  const UpdateBatch effective = ApplyBatch(working, batch);
  const IncPcmStats stats = IncPCM(working, effective, pc);
  EXPECT_EQ(stats.reduced_updates, 1u);
  ExpectEquivalentPatternCompression(pc, CompressB(working));
}

TEST(IncPcmTest, DeletionMergesBlocks) {
  // 0 has children {2,3}, 1 has {2}: not bisimilar. Delete (0,3): merge.
  Graph g(std::vector<Label>{1, 1, 2, 3});
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  UpdateBatch batch;
  batch.Delete(0, 3);
  CheckIncremental(g, batch);
}

TEST(IncPcmTest, SplitPropagatesUpward) {
  // Grandparents bisimilar through bisimilar parents; a leaf change at one
  // parent must propagate two levels up.
  Graph g(std::vector<Label>{0, 0, 1, 1, 2, 3});
  const NodeId gp1 = 0, gp2 = 1, p1 = 2, p2 = 3, leaf = 4, fresh = 5;
  g.AddEdge(gp1, p1);
  g.AddEdge(gp2, p2);
  g.AddEdge(p1, leaf);
  g.AddEdge(p2, leaf);
  {
    const PatternCompression pc = CompressB(g);
    ASSERT_EQ(pc.node_map[gp1], pc.node_map[gp2]);
    ASSERT_EQ(pc.node_map[p1], pc.node_map[p2]);
  }
  UpdateBatch batch;
  batch.Insert(p1, fresh);
  CheckIncremental(g, batch);
}

TEST(IncPcmTest, CycleFormation) {
  Graph g(std::vector<Label>{0, 0, 0});
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  UpdateBatch batch;
  batch.Insert(2, 0);
  CheckIncremental(g, batch);
}

TEST(IncPcmTest, CycleBreak) {
  Graph g(std::vector<Label>{0, 0, 0, 0});
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  UpdateBatch batch;
  batch.Delete(1, 2);
  CheckIncremental(g, batch);
}

TEST(IncPcmTest, EmptyBatchNoOp) {
  Graph g(std::vector<Label>{0, 1});
  g.AddEdge(0, 1);
  PatternCompression pc = CompressB(g);
  const IncPcmStats stats = IncPCM(g, UpdateBatch{}, pc);
  EXPECT_EQ(stats.kept_updates, 0u);
  ExpectEquivalentPatternCompression(pc, CompressB(g));
}

class IncPcmRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncPcmRandomTest, MatchesBatchRecompute) {
  const uint64_t seed = GetParam();
  Graph g;
  switch (seed % 3) {
    case 0:
      g = GenerateUniform(90, 260, 3, seed);
      break;
    case 1:
      g = PreferentialAttachment(90, 3, 0.4, seed);
      break;
    default:
      g = CopyingModel(90, 4, 0.6, seed);
      break;
  }
  if (seed % 2 == 0) AssignZipfLabels(g, 4, 0.8, seed);
  UpdateBatch batch;
  switch (seed % 4) {
    case 0:
      batch = RandomInsertions(g, 8, seed * 5);
      break;
    case 1:
      batch = RandomDeletions(g, 8, seed * 5);
      break;
    default:
      batch = RandomMixed(g, 10, 0.5, seed * 5);
      break;
  }
  CheckIncremental(std::move(g), batch);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncPcmRandomTest,
                         ::testing::Range<uint64_t>(1, 25));

TEST(IncPcmTest, SequenceOfBatchesStaysExact) {
  Graph g = GenerateUniform(70, 200, 3, 66);
  PatternCompression pc = CompressB(g);
  for (uint64_t step = 0; step < 6; ++step) {
    const UpdateBatch batch = RandomMixed(g, 6, 0.6, 200 + step);
    const UpdateBatch effective = ApplyBatch(g, batch);
    IncPCM(g, effective, pc);
  }
  ExpectEquivalentPatternCompression(pc, CompressB(g));
}

TEST(IncBsimTest, SingleUpdateLoopMatchesBatch) {
  Graph g = GenerateUniform(80, 220, 3, 71);
  Graph g2 = g;
  PatternCompression pc = CompressB(g);
  const UpdateBatch batch = RandomMixed(g, 8, 0.5, 72);
  IncBsim(g, batch, pc);  // applies updates internally, one at a time
  ApplyBatch(g2, batch);
  EXPECT_EQ(g, g2);
  ExpectEquivalentPatternCompression(pc, CompressB(g));
}

}  // namespace
}  // namespace qpgc
