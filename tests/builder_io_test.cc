// Copyright 2026 The QPGC Authors.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/builder.h"
#include "graph/io.h"

namespace qpgc {
namespace {

TEST(BuilderTest, DeduplicatesEdges) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(BuilderTest, AutoGrowCreatesNodes) {
  GraphBuilder b;
  b.AddEdgeAutoGrow(5, 2);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_TRUE(g.HasEdge(5, 2));
}

TEST(BuilderTest, LabelsSurviveBuild) {
  GraphBuilder b;
  const NodeId u = b.AddNode(10);
  const NodeId v = b.AddNode(20);
  b.AddEdge(u, v);
  const Graph g = b.Build();
  EXPECT_EQ(g.label(u), 10u);
  EXPECT_EQ(g.label(v), 20u);
}

TEST(IoTest, ParseEdgeListWithComments) {
  const auto r = ParseEdgeList("# comment\n0 1\n1 2\n\n2 0\n");
  ASSERT_TRUE(r.ok());
  const Graph& g = r.value();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(2, 0));
}

TEST(IoTest, ParseRejectsGarbage) {
  const auto r = ParseEdgeList("0 1\nnot an edge\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(IoTest, RoundTripThroughFile) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 0);
  const std::string path = ::testing::TempDir() + "/qpgc_io_test.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  const auto r = LoadEdgeList(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), g);
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileFails) {
  const auto r = LoadEdgeList("/nonexistent/path/graph.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(IoTest, LabelsRoundTrip) {
  Graph g(3);
  g.set_label(0, 7);
  g.set_label(1, 8);
  g.set_label(2, 7);
  const std::string path = ::testing::TempDir() + "/qpgc_labels_test.txt";
  ASSERT_TRUE(SaveLabels(g, path).ok());
  Graph h(3);
  ASSERT_TRUE(LoadLabels(h, path).ok());
  EXPECT_EQ(h.label(0), 7u);
  EXPECT_EQ(h.label(1), 8u);
  EXPECT_EQ(h.label(2), 7u);
  std::remove(path.c_str());
}

TEST(IoTest, LabelOutOfRangeRejected) {
  const std::string path = ::testing::TempDir() + "/qpgc_badlabel_test.txt";
  {
    std::ofstream out(path);
    out << "9 1\n";
  }
  Graph g(3);
  EXPECT_FALSE(LoadLabels(g, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qpgc
