// Copyright 2026 The QPGC Authors.
//
// Round-trip differential suite for the on-disk snapshot format
// (storage/snapshot_io.h) and the mmap serving path
// (storage/mmap_snapshot.h). The contract under test: save → load (full
// deserialize) and save → Open (mmap, both trusted and fully-verified)
// answer every query class identically to the live in-RAM snapshot the
// artifact was written from — for every generator family (including the
// adversarial deep topologies), every index/adjacency encoding, and
// sharded serving with K in {1, 2, 7} via LoadShardSet + PinnedShards.
// Also covers SnapshotManager adoption of reconstructed artifacts: after
// a load, incremental maintenance must continue exactly.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gen/adversarial.h"
#include "gen/random_models.h"
#include "gen/uniform.h"
#include "gen/update_gen.h"
#include "graph/graph.h"
#include "graph/traversal.h"
#include "pattern/match.h"
#include "pattern/pattern_gen.h"
#include "serve/router.h"
#include "serve/sharded_manager.h"
#include "serve/snapshot_manager.h"
#include "storage/mmap_snapshot.h"
#include "storage/snapshot_io.h"
#include "util/rng.h"

namespace qpgc::storage {
namespace {

// One representative per generator family (mirrors the serving suites'
// corpus): two random models plus the five adversarial deep topologies.
std::vector<std::pair<const char*, Graph>> FamilyCorpus() {
  std::vector<std::pair<const char*, Graph>> corpus;
  corpus.emplace_back("uniform", GenerateUniform(90, 300, 4, 7));
  {
    Graph g = PreferentialAttachment(110, 3, 0.5, 11);
    AssignZipfLabels(g, 3, 1.1, 12);
    corpus.emplace_back("social", std::move(g));
  }
  corpus.emplace_back("chain", LongChain(120, 2));
  corpus.emplace_back("layered", LayeredDag(24, 5, 3, 42));
  corpus.emplace_back("broom", Broom(40, 50));
  corpus.emplace_back("grid", DirectedGrid(9, 9));
  corpus.emplace_back("tree", CompleteBinaryTree(7));
  return corpus;
}

std::vector<PatternQuery> TestPatterns(const Graph& g, size_t count,
                                       uint64_t seed) {
  if (g.CountDistinctLabels() <= 1) return {};
  PatternGenOptions opts;
  opts.num_nodes = 3;
  opts.num_edges = 3;
  opts.max_bound = 2;
  std::vector<PatternQuery> patterns;
  const std::vector<Label> labels = DistinctLabels(g);
  for (size_t i = 0; i < count; ++i) {
    patterns.push_back(RandomPattern(labels, opts, seed + i));
  }
  return patterns;
}

// A fresh artifact path under the test's temp dir; the file is replaced by
// every save, so collisions across tests are avoided by name.
std::string ArtifactPath(const std::string& name) {
  return ::testing::TempDir() + "qpgc_" + name + ".snap";
}

// Asserts that `reach` / `match` / `boolean_match` (any object exposing the
// snapshot query surface) answer exactly like direct evaluation on the
// original graph AND like the live snapshot `truth`.
template <typename Queryable>
void ExpectAnswersMatch(const Queryable& got, const ServingSnapshot& truth,
                        const Graph& oracle, uint64_t seed,
                        const char* context) {
  SCOPED_TRACE(context);
  Rng rng(seed);
  const size_t n = oracle.num_nodes();
  for (int i = 0; i < 200; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    const PathMode mode =
        rng.Chance(0.5) ? PathMode::kReflexive : PathMode::kNonEmpty;
    const bool want = truth.Reach(u, v, mode);
    ASSERT_EQ(got.Reach(u, v, mode), want)
        << "reach(" << u << ", " << v << ") mode " << static_cast<int>(mode);
    ASSERT_EQ(want, BfsReaches(oracle, u, v, mode)) << "oracle disagrees";
  }
  // The diagonal under non-empty semantics (cycle detection) is where a
  // mis-wired self-loop section would first show.
  for (int i = 0; i < 40; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    ASSERT_EQ(got.Reach(u, u, PathMode::kNonEmpty),
              truth.Reach(u, u, PathMode::kNonEmpty))
        << "cycle through " << u;
  }
  for (const PatternQuery& q : TestPatterns(oracle, 5, seed + 991)) {
    const MatchResult want = truth.Match(q);
    const MatchResult got_match = got.Match(q);
    ASSERT_EQ(got_match.matched, want.matched);
    ASSERT_EQ(got_match.match_sets, want.match_sets);
    ASSERT_EQ(got.BooleanMatch(q), want.matched);
  }
}

// ---------------------------------------------------------------------------
// Unsharded round trips, all families, all encodings.
// ---------------------------------------------------------------------------

TEST(StorageRoundTripTest, LoadedAndMmapAnswersEqualLiveOnAllFamilies) {
  for (auto& [name, g] : FamilyCorpus()) {
    const Graph oracle = g;
    SnapshotManager mgr(std::move(g));
    const auto live = mgr.Acquire();
    const std::string path = ArtifactPath(std::string("rt_") + name);
    ASSERT_TRUE(SaveSnapshot(*live, path).ok()) << name;

    // Full deserialize, everything verified (the untrusted default).
    const Result<LoadedSnapshot> loaded = LoadServingSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << name << ": " << loaded.status().message();
    EXPECT_EQ(loaded.value().num_shards, 1u);
    EXPECT_EQ(loaded.value().snapshot->version(), live->version());
    ExpectAnswersMatch(*loaded.value().snapshot, *live, oracle, 71,
                       (std::string(name) + "/deserialized").c_str());

    // Mmap, trusted fast path (default options).
    const Result<MmapSnapshot> fast = MmapSnapshot::Open(path);
    ASSERT_TRUE(fast.ok()) << name << ": " << fast.status().message();
    EXPECT_EQ(fast.value().version(), live->version());
    EXPECT_EQ(fast.value().original_num_nodes(), oracle.num_nodes());
    EXPECT_EQ(fast.value().num_shards(), 1u);
    ExpectAnswersMatch(fast.value(), *live, oracle, 72,
                       (std::string(name) + "/mmap-trusted").c_str());

    // Mmap, fully verified + validated.
    const Result<MmapSnapshot> checked =
        MmapSnapshot::Open(path, LoadOptions{/*verify_checksums=*/true,
                                             /*validate_structure=*/true});
    ASSERT_TRUE(checked.ok()) << name << ": " << checked.status().message();
    ExpectAnswersMatch(checked.value(), *live, oracle, 73,
                       (std::string(name) + "/mmap-verified").c_str());

    std::remove(path.c_str());
  }
}

TEST(StorageRoundTripTest, EncodingVariantsAgree) {
  for (auto& [name, g] : FamilyCorpus()) {
    const Graph oracle = g;
    SnapshotManager mgr(std::move(g));
    const auto live = mgr.Acquire();

    // Pinned 8-byte offsets (the compatibility / worst-case layout).
    SaveOptions raw64;
    raw64.index_encoding = IndexEncoding::kRaw64;
    // Compact index + varint adjacency (the cold-shard layout).
    SaveOptions varint;
    varint.varint_adjacency = true;

    const std::string p64 = ArtifactPath(std::string("enc64_") + name);
    const std::string pv = ArtifactPath(std::string("encv_") + name);
    ASSERT_TRUE(SaveSnapshot(*live, p64, raw64).ok()) << name;
    ASSERT_TRUE(SaveSnapshot(*live, pv, varint).ok()) << name;

    const Result<MmapSnapshot> m64 = MmapSnapshot::Open(
        p64, LoadOptions{/*verify_checksums=*/true,
                         /*validate_structure=*/true});
    ASSERT_TRUE(m64.ok()) << name << ": " << m64.status().message();
    // Raw layouts serve fully in place: no decode heap.
    EXPECT_EQ(m64.value().DecodedHeapBytes(), 0u) << name;
    ExpectAnswersMatch(m64.value(), *live, oracle, 81,
                       (std::string(name) + "/raw64").c_str());

    const Result<MmapSnapshot> mv = MmapSnapshot::Open(
        pv, LoadOptions{/*verify_checksums=*/true,
                        /*validate_structure=*/true});
    ASSERT_TRUE(mv.ok()) << name << ": " << mv.status().message();
    // Varint adjacency cannot be served in place; it decodes at Open.
    if (oracle.num_edges() > 0) {
      EXPECT_GT(mv.value().DecodedHeapBytes(), 0u) << name;
    }
    ExpectAnswersMatch(mv.value(), *live, oracle, 82,
                       (std::string(name) + "/varint").c_str());

    const Result<LoadedSnapshot> lv = LoadServingSnapshot(pv);
    ASSERT_TRUE(lv.ok()) << name << ": " << lv.status().message();
    ExpectAnswersMatch(*lv.value().snapshot, *live, oracle, 83,
                       (std::string(name) + "/varint-deserialized").c_str());

    std::remove(p64.c_str());
    std::remove(pv.c_str());
  }
}

// ---------------------------------------------------------------------------
// Sharded round trips: LoadShardSet must reassemble a serving state whose
// routed answers are identical to the live sharded service's.
// ---------------------------------------------------------------------------

TEST(StorageRoundTripTest, ShardSetRoundTripMatchesLiveService) {
  for (const uint32_t k : {1u, 2u, 7u}) {
    for (auto& [name, g] : FamilyCorpus()) {
      SCOPED_TRACE(std::string(name) + " K=" + std::to_string(k));
      ShardedManagerOptions opts;
      opts.num_shards = k;
      const ShardedSnapshotManager mgr(g, opts);
      const auto live_snaps = mgr.AcquireAll();

      std::vector<std::string> paths;
      for (uint32_t s = 0; s < k; ++s) {
        SaveOptions save;
        save.shard = s;
        save.num_shards = k;
        if (k > 1) save.partition = &mgr.partition();
        paths.push_back(ArtifactPath(std::string("sh_") + name + "_" +
                                     std::to_string(k) + "_" +
                                     std::to_string(s)));
        ASSERT_TRUE(SaveSnapshot(*live_snaps[s], paths.back(), save).ok());
      }

      const Result<LoadedShardSet> set = LoadShardSet(paths);
      ASSERT_TRUE(set.ok()) << set.status().message();
      ASSERT_EQ(set.value().snapshots.size(), k);
      ASSERT_EQ(set.value().partition->num_shards, k);

      const PinnedShards loaded_pins(set.value().partition,
                                     set.value().snapshots);
      const ShardedQueryService live(mgr);
      const auto live_pins = live.Pin();

      Rng rng(600 + k);
      const size_t n = g.num_nodes();
      for (int i = 0; i < 200; ++i) {
        const NodeId u = static_cast<NodeId>(rng.Uniform(n));
        const NodeId v = static_cast<NodeId>(rng.Uniform(n));
        const PathMode mode =
            rng.Chance(0.5) ? PathMode::kReflexive : PathMode::kNonEmpty;
        ASSERT_EQ(loaded_pins.Reach(u, v, mode),
                  live_pins->Reach(u, v, mode))
            << "reach(" << u << ", " << v << ")";
        ASSERT_EQ(live_pins->Reach(u, v, mode), BfsReaches(g, u, v, mode))
            << "oracle disagrees with live service";
      }
      for (const PatternQuery& q : TestPatterns(g, 5, 700 + k)) {
        const MatchResult want = live_pins->Match(q);
        const MatchResult got = loaded_pins.Match(q);
        ASSERT_EQ(got.matched, want.matched);
        ASSERT_EQ(got.match_sets, want.match_sets);
        ASSERT_EQ(loaded_pins.BooleanMatch(q), live_pins->BooleanMatch(q));
      }

      for (const std::string& p : paths) std::remove(p.c_str());
    }
  }
}

TEST(StorageRoundTripTest, ShardSetRejectsInconsistentSets) {
  Graph g = GenerateUniform(60, 180, 3, 5);
  ShardedManagerOptions opts;
  opts.num_shards = 2;
  const ShardedSnapshotManager mgr(g, opts);
  const auto snaps = mgr.AcquireAll();

  std::vector<std::string> paths;
  for (uint32_t s = 0; s < 2; ++s) {
    SaveOptions save;
    save.shard = s;
    save.num_shards = 2;
    save.partition = &mgr.partition();
    paths.push_back(ArtifactPath("bad_set_" + std::to_string(s)));
    ASSERT_TRUE(SaveSnapshot(*snaps[s], paths.back(), save).ok());
  }

  // Wrong path count.
  EXPECT_FALSE(LoadShardSet({paths[0]}).ok());
  // The same shard twice is not a set.
  EXPECT_FALSE(LoadShardSet({paths[0], paths[0]}).ok());
  // Order independence: reversed paths still assemble correctly.
  const Result<LoadedShardSet> reversed = LoadShardSet({paths[1], paths[0]});
  ASSERT_TRUE(reversed.ok()) << reversed.status().message();
  EXPECT_EQ(reversed.value().snapshots.size(), 2u);

  for (const std::string& p : paths) std::remove(p.c_str());
}

// ---------------------------------------------------------------------------
// Manager adoption: reconstructed artifacts must support exact incremental
// maintenance, as if the adopting manager had compressed the graph itself.
// ---------------------------------------------------------------------------

TEST(StorageRoundTripTest, AdoptedManagerStaysExactUnderUpdates) {
  for (auto& [name, g] : FamilyCorpus()) {
    SCOPED_TRACE(name);
    SnapshotManager original(g);
    const std::string path = ArtifactPath(std::string("adopt_") + name);
    {
      const auto live = original.Acquire();
      ASSERT_TRUE(SaveSnapshot(*live, path).ok());
    }

    const Result<LoadedSnapshot> loaded = LoadServingSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    Result<ReconstructedArtifacts> rebuilt =
        ReconstructArtifacts(g, *loaded.value().snapshot);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().message();

    SnapshotManager adopted(g, std::move(rebuilt.value().rc),
                            std::move(rebuilt.value().pc));
    Graph mirror = g;
    for (size_t round = 0; round < 3; ++round) {
      {
        const auto pin = adopted.Acquire();
        ExpectAnswersMatch(*pin, *pin, mirror, 900 + round,
                           "adopted manager");
      }
      const UpdateBatch batch =
          RandomMixed(adopted.graph(), 12, 0.55, 1300 + 17 * round);
      adopted.Apply(batch);
      ApplyBatch(mirror, batch);
      adopted.Publish();
    }
    std::remove(path.c_str());
  }
}

TEST(StorageRoundTripTest, ReconstructRejectsMismatchedGraph) {
  Graph g = GenerateUniform(50, 150, 3, 5);
  SnapshotManager mgr(g);
  const std::string path = ArtifactPath("mismatch");
  {
    const auto live = mgr.Acquire();
    ASSERT_TRUE(SaveSnapshot(*live, path).ok());
  }
  const Result<LoadedSnapshot> loaded = LoadServingSnapshot(path);
  ASSERT_TRUE(loaded.ok());

  // Wrong node count.
  const Graph smaller = GenerateUniform(49, 140, 3, 5);
  EXPECT_FALSE(ReconstructArtifacts(smaller, *loaded.value().snapshot).ok());

  // Same shape, one label changed: the consistency probe must notice.
  Graph relabeled = g;
  relabeled.set_label(0, relabeled.label(0) + 1);
  EXPECT_FALSE(
      ReconstructArtifacts(relabeled, *loaded.value().snapshot).ok());

  std::remove(path.c_str());
}

}  // namespace
}  // namespace qpgc::storage
