// Copyright 2026 The QPGC Authors.

#include <gtest/gtest.h>

#include "bisim/ranked_bisim.h"
#include "bisim/signature_bisim.h"
#include "gen/adversarial.h"
#include "gen/random_models.h"
#include "gen/uniform.h"

namespace qpgc {
namespace {

TEST(BisimTest, LeavesWithSameLabelMerge) {
  Graph g(std::vector<Label>{1, 2, 2, 2});
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  const Partition p = SignatureBisimulation(g);
  EXPECT_EQ(p.block_of[1], p.block_of[2]);
  EXPECT_EQ(p.block_of[2], p.block_of[3]);
  EXPECT_NE(p.block_of[0], p.block_of[1]);
  EXPECT_EQ(p.num_blocks, 2u);
}

TEST(BisimTest, DifferentLabelsNeverMerge) {
  Graph g(std::vector<Label>{1, 2});
  const Partition p = SignatureBisimulation(g);
  EXPECT_EQ(p.num_blocks, 2u);
}

TEST(BisimTest, StructureSeparates) {
  // Same label everywhere; 0 -> 2, 1 has no child: 0 and 1 not bisimilar.
  Graph g(std::vector<Label>{1, 1, 1});
  g.AddEdge(0, 2);
  const Partition p = SignatureBisimulation(g);
  EXPECT_NE(p.block_of[0], p.block_of[1]);
  EXPECT_EQ(p.block_of[1], p.block_of[2]);  // both leaves, same label
}

TEST(BisimTest, SingleCycleAllBisimilar) {
  // a -> b -> a, same labels: maximum bisimulation merges both.
  Graph g(std::vector<Label>{1, 1});
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  const Partition p = SignatureBisimulation(g);
  EXPECT_EQ(p.num_blocks, 1u);
  const Partition r = RankedBisimulation(g);
  EXPECT_EQ(r.num_blocks, 1u);
}

TEST(BisimTest, TwoDisjointCyclesMerge) {
  // Two disjoint 2-cycles, same label: all four nodes bisimilar. This is
  // the case naive sig-merge heuristics miss and rank-stratified refinement
  // must get right.
  Graph g(std::vector<Label>{1, 1, 1, 1});
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);
  EXPECT_EQ(SignatureBisimulation(g).num_blocks, 1u);
  EXPECT_EQ(RankedBisimulation(g).num_blocks, 1u);
}

TEST(BisimTest, CycleVsLeafNotBisimilar) {
  Graph g(std::vector<Label>{1, 1, 1});
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  // node 2: leaf with same label
  const Partition p = SignatureBisimulation(g);
  EXPECT_NE(p.block_of[0], p.block_of[2]);
}

TEST(BisimTest, ResultIsStable) {
  const Graph g = GenerateUniform(150, 450, 4, 31);
  const Partition p = SignatureBisimulation(g);
  EXPECT_TRUE(IsStableBisimulationPartition(g, p));
  const Partition r = RankedBisimulation(g);
  EXPECT_TRUE(IsStableBisimulationPartition(g, r));
}

TEST(BisimTest, ResultIsCoarsestAmongTested) {
  // Any stable label-respecting partition refines the maximum bisimulation.
  const Graph g = GenerateUniform(80, 200, 3, 37);
  const Partition max = SignatureBisimulation(g);
  // The identity partition is stable; it must refine the maximum.
  Partition identity;
  identity.block_of.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) identity.block_of[v] = v;
  identity.num_blocks = g.num_nodes();
  EXPECT_TRUE(Refines(identity, max));
}

// The two algorithms must agree exactly across generator families.
class BisimAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BisimAgreementTest, RankedMatchesSignature) {
  const uint64_t seed = GetParam();
  Graph g;
  switch (seed % 4) {
    case 0:
      g = GenerateUniform(130, 400, 3, seed);
      break;
    case 1:
      g = PreferentialAttachment(130, 3, 0.4, seed);
      break;
    case 2:
      g = CitationDag(130, 4, 0.5, seed);
      break;
    default:
      g = CopyingModel(130, 4, 0.6, seed);
      break;
  }
  if (seed % 2 == 0) AssignZipfLabels(g, 5, 0.8, seed);
  const Partition a = SignatureBisimulation(g);
  const Partition b = RankedBisimulation(g);
  EXPECT_TRUE(SamePartition(a, b)) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BisimAgreementTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(BisimTest, RankedMatchesSignatureOnStructuredFamilies) {
  // Deep, highly stratified shapes — many strata with tiny fixpoints, the
  // regime the per-stratum splitter delegation actually exercises (random
  // models collapse to few ranks).
  std::vector<Graph> graphs;
  graphs.push_back(LongChain(200, 3));
  graphs.push_back(LayeredDag(30, 4, 3, 17));
  graphs.push_back(Broom(60, 40));
  graphs.push_back(DirectedGrid(12, 12));
  graphs.push_back(CompleteBinaryTree(9));
  for (size_t i = 0; i < graphs.size(); ++i) {
    const Partition a = SignatureBisimulation(graphs[i]);
    const Partition b = RankedBisimulation(graphs[i]);
    EXPECT_TRUE(SamePartition(a, b)) << "family index " << i;
  }
}

TEST(BisimTest, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(SignatureBisimulation(g).num_blocks, 0u);
  EXPECT_EQ(RankedBisimulation(g).num_blocks, 0u);
}

}  // namespace
}  // namespace qpgc
