// Copyright 2026 The QPGC Authors.
//
// Differential fuzzing: long randomized operation sequences over evolving
// graphs, where every subsystem is cross-checked against an independent
// oracle at every step:
//   * reachability answers on Gr  vs  BFS on G (all three stock algorithms);
//   * pattern answers through Gr  vs  Match on G;
//   * 2-hop on Gr                 vs  BFS on G;
//   * incRCM / incPCM             vs  batch recompression;
//   * IncBMatch                   vs  fresh Match;
//   * serialization               vs  the in-memory artifact.
// Seeds sweep generator families, label alphabets and update mixes. This is
// the suite that caught the mutual-redundancy and expansion bugs during
// development; it runs moderately sized inputs so failures shrink easily.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/serialization.h"
#include "gen/random_models.h"
#include "gen/uniform.h"
#include "gen/update_gen.h"
#include "inc/inc_pcm.h"
#include "inc/inc_rcm.h"
#include "index/two_hop.h"
#include "pattern/inc_match.h"
#include "pattern/pattern_gen.h"
#include "reach/queries.h"
#include "test_util.h"
#include "util/rng.h"

namespace qpgc {
namespace {

Graph MakeFuzzGraph(uint64_t seed) {
  Rng rng(seed * 0x9e37 + 11);
  const size_t n = 40 + rng.Uniform(60);
  Graph g;
  switch (rng.Uniform(5)) {
    case 0:
      g = GenerateUniform(n, n * (2 + rng.Uniform(3)), 1 + rng.Uniform(4),
                          seed);
      return g;
    case 1:
      g = PreferentialAttachment(n, 2 + rng.Uniform(3),
                                 0.2 + rng.UniformDouble() * 0.6, seed);
      break;
    case 2:
      g = CopyingModel(n, 3 + rng.Uniform(3), rng.UniformDouble(), seed);
      break;
    case 3:
      g = CitationDag(n, 3, 0.5, seed, rng.UniformDouble() * 0.3);
      break;
    default:
      g = LayeredRandom(n, 4 + rng.Uniform(3), 3, 0.1, seed);
      break;
  }
  if (rng.Chance(0.7)) {
    AssignZipfLabels(g, 1 + rng.Uniform(5), 0.9, seed ^ 0xfe);
  }
  if (rng.Chance(0.4)) {
    CloneOutNeighborhoods(g, 0.3, 0.3, seed ^ 0x77);
  }
  return g;
}

UpdateBatch MakeFuzzBatch(const Graph& g, Rng& rng, uint64_t step_seed) {
  const size_t count = 1 + rng.Uniform(12);
  switch (rng.Uniform(3)) {
    case 0:
      return RandomInsertions(g, count, step_seed);
    case 1:
      return RandomDeletions(g, count, step_seed);
    default:
      return RandomMixed(g, count, rng.UniformDouble(), step_seed);
  }
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, EverySubsystemAgreesAcrossEvolution) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Graph g = MakeFuzzGraph(seed);

  ReachCompression rc = CompressR(g);
  PatternCompression pc = CompressB(g);

  PatternGenOptions pattern_options;
  pattern_options.num_nodes = 2 + rng.Uniform(3);
  pattern_options.num_edges = pattern_options.num_nodes;
  pattern_options.max_bound = 1 + rng.Uniform(3);
  pattern_options.star_probability = 0.2;
  const PatternQuery q =
      RandomPattern(DistinctLabels(g), pattern_options, seed ^ 0xbeef);
  IncBMatch inc_match(&g, q);

  for (int step = 0; step < 6; ++step) {
    const UpdateBatch batch = MakeFuzzBatch(g, rng, seed * 131 + step);
    const UpdateBatch effective = ApplyBatch(g, batch);
    IncRCM(g, effective, rc);
    IncPCM(g, effective, pc);
    inc_match.Update(effective);

    // Incremental == batch.
    ExpectEquivalentReachCompression(rc, CompressR(g));
    ExpectEquivalentPatternCompression(pc, CompressB(g));
    ASSERT_EQ(inc_match.result(), Match(g, q))
        << "seed=" << seed << " step=" << step;

    // Query answers through every path.
    const TwoHopIndex two_hop = TwoHopIndex::Build(rc.gr);
    const auto queries =
        RandomReachQueries(g.num_nodes(), 40, seed * 977 + step);
    for (const auto& query : queries) {
      const bool truth = BfsReaches(g, query.u, query.v, PathMode::kReflexive);
      ASSERT_EQ(AnswerOnCompressed(rc, query, PathMode::kReflexive,
                                   ReachAlgorithm::kBfs),
                truth)
          << "seed=" << seed << " step=" << step;
      ASSERT_EQ(AnswerOnCompressed(rc, query, PathMode::kReflexive,
                                   ReachAlgorithm::kBiBfs),
                truth);
      ASSERT_EQ(AnswerOnCompressed(rc, query, PathMode::kReflexive,
                                   ReachAlgorithm::kDfs),
                truth);
      const bool via_two_hop =
          query.u == query.v ||
          two_hop.Reaches(rc.node_map[query.u], rc.node_map[query.v],
                          PathMode::kNonEmpty);
      ASSERT_EQ(via_two_hop, truth);
    }
    ASSERT_EQ(Match(g, q).match_sets, MatchOnCompressed(pc, q).match_sets)
        << "seed=" << seed << " step=" << step;
  }

  // Artifacts survive storage at the final state.
  const std::string dir = ::testing::TempDir();
  const std::string rpath = dir + "/fuzz_rc_" + std::to_string(seed) + ".txt";
  const std::string ppath = dir + "/fuzz_pc_" + std::to_string(seed) + ".txt";
  ASSERT_TRUE(SaveReachCompression(rc, rpath).ok());
  ASSERT_TRUE(SavePatternCompression(pc, ppath).ok());
  ExpectEquivalentReachCompression(rc, LoadReachCompression(rpath).value());
  ExpectEquivalentPatternCompression(pc,
                                     LoadPatternCompression(ppath).value());
  std::remove(rpath.c_str());
  std::remove(ppath.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(1, 33));

}  // namespace
}  // namespace qpgc
