// Copyright 2026 The QPGC Authors.
//
// Reproduces the paper's Section 4.1 counterexample (Fig. 6): the A(k)-index
// with k = 1 merges nodes that are 1-bisimilar but not bisimilar, and the
// resulting index graph gives wrong answers for the pattern
// {(B,C), (B,D)} — whereas compressB is exact.

#include <gtest/gtest.h>

#include "bisim/kbisim.h"
#include "bisim/signature_bisim.h"
#include "core/pattern_scheme.h"
#include "pattern/match.h"

namespace qpgc {
namespace {

// Labels as small integers.
constexpr Label A = 0, B = 1, C = 2, D = 3;

// The paper's G1 (Fig. 6): A1 -> B1 -> {C1, D1}; A2 -> {B2 -> C2, B3 -> D2};
// A3 -> B4 -> C3 and A3 -> B5 -> {C4, D3}.
// (B1 and B5 are the only B nodes with both a C and a D child.)
struct Fig6Graph {
  Graph g{std::vector<Label>(15, 0)};
  // indexes
  NodeId a1 = 0, a2 = 1, a3 = 2;
  NodeId b1 = 3, b2 = 4, b3 = 5, b4 = 6, b5 = 7;
  NodeId c1 = 8, c2 = 9, c3 = 10, c4 = 11;
  NodeId d1 = 12, d2 = 13, d3 = 14;

  Fig6Graph() {
    for (NodeId a : {a1, a2, a3}) g.set_label(a, A);
    for (NodeId b : {b1, b2, b3, b4, b5}) g.set_label(b, B);
    for (NodeId c : {c1, c2, c3, c4}) g.set_label(c, C);
    for (NodeId d : {d1, d2, d3}) g.set_label(d, D);
    g.AddEdge(a1, b1);
    g.AddEdge(b1, c1);
    g.AddEdge(b1, d1);
    g.AddEdge(a2, b2);
    g.AddEdge(a2, b3);
    g.AddEdge(b2, c2);
    g.AddEdge(b3, d2);
    g.AddEdge(a3, b4);
    g.AddEdge(a3, b5);
    g.AddEdge(b4, c3);
    g.AddEdge(b5, c4);
    g.AddEdge(b5, d3);
  }
};

PatternQuery BCDPattern() {
  // Query node B with edges (B,C) and (B,D), both bound 1.
  PatternQuery q;
  const uint32_t qb = q.AddNode(B);
  const uint32_t qc = q.AddNode(C);
  const uint32_t qd = q.AddNode(D);
  q.AddEdge(qb, qc, 1);
  q.AddEdge(qb, qd, 1);
  return q;
}

TEST(KBisimCounterexample, OneBisimilarMergesAllANodes) {
  const Fig6Graph f;
  // A(k) groups by *incoming* structure: all A nodes are roots, so they are
  // 1-bisimilar and merged — although not (out-)bisimilar.
  const Partition k1 = KBisimulationBackward(f.g, 1);
  EXPECT_EQ(k1.block_of[f.a1], k1.block_of[f.a2]);
  EXPECT_EQ(k1.block_of[f.a2], k1.block_of[f.a3]);
  const Partition full = SignatureBisimulation(f.g);
  EXPECT_NE(full.block_of[f.a1], full.block_of[f.a2]);
  EXPECT_NE(full.block_of[f.a1], full.block_of[f.a3]);
  EXPECT_NE(full.block_of[f.a2], full.block_of[f.a3]);
}

TEST(KBisimCounterexample, AkMergesAllBNodes) {
  const Fig6Graph f;
  // Every B node has only A parents: one block in the A(1) index.
  const Partition k1 = KBisimulationBackward(f.g, 1);
  EXPECT_EQ(k1.block_of[f.b1], k1.block_of[f.b2]);
  EXPECT_EQ(k1.block_of[f.b2], k1.block_of[f.b3]);
  EXPECT_EQ(k1.block_of[f.b3], k1.block_of[f.b4]);
  EXPECT_EQ(k1.block_of[f.b4], k1.block_of[f.b5]);
}

TEST(KBisimCounterexample, TrueMatchesAreB1AndB5) {
  const Fig6Graph f;
  const MatchResult m = Match(f.g, BCDPattern());
  ASSERT_TRUE(m.matched);
  EXPECT_EQ(m.match_sets[0], (std::vector<NodeId>{f.b1, f.b5}));
}

TEST(KBisimCounterexample, AkIndexOverApproximates) {
  const Fig6Graph f;
  const Partition k1 = KBisimulationBackward(f.g, 1);
  const Graph ak = AkIndexGraph(f.g, 1);
  const MatchResult on_index = Match(ak, BCDPattern());
  ASSERT_TRUE(on_index.matched);
  // Expand the index answer back to data nodes.
  std::vector<NodeId> expanded;
  for (NodeId blk : on_index.match_sets[0]) {
    for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
      if (k1.block_of[v] == blk) expanded.push_back(v);
    }
  }
  std::sort(expanded.begin(), expanded.end());
  // The merged B block has C children (via b1, b2, ...) and D children (via
  // b1, b3, ...), so the index graph reports ALL B nodes as matches — the
  // paper's Section 4.1 claim — although only b1 and b5 truly match.
  const std::vector<NodeId> truth = {f.b1, f.b5};
  EXPECT_EQ(expanded.size(), 5u);
  EXPECT_NE(expanded, truth);
}

TEST(KBisimCounterexample, CompressBIsExactOnFig6) {
  const Fig6Graph f;
  const PatternCompression pc = CompressB(f.g);
  const MatchResult direct = Match(f.g, BCDPattern());
  const MatchResult via_gr = MatchOnCompressed(pc, BCDPattern());
  EXPECT_EQ(direct.match_sets, via_gr.match_sets);
  EXPECT_EQ(via_gr.match_sets[0], (std::vector<NodeId>{f.b1, f.b5}));
}

TEST(KBisimCounterexample, KBisimConvergesToFullBisim) {
  const Fig6Graph f;
  // Graph depth is 2, so k >= 3 equals the full bisimulation.
  const Partition k3 = KBisimulation(f.g, 3);
  const Partition full = SignatureBisimulation(f.g);
  EXPECT_TRUE(SamePartition(k3, full));
}

TEST(KBisimCounterexample, KZeroIsLabelPartition) {
  const Fig6Graph f;
  const Partition k0 = KBisimulation(f.g, 0);
  EXPECT_EQ(k0.num_blocks, 4u);  // A, B, C, D
}

}  // namespace
}  // namespace qpgc
