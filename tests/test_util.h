// Copyright 2026 The QPGC Authors.
//
// Shared helpers for the test suite: structural equivalence of compression
// artifacts up to class renumbering (incremental maintenance must reproduce
// the batch result exactly, but class ids are arbitrary).

#ifndef QPGC_TESTS_TEST_UTIL_H_
#define QPGC_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/pattern_scheme.h"
#include "reach/compress_r.h"

namespace qpgc {

// Maps classes of `a` onto classes of `b` by shared members; fails the
// current test with a diagnostic if the partitions differ.
inline bool MatchClasses(const std::vector<std::vector<NodeId>>& a_members,
                         const std::vector<NodeId>& b_class_of,
                         const std::vector<std::vector<NodeId>>& b_members,
                         std::vector<NodeId>& a_to_b) {
  a_to_b.assign(a_members.size(), kInvalidNode);
  for (size_t c = 0; c < a_members.size(); ++c) {
    if (a_members[c].empty()) {
      ADD_FAILURE() << "class " << c << " empty";
      return false;
    }
    const NodeId image = b_class_of[a_members[c][0]];
    if (a_members[c] != b_members[image]) {
      ADD_FAILURE() << "class " << c << " has different member set";
      return false;
    }
    a_to_b[c] = image;
  }
  return true;
}

// Full structural equivalence of two reachability compressions (partition,
// cyclic flags, ranks, and the reduced edge set — unique on a DAG).
inline void ExpectEquivalentReachCompression(const ReachCompression& a,
                                             const ReachCompression& b) {
  ASSERT_EQ(a.node_map.size(), b.node_map.size());
  ASSERT_EQ(a.gr.num_nodes(), b.gr.num_nodes()) << "class counts differ";
  std::vector<NodeId> a_to_b;
  if (!MatchClasses(a.members, b.node_map, b.members, a_to_b)) return;
  for (NodeId c = 0; c < a.gr.num_nodes(); ++c) {
    EXPECT_EQ(a.cyclic[c], b.cyclic[a_to_b[c]]) << "cyclic flag, class " << c;
    EXPECT_EQ(a.ranks[c], b.ranks[a_to_b[c]]) << "rank, class " << c;
  }
  ASSERT_EQ(a.gr.num_edges(), b.gr.num_edges()) << "edge counts differ";
  a.gr.ForEachEdge([&](NodeId c, NodeId d) {
    EXPECT_TRUE(b.gr.HasEdge(a_to_b[c], a_to_b[d]))
        << "edge (" << c << "," << d << ") missing in counterpart";
  });
}

// Full structural equivalence of two pattern compressions (partition,
// labels, quotient edges).
inline void ExpectEquivalentPatternCompression(const PatternCompression& a,
                                               const PatternCompression& b) {
  ASSERT_EQ(a.node_map.size(), b.node_map.size());
  ASSERT_EQ(a.gr.num_nodes(), b.gr.num_nodes()) << "block counts differ";
  std::vector<NodeId> a_to_b;
  if (!MatchClasses(a.members, b.node_map, b.members, a_to_b)) return;
  for (NodeId c = 0; c < a.gr.num_nodes(); ++c) {
    EXPECT_EQ(a.gr.label(c), b.gr.label(a_to_b[c])) << "label, block " << c;
  }
  ASSERT_EQ(a.gr.num_edges(), b.gr.num_edges()) << "edge counts differ";
  a.gr.ForEachEdge([&](NodeId c, NodeId d) {
    EXPECT_TRUE(b.gr.HasEdge(a_to_b[c], a_to_b[d]))
        << "edge (" << c << "," << d << ") missing in counterpart";
  });
}

}  // namespace qpgc

#endif  // QPGC_TESTS_TEST_UTIL_H_
