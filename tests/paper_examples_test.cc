// Copyright 2026 The QPGC Authors.
//
// The paper's running example (Fig. 2, Examples 1-5): a multi-agent
// recommendation network with book server agents (BSA), music shop agents
// (MSA), facilitator agents (FA) and customers (C). Reconstructed so that
// every relationship the paper states holds:
//   * Example 1: the pattern query ("BSAs reaching customers within 2 hops,
//     customers interacting with FAs") matches exactly
//     {(BSA, BSA1/2), (C, C1/2), (FA, FA1/2)}.
//   * Example 2: (BSA1, BSA2) and (MSA1, MSA2) are reachability equivalent;
//     (FA3, FA4) are not (FA3 reaches C3, FA4 does not).
//   * Example 4: FA3 and FA4 are bisimilar; FA2 and FA3 are not.
//   * Example 5 / Fig. 2's Gr: the pattern compression has exactly the six
//     hypernodes {BSA, MSA, FA, FA', C, C'}.

#include <gtest/gtest.h>

#include "bisim/signature_bisim.h"
#include "core/pattern_scheme.h"
#include "core/reach_scheme.h"
#include "inc/inc_pcm.h"
#include "inc/inc_rcm.h"
#include "pattern/match.h"
#include "reach/equivalence.h"
#include "test_util.h"

namespace qpgc {
namespace {

constexpr Label BSA = 0, MSA = 1, FA = 2, C = 3;

struct RecommendationNetwork {
  Graph g{std::vector<Label>{BSA, BSA, MSA, MSA, FA, FA, FA, FA,
                             C,   C,   C,   C,   C}};
  NodeId bsa1 = 0, bsa2 = 1;
  NodeId msa1 = 2, msa2 = 3;
  NodeId fa1 = 4, fa2 = 5, fa3 = 6, fa4 = 7;
  NodeId c1 = 8, c2 = 9, c3 = 10, c4 = 11, c5 = 12;

  RecommendationNetwork() {
    // BSAs recommend to both MSAs and to customers C1, C2.
    for (NodeId b : {bsa1, bsa2}) {
      g.AddEdge(b, msa1);
      g.AddEdge(b, msa2);
      g.AddEdge(b, c1);
      g.AddEdge(b, c2);
    }
    // Customers C1, C2 interact with facilitators FA1, FA2 (both ways).
    g.AddEdge(c1, fa1);
    g.AddEdge(fa1, c1);
    g.AddEdge(c2, fa2);
    g.AddEdge(fa2, c2);
    // FA3, FA4 recommend to leaf customers (no interaction back).
    g.AddEdge(fa3, c3);
    g.AddEdge(fa4, c4);
    // C5 is an isolated customer.
  }
};

// The pattern Qp of Fig. 2: BSA reaches C within 2 hops; C and FA interact.
PatternQuery Fig2Pattern() {
  PatternQuery q;
  const uint32_t qbsa = q.AddNode(BSA);
  const uint32_t qc = q.AddNode(C);
  const uint32_t qfa = q.AddNode(FA);
  q.AddEdge(qbsa, qc, 2);
  q.AddEdge(qc, qfa, 1);
  q.AddEdge(qfa, qc, 1);
  return q;
}

TEST(PaperExample1, MatchIsExactlyTheStatedRelation) {
  const RecommendationNetwork net;
  const MatchResult m = Match(net.g, Fig2Pattern());
  ASSERT_TRUE(m.matched);
  EXPECT_EQ(m.match_sets[0], (std::vector<NodeId>{net.bsa1, net.bsa2}));
  EXPECT_EQ(m.match_sets[1], (std::vector<NodeId>{net.c1, net.c2}));
  EXPECT_EQ(m.match_sets[2], (std::vector<NodeId>{net.fa1, net.fa2}));
}

TEST(PaperExample1, SameAnswerThroughCompressedGraph) {
  const RecommendationNetwork net;
  const PatternCompression pc = CompressB(net.g);
  const MatchResult direct = Match(net.g, Fig2Pattern());
  const MatchResult via_gr = MatchOnCompressed(pc, Fig2Pattern());
  EXPECT_EQ(direct.match_sets, via_gr.match_sets);
  // And the compressed evaluation needs to consider fewer C candidates —
  // the efficiency point of Example 1.
  EXPECT_LT(pc.gr.num_nodes(), net.g.num_nodes());
}

TEST(PaperExample2, ReachabilityEquivalences) {
  const RecommendationNetwork net;
  const ReachPartition re = ComputeReachEquivalence(net.g);
  EXPECT_EQ(re.class_of[net.bsa1], re.class_of[net.bsa2]);
  EXPECT_EQ(re.class_of[net.msa1], re.class_of[net.msa2]);
  // FA3 reaches C3, FA4 does not: not equivalent.
  EXPECT_NE(re.class_of[net.fa3], re.class_of[net.fa4]);
}

TEST(PaperExample3, ReachabilityQueriesThroughGr) {
  const RecommendationNetwork net;
  const ReachabilityPreservingCompression scheme(net.g);
  // QR(BSA1, FA2) = true (Example: BSA1 -> C2 -> FA2).
  EXPECT_TRUE(scheme.Answer({net.bsa1, net.fa2}));
  EXPECT_FALSE(scheme.Answer({net.fa4, net.c3}));
  EXPECT_TRUE(scheme.Answer({net.fa3, net.c3}));
  // Compression shrinks the graph.
  EXPECT_LT(scheme.artifact().size(), net.g.size());
}

TEST(PaperExample4, BisimilarityRelations) {
  const RecommendationNetwork net;
  const Partition rb = SignatureBisimulation(net.g);
  EXPECT_EQ(rb.block_of[net.fa3], rb.block_of[net.fa4]);   // bisimilar
  EXPECT_NE(rb.block_of[net.fa2], rb.block_of[net.fa3]);   // not bisimilar
  EXPECT_EQ(rb.block_of[net.bsa1], rb.block_of[net.bsa2]);
  EXPECT_EQ(rb.block_of[net.c1], rb.block_of[net.c2]);
  EXPECT_EQ(rb.block_of[net.c3], rb.block_of[net.c4]);
  EXPECT_EQ(rb.block_of[net.c4], rb.block_of[net.c5]);
  EXPECT_NE(rb.block_of[net.c1], rb.block_of[net.c3]);
}

TEST(PaperExample5, SixHypernodesInPatternGr) {
  const RecommendationNetwork net;
  const PatternCompression pc = CompressB(net.g);
  // {BSA, MSA, FA, FA', C, C'} — six hypernodes, as drawn in Fig. 2.
  EXPECT_EQ(pc.gr.num_nodes(), 6u);
  EXPECT_EQ(pc.node_map[net.fa1], pc.node_map[net.fa2]);
  EXPECT_NE(pc.node_map[net.fa1], pc.node_map[net.fa3]);
}

TEST(PaperFig3, BooleanPatternNeedsNoPostProcessing) {
  const RecommendationNetwork net;
  const PatternCompression pc = CompressB(net.g);
  EXPECT_TRUE(BooleanMatchOnCompressed(pc, Fig2Pattern()));
  EXPECT_EQ(BooleanMatch(net.g, Fig2Pattern()), true);
}

// Example 6 / Fig. 9 in spirit: incremental reachability maintenance on the
// recommendation network — a redundant insertion is discharged without
// touching Gr; a cycle-forming insertion merges classes; a cycle-breaking
// deletion splits them again.
TEST(PaperExample6, IncrementalReachabilityScenario) {
  RecommendationNetwork net;
  ReachCompression rc = CompressR(net.g);

  // (1) e1-style redundant insertion: BSA1 already reaches FA1 via C1.
  {
    const Graph before_gr = rc.gr;
    UpdateBatch batch;
    batch.Insert(net.bsa1, net.fa1);
    const UpdateBatch effective = ApplyBatch(net.g, batch);
    const IncRcmStats stats = IncRCM(net.g, effective, rc);
    EXPECT_EQ(stats.reduced_updates, 1u);
    EXPECT_EQ(stats.kept_updates, 0u);
    EXPECT_EQ(rc.gr, before_gr);
    ExpectEquivalentReachCompression(rc, CompressR(net.g));
  }

  // (2) e2-style SCC formation: FA2 -> BSA1 closes a cycle
  // BSA1 -> C2 -> FA2 -> BSA1; the classes on it merge into one cyclic
  // class.
  {
    UpdateBatch batch;
    batch.Insert(net.fa2, net.bsa1);
    const UpdateBatch effective = ApplyBatch(net.g, batch);
    IncRCM(net.g, effective, rc);
    ExpectEquivalentReachCompression(rc, CompressR(net.g));
    const NodeId c = rc.node_map[net.bsa1];
    EXPECT_EQ(rc.node_map[net.c2], c);
    EXPECT_EQ(rc.node_map[net.fa2], c);
    EXPECT_TRUE(rc.cyclic[c]);
  }

  // (3) e4-style cycle break: deleting C2 -> FA2 splits the SCC class.
  {
    UpdateBatch batch;
    batch.Delete(net.c2, net.fa2);
    const UpdateBatch effective = ApplyBatch(net.g, batch);
    IncRCM(net.g, effective, rc);
    ExpectEquivalentReachCompression(rc, CompressR(net.g));
    EXPECT_NE(rc.node_map[net.c2], rc.node_map[net.fa2]);
  }
}

// Example 7 / Fig. 11 in spirit: deleting C1's interaction edge demotes C1
// to a plain leaf customer — incPCM merges it with (C3, ..., Ck), and FA1,
// now a facilitator of leaf customers only, merges with (FA3, FA4). The
// mirror-image deletion then becomes redundant under minDelta.
TEST(PaperExample7, IncrementalPatternScenario) {
  RecommendationNetwork net;
  PatternCompression pc = CompressB(net.g);
  ASSERT_NE(pc.node_map[net.c1], pc.node_map[net.c3]);
  ASSERT_NE(pc.node_map[net.fa1], pc.node_map[net.fa3]);

  UpdateBatch batch;
  batch.Delete(net.c1, net.fa1);  // the paper's -e1
  const UpdateBatch effective = ApplyBatch(net.g, batch);
  IncPCM(net.g, effective, pc);
  ExpectEquivalentPatternCompression(pc, CompressB(net.g));

  // C1 merged with the leaf customers (C3, C4, C5).
  EXPECT_EQ(pc.node_map[net.c1], pc.node_map[net.c3]);
  EXPECT_EQ(pc.node_map[net.c3], pc.node_map[net.c5]);
  // FA1 merged with (FA3, FA4).
  EXPECT_EQ(pc.node_map[net.fa1], pc.node_map[net.fa3]);
  EXPECT_EQ(pc.node_map[net.fa3], pc.node_map[net.fa4]);
  // C2 and FA2 keep their own blocks.
  EXPECT_NE(pc.node_map[net.c2], pc.node_map[net.c1]);
  EXPECT_NE(pc.node_map[net.fa2], pc.node_map[net.fa1]);

  // The paper's redundant -e3: with FA1 now pointing only at leaf
  // customers, deleting one of two same-block children is discharged by
  // minDelta. Give FA1 a second leaf child first, then delete it.
  {
    UpdateBatch setup;
    setup.Insert(net.fa1, net.c4);
    const UpdateBatch eff_setup = ApplyBatch(net.g, setup);
    IncPCM(net.g, eff_setup, pc);
    ExpectEquivalentPatternCompression(pc, CompressB(net.g));

    UpdateBatch redundant;
    redundant.Delete(net.fa1, net.c4);  // FA1 still has leaf child C1
    const UpdateBatch eff_red = ApplyBatch(net.g, redundant);
    const IncPcmStats stats = IncPCM(net.g, eff_red, pc);
    EXPECT_EQ(stats.reduced_updates, 1u);
    ExpectEquivalentPatternCompression(pc, CompressB(net.g));
  }
}

}  // namespace
}  // namespace qpgc
