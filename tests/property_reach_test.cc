// Copyright 2026 The QPGC Authors.
//
// Property suite for Theorem 2: for every graph family, every seed, every
// path mode and every stock algorithm, QR(u, v) on G equals the rewritten
// query on Gr. This is the end-to-end guarantee everything else serves.

#include <gtest/gtest.h>

#include "gen/dataset_catalog.h"
#include "gen/random_models.h"
#include "gen/uniform.h"
#include "reach/compress_r.h"
#include "reach/queries.h"

namespace qpgc {
namespace {

struct Family {
  const char* name;
  Graph (*make)(uint64_t seed);
};

Graph MakeUniform(uint64_t s) { return GenerateUniform(100, 300, 1, s); }
Graph MakeDense(uint64_t s) { return GenerateUniform(60, 600, 1, s); }
Graph MakeSparse(uint64_t s) { return GenerateUniform(150, 150, 1, s); }
Graph MakeSocial(uint64_t s) { return PreferentialAttachment(120, 3, 0.5, s); }
Graph MakeWeb(uint64_t s) { return CopyingModel(120, 4, 0.6, s); }
Graph MakeCite(uint64_t s) { return CitationDag(120, 4, 0.5, s); }
Graph MakeP2P(uint64_t s) { return LayeredRandom(120, 6, 3, 0.1, s); }

const Family kFamilies[] = {
    {"uniform", MakeUniform}, {"dense", MakeDense}, {"sparse", MakeSparse},
    {"social", MakeSocial},   {"web", MakeWeb},     {"citation", MakeCite},
    {"p2p", MakeP2P},
};

class ReachPreservationProperty
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ReachPreservationProperty, QueryAnswersPreserved) {
  const auto [family_idx, seed] = GetParam();
  const Family& family = kFamilies[family_idx];
  const Graph g = family.make(seed);
  const ReachCompression rc = CompressR(g);
  EXPECT_LE(rc.size(), g.size()) << family.name;

  const auto queries = RandomReachQueries(g.num_nodes(), 120, seed * 31 + 7);
  for (const auto& q : queries) {
    for (const PathMode mode : {PathMode::kReflexive, PathMode::kNonEmpty}) {
      const bool truth = EvalReach(g, q.u, q.v, mode, ReachAlgorithm::kBfs);
      EXPECT_EQ(AnswerOnCompressed(rc, q, mode, ReachAlgorithm::kBfs), truth)
          << family.name << " seed=" << seed << " (" << q.u << "," << q.v
          << ") mode=" << static_cast<int>(mode);
    }
    // Algorithm independence on Gr (BiBFS and DFS run unchanged).
    const bool bfs = AnswerOnCompressed(rc, q, PathMode::kReflexive,
                                        ReachAlgorithm::kBfs);
    EXPECT_EQ(AnswerOnCompressed(rc, q, PathMode::kReflexive,
                                 ReachAlgorithm::kBiBfs),
              bfs);
    EXPECT_EQ(AnswerOnCompressed(rc, q, PathMode::kReflexive,
                                 ReachAlgorithm::kDfs),
              bfs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, ReachPreservationProperty,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values<uint64_t>(1, 2, 3)));

// Self-query correctness on every node: the diagonal is where naive
// quotient constructions go wrong.
TEST(ReachPreservationProperty, DiagonalExhaustive) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = PreferentialAttachment(80, 3, 0.5, seed);
    const ReachCompression rc = CompressR(g);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const ReachQuery q{v, v};
      EXPECT_TRUE(AnswerOnCompressed(rc, q, PathMode::kReflexive,
                                     ReachAlgorithm::kBfs));
      EXPECT_EQ(AnswerOnCompressed(rc, q, PathMode::kNonEmpty,
                                   ReachAlgorithm::kBfs),
                EvalReach(g, v, v, PathMode::kNonEmpty, ReachAlgorithm::kBfs))
          << "node " << v;
    }
  }
}

// Compression never grows and the quotient is consistent with the class
// structure theorem: every cyclic class is exactly one SCC.
TEST(ReachPreservationProperty, CyclicClassesAreSccs) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = GenerateUniform(120, 500, 1, seed);
    const ReachCompression rc = CompressR(g);
    for (NodeId c = 0; c < rc.gr.num_nodes(); ++c) {
      if (!rc.cyclic[c]) continue;
      // All members mutually reachable.
      const NodeId rep = rc.members[c][0];
      for (NodeId v : rc.members[c]) {
        EXPECT_TRUE(BfsReaches(g, rep, v, PathMode::kNonEmpty));
        EXPECT_TRUE(BfsReaches(g, v, rep, PathMode::kNonEmpty));
      }
    }
  }
}

// Dataset-catalog smoke property: compression works on every stand-in and
// achieves a real reduction on social families.
TEST(ReachPreservationProperty, CatalogCompresses) {
  for (const auto& spec : ReachabilityDatasets()) {
    if (spec.num_nodes > 10000) continue;  // keep unit tests fast
    const Graph g = MakeDataset(spec);
    const ReachCompression rc = CompressR(g);
    EXPECT_LE(rc.size(), g.size()) << spec.name;
    const auto queries = RandomReachQueries(g.num_nodes(), 30, 7);
    for (const auto& q : queries) {
      EXPECT_EQ(
          AnswerOnCompressed(rc, q, PathMode::kReflexive, ReachAlgorithm::kBfs),
          EvalReach(g, q.u, q.v, PathMode::kReflexive, ReachAlgorithm::kBfs))
          << spec.name;
    }
  }
}

}  // namespace
}  // namespace qpgc
