// Copyright 2026 The QPGC Authors.
//
// Property suite for Theorem 4: Qp(G) = P(Qp(Gr)) for random graphs and
// random bounded-simulation patterns, across generator families, label
// alphabet sizes, bounds and '*' edges.

#include <gtest/gtest.h>

#include "core/pattern_scheme.h"
#include "gen/random_models.h"
#include "gen/uniform.h"
#include "graph/traversal.h"
#include "pattern/match.h"
#include "pattern/pattern_gen.h"

namespace qpgc {
namespace {

Graph MakeGraph(int family, uint64_t seed, size_t num_labels) {
  Graph g;
  switch (family) {
    case 0:
      g = GenerateUniform(90, 280, num_labels, seed);
      return g;
    case 1:
      g = PreferentialAttachment(90, 3, 0.5, seed);
      break;
    case 2:
      g = CopyingModel(90, 4, 0.6, seed);
      break;
    default:
      g = CitationDag(90, 4, 0.5, seed);
      break;
  }
  AssignZipfLabels(g, num_labels, 0.8, seed ^ 0x77);
  return g;
}

class PatternPreservationProperty
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, int>> {};

TEST_P(PatternPreservationProperty, MatchPreserved) {
  const auto [family, seed, num_labels] = GetParam();
  const Graph g = MakeGraph(family, seed, static_cast<size_t>(num_labels));
  const PatternCompression pc = CompressB(g);
  EXPECT_LE(pc.size(), g.size());

  const std::vector<Label> labels = DistinctLabels(g);
  for (uint64_t pattern_seed = 0; pattern_seed < 6; ++pattern_seed) {
    PatternGenOptions options;
    options.num_nodes = 2 + pattern_seed % 3;
    options.num_edges = options.num_nodes + pattern_seed % 2;
    options.max_bound = 3;
    options.star_probability = pattern_seed % 3 == 0 ? 0.3 : 0.0;
    const PatternQuery q = RandomPattern(labels, options, pattern_seed + seed);

    const MatchResult direct = Match(g, q);
    const MatchResult via_gr = MatchOnCompressed(pc, q);
    EXPECT_EQ(direct.matched, via_gr.matched)
        << "family=" << family << " seed=" << seed
        << " pattern_seed=" << pattern_seed;
    EXPECT_EQ(direct.match_sets, via_gr.match_sets)
        << "family=" << family << " seed=" << seed
        << " pattern_seed=" << pattern_seed << " " << q.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesSeedsLabels, PatternPreservationProperty,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values<uint64_t>(1, 2),
                       ::testing::Values(1, 3, 8)));

// Graph simulation (all bounds 1) is the special case [12]; check it
// explicitly since compressB's claim covers it.
TEST(PatternPreservationProperty, GraphSimulationSpecialCase) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = PreferentialAttachment(100, 3, 0.4, seed);
    AssignZipfLabels(g, 4, 0.8, seed);
    const PatternCompression pc = CompressB(g);
    PatternGenOptions options;
    options.num_nodes = 3;
    options.num_edges = 4;
    options.max_bound = 1;  // simulation
    const PatternQuery q = RandomPattern(DistinctLabels(g), options, seed);
    ASSERT_TRUE(q.IsSimulationPattern());
    EXPECT_EQ(Match(g, q).match_sets, MatchOnCompressed(pc, q).match_sets)
        << "seed=" << seed;
  }
}

// The post-processing function P is linear in the answer: the expanded
// match has exactly the members of the matched blocks.
TEST(PatternPreservationProperty, ExpansionIsExactUnion) {
  Graph g = GenerateUniform(80, 240, 3, 17);
  const PatternCompression pc = CompressB(g);
  PatternQuery q;
  const uint32_t a = q.AddNode(g.label(0));
  (void)a;
  const MatchResult on_gr = Match(pc.gr, q);
  const MatchResult expanded = ExpandMatch(pc, on_gr);
  size_t expected = 0;
  for (NodeId blk : on_gr.match_sets[0]) expected += pc.members[blk].size();
  EXPECT_EQ(expanded.match_sets[0].size(), expected);
}

// The distance fact behind Theorem 4's bounded-path preservation (the
// paper's correctness argument: "for each node w in [v] there is a node
// w' in [v'] ... such that len(rho) = len(rho')"): the shortest non-empty
// path from a node u to the nearest member of a block B depends only on
// u's block, and equals the shortest path between the blocks in Gr.
TEST(PatternPreservationProperty, BlockDistancesPreserved) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = PreferentialAttachment(70, 3, 0.4, seed);
    AssignZipfLabels(g, 3, 0.8, seed);
    const PatternCompression pc = CompressB(g);
    const size_t nb = pc.gr.num_nodes();

    // Node-level: shortest non-empty path from v to any member of block b.
    const auto node_dist_to_block = [&](NodeId v, NodeId b) -> uint32_t {
      std::vector<uint32_t> dist(g.num_nodes(), kUnreachedDist);
      std::vector<NodeId> queue;
      for (NodeId w : g.OutNeighbors(v)) {
        if (dist[w] == kUnreachedDist) {
          dist[w] = 1;
          queue.push_back(w);
        }
      }
      uint32_t best = kUnreachedDist;
      for (size_t i = 0; i < queue.size(); ++i) {
        const NodeId x = queue[i];
        if (pc.node_map[x] == b) {
          best = std::min(best, dist[x]);
          continue;  // no shorter path extends beyond a hit
        }
        for (NodeId w : g.OutNeighbors(x)) {
          if (dist[w] == kUnreachedDist) {
            dist[w] = dist[x] + 1;
            queue.push_back(w);
          }
        }
      }
      return best;
    };

    for (NodeId a = 0; a < nb; a += 3) {
      // Block-level distances from a on Gr.
      const auto gr_dist = [&](NodeId b) -> uint32_t {
        std::vector<uint32_t> dist(nb, kUnreachedDist);
        std::vector<NodeId> queue;
        for (NodeId w : pc.gr.OutNeighbors(a)) {
          if (dist[w] == kUnreachedDist) {
            dist[w] = 1;
            queue.push_back(w);
          }
        }
        for (size_t i = 0; i < queue.size(); ++i) {
          for (NodeId w : pc.gr.OutNeighbors(queue[i])) {
            if (dist[w] == kUnreachedDist) {
              dist[w] = dist[queue[i]] + 1;
              queue.push_back(w);
            }
          }
        }
        return dist[b];
      };
      for (NodeId b = 0; b < nb; b += 4) {
        const uint32_t expected = gr_dist(b);
        for (NodeId member : pc.members[a]) {
          EXPECT_EQ(node_dist_to_block(member, b), expected)
              << "seed=" << seed << " member " << member << " of block " << a
              << " to block " << b;
        }
      }
    }
  }
}

// Single-label graphs (the paper's P2P case, |L| = 1) still work: bisim
// reduces to pure structure.
TEST(PatternPreservationProperty, SingleLabelGraphs) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = LayeredRandom(100, 6, 3, 0.1, seed);  // all kNoLabel
    const PatternCompression pc = CompressB(g);
    PatternQuery q;
    const uint32_t x = q.AddNode(kNoLabel);
    const uint32_t y = q.AddNode(kNoLabel);
    q.AddEdge(x, y, 2);
    EXPECT_EQ(Match(g, q).match_sets, MatchOnCompressed(pc, q).match_sets);
  }
}

}  // namespace
}  // namespace qpgc
