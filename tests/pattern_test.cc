// Copyright 2026 The QPGC Authors.

#include "pattern/pattern.h"

#include <gtest/gtest.h>

#include "gen/uniform.h"
#include "pattern/pattern_gen.h"

namespace qpgc {
namespace {

TEST(PatternTest, BuildAndInspect) {
  PatternQuery q;
  const uint32_t a = q.AddNode(1);
  const uint32_t b = q.AddNode(2);
  q.AddEdge(a, b, 2);
  EXPECT_EQ(q.num_nodes(), 2u);
  EXPECT_EQ(q.num_edges(), 1u);
  EXPECT_EQ(q.label(a), 1u);
  EXPECT_EQ(q.edge(0).bound, 2u);
  EXPECT_EQ(q.out_edges(a).size(), 1u);
  EXPECT_TRUE(q.out_edges(b).empty());
}

TEST(PatternTest, SimulationPatternDetection) {
  PatternQuery q;
  const uint32_t a = q.AddNode(1);
  const uint32_t b = q.AddNode(2);
  q.AddEdge(a, b, 1);
  EXPECT_TRUE(q.IsSimulationPattern());
  q.AddEdge(b, a, 3);
  EXPECT_FALSE(q.IsSimulationPattern());
}

TEST(PatternTest, DebugStringShowsStar) {
  PatternQuery q;
  const uint32_t a = q.AddNode(1);
  const uint32_t b = q.AddNode(2);
  q.AddEdge(a, b, kStarBound);
  EXPECT_NE(q.DebugString().find("*"), std::string::npos);
}

TEST(PatternGenTest, RespectsSizeParameters) {
  const std::vector<Label> labels = {0, 1, 2, 3};
  PatternGenOptions options;
  options.num_nodes = 5;
  options.num_edges = 7;
  options.max_bound = 3;
  const PatternQuery q = RandomPattern(labels, options, 77);
  EXPECT_EQ(q.num_nodes(), 5u);
  EXPECT_EQ(q.num_edges(), 7u);
  for (const auto& e : q.edges()) {
    EXPECT_GE(e.bound, 1u);
    EXPECT_LE(e.bound, 3u);
    EXPECT_NE(e.from, e.to);
  }
}

TEST(PatternGenTest, WeaklyConnected) {
  const std::vector<Label> labels = {0, 1};
  PatternGenOptions options;
  options.num_nodes = 6;
  options.num_edges = 6;
  const PatternQuery q = RandomPattern(labels, options, 31);
  // Union-find over undirected edges.
  std::vector<uint32_t> parent(q.num_nodes());
  for (uint32_t i = 0; i < parent.size(); ++i) parent[i] = i;
  const auto find = [&](uint32_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const auto& e : q.edges()) parent[find(e.from)] = find(e.to);
  for (uint32_t i = 1; i < q.num_nodes(); ++i) {
    EXPECT_EQ(find(i), find(0)) << "pattern not weakly connected";
  }
}

TEST(PatternGenTest, StarProbabilityProducesStars) {
  const std::vector<Label> labels = {0};
  PatternGenOptions options;
  options.num_nodes = 4;
  options.num_edges = 8;
  options.star_probability = 1.0;
  const PatternQuery q = RandomPattern(labels, options, 5);
  for (const auto& e : q.edges()) EXPECT_EQ(e.bound, kStarBound);
}

TEST(PatternGenTest, DeterministicInSeed) {
  const std::vector<Label> labels = {0, 1, 2};
  PatternGenOptions options;
  options.num_nodes = 4;
  options.num_edges = 5;
  const PatternQuery a = RandomPattern(labels, options, 123);
  const PatternQuery b = RandomPattern(labels, options, 123);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (uint32_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).from, b.edge(e).from);
    EXPECT_EQ(a.edge(e).to, b.edge(e).to);
    EXPECT_EQ(a.edge(e).bound, b.edge(e).bound);
  }
}

TEST(PatternGenTest, DistinctLabelsHelper) {
  Graph g(std::vector<Label>{3, 1, 3, 2});
  EXPECT_EQ(DistinctLabels(g), (std::vector<Label>{1, 2, 3}));
}

}  // namespace
}  // namespace qpgc
