// Copyright 2026 The QPGC Authors.

#include "pattern/inc_match.h"

#include <gtest/gtest.h>

#include "gen/uniform.h"
#include "gen/update_gen.h"
#include "pattern/pattern_gen.h"

namespace qpgc {
namespace {

PatternQuery ThreeNodePattern(uint64_t seed) {
  PatternGenOptions options;
  options.num_nodes = 3;
  options.num_edges = 3;
  options.max_bound = 2;
  options.star_probability = 0.2;
  return RandomPattern({0, 1, 2}, options, seed);
}

TEST(IncMatchTest, DeletionShrinksMatch) {
  // 0(A) -> 1(B); deleting the edge kills the match.
  Graph g(std::vector<Label>{0, 1});
  g.AddEdge(0, 1);
  PatternQuery q;
  const uint32_t a = q.AddNode(0);
  const uint32_t b = q.AddNode(1);
  q.AddEdge(a, b, 1);
  IncBMatch inc(&g, q);
  ASSERT_TRUE(inc.result().matched);
  UpdateBatch batch;
  batch.Delete(0, 1);
  const UpdateBatch effective = ApplyBatch(g, batch);
  inc.Update(effective);
  EXPECT_FALSE(inc.result().matched);
  EXPECT_EQ(inc.result(), Match(g, q));
}

TEST(IncMatchTest, InsertionGrowsMatch) {
  Graph g(std::vector<Label>{0, 1});
  PatternQuery q;
  const uint32_t a = q.AddNode(0);
  const uint32_t b = q.AddNode(1);
  q.AddEdge(a, b, 1);
  IncBMatch inc(&g, q);
  ASSERT_FALSE(inc.result().matched);
  UpdateBatch batch;
  batch.Insert(0, 1);
  const UpdateBatch effective = ApplyBatch(g, batch);
  inc.Update(effective);
  EXPECT_TRUE(inc.result().matched);
  EXPECT_EQ(inc.result(), Match(g, q));
}

TEST(IncMatchTest, InsertionEnablingCyclicSupport) {
  // Mutually supporting pair that only becomes valid after an insertion —
  // the case that breaks naive "grow-only" maintenance and that the
  // cone-based warm start must handle.
  Graph g(std::vector<Label>{0, 1});
  g.AddEdge(1, 0);  // B -> A present; A -> B missing
  PatternQuery q;
  const uint32_t a = q.AddNode(0);
  const uint32_t b = q.AddNode(1);
  q.AddEdge(a, b, 1);
  q.AddEdge(b, a, 1);
  IncBMatch inc(&g, q);
  ASSERT_FALSE(inc.result().matched);
  UpdateBatch batch;
  batch.Insert(0, 1);
  const UpdateBatch effective = ApplyBatch(g, batch);
  inc.Update(effective);
  EXPECT_TRUE(inc.result().matched);
  EXPECT_EQ(inc.result(), Match(g, q));
}

class IncMatchRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncMatchRandomTest, MatchesRecomputeAcrossBatches) {
  const uint64_t seed = GetParam();
  Graph g = GenerateUniform(70, 220, 3, seed);
  const PatternQuery q = ThreeNodePattern(seed);
  IncBMatch inc(&g, q);
  for (uint64_t step = 0; step < 4; ++step) {
    UpdateBatch batch;
    switch ((seed + step) % 3) {
      case 0:
        batch = RandomInsertions(g, 6, seed * 11 + step);
        break;
      case 1:
        batch = RandomDeletions(g, 6, seed * 11 + step);
        break;
      default:
        batch = RandomMixed(g, 8, 0.5, seed * 11 + step);
        break;
    }
    const UpdateBatch effective = ApplyBatch(g, batch);
    inc.Update(effective);
    EXPECT_EQ(inc.result(), Match(g, q))
        << "seed=" << seed << " step=" << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncMatchRandomTest,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace qpgc
