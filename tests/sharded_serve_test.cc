// Copyright 2026 The QPGC Authors.
//
// Sharded serving: the shard-local GraphView, per-shard snapshot managers,
// and the routing query service. The heart of the suite is differential:
// routed Reach / Match / BooleanMatch over K pinned per-shard snapshots
// must be bit-identical to direct evaluation on the unsharded graph, for
// every generator family (including the adversarial deep topologies) and
// K in {1, 2, 7}, before and after update batches flow through the
// per-shard incremental pipelines. The stress test drives one writer
// thread per shard concurrently with routed readers and checks every
// observation against a graph reconstructed for the exact version vector
// the query pinned (legitimate because shards own disjoint edge sets).
// The "Sharded" prefix is what CI's TSan job filters on.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <string>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gen/adversarial.h"
#include "gen/random_models.h"
#include "gen/uniform.h"
#include "gen/update_gen.h"
#include "graph/builder.h"
#include "graph/scc.h"
#include "graph/shard_view.h"
#include "pattern/pattern_gen.h"
#include "serve/boundary_summary.h"
#include "serve/load_gen.h"
#include "serve/router.h"
#include "serve/sharded_manager.h"
#include "util/rng.h"

namespace qpgc {
namespace {

// One representative per generator family, labeled where the family
// supports it (mirrors tests/graph_view_test.cc's corpus, sized down: the
// differential suite compresses every graph K times per K).
std::vector<std::pair<const char*, Graph>> FamilyCorpus() {
  std::vector<std::pair<const char*, Graph>> corpus;
  corpus.emplace_back("uniform", GenerateUniform(90, 300, 4, 7));
  {
    Graph g = PreferentialAttachment(110, 3, 0.5, 11);
    AssignZipfLabels(g, 3, 1.1, 12);
    corpus.emplace_back("social", std::move(g));
  }
  corpus.emplace_back("chain", LongChain(120, 2));
  corpus.emplace_back("layered", LayeredDag(24, 5, 3, 42));
  corpus.emplace_back("broom", Broom(40, 50));
  corpus.emplace_back("grid", DirectedGrid(9, 9));
  corpus.emplace_back("tree", CompleteBinaryTree(7));
  return corpus;
}

std::vector<PatternQuery> TestPatterns(const Graph& g, size_t count,
                                       uint64_t seed) {
  if (g.CountDistinctLabels() <= 1) return {};
  PatternGenOptions opts;
  opts.num_nodes = 3;
  opts.num_edges = 3;
  opts.max_bound = 2;
  std::vector<PatternQuery> patterns;
  const std::vector<Label> labels = DistinctLabels(g);
  for (size_t i = 0; i < count; ++i) {
    patterns.push_back(RandomPattern(labels, opts, seed + i));
  }
  return patterns;
}

// Checks every query class of `service` against direct evaluation on the
// oracle graph.
void ExpectServiceMatchesOracle(const ShardedQueryService& service,
                                const Graph& oracle, uint64_t seed,
                                const char* context) {
  SCOPED_TRACE(context);
  const size_t n = oracle.num_nodes();
  Rng rng(seed);
  const auto pins = service.Pin();
  ASSERT_EQ(pins->original_num_nodes(), n);
  for (int i = 0; i < 120; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    EXPECT_EQ(pins->Reach(u, v, PathMode::kReflexive),
              BfsReaches(oracle, u, v, PathMode::kReflexive))
        << "reflexive reach(" << u << ", " << v << ")";
    EXPECT_EQ(pins->Reach(u, v, PathMode::kNonEmpty),
              BfsReaches(oracle, u, v, PathMode::kNonEmpty))
        << "non-empty reach(" << u << ", " << v << ")";
  }
  // The diagonal under non-empty semantics (cycle detection) gets explicit
  // coverage — it is where ghost-hop bookkeeping would first go wrong.
  for (int i = 0; i < 30; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    EXPECT_EQ(pins->Reach(u, u, PathMode::kNonEmpty),
              BfsReaches(oracle, u, u, PathMode::kNonEmpty))
        << "cycle through " << u;
  }
  for (const PatternQuery& q : TestPatterns(oracle, 5, seed + 991)) {
    const MatchResult want = Match(oracle, q);
    const MatchResult got = pins->Match(q);
    EXPECT_EQ(got.matched, want.matched);
    EXPECT_EQ(got.match_sets, want.match_sets);
    EXPECT_EQ(pins->BooleanMatch(q), want.matched);
  }
}

// ---------------------------------------------------------------------------
// Shard-local view and partition plumbing.
// ---------------------------------------------------------------------------

TEST(ShardViewTest, ViewMatchesMaterializedShard) {
  for (const auto& [name, g] : FamilyCorpus()) {
    SCOPED_TRACE(name);
    const ShardPartition part = ShardPartition::Hash(g.num_nodes(), 3, 5);
    for (uint32_t s = 0; s < part.num_shards; ++s) {
      const ShardView<Graph> view(g, part, s);
      const Graph mat = MaterializeShard(g, part, s);
      ASSERT_EQ(view.num_nodes(), mat.num_nodes());
      ASSERT_EQ(view.num_edges(), mat.num_edges());
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        EXPECT_EQ(view.label(v), mat.label(v));
        ASSERT_EQ(view.OutDegree(v), mat.OutDegree(v));
        ASSERT_EQ(view.InDegree(v), mat.InDegree(v));
        const auto vo = view.OutNeighbors(v);
        const auto mo = mat.OutNeighbors(v);
        EXPECT_TRUE(std::equal(vo.begin(), vo.end(), mo.begin(), mo.end()));
        const auto vi = view.InNeighbors(v);
        const auto mi = mat.InNeighbors(v);
        EXPECT_TRUE(std::equal(vi.begin(), vi.end(), mi.begin(), mi.end()));
      }
    }
  }
}

TEST(ShardViewTest, GhostLabelsDistinguishEveryNonOwnedNode) {
  const Graph g = GenerateUniform(50, 150, 3, 3);
  const ShardPartition part = ShardPartition::Hash(g.num_nodes(), 2, 9);
  const ShardView<Graph> view(g, part, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (part.shard_of[v] == 0) {
      EXPECT_EQ(view.label(v), g.label(v));
      EXPECT_LT(view.label(v), kGhostLabelBase);
    } else {
      EXPECT_EQ(view.label(v), GhostLabel(v));
      EXPECT_GE(view.label(v), kGhostLabelBase);
      EXPECT_NE(view.label(v), kNoLabel);
    }
  }
}

TEST(ShardViewTest, CompressionPipelineRunsUnmodifiedOnShardView) {
  // The shard-local GraphView is a drop-in substrate for the whole batch
  // pipeline: compressing the zero-copy view equals compressing the
  // materialized shard graph.
  const Graph g = GenerateUniform(70, 220, 3, 21);
  const ShardPartition part = ShardPartition::Hash(g.num_nodes(), 3, 1);
  for (uint32_t s = 0; s < part.num_shards; ++s) {
    const ShardView<Graph> view(g, part, s);
    const Graph mat = MaterializeShard(g, part, s);
    const ReachCompression rc_view = CompressR(view);
    const ReachCompression rc_mat = CompressR(mat);
    EXPECT_EQ(rc_view.node_map, rc_mat.node_map);
    EXPECT_EQ(rc_view.gr.EdgeList(), rc_mat.gr.EdgeList());
    const PatternCompression pc_view = CompressB(view);
    const PatternCompression pc_mat = CompressB(mat);
    EXPECT_EQ(pc_view.node_map, pc_mat.node_map);
    EXPECT_EQ(pc_view.gr.EdgeList(), pc_mat.gr.EdgeList());
  }
}

TEST(ShardPartitionTest, SplitBatchRoutesBySourceAndKeepsOrder) {
  const ShardPartition part = ShardPartition::Hash(40, 3, 2);
  UpdateBatch batch;
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(40));
    const NodeId v = static_cast<NodeId>(rng.Uniform(40));
    if (rng.Chance(0.5)) {
      batch.Insert(u, v);
    } else {
      batch.Delete(u, v);
    }
  }
  const std::vector<UpdateBatch> split = SplitBatchByShard(batch, part);
  ASSERT_EQ(split.size(), 3u);
  size_t total = 0;
  for (uint32_t s = 0; s < 3; ++s) {
    total += split[s].size();
    for (const EdgeUpdate& up : split[s].updates) {
      EXPECT_EQ(part.shard_of[up.u], s);
    }
  }
  EXPECT_EQ(total, batch.size());
  // Order preserved per shard: the sub-batch is a subsequence of the batch.
  for (uint32_t s = 0; s < 3; ++s) {
    size_t cursor = 0;
    for (const EdgeUpdate& up : batch.updates) {
      if (cursor < split[s].size() && split[s].updates[cursor] == up) {
        ++cursor;
      }
    }
    EXPECT_EQ(cursor, split[s].size());
  }
}

TEST(ShardPartitionTest, StructurePartitionKeepsSccsTogether) {
  // Three 30-node cycles chained head-to-tail: sizable SCCs the structure
  // partitioner must never split, in a graph whose node ids happen to be
  // laid out in SCC order already. A second copy with scrambled ids checks
  // the partitioner actually derives the layout from the condensation
  // rather than inheriting it from the id space.
  const auto build = [](const std::vector<NodeId>& perm) {
    GraphBuilder builder(90);
    for (NodeId c = 0; c < 3; ++c) {
      const NodeId base = 30 * c;
      for (NodeId i = 0; i < 30; ++i) {
        builder.AddEdge(perm[base + i], perm[base + (i + 1) % 30]);
      }
      if (c > 0) builder.AddEdge(perm[base - 1], perm[base]);
    }
    return builder.Build();
  };

  std::vector<NodeId> identity(90);
  for (NodeId v = 0; v < 90; ++v) identity[v] = v;
  std::vector<NodeId> scrambled = identity;
  Rng rng(77);
  for (size_t i = scrambled.size(); i > 1; --i) {
    std::swap(scrambled[i - 1], scrambled[rng.Uniform(i)]);
  }

  const std::pair<const char*, const std::vector<NodeId>*> cases[] = {
      {"identity", &identity}, {"scrambled", &scrambled}};
  for (const auto& [name, perm] : cases) {
    SCOPED_TRACE(name);
    const Graph g = build(*perm);
    const ShardPartition part = ShardPartition::Structure(g, 3);
    ASSERT_EQ(part.num_shards, 3u);
    ASSERT_EQ(part.num_nodes(), g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_LT(part.shard_of[v], 3u);
    }
    // No SCC is split across shards.
    const SccResult scc = ComputeScc(g);
    ASSERT_EQ(scc.num_components, 3u);
    for (size_t c = 0; c < scc.num_components; ++c) {
      const uint32_t home = part.shard_of[scc.members[c].front()];
      for (const NodeId v : scc.members[c]) {
        EXPECT_EQ(part.shard_of[v], home) << "SCC " << c << " node " << v;
      }
    }
    // With three equal SCCs and k = 3 the balanced cut lands exactly on the
    // SCC boundaries: one cycle per shard, zero cross edges beyond the two
    // chain links.
    for (uint32_t s = 0; s < 3; ++s) {
      EXPECT_EQ(part.OwnedNodes(s).size(), 30u) << "shard " << s;
    }
  }
}

// ---------------------------------------------------------------------------
// Differential correctness of routed queries, every family, K in {1, 2, 7},
// hash and structure partitioners, through update rounds.
// ---------------------------------------------------------------------------

class ShardedServingDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, PartitionerKind>> {};

TEST_P(ShardedServingDifferentialTest, RoutedAnswersEqualUnshardedOracle) {
  const uint32_t k = static_cast<uint32_t>(std::get<0>(GetParam()));
  const PartitionerKind partitioner = std::get<1>(GetParam());
  for (const auto& [name, initial] : FamilyCorpus()) {
    SCOPED_TRACE(PartitionerKindName(partitioner));
    ShardedManagerOptions opts;
    opts.num_shards = k;
    opts.partition_seed = 29;
    opts.partitioner = partitioner;
    ShardedSnapshotManager mgr(initial, opts);
    const ShardedQueryService service(mgr);
    EXPECT_EQ(mgr.num_shards(), k);

    // Fresh snapshots.
    Graph mirror = initial;
    ExpectServiceMatchesOracle(service, mirror, 1000 + k, name);

    // Three rounds of mixed updates through the per-shard incremental
    // pipelines (the mirror takes the same raw batch; per-shard edge sets
    // are disjoint by source, so the final edge sets agree).
    for (int round = 0; round < 3; ++round) {
      const UpdateBatch batch =
          RandomMixed(mirror, 24, 0.55, 7000 + 31 * k + round);
      mgr.Apply(batch);
      ApplyBatch(mirror, batch);
      mgr.PublishAll();
      ExpectServiceMatchesOracle(service, mirror, 2000 + 10 * k + round,
                                 name);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShardCountsAndPartitioners, ShardedServingDifferentialTest,
    ::testing::Combine(::testing::Values(1, 2, 7),
                       ::testing::Values(PartitionerKind::kHash,
                                         PartitionerKind::kStructure)),
    [](const ::testing::TestParamInfo<std::tuple<int, PartitionerKind>>&
           info) {
      return "K" + std::to_string(std::get<0>(info.param)) + "_" +
             PartitionerKindName(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Boundary-exit bookkeeping.
// ---------------------------------------------------------------------------

TEST(ShardedServingTest, BoundaryExitsTrackCrossShardEdges) {
  const Graph g = GenerateUniform(60, 180, 3, 13);
  ShardedManagerOptions opts;
  opts.num_shards = 2;
  ShardedSnapshotManager mgr(g, opts);
  const ShardPartition& part = mgr.partition();

  // The published exit set of shard s is exactly the set of non-owned
  // nodes with at least one in-edge inside s.
  for (uint32_t s = 0; s < 2; ++s) {
    const auto snap = mgr.shard(s).Acquire();
    std::vector<NodeId> want;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (part.shard_of[v] == s) continue;
      bool has_in = false;
      for (const NodeId w : g.InNeighbors(v)) {
        if (part.shard_of[w] == s) {
          has_in = true;
          break;
        }
      }
      if (has_in) want.push_back(v);
    }
    EXPECT_EQ(snap->boundary_exits(), want) << "shard " << s;
    EXPECT_EQ(mgr.BoundaryExitCount(s), want.size());
  }

  // Deleting every cross-shard edge into one ghost removes it from the
  // exits of the next published version; re-inserting one brings it back.
  const auto snap0 = mgr.shard(0).Acquire();
  ASSERT_FALSE(snap0->boundary_exits().empty());
  const NodeId ghost = snap0->boundary_exits().front();
  UpdateBatch wipe;
  for (const NodeId w : g.InNeighbors(ghost)) {
    if (part.shard_of[w] == 0) wipe.Delete(w, ghost);
  }
  mgr.Apply(wipe);
  mgr.PublishAll();
  {
    const auto snap = mgr.shard(0).Acquire();
    const auto& exits = snap->boundary_exits();
    EXPECT_FALSE(std::binary_search(exits.begin(), exits.end(), ghost));
  }
  UpdateBatch relink;
  relink.Insert(wipe.updates.front().u, ghost);
  mgr.Apply(relink);
  mgr.PublishAll();
  {
    const auto snap = mgr.shard(0).Acquire();
    const auto& exits = snap->boundary_exits();
    EXPECT_TRUE(std::binary_search(exits.begin(), exits.end(), ghost));
  }
}

// ---------------------------------------------------------------------------
// Frozen boundary summaries.
// ---------------------------------------------------------------------------

// For every boundary entry, the exit set read off the frozen summary (a BFS
// over summary nodes collecting ExitsAt) must equal non-empty BFS
// reachability from the entry to each exit on the materialized shard
// subgraph. This pins the whole pipeline: quotient exactness, the
// forward/backward pruning, and the entry/exit row layout.
TEST(ShardedServingTest, BoundarySummaryMatchesShardReachabilityOracle) {
  const Graph g = GenerateUniform(80, 260, 3, 33);
  ShardedManagerOptions opts;
  opts.num_shards = 3;
  ShardedSnapshotManager mgr(g, opts);
  const ShardPartition& part = mgr.partition();
  const auto snaps = mgr.AcquireAll();
  size_t entries_checked = 0;
  for (uint32_t s = 0; s < 3; ++s) {
    SCOPED_TRACE(s);
    const FrozenBoundarySummary* summary = snaps[s]->boundary_summary();
    ASSERT_NE(summary, nullptr);
    const Graph shard_graph = MaterializeShard(g, part, s);
    const std::vector<NodeId>& exits = *summary->exits_ptr();
    EXPECT_EQ(exits, snaps[s]->boundary_exits());
    for (const NodeId entry : *summary->entries_ptr()) {
      ++entries_checked;
      std::unordered_set<NodeId> got;
      NodeId node = FrozenBoundarySummary::kNoSummaryNode;
      ASSERT_TRUE(summary->LookupEntry(entry, &node));
      if (node != FrozenBoundarySummary::kNoSummaryNode) {
        std::vector<char> seen(summary->num_nodes(), 0);
        std::vector<NodeId> stack;
        const auto push = [&](NodeId w) {
          if (!seen[w]) {
            seen[w] = 1;
            stack.push_back(w);
          }
        };
        // Seed with out-neighbors, not the entry's own node: non-empty
        // semantics, matching the router (a cyclic entry block has a
        // self-loop and re-enters).
        for (const NodeId w : summary->OutNeighbors(node)) push(w);
        while (!stack.empty()) {
          const NodeId w = stack.back();
          stack.pop_back();
          for (const NodeId x : summary->ExitsAt(w)) got.insert(x);
          for (const NodeId y : summary->OutNeighbors(w)) push(y);
        }
      }
      for (const NodeId exit : exits) {
        EXPECT_EQ(got.count(exit) > 0,
                  BfsReaches(shard_graph, entry, exit, PathMode::kNonEmpty))
            << "entry " << entry << " exit " << exit;
      }
    }
    // An unknown node (here: a ghost, never an owned entry) is reported as
    // absent, not as an empty row — the router's fallback trigger.
    if (!exits.empty()) {
      NodeId ignored = 0;
      EXPECT_FALSE(summary->LookupEntry(exits.front(), &ignored));
    }
  }
  EXPECT_GT(entries_checked, 0u);
}

// A cross-shard edge whose target had no prior cross in-edges creates a
// boundary entry the target shard's frozen summary has never seen. Routed
// Reach must stay exact by falling back to a live sweep of that shard,
// regardless of publish order.
TEST(ShardedServingTest, RoutedReachExactForEntriesNewerThanTargetPublish) {
  // Two contiguous shards over a six-node path split 0-2 / 3-5, with no
  // cross edges at all initially.
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  const Graph g = builder.Build();
  ShardedManagerOptions opts;
  opts.num_shards = 2;
  opts.partitioner = PartitionerKind::kContiguous;
  ShardedSnapshotManager mgr(g, opts);
  ASSERT_EQ(mgr.partition().shard_of[2], 0u);
  ASSERT_EQ(mgr.partition().shard_of[3], 1u);
  const ShardedQueryService service(mgr);
  EXPECT_FALSE(service.Reach(0, 5));
  EXPECT_EQ(mgr.BoundaryEntryCount(1), 0u);

  // Insert the bridge 2 -> 3 and republish ONLY shard 0. Shard 1 still
  // serves its initial version, whose summary has no row for entry 3.
  UpdateBatch bridge;
  bridge.Insert(2, 3);
  mgr.ApplyToShard(0, bridge);
  mgr.PublishShard(0, FreezeMode::kFull);
  EXPECT_EQ(mgr.BoundaryEntryCount(1), 1u);
  {
    const auto stale = mgr.shard(1).Acquire();
    NodeId ignored = 0;
    ASSERT_NE(stale->boundary_summary(), nullptr);
    EXPECT_FALSE(stale->boundary_summary()->LookupEntry(3, &ignored));
  }
  EXPECT_TRUE(service.Reach(0, 5));
  EXPECT_TRUE(service.Reach(0, 3));
  EXPECT_TRUE(service.Reach(2, 5, PathMode::kNonEmpty));
  EXPECT_FALSE(service.Reach(5, 0));
  EXPECT_FALSE(service.Reach(3, 3, PathMode::kNonEmpty));

  // Once shard 1 republishes, the entry is summarized and answers are
  // unchanged.
  mgr.PublishShard(1, FreezeMode::kFull);
  {
    const auto fresh = mgr.shard(1).Acquire();
    NodeId node = FrozenBoundarySummary::kNoSummaryNode;
    EXPECT_TRUE(fresh->boundary_summary()->LookupEntry(3, &node));
  }
  EXPECT_TRUE(service.Reach(0, 5));
  EXPECT_FALSE(service.Reach(5, 0));
}

TEST(ShardedServingTest, StitchedQuotientCoversExactlyOwnedBlocks) {
  const Graph g = GenerateUniform(80, 260, 4, 19);
  ShardedManagerOptions opts;
  opts.num_shards = 3;
  ShardedSnapshotManager mgr(g, opts);
  const auto snaps = mgr.AcquireAll();
  const StitchedPatternQuotient st =
      BuildStitchedPatternQuotient(mgr.partition(), snaps);
  // Every node is owned by exactly one shard, so the stitched member lists
  // partition the node universe.
  std::vector<char> seen(g.num_nodes(), 0);
  for (NodeId b = 0; b < st.gr.num_nodes(); ++b) {
    EXPECT_LT(st.gr.label(b), kGhostLabelBase);
    const auto& [s, c] = st.origin[b];
    for (const NodeId v : snaps[s]->pattern_block_members(c)) {
      EXPECT_EQ(mgr.partition().shard_of[v], s);
      EXPECT_EQ(seen[v], 0);
      seen[v] = 1;
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(seen[v], 1);
}

TEST(ShardedServingTest, PinCacheFollowsPublishes) {
  ShardedManagerOptions opts;
  opts.num_shards = 2;
  ShardedSnapshotManager mgr(GenerateUniform(50, 140, 3, 23), opts);
  const ShardedQueryService service(mgr);
  const auto pins1 = service.Pin();
  const auto pins2 = service.Pin();
  EXPECT_EQ(pins1.get(), pins2.get());  // cached: same version vector

  mgr.Apply(RandomInsertions(mgr.shard(0).graph(), 2, 31));
  mgr.PublishAll();
  const auto pins3 = service.Pin();
  EXPECT_NE(pins1.get(), pins3.get());
  EXPECT_NE(pins1->versions(), pins3->versions());
}

TEST(ShardedServingTest, StitchCacheReusesSegmentsOfUnmovedShards) {
  const Graph g = GenerateUniform(80, 260, 3, 17);
  ShardedManagerOptions opts;
  opts.num_shards = 3;
  ShardedSnapshotManager mgr(g, opts);
  const ShardedQueryService service(mgr);

  // Cold stitch: every segment built.
  (void)service.Pin()->stitched();
  StitchCache::Stats stats = service.stitch_stats();
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.full_reuses, 0u);
  EXPECT_EQ(stats.segments_total, 3u);
  EXPECT_EQ(stats.segments_reused, 0u);

  // Republish only shard 1 after a guaranteed-effective insert: the stitch
  // carries the other two shards' frozen pattern sides by pointer.
  const std::vector<NodeId> owned = mgr.partition().OwnedNodes(1);
  UpdateBatch batch;
  [&] {
    for (const NodeId u : owned) {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (u != v && !g.HasEdge(u, v)) {
          batch.Insert(u, v);
          return;
        }
      }
    }
  }();
  ASSERT_EQ(batch.size(), 1u);
  mgr.ApplyToShard(1, batch);
  mgr.PublishShard(1, FreezeMode::kFull);
  (void)service.Pin()->stitched();
  stats = service.stitch_stats();
  EXPECT_EQ(stats.builds, 2u);
  EXPECT_EQ(stats.segments_total, 6u);
  EXPECT_EQ(stats.segments_reused, 2u);
  EXPECT_DOUBLE_EQ(stats.reuse_ratio(), 2.0 / 6.0);

  // Identical snapshot vector: the stitched quotient itself is served from
  // the cache, counting all K segments as reused.
  StitchCache cache;
  const auto part = mgr.partition_ptr();
  const auto snaps = mgr.AcquireAll();
  const auto a = cache.Stitch(*part, snaps);
  const auto b = cache.Stitch(*part, snaps);
  EXPECT_EQ(a.get(), b.get());
  const StitchCache::Stats direct = cache.stats();
  EXPECT_EQ(direct.builds, 1u);
  EXPECT_EQ(direct.full_reuses, 1u);
  EXPECT_EQ(direct.segments_total, 6u);
  EXPECT_EQ(direct.segments_reused, 3u);
}

// ---------------------------------------------------------------------------
// Multi-shard reader/writer stress: one writer thread per shard publishing
// independently, routed readers pinning version vectors. Every observation
// is checked against a graph reconstructed for its exact version vector —
// legitimate because shards own disjoint edge sets, so any combination of
// per-shard versions is a real global state. TSan-gated in CI. Since the
// writers freeze boundary summaries inside every publish and mutate each
// other's entry tables while readers run the summary search, this is also
// the race coverage for serve/boundary_summary.h and the router's
// stale-entry fallback.
// ---------------------------------------------------------------------------

TEST(ShardedServingStressTest, ConcurrentShardWritersMatchVersionVectorOracle) {
  constexpr uint32_t kShards = 3;
  constexpr size_t kReaders = 2;
  constexpr size_t kWriterRounds = 8;
  constexpr size_t kMaxObservationsPerReader = 300;

  const Graph initial = GenerateUniform(80, 220, 3, 17);
  const std::vector<PatternQuery> patterns = TestPatterns(initial, 3, 61);
  ShardedManagerOptions opts;
  opts.num_shards = kShards;
  ShardedSnapshotManager mgr(initial, opts);
  const ShardedQueryService service(mgr);

  // Per-shard, per-version edge lists (edges of the shard's local graph,
  // which are exactly the global edges with sources owned by the shard).
  // Written only by that shard's writer thread; read after join.
  std::vector<std::map<uint64_t, std::vector<std::pair<NodeId, NodeId>>>>
      history(kShards);
  std::vector<std::vector<NodeId>> owned(kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    owned[s] = mgr.partition().OwnedNodes(s);
    history[s][1] = mgr.shard(s).graph().EdgeList();
  }

  struct Observation {
    std::vector<uint64_t> versions;
    bool is_reach = true;
    NodeId u = 0;
    NodeId v = 0;
    size_t pattern = 0;
    bool answer = false;
  };

  std::atomic<bool> done{false};
  std::vector<std::vector<Observation>> observed(kReaders);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(8000 + r);
      auto& log = observed[r];
      const size_t n = initial.num_nodes();
      while (!done.load(std::memory_order_relaxed) &&
             log.size() < kMaxObservationsPerReader) {
        const auto pins = service.Pin();
        Observation ob;
        ob.versions = pins->versions();
        if (!patterns.empty() && rng.Uniform(8) == 0) {
          ob.is_reach = false;
          ob.pattern = rng.Uniform(patterns.size());
          ob.answer = pins->BooleanMatch(patterns[ob.pattern]);
        } else {
          ob.u = static_cast<NodeId>(rng.Uniform(n));
          ob.v = static_cast<NodeId>(rng.Uniform(n));
          ob.answer = pins->Reach(ob.u, ob.v);
        }
        log.push_back(std::move(ob));
      }
    });
  }

  // One independent writer per shard: apply shard-local batches, publish,
  // record the published version's edge list.
  std::vector<std::thread> writers;
  for (uint32_t s = 0; s < kShards; ++s) {
    writers.emplace_back([&, s] {
      for (size_t round = 0; round < kWriterRounds; ++round) {
        const UpdateBatch batch =
            RandomShardLocalBatch(mgr.shard(s).graph(), owned[s], 5, 0.6,
                                  9000 + 100 * s + round);
        mgr.ApplyToShard(s, batch);
        const PublishStats stats = mgr.PublishShard(s);
        history[s][stats.version] = mgr.shard(s).graph().EdgeList();
        std::this_thread::yield();
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  // Oracle pass: rebuild the global graph of every observed version vector
  // (union of the shards' edge lists at their pinned versions, original
  // labels) and recompute the answer.
  std::map<std::vector<uint64_t>, Graph> graph_cache;
  std::map<std::pair<std::vector<uint64_t>, size_t>, bool> match_cache;
  size_t checked = 0;
  for (const auto& log : observed) {
    for (const Observation& ob : log) {
      auto it = graph_cache.find(ob.versions);
      if (it == graph_cache.end()) {
        GraphBuilder builder(initial.num_nodes());
        for (NodeId v = 0; v < initial.num_nodes(); ++v) {
          builder.SetLabel(v, initial.label(v));
        }
        for (uint32_t s = 0; s < kShards; ++s) {
          const auto hist = history[s].find(ob.versions[s]);
          ASSERT_NE(hist, history[s].end())
              << "reader pinned unknown version " << ob.versions[s]
              << " of shard " << s;
          for (const auto& [u, v] : hist->second) builder.AddEdge(u, v);
        }
        it = graph_cache.emplace(ob.versions, builder.Build()).first;
      }
      const Graph& truth = it->second;
      if (ob.is_reach) {
        ASSERT_EQ(ob.answer, BfsReaches(truth, ob.u, ob.v))
            << "reach(" << ob.u << ", " << ob.v << ")";
      } else {
        const auto key = std::make_pair(ob.versions, ob.pattern);
        auto cached = match_cache.find(key);
        if (cached == match_cache.end()) {
          cached =
              match_cache
                  .emplace(key, BooleanMatch(truth, patterns[ob.pattern]))
                  .first;
        }
        ASSERT_EQ(ob.answer, cached->second) << "pattern " << ob.pattern;
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace qpgc
