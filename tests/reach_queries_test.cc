// Copyright 2026 The QPGC Authors.

#include "reach/queries.h"

#include <gtest/gtest.h>

#include "core/reach_scheme.h"
#include "gen/uniform.h"

namespace qpgc {
namespace {

TEST(ReachQueriesTest, RewriteIsNodeMapLookup) {
  Graph g(4);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  const ReachCompression rc = CompressR(g);
  const RewrittenReachQuery rq = RewriteReachQuery(rc, {0, 3});
  EXPECT_EQ(rq.u, rc.node_map[0]);
  EXPECT_EQ(rq.v, rc.node_map[3]);
}

TEST(ReachQueriesTest, DiagonalReflexiveAlwaysTrue) {
  Graph g(2);
  g.AddEdge(0, 1);
  const ReachCompression rc = CompressR(g);
  EXPECT_TRUE(AnswerOnCompressed(rc, {0, 0}, PathMode::kReflexive,
                                 ReachAlgorithm::kBfs));
}

TEST(ReachQueriesTest, EquivalentButUnreachablePairAnsweredFalse) {
  // 0 and 1 are reachability equivalent (same class) but neither reaches
  // the other: QR(0, 1) must be false under non-empty semantics even though
  // R(0) == R(1). This is the diagonal subtlety the self-loop convention
  // resolves (DESIGN.md §2).
  Graph g(4);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  const ReachCompression rc = CompressR(g);
  ASSERT_EQ(rc.node_map[0], rc.node_map[1]);
  EXPECT_FALSE(AnswerOnCompressed(rc, {0, 1}, PathMode::kNonEmpty,
                                  ReachAlgorithm::kBfs));
  // Under reflexive semantics QR(0, 1) with u != v means a real path too.
  EXPECT_FALSE(BfsReaches(g, 0, 1, PathMode::kReflexive));
  EXPECT_FALSE(AnswerOnCompressed(rc, {0, 1}, PathMode::kReflexive,
                                  ReachAlgorithm::kBfs));
}

TEST(ReachQueriesTest, SameCyclicClassAnsweredTrue) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  const ReachCompression rc = CompressR(g);
  EXPECT_TRUE(AnswerOnCompressed(rc, {0, 1}, PathMode::kNonEmpty,
                                 ReachAlgorithm::kBfs));
  EXPECT_TRUE(AnswerOnCompressed(rc, {0, 0}, PathMode::kNonEmpty,
                                 ReachAlgorithm::kBfs));
}

TEST(ReachQueriesTest, AllAlgorithmsAgreeOnCompressed) {
  const Graph g = GenerateUniform(80, 240, 1, 11);
  const ReachCompression rc = CompressR(g);
  const auto queries = RandomReachQueries(g.num_nodes(), 200, 12);
  for (const auto& q : queries) {
    const bool bfs = AnswerOnCompressed(rc, q, PathMode::kReflexive,
                                        ReachAlgorithm::kBfs);
    EXPECT_EQ(AnswerOnCompressed(rc, q, PathMode::kReflexive,
                                 ReachAlgorithm::kBiBfs),
              bfs);
    EXPECT_EQ(AnswerOnCompressed(rc, q, PathMode::kReflexive,
                                 ReachAlgorithm::kDfs),
              bfs);
  }
}

TEST(ReachQueriesTest, FacadeAnswersMatchDirectEvaluation) {
  const Graph g = GenerateUniform(100, 350, 1, 13);
  const ReachabilityPreservingCompression scheme(g);
  const auto queries = RandomReachQueries(g.num_nodes(), 300, 14);
  for (const auto& q : queries) {
    for (PathMode mode : {PathMode::kReflexive, PathMode::kNonEmpty}) {
      EXPECT_EQ(scheme.Answer(q, mode), EvalReach(g, q.u, q.v, mode,
                                                  ReachAlgorithm::kBfs))
          << "(" << q.u << "," << q.v << ")";
    }
  }
}

TEST(ReachQueriesTest, RandomQueriesDeterministic) {
  const auto a = RandomReachQueries(50, 20, 99);
  const auto b = RandomReachQueries(50, 20, 99);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
  }
}

}  // namespace
}  // namespace qpgc
