// Copyright 2026 The QPGC Authors.

#include "graph/stats.h"

#include <gtest/gtest.h>

namespace qpgc {
namespace {

TEST(StatsTest, SimpleGraph) {
  Graph g(5);
  g.set_label(0, 1);
  g.set_label(1, 2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);  // cycle {0,1,2}
  g.AddEdge(2, 3);
  const GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 5u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_EQ(s.num_labels, 3u);  // 1, 2, kNoLabel
  EXPECT_EQ(s.largest_scc, 3u);
  EXPECT_EQ(s.num_sccs, 3u);
  EXPECT_DOUBLE_EQ(s.cyclic_node_fraction, 3.0 / 5.0);
  EXPECT_EQ(s.num_sources, 1u);  // node 4
  EXPECT_EQ(s.num_sinks, 2u);    // nodes 3, 4
  EXPECT_EQ(s.max_out_degree, 2u);
}

TEST(StatsTest, EmptyGraph) {
  const GraphStats s = ComputeStats(Graph(0));
  EXPECT_EQ(s.num_nodes, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.0);
  EXPECT_DOUBLE_EQ(s.cyclic_node_fraction, 0.0);
}

TEST(StatsTest, FormatContainsKeyFields) {
  Graph g(2);
  g.AddEdge(0, 1);
  const std::string s = FormatStats(ComputeStats(g));
  EXPECT_NE(s.find("|V|=2"), std::string::npos);
  EXPECT_NE(s.find("SCCs=2"), std::string::npos);
}

}  // namespace
}  // namespace qpgc
