// Copyright 2026 The QPGC Authors.
//
// Differential tests for the GraphView abstraction: every templated batch
// algorithm must produce identical results on the dynamic Graph and on the
// frozen CsrGraph snapshot, across all generator families (including the
// adversarial deep topologies). Also pins the representation contract
// itself (CsrGraph API parity with Graph, ReversedView duality) and the
// memory claim (CSR strictly smaller than vector-of-vectors on the
// generator corpus).

#include "graph/graph_view.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "bisim/engine.h"
#include "bisim/kbisim.h"
#include "bisim/max_bisimulation.h"
#include "bisim/paige_tarjan.h"
#include "bisim/partition.h"
#include "bisim/ranked_bisim.h"
#include "bisim/signature_bisim.h"
#include "core/pattern_scheme.h"
#include "gen/adversarial.h"
#include "gen/random_models.h"
#include "gen/uniform.h"
#include "graph/csr.h"
#include "graph/scc.h"
#include "graph/topology.h"
#include "graph/traversal.h"
#include "pattern/match.h"
#include "pattern/pattern_gen.h"
#include "reach/compress_r.h"
#include "reach/equivalence.h"

namespace qpgc {
namespace {

static_assert(GraphView<Graph>);
static_assert(GraphView<CsrGraph>);
static_assert(GraphView<ReversedView<Graph>>);
static_assert(GraphView<ReversedView<CsrGraph>>);
static_assert(GraphView<ReversedView<ReversedView<CsrGraph>>>);

// The corpus: one representative of every generator family, labeled where
// the family supports it, sized to keep the whole suite fast. Built once —
// the fixture and the test name generator both index into it repeatedly.
const std::vector<std::pair<std::string, Graph>>& Corpus() {
  static const auto* corpus = [] {
    auto* c = new std::vector<std::pair<std::string, Graph>>();
    c->emplace_back("uniform", GenerateUniform(120, 420, 4, 7));
    {
      Graph g = PreferentialAttachment(150, 3, 0.5, 11);
      AssignZipfLabels(g, 6, 0.8, 12);
      c->emplace_back("preferential", std::move(g));
    }
    c->emplace_back("chain", LongChain(200, 2));
    c->emplace_back("layered", LayeredDag(40, 6, 3, 42));
    c->emplace_back("broom", Broom(60, 80));
    c->emplace_back("grid", DirectedGrid(12, 12));
    c->emplace_back("tree", CompleteBinaryTree(8));
    return c;
  }();
  return *corpus;
}

class ViewDifferential : public ::testing::TestWithParam<size_t> {
 protected:
  ViewDifferential()
      : name_(Corpus()[GetParam()].first),
        g_(Corpus()[GetParam()].second),
        csr_(g_) {}

  const std::string& name_;
  const Graph& g_;
  const CsrGraph csr_;
};

TEST_P(ViewDifferential, CsrMirrorsGraphApi) {
  ASSERT_EQ(csr_.num_nodes(), g_.num_nodes());
  ASSERT_EQ(csr_.num_edges(), g_.num_edges());
  EXPECT_EQ(csr_.size(), g_.size());
  EXPECT_EQ(csr_.labels(), g_.labels());
  EXPECT_EQ(csr_.CountDistinctLabels(), g_.CountDistinctLabels());
  EXPECT_EQ(csr_.EdgeList(), g_.EdgeList());
  for (NodeId u = 0; u < g_.num_nodes(); ++u) {
    ASSERT_EQ(csr_.OutDegree(u), g_.OutDegree(u)) << name_ << " node " << u;
    ASSERT_EQ(csr_.InDegree(u), g_.InDegree(u)) << name_ << " node " << u;
  }
  // HasEdge: every present edge, plus a probe grid of absent ones.
  g_.ForEachEdge([&](NodeId u, NodeId v) { EXPECT_TRUE(csr_.HasEdge(u, v)); });
  for (NodeId u = 0; u < g_.num_nodes(); u += 13) {
    for (NodeId v = 0; v < g_.num_nodes(); v += 7) {
      EXPECT_EQ(csr_.HasEdge(u, v), g_.HasEdge(u, v))
          << name_ << " (" << u << "," << v << ")";
    }
  }
}

TEST_P(ViewDifferential, CsrIsSmallerThanGraph) {
  if (g_.num_edges() == 0) GTEST_SKIP();
  EXPECT_LT(csr_.MemoryBytes(), g_.MemoryBytes()) << name_;
}

TEST_P(ViewDifferential, MaxBisimulationEnginesAgreeAcrossViews) {
  for (const BisimEngine engine :
       {BisimEngine::kPaigeTarjan, BisimEngine::kRanked,
        BisimEngine::kSignature}) {
    const Partition on_graph = MaxBisimulation(g_, engine);
    const Partition on_csr = MaxBisimulation(csr_, engine);
    EXPECT_TRUE(SamePartition(on_graph, on_csr))
        << name_ << " engine=" << BisimEngineName(engine);
  }
}

TEST_P(ViewDifferential, KBisimulationAgreesAcrossViews) {
  for (const size_t k : {size_t{0}, size_t{1}, size_t{2}, size_t{5}}) {
    EXPECT_TRUE(SamePartition(KBisimulation(g_, k), KBisimulation(csr_, k)))
        << name_ << " k=" << k;
    EXPECT_TRUE(SamePartition(KBisimulationBackward(g_, k),
                              KBisimulationBackward(csr_, k)))
        << name_ << " backward k=" << k;
  }
}

TEST_P(ViewDifferential, InEdgeDrivenBackwardMatchesCopyingOracle) {
  for (const size_t k : {size_t{1}, size_t{3}}) {
    for (const BisimEngine engine :
         {BisimEngine::kPaigeTarjan, BisimEngine::kSignature}) {
      EXPECT_TRUE(SamePartition(KBisimulationBackward(g_, k, engine),
                                KBisimulationBackwardCopying(g_, k, engine)))
          << name_ << " k=" << k << " engine=" << BisimEngineName(engine);
    }
  }
}

TEST_P(ViewDifferential, SccAndRanksAgreeAcrossViews) {
  const SccResult scc_g = ComputeScc(g_);
  const SccResult scc_c = ComputeScc(csr_);
  EXPECT_EQ(scc_g.component, scc_c.component) << name_;
  EXPECT_EQ(scc_g.cyclic, scc_c.cyclic) << name_;
  EXPECT_EQ(scc_g.members, scc_c.members) << name_;

  EXPECT_EQ(ReachTopoRanks(g_), ReachTopoRanks(csr_)) << name_;
  EXPECT_EQ(BisimRanks(g_), BisimRanks(csr_)) << name_;
  EXPECT_EQ(WellFounded(g_), WellFounded(csr_)) << name_;
}

TEST_P(ViewDifferential, ReachEquivalenceAgreesAcrossViews) {
  const ReachPartition on_graph = ComputeReachEquivalence(g_);
  const ReachPartition on_csr = ComputeReachEquivalence(csr_);
  EXPECT_EQ(on_graph.CanonicalClasses(), on_csr.CanonicalClasses()) << name_;
  EXPECT_EQ(on_graph.cyclic, on_csr.cyclic) << name_;
}

TEST_P(ViewDifferential, CompressionPipelinesAgreeAcrossViews) {
  const ReachCompression rc_graph = CompressR<Graph>(g_);
  const ReachCompression rc_csr = CompressR<CsrGraph>(csr_);
  EXPECT_EQ(rc_graph.gr, rc_csr.gr) << name_;
  EXPECT_EQ(rc_graph.node_map, rc_csr.node_map) << name_;
  EXPECT_EQ(rc_graph.ranks, rc_csr.ranks) << name_;
  // The public Graph entry point freezes CSR internally — same artifact.
  const ReachCompression rc_entry = CompressR(g_);
  EXPECT_EQ(rc_entry.gr, rc_csr.gr) << name_;

  const PatternCompression pc_graph = CompressB<Graph>(g_);
  const PatternCompression pc_csr = CompressB<CsrGraph>(csr_);
  EXPECT_EQ(pc_graph.gr, pc_csr.gr) << name_;
  EXPECT_EQ(pc_graph.node_map, pc_csr.node_map) << name_;
  EXPECT_EQ(CompressB(g_).gr, pc_csr.gr) << name_;
}

TEST_P(ViewDifferential, MatchAgreesAcrossViews) {
  const std::vector<Label> labels = DistinctLabels(g_);
  PatternGenOptions options;
  options.num_nodes = 3;
  options.num_edges = 3;
  options.max_bound = 2;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const PatternQuery q = RandomPattern(labels, options, seed);
    const MatchResult on_graph = Match(g_, q);
    const MatchResult on_csr = Match(csr_, q);
    EXPECT_EQ(on_graph, on_csr) << name_ << " seed=" << seed;
    EXPECT_EQ(BooleanMatch(g_, q), BooleanMatch(csr_, q))
        << name_ << " seed=" << seed;
  }
}

TEST_P(ViewDifferential, TraversalsAgreeAcrossViews) {
  for (NodeId u = 0; u < g_.num_nodes(); u += 17) {
    EXPECT_EQ(BfsDistances(g_, u), BfsDistances(csr_, u)) << name_;
    EXPECT_EQ(OnCycle(g_, u), OnCycle(csr_, u)) << name_;
    for (NodeId v = 0; v < g_.num_nodes(); v += 23) {
      for (const PathMode mode : {PathMode::kReflexive, PathMode::kNonEmpty}) {
        const bool truth = BfsReaches(g_, u, v, mode);
        EXPECT_EQ(BfsReaches(csr_, u, v, mode), truth) << name_;
        EXPECT_EQ(BidirectionalReaches(csr_, u, v, mode), truth) << name_;
        EXPECT_EQ(DfsReaches(csr_, u, v, mode), truth) << name_;
      }
    }
  }
}

TEST_P(ViewDifferential, ReversedViewIsAnInvolution) {
  const ReversedView<CsrGraph> rev(csr_);
  const ReversedView<ReversedView<CsrGraph>> rev2(rev);
  ASSERT_EQ(rev.num_nodes(), csr_.num_nodes());
  EXPECT_EQ(rev.num_edges(), csr_.num_edges());
  for (NodeId u = 0; u < csr_.num_nodes(); ++u) {
    const auto out = csr_.OutNeighbors(u);
    const auto rev_in = rev.InNeighbors(u);
    ASSERT_TRUE(std::equal(out.begin(), out.end(), rev_in.begin(),
                           rev_in.end()))
        << name_ << " node " << u;
    const auto rev2_out = rev2.OutNeighbors(u);
    ASSERT_TRUE(std::equal(out.begin(), out.end(), rev2_out.begin(),
                           rev2_out.end()))
        << name_ << " node " << u;
    EXPECT_EQ(rev.label(u), csr_.label(u));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ViewDifferential, ::testing::Range<size_t>(0, 7),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return Corpus()[info.param].first;
    });

// Quotients on the reversed view feed AkIndexGraph; pin the whole A(k)
// construction across representations.
TEST(GraphViewTest, AkIndexGraphMatchesGraphPath) {
  Graph g = PreferentialAttachment(120, 3, 0.5, 5);
  AssignZipfLabels(g, 5, 0.7, 6);
  for (const size_t k : {size_t{1}, size_t{2}}) {
    const Graph via_csr = AkIndexGraph(g, k);
    // Oracle: copying backward k-bisim + Graph quotient.
    const Graph oracle =
        QuotientGraph(g, KBisimulationBackwardCopying(g, k));
    EXPECT_EQ(via_csr, oracle) << "k=" << k;
  }
}

// ViewSize / ForEachEdge / ViewHasEdge free functions over both views.
TEST(GraphViewTest, FreeFunctionHelpers) {
  const Graph g = GenerateUniform(40, 120, 2, 3);
  const CsrGraph csr(g);
  EXPECT_EQ(ViewSize(g), g.size());
  EXPECT_EQ(ViewSize(csr), g.size());
  size_t count = 0;
  ForEachEdge(csr, [&](NodeId u, NodeId v) {
    EXPECT_TRUE(ViewHasEdge(csr, u, v));
    EXPECT_TRUE(ViewHasEdge(g, u, v));
    ++count;
  });
  EXPECT_EQ(count, g.num_edges());
}

}  // namespace
}  // namespace qpgc
