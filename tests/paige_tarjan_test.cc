// Copyright 2026 The QPGC Authors.
//
// Differential and property suite for the Paige–Tarjan engine:
//   * PT == SignatureBisimulation (the oracle) on every random-model family
//     and on every adversarial deep generator;
//   * the result is a stable partition refining the label partition;
//   * bounded splitter k-bisimulation == k rounds of RefineOnce;
//   * closed-form block counts on the adversarial topologies.

#include <gtest/gtest.h>

#include "bisim/engine.h"
#include "bisim/kbisim.h"
#include "bisim/paige_tarjan.h"
#include "bisim/signature_bisim.h"
#include "gen/adversarial.h"
#include "gen/random_models.h"
#include "gen/uniform.h"

namespace qpgc {
namespace {

void ExpectMatchesOracle(const Graph& g, const std::string& what) {
  const Partition oracle = SignatureBisimulation(g);
  const Partition pt = PaigeTarjanBisimulation(g);
  EXPECT_TRUE(SamePartition(pt, oracle))
      << what << ": PT " << pt.num_blocks << " blocks, oracle "
      << oracle.num_blocks;
  EXPECT_TRUE(IsStableBisimulationPartition(g, pt)) << what;
  EXPECT_TRUE(Refines(pt, LabelPartition(g))) << what;
}

TEST(PaigeTarjanTest, TinyGraphs) {
  {
    Graph g(0);
    EXPECT_EQ(PaigeTarjanBisimulation(g).num_blocks, 0u);
  }
  {
    Graph g(std::vector<Label>{7});
    EXPECT_EQ(PaigeTarjanBisimulation(g).num_blocks, 1u);
  }
  {
    // Self loop vs leaf with the same label: not bisimilar.
    Graph g(std::vector<Label>{1, 1});
    g.AddEdge(0, 0);
    const Partition p = PaigeTarjanBisimulation(g);
    EXPECT_EQ(p.num_blocks, 2u);
  }
  {
    // Two disjoint 2-cycles, one label: all four nodes bisimilar. The case
    // where the splitter engine must keep cycles together.
    Graph g(std::vector<Label>{1, 1, 1, 1});
    g.AddEdge(0, 1);
    g.AddEdge(1, 0);
    g.AddEdge(2, 3);
    g.AddEdge(3, 2);
    EXPECT_EQ(PaigeTarjanBisimulation(g).num_blocks, 1u);
  }
}

TEST(PaigeTarjanTest, ChainHasDepthBlocks) {
  // Unlabeled chain: every node is its own block (distance to the sink).
  const Graph g = LongChain(257, 1);
  const Partition p = PaigeTarjanBisimulation(g);
  EXPECT_EQ(p.num_blocks, 257u);
  ExpectMatchesOracle(g, "chain-257");
}

TEST(PaigeTarjanTest, BinaryTreeCollapsesToLevels) {
  const Graph g = CompleteBinaryTree(9);
  const Partition p = PaigeTarjanBisimulation(g);
  EXPECT_EQ(p.num_blocks, 9u);  // one block per level
  ExpectMatchesOracle(g, "tree-9");
}

TEST(PaigeTarjanTest, LayeredDagCollapsesToLayers) {
  // Rotation-symmetric layers: one block per layer, reached only after
  // depth rounds.
  const Graph g = LayeredDag(60, 8, 3, 7);
  const Partition p = PaigeTarjanBisimulation(g);
  EXPECT_EQ(p.num_blocks, 60u);
  ExpectMatchesOracle(g, "layered-60");
}

TEST(PaigeTarjanTest, BroomCollapsesBristles) {
  const Graph g = Broom(101, 500);
  const Partition p = PaigeTarjanBisimulation(g);
  EXPECT_EQ(p.num_blocks, 102u);  // handle nodes + one bristle block
  ExpectMatchesOracle(g, "broom");
}

TEST(PaigeTarjanTest, AdversarialTopologiesMatchOracle) {
  ExpectMatchesOracle(LongChain(300, 3), "chain-labeled");
  ExpectMatchesOracle(LayeredDag(40, 8, 3, 7), "layered-dag");
  ExpectMatchesOracle(DirectedGrid(18, 25), "grid");
  ExpectMatchesOracle(Broom(64, 64), "broom-64");
  ExpectMatchesOracle(CompleteBinaryTree(7), "tree-7");
}

// Differential fuzz across the random-model families (the same sweep the
// ranked engine is held to in bisim_test.cc, plus structural twins).
class PaigeTarjanAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PaigeTarjanAgreement, MatchesSignatureOracle) {
  const uint64_t seed = GetParam();
  Graph g;
  switch (seed % 6) {
    case 0:
      g = GenerateUniform(140, 420, 3, seed);
      break;
    case 1:
      g = PreferentialAttachment(140, 3, 0.4, seed);
      break;
    case 2:
      g = CitationDag(140, 4, 0.5, seed, 0.15);
      break;
    case 3:
      g = CopyingModel(140, 4, 0.6, seed);
      break;
    case 4:
      g = InternetTopology(140, 0.2, seed);
      break;
    default:
      g = LayeredRandom(140, 4, 3, 0.1, seed);
      break;
  }
  if (seed % 2 == 0) AssignZipfLabels(g, 5, 0.8, seed);
  if (seed % 3 == 0) CloneOutNeighborhoods(g, 0.25, 0.4, seed ^ 0x5a);
  ExpectMatchesOracle(g, "seed=" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaigeTarjanAgreement,
                         ::testing::Range<uint64_t>(1, 25));

// Bounded splitter rounds must equal k literal RefineOnce rounds, for every
// k, as set partitions.
class BoundedSplitterAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundedSplitterAgreement, MatchesGlobalRounds) {
  const uint64_t seed = GetParam();
  Graph g;
  switch (seed % 4) {
    case 0:
      g = GenerateUniform(120, 360, 3, seed);
      break;
    case 1:
      g = LongChain(150, 1 + seed % 4);
      break;
    case 2:
      g = LayeredDag(30, 6, 2, seed);
      break;
    default:
      g = PreferentialAttachment(120, 3, 0.3, seed);
      break;
  }
  for (const size_t k : {size_t{0}, size_t{1}, size_t{2}, size_t{5},
                         size_t{40}}) {
    const Partition fast = KBisimulation(g, k, BisimEngine::kPaigeTarjan);
    const Partition oracle = KBisimulation(g, k, BisimEngine::kSignature);
    EXPECT_TRUE(SamePartition(fast, oracle))
        << "seed=" << seed << " k=" << k << ": splitter " << fast.num_blocks
        << " blocks, oracle " << oracle.num_blocks;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedSplitterAgreement,
                         ::testing::Range<uint64_t>(1, 13));

TEST(BisimEngineTest, DispatchAndNames) {
  const Graph g = GenerateUniform(60, 180, 3, 5);
  const Partition oracle = SignatureBisimulation(g);
  EXPECT_TRUE(SamePartition(MaxBisimulation(g), oracle));
  EXPECT_TRUE(
      SamePartition(MaxBisimulation(g, BisimEngine::kRanked), oracle));
  EXPECT_TRUE(
      SamePartition(MaxBisimulation(g, BisimEngine::kSignature), oracle));

  BisimEngine e = BisimEngine::kSignature;
  EXPECT_TRUE(ParseBisimEngine("pt", &e));
  EXPECT_EQ(e, BisimEngine::kPaigeTarjan);
  EXPECT_TRUE(ParseBisimEngine("ranked", &e));
  EXPECT_EQ(e, BisimEngine::kRanked);
  EXPECT_TRUE(ParseBisimEngine("signature", &e));
  EXPECT_EQ(e, BisimEngine::kSignature);
  EXPECT_FALSE(ParseBisimEngine("hopcroft", &e));
  EXPECT_STREQ(BisimEngineName(BisimEngine::kPaigeTarjan), "paige-tarjan");
}

}  // namespace
}  // namespace qpgc
