// Copyright 2026 The QPGC Authors.

#include "graph/closure.h"

#include <gtest/gtest.h>

#include "gen/uniform.h"
#include "graph/condensation.h"
#include "graph/topology.h"
#include "graph/traversal.h"

namespace qpgc {
namespace {

TEST(ClosureTest, FullClosureNonEmptySemantics) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);  // cycle {0,1,2}
  g.AddEdge(2, 3);
  const BitMatrix c = FullClosure(g);
  EXPECT_TRUE(c.Test(0, 0));  // on cycle: reaches itself non-emptily
  EXPECT_TRUE(c.Test(0, 3));
  EXPECT_FALSE(c.Test(3, 3));  // leaf does not reach itself
  EXPECT_FALSE(c.Test(3, 0));
}

TEST(ClosureTest, BackwardClosureIsTranspose) {
  const Graph g = GenerateUniform(60, 150, 1, 5);
  const BitMatrix fwd = FullClosure(g, Direction::kForward);
  const BitMatrix bwd = FullClosure(g, Direction::kBackward);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(fwd.Test(u, v), bwd.Test(v, u));
    }
  }
}

TEST(ClosureTest, FullClosureMatchesBfs) {
  const Graph g = GenerateUniform(50, 120, 1, 6);
  const BitMatrix c = FullClosure(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(c.Test(u, v), BfsReaches(g, u, v, PathMode::kNonEmpty))
          << u << " -> " << v;
    }
  }
}

TEST(ClosureTest, DagClosureMatchesFullClosureOnDag) {
  // Random DAG via condensation of a random graph.
  const Graph g = GenerateUniform(80, 240, 1, 7);
  const Condensation cond = BuildCondensation(g);
  const Graph& dag = cond.dag;
  const BitMatrix blocked = DagClosure(dag, {});
  const BitMatrix reference = FullClosure(dag);
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v = 0; v < dag.num_nodes(); ++v) {
      EXPECT_EQ(blocked.Test(u, v), reference.Test(u, v));
    }
  }
}

TEST(ClosureTest, SelfSeedAugmentation) {
  // DAG 0 -> 1; seed node 0 as "cyclic": its own bit must appear.
  Graph dag(2);
  dag.AddEdge(0, 1);
  const std::vector<uint8_t> seed = {1, 0};
  const BitMatrix c = DagClosure(dag, seed);
  EXPECT_TRUE(c.Test(0, 0));
  EXPECT_TRUE(c.Test(0, 1));
  EXPECT_FALSE(c.Test(1, 1));
}

TEST(ClosureTest, SelfLoopEdgeBehavesLikeSeed) {
  Graph dag(2);
  dag.AddEdge(0, 0);
  dag.AddEdge(0, 1);
  const BitMatrix c = DagClosure(dag, {});
  EXPECT_TRUE(c.Test(0, 0));
  EXPECT_FALSE(c.Test(1, 1));
}

TEST(ClosureTest, BlockedSweepEqualsFullWidth) {
  const Graph g = GenerateUniform(70, 200, 1, 8);
  const Condensation cond = BuildCondensation(g);
  const Graph& dag = cond.dag;
  const size_t n = dag.num_nodes();
  const auto order = ReverseTopologicalOrder(dag);
  const BitMatrix reference = DagClosure(dag, {});

  const size_t block = 17;  // deliberately odd block width
  for (size_t start = 0; start < n; start += block) {
    const size_t cols = std::min(block, n - start);
    BitMatrix out(n, cols);
    BlockDescendants(dag, order, {}, start, cols, Direction::kForward, out);
    for (NodeId u = 0; u < n; ++u) {
      for (size_t c = 0; c < cols; ++c) {
        EXPECT_EQ(out.Test(u, c), reference.Test(u, start + c));
      }
    }
  }
}

}  // namespace
}  // namespace qpgc
