// Copyright 2026 The QPGC Authors.

#include "graph/graph.h"

#include <gtest/gtest.h>

namespace qpgc {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.size(), 0u);
}

TEST(GraphTest, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_TRUE(g.AddEdge(0, 2));
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.size(), 6u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(GraphTest, DuplicateEdgeRejected) {
  Graph g(2);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, SelfLoopAllowed) {
  Graph g(2);
  EXPECT_TRUE(g.AddEdge(1, 1));
  EXPECT_TRUE(g.HasEdge(1, 1));
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.InDegree(1), 1u);
}

TEST(GraphTest, RemoveEdgeMaintainsBothDirections) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.InDegree(1), 0u);
  EXPECT_EQ(g.OutDegree(0), 1u);
}

TEST(GraphTest, NeighborsSortedAscending) {
  Graph g(5);
  g.AddEdge(0, 4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 3);
  const auto out = g.OutNeighbors(0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 3u);
  EXPECT_EQ(out[2], 4u);
}

TEST(GraphTest, InNeighborsTracked) {
  Graph g(4);
  g.AddEdge(1, 0);
  g.AddEdge(2, 0);
  g.AddEdge(3, 0);
  const auto in = g.InNeighbors(0);
  ASSERT_EQ(in.size(), 3u);
  EXPECT_EQ(in[0], 1u);
  EXPECT_EQ(in[2], 3u);
}

TEST(GraphTest, Labels) {
  Graph g(std::vector<Label>{5, 7, 5});
  EXPECT_EQ(g.label(0), 5u);
  EXPECT_EQ(g.label(1), 7u);
  EXPECT_EQ(g.CountDistinctLabels(), 2u);
  g.set_label(2, 9);
  EXPECT_EQ(g.CountDistinctLabels(), 3u);
}

TEST(GraphTest, AddNodeGrows) {
  Graph g(1);
  const NodeId v = g.AddNode(3);
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.label(v), 3u);
  EXPECT_TRUE(g.AddEdge(0, v));
}

TEST(GraphTest, ReverseSwapsDirections) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.Reverse();
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphTest, EdgeListSorted) {
  Graph g(3);
  g.AddEdge(2, 0);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  const auto edges = g.EdgeList();
  ASSERT_EQ(edges.size(), 3u);
  const std::pair<NodeId, NodeId> e0{0, 1}, e1{0, 2}, e2{2, 0};
  EXPECT_EQ(edges[0], e0);
  EXPECT_EQ(edges[1], e1);
  EXPECT_EQ(edges[2], e2);
}

TEST(GraphTest, EqualityIsStructural) {
  Graph a(2), b(2);
  a.AddEdge(0, 1);
  b.AddEdge(0, 1);
  EXPECT_EQ(a, b);
  b.AddEdge(1, 0);
  EXPECT_FALSE(a == b);
}

TEST(GraphTest, DebugStringMentionsSizes) {
  Graph g(2);
  g.AddEdge(0, 1);
  const std::string s = g.DebugString();
  EXPECT_NE(s.find("|V|=2"), std::string::npos);
  EXPECT_NE(s.find("|E|=1"), std::string::npos);
}

}  // namespace
}  // namespace qpgc
