// Copyright 2026 The QPGC Authors.

#include "graph/csr.h"

#include <gtest/gtest.h>

#include "gen/random_models.h"
#include "gen/uniform.h"
#include "reach/compress_r.h"

namespace qpgc {
namespace {

TEST(CsrTest, MirrorsAdjacency) {
  Graph g(4);
  g.set_label(2, 9);
  g.AddEdge(0, 1);
  g.AddEdge(0, 3);
  g.AddEdge(2, 0);
  const CsrGraph csr(g);
  EXPECT_EQ(csr.num_nodes(), 4u);
  EXPECT_EQ(csr.num_edges(), 3u);
  EXPECT_EQ(csr.label(2), 9u);
  ASSERT_EQ(csr.OutDegree(0), 2u);
  EXPECT_EQ(csr.OutNeighbors(0)[0], 1u);
  EXPECT_EQ(csr.OutNeighbors(0)[1], 3u);
  ASSERT_EQ(csr.InDegree(0), 1u);
  EXPECT_EQ(csr.InNeighbors(0)[0], 2u);
  EXPECT_EQ(csr.OutDegree(3), 0u);
}

TEST(CsrTest, EmptyGraph) {
  const CsrGraph csr{Graph(0)};
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(CsrTest, SmallerThanDynamicGraph) {
  const Graph g = GenerateUniform(2000, 10000, 1, 3);
  const CsrGraph csr(g);
  EXPECT_LT(csr.MemoryBytes(), g.MemoryBytes());
}

class CsrBfsAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsrBfsAgreement, MatchesDynamicBfs) {
  const uint64_t seed = GetParam();
  const Graph g = seed % 2 == 0 ? GenerateUniform(80, 240, 1, seed)
                                : PreferentialAttachment(80, 3, 0.4, seed);
  const CsrGraph csr(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    for (NodeId v = 0; v < g.num_nodes(); v += 5) {
      for (PathMode mode : {PathMode::kReflexive, PathMode::kNonEmpty}) {
        EXPECT_EQ(CsrBfsReaches(csr, u, v, mode), BfsReaches(g, u, v, mode))
            << "seed=" << seed << " (" << u << "," << v << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrBfsAgreement,
                         ::testing::Range<uint64_t>(1, 9));

// "Any algorithm runs on Gr unchanged" includes frozen-view algorithms:
// freeze the compressed graph and serve the rewritten queries from CSR.
TEST(CsrTest, ServesCompressedQueries) {
  const Graph g = PreferentialAttachment(150, 3, 0.5, 11);
  const ReachCompression rc = CompressR(g);
  const CsrGraph frozen(rc.gr);
  for (NodeId u = 0; u < g.num_nodes(); u += 11) {
    for (NodeId v = 0; v < g.num_nodes(); v += 13) {
      const bool truth = BfsReaches(g, u, v, PathMode::kReflexive);
      const bool via_csr =
          u == v || CsrBfsReaches(frozen, rc.node_map[u], rc.node_map[v],
                                  PathMode::kNonEmpty);
      EXPECT_EQ(via_csr, truth) << "(" << u << "," << v << ")";
    }
  }
}

}  // namespace
}  // namespace qpgc
