// Copyright 2026 The QPGC Authors.

#include "util/status.h"

#include <gtest/gtest.h>

#include "util/memory.h"

namespace qpgc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(MemoryTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2.00KB");
  EXPECT_EQ(FormatBytes(3 << 20), "3.00MB");
  EXPECT_EQ(FormatBytes(size_t{5} << 30), "5.00GB");
}

}  // namespace
}  // namespace qpgc
