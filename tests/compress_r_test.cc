// Copyright 2026 The QPGC Authors.

#include "reach/compress_r.h"

#include <gtest/gtest.h>

#include "gen/uniform.h"
#include "graph/closure.h"
#include "graph/topology.h"
#include "graph/traversal.h"

namespace qpgc {
namespace {

TEST(CompressRTest, CompressesParallelStructure) {
  Graph g(6);
  // Two equivalent sources {0,1} -> two equivalent middles {2,3} -> two
  // equivalent sinks {4,5}.
  for (NodeId s : {0, 1}) {
    g.AddEdge(s, 2);
    g.AddEdge(s, 3);
  }
  for (NodeId m : {2, 3}) {
    g.AddEdge(m, 4);
    g.AddEdge(m, 5);
  }
  const ReachCompression rc = CompressR(g);
  EXPECT_EQ(rc.gr.num_nodes(), 3u);
  EXPECT_EQ(rc.gr.num_edges(), 2u);
  EXPECT_LT(rc.CompressionRatio(), 0.5);
}

TEST(CompressRTest, SelfLoopMarksCyclicClass) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  const ReachCompression rc = CompressR(g);
  const NodeId c = rc.node_map[0];
  EXPECT_TRUE(rc.cyclic[c]);
  EXPECT_TRUE(rc.gr.HasEdge(c, c));
  const NodeId sink = rc.node_map[2];
  EXPECT_FALSE(rc.gr.HasEdge(sink, sink));
}

TEST(CompressRTest, QuotientEdgesTransitivelyReduced) {
  // Chain with shortcut: 0 -> 1 -> 2 and 0 -> 2; all nodes distinct classes.
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  const ReachCompression rc = CompressR(g);
  EXPECT_EQ(rc.gr.num_nodes(), 3u);
  EXPECT_EQ(rc.gr.num_edges(), 2u);  // shortcut removed
}

TEST(CompressRTest, ReductionCanBeDisabled) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  CompressROptions options;
  options.transitive_reduction = false;
  const ReachCompression rc = CompressR(g, options);
  EXPECT_EQ(rc.gr.num_edges(), 3u);
}

TEST(CompressRTest, NodeMapAndMembersConsistent) {
  const Graph g = GenerateUniform(150, 500, 1, 4);
  const ReachCompression rc = CompressR(g);
  EXPECT_EQ(rc.node_map.size(), g.num_nodes());
  size_t total = 0;
  for (NodeId c = 0; c < rc.gr.num_nodes(); ++c) {
    total += rc.members[c].size();
    for (NodeId v : rc.members[c]) EXPECT_EQ(rc.node_map[v], c);
  }
  EXPECT_EQ(total, g.num_nodes());
  EXPECT_EQ(rc.original_size, g.size());
  EXPECT_LE(rc.size(), g.size());
}

TEST(CompressRTest, RanksMatchMemberRanks) {
  const Graph g = GenerateUniform(100, 320, 1, 5);
  const ReachCompression rc = CompressR(g);
  const auto node_ranks = ReachTopoRanks(g);
  for (NodeId c = 0; c < rc.gr.num_nodes(); ++c) {
    for (NodeId v : rc.members[c]) {
      EXPECT_EQ(rc.ranks[c], node_ranks[v]);
    }
  }
}

// The defining property, exhaustively on small graphs: u reaches v in G
// (non-empty) iff R(u) reaches R(v) in Gr (non-empty).
class CompressRPreservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressRPreservationTest, ClosurePreserved) {
  const uint64_t seed = GetParam();
  const Graph g = GenerateUniform(60, 60 + (seed * 37) % 240, 1, seed);
  const ReachCompression rc = CompressR(g);
  const BitMatrix g_closure = FullClosure(g);
  const BitMatrix gr_closure = FullClosure(rc.gr);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(g_closure.Test(u, v),
                gr_closure.Test(rc.node_map[u], rc.node_map[v]))
          << "seed=" << seed << " pair (" << u << "," << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressRPreservationTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(CompressRTest, EmptyAndEdgeless) {
  Graph empty(0);
  const ReachCompression rc0 = CompressR(empty);
  EXPECT_EQ(rc0.gr.num_nodes(), 0u);
  Graph edgeless(5);
  const ReachCompression rc1 = CompressR(edgeless);
  EXPECT_EQ(rc1.gr.num_nodes(), 1u);  // all nodes equivalent
  EXPECT_EQ(rc1.gr.num_edges(), 0u);
}

}  // namespace
}  // namespace qpgc
