// Copyright 2026 The QPGC Authors.
//
// End-to-end incremental properties: long update sequences over evolving
// graphs, maintaining both compressions and an incremental match, checked
// against batch recomputation at every step. This is the Section 5 contract
// Gr ⊕ ΔGr = R(G ⊕ ΔG), composed over time.

#include <gtest/gtest.h>

#include "gen/evolution.h"
#include "gen/random_models.h"
#include "gen/uniform.h"
#include "gen/update_gen.h"
#include "inc/inc_pcm.h"
#include "inc/inc_rcm.h"
#include "pattern/inc_match.h"
#include "pattern/pattern_gen.h"
#include "test_util.h"

namespace qpgc {
namespace {

class IncrementalEvolutionProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(IncrementalEvolutionProperty, AllMaintainersStayExact) {
  const uint64_t seed = GetParam();
  Graph g = PreferentialAttachment(60, 3, 0.4, seed);
  AssignZipfLabels(g, 3, 0.8, seed);

  ReachCompression rc = CompressR(g);
  PatternCompression pc = CompressB(g);
  PatternGenOptions options;
  options.num_nodes = 3;
  options.num_edges = 3;
  options.max_bound = 2;
  const PatternQuery q = RandomPattern(DistinctLabels(g), options, seed);
  IncBMatch match(&g, q);

  for (uint64_t step = 0; step < 5; ++step) {
    UpdateBatch batch;
    switch ((seed * 7 + step) % 4) {
      case 0:
        batch = RandomInsertions(g, 5, seed * 101 + step);
        break;
      case 1:
        batch = RandomDeletions(g, 5, seed * 101 + step);
        break;
      case 2:
        batch = RandomMixed(g, 8, 0.5, seed * 101 + step);
        break;
      default:
        batch = PowerLawGrowthStep(g, 0.03, 0.8, seed * 101 + step);
        // PowerLawGrowthStep already applied its insertions; re-express as
        // a no-op for ApplyBatch by clearing (updates already in g).
        {
          const UpdateBatch applied = batch;
          batch.updates.clear();
          IncRCM(g, applied, rc);
          IncPCM(g, applied, pc);
          match.Update(applied);
        }
        break;
    }
    if (!batch.empty()) {
      const UpdateBatch effective = ApplyBatch(g, batch);
      IncRCM(g, effective, rc);
      IncPCM(g, effective, pc);
      match.Update(effective);
    }

    ExpectEquivalentReachCompression(rc, CompressR(g));
    ExpectEquivalentPatternCompression(pc, CompressB(g));
    EXPECT_EQ(match.result(), Match(g, q)) << "seed=" << seed
                                           << " step=" << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEvolutionProperty,
                         ::testing::Range<uint64_t>(1, 13));

// Deleting every edge one batch at a time must end at the edgeless
// compression (all-nodes-equivalent for reachability).
TEST(IncrementalProperty, DrainToEmpty) {
  Graph g = GenerateUniform(40, 100, 2, 5);
  ReachCompression rc = CompressR(g);
  PatternCompression pc = CompressB(g);
  while (g.num_edges() > 0) {
    const UpdateBatch batch = RandomDeletions(g, 20, g.num_edges());
    const UpdateBatch effective = ApplyBatch(g, batch);
    IncRCM(g, effective, rc);
    IncPCM(g, effective, pc);
  }
  ExpectEquivalentReachCompression(rc, CompressR(g));
  ExpectEquivalentPatternCompression(pc, CompressB(g));
  EXPECT_EQ(rc.gr.num_nodes(), 1u);  // every node equivalent
}

// Insert-then-delete returning to the original graph must return to the
// original compression.
TEST(IncrementalProperty, RoundTripRestoresCompression) {
  Graph g = GenerateUniform(50, 150, 2, 9);
  const ReachCompression original = CompressR(g);
  ReachCompression rc = CompressR(g);

  const UpdateBatch ins = RandomInsertions(g, 10, 11);
  const UpdateBatch eff_ins = ApplyBatch(g, ins);
  IncRCM(g, eff_ins, rc);

  UpdateBatch undo;
  for (const auto& up : eff_ins.updates) undo.Delete(up.u, up.v);
  const UpdateBatch eff_undo = ApplyBatch(g, undo);
  IncRCM(g, eff_undo, rc);

  ExpectEquivalentReachCompression(rc, original);
}

}  // namespace
}  // namespace qpgc
