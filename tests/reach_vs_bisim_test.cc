// Copyright 2026 The QPGC Authors.
//
// The paper's Section 3.1 warning (Fig. 4, graph G2 and its bisimulation
// index G'r2): bisimulation-based index graphs do NOT preserve reachability.
// We reconstruct the example — C1 and C2 bisimilar, merged by bisimulation,
// although C2 reaches E2 and C1 does not — and show that the reachability
// equivalence keeps them apart while compressR stays exact. Example 4's
// observation (the two relations are incomparable) is covered too.

#include <gtest/gtest.h>

#include "bisim/signature_bisim.h"
#include "core/pattern_scheme.h"
#include "gen/uniform.h"
#include "graph/builder.h"
#include "graph/traversal.h"
#include "reach/compress_r.h"
#include "reach/equivalence.h"
#include "reach/queries.h"

namespace qpgc {
namespace {

// G2 of Fig. 4 in spirit: two C nodes each pointing at an E leaf; the E
// leaves differ in onward reachability (E2 -> F), so C1, C2 are bisimilar
// (same unfolding shape up to labels) only if E1, E2 are — make labels
// equal but structure asymmetric downstream of E2 only via an extra edge
// from C2's E child.
struct G2 {
  // labels: C = 0, E = 1, F = 2
  Graph g{std::vector<Label>{0, 0, 1, 1, 2}};
  NodeId c1 = 0, c2 = 1, e1 = 2, e2 = 3, f = 4;
  G2() {
    g.AddEdge(c1, e1);
    g.AddEdge(c2, e2);
    g.AddEdge(e2, f);
  }
};

TEST(ReachVsBisim, ReachEquivalenceSeparatesC1C2) {
  const G2 x;
  const ReachPartition p = ComputeReachEquivalence(x.g);
  // C2 reaches F, C1 does not: different descendants, different classes.
  EXPECT_NE(p.class_of[x.c1], p.class_of[x.c2]);
}

TEST(ReachVsBisim, CompressRStaysExactOnG2) {
  const G2 x;
  const ReachCompression rc = CompressR(x.g);
  EXPECT_FALSE(AnswerOnCompressed(rc, {x.c1, x.f}, PathMode::kReflexive,
                                  ReachAlgorithm::kBfs));
  EXPECT_TRUE(AnswerOnCompressed(rc, {x.c2, x.f}, PathMode::kReflexive,
                                 ReachAlgorithm::kBfs));
}

TEST(ReachVsBisim, BisimilarMergeWouldBreakReachability) {
  // Construct the paper's exact failure: make C1 and C2 bisimilar by making
  // E1 and E2 bisimilar-looking at depth 1 — give both an F child, then
  // remove asymmetry from labels but keep it in reachability via an extra
  // hop. Simplest faithful rendition: C1, C2 both -> E; only E2 -> F. Then
  // C1 and C2 are NOT bisimilar, but 1-bisimilar — and a 1-bisimulation
  // index merges them, answering QR(C1, F) wrongly.
  const G2 x;
  const Partition k1 = [&] {
    Partition p = LabelPartition(x.g);
    RefineOnce(x.g, p);
    p.Normalize();
    return p;
  }();
  ASSERT_EQ(k1.block_of[x.c1], k1.block_of[x.c2]);  // merged by the index
  // Index graph: quotient. On it, the merged C block reaches F — wrong for
  // C1.
  GraphBuilder qb(k1.num_blocks);
  for (NodeId v = 0; v < x.g.num_nodes(); ++v) {
    qb.SetLabel(k1.block_of[v], x.g.label(v));
  }
  x.g.ForEachEdge(
      [&](NodeId u, NodeId v) { qb.AddEdge(k1.block_of[u], k1.block_of[v]); });
  const Graph index_graph = qb.Build();
  EXPECT_TRUE(BfsReaches(index_graph, k1.block_of[x.c1], k1.block_of[x.f],
                         PathMode::kReflexive));
  EXPECT_FALSE(BfsReaches(x.g, x.c1, x.f, PathMode::kReflexive));
}

TEST(ReachVsBisim, RelationsIncomparableExample4) {
  // Example 4 (paper, Fig. 6 G2): A4 and A5 reachability equivalent but not
  // bisimilar; A5 and A6 bisimilar but not reachability equivalent.
  // Reconstruction: A4 -> B1 -> C; A5 -> B2 -> C (A4, A5 same anc/desc only
  // if B1 = B2 targets align)...
  // Concrete rendition:
  //   A4 -> B1, A5 -> B1: same ancestors/descendants -> reach-equivalent.
  //   B1 has a C child; give A4 a direct C edge too: now A4 has children
  //   {B1, C}, A5 has {B1} -> not bisimilar, still reach-equivalent
  //   (C is in both descendant sets).
  Graph g(std::vector<Label>{0, 0, 1, 2});
  const NodeId a4 = 0, a5 = 1, b1 = 2, c = 3;
  g.AddEdge(a4, b1);
  g.AddEdge(a5, b1);
  g.AddEdge(b1, c);
  g.AddEdge(a4, c);
  const ReachPartition rp = ComputeReachEquivalence(g);
  EXPECT_EQ(rp.class_of[a4], rp.class_of[a5]);
  const Partition bp = SignatureBisimulation(g);
  EXPECT_NE(bp.block_of[a4], bp.block_of[a5]);

  // Bisimilar but not reach-equivalent: two same-label leaves with
  // different parents.
  Graph h(std::vector<Label>{0, 1, 1});
  h.AddEdge(0, 1);  // leaf 1 has an ancestor, leaf 2 does not
  const Partition bh = SignatureBisimulation(h);
  EXPECT_EQ(bh.block_of[1], bh.block_of[2]);
  const ReachPartition rh = ComputeReachEquivalence(h);
  EXPECT_NE(rh.class_of[1], rh.class_of[2]);
}

TEST(ReachVsBisim, BisimQuotientOverApproximatesReachability) {
  // Systematically: on random labeled graphs, reachability answered through
  // the bisimulation quotient may err, while compressR never does.
  size_t bisim_errors = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = GenerateUniform(60, 150, 2, seed);
    const PatternCompression pc = CompressB(g);
    const ReachCompression rc = CompressR(g);
    const auto queries = RandomReachQueries(g.num_nodes(), 150, seed * 7);
    for (const auto& q : queries) {
      const bool truth = BfsReaches(g, q.u, q.v, PathMode::kReflexive);
      EXPECT_EQ(AnswerOnCompressed(rc, q, PathMode::kReflexive,
                                   ReachAlgorithm::kBfs),
                truth);
      const bool via_bisim =
          q.u == q.v ||
          BfsReaches(pc.gr, pc.node_map[q.u], pc.node_map[q.v],
                     PathMode::kReflexive);
      bisim_errors += (via_bisim != truth);
    }
  }
  EXPECT_GT(bisim_errors, 0u)
      << "expected at least one wrong answer through the bisimulation "
         "quotient across seeds";
}

}  // namespace
}  // namespace qpgc
