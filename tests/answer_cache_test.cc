// Copyright 2026 The QPGC Authors.
//
// The answer-caching serving tier (serve/answer_cache.h). The heart of the
// suite is differential: every answer a cached facade returns — exact hit,
// subsumption-derived, negative-cached, or freshly evaluated — must be
// bit-identical to the uncached oracle for the exact version the query
// pinned, across publish cycles, on every generator family, and under
// eviction pressure. The stress test drives multi-reader/one-writer load
// through the cached facade and oracle-checks every observation (suite
// names carry the "QueryService"/"Serving"/"Shard" prefixes CI's TSan job
// filters on).

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gen/adversarial.h"
#include "gen/random_models.h"
#include "gen/uniform.h"
#include "gen/update_gen.h"
#include "pattern/match.h"
#include "serve/answer_cache.h"
#include "serve/load_gen.h"
#include "serve/sharded_manager.h"
#include "util/rng.h"

namespace qpgc {
namespace {

// One representative per generator family (the corpus the sharded suite
// uses, labeled where the family supports it).
std::vector<std::pair<const char*, Graph>> FamilyCorpus() {
  std::vector<std::pair<const char*, Graph>> corpus;
  corpus.emplace_back("uniform", GenerateUniform(90, 300, 4, 7));
  {
    Graph g = PreferentialAttachment(110, 3, 0.5, 11);
    AssignZipfLabels(g, 3, 1.1, 12);
    corpus.emplace_back("social", std::move(g));
  }
  corpus.emplace_back("chain", LongChain(120, 2));
  corpus.emplace_back("layered", LayeredDag(24, 5, 3, 42));
  corpus.emplace_back("broom", Broom(40, 50));
  corpus.emplace_back("grid", DirectedGrid(9, 9));
  corpus.emplace_back("tree", CompleteBinaryTree(7));
  return corpus;
}

// Issues `count` random reach probes (both path modes) and every pattern
// twice (second time from the cache) against one pinned cached snapshot,
// comparing each answer with direct evaluation on `truth`.
template <typename CachedPin>
void ExpectPinMatchesOracle(const CachedPin& pin, const Graph& truth,
                            const std::vector<PatternQuery>& patterns,
                            size_t count, uint64_t seed, const char* what) {
  Rng rng(seed);
  const size_t n = truth.num_nodes();
  for (size_t i = 0; i < count; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    const PathMode mode =
        rng.Chance(0.5) ? PathMode::kReflexive : PathMode::kNonEmpty;
    ASSERT_EQ(pin->Reach(u, v, mode), BfsReaches(truth, u, v, mode))
        << what << " reach(" << u << ", " << v << ") mode "
        << static_cast<int>(mode);
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t p = 0; p < patterns.size(); ++p) {
      const MatchResult want = Match(truth, patterns[p]);
      ASSERT_EQ(pin->BooleanMatch(patterns[p]), want.matched)
          << what << " boolean pattern " << p << " pass " << pass;
      ASSERT_EQ(pin->Match(patterns[p]).match_sets, want.match_sets)
          << what << " pattern " << p << " pass " << pass;
    }
  }
}

// ---------------------------------------------------------------------------
// Differential correctness across publish cycles, all families. Two query
// passes per version: the first fills the cache, the second answers from it
// — both must equal the uncached oracle.
// ---------------------------------------------------------------------------

TEST(CachedQueryServiceTest, DifferentialAcrossPublishCyclesAllFamilies) {
  for (auto& [name, initial] : FamilyCorpus()) {
    SnapshotManager mgr(initial);
    CachedQueryService cached(mgr);
    const std::vector<PatternQuery> patterns =
        ServeLoadPatterns(initial, 5, 77);
    Graph mirror = initial;

    for (size_t round = 0; round < 4; ++round) {  // version 1 + 3 publishes
      const auto pin = cached.Pin();
      // Two identical passes: pass 2 re-probes what pass 1 cached.
      ExpectPinMatchesOracle(pin, mirror, patterns, 150, 500 + round, name);
      ExpectPinMatchesOracle(pin, mirror, patterns, 150, 500 + round, name);
      const UpdateBatch batch =
          RandomMixed(mgr.graph(), 12, 0.55, 900 + 17 * round);
      mgr.Apply(batch);
      ApplyBatch(mirror, batch);
      mgr.Publish();
    }
    const CacheStats stats = cached.cache_stats();
    EXPECT_GT(stats.reach_exact_hits, 0u) << name;
    EXPECT_GT(stats.reach_inserts, 0u) << name;
  }
}

// ---------------------------------------------------------------------------
// Subsumption: the three transitivity rules must fire (counted) and must
// never derive an answer the oracle disagrees with, on any family.
// ---------------------------------------------------------------------------

TEST(CachedQueryServiceTest, SubsumptionComposesTrueAndPrunesFalse) {
  // A long chain makes the derivations predictable: i reaches j iff i < j
  // (non-empty), and every node is its own reach-quotient block.
  const Graph g = LongChain(60, 2);
  SnapshotManager mgr(g);
  CachedQueryService cached(mgr);
  const auto pin = cached.Pin();

  // Seed: true(5 -> 15), true(15 -> 25); derive true(5 -> 25) without
  // evaluating (rule 1: composition through the midpoint 15).
  ASSERT_TRUE(pin->Reach(5, 15));
  ASSERT_TRUE(pin->Reach(15, 25));
  const CacheStats before_true = cached.cache_stats();
  EXPECT_TRUE(pin->Reach(5, 25));
  const CacheStats after_true = cached.cache_stats();
  EXPECT_EQ(after_true.reach_subsumption_hits,
            before_true.reach_subsumption_hits + 1);
  EXPECT_EQ(after_true.reach_misses, before_true.reach_misses);

  // Seed: true(10 -> 20), false(40 -> 20); derive false(40 -> 10) (rule 2:
  // 10 reaches 20 but 40 does not, so 40 cannot reach 10).
  ASSERT_TRUE(pin->Reach(10, 20));
  ASSERT_FALSE(pin->Reach(40, 20));
  const CacheStats before_false = cached.cache_stats();
  EXPECT_FALSE(pin->Reach(40, 10));
  const CacheStats after_false = cached.cache_stats();
  EXPECT_EQ(after_false.reach_subsumption_hits,
            before_false.reach_subsumption_hits + 1);

  // Seed: true(30 -> 45), false(30 -> 28); derive false(45 -> 28) (rule 3:
  // 30 reaches 45 but not 28, so 45 cannot reach 28).
  ASSERT_TRUE(pin->Reach(30, 45));
  ASSERT_FALSE(pin->Reach(30, 28));
  const CacheStats before_r3 = cached.cache_stats();
  EXPECT_FALSE(pin->Reach(45, 28));
  const CacheStats after_r3 = cached.cache_stats();
  EXPECT_EQ(after_r3.reach_subsumption_hits,
            before_r3.reach_subsumption_hits + 1);
}

TEST(CachedQueryServiceTest, SubsumptionIsSoundOnAllFamilies) {
  for (auto& [name, g] : FamilyCorpus()) {
    SnapshotManager mgr(g);
    AnswerCacheOptions options;  // all tiers on, generous fact sets
    options.facts_per_endpoint = 32;
    CachedQueryService cached(mgr, options);
    const auto pin = cached.Pin();
    Rng rng(4242);
    const size_t n = g.num_nodes();
    // Seed phase fills the fact sets; probe phase forces tier-2 lookups on
    // pairs the exact table never saw. Every answer must match the oracle.
    for (size_t i = 0; i < 200; ++i) {
      (void)pin->Reach(static_cast<NodeId>(rng.Uniform(n)),
                       static_cast<NodeId>(rng.Uniform(n)));
    }
    for (size_t i = 0; i < 400; ++i) {
      const NodeId u = static_cast<NodeId>(rng.Uniform(n));
      const NodeId v = static_cast<NodeId>(rng.Uniform(n));
      ASSERT_EQ(pin->Reach(u, v), BfsReaches(g, u, v))
          << name << " reach(" << u << ", " << v << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Eviction under pressure: tiny capacities, sustained load — evictions must
// happen and answers must stay oracle-exact throughout.
// ---------------------------------------------------------------------------

TEST(CachedQueryServiceTest, EvictionUnderPressureStaysExact) {
  const Graph g = GenerateUniform(200, 520, 4, 29);
  SnapshotManager mgr(g);
  AnswerCacheOptions options;
  options.reach_capacity = 64;
  options.match_capacity = 4;
  options.subsumption_endpoints = 32;
  options.facts_per_endpoint = 4;
  CachedQueryService cached(mgr, options);
  const std::vector<PatternQuery> patterns = ServeLoadPatterns(g, 24, 31);
  ASSERT_FALSE(patterns.empty());

  const auto pin = cached.Pin();
  Rng rng(90);
  for (size_t i = 0; i < 4000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    const NodeId v = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    ASSERT_EQ(pin->Reach(u, v), BfsReaches(g, u, v));
    if (i % 8 == 0) {
      const PatternQuery& p = patterns[rng.Uniform(patterns.size())];
      ASSERT_EQ(pin->BooleanMatch(p), Match(g, p).matched);
    }
  }
  const CacheStats stats = cached.cache_stats();
  EXPECT_GT(stats.reach_evictions, 0u);
  EXPECT_GT(stats.reach_exact_hits, 0u);
}

// ---------------------------------------------------------------------------
// Version attachment: a publish cold-starts the new version's cache; a
// reader still pinning a retired version keeps its warm cache and stays
// correct against that version's graph.
// ---------------------------------------------------------------------------

TEST(CachedQueryServiceTest, RetiredVersionPinStaysWarmAndCorrect) {
  const Graph initial = GenerateUniform(80, 220, 4, 13);
  SnapshotManager mgr(initial);
  AnswerCacheOptions options;
  options.max_versions = 2;
  CachedQueryService cached(mgr, options);

  const auto old_pin = cached.Pin();
  const Graph old_graph = mgr.graph();
  ExpectPinMatchesOracle(old_pin, old_graph, {}, 100, 1, "warmup");
  Graph mirror = old_graph;

  // Publish well past max_versions: the version-1 cache is retired from the
  // bank, but old_pin's handle keeps it alive and warm.
  for (size_t round = 0; round < 5; ++round) {
    const UpdateBatch batch = RandomMixed(mgr.graph(), 10, 0.5, 600 + round);
    mgr.Apply(batch);
    ApplyBatch(mirror, batch);
    mgr.Publish();
  }
  const auto new_pin = cached.Pin();
  EXPECT_NE(old_pin->version(), new_pin->version());
  ExpectPinMatchesOracle(new_pin, mirror, {}, 150, 2, "post-publish");
  // The retired-version pin must still answer for ITS graph, not the
  // current one.
  ExpectPinMatchesOracle(old_pin, old_graph, {}, 150, 3, "retired-pin");
}

// ---------------------------------------------------------------------------
// Negative match cache: misses are remembered (and only misses), hits are
// re-evaluated, answers stay oracle-exact.
// ---------------------------------------------------------------------------

TEST(CachedQueryServiceTest, NegativeMatchCacheRemembersOnlyMisses) {
  const Graph g = GenerateUniform(60, 160, 4, 11);
  SnapshotManager mgr(g);
  CachedQueryService cached(mgr);
  const auto pin = cached.Pin();

  // A pattern whose label does not occur in g can never match.
  PatternQuery never;
  never.AddNode(static_cast<Label>(999));
  ASSERT_FALSE(Match(g, never).matched);
  EXPECT_FALSE(pin->BooleanMatch(never));
  const CacheStats after_first = cached.cache_stats();
  EXPECT_EQ(after_first.match_negative_hits, 0u);
  EXPECT_EQ(after_first.match_inserts, 1u);
  EXPECT_FALSE(pin->BooleanMatch(never));
  const CacheStats after_second = cached.cache_stats();
  EXPECT_EQ(after_second.match_negative_hits, 1u);

  // A pattern that matches is never stored: both probes evaluate.
  PatternQuery always;
  always.AddNode(g.label(0));
  ASSERT_TRUE(Match(g, always).matched);
  EXPECT_TRUE(pin->BooleanMatch(always));
  EXPECT_TRUE(pin->BooleanMatch(always));
  const CacheStats after_hits = cached.cache_stats();
  EXPECT_EQ(after_hits.match_inserts, 1u);  // still just the negative one
  EXPECT_EQ(after_hits.match_misses, after_second.match_misses + 2);
}

// ---------------------------------------------------------------------------
// Sharded facade: cached routed answers equal the unsharded oracle across
// per-shard publish cycles, for several K.
// ---------------------------------------------------------------------------

TEST(CachedShardedServiceTest, RoutedCachedDifferentialAcrossPublishes) {
  const Graph initial = GenerateUniform(90, 300, 4, 7);
  for (const uint32_t k : {1u, 2u, 3u}) {
    ShardedManagerOptions opts;
    opts.num_shards = k;
    ShardedSnapshotManager mgr(initial, opts);
    CachedShardedQueryService cached(mgr);
    const std::vector<PatternQuery> patterns =
        ServeLoadPatterns(initial, 5, 55);
    Graph mirror = initial;

    for (size_t round = 0; round < 3; ++round) {
      const auto pin = cached.Pin();
      ExpectPinMatchesOracle(pin, mirror, patterns, 120, 700 + round,
                             "sharded");
      ExpectPinMatchesOracle(pin, mirror, patterns, 120, 700 + round,
                             "sharded");
      const UpdateBatch batch =
          RandomMixed(mirror, 16, 0.55, 800 + 13 * round);
      mgr.Apply(batch);
      ApplyBatch(mirror, batch);
      mgr.PublishAll();
    }
    const CacheStats stats = cached.cache_stats();
    EXPECT_GT(stats.reach_exact_hits, 0u) << "K=" << k;
  }
}

// ---------------------------------------------------------------------------
// Workload sampler: the hot set is a pure function of the workload seed, so
// independent readers (and A/B phases) replay the same hot pairs.
// ---------------------------------------------------------------------------

TEST(ServingWorkloadTest, ZipfHotSetIsSharedAcrossSamplers) {
  const ReaderWorkload w = ReaderWorkload::ZipfHotSet(1.1, 64);
  const WorkloadSampler a(w, 500);
  const WorkloadSampler b(w, 500);
  Rng rng_a(123);
  Rng rng_b(123);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.SampleReachPair(rng_a), b.SampleReachPair(rng_b));
  }
  // Skew sanity: rank 0's pair dominates a long sample.
  Rng rng(7);
  std::unordered_map<uint64_t, size_t> freq;
  for (int i = 0; i < 4000; ++i) {
    const auto [u, v] = a.SampleReachPair(rng);
    ++freq[(static_cast<uint64_t>(u) << 32) | v];
  }
  size_t top = 0;
  for (const auto& [pair, count] : freq) top = std::max(top, count);
  EXPECT_LE(freq.size(), 64u);
  EXPECT_GT(top, 4000u / 16);  // far above uniform's 4000/64
}

// ---------------------------------------------------------------------------
// TSan stress: N cached readers under Zipf repetition + 1 publishing
// writer; every observation oracle-checked for the exact pinned version.
// ---------------------------------------------------------------------------

struct CacheObservation {
  uint64_t version = 0;
  bool is_reach = false;
  NodeId u = 0;
  NodeId v = 0;
  size_t pattern = 0;
  bool answer = false;
};

TEST(ServingCacheStressTest, ConcurrentCachedQueriesMatchOracle) {
  constexpr size_t kReaders = 3;
  constexpr size_t kVersions = 8;
  constexpr size_t kMaxObservationsPerReader = 1200;

  const Graph initial = GenerateUniform(200, 460, 4, 41);
  const std::vector<PatternQuery> patterns =
      ServeLoadPatterns(initial, 6, 61);
  ASSERT_FALSE(patterns.empty());

  SnapshotManager mgr(initial);
  CachedQueryService cached(mgr);
  std::unordered_map<uint64_t, Graph> version_graph;
  version_graph.emplace(1, initial);

  std::atomic<bool> done{false};
  std::vector<std::vector<CacheObservation>> observed(kReaders);

  const ReaderWorkload workload = ReaderWorkload::ZipfHotSet(1.1, 128);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(7000 + r);
      const WorkloadSampler sampler(workload, initial.num_nodes());
      auto& log = observed[r];
      while (!done.load(std::memory_order_relaxed) &&
             log.size() < kMaxObservationsPerReader) {
        const auto pin = cached.Pin();
        CacheObservation ob;
        ob.version = pin->version();
        if (rng.Uniform(8) == 0) {
          ob.pattern = sampler.SamplePatternIndex(rng, patterns.size());
          ob.answer = pin->BooleanMatch(patterns[ob.pattern]);
        } else {
          ob.is_reach = true;
          const std::pair<NodeId, NodeId> uv = sampler.SampleReachPair(rng);
          ob.u = uv.first;
          ob.v = uv.second;
          ob.answer = pin->Reach(ob.u, ob.v);
        }
        log.push_back(ob);
      }
    });
  }

  for (size_t round = 2; round <= kVersions; ++round) {
    mgr.Apply(RandomMixed(mgr.graph(), 8, 0.55, 9000 + round));
    const PublishStats stats = mgr.Publish();
    version_graph.emplace(stats.version, mgr.graph());
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  std::unordered_map<uint64_t, std::vector<MatchResult>> match_oracle;
  size_t checked = 0;
  for (const auto& log : observed) {
    for (const CacheObservation& ob : log) {
      const auto it = version_graph.find(ob.version);
      ASSERT_NE(it, version_graph.end());
      const Graph& truth = it->second;
      if (ob.is_reach) {
        ASSERT_EQ(ob.answer, BfsReaches(truth, ob.u, ob.v))
            << "version " << ob.version << " reach(" << ob.u << ", " << ob.v
            << ")";
      } else {
        auto& oracle = match_oracle[ob.version];
        if (oracle.empty()) {
          oracle.reserve(patterns.size());
          for (const PatternQuery& p : patterns) {
            oracle.push_back(Match(truth, p));
          }
        }
        ASSERT_EQ(ob.answer, oracle[ob.pattern].matched)
            << "version " << ob.version << " pattern " << ob.pattern;
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_GT(cached.cache_stats().reach_exact_hits, 0u);
}

}  // namespace
}  // namespace qpgc
