// Copyright 2026 The QPGC Authors.
//
// The serving layer: ServingSnapshot correctness against the batch
// artifacts, SnapshotManager version/retirement lifecycle and publish
// policies, and the multi-threaded stress test (N readers, 1 writer) that
// pins every query to a version and checks it against a recompute oracle
// for exactly that version. The stress suites are what the CI TSan job
// gates on (test names carry the "Serving"/"Snapshot" prefix the job's
// ctest -R filter selects).

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gen/uniform.h"
#include "gen/update_gen.h"
#include "pattern/pattern_gen.h"
#include "serve/query_service.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"
#include "util/rng.h"

namespace qpgc {
namespace {

Graph SmallLabeledGraph() {
  Graph g = GenerateUniform(/*num_nodes=*/60, /*num_edges=*/140,
                            /*num_labels=*/4, /*seed=*/11);
  return g;
}

std::vector<PatternQuery> TestPatterns(const Graph& g, size_t count,
                                       uint64_t seed) {
  PatternGenOptions opts;
  opts.num_nodes = 3;
  opts.num_edges = 3;
  opts.max_bound = 2;
  std::vector<PatternQuery> patterns;
  const std::vector<Label> labels = DistinctLabels(g);
  for (size_t i = 0; i < count; ++i) {
    patterns.push_back(RandomPattern(labels, opts, seed + i));
  }
  return patterns;
}

// ---------------------------------------------------------------------------
// ServingSnapshot: frozen queries equal the unfrozen artifact paths and the
// direct evaluation on the original graph.
// ---------------------------------------------------------------------------

TEST(ServingSnapshotTest, FreezeAnswersLikeArtifactsAndOriginal) {
  const Graph g = SmallLabeledGraph();
  const ReachCompression rc = CompressR(g);
  const PatternCompression pc = CompressB(g);

  ServingSnapshot snap;
  snap.Freeze(7, rc, pc);
  EXPECT_EQ(snap.version(), 7u);
  EXPECT_EQ(snap.original_num_nodes(), g.num_nodes());
  EXPECT_GT(snap.MemoryBytes(), 0u);

  for (const ReachQuery& q : RandomReachQueries(g.num_nodes(), 200, 5)) {
    for (const PathMode mode : {PathMode::kReflexive, PathMode::kNonEmpty}) {
      const bool direct = BfsReaches(g, q.u, q.v, mode);
      EXPECT_EQ(snap.Reach(q.u, q.v, mode), direct);
      EXPECT_EQ(snap.Reach(q.u, q.v, mode, ReachAlgorithm::kBiBfs), direct);
      EXPECT_EQ(AnswerOnCompressed(rc, q, mode, ReachAlgorithm::kBfs), direct);
    }
  }

  for (const PatternQuery& q : TestPatterns(g, 6, 23)) {
    const MatchResult direct = Match(g, q);
    const MatchResult served = snap.Match(q);
    EXPECT_EQ(served.matched, direct.matched);
    EXPECT_EQ(served.match_sets, direct.match_sets);
    EXPECT_EQ(snap.BooleanMatch(q), direct.matched);
    EXPECT_EQ(MatchOnCompressed(pc, q).match_sets, direct.match_sets);
  }
}

TEST(ServingSnapshotTest, RefreezeCarriesNoResidueAcrossVersions) {
  const Graph g1 = SmallLabeledGraph();
  Graph g2 = g1;
  g2.AddEdge(0, 5);

  ServingSnapshot snap;
  snap.Freeze(1, CompressR(g1), CompressB(g1));
  const bool before = snap.Reach(0, 5);
  snap.Freeze(2, CompressR(g2), CompressB(g2));
  EXPECT_EQ(snap.version(), 2u);
  EXPECT_TRUE(snap.Reach(0, 5));
  // And back: a refrozen buffer carries no residue of its previous version.
  snap.Freeze(3, CompressR(g1), CompressB(g1));
  EXPECT_EQ(snap.Reach(0, 5), before);
}

// ---------------------------------------------------------------------------
// SnapshotManager lifecycle.
// ---------------------------------------------------------------------------

TEST(SnapshotManagerTest, ConstructionPublishesVersionOne) {
  SnapshotManager mgr(SmallLabeledGraph());
  const auto snap = mgr.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), 1u);
  EXPECT_EQ(mgr.published_version(), 1u);
  EXPECT_EQ(mgr.pending_updates(), 0u);
}

TEST(SnapshotManagerTest, PinnedSnapshotSurvivesLaterPublishes) {
  const Graph initial = SmallLabeledGraph();
  SnapshotManager mgr(initial);
  const auto pinned = mgr.Acquire();

  // Find a pair that flips when we add an edge.
  NodeId u = 0, v = 0;
  for (NodeId cand = 1; cand < initial.num_nodes(); ++cand) {
    if (!BfsReaches(initial, 0, cand)) {
      v = cand;
      break;
    }
  }
  ASSERT_NE(v, 0u) << "graph unexpectedly reaches everything from 0";

  UpdateBatch batch;
  batch.Insert(u, v);
  const ApplyStats applied = mgr.Apply(batch);
  EXPECT_EQ(applied.effective_updates, 1u);
  EXPECT_FALSE(applied.published);  // manual policy
  EXPECT_EQ(mgr.pending_updates(), 1u);

  // Readers still see version 1 until the writer publishes.
  EXPECT_EQ(mgr.Acquire()->version(), 1u);
  EXPECT_FALSE(mgr.Acquire()->Reach(u, v, PathMode::kNonEmpty));

  const PublishStats published = mgr.Publish();
  EXPECT_EQ(published.version, 2u);
  EXPECT_EQ(published.updates_included, 1u);
  EXPECT_EQ(mgr.pending_updates(), 0u);

  // New acquires see the new truth; the old pin is immutable history.
  EXPECT_TRUE(mgr.Acquire()->Reach(u, v, PathMode::kNonEmpty));
  EXPECT_EQ(pinned->version(), 1u);
  EXPECT_FALSE(pinned->Reach(u, v, PathMode::kNonEmpty));
}

TEST(SnapshotManagerTest, RetiredBuffersAreReused) {
  SnapshotManager mgr(SmallLabeledGraph());
  // v1's buffers were freshly allocated at construction. Publishing v2
  // (full freeze, so the publish does not just share v1's untouched sides)
  // displaces v1; with no readers pinning it, its buffers return to the
  // pool immediately, so v3's freeze reuses them.
  const PublishStats v2 = mgr.Publish(FreezeMode::kFull);
  const PublishStats v3 = mgr.Publish(FreezeMode::kFull);
  EXPECT_FALSE(v2.reused_buffer);
  EXPECT_TRUE(v3.reused_buffer);

  // A pinned snapshot is not reusable until released.
  const auto pinned = mgr.Acquire();  // pins v3
  // v3 still pinned; v2's buffers free.
  const PublishStats v4 = mgr.Publish(FreezeMode::kFull);
  EXPECT_TRUE(v4.reused_buffer);
  EXPECT_EQ(pinned->version(), 3u);
}

// ---------------------------------------------------------------------------
// Per-artifact freezing: a side whose accumulated incremental stats kept no
// updates is shared from the previous snapshot instead of refrozen.
// ---------------------------------------------------------------------------

TEST(SnapshotManagerTest, PublishWithNoUpdatesSharesBothSides) {
  SnapshotManager mgr(SmallLabeledGraph());
  const auto v1 = mgr.Acquire();
  const PublishStats stats = mgr.Publish();  // nothing pending
  EXPECT_FALSE(stats.froze_reach);
  EXPECT_FALSE(stats.froze_pattern);
  const auto v2 = mgr.Acquire();
  EXPECT_EQ(v2->version(), 2u);
  // Same frozen sides, new shell.
  EXPECT_EQ(v1->reach_side().get(), v2->reach_side().get());
  EXPECT_EQ(v1->pattern_side().get(), v2->pattern_side().get());
  EXPECT_NE(v1.get(), v2.get());
}

TEST(SnapshotManagerTest, PatternOnlyRedundantUpdateSkipsPatternFreeze) {
  // u (label 0) -> w1; w1 and w2 are bisimilar sinks (label 1). Inserting
  // (u, w2) is redundant for the bisimulation quotient (u keeps child w1 in
  // w2's block: minDelta drops it) but changes reachability (u did not
  // reach w2), so a publish must refreeze the reach side only.
  Graph g(std::vector<Label>{0, 1, 1});
  g.AddEdge(0, 1);
  SnapshotManager mgr(g);
  const auto v1 = mgr.Acquire();
  EXPECT_FALSE(v1->Reach(0, 2));

  UpdateBatch batch;
  batch.Insert(0, 2);
  const ApplyStats applied = mgr.Apply(batch);
  EXPECT_EQ(applied.effective_updates, 1u);
  EXPECT_GT(applied.rcm.kept_updates, 0u);
  EXPECT_EQ(applied.pcm.kept_updates, 0u);

  const PublishStats stats = mgr.Publish();
  EXPECT_TRUE(stats.froze_reach);
  EXPECT_FALSE(stats.froze_pattern);
  const auto v2 = mgr.Acquire();
  EXPECT_EQ(v1->pattern_side().get(), v2->pattern_side().get());
  EXPECT_NE(v1->reach_side().get(), v2->reach_side().get());
  // The shared-pattern snapshot still answers exactly like the post-update
  // graph on both query classes.
  EXPECT_TRUE(v2->Reach(0, 2));
  const Graph& truth = mgr.graph();
  for (const PatternQuery& q : TestPatterns(truth, 4, 77)) {
    EXPECT_EQ(v2->Match(q).match_sets, Match(truth, q).match_sets);
  }
}

TEST(SnapshotManagerTest, ReachOnlyRedundantUpdateSkipsReachFreeze) {
  // Chain u -> x -> v with distinct labels. Inserting the shortcut (u, v)
  // changes no reachability (the Gr-closure redundancy rule drops it) but
  // adds a new successor block to u, so the publish must refreeze the
  // pattern side only.
  Graph g(std::vector<Label>{0, 1, 2});
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  SnapshotManager mgr(g);
  const auto v1 = mgr.Acquire();

  UpdateBatch batch;
  batch.Insert(0, 2);
  const ApplyStats applied = mgr.Apply(batch);
  EXPECT_EQ(applied.effective_updates, 1u);
  EXPECT_EQ(applied.rcm.kept_updates, 0u);
  EXPECT_GT(applied.pcm.kept_updates, 0u);

  const PublishStats stats = mgr.Publish();
  EXPECT_FALSE(stats.froze_reach);
  EXPECT_TRUE(stats.froze_pattern);
  const auto v2 = mgr.Acquire();
  EXPECT_EQ(v1->reach_side().get(), v2->reach_side().get());
  EXPECT_NE(v1->pattern_side().get(), v2->pattern_side().get());
  const Graph& truth = mgr.graph();
  for (NodeId u = 0; u < truth.num_nodes(); ++u) {
    for (NodeId v = 0; v < truth.num_nodes(); ++v) {
      EXPECT_EQ(v2->Reach(u, v), BfsReaches(truth, u, v));
    }
  }
}

TEST(SnapshotManagerTest, SnapshotOutlivesManager) {
  std::shared_ptr<const ServingSnapshot> snap;
  Graph g = SmallLabeledGraph();
  {
    SnapshotManager mgr(g);
    snap = mgr.Acquire();
  }
  // The manager is gone; the pinned snapshot (and its buffer pool) live on.
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), 1u);
  for (const ReachQuery& q : RandomReachQueries(g.num_nodes(), 50, 3)) {
    EXPECT_EQ(snap->Reach(q.u, q.v), BfsReaches(g, q.u, q.v));
  }
}

TEST(SnapshotManagerTest, ApplyMaintainsArtifactsExactly) {
  Graph g = GenerateUniform(120, 300, 3, 29);
  SnapshotManager mgr(g);
  Rng rng(91);
  for (int round = 0; round < 6; ++round) {
    const UpdateBatch batch =
        RandomMixed(mgr.graph(), 12, 0.6, 1000 + round);
    mgr.Apply(batch);
    mgr.Publish();
    const auto snap = mgr.Acquire();
    // The snapshot must answer exactly like direct evaluation on the
    // post-update graph (writer-side mirror).
    const Graph& truth = mgr.graph();
    for (const ReachQuery& q :
         RandomReachQueries(truth.num_nodes(), 60, 7 + round)) {
      EXPECT_EQ(snap->Reach(q.u, q.v), BfsReaches(truth, q.u, q.v));
    }
    for (const PatternQuery& q : TestPatterns(truth, 3, 50 + round)) {
      EXPECT_EQ(snap->Match(q).match_sets, Match(truth, q).match_sets);
    }
  }
}

// ---------------------------------------------------------------------------
// Publish policies.
// ---------------------------------------------------------------------------

TEST(SnapshotManagerTest, EveryNUpdatesPolicyAutoPublishes) {
  SnapshotManagerOptions options;
  options.policy = PublishPolicy::EveryNUpdates(4);
  SnapshotManager mgr(SmallLabeledGraph(), options);

  size_t applied = 0;
  uint64_t publishes = 0;
  Rng rng(5);
  while (publishes < 3) {
    const UpdateBatch batch = RandomMixed(mgr.graph(), 3, 0.5, 300 + applied);
    const ApplyStats stats = mgr.Apply(batch);
    ++applied;
    if (stats.published) {
      ++publishes;
      EXPECT_GE(stats.publish.updates_included, 4u);
      EXPECT_EQ(mgr.pending_updates(), 0u);
    } else {
      EXPECT_LT(mgr.pending_updates(), 4u);
    }
    ASSERT_LT(applied, 100u) << "policy never fired";
  }
  EXPECT_EQ(mgr.published_version(), 1u + publishes);
}

TEST(SnapshotManagerTest, StalenessBoundedPolicyPublishesWhenBehind) {
  SnapshotManagerOptions options;
  options.policy = PublishPolicy::StalenessBounded(0.0);  // always stale
  SnapshotManager mgr(SmallLabeledGraph(), options);

  // An ineffective batch leaves nothing pending: no publish.
  UpdateBatch noop;
  noop.Insert(0, 1);
  noop.Delete(0, 1);
  EXPECT_FALSE(mgr.Apply(noop).published);
  EXPECT_EQ(mgr.published_version(), 1u);

  // One effective update while stale: publish fires inside Apply.
  const UpdateBatch batch = RandomInsertions(mgr.graph(), 1, 17);
  const ApplyStats stats = mgr.Apply(batch);
  EXPECT_TRUE(stats.published);
  EXPECT_EQ(mgr.published_version(), 2u);
}

// ---------------------------------------------------------------------------
// QueryService facade.
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, RoutesAgainstCurrentSnapshot) {
  SnapshotManager mgr(SmallLabeledGraph());
  const QueryService service(mgr);

  const auto snap = service.Pin();
  EXPECT_EQ(snap->version(), 1u);
  for (const ReachQuery& q :
       RandomReachQueries(mgr.graph().num_nodes(), 40, 13)) {
    EXPECT_EQ(service.Reach(q.u, q.v), snap->Reach(q.u, q.v));
  }
  for (const PatternQuery& q : TestPatterns(mgr.graph(), 2, 99)) {
    EXPECT_EQ(service.BooleanMatch(q), snap->BooleanMatch(q));
    EXPECT_EQ(service.Match(q).match_sets, snap->Match(q).match_sets);
  }

  // After a publish, the facade follows the slot; the old pin does not.
  mgr.Apply(RandomInsertions(mgr.graph(), 2, 31));
  mgr.Publish();
  EXPECT_EQ(service.Pin()->version(), 2u);
  EXPECT_EQ(snap->version(), 1u);
}

// ---------------------------------------------------------------------------
// Multi-threaded stress: every concurrently-issued query must equal the
// recompute oracle for the snapshot version it pinned.
// ---------------------------------------------------------------------------

struct Observation {
  enum class Kind { kReach, kBooleanMatch, kMatch };
  Kind kind = Kind::kReach;
  uint64_t version = 0;
  NodeId u = 0;
  NodeId v = 0;
  size_t pattern = 0;
  bool answer = false;
  std::vector<std::vector<NodeId>> match_sets;  // kMatch only
};

TEST(ServingStressTest, ConcurrentQueriesMatchOracleForPinnedVersion) {
  constexpr size_t kReaders = 3;
  constexpr size_t kVersions = 10;
  constexpr size_t kBatchSize = 8;
  constexpr size_t kMaxObservationsPerReader = 1500;

  const Graph initial = GenerateUniform(200, 460, 4, 41);
  const std::vector<PatternQuery> patterns = TestPatterns(initial, 4, 61);

  SnapshotManager mgr(initial);
  // Writer-side history: the exact graph every published version was
  // compressed from. Written only by the writer thread, read only after
  // join (join provides the happens-before edge).
  std::unordered_map<uint64_t, Graph> version_graph;
  version_graph.emplace(1, initial);

  std::atomic<bool> done{false};
  std::vector<std::vector<Observation>> observed(kReaders);

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(7000 + r);
      auto& log = observed[r];
      const size_t n = initial.num_nodes();
      while (!done.load(std::memory_order_relaxed) &&
             log.size() < kMaxObservationsPerReader) {
        const auto snap = mgr.Acquire();
        Observation ob;
        ob.version = snap->version();
        const uint64_t dice = rng.Uniform(16);
        if (dice == 0) {
          ob.kind = Observation::Kind::kMatch;
          ob.pattern = rng.Uniform(patterns.size());
          const MatchResult m = snap->Match(patterns[ob.pattern]);
          ob.answer = m.matched;
          ob.match_sets = m.match_sets;
        } else if (dice <= 4) {
          ob.kind = Observation::Kind::kBooleanMatch;
          ob.pattern = rng.Uniform(patterns.size());
          ob.answer = snap->BooleanMatch(patterns[ob.pattern]);
        } else {
          ob.kind = Observation::Kind::kReach;
          ob.u = static_cast<NodeId>(rng.Uniform(n));
          ob.v = static_cast<NodeId>(rng.Uniform(n));
          ob.answer = snap->Reach(ob.u, ob.v);
        }
        log.push_back(std::move(ob));
      }
    });
  }

  // Single writer: apply a batch, publish, remember the version's graph.
  for (size_t round = 2; round <= kVersions; ++round) {
    const UpdateBatch batch =
        RandomMixed(mgr.graph(), kBatchSize, 0.55, 9000 + round);
    mgr.Apply(batch);
    const PublishStats stats = mgr.Publish();
    version_graph.emplace(stats.version, mgr.graph());
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  // Oracle pass: recompute every answer on the graph of the pinned version.
  std::unordered_map<uint64_t, std::vector<MatchResult>> match_oracle;
  size_t checked = 0;
  for (const auto& log : observed) {
    for (const Observation& ob : log) {
      auto it = version_graph.find(ob.version);
      ASSERT_NE(it, version_graph.end())
          << "reader observed unknown version " << ob.version;
      const Graph& truth = it->second;
      switch (ob.kind) {
        case Observation::Kind::kReach:
          ASSERT_EQ(ob.answer, BfsReaches(truth, ob.u, ob.v))
              << "version " << ob.version << " reach(" << ob.u << ", "
              << ob.v << ")";
          break;
        case Observation::Kind::kBooleanMatch:
        case Observation::Kind::kMatch: {
          auto& cached = match_oracle[ob.version];
          if (cached.empty()) {
            cached.reserve(patterns.size());
            for (const PatternQuery& p : patterns) {
              cached.push_back(Match(truth, p));
            }
          }
          const MatchResult& want = cached[ob.pattern];
          ASSERT_EQ(ob.answer, want.matched)
              << "version " << ob.version << " pattern " << ob.pattern;
          if (ob.kind == Observation::Kind::kMatch) {
            ASSERT_EQ(ob.match_sets, want.match_sets)
                << "version " << ob.version << " pattern " << ob.pattern;
          }
          break;
        }
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(ServingStressTest, VersionsAreMonotoneUnderAutoPublish) {
  constexpr size_t kReaders = 2;
  constexpr size_t kRounds = 30;

  SnapshotManagerOptions options;
  options.policy = PublishPolicy::EveryNUpdates(6);
  SnapshotManager mgr(GenerateUniform(150, 340, 3, 53), options);

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::vector<uint64_t> max_seen(kReaders, 0);
  // Per-reader flags, one byte each: vector<bool> would bit-pack the
  // readers' concurrent writes into one shared byte (a data race).
  std::vector<char> monotone(kReaders, 1);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last = 0;
      Rng rng(300 + r);
      while (!done.load(std::memory_order_relaxed)) {
        const auto snap = mgr.Acquire();
        const uint64_t version = snap->version();
        if (version < last) monotone[r] = 0;
        last = version;
        // Keep the snapshot busy so retirement overlaps publishes.
        const NodeId u =
            static_cast<NodeId>(rng.Uniform(snap->original_num_nodes()));
        const NodeId v =
            static_cast<NodeId>(rng.Uniform(snap->original_num_nodes()));
        (void)snap->Reach(u, v);
      }
      max_seen[r] = last;
    });
  }

  for (size_t round = 0; round < kRounds; ++round) {
    mgr.Apply(RandomMixed(mgr.graph(), 4, 0.5, 5000 + round));
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_GT(mgr.published_version(), 1u);
  for (size_t r = 0; r < kReaders; ++r) {
    EXPECT_TRUE(monotone[r]) << "reader " << r << " saw versions go backwards";
    EXPECT_LE(max_seen[r], mgr.published_version());
  }
}

}  // namespace
}  // namespace qpgc
