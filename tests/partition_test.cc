// Copyright 2026 The QPGC Authors.

#include "bisim/partition.h"

#include <gtest/gtest.h>

namespace qpgc {
namespace {

Partition MakePartition(std::vector<NodeId> block_of, size_t num_blocks) {
  Partition p;
  p.block_of = std::move(block_of);
  p.num_blocks = num_blocks;
  return p;
}

TEST(PartitionTest, MembersGrouping) {
  const Partition p = MakePartition({0, 1, 0, 1, 2}, 3);
  const auto m = p.Members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(m[1], (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(m[2], (std::vector<NodeId>{4}));
}

TEST(PartitionTest, NormalizeDensifies) {
  Partition p = MakePartition({5, 5, 2, 9}, 10);
  p.Normalize();
  EXPECT_EQ(p.num_blocks, 3u);
  EXPECT_EQ(p.block_of[0], p.block_of[1]);
  EXPECT_NE(p.block_of[0], p.block_of[2]);
}

TEST(PartitionTest, SamePartitionIgnoresNumbering) {
  const Partition a = MakePartition({0, 0, 1, 2}, 3);
  const Partition b = MakePartition({2, 2, 0, 1}, 3);
  EXPECT_TRUE(SamePartition(a, b));
  const Partition c = MakePartition({0, 1, 1, 2}, 3);
  EXPECT_FALSE(SamePartition(a, c));
}

TEST(PartitionTest, RefinesDetectsContainment) {
  const Partition fine = MakePartition({0, 1, 2, 3}, 4);
  const Partition coarse = MakePartition({0, 0, 1, 1}, 2);
  EXPECT_TRUE(Refines(fine, coarse));
  EXPECT_FALSE(Refines(coarse, fine));
  EXPECT_TRUE(Refines(coarse, coarse));
}

TEST(PartitionTest, StabilityCheckLabels) {
  Graph g(2);
  g.set_label(0, 1);
  g.set_label(1, 2);
  const Partition merged = MakePartition({0, 0}, 1);
  EXPECT_FALSE(IsStableBisimulationPartition(g, merged));
}

TEST(PartitionTest, StabilityCheckSuccessorBlocks) {
  // 0 -> 2, 1 -> (nothing): {0,1} unstable.
  Graph g(3);
  g.AddEdge(0, 2);
  const Partition p = MakePartition({0, 0, 1}, 2);
  EXPECT_FALSE(IsStableBisimulationPartition(g, p));
  const Partition fine = MakePartition({0, 1, 2}, 3);
  EXPECT_TRUE(IsStableBisimulationPartition(g, fine));
}

}  // namespace
}  // namespace qpgc
