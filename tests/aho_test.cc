// Copyright 2026 The QPGC Authors.

#include "reach/aho.h"

#include <gtest/gtest.h>

#include "gen/uniform.h"
#include "graph/closure.h"
#include "reach/compress_r.h"

namespace qpgc {
namespace {

TEST(AhoTest, KeepsAllNodes) {
  const Graph g = GenerateUniform(80, 300, 1, 21);
  const Graph r = AhoTransitiveReduction(g);
  EXPECT_EQ(r.num_nodes(), g.num_nodes());
  EXPECT_LE(r.num_edges(), g.num_edges());
}

TEST(AhoTest, SccBecomesSimpleCycle) {
  // Complete digraph on 4 nodes: one SCC, reduced to a 4-cycle.
  Graph g(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  const Graph r = AhoTransitiveReduction(g);
  EXPECT_EQ(r.num_edges(), 4u);
}

TEST(AhoTest, SelfLoopSingletonKept) {
  Graph g(2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  const Graph r = AhoTransitiveReduction(g);
  EXPECT_TRUE(r.HasEdge(0, 0));
  EXPECT_TRUE(r.HasEdge(0, 1));
}

class AhoClosureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AhoClosureTest, PreservesTransitiveClosure) {
  const uint64_t seed = GetParam();
  const Graph g = GenerateUniform(60, 60 + (seed * 53) % 300, 1, seed);
  const Graph r = AhoTransitiveReduction(g);
  const BitMatrix before = FullClosure(g);
  const BitMatrix after = FullClosure(r);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(before.Test(u, v), after.Test(u, v))
          << "seed=" << seed << " (" << u << "," << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AhoClosureTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(AhoTest, CompressRBeatsAhoOnMergeableGraphs) {
  // compressR merges equivalent nodes; AHO cannot. On a graph with heavy
  // sibling redundancy compressR must win (the paper's Table 1 ordering
  // RCr < RCaho).
  Graph g(22);
  for (NodeId hub : {0, 1}) {
    for (NodeId leaf = 2; leaf < 22; ++leaf) g.AddEdge(hub, leaf);
  }
  const Graph aho = AhoTransitiveReduction(g);
  const ReachCompression rc = CompressR(g);
  EXPECT_LT(rc.size(), aho.size());
}

}  // namespace
}  // namespace qpgc
