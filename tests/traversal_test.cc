// Copyright 2026 The QPGC Authors.

#include "graph/traversal.h"

#include <gtest/gtest.h>

namespace qpgc {
namespace {

// Chain 0 -> 1 -> 2 -> 3 plus a cycle 4 <-> 5.
Graph ChainAndCycle() {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(4, 5);
  g.AddEdge(5, 4);
  return g;
}

TEST(TraversalTest, BfsDistances) {
  const Graph g = ChainAndCycle();
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], kUnreachedDist);
}

TEST(TraversalTest, BackwardBfsDistances) {
  const Graph g = ChainAndCycle();
  const auto dist = BfsDistances(g, 3, Direction::kBackward);
  EXPECT_EQ(dist[3], 0u);
  EXPECT_EQ(dist[0], 3u);
  EXPECT_EQ(dist[5], kUnreachedDist);
}

TEST(TraversalTest, ReflexiveVsNonEmptySelfReach) {
  const Graph g = ChainAndCycle();
  // Node 0 is not on a cycle.
  EXPECT_TRUE(BfsReaches(g, 0, 0, PathMode::kReflexive));
  EXPECT_FALSE(BfsReaches(g, 0, 0, PathMode::kNonEmpty));
  // Node 4 is on a cycle.
  EXPECT_TRUE(BfsReaches(g, 4, 4, PathMode::kNonEmpty));
}

TEST(TraversalTest, AllThreeAlgorithmsAgree) {
  const Graph g = ChainAndCycle();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (PathMode mode : {PathMode::kReflexive, PathMode::kNonEmpty}) {
        const bool bfs = BfsReaches(g, u, v, mode);
        EXPECT_EQ(BidirectionalReaches(g, u, v, mode), bfs)
            << "BiBFS disagrees at (" << u << "," << v << ")";
        EXPECT_EQ(DfsReaches(g, u, v, mode), bfs)
            << "DFS disagrees at (" << u << "," << v << ")";
      }
    }
  }
}

TEST(TraversalTest, SelfLoopIsNonEmptySelfPath) {
  Graph g(2);
  g.AddEdge(0, 0);
  EXPECT_TRUE(BfsReaches(g, 0, 0, PathMode::kNonEmpty));
  EXPECT_FALSE(BfsReaches(g, 1, 1, PathMode::kNonEmpty));
}

TEST(TraversalTest, BoundedMultiSourceBackward) {
  // 0 -> 1 -> 2 -> 3; sources {3}: depth 1 reaches {2}, depth 2 {1, 2}.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  const NodeId sources[] = {3};
  const Bitset d1 =
      BoundedMultiSourceReach(g, sources, 1, Direction::kBackward);
  EXPECT_TRUE(d1.Test(2));
  EXPECT_FALSE(d1.Test(1));
  EXPECT_FALSE(d1.Test(3));  // non-empty paths only
  const Bitset d2 =
      BoundedMultiSourceReach(g, sources, 2, Direction::kBackward);
  EXPECT_TRUE(d2.Test(1));
  EXPECT_TRUE(d2.Test(2));
  const Bitset all =
      BoundedMultiSourceReach(g, sources, kUnboundedDepth, Direction::kBackward);
  EXPECT_TRUE(all.Test(0));
}

TEST(TraversalTest, BoundedReachSourceOnCycleMarksItself) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  const NodeId sources[] = {0};
  const Bitset b =
      BoundedMultiSourceReach(g, sources, kUnboundedDepth, Direction::kBackward);
  EXPECT_TRUE(b.Test(0));  // reaches itself around the cycle
  EXPECT_TRUE(b.Test(1));
}

TEST(TraversalTest, ZeroDepthReachesNothing) {
  Graph g(2);
  g.AddEdge(0, 1);
  const NodeId sources[] = {1};
  const Bitset b = BoundedMultiSourceReach(g, sources, 0, Direction::kBackward);
  EXPECT_TRUE(b.None());
}

TEST(TraversalTest, DescendantsAndAncestors) {
  const Graph g = ChainAndCycle();
  const Bitset desc = Descendants(g, 0);
  EXPECT_TRUE(desc.Test(1));
  EXPECT_TRUE(desc.Test(3));
  EXPECT_FALSE(desc.Test(0));
  EXPECT_FALSE(desc.Test(4));
  const Bitset anc = Ancestors(g, 3);
  EXPECT_TRUE(anc.Test(0));
  EXPECT_FALSE(anc.Test(3));
}

TEST(TraversalTest, OnCycle) {
  const Graph g = ChainAndCycle();
  EXPECT_FALSE(OnCycle(g, 0));
  EXPECT_TRUE(OnCycle(g, 4));
  EXPECT_TRUE(OnCycle(g, 5));
}

}  // namespace
}  // namespace qpgc
