// Copyright 2026 The QPGC Authors.
//
// Format stability: a golden v1 artifact is committed under tests/data/ and
// this suite pins both directions of the versioning contract —
//
//   * today's readers must keep answering the golden artifact correctly
//     (hard-coded truths about the fixture graph, both the deserialize and
//     the mmap path), and
//   * readers must hard-reject any other format_version, because silently
//     misparsing a snapshot serves wrong answers.
//
// It also pins writer determinism: loading the golden artifact and saving
// it again must be byte-identical. If a layout change breaks that, bump
// kFormatVersion (storage/format.h) and regenerate the golden:
//
//   qpgc_tool save tests/data/golden_graph.edges
//       tests/data/golden_graph.labels tests/data/golden_v<N>.snap
//
// (one command; wrapped here for line width).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pattern/pattern.h"
#include "storage/format.h"
#include "storage/mmap_snapshot.h"
#include "storage/snapshot_io.h"

namespace qpgc::storage {
namespace {

constexpr LoadOptions kVerifyAll{/*verify_checksums=*/true,
                                 /*validate_structure=*/true};

std::string GoldenPath() {
  return std::string(QPGC_TEST_DATA_DIR) + "/golden_v1.snap";
}

std::vector<std::byte> ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  return bytes;
}

// The fixture graph (tests/data/golden_graph.edges): cycle {0,1,2} -> cycle
// {3,4,5}, disjoint chain 6 -> 7 -> 8 -> 9. Labels A=0, B=1, C=2.
template <typename Reader>
void ExpectGoldenAnswers(const Reader& snap) {
  EXPECT_EQ(snap.original_num_nodes(), 10u);
  // Within and across the two cycles.
  EXPECT_TRUE(snap.Reach(0, 2));
  EXPECT_TRUE(snap.Reach(2, 1));
  EXPECT_TRUE(snap.Reach(0, 5));
  EXPECT_FALSE(snap.Reach(5, 0));
  // Along and against the chain.
  EXPECT_TRUE(snap.Reach(6, 9));
  EXPECT_FALSE(snap.Reach(9, 6));
  // Across components, and the reflexive shortcut.
  EXPECT_FALSE(snap.Reach(0, 9));
  EXPECT_FALSE(snap.Reach(6, 0));
  EXPECT_TRUE(snap.Reach(9, 9));

  // A -> B simulation edge (0 -> 1, 2 -> 3, 6 -> 7 all witness it).
  PatternQuery ab;
  const uint32_t a = ab.AddNode(0);
  const uint32_t b = ab.AddNode(1);
  ab.AddEdge(a, b, 1);
  EXPECT_TRUE(snap.BooleanMatch(ab));
  const MatchResult ab_match = snap.Match(ab);
  ASSERT_TRUE(ab_match.matched);
  EXPECT_EQ(ab_match.match_sets[a], (std::vector<NodeId>{0, 2, 6}));
  // b has no out-edges, so every B node is in the greatest fixpoint.
  EXPECT_EQ(ab_match.match_sets[b], (std::vector<NodeId>{1, 3, 7, 9}));

  // C -> A within 2 hops: no C node reaches an A node that fast.
  PatternQuery ca;
  const uint32_t c = ca.AddNode(2);
  const uint32_t a2 = ca.AddNode(0);
  ca.AddEdge(c, a2, 2);
  EXPECT_FALSE(snap.BooleanMatch(ca));

  // A label no fixture node carries.
  PatternQuery absent;
  absent.AddNode(7);
  EXPECT_FALSE(snap.BooleanMatch(absent));
}

TEST(StorageFormatTest, GoldenHeaderIdentity) {
  const std::vector<std::byte> bytes = ReadBytes(GoldenPath());
  ASSERT_GE(bytes.size(), sizeof(FileHeader));
  const auto parsed = ParseArtifact(bytes, /*verify_payload_checksums=*/true);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const FileHeader& h = parsed.value().header;
  EXPECT_EQ(std::memcmp(h.magic, kMagic, sizeof(kMagic)), 0);
  EXPECT_EQ(h.format_version, kFormatVersion);
  EXPECT_EQ(h.format_version, 1u) << "format changed: regenerate the golden "
                                     "and add a new storage_format_test pin";
  EXPECT_EQ(h.original_num_nodes, 10u);
  EXPECT_EQ(h.num_shards, 1u);
  EXPECT_EQ(h.file_bytes, bytes.size());
}

TEST(StorageFormatTest, GoldenArtifactAnswersBothReaders) {
  const auto loaded = LoadServingSnapshot(GoldenPath(), kVerifyAll);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ExpectGoldenAnswers(*loaded.value().snapshot);

  const auto mapped = MmapSnapshot::Open(GoldenPath(), kVerifyAll);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  ExpectGoldenAnswers(mapped.value());
  // And via the trusted fast path, which skips payload verification.
  const auto trusted = MmapSnapshot::Open(GoldenPath());
  ASSERT_TRUE(trusted.ok()) << trusted.status().message();
  ExpectGoldenAnswers(trusted.value());
}

TEST(StorageFormatTest, ResaveIsByteIdentical) {
  const auto loaded = LoadServingSnapshot(GoldenPath(), kVerifyAll);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const std::string resaved_path =
      ::testing::TempDir() + "qpgc_golden_resave.snap";
  const Status saved = SaveSnapshot(*loaded.value().snapshot, resaved_path);
  ASSERT_TRUE(saved.ok()) << saved.message();
  const std::vector<std::byte> golden = ReadBytes(GoldenPath());
  const std::vector<std::byte> resaved = ReadBytes(resaved_path);
  std::remove(resaved_path.c_str());
  ASSERT_EQ(resaved.size(), golden.size())
      << "writer layout drifted from the committed golden — bump "
         "kFormatVersion and regenerate (see file comment)";
  EXPECT_EQ(std::memcmp(resaved.data(), golden.data(), golden.size()), 0)
      << "writer bytes drifted from the committed golden — bump "
         "kFormatVersion and regenerate (see file comment)";
}

TEST(StorageFormatTest, ReadersRejectForeignFormatVersions) {
  std::vector<std::byte> mutant = ReadBytes(GoldenPath());
  ASSERT_GE(mutant.size(), sizeof(FileHeader));
  FileHeader h{};
  std::memcpy(&h, mutant.data(), sizeof(FileHeader));
  for (const uint32_t version : {kFormatVersion + 1, 0u, 0x7fffffffu}) {
    h.format_version = version;
    FileHeader zeroed = h;
    zeroed.header_checksum = 0;
    h.header_checksum = Fnv1a64(
        {reinterpret_cast<const std::byte*>(&zeroed), sizeof(FileHeader)});
    std::memcpy(mutant.data(), &h, sizeof(FileHeader));
    const std::string path =
        ::testing::TempDir() + "qpgc_golden_version_mutant.snap";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(mutant.data()),
              static_cast<std::streamsize>(mutant.size()));
    out.close();

    const auto loaded = LoadServingSnapshot(path, kVerifyAll);
    ASSERT_FALSE(loaded.ok()) << "version " << version;
    EXPECT_NE(loaded.status().message().find("format version"),
              std::string::npos)
        << loaded.status().message();
    // The version gate is part of the always-on checks: the trusted mmap
    // fast path must reject too.
    const auto mapped = MmapSnapshot::Open(path);
    ASSERT_FALSE(mapped.ok()) << "version " << version;
    EXPECT_NE(mapped.status().message().find("format version"),
              std::string::npos)
        << mapped.status().message();
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace qpgc::storage
