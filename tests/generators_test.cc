// Copyright 2026 The QPGC Authors.

#include <gtest/gtest.h>

#include "gen/adversarial.h"
#include "gen/dataset_catalog.h"
#include "gen/evolution.h"
#include "gen/random_models.h"
#include "gen/uniform.h"
#include "graph/scc.h"
#include "graph/stats.h"

namespace qpgc {
namespace {

TEST(GeneratorsTest, UniformSizesAndDeterminism) {
  const Graph a = GenerateUniform(200, 600, 5, 3);
  EXPECT_EQ(a.num_nodes(), 200u);
  EXPECT_NEAR(static_cast<double>(a.num_edges()), 600.0, 30.0);
  EXPECT_LE(a.CountDistinctLabels(), 5u);
  const Graph b = GenerateUniform(200, 600, 5, 3);
  EXPECT_EQ(a, b);
  const Graph c = GenerateUniform(200, 600, 5, 4);
  EXPECT_FALSE(a == c);
}

TEST(GeneratorsTest, UniformHasNoSelfLoops) {
  const Graph g = GenerateUniform(100, 400, 2, 9);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_FALSE(g.HasEdge(v, v));
}

TEST(GeneratorsTest, ZipfLabelsHeavyTailed) {
  Graph g(10000);
  AssignZipfLabels(g, 20, 1.0, 11);
  std::vector<size_t> counts(20, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++counts[g.label(v)];
  EXPECT_GT(counts[0], counts[10]);
}

TEST(GeneratorsTest, PreferentialAttachmentReciprocityCreatesScc) {
  const Graph g = PreferentialAttachment(2000, 3, 0.6, 13);
  const GraphStats s = ComputeStats(g);
  // Reciprocity should produce a substantial cyclic core.
  EXPECT_GT(s.cyclic_node_fraction, 0.3) << FormatStats(s);
  // Heavy-tailed in-degree: hubs exist.
  EXPECT_GT(s.max_in_degree, 30u);
}

TEST(GeneratorsTest, NoReciprocityMeansFewCycles) {
  const Graph g = PreferentialAttachment(2000, 3, 0.0, 13);
  const SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, g.num_nodes());  // strictly acyclic (DAG)
}

TEST(GeneratorsTest, CitationDagIsAcyclic) {
  const Graph g = CitationDag(1500, 5, 0.5, 17);
  const SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, g.num_nodes());
}

TEST(GeneratorsTest, CopyingModelProducesSharedNeighborhoods) {
  const Graph g = CopyingModel(2000, 5, 0.7, 19);
  const GraphStats s = ComputeStats(g);
  EXPECT_GT(s.max_in_degree, 20u);  // authorities emerge
}

TEST(GeneratorsTest, LayeredRandomCoreAndPendants) {
  const Graph g = LayeredRandom(1000, 8, 3, 0.1, 23);
  EXPECT_EQ(g.num_nodes(), 1000u);
  EXPECT_GT(g.num_edges(), 1000u);
  // Pendant fringe: a solid share of sink-only leaf peers.
  size_t sinks = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) sinks += g.OutDegree(v) == 0;
  EXPECT_GT(sinks, 300u);
}

TEST(GeneratorsTest, CitationMutualCitesCreateCycles) {
  const Graph acyclic = CitationDag(800, 5, 0.5, 31, 0.0);
  EXPECT_EQ(ComputeScc(acyclic).num_components, acyclic.num_nodes());
  const Graph cyclic = CitationDag(800, 5, 0.5, 31, 0.3);
  EXPECT_LT(ComputeScc(cyclic).num_components, cyclic.num_nodes());
}

TEST(GeneratorsTest, InternetTopologyHasTransitCoreAndStubFringe) {
  const Graph g = InternetTopology(1000, 0.25, 29);
  const GraphStats s = ComputeStats(g);
  // Route back-export + peering build a sizable transit SCC, but stub ASes
  // stay outside it (directed customer->provider edges only).
  EXPECT_GT(s.largest_scc, 200u) << FormatStats(s);
  EXPECT_LT(s.largest_scc, 950u) << FormatStats(s);
}

TEST(AdversarialTest, ShapesAndDeterminism) {
  const Graph chain = LongChain(500, 3);
  EXPECT_EQ(chain.num_nodes(), 500u);
  EXPECT_EQ(chain.num_edges(), 499u);
  EXPECT_EQ(chain.CountDistinctLabels(), 3u);

  const Graph dag = LayeredDag(20, 8, 3, 5);
  EXPECT_EQ(dag.num_nodes(), 160u);
  EXPECT_EQ(dag.num_edges(), 19u * 8u * 3u);
  EXPECT_EQ(ComputeScc(dag).num_components, dag.num_nodes());  // acyclic
  EXPECT_TRUE(dag == LayeredDag(20, 8, 3, 5));
  EXPECT_FALSE(dag == LayeredDag(20, 8, 3, 6));

  const Graph broom = Broom(10, 30);
  EXPECT_EQ(broom.num_nodes(), 40u);
  EXPECT_EQ(broom.num_edges(), 9u + 30u);
  EXPECT_EQ(broom.OutDegree(9), 30u);  // the head fans out

  const Graph grid = DirectedGrid(4, 6);
  EXPECT_EQ(grid.num_nodes(), 24u);
  EXPECT_EQ(grid.num_edges(), 3u * 6u + 4u * 5u);

  const Graph tree = CompleteBinaryTree(5);
  EXPECT_EQ(tree.num_nodes(), 31u);
  EXPECT_EQ(tree.num_edges(), 30u);
}

TEST(CatalogTest, AllDatasetsInstantiable) {
  for (const auto& spec : ReachabilityDatasets()) {
    const Graph g = MakeDataset(spec);
    EXPECT_EQ(g.num_nodes(), spec.num_nodes) << spec.name;
    EXPECT_GT(g.num_edges(), 0u) << spec.name;
  }
  for (const auto& spec : PatternDatasets()) {
    const Graph g = MakeDataset(spec);
    EXPECT_EQ(g.num_nodes(), spec.num_nodes) << spec.name;
    EXPECT_LE(g.CountDistinctLabels(), spec.num_labels) << spec.name;
  }
}

TEST(CatalogTest, FindByName) {
  const DatasetSpec& p2p = FindDataset("P2P");
  EXPECT_EQ(p2p.family, DatasetFamily::kP2P);
}

TEST(EvolutionTest, DensifiedSeriesGrows) {
  const Graph g0 = DensifiedGraph(500, 1.1, 1.2, 10, 0, 31);
  const Graph g2 = DensifiedGraph(500, 1.1, 1.2, 10, 2, 31);
  EXPECT_GT(g2.num_nodes(), g0.num_nodes());
  const double d0 = static_cast<double>(g0.num_edges()) / g0.num_nodes();
  const double d2 = static_cast<double>(g2.num_edges()) / g2.num_nodes();
  EXPECT_GT(d2, d0);  // densification: edges grow superlinearly
}

TEST(EvolutionTest, PowerLawGrowthAddsEdges) {
  Graph g = PreferentialAttachment(500, 3, 0.3, 37);
  const size_t before = g.num_edges();
  const UpdateBatch batch = PowerLawGrowthStep(g, 0.05, 0.8, 41);
  EXPECT_EQ(g.num_edges(), before + batch.size());
  EXPECT_NEAR(static_cast<double>(batch.size()),
              static_cast<double>(before) * 0.05, before * 0.01 + 2.0);
  for (const auto& up : batch.updates) EXPECT_TRUE(up.is_insert);
}

}  // namespace
}  // namespace qpgc
