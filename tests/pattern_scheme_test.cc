// Copyright 2026 The QPGC Authors.

#include "core/pattern_scheme.h"

#include <gtest/gtest.h>

#include "bisim/signature_bisim.h"
#include "gen/uniform.h"
#include "pattern/pattern_gen.h"

namespace qpgc {
namespace {

TEST(CompressBTest, QuotientKeepsLabels) {
  Graph g(std::vector<Label>{1, 2, 2});
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  const PatternCompression pc = CompressB(g);
  EXPECT_EQ(pc.gr.num_nodes(), 2u);
  const NodeId root_block = pc.node_map[0];
  const NodeId leaf_block = pc.node_map[1];
  EXPECT_EQ(pc.gr.label(root_block), 1u);
  EXPECT_EQ(pc.gr.label(leaf_block), 2u);
  EXPECT_TRUE(pc.gr.HasEdge(root_block, leaf_block));
}

TEST(CompressBTest, SizeNeverGrows) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = GenerateUniform(100, 350, 4, seed);
    const PatternCompression pc = CompressB(g);
    EXPECT_LE(pc.size(), g.size());
    EXPECT_LE(pc.CompressionRatio(), 1.0);
  }
}

TEST(CompressBTest, MembersAndNodeMapConsistent) {
  const Graph g = GenerateUniform(120, 400, 3, 7);
  const PatternCompression pc = CompressB(g);
  size_t total = 0;
  for (NodeId c = 0; c < pc.gr.num_nodes(); ++c) {
    total += pc.members[c].size();
    for (NodeId v : pc.members[c]) {
      EXPECT_EQ(pc.node_map[v], c);
      EXPECT_EQ(g.label(v), pc.gr.label(c));  // label-uniform blocks
    }
  }
  EXPECT_EQ(total, g.num_nodes());
}

TEST(CompressBTest, QuotientIsStable) {
  // Every member of block B must have a successor in each successor block
  // of B — the stability property everything else relies on.
  const Graph g = GenerateUniform(100, 300, 3, 9);
  const PatternCompression pc = CompressB(g);
  for (NodeId b = 0; b < pc.gr.num_nodes(); ++b) {
    for (NodeId d : pc.gr.OutNeighbors(b)) {
      for (NodeId v : pc.members[b]) {
        bool has_child_in_d = false;
        for (NodeId w : g.OutNeighbors(v)) {
          if (pc.node_map[w] == d) {
            has_child_in_d = true;
            break;
          }
        }
        EXPECT_TRUE(has_child_in_d)
            << "block " << b << " member " << v << " lacks a child in " << d;
      }
    }
  }
}

TEST(CompressBTest, EveryEngineGivesSameCompression) {
  const Graph g = GenerateUniform(90, 280, 3, 11);
  CompressBOptions pt, ranked, sig;
  pt.engine = BisimEngine::kPaigeTarjan;
  ranked.engine = BisimEngine::kRanked;
  sig.engine = BisimEngine::kSignature;
  const PatternCompression a = CompressB(g, pt);
  const PatternCompression b = CompressB(g, ranked);
  const PatternCompression c = CompressB(g, sig);
  EXPECT_EQ(a.gr.num_nodes(), c.gr.num_nodes());
  EXPECT_EQ(a.gr.num_edges(), c.gr.num_edges());
  EXPECT_EQ(b.gr.num_nodes(), c.gr.num_nodes());
  EXPECT_EQ(b.gr.num_edges(), c.gr.num_edges());
}

TEST(ExpandMatchTest, ReplacesBlocksByMembers) {
  Graph g(std::vector<Label>{1, 2, 2});
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  const PatternCompression pc = CompressB(g);
  PatternQuery q;
  const uint32_t a = q.AddNode(1);
  const uint32_t b = q.AddNode(2);
  q.AddEdge(a, b, 1);
  const MatchResult on_gr = Match(pc.gr, q);
  const MatchResult expanded = ExpandMatch(pc, on_gr);
  ASSERT_TRUE(expanded.matched);
  EXPECT_EQ(expanded.match_sets[a], (std::vector<NodeId>{0}));
  EXPECT_EQ(expanded.match_sets[b], (std::vector<NodeId>{1, 2}));
}

TEST(ExpandMatchTest, EmptyAnswerStaysEmpty) {
  Graph g(std::vector<Label>{1});
  const PatternCompression pc = CompressB(g);
  PatternQuery q;
  q.AddNode(99);
  const MatchResult m = MatchOnCompressed(pc, q);
  EXPECT_FALSE(m.matched);
  EXPECT_TRUE(m.match_sets[0].empty());
}

TEST(BooleanMatchTest, NoPostProcessingNeeded) {
  const Graph g = GenerateUniform(80, 250, 3, 13);
  const PatternCompression pc = CompressB(g);
  const std::vector<Label> labels = DistinctLabels(g);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    PatternGenOptions options;
    options.num_nodes = 3;
    options.num_edges = 3;
    const PatternQuery q = RandomPattern(labels, options, seed);
    EXPECT_EQ(BooleanMatchOnCompressed(pc, q), BooleanMatch(g, q))
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace qpgc
