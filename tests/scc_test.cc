// Copyright 2026 The QPGC Authors.

#include "graph/scc.h"

#include <gtest/gtest.h>

#include "graph/condensation.h"

namespace qpgc {
namespace {

TEST(SccTest, Singletons) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const SccResult r = ComputeScc(g);
  EXPECT_EQ(r.num_components, 3u);
  for (size_t c = 0; c < 3; ++c) EXPECT_FALSE(r.cyclic[c]);
}

TEST(SccTest, OneBigCycle) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  const SccResult r = ComputeScc(g);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_TRUE(r.cyclic[0]);
  EXPECT_EQ(r.members[0].size(), 4u);
}

TEST(SccTest, SelfLoopIsCyclic) {
  Graph g(2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  const SccResult r = ComputeScc(g);
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_TRUE(r.cyclic[r.component[0]]);
  EXPECT_FALSE(r.cyclic[r.component[1]]);
}

TEST(SccTest, ReverseTopologicalIds) {
  // Two SCCs A = {0,1}, B = {2,3}, edge A -> B: id(A) > id(B).
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);
  g.AddEdge(1, 2);
  const SccResult r = ComputeScc(g);
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_GT(r.component[0], r.component[2]);
}

TEST(SccTest, MembersPartitionNodes) {
  Graph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(2, 3);
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(6, 4);
  const SccResult r = ComputeScc(g);
  size_t total = 0;
  for (const auto& m : r.members) total += m.size();
  EXPECT_EQ(total, 7u);
  for (NodeId v = 0; v < 7; ++v) {
    const auto& m = r.members[r.component[v]];
    EXPECT_NE(std::find(m.begin(), m.end(), v), m.end());
  }
}

TEST(SccTest, DeepChainNoStackOverflow) {
  // 200k-node chain would blow a recursive Tarjan; iterative must survive.
  const size_t n = 200000;
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
  const SccResult r = ComputeScc(g);
  EXPECT_EQ(r.num_components, n);
}

TEST(CondensationTest, DagAndMapping) {
  // Cycle {0,1} -> 2 -> cycle {3,4}.
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 3);
  const Condensation cond = BuildCondensation(g);
  EXPECT_EQ(cond.dag.num_nodes(), 3u);
  EXPECT_EQ(cond.dag.num_edges(), 2u);
  // No self-loops in the condensation.
  for (NodeId c = 0; c < cond.dag.num_nodes(); ++c) {
    EXPECT_FALSE(cond.dag.HasEdge(c, c));
  }
  const NodeId c01 = cond.scc.component[0];
  const NodeId c2 = cond.scc.component[2];
  const NodeId c34 = cond.scc.component[3];
  EXPECT_TRUE(cond.dag.HasEdge(c01, c2));
  EXPECT_TRUE(cond.dag.HasEdge(c2, c34));
  EXPECT_TRUE(cond.scc.cyclic[c01]);
  EXPECT_FALSE(cond.scc.cyclic[c2]);
  EXPECT_TRUE(cond.scc.cyclic[c34]);
}

TEST(CondensationTest, ParallelMemberEdgesDeduplicated) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // SCC {0,1}
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);  // two member edges into node 2
  g.AddEdge(2, 3);
  const Condensation cond = BuildCondensation(g);
  EXPECT_EQ(cond.dag.num_nodes(), 3u);
  EXPECT_EQ(cond.dag.num_edges(), 2u);  // deduplicated
}

}  // namespace
}  // namespace qpgc
