// Copyright 2026 The QPGC Authors.

#include "pattern/match.h"

#include <gtest/gtest.h>

#include "gen/uniform.h"
#include "graph/traversal.h"

namespace qpgc {
namespace {

// Brute-force maximum match for cross-checking: iterate the pruning
// operator on full candidate sets without worklists.
MatchResult BruteForceMatch(const Graph& g, const PatternQuery& q) {
  // S(u) = label candidates.
  std::vector<std::vector<uint8_t>> in_set(q.num_nodes(),
                                           std::vector<uint8_t>(g.num_nodes()));
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      in_set[u][v] = (g.label(v) == q.label(u));
    }
  }
  // Distances for bounded checks, recomputed naively.
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t u = 0; u < q.num_nodes(); ++u) {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!in_set[u][v]) continue;
        for (uint32_t eid : q.out_edges(u)) {
          const PatternEdge& e = q.edge(eid);
          // Is there a non-empty path of length <= bound from v to some
          // member of S(e.to)?  BFS from v.
          bool ok = false;
          std::vector<uint32_t> dist(g.num_nodes(), kUnreachedDist);
          std::vector<NodeId> queue{v};
          dist[v] = 0;
          for (size_t i = 0; i < queue.size() && !ok; ++i) {
            const NodeId x = queue[i];
            if (dist[x] >= e.bound) continue;
            for (NodeId w : g.OutNeighbors(x)) {
              const uint32_t dw = dist[x] + 1;
              if (in_set[e.to][w]) {
                ok = true;
                break;
              }
              if (dist[w] == kUnreachedDist) {
                dist[w] = dw;
                queue.push_back(w);
              }
            }
          }
          if (!ok) {
            in_set[u][v] = 0;
            changed = true;
            break;
          }
        }
      }
    }
  }
  MatchResult r;
  r.fixpoint_sets.resize(q.num_nodes());
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (in_set[u][v]) r.fixpoint_sets[u].push_back(v);
    }
  }
  r.matched = true;
  for (const auto& s : r.fixpoint_sets) {
    if (s.empty()) r.matched = false;
  }
  r.match_sets = r.matched ? r.fixpoint_sets
                           : std::vector<std::vector<NodeId>>(q.num_nodes());
  return r;
}

TEST(MatchTest, SingleEdgeBoundOne) {
  // Data: 0(A) -> 1(B); 2(A) with no B child.
  Graph g(std::vector<Label>{0, 1, 0});
  g.AddEdge(0, 1);
  PatternQuery q;
  const uint32_t a = q.AddNode(0);
  const uint32_t b = q.AddNode(1);
  q.AddEdge(a, b, 1);
  const MatchResult m = Match(g, q);
  ASSERT_TRUE(m.matched);
  EXPECT_EQ(m.match_sets[a], (std::vector<NodeId>{0}));
  EXPECT_EQ(m.match_sets[b], (std::vector<NodeId>{1}));
}

TEST(MatchTest, BoundTwoAllowsTwoHops) {
  // 0(A) -> 1(C) -> 2(B): A-to-B within 2 hops but not 1.
  Graph g(std::vector<Label>{0, 2, 1});
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  PatternQuery q1, q2;
  const uint32_t a1 = q1.AddNode(0);
  const uint32_t b1 = q1.AddNode(1);
  q1.AddEdge(a1, b1, 1);
  EXPECT_FALSE(Match(g, q1).matched);
  const uint32_t a2 = q2.AddNode(0);
  const uint32_t b2 = q2.AddNode(1);
  q2.AddEdge(a2, b2, 2);
  EXPECT_TRUE(Match(g, q2).matched);
}

TEST(MatchTest, StarBoundIsUnbounded) {
  // Long chain A -> x -> x -> ... -> B.
  const size_t n = 50;
  Graph g(n);
  g.set_label(0, 7);
  for (NodeId v = 1; v + 1 < n; ++v) g.set_label(v, 9);
  g.set_label(n - 1, 8);
  for (NodeId v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
  PatternQuery q;
  const uint32_t a = q.AddNode(7);
  const uint32_t b = q.AddNode(8);
  q.AddEdge(a, b, kStarBound);
  EXPECT_TRUE(Match(g, q).matched);
}

TEST(MatchTest, CyclicPatternOnCyclicData) {
  // Pattern A -> B -> A (cycle); data has a 2-cycle with labels A, B.
  Graph g(std::vector<Label>{0, 1});
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  PatternQuery q;
  const uint32_t a = q.AddNode(0);
  const uint32_t b = q.AddNode(1);
  q.AddEdge(a, b, 1);
  q.AddEdge(b, a, 1);
  const MatchResult m = Match(g, q);
  ASSERT_TRUE(m.matched);
  EXPECT_EQ(m.match_sets[a], (std::vector<NodeId>{0}));
  EXPECT_EQ(m.match_sets[b], (std::vector<NodeId>{1}));
}

TEST(MatchTest, CyclicPatternPrunesAcyclicData) {
  // Same pattern, but data edge B -> A missing: no match.
  Graph g(std::vector<Label>{0, 1});
  g.AddEdge(0, 1);
  PatternQuery q;
  const uint32_t a = q.AddNode(0);
  const uint32_t b = q.AddNode(1);
  q.AddEdge(a, b, 1);
  q.AddEdge(b, a, 1);
  const MatchResult m = Match(g, q);
  EXPECT_FALSE(m.matched);
  EXPECT_TRUE(m.match_sets[a].empty());
}

TEST(MatchTest, SelfLoopSatisfiesCyclicPattern) {
  Graph g(std::vector<Label>{0});
  g.AddEdge(0, 0);
  PatternQuery q;
  const uint32_t a = q.AddNode(0);
  q.AddEdge(a, a, 1);
  EXPECT_TRUE(Match(g, q).matched);
}

TEST(MatchTest, NonEmptyPathRequired) {
  // Pattern edge A -> A with bound 1 requires a real self-edge, not the
  // trivial empty path.
  Graph g(std::vector<Label>{0});
  PatternQuery q;
  const uint32_t a = q.AddNode(0);
  q.AddEdge(a, a, 1);
  EXPECT_FALSE(Match(g, q).matched);
}

TEST(MatchTest, MissingLabelMeansNoMatch) {
  Graph g(std::vector<Label>{0, 0});
  g.AddEdge(0, 1);
  PatternQuery q;
  q.AddNode(42);
  EXPECT_FALSE(Match(g, q).matched);
}

TEST(MatchTest, ResultSetsSorted) {
  const Graph g = GenerateUniform(60, 200, 3, 41);
  PatternQuery q;
  const uint32_t a = q.AddNode(0);
  const uint32_t b = q.AddNode(1);
  q.AddEdge(a, b, 2);
  const MatchResult m = Match(g, q);
  for (const auto& s : m.match_sets) {
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  }
}

class MatchAgainstBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchAgainstBruteForce, FixpointsAgree) {
  const uint64_t seed = GetParam();
  const Graph g = GenerateUniform(40, 140, 3, seed);
  PatternQuery q;
  const uint32_t a = q.AddNode(0);
  const uint32_t b = q.AddNode(1);
  const uint32_t c = q.AddNode(2);
  q.AddEdge(a, b, 1 + seed % 3);
  q.AddEdge(b, c, seed % 2 == 0 ? kStarBound : 2);
  q.AddEdge(a, c, 2);
  const MatchResult fast = Match(g, q);
  const MatchResult slow = BruteForceMatch(g, q);
  EXPECT_EQ(fast.matched, slow.matched) << "seed=" << seed;
  EXPECT_EQ(fast.fixpoint_sets, slow.fixpoint_sets) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchAgainstBruteForce,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace qpgc
