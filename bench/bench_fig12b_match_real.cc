// Copyright 2026 The QPGC Authors.
//
// Fig. 12(b): bounded-simulation pattern matching time on Youtube and
// Citation vs their compressed counterparts, as pattern size grows from
// (3,3,3) to (8,8,3) — (|Vp|, |Ep|, k).

#include <cstdio>

#include "bench_util.h"
#include "core/pattern_scheme.h"
#include "gen/dataset_catalog.h"
#include "pattern/match.h"
#include "pattern/pattern_gen.h"

using namespace qpgc;

namespace {

void RunDataset(const char* name) {
  const Graph g = MakeDataset(FindPatternDataset(name));
  const PatternCompression pc = CompressB(g);
  const std::vector<Label> labels = DistinctLabels(g);
  std::printf("%s (|G| = %zu, |Gr| = %zu, PCr = %s)\n", name, g.size(),
              pc.size(), bench::Pct(pc.CompressionRatio()).c_str());
  std::printf("  %-10s | %12s %12s | %8s\n", "(Vp,Ep,k)", "Match(G)",
              "Match(Gr)+P", "cut");
  for (uint32_t size = 3; size <= 8; ++size) {
    PatternGenOptions options;
    options.num_nodes = size;
    options.num_edges = size;
    options.max_bound = 3;
    double t_g = 0.0, t_gr = 0.0;
    const int kQueries = 4;
    for (int i = 0; i < kQueries; ++i) {
      const PatternQuery q = RandomPattern(labels, options, size * 17 + i);
      t_g += bench::TimeOnce([&] { Match(g, q); });
      t_gr += bench::TimeOnce([&] { MatchOnCompressed(pc, q); });
    }
    std::printf("  (%u,%u,3)    | %12s %12s | %8s\n", size, size,
                bench::Secs(t_g / kQueries).c_str(),
                bench::Secs(t_gr / kQueries).c_str(),
                bench::Pct(1.0 - t_gr / t_g).c_str());
    const std::string prefix = std::string(name) + "." + std::to_string(size);
    bench::Metric("match_g_secs." + prefix, t_g / kQueries);
    bench::Metric("match_gr_secs." + prefix, t_gr / kQueries);
  }
  bench::Metric(std::string("pcr.") + name, pc.CompressionRatio());
}

}  // namespace

int main() {
  bench::Banner("Fig. 12(b) — pattern queries on real-life graphs",
                "Fan et al., SIGMOD 2012, Fig. 12(b); paper: Match on Gr "
                "~30% of Match on G");
  RunDataset("Youtube");
  std::printf("\n");
  RunDataset("Citation");
  bench::Rule();
  std::printf("expected shape: Match on the compressed graph is a fraction "
              "of Match on G,\nand less sensitive to pattern size.\n");
  return 0;
}
