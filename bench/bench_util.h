// Copyright 2026 The QPGC Authors.
//
// Shared helpers for the experiment harnesses: fixed-width table printing,
// timing, and the paper-vs-measured reporting conventions used by every
// bench binary. Each binary reproduces one table or figure of the paper and
// prints the same rows/series, with the paper's published value alongside
// where one exists (absolute numbers are not expected to match — the
// datasets are scaled stand-ins — but the shape should).

#ifndef QPGC_BENCH_BENCH_UTIL_H_
#define QPGC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "util/timer.h"

namespace qpgc::bench {

/// Prints a banner naming the experiment and its paper anchor.
void Banner(const std::string& experiment, const std::string& paper_ref);

/// Prints a separator line.
void Rule();

/// Times one invocation of fn, in seconds.
double TimeOnce(const std::function<void()>& fn);

/// Times fn over `reps` repetitions and returns average seconds.
double TimeAvg(const std::function<void()>& fn, int reps);

/// Formats a ratio as a percentage string like "5.97%".
std::string Pct(double ratio);

/// Formats seconds adaptively (s / ms / us).
std::string Secs(double seconds);

/// Records a named scalar result on stdout as "[metric] key=value".
/// run_benches collects these lines into the per-bench BENCH_*.json, so a
/// Metric call is what turns a printed number into a tracked one. Keys use
/// dots for hierarchy, e.g. "rcr.socEpinions" or "bfs_gr_secs.P2P".
void Metric(const std::string& key, double value);

}  // namespace qpgc::bench

#endif  // QPGC_BENCH_BENCH_UTIL_H_
