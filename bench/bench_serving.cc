// Copyright 2026 The QPGC Authors.
//
// Serving-layer benchmark (no paper figure — this measures the subsystem
// the paper leaves implicit: queries served *while* updates land).
//
// Three experiments against serve/SnapshotManager:
//  1. Swap latency vs graph size — the publish swap is one atomic pointer
//     store, so it must stay flat as |G| grows (the freeze pays the O(|Gr|)
//     cost, off the read path).
//  2. Publish amortization — total publish cost per effective update for
//     every-N policies of increasing N.
//  3. Query throughput under a live update stream — reader threads issuing
//     reach / boolean-match queries against pinned snapshots while one
//     writer applies batches through IncRCM/IncPCM and auto-publishes.
//
// Throughput metrics end in `_qps` and are higher-is-better;
// tools/bench_diff.py treats them as gains when they rise (and, like all
// wall-clock-derived numbers, never gates on them in CI).
//
// Env: QPGC_BENCH_SERVE_SECS overrides the throughput window (default 0.5).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "gen/adversarial.h"
#include "gen/random_models.h"
#include "gen/uniform.h"
#include "gen/update_gen.h"
#include "serve/answer_cache.h"
#include "serve/load_gen.h"
#include "serve/query_service.h"
#include "serve/snapshot_manager.h"
#include "util/timer.h"

using namespace qpgc;

namespace {

Graph LabeledSocialGraph(size_t num_nodes, uint64_t seed) {
  Graph g = PreferentialAttachment(num_nodes, 4, 0.45, seed);
  AssignZipfLabels(g, 4, 1.1, seed + 1);
  return g;
}

double ServeSeconds() {
  if (const char* env = std::getenv("QPGC_BENCH_SERVE_SECS")) {
    const double secs = std::atof(env);
    if (secs > 0) return secs;
  }
  return 0.5;
}

void SwapLatencyExperiment() {
  std::printf("swap latency vs |G| (freeze off the read path, swap O(1)):\n");
  std::printf("%-10s %12s %12s %12s %14s\n", "|V|", "|G|", "freeze",
              "swap", "snapshot mem");
  bench::Rule();
  constexpr int kPublishes = 20;
  double first_swap = 0.0, last_swap = 0.0;
  double first_freeze = 0.0, last_freeze = 0.0;
  for (const size_t n : {5000u, 20000u, 80000u}) {
    const Graph g = LabeledSocialGraph(n, 7);
    SnapshotManager mgr(g);
    double freeze_total = 0.0, swap_total = 0.0;
    for (int i = 0; i < kPublishes; ++i) {
      // kFull: with nothing pending, an auto publish would just share both
      // sides — this experiment measures the full freeze.
      const PublishStats stats = mgr.Publish(FreezeMode::kFull);
      freeze_total += stats.freeze_secs;
      swap_total += stats.swap_secs;
    }
    const double freeze_avg = freeze_total / kPublishes;
    const double swap_avg = swap_total / kPublishes;
    if (n == 5000u) {
      first_swap = swap_avg;
      first_freeze = freeze_avg;
    }
    last_swap = swap_avg;
    last_freeze = freeze_avg;
    const size_t bytes = mgr.Acquire()->MemoryBytes();
    std::printf("%-10zu %12zu %12s %12s %12zu B\n", g.num_nodes(), g.size(),
                bench::Secs(freeze_avg).c_str(), bench::Secs(swap_avg).c_str(),
                bytes);
    const std::string suffix = ".n" + std::to_string(n);
    bench::Metric("freeze_secs" + suffix, freeze_avg);
    bench::Metric("swap_secs" + suffix, swap_avg);
  }
  bench::Rule();
  std::printf("80000 vs 5000 nodes (16x |V|): freeze grew %.1fx, swap %.1fx "
              "— the swap never touches\ngraph data (sub-us either way; the "
              "freeze carries all size-dependent cost).\n\n",
              first_freeze > 0 ? last_freeze / first_freeze : 0.0,
              first_swap > 0 ? last_swap / first_swap : 0.0);
}

void AmortizationExperiment() {
  std::printf("publish amortization (every-N policy, 2048-update stream, "
              "batches of 32):\n");
  std::printf("%-8s %10s %14s %16s\n", "N", "publishes", "publish total",
              "per kept update");
  bench::Rule();
  const Graph base = LabeledSocialGraph(20000, 11);
  for (const size_t every_n : {64u, 256u, 1024u}) {
    SnapshotManagerOptions options;
    options.policy = PublishPolicy::EveryNUpdates(every_n);
    SnapshotManager mgr(base, options);
    size_t publishes = 0, kept = 0;
    double publish_total = 0.0;
    for (int round = 0; round < 64; ++round) {
      const UpdateBatch batch =
          RandomMixed(mgr.graph(), 32, 0.55, 500 + round);
      const ApplyStats stats = mgr.Apply(batch);
      kept += stats.rcm.kept_updates + stats.rcm.reduced_updates;
      if (stats.published) {
        ++publishes;
        publish_total += stats.publish.freeze_secs + stats.publish.swap_secs;
      }
    }
    const double per_update = kept == 0 ? 0.0 : publish_total / kept;
    std::printf("%-8zu %10zu %14s %16s\n", every_n, publishes,
                bench::Secs(publish_total).c_str(),
                bench::Secs(per_update).c_str());
    const std::string suffix = ".N" + std::to_string(every_n);
    // Publish count is deterministic (seeded stream, no wall clock in the
    // policy); the costs are timing.
    bench::Metric("publishes" + suffix, static_cast<double>(publishes));
    bench::Metric("publish_total_secs" + suffix, publish_total);
    bench::Metric("publish_per_update_secs" + suffix, per_update);
  }
  bench::Rule();
  std::printf("\n");
}

void ThroughputExperiment() {
  const double window_secs = ServeSeconds();
  std::printf("query throughput under a live update stream "
              "(%.2fs window, 2 readers + 1 writer):\n", window_secs);

  const Graph base = LabeledSocialGraph(20000, 13);
  const std::vector<PatternQuery> patterns = ServeLoadPatterns(base, 4, 70);
  SnapshotManagerOptions options;
  options.policy = PublishPolicy::EveryNUpdates(64);
  SnapshotManager mgr(base, options);
  const QueryService service(mgr);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reach_queries{0};
  std::atomic<uint64_t> match_queries{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      const ReaderLoadCounters counters =
          RunReaderLoad(service, patterns, 40 + r, done);
      reach_queries.fetch_add(counters.reach_queries,
                              std::memory_order_relaxed);
      match_queries.fetch_add(counters.match_queries,
                              std::memory_order_relaxed);
    });
  }

  size_t versions = 0, updates = 0;
  Timer window;
  while (window.ElapsedSeconds() < window_secs) {
    const UpdateBatch batch =
        RandomMixed(mgr.graph(), 16, 0.55, 900 + updates);
    const ApplyStats stats = mgr.Apply(batch);
    updates += stats.effective_updates;
    if (stats.published) ++versions;
  }
  const double elapsed = window.ElapsedSeconds();
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  const double reach_qps =
      static_cast<double>(reach_queries.load()) / elapsed;
  const double match_qps =
      static_cast<double>(match_queries.load()) / elapsed;
  const double update_rate = static_cast<double>(updates) / elapsed;
  std::printf("  reach queries: %llu (%.0f/s), boolean matches: %llu "
              "(%.0f/s)\n",
              static_cast<unsigned long long>(reach_queries.load()), reach_qps,
              static_cast<unsigned long long>(match_queries.load()),
              match_qps);
  std::printf("  updates applied: %zu (%.0f/s), versions published: %zu, "
              "final version: %llu\n",
              updates, update_rate, versions,
              static_cast<unsigned long long>(mgr.published_version()));
  bench::Metric("reach_qps", reach_qps);
  bench::Metric("match_qps", match_qps);
  bench::Metric("updates_per_sec", update_rate);
  std::printf("\n");
}

// Reach-only qps of 2 readers over `workload` for one window (no writer:
// the A/B isolates the cache, ThroughputExperiment keeps the live update
// stream).
template <typename Service>
double MeasureReachQps(const Service& service, const ReaderWorkload& workload,
                       double window_secs, int readers_n) {
  return RunTimedLoad(service, /*patterns=*/{}, workload, window_secs,
                      readers_n)
      .reach_qps();
}

struct CacheAbResult {
  double hot_uncached = 0.0;
  double hot_cached = 0.0;
  double uniform_uncached = 0.0;
  double uniform_cached = 0.0;
  CacheStats hot_stats;  // counters accumulated during the hot cached run
};

// One cache A/B over a static snapshot of `base`: hot-set and uniform
// workloads, each measured uncached then cached.
CacheAbResult RunCacheAb(const Graph& base, double window_secs,
                         const char* label) {
  SnapshotManager mgr(base);
  const QueryService uncached(mgr);
  const CachedQueryService cached(mgr);
  const ReaderWorkload hot = ReaderWorkload::ZipfHotSet(1.1, 512);
  const ReaderWorkload uniform = ReaderWorkload::Uniform();

  CacheAbResult r;
  r.hot_uncached = MeasureReachQps(uncached, hot, window_secs, 2);
  r.hot_cached = MeasureReachQps(cached, hot, window_secs, 2);
  r.hot_stats = cached.cache_stats();
  r.uniform_uncached = MeasureReachQps(uncached, uniform, window_secs, 2);
  r.uniform_cached = MeasureReachQps(cached, uniform, window_secs, 2);

  std::printf("%-24s %14.0f %14.0f %9.1fx %9.3f\n",
              (std::string(label) + " hot").c_str(), r.hot_uncached,
              r.hot_cached,
              r.hot_uncached > 0 ? r.hot_cached / r.hot_uncached : 0.0,
              r.hot_stats.ReachHitRate());
  std::printf("%-24s %14.0f %14.0f %9.2fx %9s\n",
              (std::string(label) + " uniform").c_str(), r.uniform_uncached,
              r.uniform_cached,
              r.uniform_uncached > 0 ? r.uniform_cached / r.uniform_uncached
                                     : 0.0,
              "-");
  return r;
}

void AnswerCacheExperiment() {
  const double window_secs = ServeSeconds();
  std::printf("answer cache A/B (%.2fs windows, 2 readers, static snapshot; "
              "docs/CACHING.md):\n", window_secs);
  std::printf("%-24s %14s %14s %10s %9s\n", "graph / workload",
              "uncached qps", "cached qps", "speedup", "hit rate");
  bench::Rule();

  // Headline: a deep grid, whose reach quotient IS the graph — every
  // uncached probe pays a real quotient BFS, which is the regime answer
  // caching exists for. Hot-set = Zipf(s=1.1) over 512 repeated pairs.
  const CacheAbResult grid =
      RunCacheAb(DirectedGrid(141, 141), window_secs, "grid 141x141");
  // Context: the social graph's reach quotient is tiny, so raw reach is
  // already millions of qps; there the exact tier's win comes from block
  // canonicalization (uniform pairs collapse onto few block pairs).
  const CacheAbResult social =
      RunCacheAb(LabeledSocialGraph(20000, 13), window_secs, "social 20k");
  bench::Rule();
  const CacheStats& hs = grid.hot_stats;
  std::printf("  grid hot-set counters: exact hits %llu, subsumption hits "
              "%llu, misses %llu,\n  inserts %llu, evictions %llu\n\n",
              static_cast<unsigned long long>(hs.reach_exact_hits),
              static_cast<unsigned long long>(hs.reach_subsumption_hits),
              static_cast<unsigned long long>(hs.reach_misses),
              static_cast<unsigned long long>(hs.reach_inserts),
              static_cast<unsigned long long>(hs.reach_evictions));

  bench::Metric("cache_hot_uncached_reach_qps", grid.hot_uncached);
  bench::Metric("cache_hot_cached_reach_qps", grid.hot_cached);
  bench::Metric("cache_hot_speedup",
                grid.hot_uncached > 0 ? grid.hot_cached / grid.hot_uncached
                                      : 0.0);
  bench::Metric("cache_hot_hit_rate", hs.ReachHitRate());
  bench::Metric("cache_hot_exact_hits",
                static_cast<double>(hs.reach_exact_hits));
  bench::Metric("cache_hot_subsumption_hits",
                static_cast<double>(hs.reach_subsumption_hits));
  bench::Metric("cache_hot_misses", static_cast<double>(hs.reach_misses));
  bench::Metric("cache_hot_inserts", static_cast<double>(hs.reach_inserts));
  bench::Metric("cache_hot_evictions",
                static_cast<double>(hs.reach_evictions));
  bench::Metric("cache_uniform_uncached_reach_qps", grid.uniform_uncached);
  bench::Metric("cache_uniform_cached_reach_qps", grid.uniform_cached);
  bench::Metric("cache_social_hot_uncached_reach_qps", social.hot_uncached);
  bench::Metric("cache_social_hot_cached_reach_qps", social.hot_cached);
  bench::Metric("cache_social_uniform_uncached_reach_qps",
                social.uniform_uncached);
  bench::Metric("cache_social_uniform_cached_reach_qps",
                social.uniform_cached);
}

}  // namespace

int main() {
  bench::Banner("Serving snapshots — swap latency, amortization, throughput",
                "serve/ subsystem (no paper figure; Section 5 made concurrent)");
  SwapLatencyExperiment();
  AmortizationExperiment();
  ThroughputExperiment();
  AnswerCacheExperiment();
  std::printf("expected shape: swap latency flat in |G|; publish cost per "
              "update falls as N grows;\nreaders keep answering at full "
              "speed while the writer publishes.\n");
  return 0;
}
