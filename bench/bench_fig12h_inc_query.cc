// Copyright 2026 The QPGC Authors.
//
// Fig. 12(h): two ways to keep a pattern answer fresh on an evolving
// Citation graph — (1) IncBMatch maintains the match on G directly;
// (2) incPCM maintains Gr and Match re-runs on the compressed graph. The
// paper finds a crossover: beyond ~8K updates (on 630K nodes), updating and
// querying the compressed graph is cheaper.

#include <cstdio>

#include "bench_util.h"
#include "core/pattern_scheme.h"
#include "gen/dataset_catalog.h"
#include "gen/update_gen.h"
#include "inc/inc_pcm.h"
#include "pattern/inc_match.h"
#include "pattern/pattern_gen.h"

using namespace qpgc;

int main() {
  bench::Banner("Fig. 12(h) — incremental querying: IncBMatch vs incPCM+Match",
                "Fan et al., SIGMOD 2012, Fig. 12(h); paper crossover ~8K "
                "updates");
  const Graph base = MakeDataset(FindPatternDataset("Citation"));
  PatternGenOptions options;
  options.num_nodes = 4;
  options.num_edges = 4;
  options.max_bound = 2;
  const PatternQuery q = RandomPattern(DistinctLabels(base), options, 5);
  const size_t step = 200;  // paper 2K on a 10x larger graph

  std::printf("%-8s | %14s %16s\n", "Δ|E|", "IncBMatch(G)", "incPCM+Match(Gr)");
  bench::Rule();
  for (int steps = 1; steps <= 7; ++steps) {
    const UpdateBatch batch =
        RandomMixed(base, step * steps, 0.5, 4000 + steps);

    // Approach 1: maintain the match on G.
    Graph g1 = base;
    IncBMatch inc(&g1, q);
    double t_incmatch;
    {
      const UpdateBatch effective = ApplyBatch(g1, batch);
      t_incmatch = bench::TimeOnce([&] { inc.Update(effective); });
    }

    // Approach 2: maintain Gr, then query it.
    Graph g2 = base;
    PatternCompression pc = CompressB(g2);
    double t_compressed;
    {
      const UpdateBatch effective = ApplyBatch(g2, batch);
      t_compressed = bench::TimeOnce([&] {
        IncPCM(g2, effective, pc);
        MatchOnCompressed(pc, q);
      });
    }
    std::printf("%-8zu | %14s %16s %s\n", batch.size(),
                bench::Secs(t_incmatch).c_str(),
                bench::Secs(t_compressed).c_str(),
                t_compressed < t_incmatch ? " <- compressed wins" : "");
    const std::string suffix = "." + std::to_string(steps);
    bench::Metric("inc_bmatch_secs" + suffix, t_incmatch);
    bench::Metric("inc_pcm_match_secs" + suffix, t_compressed);
  }
  bench::Rule();
  std::printf("expected shape: IncBMatch grows with the batch while the "
              "compressed pipeline\nstays flat. At laptop scale our "
              "warm-started IncBMatch never exceeds one full\nMatch (a few "
              "ms), so the paper's crossover needs the full 630K-node "
              "dataset;\nsee EXPERIMENTS.md.\n");
  return 0;
}
