// Copyright 2026 The QPGC Authors.

#include "bench_util.h"

namespace qpgc::bench {

void Banner(const std::string& experiment, const std::string& paper_ref) {
  std::printf("\n");
  Rule();
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  Rule();
}

void Rule() {
  std::printf(
      "--------------------------------------------------------------------"
      "----------\n");
}

double TimeOnce(const std::function<void()>& fn) {
  Timer t;
  fn();
  return t.ElapsedSeconds();
}

double TimeAvg(const std::function<void()>& fn, int reps) {
  double total = 0.0;
  for (int i = 0; i < reps; ++i) total += TimeOnce(fn);
  return total / reps;
}

std::string Pct(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", ratio * 100.0);
  return std::string(buf);
}

void Metric(const std::string& key, double value) {
  std::printf("[metric] %s=%.9g\n", key.c_str(), value);
}

std::string Secs(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  }
  return std::string(buf);
}

}  // namespace qpgc::bench
