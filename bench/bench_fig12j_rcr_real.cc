// Copyright 2026 The QPGC Authors.
//
// Fig. 12(j): RCr as real-life graphs grow by the power law of [20] (5%
// edge growth per step, 80% of endpoints drawn by degree), on P2P, wikiVote
// and citHepTh. Denser graphs compress better for reachability.

#include <cstdio>

#include "bench_util.h"
#include "gen/dataset_catalog.h"
#include "gen/evolution.h"
#include "reach/compress_r.h"

using namespace qpgc;

int main() {
  bench::Banner("Fig. 12(j) — RCr under power-law growth (real-life)",
                "Fan et al., SIGMOD 2012, Fig. 12(j); 5% edge growth, 80% "
                "preferential");
  const char* datasets[] = {"P2P", "wikiVote", "citHepTh"};
  std::printf("%-8s | %10s %10s %10s\n", "Δ|E|%", datasets[0], datasets[1],
              datasets[2]);
  bench::Rule();

  Graph graphs[3] = {MakeDataset(FindDataset(datasets[0])),
                     MakeDataset(FindDataset(datasets[1])),
                     MakeDataset(FindDataset(datasets[2]))};
  for (int step = 0; step <= 9; ++step) {
    double ratios[3];
    for (int d = 0; d < 3; ++d) {
      if (step > 0) {
        PowerLawGrowthStep(graphs[d], 0.05, 0.8, 700 + step * 3 + d);
      }
      ratios[d] = CompressR(graphs[d]).CompressionRatio();
    }
    std::printf("%-8d | %10s %10s %10s\n", step * 5,
                bench::Pct(ratios[0]).c_str(), bench::Pct(ratios[1]).c_str(),
                bench::Pct(ratios[2]).c_str());
    for (int d = 0; d < 3; ++d) {
      bench::Metric(std::string("rcr.") + datasets[d] + "." +
                        std::to_string(step * 5),
                    ratios[d]);
    }
  }
  bench::Rule();
  std::printf("expected shape: RCr drifts down as preferential edges "
              "accumulate (more equivalent\nnodes), mirroring the paper's "
              "downward curves.\n");
  return 0;
}
