// Copyright 2026 The QPGC Authors.
//
// Table 1: reachability preserving compression ratios on the ten
// reachability datasets. Columns as in the paper:
//   RCaho — AHO transitive reduction [1] (keeps all nodes),
//   RCscc — |Gr| relative to the SCC graph Gscc,
//   RCr   — |Gr| relative to G (the headline number; avg ~5% in the paper).

#include <cstdio>

#include "bench_util.h"
#include "gen/dataset_catalog.h"
#include "graph/condensation.h"
#include "reach/aho.h"
#include "reach/compress_r.h"

using namespace qpgc;

int main() {
  bench::Banner("Table 1 — reachability preserving compression ratios",
                "Fan et al., SIGMOD 2012, Table 1 (paper RCr shown for "
                "reference; datasets are scaled stand-ins)");
  std::printf("%-12s %10s %10s | %8s %8s %8s | %8s %9s\n", "dataset", "|V|",
              "|E|", "RCaho", "RCscc", "RCr", "paperRCr", "compress");
  bench::Rule();

  double sum_rcr = 0.0;
  int count = 0;
  for (const auto& spec : ReachabilityDatasets()) {
    const Graph g = MakeDataset(spec);

    const Graph aho = AhoTransitiveReduction(g);
    const double rc_aho =
        static_cast<double>(aho.size()) / static_cast<double>(g.size());

    ReachCompression rc;
    const double secs = bench::TimeOnce([&] { rc = CompressR(g); });

    const Condensation cond = BuildCondensation(g);
    const double rc_scc = static_cast<double>(rc.size()) /
                          static_cast<double>(cond.dag.size());
    const double rc_r = rc.CompressionRatio();
    sum_rcr += rc_r;
    ++count;

    std::printf("%-12s %10zu %10zu | %8s %8s %8s | %8s %9s\n",
                spec.name.c_str(), g.num_nodes(), g.num_edges(),
                bench::Pct(rc_aho).c_str(), bench::Pct(rc_scc).c_str(),
                bench::Pct(rc_r).c_str(), bench::Pct(spec.paper_rc_r).c_str(),
                bench::Secs(secs).c_str());
    bench::Metric("rcr." + spec.name, rc_r);
    bench::Metric("compress_secs." + spec.name, secs);
  }
  bench::Rule();
  std::printf("average RCr: %s   (paper: ~5%% average; reduction ~95%%)\n",
              bench::Pct(sum_rcr / count).c_str());
  bench::Metric("avg_rcr", sum_rcr / count);
  std::printf("expected shape: RCr << RCscc << RCaho; social networks "
              "compress best.\n");
  return 0;
}
