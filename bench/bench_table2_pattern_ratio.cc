// Copyright 2026 The QPGC Authors.
//
// Table 2: pattern preserving compression ratios PCr on the five labeled
// datasets (paper average ~43%, i.e. a 57% reduction).

#include <cstdio>

#include "bench_util.h"
#include "core/pattern_scheme.h"
#include "gen/dataset_catalog.h"

using namespace qpgc;

int main() {
  bench::Banner("Table 2 — pattern preserving compression ratios",
                "Fan et al., SIGMOD 2012, Table 2 (scaled stand-ins; paper "
                "PCr for reference)");
  std::printf("%-12s %10s %10s %6s | %8s %9s | %9s\n", "dataset", "|V|", "|E|",
              "|L|", "PCr", "paperPCr", "compress");
  bench::Rule();

  double sum = 0.0;
  int count = 0;
  for (const auto& spec : PatternDatasets()) {
    const Graph g = MakeDataset(spec);
    PatternCompression pc;
    const double secs = bench::TimeOnce([&] { pc = CompressB(g); });
    sum += pc.CompressionRatio();
    ++count;
    std::printf("%-12s %10zu %10zu %6zu | %8s %9s | %9s\n", spec.name.c_str(),
                g.num_nodes(), g.num_edges(), g.CountDistinctLabels(),
                bench::Pct(pc.CompressionRatio()).c_str(),
                bench::Pct(spec.paper_pc_r).c_str(),
                bench::Secs(secs).c_str());
    bench::Metric("pcr." + spec.name, pc.CompressionRatio());
    bench::Metric("compress_secs." + spec.name, secs);
  }
  bench::Rule();
  std::printf("average PCr: %s   (paper: ~43%% average; reduction ~57%%)\n",
              bench::Pct(sum / count).c_str());
  bench::Metric("avg_pcr", sum / count);
  std::printf("expected shape: pattern compression is weaker than "
              "reachability compression\n(label + topology constraints); "
              "diverse-topology datasets compress worst.\n");
  return 0;
}
