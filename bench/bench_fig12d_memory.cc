// Copyright 2026 The QPGC Authors.
//
// Fig. 12(d): memory cost of G, Gr and the 2-hop index [6] built on each.
// The paper's points: (a) Gr saves >= 92% of G's memory; (b) 2-hop labels
// dwarf both graphs; (c) 2-hop can be built cheaply *on Gr* — indexes apply
// to compressed graphs unchanged.

#include <cstdio>

#include "bench_util.h"
#include "gen/dataset_catalog.h"
#include "index/two_hop.h"
#include "reach/compress_r.h"
#include "util/memory.h"

using namespace qpgc;

int main() {
  bench::Banner("Fig. 12(d) — memory: G, Gr, 2-hop(G), 2-hop(Gr)",
                "Fan et al., SIGMOD 2012, Fig. 12(d) (log-scale bars in the "
                "paper)");
  const char* datasets[] = {"P2P",         "wikiVote", "citHepTh",
                            "socEpinions", "facebook", "NotreDame"};
  std::printf("%-12s | %10s %10s %12s %12s | %8s\n", "dataset", "G", "Gr",
              "2hop(G)", "2hop(Gr)", "G-saving");
  bench::Rule();
  for (const char* name : datasets) {
    const Graph g = MakeDataset(FindDataset(name));
    const ReachCompression rc = CompressR(g);
    const TwoHopIndex on_g = TwoHopIndex::Build(g);
    const TwoHopIndex on_gr = TwoHopIndex::Build(rc.gr);
    const size_t g_bytes = g.MemoryBytes();
    const size_t gr_bytes = rc.gr.MemoryBytes();
    std::printf("%-12s | %10s %10s %12s %12s | %8s\n", name,
                FormatBytes(g_bytes).c_str(), FormatBytes(gr_bytes).c_str(),
                FormatBytes(on_g.MemoryBytes()).c_str(),
                FormatBytes(on_gr.MemoryBytes()).c_str(),
                bench::Pct(1.0 - static_cast<double>(gr_bytes) /
                                     static_cast<double>(g_bytes))
                    .c_str());
    bench::Metric(std::string("g_bytes.") + name,
                  static_cast<double>(g_bytes));
    bench::Metric(std::string("gr_bytes.") + name,
                  static_cast<double>(gr_bytes));
    bench::Metric(std::string("twohop_g_bytes.") + name,
                  static_cast<double>(on_g.MemoryBytes()));
    bench::Metric(std::string("twohop_gr_bytes.") + name,
                  static_cast<double>(on_gr.MemoryBytes()));
  }
  bench::Rule();
  std::printf("expected shape: Gr saves >=92%% of G's memory; 2-hop(G) >> "
              "G; 2-hop(Gr) << 2-hop(G).\n");
  return 0;
}
