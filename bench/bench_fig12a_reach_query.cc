// Copyright 2026 The QPGC Authors.
//
// Fig. 12(a): reachability query evaluation time on original vs compressed
// graphs, for BFS and bidirectional BFS, on five real-life datasets. The
// paper reports times normalized to BFS-on-G = 100%.

#include <cstdio>

#include "bench_util.h"
#include "gen/dataset_catalog.h"
#include "reach/compress_r.h"
#include "reach/queries.h"

using namespace qpgc;

int main() {
  bench::Banner("Fig. 12(a) — reachability queries: G vs Gr",
                "Fan et al., SIGMOD 2012, Fig. 12(a); bars normalized to "
                "BFS on G = 100%");
  const char* datasets[] = {"P2P", "wikiVote", "citHepTh", "socEpinions",
                            "NotreDame"};
  std::printf("%-12s | %9s %9s %9s %9s | %8s %8s\n", "dataset", "BFS(G)",
              "BIBFS(G)", "BFS(Gr)", "BIBFS(Gr)", "BFScut", "ratio");
  bench::Rule();

  for (const char* name : datasets) {
    const Graph g = MakeDataset(FindDataset(name));
    const ReachCompression rc = CompressR(g);
    const auto queries = RandomReachQueries(g.num_nodes(), 300, 7);

    const auto run = [&](const Graph& target, ReachAlgorithm algo,
                         bool compressed) {
      return bench::TimeOnce([&] {
        for (const auto& q : queries) {
          if (compressed) {
            AnswerOnCompressed(rc, q, PathMode::kReflexive, algo);
          } else {
            EvalReach(target, q.u, q.v, PathMode::kReflexive, algo);
          }
        }
      });
    };
    const double bfs_g = run(g, ReachAlgorithm::kBfs, false);
    const double bibfs_g = run(g, ReachAlgorithm::kBiBfs, false);
    const double bfs_gr = run(rc.gr, ReachAlgorithm::kBfs, true);
    const double bibfs_gr = run(rc.gr, ReachAlgorithm::kBiBfs, true);

    std::printf("%-12s | %9s %9s %9s %9s | %8s %8s\n", name,
                bench::Secs(bfs_g).c_str(), bench::Secs(bibfs_g).c_str(),
                bench::Secs(bfs_gr).c_str(), bench::Secs(bibfs_gr).c_str(),
                bench::Pct(1.0 - bfs_gr / bfs_g).c_str(),
                bench::Pct(rc.CompressionRatio()).c_str());
    bench::Metric(std::string("bfs_g_secs.") + name, bfs_g);
    bench::Metric(std::string("bibfs_g_secs.") + name, bibfs_g);
    bench::Metric(std::string("bfs_gr_secs.") + name, bfs_gr);
    bench::Metric(std::string("bibfs_gr_secs.") + name, bibfs_gr);
    bench::Metric(std::string("rcr.") + name, rc.CompressionRatio());
  }
  bench::Rule();
  std::printf("expected shape: queries on Gr are a small fraction of G "
              "(paper: ~2%% of BFS cost on socEpinions);\nBIBFS < BFS on "
              "both graphs.\n");
  return 0;
}
