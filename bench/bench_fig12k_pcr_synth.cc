// Copyright 2026 The QPGC Authors.
//
// Fig. 12(k): PCr over densifying synthetic graphs with |L| = 10 — the
// paper finds PCr roughly flat (36-50% band): bisimulation block structure
// is not very sensitive to uniform growth.

#include <cstdio>

#include "bench_util.h"
#include "core/pattern_scheme.h"
#include "gen/evolution.h"

using namespace qpgc;

int main() {
  bench::Banner("Fig. 12(k) — PCr under densification (synthetic, |L| = 10)",
                "Fan et al., SIGMOD 2012, Fig. 12(k)");
  std::printf("%-10s | %10s %10s %8s | %10s %10s %8s\n", "iteration",
              "|V|a=1.05", "|E|", "PCr", "|V|a=1.10", "|E|", "PCr");
  bench::Rule();
  const size_t v0 = 10000;
  for (int iter = 0; iter < 10; ++iter) {
    size_t v105 = 0, e105 = 0, v110 = 0, e110 = 0;
    double r105 = 0, r110 = 0;
    {
      const Graph g = DensifiedGraph(v0, 1.05, 1.2, 10, iter, 800);
      r105 = CompressB(g).CompressionRatio();
      v105 = g.num_nodes();
      e105 = g.num_edges();
    }
    {
      const Graph g = DensifiedGraph(v0, 1.10, 1.2, 10, iter, 900);
      r110 = CompressB(g).CompressionRatio();
      v110 = g.num_nodes();
      e110 = g.num_edges();
    }
    std::printf("%-10d | %10zu %10zu %8s | %10zu %10zu %8s\n", iter, v105,
                e105, bench::Pct(r105).c_str(), v110, e110,
                bench::Pct(r110).c_str());
    const std::string suffix = "." + std::to_string(iter);
    bench::Metric("pcr_a105" + suffix, r105);
    bench::Metric("pcr_a110" + suffix, r110);
  }
  bench::Rule();
  std::printf("expected shape: PCr stays in a narrow band across iterations "
              "(paper: 36-50%%),\nin contrast to the steadily improving "
              "RCr of Fig. 12(i).\n");
  return 0;
}
