// Copyright 2026 The QPGC Authors.
//
// Sharded serving benchmark (no paper figure — this measures the
// partitioned serving subsystem of serve/sharded_manager.h + serve/router.h
// on one total graph as the shard count K grows).
//
// Four experiments:
//  1. Partition structure vs K (deterministic): cross-shard edge fraction
//     of the hash partition and the summed per-shard quotient sizes — the
//     structural prices/wins everything else derives from.
//  2. Per-shard publish latency vs K, in two configurations: the
//     locality-sharded one (grid + contiguous bands), where each shard
//     freezes a quotient of ~1/K of the edges and per-shard publish drops
//     below the single-manager publish on the same total graph; and the
//     structure-blind one (social graph + hash partition), where ghost
//     singletons keep per-shard freezes near the single-manager cost.
//  3. Shard-local serving capacity vs K: K readers, each hammering its own
//     shard's snapshot with shard-local reach queries, on a traversal-heavy
//     grid with a contiguous (locality-friendly) partition. Per-query cost
//     tracks the shard's (smaller) quotient, so aggregate qps rises with K
//     even on fixed hardware — the capacity argument for shard-affine
//     serving tiers.
//  4. Routed (cross-shard) throughput vs K: readers going through the
//     ShardedQueryService router (frozen-boundary-summary reach + stitched-
//     quotient boolean matches). Hash partitioning maximizes boundary
//     crossings, so this is the honest price of fully global queries on a
//     structure-blind partition; reported next to (3), never hidden.
//  5. Stitch reuse (deterministic): republish ONE shard, restitch, and
//     report what fraction of per-shard segments the service's StitchCache
//     carried over — the "patch only shards whose version moved" story.
//  6. Partitioner comparison (id-scrambled grid): cross-edge fraction and a
//     short routed-reach window for hash vs contiguous vs the
//     SCC-coarsened structure partitioner, on a graph whose node ids carry
//     no locality — the case the structure partitioner exists for.
//
// Throughput metrics end in `_qps` and are higher-is-better;
// tools/bench_diff.py treats them as gains when they rise (and, like all
// wall-clock-derived numbers, never gates on them in CI).
//
// Env: QPGC_BENCH_SHARD_SECS overrides each throughput window (default
// 0.4); QPGC_BENCH_SHARD_MAX_K caps the K ramp (default 4; the CI config
// keeps the full ramp but a short window).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "gen/adversarial.h"
#include "gen/random_models.h"
#include "gen/uniform.h"
#include "gen/update_gen.h"
#include "graph/builder.h"
#include "graph/shard_view.h"
#include "serve/answer_cache.h"
#include "serve/load_gen.h"
#include "serve/router.h"
#include "serve/sharded_manager.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace qpgc;

namespace {

constexpr size_t kNodes = 20000;

Graph LabeledSocialGraph(uint64_t seed) {
  Graph g = PreferentialAttachment(kNodes, 4, 0.45, seed);
  AssignZipfLabels(g, 4, 1.1, seed + 1);
  return g;
}

double WindowSecs() {
  if (const char* env = std::getenv("QPGC_BENCH_SHARD_SECS")) {
    const double secs = std::atof(env);
    if (secs > 0) return secs;
  }
  return 0.4;
}

uint32_t MaxShards() {
  if (const char* env = std::getenv("QPGC_BENCH_SHARD_MAX_K")) {
    const unsigned long k = std::strtoul(env, nullptr, 10);
    if (k >= 1) return static_cast<uint32_t>(k);
  }
  return 4;
}

std::vector<uint32_t> ShardCounts() {
  std::vector<uint32_t> ks;
  for (uint32_t k = 1; k <= MaxShards(); k *= 2) ks.push_back(k);
  return ks;
}

void PartitionStructureExperiment(const Graph& g) {
  std::printf("partition structure vs K (hash partition, |V| = %zu, "
              "|E| = %zu):\n", g.num_nodes(), g.num_edges());
  std::printf("%-4s %12s %14s %16s %16s\n", "K", "cross edges", "cross frac",
              "sum |Gr reach|", "sum |Gr pattern|");
  bench::Rule();
  for (const uint32_t k : ShardCounts()) {
    const ShardPartition part = ShardPartition::Hash(g.num_nodes(), k, 3);
    size_t cross = 0;
    g.ForEachEdge([&](NodeId u, NodeId v) {
      if (part.shard_of[u] != part.shard_of[v]) ++cross;
    });
    size_t sum_reach = 0, sum_pattern = 0;
    for (uint32_t s = 0; s < k; ++s) {
      const ShardView<Graph> view(g, part, s);
      sum_reach += CompressR(view).size();
      sum_pattern += CompressB(view).size();
    }
    const double frac =
        g.num_edges() == 0
            ? 0.0
            : static_cast<double>(cross) / static_cast<double>(g.num_edges());
    std::printf("%-4u %12zu %13.1f%% %16zu %16zu\n", k, cross, frac * 100,
                sum_reach, sum_pattern);
    const std::string suffix = ".K" + std::to_string(k);
    bench::Metric("cross_edge_frac" + suffix, frac);
    bench::Metric("sum_reach_gr" + suffix, static_cast<double>(sum_reach));
    bench::Metric("sum_pattern_gr" + suffix,
                  static_cast<double>(sum_pattern));
  }
  bench::Rule();
  std::printf("hash partitioning is structure-blind: expect cross fraction "
              "-> (K-1)/K and summed\nquotients to grow with K (ghost "
              "singletons); the per-shard pieces still shrink ~1/K.\n\n");
}

void PublishLatencyExperiment(const Graph& g, bool contiguous,
                              const std::string& metric_prefix,
                              const char* title) {
  std::printf("per-shard publish latency vs K — %s (full freeze after a "
              "dirtying batch, mean over shards):\n", title);
  std::printf("%-4s %14s %14s %14s %16s\n", "K", "freeze/shard",
              "summary/shard", "swap/shard", "vs single (K=1)");
  bench::Rule();
  constexpr int kRounds = 6;
  double single_freeze = 0.0;
  for (const uint32_t k : ShardCounts()) {
    ShardedManagerOptions opts;
    opts.num_shards = k;
    opts.partitioner =
        contiguous ? PartitionerKind::kContiguous : PartitionerKind::kHash;
    ShardedSnapshotManager mgr(g, opts);
    std::vector<std::vector<NodeId>> owned(k);
    for (uint32_t s = 0; s < k; ++s) owned[s] = mgr.partition().OwnedNodes(s);
    double freeze_total = 0.0, swap_total = 0.0, summary_total = 0.0;
    size_t publishes = 0;
    for (int round = 0; round < kRounds; ++round) {
      // Dirty every shard, then measure each shard's publish.
      for (uint32_t s = 0; s < k; ++s) {
        mgr.ApplyToShard(
            s, RandomShardLocalBatch(mgr.shard(s).graph(), owned[s], 4, 0.7,
                                     40 + 100 * round + s));
      }
      for (const PublishStats& stats : mgr.PublishAll(FreezeMode::kFull)) {
        freeze_total += stats.freeze_secs;
        swap_total += stats.swap_secs;
        summary_total += stats.summary_freeze_secs;
        ++publishes;
      }
    }
    const double freeze_avg = freeze_total / static_cast<double>(publishes);
    const double swap_avg = swap_total / static_cast<double>(publishes);
    const double summary_avg = summary_total / static_cast<double>(publishes);
    if (k == 1) single_freeze = freeze_avg;
    std::printf("%-4u %14s %14s %14s %15.2fx\n", k,
                bench::Secs(freeze_avg).c_str(),
                bench::Secs(summary_avg).c_str(), bench::Secs(swap_avg).c_str(),
                single_freeze > 0 ? freeze_avg / single_freeze : 0.0);
    const std::string suffix = ".K" + std::to_string(k);
    bench::Metric(metric_prefix + "_freeze_secs" + suffix, freeze_avg);
    // The boundary-summary freeze delta, also included in freeze_secs: the
    // publish-side price of the routed-reach summaries (docs/SHARDING.md).
    bench::Metric(metric_prefix + "_summary_freeze_secs" + suffix,
                  summary_avg);
    bench::Metric(metric_prefix + "_swap_secs" + suffix, swap_avg);
  }
  bench::Rule();
  std::printf("\n");
}

void ShardLocalCapacityExperiment(const Graph& grid, double window_secs) {
  // Traversal-heavy workload on a locality-friendly partition: a directed
  // grid with contiguous row-band shards. A shard-local reach query sweeps
  // only its band's quotient (~1/K of the edges), so aggregate qps rises
  // with K even on fixed hardware — the capacity argument for shard-affine
  // serving tiers (the structure a production deployment routes by).
  std::printf("shard-local serving capacity vs K (%.2fs window, directed "
              "%zux-node grid, contiguous\nbands, one shard-affine reader "
              "per shard):\n", window_secs, grid.num_nodes());
  std::printf("%-4s %16s %16s %16s\n", "K", "aggregate qps", "per-reader qps",
              "vs single (K=1)");
  bench::Rule();
  double single_qps = 0.0;
  for (const uint32_t k : ShardCounts()) {
    ShardedManagerOptions opts;
    opts.num_shards = k;
    opts.partitioner = PartitionerKind::kContiguous;
    ShardedSnapshotManager mgr(grid, opts);
    std::vector<std::vector<NodeId>> owned(k);
    for (uint32_t s = 0; s < k; ++s) owned[s] = mgr.partition().OwnedNodes(s);

    std::atomic<bool> done{false};
    std::atomic<uint64_t> queries{0};
    std::vector<std::thread> readers;
    for (uint32_t s = 0; s < k; ++s) {
      readers.emplace_back([&, s] {
        // Shard-affine tier: this reader serves queries that live on shard
        // s's snapshot (sources owned by s, any target), pinning per batch
        // of 64 like the global reader loop.
        Rng rng(500 + s);
        const size_t n = grid.num_nodes();
        uint64_t local = 0;
        while (!done.load(std::memory_order_relaxed)) {
          const auto snap = mgr.shard(s).Acquire();
          for (int i = 0; i < 64; ++i) {
            const NodeId u = owned[s][rng.Uniform(owned[s].size())];
            (void)snap->Reach(u, static_cast<NodeId>(rng.Uniform(n)));
            ++local;
          }
        }
        queries.fetch_add(local, std::memory_order_relaxed);
      });
    }

    Timer window;
    while (window.ElapsedSeconds() < window_secs) {
      std::this_thread::yield();
    }
    const double elapsed = window.ElapsedSeconds();
    done.store(true, std::memory_order_relaxed);
    for (auto& t : readers) t.join();

    const double qps = static_cast<double>(queries.load()) / elapsed;
    if (k == 1) single_qps = qps;
    std::printf("%-4u %16.0f %16.0f %15.2fx\n", k, qps,
                qps / static_cast<double>(k),
                single_qps > 0 ? qps / single_qps : 0.0);
    bench::Metric("local_reach_qps.K" + std::to_string(k), qps);
  }
  bench::Rule();
  std::printf("\n");
}

void RoutedThroughputExperiment(const Graph& g, double window_secs) {
  std::printf("routed cross-shard throughput vs K (%.2fs windows, 2 routed "
              "readers; reach quiescent\nand under a paced live writer, "
              "match under the live writer):\n", window_secs);
  std::printf("%-4s %16s %16s %16s\n", "K", "routed reach qps",
              "reach live qps", "routed match qps");
  bench::Rule();
  const std::vector<PatternQuery> patterns = ServeLoadPatterns(g, 4, 70);
  for (const uint32_t k : ShardCounts()) {
    ShardedManagerOptions opts;
    opts.num_shards = k;
    opts.shard_options.policy = PublishPolicy::EveryNUpdates(64);
    ShardedSnapshotManager mgr(g, opts);
    const ShardedQueryService service(mgr);

    // One timed window: 2 readers on `pats` (reach-only when empty, the
    // 64:1 reach:match pin loop otherwise) against a paced live writer
    // (~25 batches/s — a saturating writer on shared hardware would measure
    // writer CPU, not routing; production update streams are rate-limited
    // anyway). Reach and match run in SEPARATE windows: with routed reach
    // at summary speed, one match in the mixed loop eclipses dozens of
    // reaches, so a mixed window would report match cost as reach cost.
    Graph mirror = g;
    size_t batches = 0;
    const auto paced_window = [&](const std::vector<PatternQuery>& pats) {
      std::atomic<bool> done{false};
      std::atomic<uint64_t> reach_queries{0};
      std::atomic<uint64_t> match_queries{0};
      std::vector<std::thread> readers;
      for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&, r] {
          const ReaderLoadCounters counters =
              RunReaderLoad(service, pats, 40 + r, done);
          reach_queries.fetch_add(counters.reach_queries,
                                  std::memory_order_relaxed);
          match_queries.fetch_add(counters.match_queries,
                                  std::memory_order_relaxed);
        });
      }
      size_t window_batches = 0;
      Timer window;
      while (window.ElapsedSeconds() < window_secs) {
        if (window.ElapsedSeconds() * 25.0 >
            static_cast<double>(window_batches)) {
          const UpdateBatch batch =
              RandomMixed(mirror, 16, 0.55, 900 + batches);
          ApplyBatch(mirror, batch);
          mgr.Apply(batch);
          ++batches;
          ++window_batches;
        } else {
          std::this_thread::yield();
        }
      }
      LoadRunResult result;
      result.elapsed_secs = window.ElapsedSeconds();
      done.store(true, std::memory_order_relaxed);
      for (auto& t : readers) t.join();
      result.reach_queries = reach_queries.load();
      result.match_queries = match_queries.load();
      return result;
    };

    const double reach_live_qps = paced_window(/*pats=*/{}).reach_qps();
    const double match_qps = paced_window(patterns).match_qps();
    // Quiescent routed reach, on the post-window shards: the number to put
    // against local_reach_qps (which is also measured with idle writers —
    // on one core a live writer's CPU share would be billed to routing).
    const double reach_qps =
        RunTimedLoad(service, /*patterns=*/{}, ReaderWorkload::Uniform(),
                     window_secs, 2)
            .reach_qps();
    std::printf("%-4u %16.0f %16.0f %16.0f\n", k, reach_qps, reach_live_qps,
                match_qps);
    const std::string suffix = ".K" + std::to_string(k);
    bench::Metric("routed_reach_qps" + suffix, reach_qps);
    bench::Metric("routed_reach_live_qps" + suffix, reach_live_qps);
    bench::Metric("routed_match_qps" + suffix, match_qps);

    // Per-tier split of routed match cost: stitching the cross-shard
    // pattern quotient — paid once per pinned version vector — vs
    // evaluating one query on the already-stitched quotient.
    {
      const auto part = mgr.partition_ptr();
      const auto snaps = mgr.AcquireAll();
      constexpr int kStitchReps = 3;
      Timer stitch_timer;
      for (int i = 0; i < kStitchReps; ++i) {
        (void)BuildStitchedPatternQuotient(*part, snaps);
      }
      const double stitch_secs =
          stitch_timer.ElapsedSeconds() / kStitchReps;

      const auto pin = std::make_shared<const PinnedShards>(part, snaps);
      (void)pin->stitched();  // build outside the timed query loop
      size_t evals = 0;
      Timer query_timer;
      while (query_timer.ElapsedSeconds() < 0.05 || evals < patterns.size()) {
        (void)pin->BooleanMatch(patterns[evals % patterns.size()]);
        ++evals;
      }
      const double query_secs = query_timer.ElapsedSeconds() /
                                static_cast<double>(evals);
      std::printf("     match tier split: stitch %s/version vector, query "
                  "%s/eval\n",
                  bench::Secs(stitch_secs).c_str(),
                  bench::Secs(query_secs).c_str());
      bench::Metric("routed_match_stitch_secs" + suffix, stitch_secs);
      bench::Metric("routed_match_query_secs" + suffix, query_secs);
    }

    // Answer cache over the router (serve/answer_cache.h): hot-set
    // repetition against the static post-window shards.
    {
      const CachedShardedQueryService cached(mgr);
      const ReaderWorkload hot = ReaderWorkload::ZipfHotSet(1.1, 512);
      const double hot_uncached =
          RunTimedLoad(service, /*patterns=*/{}, hot, window_secs, 2)
              .reach_qps();
      const double hot_cached =
          RunTimedLoad(cached, /*patterns=*/{}, hot, window_secs, 2)
              .reach_qps();
      std::printf("     hot-set reach: uncached %.0f qps, cached %.0f qps "
                  "(%.1fx, hit rate %.3f)\n",
                  hot_uncached, hot_cached,
                  hot_uncached > 0 ? hot_cached / hot_uncached : 0.0,
                  cached.cache_stats().ReachHitRate());
      bench::Metric("cache_routed_hot_uncached_reach_qps" + suffix,
                    hot_uncached);
      bench::Metric("cache_routed_hot_cached_reach_qps" + suffix,
                    hot_cached);
    }
  }
  bench::Rule();
  std::printf("\n");
}

void StitchReuseExperiment(const Graph& g) {
  // Deterministic "patch only moved shards" scenario: stitch once cold,
  // republish exactly ONE shard, stitch again. The service's StitchCache
  // carries the K-1 untouched shards' segments (their frozen pattern sides
  // are pointer-shared across versions), so the expected ratio is
  // (K-1)/2K over the two stitches.
  std::printf("stitched-quotient reuse after a one-shard republish:\n");
  std::printf("%-4s %10s %12s %12s %12s\n", "K", "builds", "full reuse",
              "seg reused", "reuse ratio");
  bench::Rule();
  for (const uint32_t k : ShardCounts()) {
    if (k < 2) continue;
    ShardedManagerOptions opts;
    opts.num_shards = k;
    ShardedSnapshotManager mgr(g, opts);
    const ShardedQueryService service(mgr);
    (void)service.Pin()->stitched();  // cold build: K segments, 0 carried
    const std::vector<NodeId> owned = mgr.partition().OwnedNodes(0);
    mgr.ApplyToShard(
        0, RandomShardLocalBatch(mgr.shard(0).graph(), owned, 8, 0.7, 11));
    mgr.PublishShard(0, FreezeMode::kFull);
    (void)service.Pin()->stitched();  // only shard 0's segment moved
    const StitchCache::Stats stats = service.stitch_stats();
    std::printf("%-4u %10llu %12llu %12llu %12.3f\n", k,
                static_cast<unsigned long long>(stats.builds),
                static_cast<unsigned long long>(stats.full_reuses),
                static_cast<unsigned long long>(stats.segments_reused),
                stats.reuse_ratio());
    bench::Metric("stitch_reuse_ratio.K" + std::to_string(k),
                  stats.reuse_ratio());
  }
  bench::Rule();
  std::printf("\n");
}

Graph ScrambleNodeIds(const Graph& g, uint64_t seed) {
  // Random id permutation: keeps the structure, destroys id locality.
  std::vector<NodeId> perm(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) perm[v] = v;
  Rng rng(seed);
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Uniform(i)]);
  }
  GraphBuilder builder(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    builder.SetLabel(perm[v], g.label(v));
  }
  g.ForEachEdge([&](NodeId u, NodeId v) { builder.AddEdge(perm[u], perm[v]); });
  return builder.Build();
}

void PartitionerComparisonExperiment(double window_secs) {
  // A directed grid with shuffled node ids: contiguous ranges lose their
  // id-locality crutch, hash never had one, and the structure partitioner
  // recovers locality from the graph itself (SCC-coarsened topological
  // chunks; graph/shard_view.h).
  const Graph scrambled = ScrambleNodeIds(DirectedGrid(141, 141), 99);
  const uint32_t k = 2;
  std::printf("partitioner comparison (id-scrambled %zu-node grid, K = %u, "
              "%.2fs routed reach window):\n",
              scrambled.num_nodes(), k, window_secs);
  std::printf("%-12s %12s %18s\n", "partitioner", "cross frac",
              "routed reach qps");
  bench::Rule();
  for (const PartitionerKind kind :
       {PartitionerKind::kHash, PartitionerKind::kContiguous,
        PartitionerKind::kStructure}) {
    const ShardPartition part = BuildPartition(kind, scrambled, k, 3);
    size_t cross = 0;
    scrambled.ForEachEdge([&](NodeId u, NodeId v) {
      if (part.shard_of[u] != part.shard_of[v]) ++cross;
    });
    const double frac =
        scrambled.num_edges() == 0
            ? 0.0
            : static_cast<double>(cross) /
                  static_cast<double>(scrambled.num_edges());
    ShardedManagerOptions opts;
    opts.num_shards = k;
    opts.partitioner = kind;
    opts.partition_seed = 3;  // same partition as the cross-frac count
    ShardedSnapshotManager mgr(scrambled, opts);
    const ShardedQueryService service(mgr);
    const double qps = RunTimedLoad(service, /*patterns=*/{},
                                    ReaderWorkload::Uniform(), window_secs, 2)
                           .reach_qps();
    const char* name = PartitionerKindName(kind);
    std::printf("%-12s %11.1f%% %18.0f\n", name, frac * 100, qps);
    bench::Metric(std::string("scrambled_cross_edge_frac.") + name, frac);
    bench::Metric(std::string("scrambled_routed_reach_qps.") + name, qps);
  }
  bench::Rule();
  std::printf("the structure partitioner keeps the cross fraction low where "
              "contiguous ranges\ndegenerate to hash-like cuts.\n\n");
}

}  // namespace

int main() {
  bench::Banner("Sharded serving — partition structure, publish latency, "
                "capacity vs K",
                "serve/sharded_manager.h + serve/router.h (no paper figure)");
  const Graph g = LabeledSocialGraph(7);
  const Graph grid = DirectedGrid(141, 141);
  const double window_secs = WindowSecs();
  PartitionStructureExperiment(g);
  // The locality-sharded configuration (the deployment sharding is for):
  // per-shard quotients carry ~1/K of the edges, so per-shard publish
  // drops below the single-manager publish of the same total graph.
  PublishLatencyExperiment(grid, /*contiguous=*/true, "publish",
                           "grid, contiguous bands");
  // The structure-blind stress configuration: hash partitioning shreds the
  // giant SCC, so ghost singletons keep per-shard freezes near the
  // single-manager cost — the honest price of partitioning without
  // locality.
  PublishLatencyExperiment(g, /*contiguous=*/false, "hash_publish",
                           "social graph, hash partition");
  ShardLocalCapacityExperiment(grid, window_secs);
  RoutedThroughputExperiment(g, window_secs);
  StitchReuseExperiment(g);
  PartitionerComparisonExperiment(window_secs);
  std::printf("expected shape: per-shard publish latency and shard-local "
              "query cost fall as K grows\n(aggregate shard-local qps "
              "rises); routed global queries ride the frozen boundary\n"
              "summaries, so even the hash partition's worst-case cut stays "
              "within a small\nfactor of shard-local serving.\n");
  return 0;
}
