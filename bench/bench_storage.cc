// Copyright 2026 The QPGC Authors.
//
// Out-of-core serving economics on the Fig. 12(d) dataset stand-ins:
//
//   * index bytes — serialized CSR index (offset sections) under the
//     compact encodings (delta16/raw32 via IndexEncoding::kAuto) vs plain
//     8-byte offsets; the acceptance bar is >= 1.8x smaller;
//   * cold start — time to first answered query: MmapSnapshot::Open off
//     the artifact vs the full verified deserialize
//     (storage/snapshot_io.h); the bar is >= 10x faster;
//   * resident bytes — mapped artifact size (page-cache backed, shared
//     across replicas) and varint heap-decode cost vs the in-RAM frozen
//     snapshot, the Fig. 12(d) memory axis;
//   * serving throughput — the same timed reach window against the in-RAM
//     service and straight off the mapping.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gen/dataset_catalog.h"
#include "serve/load_gen.h"
#include "serve/query_service.h"
#include "serve/snapshot_manager.h"
#include "storage/format.h"
#include "storage/mmap_snapshot.h"
#include "storage/snapshot_io.h"
#include "util/memory.h"
#include "util/timer.h"

using namespace qpgc;

namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("qpgc_bench_" + name))
      .string();
}

// Sum of the stored bytes of the CSR index (offset) sections, and of the
// whole file, from the artifact's own section table.
struct ArtifactFootprint {
  size_t index_bytes = 0;
  size_t file_bytes = 0;
};

ArtifactFootprint Footprint(const std::string& path) {
  ArtifactFootprint fp;
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  auto parsed = storage::ParseArtifact(
      {reinterpret_cast<const std::byte*>(raw.data()), raw.size()},
      /*verify_payload_checksums=*/false);
  if (!parsed.ok()) return fp;
  fp.file_bytes = raw.size();
  for (const storage::SectionEntry& entry : parsed.value().table) {
    switch (static_cast<storage::SectionKind>(entry.kind)) {
      case storage::SectionKind::kReachOutOffsets:
      case storage::SectionKind::kReachInOffsets:
      case storage::SectionKind::kPatternOutOffsets:
      case storage::SectionKind::kPatternInOffsets:
      case storage::SectionKind::kMemberOffsets:
        fp.index_bytes += entry.stored_bytes;
        break;
      default:
        break;
    }
  }
  return fp;
}

// Pin()-service adapter over one immutable mapped artifact (the same shape
// qpgc_tool serve-sim --mmap drives).
struct MmapService {
  std::shared_ptr<const storage::MmapSnapshot> snap;
  std::shared_ptr<const storage::MmapSnapshot> Pin() const { return snap; }
};

}  // namespace

int main() {
  bench::Banner("storage — artifact bytes, cold start, mmap serving",
                "out-of-core tier vs Fan et al., SIGMOD 2012, Fig. 12(d) "
                "memory baseline");
  const char* datasets[] = {"P2P",         "wikiVote", "citHepTh",
                            "socEpinions", "facebook", "NotreDame"};
  std::printf("%-12s | %9s %9s %6s | %9s %9s %7s | %9s %9s\n", "dataset",
              "idx raw64", "idx auto", "cut", "cold mmap", "cold full",
              "speedup", "ram qps", "mmap qps");
  bench::Rule();
  for (const char* name : datasets) {
    Graph g = MakeDataset(FindDataset(name));
    const size_t n = g.num_nodes();
    SnapshotManager manager(std::move(g));
    const QueryService service(manager);
    const auto live = manager.Acquire();

    const std::string path_auto = TempPath(std::string(name) + ".auto.snap");
    const std::string path_raw = TempPath(std::string(name) + ".raw64.snap");
    const std::string path_var = TempPath(std::string(name) + ".varint.snap");
    storage::SaveOptions raw_options;
    raw_options.index_encoding = storage::IndexEncoding::kRaw64;
    storage::SaveOptions varint_options;
    varint_options.varint_adjacency = true;
    if (!storage::SaveSnapshot(*live, path_auto).ok() ||
        !storage::SaveSnapshot(*live, path_raw, raw_options).ok() ||
        !storage::SaveSnapshot(*live, path_var, varint_options).ok()) {
      std::fprintf(stderr, "%s: save failed\n", name);
      return 1;
    }
    const ArtifactFootprint auto_fp = Footprint(path_auto);
    const ArtifactFootprint raw_fp = Footprint(path_raw);
    const ArtifactFootprint var_fp = Footprint(path_var);
    const double index_cut = auto_fp.index_bytes > 0
                                 ? static_cast<double>(raw_fp.index_bytes) /
                                       static_cast<double>(auto_fp.index_bytes)
                                 : 0.0;

    // Cold start: open (or deserialize) then answer one query, the
    // replica-spin-up number. The mmap side is the trusted fast path; the
    // deserialize side is the default fully verified load. Best of 5 each —
    // at tens of microseconds a single sample is mostly scheduler noise.
    double cold_mmap = 1e30, cold_full = 1e30;
    for (int rep = 0; rep < 5; ++rep) {
      Timer t;
      auto mapped = storage::MmapSnapshot::Open(path_auto);
      if (!mapped.ok()) {
        std::fprintf(stderr, "%s: mmap open failed\n", name);
        return 1;
      }
      (void)mapped.value().Reach(0, static_cast<NodeId>(n - 1));
      cold_mmap = std::min(cold_mmap, t.ElapsedSeconds());
    }
    for (int rep = 0; rep < 5; ++rep) {
      Timer t;
      auto loaded = storage::LoadServingSnapshot(path_auto);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s: load failed\n", name);
        return 1;
      }
      (void)loaded.value().snapshot->Reach(0, static_cast<NodeId>(n - 1));
      cold_full = std::min(cold_full, t.ElapsedSeconds());
    }

    // Serving throughput A/B: identical timed uniform reach windows.
    auto mapped = storage::MmapSnapshot::Open(path_auto);
    const MmapService mmap_service{
        std::make_shared<const storage::MmapSnapshot>(
            std::move(mapped).value())};
    const ReaderWorkload workload = ReaderWorkload::Uniform();
    const double ram_qps =
        RunTimedLoad(service, /*patterns=*/{}, workload, 0.15, 2).reach_qps();
    const double mmap_qps =
        RunTimedLoad(mmap_service, /*patterns=*/{}, workload, 0.15, 2)
            .reach_qps();

    std::printf("%-12s | %9s %9s %5.2fx | %9s %9s %6.1fx | %9.0f %9.0f\n",
                name, FormatBytes(raw_fp.index_bytes).c_str(),
                FormatBytes(auto_fp.index_bytes).c_str(), index_cut,
                bench::Secs(cold_mmap).c_str(), bench::Secs(cold_full).c_str(),
                cold_mmap > 0 ? cold_full / cold_mmap : 0.0, ram_qps,
                mmap_qps);

    bench::Metric(std::string("index_bytes_raw64.") + name,
                  static_cast<double>(raw_fp.index_bytes));
    bench::Metric(std::string("index_bytes_auto.") + name,
                  static_cast<double>(auto_fp.index_bytes));
    bench::Metric(std::string("index_cut.") + name, index_cut);
    bench::Metric(std::string("artifact_bytes.") + name,
                  static_cast<double>(auto_fp.file_bytes));
    bench::Metric(std::string("varint_artifact_bytes.") + name,
                  static_cast<double>(var_fp.file_bytes));
    bench::Metric(std::string("ram_bytes.") + name,
                  static_cast<double>(live->MemoryBytes()));
    bench::Metric(std::string("decoded_heap_bytes.") + name,
                  static_cast<double>(mmap_service.snap->DecodedHeapBytes()));
    bench::Metric(std::string("cold_mmap_secs.") + name, cold_mmap);
    bench::Metric(std::string("cold_deserialize_secs.") + name, cold_full);
    bench::Metric(std::string("cold_speedup.") + name,
                  cold_mmap > 0 ? cold_full / cold_mmap : 0.0);
    bench::Metric(std::string("reach_qps_ram.") + name, ram_qps);
    bench::Metric(std::string("reach_qps_mmap.") + name, mmap_qps);

    std::filesystem::remove(path_auto);
    std::filesystem::remove(path_raw);
    std::filesystem::remove(path_var);
  }
  bench::Rule();
  std::printf(
      "expected shape: compact index >= 1.8x smaller than raw64; cold start "
      ">= 10x\nfaster off the mapping than via full deserialize; mmap qps "
      "within a small\nfactor of in-RAM qps (page-cache resident after "
      "warm-up).\n");
  return 0;
}
