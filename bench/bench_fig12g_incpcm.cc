// Copyright 2026 The QPGC Authors.
//
// Fig. 12(g): incPCM vs the single-update baseline IncBsim [30] vs
// recompression (compressB) under growing *mixed* batches on Youtube
// (paper: 0.8K-update increments; incPCM beats compressB up to ~5K updates
// and always beats IncBsim, thanks to minDelta batch reduction).

#include <cstdio>

#include "bench_util.h"
#include "core/pattern_scheme.h"
#include "gen/dataset_catalog.h"
#include "gen/update_gen.h"
#include "inc/inc_bsim.h"
#include "inc/inc_pcm.h"

using namespace qpgc;

int main() {
  bench::Banner("Fig. 12(g) — incPCM vs IncBsim vs compressB (mixed updates)",
                "Fan et al., SIGMOD 2012, Fig. 12(g)");
  const Graph base = MakeDataset(FindPatternDataset("Youtube"));
  const size_t step = 80;  // paper 0.8K on a 10x larger graph

  std::printf("%-8s | %12s %12s %12s | %9s\n", "Δ|E|", "incPCM", "IncBsim",
              "compressB", "minDelta");
  bench::Rule();
  for (int steps = 1; steps <= 7; ++steps) {
    const UpdateBatch batch =
        RandomMixed(base, step * steps, 0.5, 3000 + steps);

    // incPCM: one batch.
    Graph g1 = base;
    PatternCompression pc1 = CompressB(g1);
    IncPcmStats stats;
    double t_inc = 0;
    {
      const UpdateBatch effective = ApplyBatch(g1, batch);
      t_inc = bench::TimeOnce([&] { stats = IncPCM(g1, effective, pc1); });
    }

    // IncBsim: one update at a time.
    Graph g2 = base;
    PatternCompression pc2 = CompressB(g2);
    const double t_bsim = bench::TimeOnce([&] { IncBsim(g2, batch, pc2); });

    // compressB from scratch on the updated graph.
    const double t_batch = bench::TimeOnce([&] { CompressB(g1); });

    std::printf("%-8zu | %12s %12s %12s | %9zu\n", batch.size(),
                bench::Secs(t_inc).c_str(), bench::Secs(t_bsim).c_str(),
                bench::Secs(t_batch).c_str(), stats.reduced_updates);
    const std::string suffix = "." + std::to_string(steps);
    bench::Metric("inc_pcm_secs" + suffix, t_inc);
    bench::Metric("inc_bsim_secs" + suffix, t_bsim);
    bench::Metric("compress_b_secs" + suffix, t_batch);
  }
  bench::Rule();
  std::printf("expected shape: incPCM beats IncBsim by orders of magnitude "
              "(batching + minDelta\namortize the affected-area recomputation "
              "across the whole batch). Against\ncompressB our "
              "exactness-first block-granular cones reach parity rather than\n"
              "the paper's small-batch win; see EXPERIMENTS.md for the "
              "deviation note.\n");
  return 0;
}
