// Copyright 2026 The QPGC Authors.
//
// Fig. 1: the headline P2P example — one real-life P2P network compressed
// for reachability (paper: 94% reduction, 93% less query time) and for
// graph pattern queries (51% reduction, 77% less query time).

#include <cstdio>

#include "bench_util.h"
#include "core/pattern_scheme.h"
#include "gen/dataset_catalog.h"
#include "pattern/pattern_gen.h"
#include "reach/compress_r.h"
#include "reach/queries.h"

using namespace qpgc;

int main() {
  bench::Banner("Fig. 1 — compressing a P2P network",
                "Fan et al., SIGMOD 2012, Fig. 1");

  // Reachability side (unlabeled P2P).
  const Graph g = MakeDataset(FindDataset("P2P"));
  const ReachCompression rc = CompressR(g);
  const auto queries = RandomReachQueries(g.num_nodes(), 400, 42);

  const double t_g = bench::TimeOnce([&] {
    for (const auto& q : queries)
      EvalReach(g, q.u, q.v, PathMode::kReflexive, ReachAlgorithm::kBfs);
  });
  const double t_gr = bench::TimeOnce([&] {
    for (const auto& q : queries)
      AnswerOnCompressed(rc, q, PathMode::kReflexive, ReachAlgorithm::kBfs);
  });

  std::printf("reachability: |G| = %zu -> |Gr| = %zu  (reduction %s; paper "
              "94%%)\n",
              g.size(), rc.size(), bench::Pct(1.0 - rc.CompressionRatio()).c_str());
  std::printf("  400 BFS queries: %s on G vs %s on Gr (time cut %s; paper "
              "93%%)\n",
              bench::Secs(t_g).c_str(), bench::Secs(t_gr).c_str(),
              bench::Pct(1.0 - t_gr / t_g).c_str());
  bench::Metric("reach_reduction", 1.0 - rc.CompressionRatio());
  bench::Metric("reach_time_cut", 1.0 - t_gr / t_g);

  // Pattern side (P2P with one label, as in Table 2).
  const Graph gl = MakeDataset(FindPatternDataset("P2P"));
  const PatternCompression pc = CompressB(gl);
  PatternGenOptions options;
  options.num_nodes = 4;
  options.num_edges = 4;
  options.max_bound = 3;
  double t_match_g = 0.0, t_match_gr = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const PatternQuery q = RandomPattern(DistinctLabels(gl), options, seed);
    t_match_g += bench::TimeOnce([&] { Match(gl, q); });
    t_match_gr += bench::TimeOnce([&] { MatchOnCompressed(pc, q); });
  }
  std::printf("pattern:      |G| = %zu -> |Gr| = %zu  (reduction %s; paper "
              "51%%)\n",
              gl.size(), pc.size(), bench::Pct(1.0 - pc.CompressionRatio()).c_str());
  std::printf("  5 pattern queries: %s on G vs %s on Gr (time cut %s; paper "
              "77%%)\n",
              bench::Secs(t_match_g).c_str(), bench::Secs(t_match_gr).c_str(),
              bench::Pct(1.0 - t_match_gr / t_match_g).c_str());
  bench::Metric("pattern_reduction", 1.0 - pc.CompressionRatio());
  bench::Metric("pattern_time_cut", 1.0 - t_match_gr / t_match_g);
  return 0;
}
