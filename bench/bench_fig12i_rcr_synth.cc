// Copyright 2026 The QPGC Authors.
//
// Fig. 12(i): RCr over densifying synthetic graphs [17]: |V(i+1)| = β|V(i)|,
// |E(i+1)| = |V(i+1)|^α, for α in {1.05, 1.10}, β = 1.2. The paper observes
// RCr *improving* (2.2% -> 0.2% and 1.4% -> 0.05%): denser graphs have more
// reachability-equivalent nodes.

#include <cstdio>

#include "bench_util.h"
#include "gen/evolution.h"
#include "reach/compress_r.h"

using namespace qpgc;

int main() {
  bench::Banner("Fig. 12(i) — RCr under densification (synthetic)",
                "Fan et al., SIGMOD 2012, Fig. 12(i); α ∈ {1.05, 1.10}, "
                "β = 1.2");
  std::printf("%-10s | %10s %10s %8s | %10s %10s %8s\n", "iteration",
              "|V|a=1.05", "|E|", "RCr", "|V|a=1.10", "|E|", "RCr");
  bench::Rule();
  const size_t v0 = 10000;  // paper starts at 1M; scaled 100x
  for (int iter = 0; iter < 10; ++iter) {
    size_t v105 = 0, e105 = 0, v110 = 0, e110 = 0;
    double r105 = 0, r110 = 0;
    {
      const Graph g = DensifiedGraph(v0, 1.05, 1.2, 1, iter, 500);
      const ReachCompression rc = CompressR(g);
      v105 = g.num_nodes();
      e105 = g.num_edges();
      r105 = rc.CompressionRatio();
    }
    {
      const Graph g = DensifiedGraph(v0, 1.10, 1.2, 1, iter, 600);
      const ReachCompression rc = CompressR(g);
      v110 = g.num_nodes();
      e110 = g.num_edges();
      r110 = rc.CompressionRatio();
    }
    std::printf("%-10d | %10zu %10zu %8s | %10zu %10zu %8s\n", iter, v105,
                e105, bench::Pct(r105).c_str(), v110, e110,
                bench::Pct(r110).c_str());
    const std::string suffix = "." + std::to_string(iter);
    bench::Metric("rcr_a105" + suffix, r105);
    bench::Metric("rcr_a110" + suffix, r110);
  }
  bench::Rule();
  std::printf("expected shape: RCr decreases across iterations, faster for "
              "α = 1.10 (denser);\npaper: 2.2%%→0.2%% (α=1.05), "
              "1.4%%→0.05%% (α=1.10).\n");
  return 0;
}
