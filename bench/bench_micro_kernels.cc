// Copyright 2026 The QPGC Authors.
//
// google-benchmark microbenchmarks for the core kernels: SCC, reachability
// equivalence, both bisimulation algorithms, the two compression functions,
// query evaluation on G vs Gr, and 2-hop construction.

#include <benchmark/benchmark.h>

#include "bisim/paige_tarjan.h"
#include "bisim/ranked_bisim.h"
#include "bisim/signature_bisim.h"
#include "core/pattern_scheme.h"
#include "gen/adversarial.h"
#include "gen/random_models.h"
#include "gen/uniform.h"
#include "graph/csr.h"
#include "graph/scc.h"
#include "index/two_hop.h"
#include "reach/compress_r.h"
#include "reach/equivalence.h"
#include "reach/queries.h"

namespace qpgc {
namespace {

Graph SocialGraph(int64_t n) {
  return PreferentialAttachment(static_cast<size_t>(n), 3, 0.5, 42);
}

Graph LabeledGraph(int64_t n) {
  Graph g = PreferentialAttachment(static_cast<size_t>(n), 3, 0.5, 42);
  AssignZipfLabels(g, 8, 0.8, 43);
  return g;
}

void BM_SCC(benchmark::State& state) {
  const Graph g = SocialGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeScc(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_SCC)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_SCC_Csr(benchmark::State& state) {
  const Graph g = SocialGraph(state.range(0));
  const CsrGraph frozen(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeScc(frozen));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_SCC_Csr)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_CsrFreeze(benchmark::State& state) {
  const Graph g = SocialGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrGraph(g));
  }
}
BENCHMARK(BM_CsrFreeze)->Arg(8000)->Arg(32000);

void BM_ReachEquivalence(benchmark::State& state) {
  const Graph g = SocialGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeReachEquivalence(g));
  }
}
BENCHMARK(BM_ReachEquivalence)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_CompressR(benchmark::State& state) {
  const Graph g = SocialGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompressR(g));
  }
}
BENCHMARK(BM_CompressR)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_SignatureBisim(benchmark::State& state) {
  const Graph g = LabeledGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SignatureBisimulation(g));
  }
}
BENCHMARK(BM_SignatureBisim)->Arg(2000)->Arg(8000);

void BM_RankedBisim(benchmark::State& state) {
  const Graph g = LabeledGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RankedBisimulation(g));
  }
}
BENCHMARK(BM_RankedBisim)->Arg(2000)->Arg(8000);

void BM_PaigeTarjanBisim(benchmark::State& state) {
  const Graph g = LabeledGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PaigeTarjanBisimulation(g));
  }
}
BENCHMARK(BM_PaigeTarjanBisim)->Arg(2000)->Arg(8000);

void BM_PaigeTarjanBisimCsr(benchmark::State& state) {
  const Graph g = LabeledGraph(state.range(0));
  const CsrGraph frozen(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PaigeTarjanBisimulation(frozen));
  }
}
BENCHMARK(BM_PaigeTarjanBisimCsr)->Arg(2000)->Arg(8000);

void BM_PaigeTarjanBisimChain(benchmark::State& state) {
  const Graph g = LongChain(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PaigeTarjanBisimulation(g));
  }
}
BENCHMARK(BM_PaigeTarjanBisimChain)->Arg(4000)->Arg(16000);

void BM_PaigeTarjanBisimChainCsr(benchmark::State& state) {
  const Graph g = LongChain(static_cast<size_t>(state.range(0)), 1);
  const CsrGraph frozen(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PaigeTarjanBisimulation(frozen));
  }
}
BENCHMARK(BM_PaigeTarjanBisimChainCsr)->Arg(4000)->Arg(16000);

void BM_CompressB(benchmark::State& state) {
  const Graph g = LabeledGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompressB(g));
  }
}
BENCHMARK(BM_CompressB)->Arg(2000)->Arg(8000);

void BM_BfsOnG(benchmark::State& state) {
  const Graph g = SocialGraph(8000);
  const auto queries = RandomReachQueries(g.num_nodes(), 64, 7);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        EvalReach(g, q.u, q.v, PathMode::kReflexive, ReachAlgorithm::kBfs));
  }
}
BENCHMARK(BM_BfsOnG);

void BM_BfsOnGr(benchmark::State& state) {
  const Graph g = SocialGraph(8000);
  const ReachCompression rc = CompressR(g);
  const auto queries = RandomReachQueries(g.num_nodes(), 64, 7);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        AnswerOnCompressed(rc, q, PathMode::kReflexive, ReachAlgorithm::kBfs));
  }
}
BENCHMARK(BM_BfsOnGr);

void BM_BfsCsrOnGr(benchmark::State& state) {
  const Graph g = SocialGraph(8000);
  const ReachCompression rc = CompressR(g);
  const CsrGraph frozen(rc.gr);
  const auto queries = RandomReachQueries(g.num_nodes(), 64, 7);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        q.u == q.v || CsrBfsReaches(frozen, rc.node_map[q.u],
                                    rc.node_map[q.v], PathMode::kNonEmpty));
  }
}
BENCHMARK(BM_BfsCsrOnGr);

void BM_TwoHopBuild(benchmark::State& state) {
  const Graph g = SocialGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TwoHopIndex::Build(g));
  }
}
BENCHMARK(BM_TwoHopBuild)->Arg(2000)->Arg(8000);

void BM_TwoHopBuildOnGr(benchmark::State& state) {
  const Graph g = SocialGraph(state.range(0));
  const ReachCompression rc = CompressR(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TwoHopIndex::Build(rc.gr));
  }
}
BENCHMARK(BM_TwoHopBuildOnGr)->Arg(2000)->Arg(8000);

}  // namespace
}  // namespace qpgc
