// Copyright 2026 The QPGC Authors.
//
// Fig. 12(c): pattern matching on synthetic graphs (paper: |V| = 50K,
// |E| = 435K, |L| in {10, 20}; here scaled 5x down), original vs compressed,
// across pattern sizes. Larger |L| means finer bisimulation blocks but also
// fewer candidates per query node — the paper observes Match runs faster
// with |L| = 20.

#include <cstdio>

#include "bench_util.h"
#include "core/pattern_scheme.h"
#include "gen/uniform.h"
#include "pattern/match.h"
#include "pattern/pattern_gen.h"

using namespace qpgc;

int main() {
  bench::Banner("Fig. 12(c) — pattern queries on synthetic graphs",
                "Fan et al., SIGMOD 2012, Fig. 12(c)");
  const size_t kNodes = 10000, kEdges = 87000;  // paper/5
  for (const size_t num_labels : {size_t{10}, size_t{20}}) {
    Graph g = GenerateUniform(kNodes, kEdges, num_labels, 99);
    const PatternCompression pc = CompressB(g);
    const std::vector<Label> labels = DistinctLabels(g);
    std::printf("|L| = %zu (|G| = %zu, |Gr| = %zu, PCr = %s)\n", num_labels,
                g.size(), pc.size(), bench::Pct(pc.CompressionRatio()).c_str());
    std::printf("  %-10s | %12s %12s | %8s\n", "(Vp,Ep,k)", "Match(G)",
                "Match(Gr)+P", "cut");
    for (uint32_t size = 3; size <= 8; ++size) {
      PatternGenOptions options;
      options.num_nodes = size;
      options.num_edges = size;
      options.max_bound = 3;
      double t_g = 0.0, t_gr = 0.0;
      const int kQueries = 4;
      for (int i = 0; i < kQueries; ++i) {
        const PatternQuery q = RandomPattern(labels, options, size * 31 + i);
        t_g += bench::TimeOnce([&] { Match(g, q); });
        t_gr += bench::TimeOnce([&] { MatchOnCompressed(pc, q); });
      }
      std::printf("  (%u,%u,3)    | %12s %12s | %8s\n", size, size,
                  bench::Secs(t_g / kQueries).c_str(),
                  bench::Secs(t_gr / kQueries).c_str(),
                  bench::Pct(1.0 - t_gr / t_g).c_str());
      const std::string prefix =
          "L" + std::to_string(num_labels) + "." + std::to_string(size);
      bench::Metric("match_g_secs." + prefix, t_g / kQueries);
      bench::Metric("match_gr_secs." + prefix, t_gr / kQueries);
    }
    bench::Metric("pcr.L" + std::to_string(num_labels),
                  pc.CompressionRatio());
    std::printf("\n");
  }
  bench::Rule();
  std::printf("expected shape: compressed evaluation wins at every pattern "
              "size; |L| = 20 runs\nfaster than |L| = 10 (more labels = "
              "fewer candidates).\n");
  return 0;
}
