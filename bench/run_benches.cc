// Copyright 2026 The QPGC Authors.
//
// Bench driver: runs each given bench binary, captures its stdout and wall
// time, extracts the `[metric] key=value` lines emitted through
// bench::Metric(), and writes one machine-readable BENCH_<name>.json per
// bench (the leading "bench_" of the executable name is stripped). This is
// what `cmake --build build --target bench` invokes; the JSON files are the
// unit of the perf trajectory tracked across PRs.
//
//   run_benches [--out DIR] <bench-binary>...
//
// Exit code is the number of benches that failed (0 = all green).

#include <sys/wait.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct BenchRun {
  std::string name;         // e.g. "table1_reach_ratio"
  std::string command;      // full path to the binary
  int exit_code = -1;
  double wall_seconds = 0.0;
  std::vector<std::pair<std::string, std::string>> metrics;  // key -> number
  std::vector<std::string> stdout_lines;
};

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string BenchName(const std::string& path) {
  std::string base = Basename(path);
  if (base.rfind("bench_", 0) == 0) base = base.substr(6);
  return base;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Validates that a parsed metric value is a bare JSON number, so a stray
// "[metric] x=nan" cannot corrupt the output file.
bool IsJsonNumber(const std::string& v) {
  if (v.empty()) return false;
  size_t i = (v[0] == '-') ? 1 : 0;
  bool digits = false, dot = false, exp = false;
  for (; i < v.size(); ++i) {
    const char c = v[i];
    if (c >= '0' && c <= '9') {
      digits = true;
    } else if (c == '.' && !dot && !exp) {
      dot = true;
    } else if ((c == 'e' || c == 'E') && digits && !exp) {
      exp = true;
      if (i + 1 < v.size() && (v[i + 1] == '+' || v[i + 1] == '-')) ++i;
      digits = false;
    } else {
      return false;
    }
  }
  return digits;
}

// Splits "[metric] key=value" into its parts; returns false for other lines.
bool ParseMetricLine(const std::string& line, std::string* key,
                     std::string* value) {
  constexpr const char kPrefix[] = "[metric] ";
  if (line.rfind(kPrefix, 0) != 0) return false;
  const std::string rest = line.substr(sizeof(kPrefix) - 1);
  const size_t eq = rest.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *key = rest.substr(0, eq);
  *value = rest.substr(eq + 1);
  return IsJsonNumber(*value);
}

std::string Utc8601Now() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

// Single-quotes a path for /bin/sh, closing and reopening the quote around
// embedded apostrophes so paths like .../fan's-work/... survive popen.
std::string ShellQuote(const std::string& path) {
  std::string out = "'";
  for (const char c : path) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

BenchRun RunOne(const std::string& exe) {
  BenchRun run;
  run.name = BenchName(exe);
  run.command = exe;

  const std::string cmd = ShellQuote(exe) + " 2>&1";
  const auto start = std::chrono::steady_clock::now();
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "run_benches: failed to spawn %s\n", exe.c_str());
    return run;
  }
  std::string current;
  std::array<char, 4096> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    current += buf.data();
    size_t nl;
    while ((nl = current.find('\n')) != std::string::npos) {
      std::string line = current.substr(0, nl);
      current.erase(0, nl + 1);
      // Stream the bench's output as it arrives so a hung or timed-out
      // bench still leaves its partial progress in the log.
      std::printf("%s\n", line.c_str());
      std::fflush(stdout);
      std::string key, value;
      if (ParseMetricLine(line, &key, &value)) {
        run.metrics.emplace_back(std::move(key), std::move(value));
      } else if (line.rfind("[metric] ", 0) == 0) {
        std::fprintf(stderr,
                     "run_benches: %s: malformed metric line dropped from "
                     "JSON: %s\n",
                     run.name.c_str(), line.c_str());
      }
      run.stdout_lines.push_back(std::move(line));
    }
  }
  if (!current.empty()) {
    std::printf("%s\n", current.c_str());
    run.stdout_lines.push_back(current);
  }
  const int status = pclose(pipe);
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (WIFEXITED(status)) {
    run.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    run.exit_code = 128 + WTERMSIG(status);
  }
  return run;
}

bool WriteJson(const BenchRun& run, const std::string& out_dir) {
  const std::string path = out_dir + "/BENCH_" + run.name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "run_benches: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n";
  out << "  \"bench\": \"" << JsonEscape(run.name) << "\",\n";
  out << "  \"command\": \"" << JsonEscape(run.command) << "\",\n";
  out << "  \"timestamp_utc\": \"" << Utc8601Now() << "\",\n";
  out << "  \"exit_code\": " << run.exit_code << ",\n";
  char secs[32];
  std::snprintf(secs, sizeof(secs), "%.6f", run.wall_seconds);
  out << "  \"wall_seconds\": " << secs << ",\n";
  out << "  \"metrics\": {";
  for (size_t i = 0; i < run.metrics.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    \"" << JsonEscape(run.metrics[i].first)
        << "\": " << run.metrics[i].second;
  }
  out << (run.metrics.empty() ? "},\n" : "\n  },\n");
  out << "  \"stdout\": [";
  for (size_t i = 0; i < run.stdout_lines.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    \"" << JsonEscape(run.stdout_lines[i]) << "\"";
  }
  out << (run.stdout_lines.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  std::vector<std::string> benches;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      benches.emplace_back(argv[i]);
    }
  }
  if (benches.empty()) {
    std::fprintf(stderr, "usage: run_benches [--out DIR] <bench-binary>...\n");
    return 2;
  }

  int failures = 0;
  for (const std::string& exe : benches) {
    std::printf("=== run_benches: %s\n", BenchName(exe).c_str());
    std::fflush(stdout);
    const BenchRun run = RunOne(exe);
    const bool wrote = WriteJson(run, out_dir);
    if (run.exit_code != 0 || !wrote) ++failures;
    std::printf("=== %s: exit %d, %.2fs, %zu metrics -> BENCH_%s.json\n\n",
                run.name.c_str(), run.exit_code, run.wall_seconds,
                run.metrics.size(), run.name.c_str());
    std::fflush(stdout);
  }
  if (failures > 0) {
    std::fprintf(stderr, "run_benches: %d bench(es) failed\n", failures);
  }
  return failures;
}
