// Copyright 2026 The QPGC Authors.
//
// Ablation: Paige–Tarjan splitter refinement vs the fixpoint signature
// engine across refinement-depth sweeps. The signature engine pays one
// whole-partition round per unit of depth (Θ(depth · |E|) total); the
// splitter engine stays O(|E| log |V|), so the gap widens linearly with
// depth. Scenarios: unlabeled chains and layered DAGs (the depth ramps the
// acceptance gate measures), plus broom and grid topologies at fixed size.
// Every timed pair is also checked for partition equality, so this bench
// doubles as a large-input differential test.
//
// Metrics: <scenario>.d<depth>.{pt_secs,sig_secs,speedup,blocks} and
// summary.max_depth_speedup for the deepest chain.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "bisim/paige_tarjan.h"
#include "bisim/partition.h"
#include "bisim/signature_bisim.h"
#include "gen/adversarial.h"
#include "graph/graph.h"

namespace qpgc {
namespace {

int failures = 0;

// Times both engines on g, asserts identical partitions, emits metrics.
// Returns the speedup (signature time / Paige–Tarjan time).
double RunCase(const std::string& key, const Graph& g) {
  Partition pt_result, sig_result;
  const double pt_secs =
      bench::TimeOnce([&] { pt_result = PaigeTarjanBisimulation(g); });
  const double sig_secs =
      bench::TimeOnce([&] { sig_result = SignatureBisimulation(g); });
  if (!SamePartition(pt_result, sig_result)) {
    std::printf("!! %s: ENGINE MISMATCH (pt %zu blocks, signature %zu)\n",
                key.c_str(), pt_result.num_blocks, sig_result.num_blocks);
    ++failures;
    return 0.0;
  }
  const double speedup = pt_secs > 0 ? sig_secs / pt_secs : 0.0;
  std::printf("  %-18s |V|=%-7zu |E|=%-7zu blocks=%-7zu pt=%-10s sig=%-10s "
              "speedup=%.1fx\n",
              key.c_str(), g.num_nodes(), g.num_edges(),
              pt_result.num_blocks, bench::Secs(pt_secs).c_str(),
              bench::Secs(sig_secs).c_str(), speedup);
  bench::Metric(key + ".pt_secs", pt_secs);
  bench::Metric(key + ".sig_secs", sig_secs);
  bench::Metric(key + ".speedup", speedup);
  bench::Metric(key + ".blocks", static_cast<double>(pt_result.num_blocks));
  return speedup;
}

}  // namespace
}  // namespace qpgc

int main() {
  using namespace qpgc;

  bench::Banner("ablation: bisimulation engines on deep graphs",
                "compressB complexity, Section 4 (O(|E| log |V|) bound)");

  std::printf("unlabeled chains (refinement depth == |V|):\n");
  double max_depth_speedup = 0.0;
  for (const size_t depth : {size_t{1000}, size_t{4000}, size_t{12000}}) {
    max_depth_speedup = RunCase("chain.d" + std::to_string(depth),
                                LongChain(depth, 1));
  }
  bench::Metric("summary.max_depth_speedup", max_depth_speedup);

  bench::Rule();
  std::printf("layered DAGs (width 8, out-degree 3):\n");
  for (const size_t depth : {size_t{250}, size_t{1000}, size_t{3000}}) {
    RunCase("layered.d" + std::to_string(depth),
            LayeredDag(depth, 8, 3, 42));
  }

  bench::Rule();
  std::printf("fixed-size deep topologies:\n");
  RunCase("broom.d4000", Broom(4000, 4000));
  RunCase("grid.d160", DirectedGrid(80, 80));
  RunCase("tree.d16", CompleteBinaryTree(16));

  bench::Rule();
  if (failures > 0) {
    std::printf("%d case(s) FAILED the differential check\n", failures);
    return 1;
  }
  std::printf("all cases: identical partitions from both engines\n");
  return 0;
}
