// Copyright 2026 The QPGC Authors.
//
// Ablation: Paige–Tarjan splitter refinement vs the fixpoint signature
// engine across refinement-depth sweeps, on both graph representations.
// The signature engine pays one whole-partition round per unit of depth
// (Θ(depth · |E|) total); the splitter engine stays O(|E| log |V|), so the
// gap widens linearly with depth. Each case additionally times the PT
// engine on a frozen CsrGraph snapshot — the batch entry points freeze one
// up front, and the flat in-edge array turns the engine's dense in-edge
// scan from a pointer chase into a contiguous sweep. Scenarios: unlabeled
// chains and layered DAGs (the depth ramps the acceptance gate measures),
// plus broom and grid topologies at fixed size. Every timed pair is also
// checked for partition equality, so this bench doubles as a large-input
// differential test.
//
// `--max-depth=N` (or env QPGC_BENCH_MAX_DEPTH) skips every scenario whose
// refinement depth exceeds N — CI runs a small-depth config of the same
// bench instead of skipping it entirely.
//
// Metrics: <scenario>.d<depth>.{pt_secs,pt_csr_secs,sig_secs,speedup,
// csr_speedup,blocks} and summary.max_depth_speedup for the deepest chain
// that ran. Speedup metrics are wall-clock-derived; bench_diff treats them
// as timing (reported, never gated), so only the structural `blocks`
// metrics gate the regression check.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "bisim/paige_tarjan.h"
#include "bisim/partition.h"
#include "bisim/signature_bisim.h"
#include "gen/adversarial.h"
#include "graph/csr.h"
#include "graph/graph.h"

namespace qpgc {
namespace {

int failures = 0;

// Times both engines on g (PT on the dynamic Graph and on a frozen CSR
// snapshot; signature on the Graph), asserts identical partitions, emits
// metrics. Returns the speedup (signature time / Paige–Tarjan time).
double RunCase(const std::string& key, const Graph& g) {
  const CsrGraph frozen(g);
  Partition pt_result, pt_csr_result, sig_result;
  const double pt_secs =
      bench::TimeOnce([&] { pt_result = PaigeTarjanBisimulation(g); });
  const double pt_csr_secs = bench::TimeOnce(
      [&] { pt_csr_result = PaigeTarjanBisimulation(frozen); });
  const double sig_secs =
      bench::TimeOnce([&] { sig_result = SignatureBisimulation(g); });
  if (!SamePartition(pt_result, sig_result) ||
      !SamePartition(pt_result, pt_csr_result)) {
    std::printf("!! %s: ENGINE MISMATCH (pt %zu blocks, pt-csr %zu, "
                "signature %zu)\n",
                key.c_str(), pt_result.num_blocks, pt_csr_result.num_blocks,
                sig_result.num_blocks);
    ++failures;
    return 0.0;
  }
  const double speedup = pt_secs > 0 ? sig_secs / pt_secs : 0.0;
  const double csr_speedup = pt_csr_secs > 0 ? pt_secs / pt_csr_secs : 0.0;
  std::printf("  %-18s |V|=%-7zu |E|=%-7zu blocks=%-7zu pt=%-9s "
              "pt_csr=%-9s sig=%-9s speedup=%.1fx csr=%.2fx\n",
              key.c_str(), g.num_nodes(), g.num_edges(),
              pt_result.num_blocks, bench::Secs(pt_secs).c_str(),
              bench::Secs(pt_csr_secs).c_str(), bench::Secs(sig_secs).c_str(),
              speedup, csr_speedup);
  bench::Metric(key + ".pt_secs", pt_secs);
  bench::Metric(key + ".pt_csr_secs", pt_csr_secs);
  bench::Metric(key + ".sig_secs", sig_secs);
  bench::Metric(key + ".speedup", speedup);
  bench::Metric(key + ".csr_speedup", csr_speedup);
  bench::Metric(key + ".blocks", static_cast<double>(pt_result.num_blocks));
  return speedup;
}

// Depth cap: --max-depth=N beats QPGC_BENCH_MAX_DEPTH beats "unlimited".
size_t MaxDepth(int argc, char** argv) {
  constexpr const char kFlag[] = "--max-depth=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return static_cast<size_t>(
          std::strtoull(argv[i] + sizeof(kFlag) - 1, nullptr, 10));
    }
  }
  if (const char* env = std::getenv("QPGC_BENCH_MAX_DEPTH")) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return SIZE_MAX;
}

}  // namespace
}  // namespace qpgc

int main(int argc, char** argv) {
  using namespace qpgc;

  const size_t max_depth = MaxDepth(argc, argv);
  bench::Banner("ablation: bisimulation engines on deep graphs",
                "compressB complexity, Section 4 (O(|E| log |V|) bound)");
  if (max_depth != SIZE_MAX) {
    std::printf("depth cap: %zu (--max-depth / QPGC_BENCH_MAX_DEPTH)\n",
                max_depth);
  }

  std::printf("unlabeled chains (refinement depth == |V|):\n");
  double max_depth_speedup = 0.0;
  bool any_chain_ran = false;
  for (const size_t depth : {size_t{1000}, size_t{4000}, size_t{12000}}) {
    if (depth > max_depth) continue;
    max_depth_speedup = RunCase("chain.d" + std::to_string(depth),
                                LongChain(depth, 1));
    any_chain_ran = true;
  }
  // Omitted (not 0.0) when the cap skipped every chain, so bench_diff's
  // --subset-ok reports SKIP instead of a bogus speedup.
  if (any_chain_ran) {
    bench::Metric("summary.max_depth_speedup", max_depth_speedup);
  }

  bench::Rule();
  std::printf("layered DAGs (width 8, out-degree 3):\n");
  for (const size_t depth : {size_t{250}, size_t{1000}, size_t{3000}}) {
    if (depth > max_depth) continue;
    RunCase("layered.d" + std::to_string(depth),
            LayeredDag(depth, 8, 3, 42));
  }

  bench::Rule();
  std::printf("fixed-size deep topologies:\n");
  if (4000 <= max_depth) RunCase("broom.d4000", Broom(4000, 4000));
  if (160 <= max_depth) RunCase("grid.d160", DirectedGrid(80, 80));
  if (16 <= max_depth) RunCase("tree.d16", CompleteBinaryTree(16));

  bench::Rule();
  if (failures > 0) {
    std::printf("%d case(s) FAILED the differential check\n", failures);
    return 1;
  }
  std::printf("all cases: identical partitions across engines and views\n");
  return 0;
}
