// Copyright 2026 The QPGC Authors.
//
// Fig. 12(e): incRCM vs compressR under growing batches of edge
// *insertions* on socEpinions (paper: 12K-edge increments on 509K edges —
// i.e. ~2.4% steps; incRCM wins until insertions reach ~20% of |E|).

#include <cstdio>

#include "bench_util.h"
#include "gen/random_models.h"
#include "gen/update_gen.h"
#include "inc/inc_rcm.h"
#include "reach/compress_r.h"

using namespace qpgc;

int main() {
  bench::Banner("Fig. 12(e) — incRCM vs compressR (insertions)",
                "Fan et al., SIGMOD 2012, Fig. 12(e); crossover ~20% churn");
  // Full-scale socEpinions stand-in (the paper uses the 76K/509K graph;
  // Table 1 uses a scaled copy, but the incremental-vs-batch crossover only
  // shows at real size, where compressR costs hundreds of milliseconds).
  const Graph base = PreferentialAttachment(76000, 4, 0.45, 7);
  const size_t step = base.num_edges() * 24 / 1000;  // ~2.4% per step

  std::printf("%-10s %10s | %12s %12s | %10s %10s\n", "Δ|E|", "Δ/|E|",
              "incRCM", "compressR", "dissolved", "hybrid|V|");
  bench::Rule();
  for (int steps = 1; steps <= 9; ++steps) {
    // Fresh start each round, as in the paper's per-point measurements.
    Graph g = base;
    ReachCompression rc = CompressR(g);
    const UpdateBatch batch =
        RandomInsertions(g, step * steps, 1000 + steps);
    const UpdateBatch effective = ApplyBatch(g, batch);

    IncRcmStats stats;
    const double t_inc =
        bench::TimeOnce([&] { stats = IncRCM(g, effective, rc); });
    const double t_batch = bench::TimeOnce([&] { CompressR(g); });

    std::printf("%-10zu %10s | %12s %12s | %10zu %10zu %s\n", batch.size(),
                bench::Pct(static_cast<double>(batch.size()) /
                           static_cast<double>(base.num_edges()))
                    .c_str(),
                bench::Secs(t_inc).c_str(), bench::Secs(t_batch).c_str(),
                stats.dissolved_classes, stats.hybrid_vertices,
                t_inc < t_batch ? "  <- incRCM wins" : "");
    const std::string suffix = "." + std::to_string(steps);
    bench::Metric("inc_rcm_secs" + suffix, t_inc);
    bench::Metric("compress_r_secs" + suffix, t_batch);
  }
  bench::Rule();
  std::printf("expected shape: incRCM beats compressR for small batches; "
              "advantage shrinks as the\nbatch approaches ~20%% of |E| "
              "(paper's crossover).\n");
  return 0;
}
