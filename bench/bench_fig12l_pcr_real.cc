// Copyright 2026 The QPGC Authors.
//
// Fig. 12(l): PCr as real-life labeled graphs grow (California, Internet,
// Youtube). The paper: PCr *increases* with insertions (new edges diversify
// neighborhoods, breaking bisimilarity), and web graphs are more sensitive
// than social networks.

#include <cstdio>

#include "bench_util.h"
#include "core/pattern_scheme.h"
#include "gen/dataset_catalog.h"
#include "gen/evolution.h"

using namespace qpgc;

int main() {
  bench::Banner("Fig. 12(l) — PCr under power-law growth (real-life)",
                "Fan et al., SIGMOD 2012, Fig. 12(l)");
  const char* datasets[] = {"California", "Internet", "Youtube"};
  std::printf("%-8s | %12s %12s %12s\n", "Δ|E|%", datasets[0], datasets[1],
              datasets[2]);
  bench::Rule();

  Graph graphs[3] = {MakeDataset(FindPatternDataset(datasets[0])),
                     MakeDataset(FindPatternDataset(datasets[1])),
                     MakeDataset(FindPatternDataset(datasets[2]))};
  for (int step = 0; step <= 9; ++step) {
    double ratios[3];
    for (int d = 0; d < 3; ++d) {
      if (step > 0) {
        PowerLawGrowthStep(graphs[d], 0.05, 0.8, 1100 + step * 3 + d);
      }
      ratios[d] = CompressB(graphs[d]).CompressionRatio();
    }
    std::printf("%-8d | %12s %12s %12s\n", step * 5,
                bench::Pct(ratios[0]).c_str(), bench::Pct(ratios[1]).c_str(),
                bench::Pct(ratios[2]).c_str());
    for (int d = 0; d < 3; ++d) {
      bench::Metric(std::string("pcr.") + datasets[d] + "." +
                        std::to_string(step * 5),
                    ratios[d]);
    }
  }
  bench::Rule();
  std::printf("expected shape: PCr creeps upward with growth (bisimilarity "
              "breaks as neighborhoods\ndiversify); the social network "
              "(Youtube) moves least — its high connectivity makes\nmany "
              "insertions redundant.\n");
  return 0;
}
