// Copyright 2026 The QPGC Authors.
//
// Ablation (DESIGN.md §5): how much of compressR's edge saving comes from
// the transitive reduction (the paper's "no redundant edges" optimization,
// Section 3.2 lines 6-8) versus the equivalence quotient alone, and what
// the SCC-collapse pre-pass contributes (the RCscc column of Table 1 views
// the same question from the other side).

#include <cstdio>

#include "bench_util.h"
#include "gen/dataset_catalog.h"
#include "graph/condensation.h"
#include "reach/compress_r.h"

using namespace qpgc;

int main() {
  bench::Banner("Ablation — compressR stages: SCC collapse, quotient, "
                "transitive reduction",
                "Fan et al., SIGMOD 2012, Section 3.2 design choices");
  std::printf("%-12s | %10s %10s %10s %10s | %9s\n", "dataset", "|G|",
              "|Gscc|", "|Gr|noTR", "|Gr|", "TR-saving");
  bench::Rule();
  for (const auto& spec : ReachabilityDatasets()) {
    const Graph g = MakeDataset(spec);
    const Condensation cond = BuildCondensation(g);

    CompressROptions no_tr;
    no_tr.transitive_reduction = false;
    const ReachCompression rc_no_tr = CompressR(g, no_tr);
    const ReachCompression rc = CompressR(g);

    const double tr_saving =
        rc_no_tr.gr.num_edges() == 0
            ? 0.0
            : 1.0 - static_cast<double>(rc.gr.num_edges()) /
                        static_cast<double>(rc_no_tr.gr.num_edges());
    std::printf("%-12s | %10zu %10zu %10zu %10zu | %9s\n", spec.name.c_str(),
                g.size(), cond.dag.size(), rc_no_tr.size(), rc.size(),
                bench::Pct(tr_saving).c_str());
    bench::Metric("tr_saving." + spec.name, tr_saving);
    bench::Metric("gr_size." + spec.name, static_cast<double>(rc.size()));
  }
  bench::Rule();
  std::printf("reading: |Gscc| is the SCC-collapse baseline the paper "
              "reports as RCscc's denominator;\nquotienting equivalence "
              "classes then shrinks nodes, and the transitive reduction "
              "removes\nthe remaining redundant class edges.\n");
  return 0;
}
