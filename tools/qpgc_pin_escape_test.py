#!/usr/bin/env python3
"""Unit tests for tools/qpgc_pin_escape.py, runnable standalone or via ctest.

Each test materializes a small fixture tree in a temp directory (the src/
layout the analyzer expects, plus a compile_commands.json where the
build-dir mode is under test) and asserts the analyzer's verdict — both
that each escape shape is caught with the right rule tag and that every
idiom the repo actually uses (named pins, lifetime-extended pin handles,
value reads through a pin temporary) stays clean. The clean-idiom tests
are the contract that keeps the analyzer from rotting into noise; the
RepositoryIsCleanTest at the bottom keeps the real tree honest.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import qpgc_pin_escape  # noqa: E402


class PinEscapeFixture(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="qpgc_pin_escape_")
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, relpath, content):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path

    def analyze(self, build_dir=None):
        return qpgc_pin_escape.Analyzer(self.root).run_tree(
            build_dir=build_dir)

    def assert_rule(self, violations, rule, path_fragment):
        hits = [v for v in violations if f"[{rule}]" in v
                and path_fragment in v]
        self.assertTrue(
            hits, f"expected a [{rule}] violation mentioning "
            f"{path_fragment}; got: {violations}")


class PinEscapeRuleTest(PinEscapeFixture):
    def test_reference_through_pin_temporary_is_flagged(self):
        self.write("src/serve/use.cc", """\
void F(const SnapshotManager& mgr) {
  const auto& gr = mgr.Acquire()->reach_gr();
  Use(gr);
}
""")
        self.assert_rule(self.analyze(), "pin-escape", "src/serve/use.cc")

    def test_span_through_pin_temporary_is_flagged(self):
        self.write("src/serve/use.cc", """\
void F(const QueryService& svc) {
  std::span<const NodeId> s = svc.Pin()->OutNeighbors(0);
  Use(s);
}
""")
        self.assert_rule(self.analyze(), "pin-escape", "src/serve/use.cc")

    def test_auto_copy_of_span_accessor_is_flagged(self):
        self.write("src/serve/use.cc", """\
void F(const SnapshotManager& mgr) {
  auto members = mgr.Acquire()->pattern_block_members(0);
  Use(members);
}
""")
        self.assert_rule(self.analyze(), "pin-escape", "src/serve/use.cc")

    def test_reference_to_dereferenced_pin_is_flagged(self):
        self.write("src/serve/use.cc", """\
void F(const SnapshotManager& mgr) {
  const ServingSnapshot& snap = *mgr.Acquire();
  Use(snap);
}
""")
        self.assert_rule(self.analyze(), "pin-escape", "src/serve/use.cc")

    def test_return_of_span_from_pin_temporary_is_flagged(self):
        self.write("src/serve/use.cc", """\
std::span<const NodeId> F(const ShardedQueryService& svc) {
  return svc.AcquireAll().shard(0).OutNeighbors(3);
}
""")
        self.assert_rule(self.analyze(), "pin-escape", "src/serve/use.cc")

    def test_named_pin_then_view_is_clean(self):
        self.write("src/serve/use.cc", """\
void F(const SnapshotManager& mgr) {
  const auto snap = mgr.Acquire();
  const auto& gr = snap->reach_gr();
  std::span<const NodeId> s = snap->pattern_block_members(0);
  Use(gr, s);
}
""")
        self.assertEqual(self.analyze(), [])

    def test_lifetime_extended_pin_handle_is_clean(self):
        self.write("src/serve/use.cc", """\
void F(const SnapshotManager& mgr) {
  const auto& snap = mgr.Acquire();
  Use(snap->version());
}
""")
        self.assertEqual(self.analyze(), [])

    def test_value_read_through_pin_temporary_is_clean(self):
        self.write("src/serve/use.cc", """\
bool F(const QueryService& svc, NodeId u, NodeId v) {
  const uint64_t ver = svc.Pin()->version();
  return svc.Pin()->Reach(u, v) && ver > 0;
}
""")
        self.assertEqual(self.analyze(), [])

    def test_value_return_through_pin_temporary_is_clean(self):
        self.write("src/serve/use.cc", """\
size_t F(const SnapshotManager& mgr) {
  return mgr.Acquire()->graph().num_nodes();
}
""")
        self.assertEqual(self.analyze(), [])


class MemberViewStoreTest(PinEscapeFixture):
    def test_span_member_is_flagged(self):
        self.write("src/serve/cache.h", """\
class ResultCache {
 public:
  void Put(std::span<const NodeId> members);
 private:
  std::span<const NodeId> cached_members_;
};
""")
        self.assert_rule(self.analyze(), "member-view-store",
                         "src/serve/cache.h")

    def test_raw_pointer_to_frozen_type_member_is_flagged(self):
        self.write("src/serve/cache.h", """\
class ReachCache {
 private:
  const FrozenReachSide* side_ = nullptr;
};
""")
        self.assert_rule(self.analyze(), "member-view-store",
                         "src/serve/cache.h")

    def test_view_annotated_class_is_exempt(self):
        self.write("src/graph/view.h", """\
class QPGC_GSL_POINTER BlockMembersView {
 private:
  std::span<const NodeId> members_;
};
""")
        self.assertEqual(self.analyze(), [])

    def test_shared_ptr_member_is_clean(self):
        self.write("src/serve/holder.h", """\
class SnapshotHolder {
 private:
  std::shared_ptr<const ServingSnapshot> snap_;
};
""")
        self.assertEqual(self.analyze(), [])

    def test_reference_to_non_frozen_type_member_is_clean(self):
        self.write("src/serve/service.h", """\
class QueryService {
 private:
  const SnapshotManager& manager_;
};
""")
        self.assertEqual(self.analyze(), [])

    def test_static_span_is_flagged(self):
        self.write("src/serve/use.cc", """\
static std::span<const NodeId> g_last_members;
""")
        self.assert_rule(self.analyze(), "member-view-store",
                         "src/serve/use.cc")

    def test_view_type_alias_is_clean(self):
        self.write("src/serve/alias.h", """\
class Quotient {
 public:
  using MemberSpan = std::span<const NodeId>;
};
""")
        self.assertEqual(self.analyze(), [])


class ReturnLocalViewTest(PinEscapeFixture):
    def test_span_over_local_vector_is_flagged(self):
        self.write("src/serve/use.cc", """\
std::span<const NodeId> Exits(const CsrGraph& g) {
  std::vector<NodeId> exits = CollectExits(g);
  return std::span<const NodeId>(exits);
}
""")
        self.assert_rule(self.analyze(), "return-local-view",
                         "src/serve/use.cc")

    def test_reference_to_local_owner_is_flagged(self):
        self.write("src/graph/use.cc", """\
const CsrGraph& Build() {
  CsrGraph g = MakeGraph();
  return g;
}
""")
        self.assert_rule(self.analyze(), "return-local-view",
                         "src/graph/use.cc")

    def test_owner_returned_by_value_is_clean(self):
        self.write("src/graph/use.cc", """\
std::vector<NodeId> Collect(const CsrGraph& g) {
  std::vector<NodeId> out;
  out.push_back(0);
  return out;
}
""")
        self.assertEqual(self.analyze(), [])

    def test_view_over_parameter_is_clean(self):
        self.write("src/graph/use.cc", """\
std::span<const NodeId> Tail(const std::vector<NodeId>& v) {
  return std::span<const NodeId>(v).subspan(1);
}
""")
        self.assertEqual(self.analyze(), [])

    def test_lambda_returning_local_by_value_is_clean(self):
        self.write("src/bisim/use.cc", """\
void F(const CsrGraph& g) {
  const auto sig_of = [&](NodeId v) {
    std::vector<NodeId> sig;
    sig.push_back(v);
    return sig;
  };
  Use(sig_of(0));
}
""")
        self.assertEqual(self.analyze(), [])


class AllowMarkerTest(PinEscapeFixture):
    def test_marker_outside_allowlist_is_flagged(self):
        self.write("src/serve/use.cc", """\
void F(const SnapshotManager& mgr) {
  // qpgc-pin-escape: allow(pin-escape)
  const auto& gr = mgr.Acquire()->reach_gr();
}
""")
        violations = self.analyze()
        self.assert_rule(violations, "allow-marker", "src/serve/use.cc")
        self.assert_rule(violations, "pin-escape", "src/serve/use.cc")

    def test_marker_in_allowlisted_file_is_honored(self):
        self.write("src/serve/use.cc", """\
void F(const SnapshotManager& mgr) {
  // qpgc-pin-escape: allow(pin-escape)
  const auto& gr = mgr.Acquire()->reach_gr();
}
""")
        saved = qpgc_pin_escape.ALLOW_MARKER_FILES
        qpgc_pin_escape.ALLOW_MARKER_FILES = {"src/serve/use.cc"}
        try:
            self.assertEqual(self.analyze(), [])
        finally:
            qpgc_pin_escape.ALLOW_MARKER_FILES = saved


class DriverModeTest(PinEscapeFixture):
    VIOLATION = """\
void F(const SnapshotManager& mgr) {
  const auto& gr = mgr.Acquire()->reach_gr();
}
"""

    def test_build_dir_mode_follows_compile_commands(self):
        in_db = self.write("src/serve/in_db.cc", self.VIOLATION)
        self.write("src/serve/not_in_db.cc", self.VIOLATION)
        build = os.path.join(self.root, "build")
        os.makedirs(build)
        with open(os.path.join(build, "compile_commands.json"), "w",
                  encoding="utf-8") as f:
            json.dump([{"directory": build, "file": in_db,
                        "command": "c++ -c " + in_db}], f)
        violations = self.analyze(build_dir=build)
        self.assert_rule(violations, "pin-escape", "src/serve/in_db.cc")
        self.assertFalse(
            any("not_in_db" in v for v in violations),
            f"sources outside compile_commands must be skipped: "
            f"{violations}")

    def test_build_dir_mode_always_analyzes_headers(self):
        self.write("src/serve/cache.h", """\
class C { std::span<const NodeId> s_; };
""")
        build = os.path.join(self.root, "build")
        os.makedirs(build)
        with open(os.path.join(build, "compile_commands.json"), "w",
                  encoding="utf-8") as f:
            json.dump([], f)
        self.assert_rule(self.analyze(build_dir=build),
                         "member-view-store", "src/serve/cache.h")

    def test_files_mode_analyzes_exactly_the_given_files(self):
        planted = self.write("fixtures/planted.cc", self.VIOLATION)
        violations = qpgc_pin_escape.Analyzer(self.root).run_files([planted])
        self.assert_rule(violations, "pin-escape", "fixtures/planted.cc")


class RepositoryIsCleanTest(unittest.TestCase):
    """The real tree must satisfy its own analyzer (same spirit as the
    dedicated ctest entry: a violation fails here AND there)."""

    def test_repo_is_clean(self):
        repo_root = os.path.normpath(os.path.join(
            os.path.dirname(os.path.abspath(__file__)), os.pardir))
        violations = qpgc_pin_escape.Analyzer(repo_root).run_tree()
        self.assertEqual(violations, [])


if __name__ == "__main__":
    unittest.main()
