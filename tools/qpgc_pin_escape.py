#!/usr/bin/env python3
"""qpgc's pin-escape analyzer: the lifetime dangles annotations cannot see.

Usage:
  tools/qpgc_pin_escape.py [--build-dir BUILD] [ROOT]
  tools/qpgc_pin_escape.py --files FILE [FILE ...]

The Clang lifetime layer (``[[clang::lifetimebound]]`` / GSL Owner+Pointer,
src/util/lifetime_annotations.h) diagnoses dangles that are visible inside
one statement. Three escape shapes are not, because the dangerous step and
the use are separated by a full-expression boundary or a class boundary:

  [pin-escape]        a reference or view (span/string_view/ShardView/
                      ReversedView) local initialized through a *pin
                      temporary* — ``Pin()`` / ``Acquire()`` /
                      ``AcquireAll()`` dereferenced in the same statement
                      without first binding the returned handle to a named
                      local. The shared_ptr dies at the end of the full
                      expression; the view outlives it. Also flags
                      ``return`` of a span/reference derived from a pin
                      temporary inside a view-returning function, and plain
                      ``auto`` copies of span-returning snapshot accessors
                      (copying a span does not extend the owner).

  [member-view-store] a class member (or a static) of view type — std::span,
                      std::string_view, or a raw pointer/reference to a
                      frozen serving type (CsrGraph, ServingSnapshot,
                      FrozenReachSide, FrozenPatternSide,
                      StitchedPatternQuotient, PinnedShards) — in a class
                      that is not itself a view. A stored view outlives
                      every full expression, so nothing ties it to a pin;
                      classes annotated QPGC_GSL_POINTER are exempt (they
                      *are* views; their construction sites are checked by
                      -Wdangling-gsl instead), as are smart-pointer members.

  [return-local-view] a function whose return type is a span or reference
                      and whose return expression names an *owner* local
                      (vector/string/CsrGraph/Graph/frozen sides/...)
                      declared in the function body. -Wreturn-stack-address
                      catches ``return local;`` — this rule catches the span
                      constructed over the local, which the compiler cannot.

Engine: a token/scope analysis over comment- and string-stripped sources
(the same substrate as tools/qpgc_lint.py), not a compiler plugin. The
three rules key on a handful of repo-specific API shapes (the pin
producers and the snapshot accessor names below), which a lexical scope
walker resolves reliably and in milliseconds — and, unlike a libclang
pass, in every environment the repo builds in (the toolchain image has no
libclang; CI legs that do have Clang still run this same engine so local
and CI verdicts agree). The TU list is driven by compile_commands.json
when --build-dir is given (CMake exports it unconditionally; tools/
CMakeLists.txt passes the build dir), so coverage tracks what the build
actually compiles; headers under src/ are always analyzed, since escape
shapes live mostly in inline accessors. Without --build-dir the analyzer
falls back to walking src/ (same header set, source set equal to the
library layout).

Exit status 0 means clean, 1 means violations, one line each in
``path:line: [rule] message`` form — the same contract as qpgc_lint.py, and
registered next to it in ctest and the CI lint job. Negative fixtures under
tests/static_analysis/pin_escape/ prove each rule rejects a planted dangle
(run with --files, registered WILL_FAIL).

Escape hatch: a line (or the line directly below a marker-only comment
line) containing ``qpgc-pin-escape: allow(<rule>)`` is exempt from <rule>,
but markers are honored ONLY in ALLOW_MARKER_FILES below — an allow marker
anywhere else is itself a violation, so every suppression is enumerated and
reviewed here (the policy docs/LIFETIMES.md documents). The sole entry today
is storage/mmap_snapshot.h, whose owner class stores views into state it
itself owns (see the ALLOW_MARKER_FILES comment).
"""

import argparse
import json
import os
import re
import sys

# --- Repo-specific API surface ---------------------------------------------

# Methods returning a pinned handle (shared_ptr). Dereferencing the call
# result directly gives a view whose pin dies with the full expression.
PIN_PRODUCERS = ("Pin", "Acquire", "AcquireAll")

# Snapshot-surface accessors returning std::span: a plain `auto` copy of the
# result is still a view (span copies do not extend the owner).
SPAN_RETURNING = {
    "OutNeighbors", "InNeighbors", "pattern_block_members", "block_members",
}

# Accessors returning references into pinned/owned state: dangerous to
# *return* out of a view-returning function via a pin temporary (binding to
# a plain `auto` local copies, which is safe).
REF_RETURNING = {
    "reach_gr", "pattern_gr", "pattern_map", "pattern_cross_edges",
    "boundary_exits", "labels", "partition", "stitched", "shard", "graph",
    "reach_artifact", "pattern_artifact", "edges", "out_edges", "in_edges",
    "edge", "result", "message", "status", "value",
}

# View types a local or member may not hold untied to an owner.
VIEW_TYPE_RE = re.compile(
    r'\b(?:std::span|std::string_view|ShardView|ReversedView)\b')

# Frozen serving types: raw pointers/references to these may live only
# inside classes that are views themselves (QPGC_GSL_POINTER).
FROZEN_TYPES = (
    "CsrGraph", "ServingSnapshot", "FrozenReachSide", "FrozenPatternSide",
    "StitchedPatternQuotient", "PinnedShards",
)

# Owner types for the return-local-view rule: declaring one of these in a
# function body and returning a view over it is a guaranteed dangle.
OWNER_TYPES = (
    "std::vector", "std::string", "std::array", "std::deque", "std::map",
    "std::set", "std::unordered_map", "std::unordered_set", "CsrGraph",
    "Graph", "FrozenReachSide", "FrozenPatternSide",
    "StitchedPatternQuotient", "MatchResult", "Partition",
    "ReachCompression", "PatternCompression",
)

# A pin producer called with no arguments, possibly wrapped in closing
# parens, then dereferenced in the same expression.
PIN_DEREF_RE = re.compile(
    r'\b(?:' + '|'.join(PIN_PRODUCERS) + r')\s*\(\s*\)\s*\)*\s*(?:->|\.)')
PIN_CALL_RE = re.compile(
    r'\b(?:' + '|'.join(PIN_PRODUCERS) + r')\s*\(\s*\)')
PIN_STAR_DEREF_RE = re.compile(
    r'\*\s*[\w.\->]*\b(?:' + '|'.join(PIN_PRODUCERS) + r')\s*\(\s*\)')
TRAILING_ACCESSOR_RE = re.compile(r'(?:->|\.)\s*(\w+)\s*\(')

MEMBER_VIEW_RE = re.compile(r'\b(?:std::span|std::string_view)\s*[<\s]')
MEMBER_FROZEN_PTR_RE = re.compile(
    r'\b(?:const\s+)?(?:' + '|'.join(FROZEN_TYPES) + r')\s*[*&]\s*\w+\s*'
    r'(?:=[^;]*)?$')
OWNER_LOCAL_RE = re.compile(
    r'^\s*(?:const\s+)?(' + '|'.join(re.escape(t) for t in OWNER_TYPES) +
    r')\s*(?:<.*>)?\s+(\w+)\s*(?:[;={(]|$)')
RETURN_SPAN_TYPE_RE = re.compile(r'std::span\s*<')

CLASS_OPEN_RE = re.compile(r'\b(?:class|struct)\s+(?:QPGC_\w+\s+)*(\w+)')
CONTROL_KEYWORDS = ("if", "for", "while", "switch", "catch", "do", "else",
                    "return")

# Files in which `qpgc-pin-escape: allow(...)` markers are honored;
# additions are reviewed here. MmapSnapshot is the one sanctioned
# self-referential owner: its span members view the mmap it owns (and its
# own decoded_ heap buffers), both address-stable under move, so the views
# can never outlive their owner (docs/STORAGE.md).
ALLOW_MARKER_FILES = {"src/storage/mmap_snapshot.h"}
ALLOW_RE = re.compile(r'qpgc-pin-escape:\s*allow\(([a-z-]+)\)')

STRING_RE = re.compile(r'"(?:\\.|[^"\\])*"')


def strip_comments_and_strings(text):
    """Returns `text` with comments removed and string/char literal
    contents blanked, newlines preserved (so offsets map to lines)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i:i + 2]
        if nxt == "//":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif nxt == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif ch == '"':
            m = STRING_RE.match(text, i)
            if m:
                out.append('""')
                i = m.end()
            else:
                out.append(ch)
                i += 1
        elif ch == "'":
            # Char literal (possibly escaped); leave delimiters.
            j = i + 1
            if j < n and text[j] == "\\":
                j += 1
            j += 1
            if j < n and text[j] == "'":
                out.append("''")
                i = j + 1
            else:
                out.append(ch)
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def segments(code):
    """Splits stripped code into (text, line, kind) segments, where kind is
    'stmt' (ended by ';'), 'open' (ended by '{'), or 'close' ('}'). Paren
    nesting is transparent: a ';' inside for(...) does not split (good
    enough for scope tracking), and '{...}' initializers after '=' or
    'return' do not open scopes."""
    segs = []
    buf = []
    line = 1
    seg_line = None  # line of the segment's first non-whitespace char
    paren = 0
    for ch in code:
        if ch == "\n":
            line += 1
            buf.append(" ")
            continue
        if seg_line is None and not ch.isspace():
            seg_line = line
        if ch in "(":
            paren += 1
        elif ch == ")":
            paren = max(0, paren - 1)
        if paren == 0 and ch in ";{}":
            text = "".join(buf).strip()
            if ch == ";":
                segs.append((text, seg_line, "stmt"))
            elif ch == "{":
                # Brace initializers (`= {...}`, `return {...}`) are part of
                # a statement, not a scope; approximate by treating a '{'
                # directly after '=' or 'return' as plain text.
                tail = text.rstrip()
                if tail.endswith("=") or tail.endswith("return"):
                    buf.append(ch)
                    continue
                segs.append((text, seg_line, "open"))
            else:
                if text:
                    segs.append((text, seg_line, "stmt"))
                segs.append(("", line, "close"))
            buf = []
            seg_line = None
            continue
        buf.append(ch)
    if "".join(buf).strip():
        segs.append(("".join(buf).strip(), seg_line, "stmt"))
    return segs


def parse_decl(stmt):
    """If `stmt` looks like a local/member declaration with an initializer,
    returns (type_str, init_str); otherwise None."""
    m = re.match(
        r'^(?:const\s+)?'
        r'(auto\b|[A-Za-z_][\w:]*(?:\s*<.*?>)?)'    # type
        r'(\s*&{1,2}|\s*\*)?'                        # ref/ptr declarator
        r'\s*\b\w+\s*'                               # name
        r'(?:=|\{|\()'                               # initializer opener
        r'(.*)$', stmt, re.DOTALL)
    if not m:
        return None
    type_str = m.group(1) + (m.group(2) or "")
    if stmt.startswith(("return", "delete", "throw")):
        return None
    prefix = "const " if stmt.lstrip().startswith("const ") else ""
    return prefix + type_str.strip(), m.group(3)


class Frame:
    def __init__(self, kind, **kw):
        self.kind = kind  # 'class' | 'func' | 'other'
        self.__dict__.update(kw)


class Analyzer:
    def __init__(self, root):
        self.root = root
        self.violations = []

    def report(self, relpath, lineno, rule, message):
        self.violations.append(f"{relpath}:{lineno}: [{rule}] {message}")

    # -- file analysis -------------------------------------------------------

    def analyze_file(self, path):
        relpath = os.path.relpath(path, self.root)
        with open(path, encoding="utf-8") as f:
            raw = f.read()

        markers_ok = relpath in ALLOW_MARKER_FILES
        allowed = {}
        for lineno, line in enumerate(raw.splitlines(), start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            if not markers_ok:
                self.report(relpath, lineno, "allow-marker",
                            "qpgc-pin-escape allow() markers are honored "
                            "only in files listed in ALLOW_MARKER_FILES "
                            "(tools/qpgc_pin_escape.py)")
                continue
            allowed.setdefault(lineno, set()).add(m.group(1))
            if line.lstrip().startswith("//"):
                allowed.setdefault(lineno + 1, set()).add(m.group(1))

        def is_allowed(lineno, rule):
            return rule in allowed.get(lineno, set())

        code = strip_comments_and_strings(raw)
        stack = []

        def nearest(kind):
            for frame in reversed(stack):
                if frame.kind == kind:
                    return frame
            return None

        for text, lineno, kind in segments(code):
            if kind == "open":
                stack.append(self._open_frame(text))
                continue
            if kind == "close":
                if stack:
                    stack.pop()
                continue

            # --- stmt ---
            in_class = stack and stack[-1].kind == "class"
            func = nearest("func")

            if in_class:
                self._check_member(relpath, lineno, text, stack[-1],
                                   is_allowed)
            if "static" in text.split() and not in_class:
                self._check_static(relpath, lineno, text, is_allowed)

            if func is not None:
                m = OWNER_LOCAL_RE.match(text)
                if m and "static" not in text[:m.start(2)]:
                    func.owner_locals.add(m.group(2))
                if text.startswith("return") and func.is_view_return:
                    self._check_return(relpath, lineno, text, func,
                                       is_allowed)

            self._check_pin_bind(relpath, lineno, text, func, is_allowed)

    def _open_frame(self, header):
        head = header.strip()
        first = head.split(None, 1)[0] if head else ""
        if (CLASS_OPEN_RE.search(head) and not head.startswith("enum")
                and "(" not in head.split("class")[0].split("struct")[0]):
            return Frame("class",
                         is_view="QPGC_GSL_POINTER" in head
                         or "gsl::Pointer" in head)
        if ("(" in head and ")" in head
                and first not in CONTROL_KEYWORDS
                and not head.startswith("#")):
            before_paren = head.split("(", 1)[0]
            if "=" in before_paren:
                # Lambda (`auto f = [&](...)` ...): the return type, if
                # spelled at all, is the trailing `-> T` after the params.
                ret = head.rsplit(")", 1)[-1]
            else:
                ret = before_paren
            is_view_return = bool(RETURN_SPAN_TYPE_RE.search(ret)) or (
                "&" in ret)
            return Frame("func", is_view_return=is_view_return,
                         owner_locals=set())
        return Frame("other")

    # -- rules ---------------------------------------------------------------

    def _check_member(self, relpath, lineno, stmt, frame, is_allowed):
        if frame.is_view or "(" in stmt or ")" in stmt:
            return
        stmt = re.sub(r'^(?:(?:public|protected|private)\s*:\s*)+', '', stmt)
        if stmt.split(None, 1)[:1] in (["using"], ["typedef"], ["friend"]):
            return  # type aliases / friend decls are not storage
        if MEMBER_VIEW_RE.search(stmt) and not is_allowed(
                lineno, "member-view-store"):
            self.report(
                relpath, lineno, "member-view-store",
                "span/string_view member in a non-view class: nothing ties "
                "a stored view to a live pin — hold the owning shared_ptr "
                "(or annotate the class QPGC_GSL_POINTER if it IS a view)")
        elif MEMBER_FROZEN_PTR_RE.search(stmt) and not is_allowed(
                lineno, "member-view-store"):
            self.report(
                relpath, lineno, "member-view-store",
                "raw pointer/reference member to a frozen serving type in a "
                "non-view class: hold the owning shared_ptr instead "
                "(snapshot sides are retired to the BufferPool when the "
                "last pin drops)")

    def _check_static(self, relpath, lineno, stmt, is_allowed):
        if "(" in stmt or ")" in stmt:
            return
        if (MEMBER_VIEW_RE.search(stmt)
                or MEMBER_FROZEN_PTR_RE.search(stmt)) and not is_allowed(
                lineno, "member-view-store"):
            self.report(
                relpath, lineno, "member-view-store",
                "static of view type / raw frozen-type pointer: a static "
                "outlives every pin by definition")

    def _check_return(self, relpath, lineno, stmt, func, is_allowed):
        expr = stmt[len("return"):]
        for name in func.owner_locals:
            if re.search(r'\b' + re.escape(name) + r'\b', expr):
                if not is_allowed(lineno, "return-local-view"):
                    self.report(
                        relpath, lineno, "return-local-view",
                        f"view-returning function returns a handle derived "
                        f"from function-local owner '{name}' (destroyed at "
                        "return); return the owner by value or take it as "
                        "a parameter")
                return

    def _check_pin_bind(self, relpath, lineno, stmt, func, is_allowed):
        has_arrow_deref = bool(PIN_DEREF_RE.search(stmt))
        has_star_deref = bool(PIN_STAR_DEREF_RE.search(stmt))
        if not (has_arrow_deref or has_star_deref):
            return
        rule = "pin-escape"

        if stmt.startswith("return"):
            # Returning a *value* computed through the pin temporary is
            # fine (the pin covers the full expression), so only functions
            # whose return type is a span/reference can leak here, and only
            # through a known view-deriving accessor.
            if func is None or not func.is_view_return:
                return
            last = None
            for m in TRAILING_ACCESSOR_RE.finditer(stmt):
                last = m.group(1)
            if last in SPAN_RETURNING or last in REF_RETURNING:
                if not is_allowed(lineno, rule):
                    self.report(
                        relpath, lineno, rule,
                        f"returning '{last}' result derived from a pin "
                        "temporary: the pin dies at the end of the full "
                        "expression — bind the pin to a named local whose "
                        "scope covers every use, or return by value")
            return

        decl = parse_decl(stmt)
        if decl is None:
            return  # plain expression statement: full-expression scope only
        type_str, init = decl
        pin_pos = PIN_CALL_RE.search(init or "")
        if pin_pos is None:
            return
        if "&" in type_str and not has_arrow_deref and not has_star_deref:
            return  # `const auto& p = svc.Pin();` lifetime-extends the pin
        if "&" in type_str or VIEW_TYPE_RE.search(type_str):
            if not is_allowed(lineno, rule):
                self.report(
                    relpath, lineno, rule,
                    f"{type_str.strip()} local bound through a pin "
                    "temporary: the shared_ptr returned by "
                    f"{'/'.join(PIN_PRODUCERS)}() dies at the end of the "
                    "full expression — bind the pin to a named local first "
                    "(the pin-scope rule, docs/LIFETIMES.md)")
            return
        if type_str.replace("const", "").strip() == "auto":
            last = None
            for m in TRAILING_ACCESSOR_RE.finditer(init[pin_pos.start():]):
                last = m.group(1)
            if last in SPAN_RETURNING and not is_allowed(lineno, rule):
                self.report(
                    relpath, lineno, rule,
                    f"'auto' copy of span accessor '{last}' through a pin "
                    "temporary: copying a span does not extend the pin — "
                    "bind the pin to a named local first")

    # -- drivers -------------------------------------------------------------

    def run_files(self, files):
        for path in files:
            self.analyze_file(os.path.abspath(path))
        return self.violations

    def run_tree(self, build_dir=None):
        src_root = os.path.join(self.root, "src")
        tus = []
        if build_dir is not None:
            db_path = os.path.join(build_dir, "compile_commands.json")
            with open(db_path, encoding="utf-8") as f:
                db = json.load(f)
            for entry in db:
                path = entry["file"]
                if not os.path.isabs(path):
                    path = os.path.join(entry.get("directory", ""), path)
                path = os.path.normpath(path)
                if path.startswith(src_root + os.sep) and os.path.exists(
                        path):
                    tus.append(path)
        else:
            for dirpath, _, filenames in os.walk(src_root):
                for name in sorted(filenames):
                    if name.endswith(".cc"):
                        tus.append(os.path.join(dirpath, name))
        headers = []
        for dirpath, _, filenames in os.walk(src_root):
            for name in sorted(filenames):
                if name.endswith(".h"):
                    headers.append(os.path.join(dirpath, name))
        for path in sorted(set(tus) | set(headers)):
            self.analyze_file(path)
        return self.violations


def main():
    parser = argparse.ArgumentParser(
        description="qpgc pin-escape analyzer (see module docstring)")
    parser.add_argument("root", nargs="?", default=None,
                        help="repository root (default: the parent of the "
                        "directory containing this script)")
    parser.add_argument("--build-dir", default=None,
                        help="build directory containing "
                        "compile_commands.json; drives the TU list")
    parser.add_argument("--files", nargs="+", default=None,
                        help="analyze exactly these files (fixture mode)")
    args = parser.parse_args()

    root = args.root or os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir))
    analyzer = Analyzer(root)
    if args.files:
        violations = analyzer.run_files(args.files)
    else:
        violations = analyzer.run_tree(build_dir=args.build_dir)
    for v in violations:
        print(v)
    if violations:
        print(f"qpgc_pin_escape: {len(violations)} violation(s)")
        return 1
    print("qpgc_pin_escape: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
