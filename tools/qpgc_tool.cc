// Copyright 2026 The QPGC Authors.
//
// qpgc_tool — command-line front end for the library. Compress SNAP-style
// edge lists offline, inspect artifacts, and serve reachability queries
// from a compressed artifact without ever loading the original graph.
//
//   qpgc_tool stats     <edges> [labels]          graph statistics
//   qpgc_tool compress  <edges> <artifact>        reachability compression
//   qpgc_tool compressb <edges> <labels> <out>    pattern compression
//   qpgc_tool query     <artifact> <u> <v>        QR(u, v) from the artifact
//   qpgc_tool info      <artifact>                artifact summary
//   qpgc_tool save      <edges> [labels] <out>    compress + write a binary
//                       snapshot artifact (storage/format.h). Flags:
//                       --varint (varint adjacency for cold shards),
//                       --index=auto|raw64 (CSR index encoding).
//   qpgc_tool load      <snapshot>                open a snapshot artifact
//                       and print its layout; times the mmap open against
//                       the full deserialize (--mmap serves a probe query
//                       off the mapping).
//   qpgc_tool dataset   <name> <edges-out>        emit a catalog stand-in
//   qpgc_tool serve-sim <edges> [labels]          serving simulation: reader
//                       threads query versioned snapshots while a writer
//                       applies random updates through the incremental layer
//                       and publishes per policy (serve/snapshot_manager.h).
//                       Flags: --readers=N --duration=SECS --batch-size=N
//                       --publish-every=N | --staleness-ms=MS
//                       --zipf-s=S --hot-set=N --cache[=off|exact|full]
//                       --mmap (post-stream A/B: save the final snapshot,
//                       reopen it memory-mapped, and drive the same timed
//                       read window off the mapping vs the in-RAM service)
//
// `serve-sim --zipf-s=S` switches the readers from uniform endpoints to a
// Zipf(S) hot set of --hot-set pairs (serve/load_gen.h), the repetition
// answer caching feeds on. `--cache` runs a post-stream A/B on the final
// version — the same timed read-only window uncached and through the
// serve/answer_cache.h facade — and prints both qps figures plus the hit
// rate (exact=full tiering per docs/CACHING.md; exact disables subsumption
// and the negative match cache).
//
// `compressb` accepts --bisim-engine=paige-tarjan|ranked|signature to pick
// the maximum-bisimulation engine (default paige-tarjan).
//
// `compress` and `serve-sim` accept --shards=K (default 1) and
// --partitioner=hash|contiguous|structure (default hash; docs/SHARDING.md
// discusses the trade-offs): `compress` partitions the graph, runs the
// whole batch pipeline zero-copy over each shard's ShardView
// (graph/shard_view.h), writes one artifact per shard (<out>.shard<i>) and
// prints the per-shard compression and boundary table; `serve-sim` serves
// through a ShardedSnapshotManager behind the routing ShardedQueryService
// (serve/sharded_manager.h, serve/router.h), with the writer stream routed
// per shard.
//
// Both compression commands freeze an immutable CsrGraph snapshot of the
// loaded graph and run the whole batch pipeline on the flat layout (see
// graph/graph_view.h); `stats` reports the snapshot's memory next to the
// dynamic representation's.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bisim/engine.h"
#include "core/pattern_scheme.h"
#include "core/serialization.h"
#include "gen/dataset_catalog.h"
#include "gen/update_gen.h"
#include "graph/csr.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "graph/shard_view.h"
#include "reach/compress_r.h"
#include "reach/queries.h"
#include "serve/answer_cache.h"
#include "serve/load_gen.h"
#include "serve/query_service.h"
#include "serve/router.h"
#include "serve/sharded_manager.h"
#include "serve/snapshot_manager.h"
#include "storage/format.h"
#include "storage/mmap_snapshot.h"
#include "storage/snapshot_io.h"
#include "util/memory.h"
#include "util/timer.h"

namespace {

using namespace qpgc;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  qpgc_tool stats     <edges> [labels]\n"
               "  qpgc_tool compress  [--shards=K] [--partitioner=hash|"
               "contiguous|structure]\n"
               "                      <edges> <artifact-out>\n"
               "  qpgc_tool compressb [--bisim-engine=paige-tarjan|ranked|"
               "signature]\n"
               "                      <edges> <labels> <artifact-out>\n"
               "  qpgc_tool query     <artifact> <u> <v>\n"
               "  qpgc_tool info      <artifact>\n"
               "  qpgc_tool save      [--varint] [--index=auto|raw64]\n"
               "                      <edges> [labels] <snapshot-out>\n"
               "  qpgc_tool load      [--mmap] <snapshot>\n"
               "  qpgc_tool dataset   <name> <edges-out>\n"
               "  qpgc_tool serve-sim <edges> [labels] [--shards=K] "
               "[--partitioner=...]\n"
               "                      [--readers=N] [--duration=SECS]\n"
               "                      [--batch-size=N] [--publish-every=N | "
               "--staleness-ms=MS]\n"
               "                      [--zipf-s=S] [--hot-set=N] "
               "[--cache[=off|exact|full]] [--mmap]\n");
  return 2;
}

Result<Graph> LoadGraphArg(const char* edges, const char* labels) {
  auto loaded = LoadEdgeList(edges);
  if (!loaded.ok()) return loaded;
  if (labels != nullptr) {
    Graph g = std::move(loaded).value();
    const Status s = LoadLabels(g, labels);
    if (!s.ok()) return s;
    return g;
  }
  return loaded;
}

int CmdStats(const char* edges, const char* labels) {
  auto loaded = LoadGraphArg(edges, labels);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Graph& g = loaded.value();
  const CsrGraph frozen(g);
  std::printf("%s\n%s\nmemory: %s dynamic, %s frozen CSR (%.0f%%)\n",
              g.DebugString().c_str(), FormatStats(ComputeStats(g)).c_str(),
              FormatBytes(g.MemoryBytes()).c_str(),
              FormatBytes(frozen.MemoryBytes()).c_str(),
              g.MemoryBytes() == 0
                  ? 100.0
                  : 100.0 * static_cast<double>(frozen.MemoryBytes()) /
                        static_cast<double>(g.MemoryBytes()));
  return 0;
}

int CmdCompress(const char* edges, const char* out, uint32_t shards,
                PartitionerKind partitioner) {
  auto loaded = LoadEdgeList(edges);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Graph& g = loaded.value();
  if (shards <= 1) {
    Timer t;
    const ReachCompression rc = CompressR(g);
    std::printf(
        "compressR: %.1fms;  |G| = %zu -> |Gr| = %zu  (RCr = %.2f%%)\n",
        t.ElapsedMillis(), g.size(), rc.size(), rc.CompressionRatio() * 100);
    const Status s = SaveReachCompression(rc, out);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("artifact written to %s\n", out);
    return 0;
  }

  // Sharded compression: the whole batch pipeline runs zero-copy over each
  // shard's ShardView; one artifact per shard.
  if (!LabelsShardable(g)) {
    std::fprintf(stderr,
                 "compress: labels exceed the shardable range (every label "
                 "must be below %u)\n",
                 kGhostLabelBase);
    return 1;
  }
  const ShardPartition part = BuildPartition(partitioner, g, shards, 0);
  std::printf("partitioner: %s\n", PartitionerKindName(partitioner));
  std::printf("%-6s %10s %10s %12s %8s %12s %12s\n", "shard", "|V_own|",
              "|G_s|", "|Gr_s|", "RCr", "cross-out", "boundary-in");
  size_t total_gr = 0;
  for (uint32_t s = 0; s < shards; ++s) {
    Timer t;
    const ShardView<Graph> view(g, part, s);
    const ReachCompression rc = CompressR(view);
    total_gr += rc.size();
    size_t cross = 0;
    std::vector<uint8_t> boundary(g.num_nodes(), 0);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (!part.Owns(s, u)) continue;
      for (const NodeId v : g.OutNeighbors(u)) {
        if (!part.Owns(s, v)) {
          ++cross;
          boundary[v] = 1;
        }
      }
    }
    size_t boundary_nodes = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) boundary_nodes += boundary[v];
    const std::string shard_out =
        std::string(out) + ".shard" + std::to_string(s);
    const Status status = SaveReachCompression(rc, shard_out.c_str());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("%-6u %10zu %10zu %12zu %7.2f%% %12zu %12zu  (%.1fms -> %s)\n",
                s, part.OwnedNodes(s).size(), ViewSize(view), rc.size(),
                rc.CompressionRatio() * 100, cross, boundary_nodes,
                t.ElapsedMillis(), shard_out.c_str());
  }
  std::printf("sum |Gr_s| = %zu over K = %u shards (|G| = %zu)\n", total_gr,
              shards, g.size());
  return 0;
}

int CmdCompressB(const char* edges, const char* labels, const char* out,
                 BisimEngine engine) {
  auto loaded = LoadGraphArg(edges, labels);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Graph& g = loaded.value();
  Timer t;
  CompressBOptions options;
  options.engine = engine;
  const PatternCompression pc = CompressB(g, options);
  std::printf(
      "compressB[%s]: %.1fms;  |G| = %zu -> |Gr| = %zu  (PCr = %.2f%%)\n",
      BisimEngineName(engine), t.ElapsedMillis(), g.size(), pc.size(),
      pc.CompressionRatio() * 100);
  const Status s = SavePatternCompression(pc, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("artifact written to %s\n", out);
  return 0;
}

int CmdQuery(const char* artifact, const char* u_str, const char* v_str) {
  auto loaded = LoadReachCompression(artifact);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const ReachCompression& rc = loaded.value();
  const unsigned long u = std::strtoul(u_str, nullptr, 10);
  const unsigned long v = std::strtoul(v_str, nullptr, 10);
  if (u >= rc.node_map.size() || v >= rc.node_map.size()) {
    std::fprintf(stderr, "node out of range (|V| = %zu)\n",
                 rc.node_map.size());
    return 1;
  }
  const ReachQuery q{static_cast<NodeId>(u), static_cast<NodeId>(v)};
  const bool answer =
      AnswerOnCompressed(rc, q, PathMode::kReflexive, ReachAlgorithm::kBfs);
  std::printf("QR(%lu, %lu) = %s   [rewritten to QR(%u, %u) on Gr]\n", u, v,
              answer ? "true" : "false", rc.node_map[q.u], rc.node_map[q.v]);
  return 0;
}

int CmdInfo(const char* artifact) {
  auto rc = LoadReachCompression(artifact);
  if (rc.ok()) {
    const ReachCompression& r = rc.value();
    std::printf("reachability artifact: %s\n", r.gr.DebugString().c_str());
    std::printf("original |V| = %zu, |G| = %zu, RCr = %.2f%%\n",
                r.original_num_nodes, r.original_size,
                r.CompressionRatio() * 100);
    std::printf("memory: %s\n", FormatBytes(r.MemoryBytes()).c_str());
    return 0;
  }
  auto pc = LoadPatternCompression(artifact);
  if (pc.ok()) {
    const PatternCompression& p = pc.value();
    std::printf("pattern artifact: %s\n", p.gr.DebugString().c_str());
    std::printf("original |V| = %zu, |G| = %zu, PCr = %.2f%%\n",
                p.original_num_nodes, p.original_size,
                p.CompressionRatio() * 100);
    std::printf("memory: %s\n", FormatBytes(p.MemoryBytes()).c_str());
    return 0;
  }
  std::fprintf(stderr, "not a qpgc artifact: %s\n", artifact);
  return 1;
}

// --- save / load -----------------------------------------------------------

int CmdSave(const std::vector<const char*>& args) {
  storage::SaveOptions options;
  std::vector<const char*> pos;
  for (const char* arg : args) {
    if (arg[0] == '-') {
      if (std::strcmp(arg, "--varint") == 0) {
        options.varint_adjacency = true;
        continue;
      }
      if (std::strcmp(arg, "--index=auto") == 0) {
        options.index_encoding = storage::IndexEncoding::kAuto;
        continue;
      }
      if (std::strcmp(arg, "--index=raw64") == 0) {
        options.index_encoding = storage::IndexEncoding::kRaw64;
        continue;
      }
      std::fprintf(stderr, "save: unknown flag '%s'\n", arg);
      return Usage();
    }
    pos.push_back(arg);
  }
  if (pos.size() != 2 && pos.size() != 3) return Usage();
  auto loaded = LoadGraphArg(pos[0], pos.size() == 3 ? pos[1] : nullptr);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Graph g = std::move(loaded).value();
  Timer compress_timer;
  SnapshotManager manager(std::move(g));
  const auto snap = manager.Acquire();
  const double compress_ms = compress_timer.ElapsedMillis();
  Timer save_timer;
  const Status saved = storage::SaveSnapshot(*snap, pos.back(), options);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  const double save_ms = save_timer.ElapsedMillis();
  // Reopen through the trusted fast path: reports the exact artifact length
  // and proves the file round-trips before we claim success.
  auto reopened = storage::MmapSnapshot::Open(pos.back());
  if (!reopened.ok()) {
    std::fprintf(stderr, "save: artifact fails to reopen: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "compressed in %.1fms (|Gr(reach)| = %zu, |Gr(pattern)| = %zu), "
      "saved in %.1fms\n"
      "snapshot artifact: %s (%s in RAM, index=%s%s)\n",
      compress_ms, snap->reach_gr().size(), snap->pattern_gr().size(), save_ms,
      FormatBytes(reopened.value().MappedBytes()).c_str(),
      FormatBytes(snap->MemoryBytes()).c_str(),
      options.index_encoding == storage::IndexEncoding::kRaw64 ? "raw64"
                                                               : "auto",
      options.varint_adjacency ? ", varint adjacency" : "");
  std::printf("artifact written to %s\n", pos.back());
  return 0;
}

const char* SectionKindName(uint32_t kind) {
  switch (static_cast<storage::SectionKind>(kind)) {
    case storage::SectionKind::kReachOutOffsets: return "reach.out.offsets";
    case storage::SectionKind::kReachOutTargets: return "reach.out.targets";
    case storage::SectionKind::kReachInOffsets: return "reach.in.offsets";
    case storage::SectionKind::kReachInTargets: return "reach.in.targets";
    case storage::SectionKind::kReachLabels: return "reach.labels";
    case storage::SectionKind::kReachNodeMap: return "reach.node_map";
    case storage::SectionKind::kPatternOutOffsets: return "pattern.out.offsets";
    case storage::SectionKind::kPatternOutTargets: return "pattern.out.targets";
    case storage::SectionKind::kPatternInOffsets: return "pattern.in.offsets";
    case storage::SectionKind::kPatternInTargets: return "pattern.in.targets";
    case storage::SectionKind::kPatternLabels: return "pattern.labels";
    case storage::SectionKind::kPatternNodeMap: return "pattern.node_map";
    case storage::SectionKind::kMemberOffsets: return "member.offsets";
    case storage::SectionKind::kMemberFlat: return "member.flat";
    case storage::SectionKind::kCrossEdges: return "cross_edges";
    case storage::SectionKind::kBoundaryExits: return "boundary.exits";
    case storage::SectionKind::kBoundaryEntries: return "boundary.entries";
    case storage::SectionKind::kPartitionShardOf: return "partition.shard_of";
  }
  return "unknown";
}

const char* SectionEncodingName(uint32_t encoding) {
  switch (static_cast<storage::SectionEncoding>(encoding)) {
    case storage::SectionEncoding::kRaw64: return "raw64";
    case storage::SectionEncoding::kRaw32: return "raw32";
    case storage::SectionEncoding::kDelta16: return "delta16";
    case storage::SectionEncoding::kVarint: return "varint";
    case storage::SectionEncoding::kConstU32: return "const";
  }
  return "unknown";
}

int CmdLoad(const std::vector<const char*>& args) {
  bool mmap_probe = false;
  const char* path = nullptr;
  for (const char* arg : args) {
    if (std::strcmp(arg, "--mmap") == 0) {
      mmap_probe = true;
      continue;
    }
    if (arg[0] == '-' || path != nullptr) {
      std::fprintf(stderr, "load: unknown argument '%s'\n", arg);
      return Usage();
    }
    path = arg;
  }
  if (path == nullptr) return Usage();

  Timer mmap_timer;
  auto mapped = storage::MmapSnapshot::Open(path);
  if (!mapped.ok()) {
    std::fprintf(stderr, "%s\n", mapped.status().ToString().c_str());
    return 1;
  }
  const double mmap_ms = mmap_timer.ElapsedMillis();
  const storage::MmapSnapshot snap = std::move(mapped).value();

  std::printf(
      "snapshot artifact %s: format v%u, snapshot version %llu\n"
      "original |V| = %zu, shard %u of %u, |Gr(reach)| = %zu, "
      "|Gr(pattern)| = %zu\n",
      path, storage::kFormatVersion,
      static_cast<unsigned long long>(snap.version()),
      snap.original_num_nodes(), snap.shard(), snap.num_shards(),
      snap.reach_gr().size(), snap.pattern_gr().size());

  // Section table: layout, per-section encoding, and stored footprint.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    auto parsed = storage::ParseArtifact(
        {reinterpret_cast<const std::byte*>(raw.data()), raw.size()},
        /*verify_payload_checksums=*/false);
    if (parsed.ok()) {
      std::printf("%-20s %-8s %10s %12s %10s\n", "section", "encoding",
                  "elements", "stored", "offset");
      for (const storage::SectionEntry& entry : parsed.value().table) {
        std::printf("%-20s %-8s %10llu %12s %10llu\n",
                    SectionKindName(entry.kind),
                    SectionEncodingName(entry.encoding),
                    static_cast<unsigned long long>(entry.element_count),
                    FormatBytes(entry.stored_bytes).c_str(),
                    static_cast<unsigned long long>(entry.offset));
      }
    }
  }

  Timer full_timer;
  auto full = storage::LoadServingSnapshot(path);
  if (!full.ok()) {
    std::fprintf(stderr, "%s\n", full.status().ToString().c_str());
    return 1;
  }
  const double full_ms = full_timer.ElapsedMillis();
  std::printf(
      "mmap open: %.2fms (%s mapped, %s decoded to heap)\n"
      "full deserialize (verified): %.2fms (%s in RAM) — mmap is %.1fx "
      "faster to first byte\n",
      mmap_ms, FormatBytes(snap.MappedBytes()).c_str(),
      FormatBytes(snap.DecodedHeapBytes()).c_str(), full_ms,
      FormatBytes(full.value().snapshot->MemoryBytes()).c_str(),
      mmap_ms > 0 ? full_ms / mmap_ms : 0.0);

  if (mmap_probe && snap.original_num_nodes() > 0) {
    const NodeId u = 0;
    const NodeId v = static_cast<NodeId>(snap.original_num_nodes() - 1);
    Timer probe_timer;
    const bool answer = snap.Reach(u, v);
    std::printf("probe off the mapping: QR(%u, %u) = %s (%.0fus cold)\n", u, v,
                answer ? "true" : "false", probe_timer.ElapsedMillis() * 1e3);
  }
  return 0;
}

// --- serve-sim -------------------------------------------------------------

enum class CacheMode { kOff, kExact, kFull };

struct ServeSimOptions {
  const char* edges = nullptr;
  const char* labels = nullptr;
  size_t readers = 2;
  size_t shards = 1;
  double duration_secs = 2.0;
  size_t batch_size = 16;
  // Policy: every-N unless a staleness bound is given.
  size_t publish_every = 64;
  double staleness_ms = -1.0;
  // Workload: uniform endpoints unless --zipf-s is given.
  double zipf_s = -1.0;
  size_t hot_set = 1024;
  CacheMode cache = CacheMode::kOff;
  bool mmap_ab = false;
  PartitionerKind partitioner = PartitionerKind::kHash;
};

// Adapts an opened MmapSnapshot to the Pin() service concept RunTimedLoad
// drives (serve/load_gen.h): pinning is a no-op — the artifact is one
// immutable version.
struct MmapService {
  std::shared_ptr<const storage::MmapSnapshot> snap;
  std::shared_ptr<const storage::MmapSnapshot> Pin() const { return snap; }
};

bool ParseSizeFlag(const char* arg, const char* name, size_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = static_cast<size_t>(std::strtoul(arg + len, nullptr, 10));
  return true;
}

bool ParseDoubleFlag(const char* arg, const char* name, double* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = std::strtod(arg + len, nullptr);
  return true;
}

// The --cache A/B: one timed read-only reach window against the plain
// service, the same window (same workload, same seeds) through the caching
// facade, and the facade's counters. Runs after the update stream so both
// sides see the identical final version.
template <typename Service, typename CachedService>
void RunCacheComparison(const Service& uncached, const CachedService& cached,
                        const ReaderWorkload& workload, double window_secs,
                        size_t readers) {
  const double uncached_qps =
      RunTimedLoad(uncached, /*patterns=*/{}, workload, window_secs,
                   static_cast<int>(readers))
          .reach_qps();
  const double cached_qps =
      RunTimedLoad(cached, /*patterns=*/{}, workload, window_secs,
                   static_cast<int>(readers))
          .reach_qps();
  const CacheStats stats = cached.cache_stats();
  std::printf(
      "cache A/B: %.0f reach/s uncached, %.0f reach/s cached (%.2fx) over "
      "%.2fs windows\n"
      "           hit rate %.3f (%llu exact, %llu subsumption, %llu misses, "
      "%llu evictions)\n",
      uncached_qps, cached_qps,
      uncached_qps > 0 ? cached_qps / uncached_qps : 0.0, window_secs,
      stats.ReachHitRate(),
      static_cast<unsigned long long>(stats.reach_exact_hits),
      static_cast<unsigned long long>(stats.reach_subsumption_hits),
      static_cast<unsigned long long>(stats.reach_misses),
      static_cast<unsigned long long>(stats.reach_evictions));
}

int CmdServeSim(const std::vector<const char*>& args) {
  ServeSimOptions opts;
  for (const char* arg : args) {
    if (arg[0] == '-') {
      if (ParseSizeFlag(arg, "--readers=", &opts.readers) ||
          ParseSizeFlag(arg, "--shards=", &opts.shards) ||
          ParseSizeFlag(arg, "--batch-size=", &opts.batch_size) ||
          ParseSizeFlag(arg, "--publish-every=", &opts.publish_every) ||
          ParseSizeFlag(arg, "--hot-set=", &opts.hot_set) ||
          ParseDoubleFlag(arg, "--duration=", &opts.duration_secs) ||
          ParseDoubleFlag(arg, "--staleness-ms=", &opts.staleness_ms) ||
          ParseDoubleFlag(arg, "--zipf-s=", &opts.zipf_s)) {
        continue;
      }
      if (std::strcmp(arg, "--cache") == 0 ||
          std::strcmp(arg, "--cache=full") == 0) {
        opts.cache = CacheMode::kFull;
        continue;
      }
      if (std::strcmp(arg, "--cache=exact") == 0) {
        opts.cache = CacheMode::kExact;
        continue;
      }
      if (std::strcmp(arg, "--cache=off") == 0) {
        opts.cache = CacheMode::kOff;
        continue;
      }
      if (std::strcmp(arg, "--mmap") == 0) {
        opts.mmap_ab = true;
        continue;
      }
      constexpr const char kPartitionerFlag[] = "--partitioner=";
      if (std::strncmp(arg, kPartitionerFlag,
                       sizeof(kPartitionerFlag) - 1) == 0) {
        const char* value = arg + sizeof(kPartitionerFlag) - 1;
        if (!ParsePartitionerKind(value, &opts.partitioner)) {
          std::fprintf(stderr, "serve-sim: unknown partitioner '%s'\n", value);
          return Usage();
        }
        continue;
      }
      std::fprintf(stderr, "serve-sim: unknown flag '%s'\n", arg);
      return Usage();
    }
    if (opts.edges == nullptr) {
      opts.edges = arg;
    } else if (opts.labels == nullptr) {
      opts.labels = arg;
    } else {
      return Usage();
    }
  }
  if (opts.edges == nullptr || opts.readers == 0 || opts.shards == 0 ||
      opts.batch_size == 0 || opts.publish_every == 0 || opts.hot_set == 0) {
    return Usage();
  }

  auto loaded = LoadGraphArg(opts.edges, opts.labels);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Graph g = std::move(loaded).value();
  if (g.num_nodes() == 0) {
    std::fprintf(stderr, "serve-sim: empty graph\n");
    return 1;
  }

  SnapshotManagerOptions manager_options;
  if (opts.staleness_ms >= 0) {
    manager_options.policy =
        PublishPolicy::StalenessBounded(opts.staleness_ms / 1e3);
    std::printf("policy: staleness-bounded (%.1fms)\n", opts.staleness_ms);
  } else {
    manager_options.policy = PublishPolicy::EveryNUpdates(opts.publish_every);
    std::printf("policy: every %zu effective updates\n", opts.publish_every);
  }

  ReaderWorkload workload;
  if (opts.zipf_s > 0) {
    workload = ReaderWorkload::ZipfHotSet(opts.zipf_s, opts.hot_set);
    std::printf("workload: Zipf(s = %.2f) hot set of %zu pairs\n", opts.zipf_s,
                opts.hot_set);
  } else {
    std::printf("workload: uniform endpoints\n");
  }
  const AnswerCacheOptions cache_options = opts.cache == CacheMode::kExact
                                               ? AnswerCacheOptions::ExactOnly()
                                               : AnswerCacheOptions{};

  // Boolean-match load only runs on labeled graphs (ServeLoadPatterns
  // returns an empty set otherwise); reach load always runs.
  const std::vector<PatternQuery> patterns = ServeLoadPatterns(g, 4, 19);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reach_queries{0};
  std::atomic<uint64_t> match_queries{0};
  std::vector<std::thread> readers;
  readers.reserve(opts.readers);

  if (opts.shards > 1) {
    // Sharded serving: K per-shard managers behind the routing service;
    // the writer stream is routed per shard by the manager facade, with a
    // mirror graph as the update-sampling source of truth.
    if (!LabelsShardable(g)) {
      std::fprintf(stderr,
                   "serve-sim: labels exceed the shardable range (every "
                   "label must be below %u)\n",
                   kGhostLabelBase);
      return 1;
    }
    ShardedManagerOptions sharded_options;
    sharded_options.num_shards = static_cast<uint32_t>(opts.shards);
    sharded_options.partitioner = opts.partitioner;
    sharded_options.shard_options = manager_options;
    Graph mirror = g;
    std::printf("%s; building %zu shard snapshots (%s partition)...\n",
                g.DebugString().c_str(), opts.shards,
                PartitionerKindName(opts.partitioner));
    Timer build_timer;
    ShardedSnapshotManager manager(g, sharded_options);
    const ShardedQueryService service(manager);
    size_t snapshot_bytes = 0;
    for (const auto& snap : manager.AcquireAll()) {
      snapshot_bytes += snap->MemoryBytes();
    }
    std::printf("version 1 live on every shard after %.1fms (snapshots %s)\n",
                build_timer.ElapsedMillis(),
                FormatBytes(snapshot_bytes).c_str());

    for (size_t r = 0; r < opts.readers; ++r) {
      readers.emplace_back([&, r] {
        const ReaderLoadCounters counters =
            RunReaderLoad(service, patterns, 100 + r, done, workload);
        reach_queries.fetch_add(counters.reach_queries,
                                std::memory_order_relaxed);
        match_queries.fetch_add(counters.match_queries,
                                std::memory_order_relaxed);
      });
    }

    size_t updates = 0, batches = 0, publishes = 0;
    Timer window;
    while (window.ElapsedSeconds() < opts.duration_secs) {
      const UpdateBatch batch =
          RandomMixed(mirror, opts.batch_size, 0.55, 7000 + batches);
      ApplyBatch(mirror, batch);
      const ShardedApplyStats stats = manager.Apply(batch);
      ++batches;
      updates += stats.effective_updates;
      publishes += stats.publishes;
    }
    const double elapsed = window.ElapsedSeconds();
    done.store(true, std::memory_order_relaxed);
    for (auto& t : readers) t.join();

    std::printf(
        "\n--- %.2fs sharded simulation (K = %zu) ---\n"
        "updates:   %zu effective in %zu batches (%.0f updates/s)\n"
        "publishes: %zu during stream\n"
        "queries:   %llu routed reach (%.0f/s), %llu boolean-match (%.0f/s) "
        "across %zu readers\n",
        elapsed, opts.shards, updates, batches,
        static_cast<double>(updates) / elapsed, publishes,
        static_cast<unsigned long long>(reach_queries.load()),
        static_cast<double>(reach_queries.load()) / elapsed,
        static_cast<unsigned long long>(match_queries.load()),
        static_cast<double>(match_queries.load()) / elapsed, opts.readers);
    for (uint32_t s = 0; s < manager.num_shards(); ++s) {
      const auto snap = manager.shard(s).Acquire();
      std::printf(
          "shard %-3u version %llu, boundary exits %zu, |Gr(reach)| = %zu, "
          "|Gr(pattern)| = %zu\n",
          s, static_cast<unsigned long long>(snap->version()),
          snap->boundary_exits().size(), snap->reach_gr().size(),
          snap->pattern_gr().size());
    }
    if (opts.cache != CacheMode::kOff) {
      const CachedShardedQueryService cached(manager, cache_options);
      RunCacheComparison(service, cached, workload,
                         std::min(opts.duration_secs, 1.0), opts.readers);
    }
    if (opts.mmap_ab) {
      std::fprintf(stderr,
                   "serve-sim: --mmap A/B runs unsharded only (use "
                   "bench_storage for per-shard artifacts)\n");
    }
    return 0;
  }

  std::printf("%s; building initial snapshot...\n", g.DebugString().c_str());
  Timer build_timer;
  SnapshotManager manager(std::move(g), manager_options);
  const QueryService service(manager);
  std::printf("version 1 live after %.1fms (snapshot %s)\n",
              build_timer.ElapsedMillis(),
              FormatBytes(manager.Acquire()->MemoryBytes()).c_str());

  for (size_t r = 0; r < opts.readers; ++r) {
    readers.emplace_back([&, r] {
      const ReaderLoadCounters counters =
          RunReaderLoad(service, patterns, 100 + r, done, workload);
      reach_queries.fetch_add(counters.reach_queries,
                              std::memory_order_relaxed);
      match_queries.fetch_add(counters.match_queries,
                              std::memory_order_relaxed);
    });
  }

  // Writer: this thread. Apply random mixed batches until the clock runs
  // out; the policy decides when versions go live.
  size_t updates = 0, batches = 0, publishes = 0;
  double max_staleness = 0.0;
  Timer window;
  while (window.ElapsedSeconds() < opts.duration_secs) {
    const UpdateBatch batch =
        RandomMixed(manager.graph(), opts.batch_size, 0.55, 7000 + batches);
    const ApplyStats stats = manager.Apply(batch);
    ++batches;
    updates += stats.effective_updates;
    if (stats.published) ++publishes;
    if (manager.staleness_secs() > max_staleness) {
      max_staleness = manager.staleness_secs();
    }
  }
  const double elapsed = window.ElapsedSeconds();
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  const auto final_snap = manager.Acquire();
  std::printf(
      "\n--- %.2fs simulation ---\n"
      "updates:   %zu effective in %zu batches (%.0f updates/s)\n"
      "publishes: %zu during stream, final version %llu, max staleness "
      "%.1fms\n"
      "queries:   %llu reach (%.0f/s), %llu boolean-match (%.0f/s) across "
      "%zu readers\n"
      "snapshot:  %s, |Gr(reach)| = %zu, |Gr(pattern)| = %zu\n",
      elapsed, updates, batches, static_cast<double>(updates) / elapsed,
      publishes, static_cast<unsigned long long>(final_snap->version()),
      max_staleness * 1e3,
      static_cast<unsigned long long>(reach_queries.load()),
      static_cast<double>(reach_queries.load()) / elapsed,
      static_cast<unsigned long long>(match_queries.load()),
      static_cast<double>(match_queries.load()) / elapsed, opts.readers,
      FormatBytes(final_snap->MemoryBytes()).c_str(),
      final_snap->reach_gr().size(), final_snap->pattern_gr().size());
  if (opts.cache != CacheMode::kOff) {
    const CachedQueryService cached(manager, cache_options);
    RunCacheComparison(service, cached, workload,
                       std::min(opts.duration_secs, 1.0), opts.readers);
  }
  if (opts.mmap_ab) {
    // Post-stream out-of-core A/B: persist the final version, reopen it
    // memory-mapped, and drive the identical timed read window off the
    // mapping vs the in-RAM service.
    const std::string snap_path =
        (std::filesystem::temp_directory_path() / "qpgc_serve_sim.snap")
            .string();
    const Status saved = storage::SaveSnapshot(*final_snap, snap_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    Timer open_timer;
    auto mapped = storage::MmapSnapshot::Open(snap_path);
    if (!mapped.ok()) {
      std::fprintf(stderr, "%s\n", mapped.status().ToString().c_str());
      return 1;
    }
    const double open_ms = open_timer.ElapsedMillis();
    const MmapService mmap_service{std::make_shared<const storage::MmapSnapshot>(
        std::move(mapped).value())};
    const double window = std::min(opts.duration_secs, 1.0);
    const double ram_qps =
        RunTimedLoad(service, /*patterns=*/{}, workload, window,
                     static_cast<int>(opts.readers))
            .reach_qps();
    const double mmap_qps =
        RunTimedLoad(mmap_service, /*patterns=*/{}, workload, window,
                     static_cast<int>(opts.readers))
            .reach_qps();
    std::printf(
        "mmap A/B: %.0f reach/s in-RAM, %.0f reach/s off the mapping "
        "(%.2fx) over %.2fs windows\n"
        "          artifact %s (%s), opened in %.2fms (%s decoded to heap)\n",
        ram_qps, mmap_qps, ram_qps > 0 ? mmap_qps / ram_qps : 0.0, window,
        snap_path.c_str(),
        FormatBytes(mmap_service.snap->MappedBytes()).c_str(), open_ms,
        FormatBytes(mmap_service.snap->DecodedHeapBytes()).c_str());
    std::remove(snap_path.c_str());
  }
  return 0;
}

int CmdDataset(const char* name, const char* out) {
  const Graph g = MakeDataset(FindDataset(name));
  const Status s = SaveEdgeList(g, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s stand-in written to %s (%s)\n", name, out,
              g.DebugString().c_str());
  if (g.CountDistinctLabels() > 1) {
    const std::string label_path = std::string(out) + ".labels";
    if (SaveLabels(g, label_path).ok()) {
      std::printf("labels written to %s\n", label_path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --bisim-engine=<name> (and, for `compress`, --shards=K and
  // --partitioner=<name>) wherever they appear; positional arguments keep
  // their order. serve-sim parses its own flags, --shards and --partitioner
  // included; any other command sees them as positional and fails usage
  // instead of silently ignoring them.
  BisimEngine engine = BisimEngine::kPaigeTarjan;
  uint32_t shards = 1;
  PartitionerKind partitioner = PartitionerKind::kHash;
  std::vector<const char*> args;
  const bool is_compress = argc > 1 && std::strcmp(argv[1], "compress") == 0;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kEngineFlag[] = "--bisim-engine=";
    if (std::strncmp(argv[i], kEngineFlag, sizeof(kEngineFlag) - 1) == 0) {
      const char* value = argv[i] + sizeof(kEngineFlag) - 1;
      if (!ParseBisimEngine(value, &engine)) {
        std::fprintf(stderr, "unknown bisim engine '%s'\n", value);
        return Usage();
      }
      continue;
    }
    constexpr const char kShardsFlag[] = "--shards=";
    if (is_compress &&
        std::strncmp(argv[i], kShardsFlag, sizeof(kShardsFlag) - 1) == 0) {
      const unsigned long value =
          std::strtoul(argv[i] + sizeof(kShardsFlag) - 1, nullptr, 10);
      if (value < 1) {
        std::fprintf(stderr, "invalid shard count '%s'\n", argv[i]);
        return Usage();
      }
      shards = static_cast<uint32_t>(value);
      continue;
    }
    constexpr const char kPartitionerFlag[] = "--partitioner=";
    if (is_compress && std::strncmp(argv[i], kPartitionerFlag,
                                    sizeof(kPartitionerFlag) - 1) == 0) {
      const char* value = argv[i] + sizeof(kPartitionerFlag) - 1;
      if (!ParsePartitionerKind(value, &partitioner)) {
        std::fprintf(stderr, "unknown partitioner '%s'\n", value);
        return Usage();
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  const int argn = static_cast<int>(args.size());
  if (argn < 1) return Usage();
  const char* cmd = args[0];
  if (std::strcmp(cmd, "stats") == 0 && (argn == 2 || argn == 3)) {
    return CmdStats(args[1], argn == 3 ? args[2] : nullptr);
  }
  if (std::strcmp(cmd, "compress") == 0 && argn == 3) {
    return CmdCompress(args[1], args[2], shards, partitioner);
  }
  if (std::strcmp(cmd, "compressb") == 0 && argn == 4) {
    return CmdCompressB(args[1], args[2], args[3], engine);
  }
  if (std::strcmp(cmd, "query") == 0 && argn == 4) {
    return CmdQuery(args[1], args[2], args[3]);
  }
  if (std::strcmp(cmd, "info") == 0 && argn == 2) {
    return CmdInfo(args[1]);
  }
  if (std::strcmp(cmd, "save") == 0 && argn >= 3) {
    return CmdSave(std::vector<const char*>(args.begin() + 1, args.end()));
  }
  if (std::strcmp(cmd, "load") == 0 && argn >= 2) {
    return CmdLoad(std::vector<const char*>(args.begin() + 1, args.end()));
  }
  if (std::strcmp(cmd, "dataset") == 0 && argn == 3) {
    return CmdDataset(args[1], args[2]);
  }
  if (std::strcmp(cmd, "serve-sim") == 0 && argn >= 2) {
    return CmdServeSim(
        std::vector<const char*>(args.begin() + 1, args.end()));
  }
  return Usage();
}
