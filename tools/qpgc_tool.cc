// Copyright 2026 The QPGC Authors.
//
// qpgc_tool — command-line front end for the library. Compress SNAP-style
// edge lists offline, inspect artifacts, and serve reachability queries
// from a compressed artifact without ever loading the original graph.
//
//   qpgc_tool stats     <edges> [labels]          graph statistics
//   qpgc_tool compress  <edges> <artifact>        reachability compression
//   qpgc_tool compressb <edges> <labels> <out>    pattern compression
//   qpgc_tool query     <artifact> <u> <v>        QR(u, v) from the artifact
//   qpgc_tool info      <artifact>                artifact summary
//   qpgc_tool dataset   <name> <edges-out>        emit a catalog stand-in
//
// `compressb` accepts --bisim-engine=paige-tarjan|ranked|signature to pick
// the maximum-bisimulation engine (default paige-tarjan).
//
// Both compression commands freeze an immutable CsrGraph snapshot of the
// loaded graph and run the whole batch pipeline on the flat layout (see
// graph/graph_view.h); `stats` reports the snapshot's memory next to the
// dynamic representation's.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bisim/engine.h"
#include "core/pattern_scheme.h"
#include "core/serialization.h"
#include "gen/dataset_catalog.h"
#include "graph/csr.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "reach/compress_r.h"
#include "reach/queries.h"
#include "util/memory.h"
#include "util/timer.h"

namespace {

using namespace qpgc;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  qpgc_tool stats     <edges> [labels]\n"
               "  qpgc_tool compress  <edges> <artifact-out>\n"
               "  qpgc_tool compressb [--bisim-engine=paige-tarjan|ranked|"
               "signature]\n"
               "                      <edges> <labels> <artifact-out>\n"
               "  qpgc_tool query     <artifact> <u> <v>\n"
               "  qpgc_tool info      <artifact>\n"
               "  qpgc_tool dataset   <name> <edges-out>\n");
  return 2;
}

Result<Graph> LoadGraphArg(const char* edges, const char* labels) {
  auto loaded = LoadEdgeList(edges);
  if (!loaded.ok()) return loaded;
  if (labels != nullptr) {
    Graph g = std::move(loaded).value();
    const Status s = LoadLabels(g, labels);
    if (!s.ok()) return s;
    return g;
  }
  return loaded;
}

int CmdStats(const char* edges, const char* labels) {
  auto loaded = LoadGraphArg(edges, labels);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Graph& g = loaded.value();
  const CsrGraph frozen(g);
  std::printf("%s\n%s\nmemory: %s dynamic, %s frozen CSR (%.0f%%)\n",
              g.DebugString().c_str(), FormatStats(ComputeStats(g)).c_str(),
              FormatBytes(g.MemoryBytes()).c_str(),
              FormatBytes(frozen.MemoryBytes()).c_str(),
              g.MemoryBytes() == 0
                  ? 100.0
                  : 100.0 * static_cast<double>(frozen.MemoryBytes()) /
                        static_cast<double>(g.MemoryBytes()));
  return 0;
}

int CmdCompress(const char* edges, const char* out) {
  auto loaded = LoadEdgeList(edges);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Graph& g = loaded.value();
  Timer t;
  const ReachCompression rc = CompressR(g);
  std::printf("compressR: %.1fms;  |G| = %zu -> |Gr| = %zu  (RCr = %.2f%%)\n",
              t.ElapsedMillis(), g.size(), rc.size(),
              rc.CompressionRatio() * 100);
  const Status s = SaveReachCompression(rc, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("artifact written to %s\n", out);
  return 0;
}

int CmdCompressB(const char* edges, const char* labels, const char* out,
                 BisimEngine engine) {
  auto loaded = LoadGraphArg(edges, labels);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Graph& g = loaded.value();
  Timer t;
  CompressBOptions options;
  options.engine = engine;
  const PatternCompression pc = CompressB(g, options);
  std::printf(
      "compressB[%s]: %.1fms;  |G| = %zu -> |Gr| = %zu  (PCr = %.2f%%)\n",
      BisimEngineName(engine), t.ElapsedMillis(), g.size(), pc.size(),
      pc.CompressionRatio() * 100);
  const Status s = SavePatternCompression(pc, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("artifact written to %s\n", out);
  return 0;
}

int CmdQuery(const char* artifact, const char* u_str, const char* v_str) {
  auto loaded = LoadReachCompression(artifact);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const ReachCompression& rc = loaded.value();
  const unsigned long u = std::strtoul(u_str, nullptr, 10);
  const unsigned long v = std::strtoul(v_str, nullptr, 10);
  if (u >= rc.node_map.size() || v >= rc.node_map.size()) {
    std::fprintf(stderr, "node out of range (|V| = %zu)\n",
                 rc.node_map.size());
    return 1;
  }
  const ReachQuery q{static_cast<NodeId>(u), static_cast<NodeId>(v)};
  const bool answer =
      AnswerOnCompressed(rc, q, PathMode::kReflexive, ReachAlgorithm::kBfs);
  std::printf("QR(%lu, %lu) = %s   [rewritten to QR(%u, %u) on Gr]\n", u, v,
              answer ? "true" : "false", rc.node_map[q.u], rc.node_map[q.v]);
  return 0;
}

int CmdInfo(const char* artifact) {
  auto rc = LoadReachCompression(artifact);
  if (rc.ok()) {
    const ReachCompression& r = rc.value();
    std::printf("reachability artifact: %s\n", r.gr.DebugString().c_str());
    std::printf("original |V| = %zu, |G| = %zu, RCr = %.2f%%\n",
                r.original_num_nodes, r.original_size,
                r.CompressionRatio() * 100);
    std::printf("memory: %s\n", FormatBytes(r.MemoryBytes()).c_str());
    return 0;
  }
  auto pc = LoadPatternCompression(artifact);
  if (pc.ok()) {
    const PatternCompression& p = pc.value();
    std::printf("pattern artifact: %s\n", p.gr.DebugString().c_str());
    std::printf("original |V| = %zu, |G| = %zu, PCr = %.2f%%\n",
                p.original_num_nodes, p.original_size,
                p.CompressionRatio() * 100);
    std::printf("memory: %s\n", FormatBytes(p.MemoryBytes()).c_str());
    return 0;
  }
  std::fprintf(stderr, "not a qpgc artifact: %s\n", artifact);
  return 1;
}

int CmdDataset(const char* name, const char* out) {
  const Graph g = MakeDataset(FindDataset(name));
  const Status s = SaveEdgeList(g, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s stand-in written to %s (%s)\n", name, out,
              g.DebugString().c_str());
  if (g.CountDistinctLabels() > 1) {
    const std::string label_path = std::string(out) + ".labels";
    if (SaveLabels(g, label_path).ok()) {
      std::printf("labels written to %s\n", label_path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --bisim-engine=<name> wherever it appears; positional arguments
  // keep their order.
  BisimEngine engine = BisimEngine::kPaigeTarjan;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kEngineFlag[] = "--bisim-engine=";
    if (std::strncmp(argv[i], kEngineFlag, sizeof(kEngineFlag) - 1) == 0) {
      const char* value = argv[i] + sizeof(kEngineFlag) - 1;
      if (!ParseBisimEngine(value, &engine)) {
        std::fprintf(stderr, "unknown bisim engine '%s'\n", value);
        return Usage();
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  const int argn = static_cast<int>(args.size());
  if (argn < 1) return Usage();
  const char* cmd = args[0];
  if (std::strcmp(cmd, "stats") == 0 && (argn == 2 || argn == 3)) {
    return CmdStats(args[1], argn == 3 ? args[2] : nullptr);
  }
  if (std::strcmp(cmd, "compress") == 0 && argn == 3) {
    return CmdCompress(args[1], args[2]);
  }
  if (std::strcmp(cmd, "compressb") == 0 && argn == 4) {
    return CmdCompressB(args[1], args[2], args[3], engine);
  }
  if (std::strcmp(cmd, "query") == 0 && argn == 4) {
    return CmdQuery(args[1], args[2], args[3]);
  }
  if (std::strcmp(cmd, "info") == 0 && argn == 2) {
    return CmdInfo(args[1]);
  }
  if (std::strcmp(cmd, "dataset") == 0 && argn == 3) {
    return CmdDataset(args[1], args[2]);
  }
  return Usage();
}
