#!/usr/bin/env python3
"""Fails on broken relative links in the repository's Markdown tree.

Usage:
  tools/check_links.py [ROOT]

Scans README.md, ROADMAP.md, and every *.md under docs/ (relative to ROOT,
default: the repository root containing this script's parent) for inline
Markdown links and images. For relative targets, the referenced file must
exist; absolute URLs (http/https/mailto) and intra-page anchors (#...) are
not checked. Anchored file links (FILE.md#section) check only the file.

Exit status: 0 when every relative link resolves, 1 otherwise (one line
per broken link). This is the CI docs job's gate — a moved or renamed
file breaks the build instead of silently rotting the docs.
"""

import os
import re
import sys

# Inline links/images: [text](target) — stops at the first ')' or space,
# which is fine for this repo's links (no titles, no parenthesized URLs).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root):
    docs = []
    for name in ("README.md", "ROADMAP.md"):
        path = os.path.join(root, name)
        if os.path.isfile(path):
            docs.append(path)
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for dirpath, _, filenames in os.walk(docs_dir):
            for filename in sorted(filenames):
                if filename.endswith(".md"):
                    docs.append(os.path.join(dirpath, filename))
    return docs


def check_file(path):
    broken = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                # Drop an in-file anchor; an empty remainder was '#...' only.
                file_part = target.split("#", 1)[0]
                if not file_part:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), file_part))
                if not os.path.exists(resolved):
                    broken.append((lineno, target, resolved))
    return broken


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))
    files = doc_files(root)
    if not files:
        print(f"check_links: no Markdown files found under {root}",
              file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        for lineno, target, resolved in check_file(path):
            print(f"{os.path.relpath(path, root)}:{lineno}: broken link "
                  f"'{target}' (resolved to {resolved})")
            failures += 1
    checked = len(files)
    if failures:
        print(f"check_links: {failures} broken link(s) across {checked} "
              f"file(s)")
        return 1
    print(f"check_links: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
