#!/usr/bin/env python3
"""qpgc's architectural lint: the repo-shape rules no compiler checks.

Usage:
  tools/qpgc_lint.py [ROOT]

Run from ctest (tools/CMakeLists.txt registers it) and from the CI lint
job; exit status 0 means clean, 1 means violations (one line each, in
`path:line: [rule] message` form). ROOT defaults to the repository root
containing this script's parent, so fixture trees (tools/qpgc_lint_test.py)
can point it anywhere with the same src/-bench/-tests/ layout.

Rules:

  [layering]      src/ modules form a DAG — util -> graph ->
                  {reach, pattern, bisim, index} -> core -> inc -> serve ->
                  storage, with gen a sibling consumer of graph. A module
                  may
                  directly include only itself and the modules listed in
                  ALLOWED_DEPS. In particular the batch layer (graph,
                  reach, pattern, bisim, core) must never include inc/ —
                  batch compression cannot depend on incremental
                  maintenance.

  [read-path]     The serving read path (serve/snapshot, serve/
                  query_service, serve/router) must not include mutable-
                  Graph mutation headers (graph/update.h or anything under
                  inc/): a reader can hold only immutable frozen state.

  [raw-mutex]     std::mutex and the std::lock_guard family may appear
                  only inside src/util/thread_annotations.h. Everything
                  else locks through the annotated qpgc::Mutex /
                  qpgc::MutexLock so Clang Thread Safety Analysis sees it.

  [raw-atomic]    std::atomic<std::shared_ptr<...>> may appear only at the
                  one documented published-snapshot slot in
                  serve/snapshot_manager.h (marker-allowlisted below);
                  every other cross-thread handoff is either immutable
                  data behind a pinned snapshot or Mutex-guarded.

  [pin-ref]       `auto&` / `const auto&` / `auto&&` must not bind the
                  result of Pin() / Acquire() / AcquireAll(). Binding the
                  bare handle is merely misleading (lifetime extension
                  keeps it alive, but reads as if a reference pins
                  anything); binding through `->` dangles. Either way the
                  idiom is banned: bind pins by value
                  (`const auto snap = svc.Pin();`). The deeper lifetime
                  shapes are tools/qpgc_pin_escape.py's job — this rule is
                  the cheap line-local subset. Fixture trees under
                  tests/static_analysis/pin_escape/ plant violations on
                  purpose and are skipped (SKIP_DIRS).

  [metric-name]   bench::Metric keys: the metric segment (up to the first
                  '.') is lower_snake_case ([a-z][a-z0-9_]*), so
                  BENCH_*.json keys stay greppable and bench_diff.py
                  comparisons stay stable. Answer-cache metrics (segment
                  starting `cache_`) must additionally end in a unit/kind
                  suffix from CACHE_METRIC_SUFFIXES (_qps, _rate, _hits,
                  _misses, _inserts, _evictions, _speedup, _secs) so
                  cached-vs-uncached comparisons in bench_diff.py and the
                  trajectory plots can classify them without a schema.

  [header-guard]  Every header uses the canonical include guard derived
                  from its path (QPGC_SERVE_ROUTER_H_ style); #pragma once
                  is banned for consistency.

  [dup-include]   A file must not include the same header twice.

Escape hatch: a line (or the line directly below a marker-only line)
containing `qpgc-lint: allow(<rule>)` is exempt from <rule>, but markers
are honored ONLY in ALLOW_MARKER_FILES — an allow marker anywhere else is
itself a violation, so exceptions stay enumerable in this file.
"""

import os
import re
import sys

# Module-level layering DAG over src/: module -> modules it may directly
# include (itself is always allowed). Adding a new src/ subdirectory
# requires adding it here, which is the point: layering changes are
# reviewed in this file, not discovered in a cycle later.
ALLOWED_DEPS = {
    "util": set(),
    "graph": {"util"},
    "bisim": {"graph", "util"},
    "reach": {"graph", "util"},
    "pattern": {"graph", "util"},
    "index": {"graph", "util"},
    "core": {"bisim", "pattern", "reach", "graph", "util"},
    "gen": {"graph", "util"},
    "inc": {"core", "bisim", "pattern", "reach", "graph", "util"},
    "serve": {"inc", "core", "bisim", "pattern", "reach", "graph", "util"},
    "storage": {"serve", "inc", "core", "bisim", "pattern", "reach", "graph",
                "util"},
}

# Serving read-path files: may hold only immutable frozen state, so the
# graph-mutation headers below must never appear in their includes.
# serve/load_gen and the managers are writer-side by design and exempt.
READ_PATH_STEMS = {"answer_cache", "boundary_summary", "snapshot",
                   "query_service", "router"}
MUTATION_HEADERS = re.compile(r'^(graph/update\.h|inc/)')

# Reference-bound pin handles (rule pin-ref): an auto reference whose
# initializer ends in a pin-producer call, possibly dereferenced further.
PIN_REF_RE = re.compile(
    r'\bauto\s*&&?\s*\w+\s*=\s*[^;=]*\b(?:Pin|Acquire|AcquireAll)\s*\(\s*\)')

# Directories whose files are deliberately-broken analyzer fixtures; the
# lint walking them would report the planted bugs it exists to plant.
SKIP_DIRS = {"tests/static_analysis/pin_escape"}

# Raw synchronization primitives (rule raw-mutex / raw-atomic).
RAW_MUTEX_RE = re.compile(
    r'std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|'
    r'shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|'
    r'shared_lock)\b')
RAW_ATOMIC_RE = re.compile(r'std::atomic\s*<\s*std::(shared|weak)_ptr\b')

# Files in which `qpgc-lint: allow(...)` markers are honored.
ALLOW_MARKER_FILES = {
    "src/util/thread_annotations.h",
    "src/serve/snapshot_manager.h",
}
ALLOW_RE = re.compile(r'qpgc-lint:\s*allow\(([a-z-]+)\)')

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"][^">]+[">])')
METRIC_RE = re.compile(r'\bMetric\(\s*"([^"]*)"')
METRIC_SEGMENT_RE = re.compile(r'^[a-z][a-z0-9_]*$')

# Required trailing unit/kind suffix for answer-cache metric segments.
CACHE_METRIC_SUFFIXES = (
    "_qps", "_rate", "_hits", "_misses", "_inserts", "_evictions",
    "_speedup", "_secs")
STRING_RE = re.compile(r'"(?:\\.|[^"\\])*"')


def strip_comments_and_strings(line, in_block):
    """Reduces a source line to code: trims block/line comments and blanks
    out string literal contents. Returns (code, still_in_block)."""
    out = []
    i = 0
    if in_block:
        end = line.find("*/")
        if end < 0:
            return "", True
        i = end + 2
        in_block = False
    while i < len(line):
        ch = line[i]
        if ch == '/' and line[i:i + 2] == "//":
            break
        if ch == '/' and line[i:i + 2] == "/*":
            end = line.find("*/", i + 2)
            if end < 0:
                return "".join(out), True
            i = end + 2
            continue
        if ch == '"':
            m = STRING_RE.match(line, i)
            if m:
                out.append('""')
                i = m.end()
                continue
        out.append(ch)
        i += 1
    return "".join(out), in_block


def expected_guard(relpath):
    stem = relpath[len("src/"):] if relpath.startswith("src/") else relpath
    return "QPGC_" + re.sub(r'[/.]', '_', stem).upper() + "_"


class Linter:
    def __init__(self, root):
        self.root = root
        self.violations = []

    def report(self, relpath, lineno, rule, message):
        self.violations.append(f"{relpath}:{lineno}: [{rule}] {message}")

    def source_files(self):
        for top in ("src", "bench", "tests", "tools", "examples"):
            topdir = os.path.join(self.root, top)
            for dirpath, _, filenames in os.walk(topdir):
                for name in sorted(filenames):
                    if name.endswith((".h", ".cc")):
                        path = os.path.join(dirpath, name)
                        relpath = os.path.relpath(path, self.root)
                        reldir = os.path.dirname(relpath).replace(
                            os.sep, "/")
                        if any(reldir == d or reldir.startswith(d + "/")
                               for d in SKIP_DIRS):
                            continue
                        yield relpath

    def lint_file(self, relpath):
        with open(os.path.join(self.root, relpath), encoding="utf-8") as f:
            raw_lines = f.readlines()

        markers_ok = relpath in ALLOW_MARKER_FILES
        allowed = {}  # line number -> set of rules exempted there
        for lineno, line in enumerate(raw_lines, start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            if not markers_ok:
                self.report(relpath, lineno, "allow-marker",
                            "allow() markers are honored only in "
                            + ", ".join(sorted(ALLOW_MARKER_FILES)))
                continue
            # A marker exempts its own line; a marker-only comment line
            # also exempts the line below (for declarations that do not
            # fit beside the code).
            allowed.setdefault(lineno, set()).add(m.group(1))
            if line.lstrip().startswith("//"):
                allowed.setdefault(lineno + 1, set()).add(m.group(1))

        def is_allowed(lineno, rule):
            return rule in allowed.get(lineno, set())

        module = None
        parts = relpath.split("/")
        if parts[0] == "src" and len(parts) > 2:
            module = parts[1]
            if module not in ALLOWED_DEPS:
                self.report(relpath, 1, "layering",
                            f"unknown src/ module '{module}': add it to "
                            "ALLOWED_DEPS in tools/qpgc_lint.py")
                module = None

        read_path = (parts[0] == "src" and len(parts) > 2
                     and parts[1] == "serve"
                     and os.path.splitext(parts[2])[0] in READ_PATH_STEMS)

        seen_includes = {}
        in_block = False
        for lineno, raw in enumerate(raw_lines, start=1):
            code, in_block = strip_comments_and_strings(raw, in_block)
            if not code.strip():
                continue

            inc = INCLUDE_RE.match(raw)
            if inc:
                target = inc.group(1)
                if target in seen_includes:
                    self.report(relpath, lineno, "dup-include",
                                f"{target} already included on line "
                                f"{seen_includes[target]}")
                else:
                    seen_includes[target] = lineno
                if target.startswith('"'):
                    header = target.strip('"')
                    dep = header.split("/")[0]
                    if (module is not None and dep != module
                            and dep in ALLOWED_DEPS
                            and dep not in ALLOWED_DEPS[module]):
                        self.report(
                            relpath, lineno, "layering",
                            f"src/{module}/ must not include {header} "
                            f"(allowed: "
                            f"{', '.join(sorted(ALLOWED_DEPS[module]))})")
                    if read_path and MUTATION_HEADERS.match(header):
                        self.report(
                            relpath, lineno, "read-path",
                            f"serving read path must not include the "
                            f"mutation header {header}")

            if "#pragma once" in code:
                self.report(relpath, lineno, "header-guard",
                            "#pragma once is banned; use the canonical "
                            f"guard {expected_guard(relpath)}")

            if RAW_MUTEX_RE.search(code) and not is_allowed(
                    lineno, "raw-mutex"):
                self.report(relpath, lineno, "raw-mutex",
                            "raw std::mutex family is allowed only in "
                            "src/util/thread_annotations.h; use "
                            "qpgc::Mutex / qpgc::MutexLock")

            if PIN_REF_RE.search(code) and not is_allowed(
                    lineno, "pin-ref"):
                self.report(relpath, lineno, "pin-ref",
                            "auto& must not bind a Pin()/Acquire()/"
                            "AcquireAll() result; bind the pin by value "
                            "(const auto snap = ...) so its scope is "
                            "explicit — see docs/LIFETIMES.md")

            if RAW_ATOMIC_RE.search(code) and not is_allowed(
                    lineno, "raw-atomic-shared-ptr"):
                self.report(relpath, lineno, "raw-atomic",
                            "std::atomic<std::shared_ptr> is allowed only "
                            "at the documented snapshot slot in "
                            "src/serve/snapshot_manager.h")

            if parts[0] == "bench":
                for m in METRIC_RE.finditer(raw):
                    key = m.group(1)
                    head = key.split(".", 1)[0]
                    if not METRIC_SEGMENT_RE.match(head):
                        self.report(
                            relpath, lineno, "metric-name",
                            f'Metric key "{key}": the first dot-segment '
                            "must be lower_snake_case")
                    elif (head.startswith("cache_") and not head.endswith(
                            CACHE_METRIC_SUFFIXES)):
                        self.report(
                            relpath, lineno, "metric-name",
                            f'Metric key "{key}": cache_* metrics must end '
                            "in one of "
                            + ", ".join(CACHE_METRIC_SUFFIXES))

        if relpath.endswith(".h"):
            guard = expected_guard(relpath)
            body = "".join(raw_lines)
            if f"#ifndef {guard}" not in body or f"#define {guard}" not in body:
                self.report(relpath, 1, "header-guard",
                            f"missing canonical include guard {guard}")

    def run(self):
        for relpath in self.source_files():
            self.lint_file(relpath)
        return self.violations


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))
    linter = Linter(root)
    violations = linter.run()
    for v in violations:
        print(v)
    if violations:
        print(f"qpgc_lint: {len(violations)} violation(s)")
        return 1
    print("qpgc_lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
