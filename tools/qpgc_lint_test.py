#!/usr/bin/env python3
"""Unit tests for tools/qpgc_lint.py, runnable standalone or via ctest.

Each test materializes a small fixture tree in a temp directory (same
src/-bench/ layout the linter expects) and asserts the linter's verdict —
both that violations are caught with the right rule tag and that a clean
tree stays clean. This is the guard against the linter rotting into a
rubber stamp: if a rule stops firing, the corresponding test here fails.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import qpgc_lint  # noqa: E402


GUARDED_HEADER = """\
#ifndef {guard}
#define {guard}
{body}
#endif  // {guard}
"""


def header(relpath, body=""):
    return GUARDED_HEADER.format(guard=qpgc_lint.expected_guard(relpath),
                                 body=body)


class LintFixture(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="qpgc_lint_test_")
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, relpath, content):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def lint(self):
        return qpgc_lint.Linter(self.root).run()

    def assert_rule(self, violations, rule, path_fragment):
        hits = [v for v in violations if f"[{rule}]" in v
                and path_fragment in v]
        self.assertTrue(
            hits, f"expected a [{rule}] violation mentioning "
            f"{path_fragment}; got: {violations}")


class CleanTreeTest(LintFixture):
    def test_clean_tree_passes(self):
        self.write("src/util/common.h", header("src/util/common.h"))
        self.write("src/graph/graph.h", header(
            "src/graph/graph.h", '#include "util/common.h"\n'))
        self.write("src/reach/queries.h", header(
            "src/reach/queries.h", '#include "graph/graph.h"\n'))
        self.write("src/serve/router.cc",
                   '#include "reach/queries.h"\n#include <vector>\n')
        self.write("bench/bench_x.cc", 'Metric("reach_qps.K2", v);\n')
        self.assertEqual(self.lint(), [])


class LayeringTest(LintFixture):
    def test_batch_layer_including_inc_is_flagged(self):
        self.write("src/reach/queries.cc", '#include "inc/inc_rcm.h"\n')
        self.assert_rule(self.lint(), "layering", "src/reach/queries.cc")

    def test_graph_including_serve_is_flagged(self):
        self.write("src/graph/graph.cc",
                   '#include "serve/snapshot.h"\n')
        self.assert_rule(self.lint(), "layering", "src/graph/graph.cc")

    def test_unknown_module_is_flagged(self):
        self.write("src/cache/cache.h", header("src/cache/cache.h"))
        self.assert_rule(self.lint(), "layering", "src/cache/cache.h")

    def test_commented_include_is_ignored(self):
        self.write("src/reach/queries.cc",
                   '// #include "inc/inc_rcm.h"\n#include <vector>\n')
        self.assertEqual(self.lint(), [])


class ReadPathTest(LintFixture):
    def test_router_including_update_header_is_flagged(self):
        self.write("src/serve/router.cc", '#include "graph/update.h"\n')
        self.assert_rule(self.lint(), "read-path", "src/serve/router.cc")

    def test_router_including_inc_is_flagged(self):
        self.write("src/serve/query_service.cc",
                   '#include "inc/inc_rcm.h"\n')
        self.assert_rule(self.lint(), "read-path",
                         "src/serve/query_service.cc")

    def test_writer_side_manager_may_mutate(self):
        self.write("src/serve/snapshot_manager.cc",
                   '#include "graph/update.h"\n')
        self.assertEqual(self.lint(), [])

    def test_answer_cache_including_update_header_is_flagged(self):
        self.write("src/serve/answer_cache.cc",
                   '#include "graph/update.h"\n')
        self.assert_rule(self.lint(), "read-path",
                         "src/serve/answer_cache.cc")


class RawPrimitiveTest(LintFixture):
    def test_raw_mutex_is_flagged(self):
        self.write("src/serve/cache.cc",
                   "#include <mutex>\nstd::mutex mu;\n")
        self.assert_rule(self.lint(), "raw-mutex", "src/serve/cache.cc")

    def test_raw_lock_guard_is_flagged(self):
        self.write("src/graph/pool.cc",
                   "std::lock_guard<qpgc::Mutex> lock(mu);\n")
        self.assert_rule(self.lint(), "raw-mutex", "src/graph/pool.cc")

    def test_raw_atomic_shared_ptr_is_flagged(self):
        self.write("src/serve/slot.h", header(
            "src/serve/slot.h",
            "std::atomic<std::shared_ptr<int>> slot;\n"))
        self.assert_rule(self.lint(), "raw-atomic", "src/serve/slot.h")

    def test_mention_in_comment_is_ignored(self):
        self.write("src/serve/slot.cc",
                   "// the std::mutex fallback (std::atomic<std::shared_ptr"
                   "<T>> elsewhere)\nint x;\n")
        self.assertEqual(self.lint(), [])

    def test_allow_marker_outside_allowlist_is_flagged(self):
        self.write("src/graph/pool.cc",
                   "std::mutex mu;  // qpgc-lint: allow(raw-mutex)\n")
        violations = self.lint()
        self.assert_rule(violations, "allow-marker", "src/graph/pool.cc")
        self.assert_rule(violations, "raw-mutex", "src/graph/pool.cc")

    def test_allow_marker_in_allowlisted_file_is_honored(self):
        self.write("src/util/thread_annotations.h", header(
            "src/util/thread_annotations.h",
            "#include <mutex>  // qpgc-lint: allow(raw-mutex)\n"
            "class Mutex { std::mutex mu_; };"
            "  // qpgc-lint: allow(raw-mutex)\n"))
        self.assertEqual(self.lint(), [])


class PinRefTest(LintFixture):
    def test_auto_ref_to_pin_is_flagged(self):
        self.write("src/serve/use.cc",
                   "const auto& snap = svc.Pin();\n")
        self.assert_rule(self.lint(), "pin-ref", "src/serve/use.cc")

    def test_auto_rvalue_ref_to_acquire_is_flagged(self):
        self.write("src/serve/use.cc",
                   "auto&& pinned = manager.AcquireAll();\n")
        self.assert_rule(self.lint(), "pin-ref", "src/serve/use.cc")

    def test_auto_ref_through_deref_is_flagged(self):
        self.write("tests/serve/use_test.cc",
                   "const auto& gr = mgr.Acquire()->reach_gr();\n")
        self.assert_rule(self.lint(), "pin-ref", "tests/serve/use_test.cc")

    def test_pin_by_value_is_clean(self):
        self.write("src/serve/use.cc",
                   "const auto snap = svc.Pin();\n"
                   "auto pinned = manager.AcquireAll();\n")
        self.assertEqual(self.lint(), [])

    def test_auto_ref_to_non_pin_call_is_clean(self):
        self.write("src/serve/use.cc",
                   "const auto& part = manager.partition();\n")
        self.assertEqual(self.lint(), [])

    def test_pin_escape_fixture_dir_is_skipped(self):
        self.write("tests/static_analysis/pin_escape/planted.cc",
                   "const auto& snap = svc.Pin();\n")
        self.assertEqual(self.lint(), [])


class MetricNameTest(LintFixture):
    def test_camel_case_metric_is_flagged(self):
        self.write("bench/bench_x.cc", 'Metric("ReachQps", v);\n')
        self.assert_rule(self.lint(), "metric-name", "bench/bench_x.cc")

    def test_dataset_suffix_may_be_camel_case(self):
        self.write("bench/bench_x.cc", 'Metric("rcr.socEpinions", v);\n')
        self.assertEqual(self.lint(), [])

    def test_cache_metric_without_kind_suffix_is_flagged(self):
        self.write("bench/bench_x.cc", 'Metric("cache_hot_reach", v);\n')
        self.assert_rule(self.lint(), "metric-name", "bench/bench_x.cc")

    def test_cache_metric_with_kind_suffix_is_clean(self):
        self.write("bench/bench_x.cc",
                   'Metric("cache_hot_cached_reach_qps.K2", v);\n'
                   'Metric("cache_hot_hit_rate", v);\n'
                   'Metric("cache_hot_evictions", v);\n')
        self.assertEqual(self.lint(), [])

    def test_non_cache_metric_needs_no_kind_suffix(self):
        self.write("bench/bench_x.cc", 'Metric("freeze_ms_total", v);\n')
        self.assertEqual(self.lint(), [])


class HeaderHygieneTest(LintFixture):
    def test_wrong_guard_is_flagged(self):
        self.write("src/graph/csr.h",
                   "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n")
        self.assert_rule(self.lint(), "header-guard", "src/graph/csr.h")

    def test_pragma_once_is_flagged(self):
        self.write("src/graph/csr.h", "#pragma once\nint x;\n")
        self.assert_rule(self.lint(), "header-guard", "src/graph/csr.h")

    def test_duplicate_include_is_flagged(self):
        self.write("src/graph/csr.cc",
                   "#include <vector>\n#include <vector>\n")
        self.assert_rule(self.lint(), "dup-include", "src/graph/csr.cc")


class RepositoryIsCleanTest(unittest.TestCase):
    """The real tree must satisfy its own lint (the ctest gate in spirit:
    a violation fails here AND in the dedicated lint test)."""

    def test_repo_lint_is_clean(self):
        repo_root = os.path.normpath(os.path.join(
            os.path.dirname(os.path.abspath(__file__)), os.pardir))
        violations = qpgc_lint.Linter(repo_root).run()
        self.assertEqual(violations, [])


if __name__ == "__main__":
    unittest.main()
