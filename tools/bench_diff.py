#!/usr/bin/env python3
"""Compares fresh BENCH_*.json metrics against the committed baselines.

Usage:
  tools/bench_diff.py --baseline-dir DIR --new-dir DIR [--tolerance PCT]
                      [--strict] [NAME...]

For each bench NAME (default: every BENCH_*.json present in --new-dir),
loads DIR/BENCH_<name>.json from both directories and compares the numeric
"metrics" maps. Timing metrics (keys ending in _secs or containing
"_secs.") are reported but never counted as regressions — wall clock on CI
runners is too noisy; structural metrics (ratios, sizes, counts, speedups)
are compared with the relative tolerance.

Default mode is warn-only: always exits 0 and prints a summary table, so a
CI step can surface drift without gating merges. --strict exits 1 when a
structural metric regresses beyond tolerance.
"""

import argparse
import glob
import json
import os
import sys


def load_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        return None, str(err)
    return doc.get("metrics", {}), None


def is_timing(key):
    return key.endswith("_secs") or "_secs." in key


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--new-dir", required=True)
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="allowed relative drift for structural metrics "
                             "(percent, default 10)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on structural drift beyond tolerance")
    parser.add_argument("names", nargs="*",
                        help="bench names (e.g. table1_reach_ratio); default "
                             "is every BENCH_*.json in --new-dir")
    args = parser.parse_args()

    names = args.names
    if not names:
        names = sorted(
            os.path.basename(p)[len("BENCH_"):-len(".json")]
            for p in glob.glob(os.path.join(args.new_dir, "BENCH_*.json")))
    if not names:
        print("bench_diff: no BENCH_*.json files found in", args.new_dir)
        return 0

    drifted = 0
    rows = []
    for name in names:
        base_path = os.path.join(args.baseline_dir, f"BENCH_{name}.json")
        new_path = os.path.join(args.new_dir, f"BENCH_{name}.json")
        base, base_err = load_metrics(base_path)
        new, new_err = load_metrics(new_path)
        if base is None or new is None:
            # A missing or unparseable file is the loudest possible
            # regression (the bench crashed before writing); never let
            # --strict pass over it.
            drifted += 1
            rows.append((name, "-", "(missing)",
                         base_err or new_err or "missing file", "MISSING"))
            continue
        for key in sorted(set(base) | set(new)):
            if key not in base or key not in new:
                # A structural metric that vanished from the new run counts
                # as drift; a metric that only just appeared does not.
                if key in base and not is_timing(key):
                    drifted += 1
                rows.append((name, key, "-", "only in one side",
                             "GONE" if key in base else "NEW"))
                continue
            b, n = float(base[key]), float(new[key])
            if b == n:
                continue
            rel = abs(n - b) / max(abs(b), 1e-12) * 100.0
            if is_timing(key):
                status = "timing"
            elif rel <= args.tolerance:
                status = "ok"
            else:
                status = "DRIFT"
                drifted += 1
            if status != "ok":
                rows.append((name, key, f"{b:g} -> {n:g}", f"{rel:.1f}%",
                             status))

    if rows:
        widths = [max(len(str(r[i])) for r in rows) for i in range(5)]
        header = ("bench", "metric", "baseline -> new", "delta", "status")
        widths = [max(w, len(h)) for w, h in zip(widths, header)]
        fmt = "  ".join("{:<%d}" % w for w in widths)
        print(fmt.format(*header))
        print(fmt.format(*("-" * w for w in widths)))
        for r in rows:
            print(fmt.format(*(str(c) for c in r)))
    else:
        print("bench_diff: all compared metrics identical")

    print(f"\nbench_diff: {drifted} structural metric(s) beyond "
          f"{args.tolerance:.1f}% tolerance "
          f"({'strict' if args.strict else 'warn-only'})")
    return 1 if (args.strict and drifted) else 0


if __name__ == "__main__":
    sys.exit(main())
