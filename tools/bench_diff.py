#!/usr/bin/env python3
"""Compares fresh BENCH_*.json metrics against the committed baselines.

Usage:
  tools/bench_diff.py --baseline-dir DIR --new-dir DIR [--tolerance PCT]
                      [--strict] [--subset-ok] [--trajectory N] [NAME...]

For each bench NAME (default: every BENCH_*.json present in --new-dir),
loads DIR/BENCH_<name>.json from both directories and compares the numeric
"metrics" maps. Timing metrics (keys ending in _secs, containing "_secs.",
or containing "speedup" — wall-clock-derived ratios) are reported but never
counted as regressions — wall clock on CI runners is too noisy; structural
metrics (ratios, sizes, counts) are compared with the relative tolerance.

Throughput metrics (keys ending in _qps or _per_sec, or containing
"throughput") are higher-is-better and — being wall-clock-derived, so
machine-specific like the _secs metrics — never gate: a move beyond
tolerance is reported directionally as GAIN or SLOWER but not counted as
drift. Answer-cache event counters (cache_*_hits/_misses/_inserts/
_evictions) count events inside a timed window, so they are load, not
structure, and report without gating too; cache_*_rate metrics stay
structural. Structural metrics stay two-sided — a compression ratio
moving either way is drift worth seeing.

--subset-ok: metrics present in the baseline but absent from the new run
are reported as SKIP instead of counted as drift. Use when the new run is
a deliberately reduced config of the same bench (e.g. the CI small-depth
run of bench_ablation_bisim via --max-depth).

--trajectory N: additionally prints, per bench, each structural metric's
trajectory over the last N commits that touched the committed baseline
file (via `git log` / `git show` in --baseline-dir). This is what makes
slow drift visible: per-PR tolerance can pass 9% regressions forever; the
trajectory shows the cumulative slide. Requires git history; degrades to a
note when the repository is shallow or git is unavailable. Benches that
emit both routed_reach_qps.K* and local_reach_qps.K* get a derived
routed_over_local_reach.K* row per column (routed qps as a fraction of
shard-local qps, 1.0 = parity): the two raw qps rows are machine-specific
and drift together, but their ratio on the same run is the routed-reach
cliff itself, and its trajectory shows the cliff closing or reopening
across PRs.

Default mode is warn-only: always exits 0 and prints a summary table, so a
CI step can surface drift without gating merges. --strict exits 1 when a
structural metric regresses beyond tolerance.
"""

import argparse
import glob
import json
import os
import subprocess
import sys


def load_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        return None, str(err)
    return doc.get("metrics", {}), None


def is_timing(key):
    return key.endswith("_secs") or "_secs." in key or "speedup" in key


def is_throughput(key):
    """Higher-is-better rate metrics (queries/sec, updates/sec, ...).

    Like is_timing's "_secs." case, the dotted forms cover suffixed series
    keys such as "local_reach_qps.K4".
    """
    return (key.endswith("_qps") or key.endswith("_per_sec")
            or "_qps." in key or "_per_sec." in key
            or "throughput" in key)


def is_load_counter(key):
    """Answer-cache event counters (cache_*_hits / _misses / _inserts /
    _evictions): how many cache events a timed window saw is
    wall-clock-derived load, not structure, so these report like timing
    and never gate. cache_*_rate stays structural — hit *rate* is a
    property of the workload + canonicalization, deterministic given
    seeds and window-insensitive once warm."""
    head = key.split(".", 1)[0]
    return head.startswith("cache_") and head.endswith(
        ("_hits", "_misses", "_inserts", "_evictions"))


def print_table(rows, header):
    if not rows:
        return
    widths = [max(len(str(r[i])) for r in rows) for i in range(len(header))]
    widths = [max(w, len(h)) for w, h in zip(widths, header)]
    fmt = "  ".join("{:<%d}" % w for w in widths)
    print(fmt.format(*header))
    print(fmt.format(*("-" * w for w in widths)))
    for r in rows:
        print(fmt.format(*(str(c) for c in r)))


def git_metric_history(baseline_dir, name, depth):
    """Returns [(short_sha, metrics_dict)] for the last `depth` commits that
    touched BENCH_<name>.json, oldest first; None when git can't answer."""
    rel = f"BENCH_{name}.json"

    def run(args):
        return subprocess.run(
            ["git", "-C", baseline_dir] + args, capture_output=True,
            text=True, timeout=30)

    try:
        log = run(["log", "-n", str(depth), "--format=%h", "--", rel])
    except (OSError, subprocess.SubprocessError):
        return None
    if log.returncode != 0:
        return None
    shas = [s for s in log.stdout.split() if s]
    history = []
    for sha in reversed(shas):  # oldest first
        # "./" makes the path cwd-relative (gitrevisions); a bare path would
        # resolve against the repo root and break for subdirectory baselines.
        show = run(["show", f"{sha}:./{rel}"])
        if show.returncode != 0:
            continue  # file absent at that commit (or shallow-clone gap)
        try:
            history.append((sha, json.loads(show.stdout).get("metrics", {})))
        except ValueError:
            continue
    return history


def derived_ratios(metrics):
    """Cross-metric ratios worth tracking per column (see --trajectory in
    the module docstring): routed_over_local_reach.K* = routed_reach_qps.K*
    / local_reach_qps.K*, the routed-reach cliff. Both qps values come from
    the same run on the same machine, so the ratio is comparable across
    commits even though the raw rates are not."""
    out = {}
    for key, value in metrics.items():
        if not key.startswith("routed_reach_qps.K"):
            continue
        suffix = key[len("routed_reach_qps."):]
        try:
            routed = float(value)
            local = float(metrics.get(f"local_reach_qps.{suffix}"))
        except (TypeError, ValueError):
            continue
        if local > 0:
            out[f"routed_over_local_reach.{suffix}"] = routed / local
    return out


def print_trajectory(baseline_dir, name, new_metrics, depth):
    history = git_metric_history(baseline_dir, name, depth)
    if not history:
        print(f"trajectory[{name}]: no usable git history "
              "(shallow clone, or file never committed)")
        return
    columns = [sha for sha, _ in history] + ["new"]
    history = [(sha, {**metrics, **derived_ratios(metrics)})
               for sha, metrics in history]
    if new_metrics is not None:
        new_metrics = {**new_metrics, **derived_ratios(new_metrics)}
    # Union of keys across history and the new run: a reduced-config new
    # run (--subset-ok) must not hide the baseline metrics from the view.
    all_keys = set(new_metrics or {})
    for _, metrics in history:
        all_keys.update(metrics)
    keys = sorted(k for k in all_keys
                  if not is_timing(k) and not is_load_counter(k))
    rows = []
    for key in keys:
        cells = []
        for _, metrics in history:
            cells.append(f"{float(metrics[key]):g}" if key in metrics else "-")
        if new_metrics is not None:
            cells.append(f"{float(new_metrics[key]):g}"
                         if key in new_metrics else "-")
        else:
            cells.append("-")
        rows.append([key] + cells)
    print(f"\ntrajectory[{name}] (oldest -> newest):")
    print_table(rows, tuple(["metric"] + columns))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--new-dir", required=True)
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="allowed relative drift for structural metrics "
                             "(percent, default 10)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on structural drift beyond tolerance")
    parser.add_argument("--subset-ok", action="store_true",
                        help="metrics missing from the new run are SKIP, "
                             "not drift (reduced-config runs)")
    parser.add_argument("--trajectory", type=int, default=0, metavar="N",
                        help="also print each metric's value over the last "
                             "N commits of the committed baseline")
    parser.add_argument("names", nargs="*",
                        help="bench names (e.g. table1_reach_ratio); default "
                             "is every BENCH_*.json in --new-dir")
    args = parser.parse_args()

    names = args.names
    if not names:
        names = sorted(
            os.path.basename(p)[len("BENCH_"):-len(".json")]
            for p in glob.glob(os.path.join(args.new_dir, "BENCH_*.json")))
    if not names:
        print("bench_diff: no BENCH_*.json files found in", args.new_dir)
        return 0

    drifted = 0
    rows = []
    new_by_name = {}
    for name in names:
        base_path = os.path.join(args.baseline_dir, f"BENCH_{name}.json")
        new_path = os.path.join(args.new_dir, f"BENCH_{name}.json")
        base, base_err = load_metrics(base_path)
        new, new_err = load_metrics(new_path)
        new_by_name[name] = new
        if base is None or new is None:
            # A missing or unparseable file is the loudest possible
            # regression (the bench crashed before writing); never let
            # --strict pass over it.
            drifted += 1
            rows.append((name, "-", "(missing)",
                         base_err or new_err or "missing file", "MISSING"))
            continue
        for key in sorted(set(base) | set(new)):
            if key not in base or key not in new:
                # A structural metric that vanished from the new run counts
                # as drift (unless --subset-ok says the new run is a reduced
                # config); a metric that only just appeared does not.
                if key in base:
                    status = "SKIP" if args.subset_ok else "GONE"
                    if (status == "GONE" and not is_timing(key)
                            and not is_load_counter(key)):
                        drifted += 1
                else:
                    status = "NEW"
                rows.append((name, key, "-", "only in one side", status))
                continue
            b, n = float(base[key]), float(new[key])
            if b == n:
                continue
            rel = abs(n - b) / max(abs(b), 1e-12) * 100.0
            if is_timing(key):
                status = "timing"
            elif is_load_counter(key):
                status = "load"
            elif rel <= args.tolerance:
                status = "ok"
            elif is_throughput(key):
                # Higher-is-better, wall-clock-derived: direction is worth
                # showing (two-sided drift would flag a gain as regression),
                # but a cross-machine qps delta must not gate, same as the
                # _secs exemption.
                status = "GAIN" if n > b else "SLOWER"
            else:
                status = "DRIFT"
                drifted += 1
            if status != "ok":
                rows.append((name, key, f"{b:g} -> {n:g}", f"{rel:.1f}%",
                             status))

    if rows:
        print_table(rows, ("bench", "metric", "baseline -> new", "delta",
                           "status"))
    else:
        print("bench_diff: all compared metrics identical")

    print(f"\nbench_diff: {drifted} structural metric(s) beyond "
          f"{args.tolerance:.1f}% tolerance "
          f"({'strict' if args.strict else 'warn-only'})")

    if args.trajectory > 0:
        for name in names:
            print_trajectory(args.baseline_dir, name, new_by_name.get(name),
                             args.trajectory)

    return 1 if (args.strict and drifted) else 0


if __name__ == "__main__":
    sys.exit(main())
