// Copyright 2026 The QPGC Authors.
//
// The paper's pattern generator (Section 6, "Pattern generator"): patterns
// controlled by the number of nodes Vp, number of edges Ep, a label
// alphabet Lp drawn like the data graph's, and an upper bound k on edge
// constraints. Patterns are generated weakly connected so that every query
// node constrains the match.

#ifndef QPGC_PATTERN_PATTERN_GEN_H_
#define QPGC_PATTERN_PATTERN_GEN_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace qpgc {

/// Parameters for random pattern generation.
struct PatternGenOptions {
  /// Number of pattern nodes Vp.
  uint32_t num_nodes = 4;
  /// Number of pattern edges Ep (>= num_nodes - 1 to allow connectivity).
  uint32_t num_edges = 4;
  /// Upper bound for finite edge constraints (fe drawn from [1, max_bound]).
  uint32_t max_bound = 3;
  /// Probability that an edge gets bound '*' instead of a finite bound.
  double star_probability = 0.0;
};

/// Generates a random weakly-connected pattern. Labels are drawn from
/// `labels` (typically the distinct labels of the data graph, so patterns
/// have matching candidates).
PatternQuery RandomPattern(const std::vector<Label>& labels,
                           const PatternGenOptions& options, uint64_t seed);

/// Distinct labels of a graph (helper for RandomPattern).
std::vector<Label> DistinctLabels(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_PATTERN_PATTERN_GEN_H_
