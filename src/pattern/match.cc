// Copyright 2026 The QPGC Authors.

#include "pattern/match.h"

namespace qpgc {

MatchResult MatchFrom(const Graph& g, const PatternQuery& q,
                      std::vector<std::vector<NodeId>> candidates) {
  return MatchFrom<Graph>(g, q, std::move(candidates));
}

MatchResult Match(const Graph& g, const PatternQuery& q) {
  return Match<Graph>(g, q);
}

bool BooleanMatch(const Graph& g, const PatternQuery& q) {
  return BooleanMatch<Graph>(g, q);
}

}  // namespace qpgc
