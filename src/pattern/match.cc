// Copyright 2026 The QPGC Authors.

#include "pattern/match.h"

#include <algorithm>
#include <deque>

#include "graph/traversal.h"

namespace qpgc {

namespace {

// Prunes S(e.from) to nodes with a non-empty path of length <= e.bound to a
// member of S(e.to). Returns true iff S(e.from) shrank.
bool PruneByEdge(const Graph& g, const PatternEdge& e,
                 std::vector<std::vector<NodeId>>& sets) {
  const std::vector<NodeId>& targets = sets[e.to];
  std::vector<NodeId>& source = sets[e.from];
  if (source.empty()) return false;
  if (targets.empty()) {
    source.clear();
    return true;
  }
  const Bitset allowed =
      BoundedMultiSourceReach(g, targets, e.bound, Direction::kBackward);
  const size_t before = source.size();
  std::erase_if(source, [&](NodeId v) { return !allowed.Test(v); });
  return source.size() != before;
}

}  // namespace

MatchResult MatchFrom(const Graph& g, const PatternQuery& q,
                      std::vector<std::vector<NodeId>> candidates) {
  QPGC_CHECK(candidates.size() == q.num_nodes());
  MatchResult result;
  result.fixpoint_sets = std::move(candidates);

  // Worklist of pattern-edge ids whose *target* set changed (initially all).
  std::deque<uint32_t> worklist;
  std::vector<uint8_t> queued(q.num_edges(), 0);
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    worklist.push_back(e);
    queued[e] = 1;
  }

  while (!worklist.empty()) {
    const uint32_t eid = worklist.front();
    worklist.pop_front();
    queued[eid] = 0;
    const PatternEdge& e = q.edge(eid);
    if (PruneByEdge(g, e, result.fixpoint_sets)) {
      // S(e.from) shrank: every edge whose target is e.from must re-check.
      for (uint32_t other : q.in_edges(e.from)) {
        if (!queued[other]) {
          worklist.push_back(other);
          queued[other] = 1;
        }
      }
    }
  }

  result.matched = true;
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    if (result.fixpoint_sets[u].empty()) {
      result.matched = false;
      break;
    }
  }
  result.match_sets = result.matched
                          ? result.fixpoint_sets
                          : std::vector<std::vector<NodeId>>(q.num_nodes());
  return result;
}

MatchResult Match(const Graph& g, const PatternQuery& q) {
  std::vector<std::vector<NodeId>> candidates(q.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (uint32_t u = 0; u < q.num_nodes(); ++u) {
      if (q.label(u) == g.label(v)) candidates[u].push_back(v);
    }
  }
  return MatchFrom(g, q, std::move(candidates));
}

bool BooleanMatch(const Graph& g, const PatternQuery& q) {
  return Match(g, q).matched;
}

}  // namespace qpgc
