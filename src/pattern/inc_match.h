// Copyright 2026 The QPGC Authors.
//
// IncBMatch: incremental maintenance of a bounded-simulation match under
// batch edge updates (the paper's comparison point in Fig. 12(h), after
// [9]). Semi-naive evaluation built on two exactness facts about the Match
// fixpoint (see pattern/match.h):
//
//  * The pruning operator is monotone in the edge set, so after deletions
//    the old fixpoint is a superset of the new one — a warm-started
//    downward fixpoint from the old sets is exact and touches only what
//    changed.
//  * A node can *enter* the fixpoint after insertions only if some required
//    path from it uses an inserted edge, i.e. only if it reaches an inserted
//    edge's source in the updated graph. Warm-starting from
//    (old fixpoint ∪ label-matching nodes in the backward cone of inserted
//    sources) is therefore a superset of the new fixpoint — again exact.
//
// Cost grows with the affected region, approaching a full Match as ΔG
// grows — exactly the crossover the paper reports.

#ifndef QPGC_PATTERN_INC_MATCH_H_
#define QPGC_PATTERN_INC_MATCH_H_

#include "graph/graph.h"
#include "graph/update.h"
#include "pattern/match.h"
#include "pattern/pattern.h"
#include "util/lifetime_annotations.h"

namespace qpgc {

/// Maintains the maximum match of one pattern over an evolving graph.
class IncBMatch {
 public:
  /// Computes the initial match of `q` in `g`. The graph is borrowed; the
  /// caller mutates it via ApplyBatch and then calls Update with the
  /// effective batch.
  IncBMatch(const Graph* g, PatternQuery q);

  /// Incrementally updates the match after `effective` has been applied to
  /// the underlying graph.
  void Update(const UpdateBatch& effective);

  /// Current maximum match.
  const MatchResult& result() const QPGC_LIFETIME_BOUND { return result_; }

 private:
  const Graph* g_;
  PatternQuery q_;
  MatchResult result_;
};

}  // namespace qpgc

#endif  // QPGC_PATTERN_INC_MATCH_H_
