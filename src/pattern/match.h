// Copyright 2026 The QPGC Authors.
//
// The Match algorithm for bounded simulation (Section 2.1 / [9]): computes
// the unique maximum match S_M of a pattern Qp in a graph G (Lemma 1), or
// reports that Qp does not match G.
//
// Algorithm: downward fixpoint on candidate sets. S(u) starts at all
// label-matching nodes; a pattern edge (u, u') prunes from S(u) every node
// that cannot reach a member of S(u') by a non-empty path of length <=
// fe(u, u') (one bounded multi-source backward BFS per re-check). A worklist
// over pattern edges re-checks an edge only when its target set shrank.
// The pruning operator is monotone, so iterating from any superset of the
// greatest fixpoint converges exactly to it — which is what makes warm
// starts (incremental matching, pattern/inc_match.h) exact as well.
//
// Templated over GraphView: the same matcher runs on the dynamic Graph, on
// frozen CsrGraph snapshots, and on compressed graphs (the paper's claim
// that stock algorithms run on Gr unchanged extends to frozen views).

#ifndef QPGC_PATTERN_MATCH_H_
#define QPGC_PATTERN_MATCH_H_

#include <deque>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "graph/traversal.h"
#include "pattern/pattern.h"

namespace qpgc {

/// The maximum match of a pattern in a graph.
struct MatchResult {
  /// True iff Qp matches G (every pattern node has candidates in the
  /// greatest fixpoint).
  bool matched = false;
  /// match_sets[u] = sorted data nodes v with (u, v) in the maximum match.
  /// Empty everywhere when matched == false (the paper defines the answer as
  /// the empty set then).
  std::vector<std::vector<NodeId>> match_sets;
  /// The greatest fixpoint itself, regardless of the emptiness rule. This is
  /// what incremental maintenance warm-starts from.
  std::vector<std::vector<NodeId>> fixpoint_sets;

  /// Total number of (u, v) pairs in the answer.
  size_t TotalPairs() const {
    size_t total = 0;
    for (const auto& s : match_sets) total += s.size();
    return total;
  }

  bool operator==(const MatchResult& o) const {
    return matched == o.matched && match_sets == o.match_sets;
  }
};

namespace match_detail {

// Prunes S(e.from) to nodes with a non-empty path of length <= e.bound to a
// member of S(e.to). Returns true iff S(e.from) shrank.
template <GraphView G>
bool PruneByEdge(const G& g, const PatternEdge& e,
                 std::vector<std::vector<NodeId>>& sets) {
  const std::vector<NodeId>& targets = sets[e.to];
  std::vector<NodeId>& source = sets[e.from];
  if (source.empty()) return false;
  if (targets.empty()) {
    source.clear();
    return true;
  }
  const Bitset allowed =
      BoundedMultiSourceReach(g, targets, e.bound, Direction::kBackward);
  const size_t before = source.size();
  std::erase_if(source, [&](NodeId v) { return !allowed.Test(v); });
  return source.size() != before;
}

}  // namespace match_detail

/// Computes the greatest fixpoint starting from the given candidate sets,
/// which must each be a superset of the true fixpoint (and a subset of the
/// label-matching nodes). Used by Match (label candidates) and by
/// IncBMatch (warm starts). Sets must be sorted.
template <GraphView G>
MatchResult MatchFrom(const G& g, const PatternQuery& q,
                      std::vector<std::vector<NodeId>> candidates) {
  QPGC_CHECK(candidates.size() == q.num_nodes());
  MatchResult result;
  result.fixpoint_sets = std::move(candidates);

  // Worklist of pattern-edge ids whose *target* set changed (initially all).
  std::deque<uint32_t> worklist;
  std::vector<uint8_t> queued(q.num_edges(), 0);
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    worklist.push_back(e);
    queued[e] = 1;
  }

  while (!worklist.empty()) {
    const uint32_t eid = worklist.front();
    worklist.pop_front();
    queued[eid] = 0;
    const PatternEdge& e = q.edge(eid);
    if (match_detail::PruneByEdge(g, e, result.fixpoint_sets)) {
      // S(e.from) shrank: every edge whose target is e.from must re-check.
      for (uint32_t other : q.in_edges(e.from)) {
        if (!queued[other]) {
          worklist.push_back(other);
          queued[other] = 1;
        }
      }
    }
  }

  result.matched = true;
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    if (result.fixpoint_sets[u].empty()) {
      result.matched = false;
      break;
    }
  }
  result.match_sets = result.matched
                          ? result.fixpoint_sets
                          : std::vector<std::vector<NodeId>>(q.num_nodes());
  return result;
}

/// Computes the maximum match of q in g.
template <GraphView G>
MatchResult Match(const G& g, const PatternQuery& q) {
  std::vector<std::vector<NodeId>> candidates(q.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (uint32_t u = 0; u < q.num_nodes(); ++u) {
      if (q.label(u) == g.label(v)) candidates[u].push_back(v);
    }
  }
  return MatchFrom(g, q, std::move(candidates));
}

/// True iff q matches g (Boolean pattern query; no post-processing needed on
/// compressed graphs).
template <GraphView G>
bool BooleanMatch(const G& g, const PatternQuery& q) {
  return Match(g, q).matched;
}

// Non-template Graph overloads (compiled once in match.cc).
MatchResult Match(const Graph& g, const PatternQuery& q);
MatchResult MatchFrom(const Graph& g, const PatternQuery& q,
                      std::vector<std::vector<NodeId>> candidates);
bool BooleanMatch(const Graph& g, const PatternQuery& q);

}  // namespace qpgc

#endif  // QPGC_PATTERN_MATCH_H_
