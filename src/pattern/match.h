// Copyright 2026 The QPGC Authors.
//
// The Match algorithm for bounded simulation (Section 2.1 / [9]): computes
// the unique maximum match S_M of a pattern Qp in a graph G (Lemma 1), or
// reports that Qp does not match G.
//
// Algorithm: downward fixpoint on candidate sets. S(u) starts at all
// label-matching nodes; a pattern edge (u, u') prunes from S(u) every node
// that cannot reach a member of S(u') by a non-empty path of length <=
// fe(u, u') (one bounded multi-source backward BFS per re-check). A worklist
// over pattern edges re-checks an edge only when its target set shrank.
// The pruning operator is monotone, so iterating from any superset of the
// greatest fixpoint converges exactly to it — which is what makes warm
// starts (incremental matching, pattern/inc_match.h) exact as well.

#ifndef QPGC_PATTERN_MATCH_H_
#define QPGC_PATTERN_MATCH_H_

#include <vector>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace qpgc {

/// The maximum match of a pattern in a graph.
struct MatchResult {
  /// True iff Qp matches G (every pattern node has candidates in the
  /// greatest fixpoint).
  bool matched = false;
  /// match_sets[u] = sorted data nodes v with (u, v) in the maximum match.
  /// Empty everywhere when matched == false (the paper defines the answer as
  /// the empty set then).
  std::vector<std::vector<NodeId>> match_sets;
  /// The greatest fixpoint itself, regardless of the emptiness rule. This is
  /// what incremental maintenance warm-starts from.
  std::vector<std::vector<NodeId>> fixpoint_sets;

  /// Total number of (u, v) pairs in the answer.
  size_t TotalPairs() const {
    size_t total = 0;
    for (const auto& s : match_sets) total += s.size();
    return total;
  }

  bool operator==(const MatchResult& o) const {
    return matched == o.matched && match_sets == o.match_sets;
  }
};

/// Computes the maximum match of q in g.
MatchResult Match(const Graph& g, const PatternQuery& q);

/// Computes the greatest fixpoint starting from the given candidate sets,
/// which must each be a superset of the true fixpoint (and a subset of the
/// label-matching nodes). Used by Match (label candidates) and by
/// IncBMatch (warm starts). Sets must be sorted.
MatchResult MatchFrom(const Graph& g, const PatternQuery& q,
                      std::vector<std::vector<NodeId>> candidates);

/// True iff q matches g (Boolean pattern query; no post-processing needed on
/// compressed graphs).
bool BooleanMatch(const Graph& g, const PatternQuery& q);

}  // namespace qpgc

#endif  // QPGC_PATTERN_MATCH_H_
