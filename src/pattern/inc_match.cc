// Copyright 2026 The QPGC Authors.

#include "pattern/inc_match.h"

#include <algorithm>

#include "graph/traversal.h"
#include "util/bitset.h"

namespace qpgc {

IncBMatch::IncBMatch(const Graph* g, PatternQuery q)
    : g_(g), q_(std::move(q)), result_(Match(*g_, q_)) {}

void IncBMatch::Update(const UpdateBatch& effective) {
  if (effective.empty()) return;

  std::vector<NodeId> inserted_sources;
  for (const auto& up : effective.updates) {
    if (up.is_insert) inserted_sources.push_back(up.u);
  }

  std::vector<std::vector<NodeId>> candidates = result_.fixpoint_sets;
  if (!inserted_sources.empty()) {
    // Backward cone of inserted sources in the updated graph, plus the
    // sources themselves (a source can enter the match directly).
    Bitset affected = BoundedMultiSourceReach(
        *g_, inserted_sources, kUnboundedDepth, Direction::kBackward);
    for (NodeId s : inserted_sources) affected.Set(s);

    std::vector<NodeId> affected_nodes = affected.ToVector();
    for (uint32_t u = 0; u < q_.num_nodes(); ++u) {
      std::vector<NodeId> extra;
      for (NodeId v : affected_nodes) {
        if (g_->label(v) == q_.label(u)) extra.push_back(v);
      }
      std::vector<NodeId> merged;
      merged.reserve(candidates[u].size() + extra.size());
      std::set_union(candidates[u].begin(), candidates[u].end(), extra.begin(),
                     extra.end(), std::back_inserter(merged));
      candidates[u] = std::move(merged);
    }
  }
  result_ = MatchFrom(*g_, q_, std::move(candidates));
}

}  // namespace qpgc
