// Copyright 2026 The QPGC Authors.

#include "pattern/pattern_gen.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/rng.h"

namespace qpgc {

std::vector<Label> DistinctLabels(const Graph& g) {
  std::unordered_set<Label> seen(g.labels().begin(), g.labels().end());
  std::vector<Label> labels(seen.begin(), seen.end());
  std::sort(labels.begin(), labels.end());
  return labels;
}

PatternQuery RandomPattern(const std::vector<Label>& labels,
                           const PatternGenOptions& options, uint64_t seed) {
  QPGC_CHECK(!labels.empty());
  QPGC_CHECK(options.num_nodes >= 1);
  Rng rng(seed);
  PatternQuery q;
  for (uint32_t u = 0; u < options.num_nodes; ++u) {
    q.AddNode(labels[rng.Uniform(labels.size())]);
  }

  const auto draw_bound = [&]() -> uint32_t {
    if (rng.Chance(options.star_probability)) return kStarBound;
    return static_cast<uint32_t>(rng.UniformInt(1, options.max_bound));
  };

  std::set<std::pair<uint32_t, uint32_t>> used;
  // Spanning structure first: connect node i to a random earlier node, in a
  // random direction, so the pattern is weakly connected.
  for (uint32_t i = 1; i < options.num_nodes && q.num_edges() < options.num_edges;
       ++i) {
    const uint32_t other = static_cast<uint32_t>(rng.Uniform(i));
    const bool outward = rng.Chance(0.5);
    const uint32_t from = outward ? other : i;
    const uint32_t to = outward ? i : other;
    if (used.insert({from, to}).second) q.AddEdge(from, to, draw_bound());
  }
  // Remaining edges uniformly among distinct ordered pairs.
  const uint64_t max_pairs =
      static_cast<uint64_t>(options.num_nodes) * (options.num_nodes - 1);
  size_t guard = 0;
  while (q.num_edges() < options.num_edges && used.size() < max_pairs &&
         guard < 100000) {
    ++guard;
    const uint32_t from = static_cast<uint32_t>(rng.Uniform(options.num_nodes));
    const uint32_t to = static_cast<uint32_t>(rng.Uniform(options.num_nodes));
    if (from == to) continue;
    if (used.insert({from, to}).second) q.AddEdge(from, to, draw_bound());
  }
  return q;
}

}  // namespace qpgc
