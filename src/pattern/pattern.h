// Copyright 2026 The QPGC Authors.
//
// Graph pattern queries via (bounded) simulation, as defined in Section 2.1
// (after Fan et al., PVLDB 2010). A pattern Qp = (Vp, Ep, fv, fe):
//   * each pattern node u carries a label fv(u) that a data node must match;
//   * each pattern edge (u, u') carries a bound fe: a positive integer k
//     (mapped to a non-empty path of length <= k) or * (any non-empty path).
// Graph simulation [12] is the special case with every bound equal to 1.

#ifndef QPGC_PATTERN_PATTERN_H_
#define QPGC_PATTERN_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/lifetime_annotations.h"

namespace qpgc {

/// Bound value representing '*' (unbounded path length).
inline constexpr uint32_t kStarBound = UINT32_MAX;

/// A pattern edge (from, to) with its bound fe(from, to).
struct PatternEdge {
  uint32_t from = 0;
  uint32_t to = 0;
  uint32_t bound = 1;  // k >= 1, or kStarBound
};

/// A graph pattern query Qp = (Vp, Ep, fv, fe).
class PatternQuery {
 public:
  PatternQuery() = default;

  /// Adds a pattern node with search condition `label`; returns its id.
  uint32_t AddNode(Label label) {
    labels_.push_back(label);
    out_.emplace_back();
    in_.emplace_back();
    return static_cast<uint32_t>(labels_.size() - 1);
  }

  /// Adds a pattern edge with bound k (or kStarBound).
  void AddEdge(uint32_t from, uint32_t to, uint32_t bound) {
    QPGC_CHECK(from < labels_.size() && to < labels_.size());
    QPGC_CHECK(bound >= 1);
    const uint32_t id = static_cast<uint32_t>(edges_.size());
    edges_.push_back(PatternEdge{from, to, bound});
    out_[from].push_back(id);
    in_[to].push_back(id);
  }

  size_t num_nodes() const { return labels_.size(); }
  size_t num_edges() const { return edges_.size(); }
  Label label(uint32_t u) const { return labels_[u]; }
  const PatternEdge& edge(uint32_t e) const QPGC_LIFETIME_BOUND {
    return edges_[e];
  }
  const std::vector<PatternEdge>& edges() const QPGC_LIFETIME_BOUND {
    return edges_;
  }
  /// Ids of edges leaving pattern node u.
  const std::vector<uint32_t>& out_edges(uint32_t u) const
      QPGC_LIFETIME_BOUND {
    return out_[u];
  }
  /// Ids of edges entering pattern node u (edges whose target is u). The
  /// Match worklist uses this for O(in-degree) re-enqueue when S(u) shrinks.
  const std::vector<uint32_t>& in_edges(uint32_t u) const QPGC_LIFETIME_BOUND {
    return in_[u];
  }

  /// True iff every bound is 1 (plain graph simulation [12]).
  bool IsSimulationPattern() const {
    for (const auto& e : edges_) {
      if (e.bound != 1) return false;
    }
    return true;
  }

  /// One-line description, e.g. "Pattern(|Vp|=3, |Ep|=3, k<=2)".
  std::string DebugString() const;

 private:
  std::vector<Label> labels_;
  std::vector<PatternEdge> edges_;
  std::vector<std::vector<uint32_t>> out_;  // node -> out edge ids
  std::vector<std::vector<uint32_t>> in_;   // node -> in edge ids
};

}  // namespace qpgc

#endif  // QPGC_PATTERN_PATTERN_H_
