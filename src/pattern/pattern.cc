// Copyright 2026 The QPGC Authors.

#include "pattern/pattern.h"

#include <algorithm>
#include <cstdio>

namespace qpgc {

std::string PatternQuery::DebugString() const {
  uint32_t max_bound = 0;
  bool has_star = false;
  for (const auto& e : edges_) {
    if (e.bound == kStarBound) {
      has_star = true;
    } else {
      max_bound = std::max(max_bound, e.bound);
    }
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Pattern(|Vp|=%zu, |Ep|=%zu, k<=%u%s)",
                num_nodes(), num_edges(), max_bound, has_star ? ", *" : "");
  return std::string(buf);
}

}  // namespace qpgc
