// Copyright 2026 The QPGC Authors.

#include "bisim/kbisim.h"

#include "bisim/signature_bisim.h"
#include "graph/builder.h"

namespace qpgc {

Partition KBisimulation(const Graph& g, size_t k) {
  Partition p = LabelPartition(g);
  for (size_t i = 0; i < k; ++i) {
    if (!RefineOnce(g, p)) break;
  }
  p.Normalize();
  return p;
}

Partition KBisimulationBackward(const Graph& g, size_t k) {
  Graph reversed = g;
  reversed.Reverse();
  Partition p = LabelPartition(reversed);
  for (size_t i = 0; i < k; ++i) {
    if (!RefineOnce(reversed, p)) break;
  }
  p.Normalize();
  return p;
}

Graph QuotientGraph(const Graph& g, const Partition& p) {
  GraphBuilder builder(p.num_blocks);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    builder.SetLabel(p.block_of[v], g.label(v));
  }
  g.ForEachEdge([&](NodeId u, NodeId v) {
    builder.AddEdge(p.block_of[u], p.block_of[v]);
  });
  return builder.Build();
}

Graph AkIndexGraph(const Graph& g, size_t k) {
  return QuotientGraph(g, KBisimulationBackward(g, k));
}

}  // namespace qpgc
