// Copyright 2026 The QPGC Authors.

#include "bisim/kbisim.h"

#include "graph/csr.h"

namespace qpgc {

Partition KBisimulation(const Graph& g, size_t k, BisimEngine engine) {
  return KBisimulation<Graph>(g, k, engine);
}

Partition KBisimulationBackward(const Graph& g, size_t k, BisimEngine engine) {
  return KBisimulationBackward<Graph>(g, k, engine);
}

Partition KBisimulationBackwardCopying(const Graph& g, size_t k,
                                       BisimEngine engine) {
  Graph reversed = g;
  reversed.Reverse();
  return KBisimulation(reversed, k, engine);
}

Graph QuotientGraph(const Graph& g, const Partition& p) {
  return QuotientGraph<Graph>(g, p);
}

Graph AkIndexGraph(const Graph& g, size_t k) {
  const CsrGraph frozen(g);
  return QuotientGraph(frozen, KBisimulationBackward(frozen, k));
}

}  // namespace qpgc
