// Copyright 2026 The QPGC Authors.

#include "bisim/kbisim.h"

#include "bisim/paige_tarjan.h"
#include "bisim/signature_bisim.h"
#include "graph/builder.h"

namespace qpgc {

namespace {

Partition BoundedRefinement(const Graph& g, size_t k, BisimEngine engine) {
  // Any non-oracle engine choice uses the splitter rounds; the two bounded
  // variants are the same partition sequence, so only the oracle needs the
  // literal whole-partition rounds.
  if (engine != BisimEngine::kSignature) return KBisimulationSplitter(g, k);
  Partition p = LabelPartition(g);
  for (size_t i = 0; i < k; ++i) {
    if (!RefineOnce(g, p)) break;
  }
  p.Normalize();
  return p;
}

}  // namespace

Partition KBisimulation(const Graph& g, size_t k, BisimEngine engine) {
  return BoundedRefinement(g, k, engine);
}

Partition KBisimulationBackward(const Graph& g, size_t k, BisimEngine engine) {
  Graph reversed = g;
  reversed.Reverse();
  return BoundedRefinement(reversed, k, engine);
}

Graph QuotientGraph(const Graph& g, const Partition& p) {
  GraphBuilder builder(p.num_blocks);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    builder.SetLabel(p.block_of[v], g.label(v));
  }
  g.ForEachEdge([&](NodeId u, NodeId v) {
    builder.AddEdge(p.block_of[u], p.block_of[v]);
  });
  return builder.Build();
}

Graph AkIndexGraph(const Graph& g, size_t k) {
  return QuotientGraph(g, KBisimulationBackward(g, k));
}

}  // namespace qpgc
