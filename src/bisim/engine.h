// Copyright 2026 The QPGC Authors.
//
// Engine selection for the maximum-bisimulation computation. Three engines
// produce the identical coarsest stable partition (differentially tested):
//
//   kPaigeTarjan  splitter-based partition refinement with count records,
//                 O(|E| log |V|); the default. Near-linear on the deep
//                 chains / layered DAGs that degrade the fixpoint engines.
//   kRanked       rank-stratified signature refinement (Dovier-Piazza-
//                 Policriti style); fast when strata are shallow.
//   kSignature    global signature-refinement rounds to fixpoint,
//                 Θ(depth · |E|) worst case; kept as the simple oracle for
//                 differential testing.
//
// The enum threads through CompressB (core/pattern_scheme.h), the k-bisim
// variants (bisim/kbisim.h), the incremental re-converge path (inc/), and
// qpgc_tool --bisim-engine. This header stays lightweight (enum + Graph
// overload) so enum-only consumers don't pull in the engine bodies; the
// GraphView template dispatch lives in bisim/max_bisimulation.h.

#ifndef QPGC_BISIM_ENGINE_H_
#define QPGC_BISIM_ENGINE_H_

#include <string_view>

#include "bisim/partition.h"
#include "graph/graph.h"

namespace qpgc {

/// Which algorithm computes the maximum bisimulation.
enum class BisimEngine {
  kPaigeTarjan,
  kRanked,
  kSignature,
};

/// Computes the maximum bisimulation of g with the chosen engine. The
/// GraphView template overload is in bisim/max_bisimulation.h.
Partition MaxBisimulation(const Graph& g,
                          BisimEngine engine = BisimEngine::kPaigeTarjan);

/// Canonical spelling, e.g. "paige-tarjan".
const char* BisimEngineName(BisimEngine engine);

/// Parses "paige-tarjan"/"pt", "ranked", "signature"/"sig" (case-sensitive).
/// Returns false on anything else, leaving *engine untouched.
bool ParseBisimEngine(std::string_view text, BisimEngine* engine);

}  // namespace qpgc

#endif  // QPGC_BISIM_ENGINE_H_
