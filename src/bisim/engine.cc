// Copyright 2026 The QPGC Authors.

#include "bisim/engine.h"

#include "bisim/paige_tarjan.h"
#include "bisim/ranked_bisim.h"
#include "bisim/signature_bisim.h"

namespace qpgc {

Partition MaxBisimulation(const Graph& g, BisimEngine engine) {
  switch (engine) {
    case BisimEngine::kPaigeTarjan:
      return PaigeTarjanBisimulation(g);
    case BisimEngine::kRanked:
      return RankedBisimulation(g);
    case BisimEngine::kSignature:
      return SignatureBisimulation(g);
  }
  QPGC_CHECK(false && "unknown BisimEngine");
  return Partition{};
}

const char* BisimEngineName(BisimEngine engine) {
  switch (engine) {
    case BisimEngine::kPaigeTarjan:
      return "paige-tarjan";
    case BisimEngine::kRanked:
      return "ranked";
    case BisimEngine::kSignature:
      return "signature";
  }
  return "unknown";
}

bool ParseBisimEngine(std::string_view text, BisimEngine* engine) {
  if (text == "paige-tarjan" || text == "pt") {
    *engine = BisimEngine::kPaigeTarjan;
    return true;
  }
  if (text == "ranked") {
    *engine = BisimEngine::kRanked;
    return true;
  }
  if (text == "signature" || text == "sig") {
    *engine = BisimEngine::kSignature;
    return true;
  }
  return false;
}

}  // namespace qpgc
