// Copyright 2026 The QPGC Authors.

#include "bisim/engine.h"

#include "bisim/max_bisimulation.h"

namespace qpgc {

Partition MaxBisimulation(const Graph& g, BisimEngine engine) {
  return MaxBisimulation<Graph>(g, engine);
}

const char* BisimEngineName(BisimEngine engine) {
  switch (engine) {
    case BisimEngine::kPaigeTarjan:
      return "paige-tarjan";
    case BisimEngine::kRanked:
      return "ranked";
    case BisimEngine::kSignature:
      return "signature";
  }
  return "unknown";
}

bool ParseBisimEngine(std::string_view text, BisimEngine* engine) {
  if (text == "paige-tarjan" || text == "pt") {
    *engine = BisimEngine::kPaigeTarjan;
    return true;
  }
  if (text == "ranked") {
    *engine = BisimEngine::kRanked;
    return true;
  }
  if (text == "signature" || text == "sig") {
    *engine = BisimEngine::kSignature;
    return true;
  }
  return false;
}

}  // namespace qpgc
