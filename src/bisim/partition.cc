// Copyright 2026 The QPGC Authors.

#include "bisim/partition.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"

namespace qpgc {

std::vector<std::vector<NodeId>> Partition::Members() const {
  std::vector<std::vector<NodeId>> members(num_blocks);
  for (NodeId v = 0; v < block_of.size(); ++v) {
    QPGC_DCHECK(block_of[v] < num_blocks);
    members[block_of[v]].push_back(v);
  }
  return members;
}

std::vector<std::vector<NodeId>> Partition::CanonicalClasses() const {
  std::vector<std::vector<NodeId>> classes = Members();
  std::sort(classes.begin(), classes.end());
  return classes;
}

void Partition::Normalize() {
  std::vector<NodeId> remap(num_blocks, kInvalidNode);
  NodeId next = 0;
  for (NodeId& b : block_of) {
    if (remap[b] == kInvalidNode) remap[b] = next++;
    b = remap[b];
  }
  num_blocks = next;
}

bool IsStableBisimulationPartition(const Graph& g, const Partition& p) {
  const auto members = p.Members();
  // Label uniformity.
  for (const auto& block : members) {
    for (size_t i = 1; i < block.size(); ++i) {
      if (g.label(block[i]) != g.label(block[0])) return false;
    }
  }
  // Stability: members of one block must have identical successor-block
  // *sets*.
  for (const auto& block : members) {
    std::unordered_set<NodeId> expected;
    for (size_t i = 0; i < block.size(); ++i) {
      std::unordered_set<NodeId> got;
      for (NodeId w : g.OutNeighbors(block[i])) got.insert(p.block_of[w]);
      if (i == 0) {
        expected = std::move(got);
      } else if (got != expected) {
        return false;
      }
    }
  }
  return true;
}

bool SamePartition(const Partition& a, const Partition& b) {
  if (a.block_of.size() != b.block_of.size()) return false;
  return a.CanonicalClasses() == b.CanonicalClasses();
}

bool Refines(const Partition& fine, const Partition& coarse) {
  if (fine.block_of.size() != coarse.block_of.size()) return false;
  std::vector<NodeId> image(fine.num_blocks, kInvalidNode);
  for (NodeId v = 0; v < fine.block_of.size(); ++v) {
    NodeId& img = image[fine.block_of[v]];
    if (img == kInvalidNode) {
      img = coarse.block_of[v];
    } else if (img != coarse.block_of[v]) {
      return false;
    }
  }
  return true;
}

}  // namespace qpgc
