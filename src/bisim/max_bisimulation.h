// Copyright 2026 The QPGC Authors.
//
// GraphView dispatch over the maximum-bisimulation engines. Split from
// bisim/engine.h so that enum-only consumers (the inc/ layer, options
// structs) don't pull the full engine template bodies into their TUs;
// include this header where the engine actually runs on a generic view.

#ifndef QPGC_BISIM_MAX_BISIMULATION_H_
#define QPGC_BISIM_MAX_BISIMULATION_H_

#include "bisim/engine.h"
#include "bisim/paige_tarjan.h"
#include "bisim/partition.h"
#include "bisim/ranked_bisim.h"
#include "bisim/signature_bisim.h"
#include "graph/graph_view.h"

namespace qpgc {

/// Computes the maximum bisimulation of g with the chosen engine.
template <GraphView G>
Partition MaxBisimulation(const G& g,
                          BisimEngine engine = BisimEngine::kPaigeTarjan) {
  switch (engine) {
    case BisimEngine::kPaigeTarjan:
      return PaigeTarjanBisimulation(g);
    case BisimEngine::kRanked:
      return RankedBisimulation(g);
    case BisimEngine::kSignature:
      return SignatureBisimulation(g);
  }
  QPGC_CHECK(false && "unknown BisimEngine");
  return Partition{};
}

}  // namespace qpgc

#endif  // QPGC_BISIM_MAX_BISIMULATION_H_
