// Copyright 2026 The QPGC Authors.
//
// Rank-stratified maximum bisimulation, after Dovier, Piazza & Policriti's
// fast bisimulation algorithm ([8] in the paper — the algorithm compressB
// cites for its O(|E| log |V|) bound).
//
// The key structural facts (Lemma 9 and [8]):
//   * bisimilar nodes have equal rank rb;
//   * an edge can only go from a node of rank r to a node of rank < r
//     (well-founded child) or rank == r (non-well-founded child in the same
//     stratum).
// So the partition can be computed stratum by stratum in ascending rank
// order: when a stratum is processed, all its cross-stratum successors are
// already final, and only the within-stratum dependencies need a fixpoint.
// Each stratum's fixpoint is a local signature refinement; split blocks only
// ever subdivide, and ids of untouched blocks are preserved, so work is
// proportional to the stratum touched.

#ifndef QPGC_BISIM_RANKED_BISIM_H_
#define QPGC_BISIM_RANKED_BISIM_H_

#include "bisim/partition.h"
#include "graph/graph.h"

namespace qpgc {

/// Maximum bisimulation via rank stratification. Equivalent to
/// SignatureBisimulation (property-tested) but avoids global rounds.
Partition RankedBisimulation(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_BISIM_RANKED_BISIM_H_
