// Copyright 2026 The QPGC Authors.
//
// Rank-stratified maximum bisimulation, after Dovier, Piazza & Policriti's
// fast bisimulation algorithm ([8] in the paper — the algorithm compressB
// cites for its O(|E| log |V|) bound).
//
// The key structural facts (Lemma 9 and [8]):
//   * bisimilar nodes have equal rank rb;
//   * an edge can only go from a node of rank r to a node of rank < r
//     (well-founded child) or rank == r (non-well-founded child in the same
//     stratum).
// So the partition can be computed stratum by stratum in ascending rank
// order: when a stratum is processed, all its cross-stratum successors are
// already final, and only the within-stratum dependencies need a fixpoint.
// Each stratum's fixpoint is a local signature refinement; split blocks only
// ever subdivide, and ids of untouched blocks are preserved, so work is
// proportional to the stratum touched.

#ifndef QPGC_BISIM_RANKED_BISIM_H_
#define QPGC_BISIM_RANKED_BISIM_H_

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "bisim/partition.h"
#include "bisim/refine_detail.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "graph/topology.h"
#include "util/hash.h"

namespace qpgc {

/// Maximum bisimulation via rank stratification. Equivalent to
/// SignatureBisimulation (property-tested) but avoids global rounds.
template <GraphView G>
Partition RankedBisimulation(const G& g) {
  using bisim_detail::Sig;
  using bisim_detail::SigHash;

  const size_t n = g.num_nodes();
  Partition p;
  p.block_of.assign(n, 0);
  if (n == 0) return p;

  const std::vector<int32_t> ranks = BisimRanks(g);

  // Strata in ascending rank order (kRankNegInf == INT32_MIN sorts first).
  std::map<int32_t, std::vector<NodeId>> strata;
  for (NodeId v = 0; v < n; ++v) strata[ranks[v]].push_back(v);

  // Initial partition: (rank, label). Never separates bisimilar nodes
  // (Lemma 9 plus label equality).
  NodeId num_blocks = 0;
  {
    std::unordered_map<std::pair<uint64_t, uint64_t>, NodeId, PairHash> init;
    for (NodeId v = 0; v < n; ++v) {
      const std::pair<uint64_t, uint64_t> key{
          static_cast<uint64_t>(static_cast<int64_t>(ranks[v])), g.label(v)};
      const auto [it, inserted] = init.try_emplace(key, num_blocks);
      if (inserted) ++num_blocks;
      p.block_of[v] = it->second;
    }
  }

  std::vector<NodeId> succ;
  for (auto& [rank, nodes] : strata) {
    (void)rank;
    // Local fixpoint: refine the stratum's blocks by successor-block sets
    // until stable. Cross-stratum successors are already final.
    bool changed = true;
    while (changed) {
      changed = false;
      // Group stratum nodes by signature.
      std::unordered_map<Sig, std::vector<NodeId>, SigHash> groups;
      groups.reserve(nodes.size());
      for (NodeId v : nodes) {
        succ.clear();
        for (NodeId w : g.OutNeighbors(v)) succ.push_back(p.block_of[w]);
        std::sort(succ.begin(), succ.end());
        succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
        groups[Sig{p.block_of[v], succ}].push_back(v);
      }
      // Count groups per old block; split blocks with more than one group.
      std::unordered_map<NodeId, NodeId> groups_seen;  // block -> #groups
      for (const auto& [sig, members] : groups) ++groups_seen[sig.block];
      std::unordered_map<NodeId, bool> first_kept;
      for (auto& [sig, members] : groups) {
        if (groups_seen[sig.block] == 1) continue;  // untouched block id
        auto [it, inserted] = first_kept.try_emplace(sig.block, true);
        if (inserted) continue;  // first group keeps the old id
        const NodeId fresh = num_blocks++;
        for (NodeId v : members) p.block_of[v] = fresh;
        changed = true;
      }
    }
  }

  p.num_blocks = num_blocks;
  p.Normalize();
  return p;
}

/// Non-template Graph overload (compiled once in ranked_bisim.cc).
Partition RankedBisimulation(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_BISIM_RANKED_BISIM_H_
