// Copyright 2026 The QPGC Authors.
//
// Rank-stratified maximum bisimulation, after Dovier, Piazza & Policriti's
// fast bisimulation algorithm ([8] in the paper — the algorithm compressB
// cites for its O(|E| log |V|) bound).
//
// The key structural facts (Lemma 9 and [8]):
//   * bisimilar nodes have equal rank rb;
//   * an edge can only go from a node of rank r to a node of rank < r
//     (well-founded child) or rank == r (non-well-founded child in the same
//     stratum).
// So the partition can be computed stratum by stratum in ascending rank
// order: when a stratum is processed, all its cross-stratum successors are
// already final, and only the within-stratum dependencies need a fixpoint.
//
// Each stratum's fixpoint delegates to the same contiguous-segment splitter
// machinery as the bounded engine (bisim/refine_detail.h, the Segments used
// by KBisimulationSplitter): rounds are dirty-driven — only nodes with an
// in-stratum successor whose block changed in the previous round regroup —
// so a round costs O(affected), not Θ(|stratum|). The initial partition
// keys on (rank, label), so every block lives inside one stratum and splits
// never mix strata; split blocks only ever subdivide and untouched block
// ids are preserved, which keeps work proportional to what actually moved.

#ifndef QPGC_BISIM_RANKED_BISIM_H_
#define QPGC_BISIM_RANKED_BISIM_H_

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bisim/partition.h"
#include "bisim/refine_detail.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "graph/topology.h"
#include "util/hash.h"

namespace qpgc {

/// Maximum bisimulation via rank stratification. Equivalent to
/// SignatureBisimulation (differentially tested) but avoids global rounds.
template <GraphView G>
Partition RankedBisimulation(const G& g) {
  using bisim_detail::MakeSegments;
  using bisim_detail::Segments;

  const size_t n = g.num_nodes();
  Partition p;
  p.block_of.assign(n, 0);
  if (n == 0) return p;

  const std::vector<int32_t> ranks = BisimRanks(g);

  // Strata in ascending rank order (kRankNegInf == INT32_MIN sorts first).
  std::map<int32_t, std::vector<NodeId>> strata;
  for (NodeId v = 0; v < n; ++v) strata[ranks[v]].push_back(v);

  // Initial partition: (rank, label). Never separates bisimilar nodes
  // (Lemma 9 plus label equality), and confines every block — hence every
  // later split — to a single stratum.
  NodeId num_blocks = 0;
  {
    std::unordered_map<std::pair<uint64_t, uint64_t>, NodeId, PairHash> init;
    for (NodeId v = 0; v < n; ++v) {
      const std::pair<uint64_t, uint64_t> key{
          static_cast<uint64_t>(static_cast<int64_t>(ranks[v])), g.label(v)};
      const auto [it, inserted] = init.try_emplace(key, num_blocks);
      if (inserted) ++num_blocks;
      p.block_of[v] = it->second;
    }
  }
  Segments s = MakeSegments(p.block_of, num_blocks);

  const auto sig_of = [&](NodeId v) {
    std::vector<NodeId> sig;
    sig.reserve(g.OutDegree(v));
    for (NodeId w : g.OutNeighbors(v)) sig.push_back(s.blk[w]);
    std::sort(sig.begin(), sig.end());
    sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
    return sig;
  };

  std::vector<uint8_t> dirty_flag(n, 0);
  std::vector<NodeId> dirty;
  std::vector<NodeId> changed;
  std::vector<NodeId> touched;
  std::vector<NodeId> dirty_members;
  // Splits staged per round exactly like KBisimulationSplitter: grouping
  // must read the pre-round partition for every block, so fresh ids never
  // leak into later blocks' signatures within the same round.
  std::vector<std::pair<NodeId, std::vector<std::vector<NodeId>>>> pending;

  for (const auto& [rank, stratum] : strata) {
    // Local fixpoint: every stratum node is dirty in round one (so each is
    // signatured at least once against the final lower strata); afterwards
    // only predecessors — necessarily in this stratum, since edges never go
    // rank-upward — of nodes whose block changed can regroup.
    dirty = stratum;
    while (!dirty.empty()) {
      touched.clear();
      for (const NodeId v : dirty) {
        dirty_flag[v] = 0;
        if (s.blocks[s.blk[v]].marked == 0) touched.push_back(s.blk[v]);
        s.Mark(v);
      }

      // Phase 1: group every touched block's dirty members by signature
      // against the pre-round partition. A clean member kept its successor-
      // block id set since it was last grouped (split-off subgroups get
      // fresh ids, survivors keep theirs), so one clean representative's
      // signature stands in for all of them.
      pending.clear();
      for (const NodeId b : touched) {
        const uint32_t marked = s.blocks[b].marked;
        const uint32_t begin = s.blocks[b].begin;
        const bool has_clean = marked < s.size(b);
        dirty_members.assign(s.nodes.begin() + begin,
                             s.nodes.begin() + begin + marked);
        s.blocks[b].marked = 0;

        std::unordered_map<std::vector<NodeId>, uint32_t, VectorHash> group_of;
        std::vector<std::vector<NodeId>> groups;
        if (has_clean) {
          const NodeId rep = s.nodes[s.blocks[b].end - 1];
          group_of.emplace(sig_of(rep), 0);
          groups.emplace_back();
        }
        for (const NodeId v : dirty_members) {
          const auto [it, inserted] = group_of.try_emplace(
              sig_of(v), static_cast<uint32_t>(groups.size()));
          if (inserted) groups.emplace_back();
          groups[it->second].push_back(v);
        }
        if (groups.size() > 1) {
          pending.emplace_back(
              b, std::vector<std::vector<NodeId>>(
                     std::make_move_iterator(groups.begin() + 1),
                     std::make_move_iterator(groups.end())));
        }
      }

      // Phase 2: apply the staged splits; members of split-off groups are
      // the ones whose block id changed this round.
      changed.clear();
      for (auto& [b, groups] : pending) {
        for (const auto& group : groups) {
          for (const NodeId v : group) s.Mark(v);
          const NodeId nb = s.SplitMarked(b);
          QPGC_DCHECK(nb != b);
          for (uint32_t i = s.blocks[nb].begin; i < s.blocks[nb].end; ++i) {
            changed.push_back(s.nodes[i]);
          }
        }
      }

      dirty.clear();
      for (const NodeId v : changed) {
        for (const NodeId u : g.InNeighbors(v)) {
          // Cross-stratum predecessors have strictly higher rank and start
          // fully dirty when their own stratum is processed.
          if (ranks[u] == rank && !dirty_flag[u]) {
            dirty_flag[u] = 1;
            dirty.push_back(u);
          }
        }
      }
    }
  }

  p.block_of = s.blk;
  p.num_blocks = s.blocks.size();
  p.Normalize();
  return p;
}

/// Non-template Graph overload (compiled once in ranked_bisim.cc).
Partition RankedBisimulation(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_BISIM_RANKED_BISIM_H_
