// Copyright 2026 The QPGC Authors.
//
// Internal building blocks shared by the bisimulation engines, hoisted out
// of the per-engine translation units when the engines became GraphView
// templates:
//
//  * Sig / SigHash — the (block, sorted distinct successor blocks) signature
//    key used by the signature and ranked engines;
//  * Segments / MakeSegments — the contiguous-block permutation that lets
//    the splitter engines split a block in O(moved).
//
// Not part of the public API.

#ifndef QPGC_BISIM_REFINE_DETAIL_H_
#define QPGC_BISIM_REFINE_DETAIL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/common.h"
#include "util/hash.h"

namespace qpgc::bisim_detail {

// Signature of a node under a partition: (current block, sorted distinct
// successor blocks).
struct Sig {
  NodeId block;
  std::vector<NodeId> succ_blocks;
  bool operator==(const Sig& o) const {
    return block == o.block && succ_blocks == o.succ_blocks;
  }
};

struct SigHash {
  size_t operator()(const Sig& s) const {
    uint64_t h = Mix64(s.block);
    for (NodeId b : s.succ_blocks) h = HashCombine(h, b);
    return static_cast<size_t>(h);
  }
};

// Refinement state shared by the full and bounded splitter engines: `nodes`
// is a permutation of V in which every block occupies a contiguous segment,
// so a block splits in O(moved) by swapping marked members to the front of
// its segment and cutting the prefix off as a new block.
struct Segments {
  std::vector<NodeId> nodes;   // permutation of V, blocks contiguous
  std::vector<uint32_t> pos;   // pos[v] = index of v in nodes
  std::vector<NodeId> blk;     // blk[v] = block of v

  struct Block {
    uint32_t begin = 0;   // [begin, end) in nodes
    uint32_t end = 0;
    uint32_t marked = 0;  // marked members occupy [begin, begin + marked)
    NodeId x = 0;         // owning coarse block (Paige–Tarjan only)
    uint32_t xpos = 0;    // index within the coarse block's member list
  };
  std::vector<Block> blocks;

  uint32_t size(NodeId b) const { return blocks[b].end - blocks[b].begin; }

  void Mark(NodeId v) {
    Block& b = blocks[blk[v]];
    const uint32_t p = pos[v];
    const uint32_t q = b.begin + b.marked;
    std::swap(nodes[p], nodes[q]);
    pos[nodes[p]] = p;
    pos[nodes[q]] = q;
    ++b.marked;
  }

  // Cuts the marked prefix of `b` off as a new block and returns its id;
  // returns `b` itself (no cut) when every member is marked. Clears the mark
  // either way.
  NodeId SplitMarked(NodeId b) {
    const uint32_t marked = blocks[b].marked;
    blocks[b].marked = 0;
    if (marked == 0 || marked == size(b)) return b;
    const NodeId nb = static_cast<NodeId>(blocks.size());
    blocks.push_back(Block{blocks[b].begin, blocks[b].begin + marked, 0,
                           blocks[b].x, 0});
    blocks[b].begin += marked;
    for (uint32_t i = blocks[nb].begin; i < blocks[nb].end; ++i) {
      blk[nodes[i]] = nb;
    }
    return nb;
  }
};

// Builds contiguous segments from a dense block assignment (counting sort).
inline Segments MakeSegments(const std::vector<NodeId>& block_of,
                             size_t num_blocks) {
  const size_t n = block_of.size();
  Segments s;
  s.nodes.resize(n);
  s.pos.resize(n);
  s.blk = block_of;
  s.blocks.resize(num_blocks);
  std::vector<uint32_t> count(num_blocks, 0);
  for (NodeId v = 0; v < n; ++v) ++count[block_of[v]];
  uint32_t at = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    s.blocks[b].begin = at;
    at += count[b];
    s.blocks[b].end = at;
    count[b] = s.blocks[b].begin;  // reuse as fill cursor
  }
  for (NodeId v = 0; v < n; ++v) {
    const uint32_t p = count[block_of[v]]++;
    s.nodes[p] = v;
    s.pos[v] = p;
  }
  return s;
}

}  // namespace qpgc::bisim_detail

#endif  // QPGC_BISIM_REFINE_DETAIL_H_
