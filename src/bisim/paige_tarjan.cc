// Copyright 2026 The QPGC Authors.

#include "bisim/paige_tarjan.h"

namespace qpgc {

Partition PaigeTarjanBisimulation(const Graph& g) {
  return PaigeTarjanBisimulation<Graph>(g);
}

Partition KBisimulationSplitter(const Graph& g, size_t k) {
  return KBisimulationSplitter<Graph>(g, k);
}

}  // namespace qpgc
