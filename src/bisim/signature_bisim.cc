// Copyright 2026 The QPGC Authors.

#include "bisim/signature_bisim.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"

namespace qpgc {

Partition LabelPartition(const Graph& g) {
  Partition p;
  p.block_of.resize(g.num_nodes());
  std::unordered_map<Label, NodeId> by_label;
  NodeId next = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto [it, inserted] = by_label.try_emplace(g.label(v), next);
    if (inserted) ++next;
    p.block_of[v] = it->second;
  }
  p.num_blocks = next;
  return p;
}

bool RefineOnce(const Graph& g, Partition& p) {
  // Signature of v: (current block, sorted distinct successor blocks).
  struct Sig {
    NodeId block;
    std::vector<NodeId> succ_blocks;
    bool operator==(const Sig& o) const {
      return block == o.block && succ_blocks == o.succ_blocks;
    }
  };
  struct SigHash {
    size_t operator()(const Sig& s) const {
      uint64_t h = Mix64(s.block);
      for (NodeId b : s.succ_blocks) h = HashCombine(h, b);
      return static_cast<size_t>(h);
    }
  };

  std::unordered_map<Sig, NodeId, SigHash> remap;
  remap.reserve(p.block_of.size());
  std::vector<NodeId> next(p.block_of.size());
  NodeId next_id = 0;
  std::vector<NodeId> succ;
  for (NodeId v = 0; v < p.block_of.size(); ++v) {
    succ.clear();
    for (NodeId w : g.OutNeighbors(v)) succ.push_back(p.block_of[w]);
    std::sort(succ.begin(), succ.end());
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
    Sig sig{p.block_of[v], succ};
    const auto [it, inserted] = remap.try_emplace(std::move(sig), next_id);
    if (inserted) ++next_id;
    next[v] = it->second;
  }
  const bool changed = next_id != p.num_blocks;
  p.block_of.swap(next);
  p.num_blocks = next_id;
  return changed;
}

Partition SignatureBisimulation(const Graph& g) {
  Partition p = LabelPartition(g);
  while (RefineOnce(g, p)) {
  }
  p.Normalize();
  return p;
}

}  // namespace qpgc
