// Copyright 2026 The QPGC Authors.

#include "bisim/signature_bisim.h"

namespace qpgc {

Partition LabelPartition(const Graph& g) { return LabelPartition<Graph>(g); }

bool RefineOnce(const Graph& g, Partition& p) {
  return RefineOnce<Graph>(g, p);
}

Partition SignatureBisimulation(const Graph& g) {
  return SignatureBisimulation<Graph>(g);
}

}  // namespace qpgc
