// Copyright 2026 The QPGC Authors.
//
// Partition representation shared by the bisimulation algorithms. A block is
// a set of nodes; bisimulation computation refines a label-based initial
// partition down to the coarsest *stable* partition, which is the maximum
// bisimulation Rb of Lemma 5.

#ifndef QPGC_BISIM_PARTITION_H_
#define QPGC_BISIM_PARTITION_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace qpgc {

/// A partition of the node set into blocks (equivalence classes).
struct Partition {
  /// block_of[v] = block id of node v, dense 0-based.
  std::vector<NodeId> block_of;
  /// Number of blocks.
  size_t num_blocks = 0;

  /// Rebuilds block member lists from block_of.
  std::vector<std::vector<NodeId>> Members() const;

  /// Canonical form (blocks as sorted vectors, sorted by first member) for
  /// equality tests.
  std::vector<std::vector<NodeId>> CanonicalClasses() const;

  /// Renumbers blocks densely in order of first appearance (by node id).
  void Normalize();
};

/// True iff `p` is a *stable* partition of g that refines node labels:
/// same-block nodes have equal labels, and for every block pair (B, C),
/// either every member of B has a successor in C or none does. The maximum
/// bisimulation is the coarsest such partition.
bool IsStableBisimulationPartition(const Graph& g, const Partition& p);

/// True iff partition `a` equals partition `b` as set partitions.
bool SamePartition(const Partition& a, const Partition& b);

/// True iff `coarse` is coarsened-or-equal: every `fine` block is contained
/// in one `coarse` block.
bool Refines(const Partition& fine, const Partition& coarse);

}  // namespace qpgc

#endif  // QPGC_BISIM_PARTITION_H_
