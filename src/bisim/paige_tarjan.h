// Copyright 2026 The QPGC Authors.
//
// Paige–Tarjan partition refinement ("Three partition refinement
// algorithms", SIAM J. Comput. 1987, §3) specialized to the maximum
// bisimulation over labeled out-neighbors. This is the O(|E| log |V|)
// production engine: a worklist of splitter blocks, in-neighbor traversal
// via Graph::InNeighbors, and the counting trick (per-edge count records
// shared by all edges from a node into one coarse block) that makes the
// three-way split — "successors only in S" / "in S and in X\S" /
// "none in S" — a single pass over the in-edges of S.
//
// Why it replaces the fixpoint signature engine on deep graphs: signature
// refinement rehashes every node once per round and a depth-d graph needs d
// rounds, Θ(d·|E|) total. Paige–Tarjan charges each node O(log |V|)
// splitter appearances ("process the smaller half"), so chains, layered
// DAGs and brooms stay near-linear. Both engines compute the identical
// coarsest stable partition (differentially tested in
// tests/paige_tarjan_test.cc).

#ifndef QPGC_BISIM_PAIGE_TARJAN_H_
#define QPGC_BISIM_PAIGE_TARJAN_H_

#include <cstddef>

#include "bisim/partition.h"
#include "graph/graph.h"

namespace qpgc {

/// Maximum bisimulation via Paige–Tarjan splitter refinement. Equal (as a
/// set partition) to SignatureBisimulation(g) on every graph.
Partition PaigeTarjanBisimulation(const Graph& g);

/// Forward k-bisimulation by bounded splitter rounds: identical (as a set
/// partition) to k rounds of RefineOnce, but each round touches only the
/// predecessors of nodes whose block changed in the previous round, so deep
/// graphs cost O(affected) per round instead of Θ(|V| + |E|).
Partition KBisimulationSplitter(const Graph& g, size_t k);

}  // namespace qpgc

#endif  // QPGC_BISIM_PAIGE_TARJAN_H_
