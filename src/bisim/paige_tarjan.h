// Copyright 2026 The QPGC Authors.
//
// Paige–Tarjan partition refinement ("Three partition refinement
// algorithms", SIAM J. Comput. 1987, §3) specialized to the maximum
// bisimulation over labeled out-neighbors. This is the O(|E| log |V|)
// production engine: a worklist of splitter blocks, in-neighbor traversal
// via the view's InNeighbors, and the counting trick (per-edge count records
// shared by all edges from a node into one coarse block) that makes the
// three-way split — "successors only in S" / "in S and in X\S" /
// "none in S" — a single pass over the in-edges of S.
//
// Why it replaces the fixpoint signature engine on deep graphs: signature
// refinement rehashes every node once per round and a depth-d graph needs d
// rounds, Θ(d·|E|) total. Paige–Tarjan charges each node O(log |V|)
// splitter appearances ("process the smaller half"), so chains, layered
// DAGs and brooms stay near-linear. Both engines compute the identical
// coarsest stable partition (differentially tested in
// tests/paige_tarjan_test.cc).
//
// Templated over GraphView. The engine needs a dense edge-id layout for its
// count records; a DenseInEdgeView input (CsrGraph, the mmap substrate)
// provides that layout directly and the engine borrows it zero-copy, while
// other views pay one flattening scan up front — the batch entry points
// freeze a CsrGraph snapshot first for exactly this reason
// (bench_ablation_bisim measures the gap).

#ifndef QPGC_BISIM_PAIGE_TARJAN_H_
#define QPGC_BISIM_PAIGE_TARJAN_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "bisim/partition.h"
#include "bisim/refine_detail.h"
#include "bisim/signature_bisim.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "util/hash.h"

namespace qpgc {

/// Maximum bisimulation via Paige–Tarjan splitter refinement. Equal (as a
/// set partition) to SignatureBisimulation(g) on every graph.
template <GraphView G>
Partition PaigeTarjanBisimulation(const G& g) {
  using bisim_detail::MakeSegments;
  using bisim_detail::Segments;

  const size_t n = g.num_nodes();
  Partition out;
  out.block_of.assign(n, 0);
  out.num_blocks = 0;
  if (n == 0) return out;

  // Initial fine partition: (label, has-out-edges). Splitting sinks from
  // non-sinks is what makes the label partition stable with respect to the
  // initial coarse block V — Paige–Tarjan's precondition — and it never
  // separates bisimilar nodes.
  NodeId num_init = 0;
  {
    std::unordered_map<uint64_t, NodeId> first;
    first.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      const uint64_t key = (static_cast<uint64_t>(g.label(v)) << 1) |
                           (g.OutDegree(v) > 0 ? 1u : 0u);
      const auto [it, inserted] = first.try_emplace(key, num_init);
      if (inserted) ++num_init;
      out.block_of[v] = it->second;
    }
  }
  Segments s = MakeSegments(out.block_of, num_init);

  // Coarse partition: one block holding every fine block.
  struct XBlock {
    std::vector<NodeId> blocks;
    bool queued = false;
  };
  std::vector<XBlock> xs(1);
  xs[0].blocks.reserve(num_init);
  for (NodeId b = 0; b < num_init; ++b) {
    s.blocks[b].x = 0;
    s.blocks[b].xpos = b;
    xs[0].blocks.push_back(b);
  }
  std::vector<NodeId> worklist;
  if (xs[0].blocks.size() >= 2) {
    xs[0].queued = true;
    worklist.push_back(0);
  }

  // In-edge CSR with dense edge ids so the splitter scan can repoint each
  // edge's count record in place. A DenseInEdgeView input (CsrGraph, the
  // mmap substrate) already stores exactly this layout, so the engine
  // borrows the view's arrays instead of copying them — O(|V| + |E|) fewer
  // bytes resident per run. On a Graph the vector-of-vectors is flattened
  // once as before, so the per-splitter scans below never chase per-node
  // heap pointers.
  const size_t m = g.num_edges();
  std::vector<size_t> in_begin_store;
  std::vector<NodeId> in_src_store;
  std::span<const NodeId> in_src;
  if constexpr (DenseInEdgeView<G>) {
    in_src = g.InEdgeSources();
    QPGC_CHECK(in_src.size() == m);
  } else {
    in_begin_store.assign(n + 1, 0);
    in_src_store.resize(m);
    size_t at = 0;
    for (NodeId w = 0; w < n; ++w) {
      in_begin_store[w] = at;
      for (NodeId v : g.InNeighbors(w)) in_src_store[at++] = v;
    }
    in_begin_store[n] = at;
    in_src = in_src_store;
  }
  const auto in_edge_begin = [&](NodeId w) -> size_t {
    if constexpr (DenseInEdgeView<G>) {
      return g.InEdgeBegin(w);
    } else {
      return in_begin_store[w];
    }
  };

  // Count records: rec_val[r] is simultaneously cnt(v, X) for the (source
  // node, coarse block) pair the record represents and the number of edges
  // whose edge_rec points at r — so a record is safely recycled the moment
  // its value reaches zero.
  std::vector<uint32_t> rec_val;
  rec_val.reserve(n + 16);
  std::vector<uint32_t> free_recs;
  std::vector<uint32_t> edge_rec(m);
  {
    std::vector<uint32_t> node_rec(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (g.OutDegree(v) > 0) {
        node_rec[v] = static_cast<uint32_t>(rec_val.size());
        rec_val.push_back(static_cast<uint32_t>(g.OutDegree(v)));
      }
    }
    for (size_t e = 0; e < m; ++e) edge_rec[e] = node_rec[in_src[e]];
  }
  const auto alloc_rec = [&]() -> uint32_t {
    if (!free_recs.empty()) {
      const uint32_t r = free_recs.back();
      free_recs.pop_back();
      rec_val[r] = 0;
      return r;
    }
    rec_val.push_back(0);
    return static_cast<uint32_t>(rec_val.size() - 1);
  };

  // Registers a freshly split-off block with its coarse block, queueing the
  // coarse block once it turns compound.
  const auto attach_to_x = [&](NodeId nb) {
    const NodeId px = s.blocks[nb].x;
    s.blocks[nb].xpos = static_cast<uint32_t>(xs[px].blocks.size());
    xs[px].blocks.push_back(nb);
    if (xs[px].blocks.size() >= 2 && !xs[px].queued) {
      xs[px].queued = true;
      worklist.push_back(px);
    }
  };

  std::vector<uint32_t> seen(n, 0);
  uint32_t stamp = 0;
  std::vector<uint32_t> new_rec(n, 0);  // record (v, S) of the current round
  std::vector<uint32_t> old_cnt(n, 0);  // cnt(v, X) before the current round
  std::vector<NodeId> pre;              // distinct predecessors of S
  std::vector<NodeId> touched;          // blocks hit by the current marking
  std::vector<NodeId> pre_blocks;       // blocks fully inside pre(S)

  while (!worklist.empty()) {
    const NodeId x = worklist.back();
    worklist.pop_back();
    xs[x].queued = false;
    if (xs[x].blocks.size() < 2) continue;

    // Splitter S: the smaller of the first two fine blocks of x, extracted
    // into its own coarse block ("process the smaller half").
    NodeId sb = xs[x].blocks[0];
    if (s.size(xs[x].blocks[1]) < s.size(sb)) sb = xs[x].blocks[1];
    {
      const uint32_t at = s.blocks[sb].xpos;
      const NodeId last = xs[x].blocks.back();
      xs[x].blocks[at] = last;
      s.blocks[last].xpos = at;
      xs[x].blocks.pop_back();
    }
    const NodeId x1 = static_cast<NodeId>(xs.size());
    xs.emplace_back();
    xs[x1].blocks.push_back(sb);
    s.blocks[sb].x = x1;
    s.blocks[sb].xpos = 0;
    if (xs[x].blocks.size() >= 2) {
      xs[x].queued = true;
      worklist.push_back(x);
    }

    // One pass over the in-edges of S: discover pre(S), capture the old
    // cnt(v, X) at first sight of v (every v->S edge still points at the
    // (v, X) record then), and move each edge onto the new (v, S) record.
    ++stamp;
    pre.clear();
    const uint32_t s_begin = s.blocks[sb].begin;
    const uint32_t s_end = s.blocks[sb].end;
    for (uint32_t i = s_begin; i < s_end; ++i) {
      const NodeId w = s.nodes[i];
      const size_t e_begin = in_edge_begin(w);
      for (size_t e = e_begin; e < e_begin + g.InDegree(w); ++e) {
        const NodeId v = in_src[e];
        const uint32_t r_old = edge_rec[e];
        if (seen[v] != stamp) {
          seen[v] = stamp;
          old_cnt[v] = rec_val[r_old];
          new_rec[v] = alloc_rec();
          pre.push_back(v);
        }
        if (--rec_val[r_old] == 0) free_recs.push_back(r_old);
        ++rec_val[new_rec[v]];
        edge_rec[e] = new_rec[v];
      }
    }

    // Three-way split. Pass 1 cuts every touched block into "has a
    // successor in S" / "has none"; pass 2 cuts the former into
    // "successors in both S and X\S" / "only in S" (cnt(v,S) == cnt(v,X)).
    // Blocks disjoint from pre(S), and the residual halves, stay stable
    // with respect to X\S by the invariant, so only pre-blocks need pass 2.
    touched.clear();
    for (const NodeId v : pre) {
      if (s.blocks[s.blk[v]].marked == 0) touched.push_back(s.blk[v]);
      s.Mark(v);
    }
    pre_blocks.clear();
    for (const NodeId b : touched) {
      const NodeId pb = s.SplitMarked(b);
      if (pb != b) attach_to_x(pb);
      pre_blocks.push_back(pb);
    }
    for (const NodeId v : pre) {
      if (rec_val[new_rec[v]] != old_cnt[v]) s.Mark(v);
    }
    for (const NodeId b : pre_blocks) {
      if (s.blocks[b].marked == 0) continue;
      const NodeId nb = s.SplitMarked(b);
      if (nb != b) attach_to_x(nb);
    }
  }

  for (NodeId v = 0; v < n; ++v) out.block_of[v] = s.blk[v];
  out.num_blocks = s.blocks.size();
  out.Normalize();
  return out;
}

/// Forward k-bisimulation by bounded splitter rounds: identical (as a set
/// partition) to k rounds of RefineOnce, but each round touches only the
/// predecessors of nodes whose block changed in the previous round, so deep
/// graphs cost O(affected) per round instead of Θ(|V| + |E|).
template <GraphView G>
Partition KBisimulationSplitter(const G& g, size_t k) {
  using bisim_detail::MakeSegments;
  using bisim_detail::Segments;

  const size_t n = g.num_nodes();
  Partition out = LabelPartition(g);
  if (n == 0 || k == 0) {
    out.Normalize();
    return out;
  }
  Segments s = MakeSegments(out.block_of, out.num_blocks);

  // Round i refines round i-1's partition by successor-block sets, exactly
  // like RefineOnce, but only nodes with a successor whose block changed in
  // the previous round can regroup. Within a touched block, every clean
  // member kept its successor-block id set (split-off subgroups get fresh
  // ids, survivors keep theirs), so one clean representative's signature
  // stands in for all of them.
  std::vector<uint8_t> dirty_flag(n, 1);
  std::vector<NodeId> dirty(n);
  for (NodeId v = 0; v < n; ++v) dirty[v] = v;
  std::vector<NodeId> changed;
  std::vector<NodeId> touched;
  std::vector<NodeId> dirty_members;
  // Splits staged per round: (block, non-keeper groups). Grouping must read
  // the pre-round partition for every block — applying a split mid-round
  // would leak the new ids into later blocks' signatures and refine faster
  // than the synchronous rounds of RefineOnce.
  std::vector<std::pair<NodeId, std::vector<std::vector<NodeId>>>> pending;

  const auto sig_of = [&](NodeId v) {
    std::vector<NodeId> sig;
    sig.reserve(g.OutDegree(v));
    for (NodeId w : g.OutNeighbors(v)) sig.push_back(s.blk[w]);
    std::sort(sig.begin(), sig.end());
    sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
    return sig;
  };

  for (size_t round = 0; round < k && !dirty.empty(); ++round) {
    touched.clear();
    for (const NodeId v : dirty) {
      dirty_flag[v] = 0;
      if (s.blocks[s.blk[v]].marked == 0) touched.push_back(s.blk[v]);
      s.Mark(v);
    }

    // Phase 1: group every touched block's dirty members by signature
    // against the pre-round partition. No splits yet.
    pending.clear();
    for (const NodeId b : touched) {
      const uint32_t marked = s.blocks[b].marked;
      const uint32_t begin = s.blocks[b].begin;
      const bool has_clean = marked < s.size(b);
      dirty_members.assign(s.nodes.begin() + begin,
                           s.nodes.begin() + begin + marked);
      s.blocks[b].marked = 0;

      // Group 0 keeps the block id: the clean members' group (represented
      // by one clean signature — every clean member kept its successor-
      // block id set) when the block has any, else the first dirty group.
      std::unordered_map<std::vector<NodeId>, uint32_t, VectorHash> group_of;
      std::vector<std::vector<NodeId>> groups;
      if (has_clean) {
        const NodeId rep = s.nodes[s.blocks[b].end - 1];
        group_of.emplace(sig_of(rep), 0);
        groups.emplace_back();
      }
      for (const NodeId v : dirty_members) {
        const auto [it, inserted] = group_of.try_emplace(
            sig_of(v), static_cast<uint32_t>(groups.size()));
        if (inserted) groups.emplace_back();
        groups[it->second].push_back(v);
      }
      if (groups.size() > 1) {
        pending.emplace_back(
            b, std::vector<std::vector<NodeId>>(
                   std::make_move_iterator(groups.begin() + 1),
                   std::make_move_iterator(groups.end())));
      }
    }

    // Phase 2: apply the staged splits; members of split-off groups are the
    // ones whose block id changed this round.
    changed.clear();
    for (auto& [b, groups] : pending) {
      for (const auto& group : groups) {
        for (const NodeId v : group) s.Mark(v);
        const NodeId nb = s.SplitMarked(b);
        QPGC_DCHECK(nb != b);
        for (uint32_t i = s.blocks[nb].begin; i < s.blocks[nb].end; ++i) {
          changed.push_back(s.nodes[i]);
        }
      }
    }

    if (changed.empty()) break;
    dirty.clear();
    for (const NodeId v : changed) {
      for (const NodeId u : g.InNeighbors(v)) {
        if (!dirty_flag[u]) {
          dirty_flag[u] = 1;
          dirty.push_back(u);
        }
      }
    }
  }

  out.block_of = s.blk;
  out.num_blocks = s.blocks.size();
  out.Normalize();
  return out;
}

// Non-template Graph overloads (compiled once in paige_tarjan.cc).
Partition PaigeTarjanBisimulation(const Graph& g);
Partition KBisimulationSplitter(const Graph& g, size_t k);

}  // namespace qpgc

#endif  // QPGC_BISIM_PAIGE_TARJAN_H_
