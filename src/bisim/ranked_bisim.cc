// Copyright 2026 The QPGC Authors.

#include "bisim/ranked_bisim.h"

namespace qpgc {

Partition RankedBisimulation(const Graph& g) {
  return RankedBisimulation<Graph>(g);
}

}  // namespace qpgc
