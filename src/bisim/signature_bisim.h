// Copyright 2026 The QPGC Authors.
//
// Reference computation of the maximum bisimulation by global signature
// refinement ("naive" partition refinement): start from the label partition
// and repeatedly split blocks by the set of successor blocks until a
// fixpoint. Converges to the coarsest stable partition — the maximum
// bisimulation Rb — in at most |V| rounds of O(|E| log |E|).
//
// Used as ground truth for the rank-stratified production algorithm and for
// mid-sized graphs where simplicity wins.

#ifndef QPGC_BISIM_SIGNATURE_BISIM_H_
#define QPGC_BISIM_SIGNATURE_BISIM_H_

#include "bisim/partition.h"
#include "graph/graph.h"

namespace qpgc {

/// Maximum bisimulation by signature refinement to fixpoint.
Partition SignatureBisimulation(const Graph& g);

/// One signature-refinement round applied to `p` (splits every block by
/// members' successor-block sets). Returns true iff the partition changed.
/// Exposed for k-bisimulation and tests.
bool RefineOnce(const Graph& g, Partition& p);

/// The initial partition: nodes grouped by label.
Partition LabelPartition(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_BISIM_SIGNATURE_BISIM_H_
