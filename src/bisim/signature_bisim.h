// Copyright 2026 The QPGC Authors.
//
// Reference computation of the maximum bisimulation by global signature
// refinement ("naive" partition refinement): start from the label partition
// and repeatedly split blocks by the set of successor blocks until a
// fixpoint. Converges to the coarsest stable partition — the maximum
// bisimulation Rb — in at most |V| rounds of O(|E| log |E|).
//
// Used as ground truth for the rank-stratified production algorithm and for
// mid-sized graphs where simplicity wins. Templated over GraphView (Graph,
// CsrGraph, ReversedView); Graph overloads compiled once in the library.

#ifndef QPGC_BISIM_SIGNATURE_BISIM_H_
#define QPGC_BISIM_SIGNATURE_BISIM_H_

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "bisim/partition.h"
#include "bisim/refine_detail.h"
#include "graph/graph.h"
#include "graph/graph_view.h"

namespace qpgc {

/// The initial partition: nodes grouped by label.
template <GraphView G>
Partition LabelPartition(const G& g) {
  Partition p;
  p.block_of.resize(g.num_nodes());
  std::unordered_map<Label, NodeId> by_label;
  NodeId next = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto [it, inserted] = by_label.try_emplace(g.label(v), next);
    if (inserted) ++next;
    p.block_of[v] = it->second;
  }
  p.num_blocks = next;
  return p;
}

/// One signature-refinement round applied to `p` (splits every block by
/// members' successor-block sets). Returns true iff the partition changed.
/// Exposed for k-bisimulation and tests.
template <GraphView G>
bool RefineOnce(const G& g, Partition& p) {
  using bisim_detail::Sig;
  using bisim_detail::SigHash;

  std::unordered_map<Sig, NodeId, SigHash> remap;
  remap.reserve(p.block_of.size());
  std::vector<NodeId> next(p.block_of.size());
  NodeId next_id = 0;
  std::vector<NodeId> succ;
  for (NodeId v = 0; v < p.block_of.size(); ++v) {
    succ.clear();
    for (NodeId w : g.OutNeighbors(v)) succ.push_back(p.block_of[w]);
    std::sort(succ.begin(), succ.end());
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
    Sig sig{p.block_of[v], succ};
    const auto [it, inserted] = remap.try_emplace(std::move(sig), next_id);
    if (inserted) ++next_id;
    next[v] = it->second;
  }
  const bool changed = next_id != p.num_blocks;
  p.block_of.swap(next);
  p.num_blocks = next_id;
  return changed;
}

/// Maximum bisimulation by signature refinement to fixpoint.
template <GraphView G>
Partition SignatureBisimulation(const G& g) {
  Partition p = LabelPartition(g);
  while (RefineOnce(g, p)) {
  }
  p.Normalize();
  return p;
}

// Non-template Graph overloads (compiled once in signature_bisim.cc).
Partition SignatureBisimulation(const Graph& g);
bool RefineOnce(const Graph& g, Partition& p);
Partition LabelPartition(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_BISIM_SIGNATURE_BISIM_H_
