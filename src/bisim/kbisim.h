// Copyright 2026 The QPGC Authors.
//
// k-bisimulation, in both orientations:
//  * forward (out-edges): k rounds of the successor-signature refinement —
//    the truncation of the maximum bisimulation compressB uses;
//  * backward (in-edges): the equivalence underlying the 1-index of Milo &
//    Suciu [19] and the A(k)-index of Kaushik et al. [15], which group
//    nodes by incoming label paths (those indexes serve rooted path
//    queries).
//
// The backward orientation is computed in-edge-driven: forward refinement
// over a ReversedView of the input, whose OutNeighbors *are* the view's
// InNeighbors — no copy, no whole-graph Reverse() per call. The historical
// copy+Reverse implementation survives as KBisimulationBackwardCopying, a
// test oracle only.
//
// The paper uses A(k) as a *negative* baseline: Section 4.1's Fig. 6 shows
// a graph whose A(1) index graph returns every B node for the pattern
// {(B,C), (B,D)} although only two match; reproduced in
// tests/kbisim_counterexample_test.cc.

#ifndef QPGC_BISIM_KBISIM_H_
#define QPGC_BISIM_KBISIM_H_

#include "bisim/engine.h"
#include "bisim/paige_tarjan.h"
#include "bisim/partition.h"
#include "bisim/signature_bisim.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/graph_view.h"

namespace qpgc {

/// Forward k-bisimulation partition (k = 0 is the label partition). The
/// default engine runs bounded splitter rounds (only nodes whose successor
/// blocks changed are re-signatured); kSignature runs the plain global
/// RefineOnce rounds. Identical results either way.
template <GraphView G>
Partition KBisimulation(const G& g, size_t k,
                        BisimEngine engine = BisimEngine::kPaigeTarjan) {
  // Any non-oracle engine choice uses the splitter rounds; the two bounded
  // variants are the same partition sequence, so only the oracle needs the
  // literal whole-partition rounds.
  if (engine != BisimEngine::kSignature) return KBisimulationSplitter(g, k);
  Partition p = LabelPartition(g);
  for (size_t i = 0; i < k; ++i) {
    if (!RefineOnce(g, p)) break;
  }
  p.Normalize();
  return p;
}

/// Backward k-bisimulation partition (equal incoming structure up to depth
/// k), the A(k)-index equivalence. In-edge-driven: forward refinement over
/// the reversed view, so each round walks the view's InNeighbors directly.
template <GraphView G>
Partition KBisimulationBackward(const G& g, size_t k,
                                BisimEngine engine = BisimEngine::kPaigeTarjan) {
  return KBisimulation(ReversedView<G>(g), k, engine);
}

/// Quotient of g by an arbitrary partition, keeping labels (index-graph
/// construction helper).
template <GraphView G>
Graph QuotientGraph(const G& g, const Partition& p) {
  GraphBuilder builder(p.num_blocks);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    builder.SetLabel(p.block_of[v], g.label(v));
  }
  ForEachEdge(g, [&](NodeId u, NodeId v) {
    builder.AddEdge(p.block_of[u], p.block_of[v]);
  });
  return builder.Build();
}

// Non-template Graph overloads (compiled once in kbisim.cc).
Partition KBisimulation(const Graph& g, size_t k,
                        BisimEngine engine = BisimEngine::kPaigeTarjan);
Partition KBisimulationBackward(const Graph& g, size_t k,
                                BisimEngine engine = BisimEngine::kPaigeTarjan);
Graph QuotientGraph(const Graph& g, const Partition& p);

/// Historical backward implementation: copies the graph and calls
/// Reverse() before running forward refinement. Kept strictly as a test
/// oracle for the in-edge-driven variant; do not use on hot paths.
Partition KBisimulationBackwardCopying(
    const Graph& g, size_t k, BisimEngine engine = BisimEngine::kPaigeTarjan);

/// The A(k)-index graph: quotient of g by *backward* k-bisimulation, keeping
/// labels. For comparison only — not query preserving for graph patterns.
/// Batch entry point: freezes a CSR snapshot once and runs the refinement
/// and quotient construction on the flat layout.
Graph AkIndexGraph(const Graph& g, size_t k);

}  // namespace qpgc

#endif  // QPGC_BISIM_KBISIM_H_
