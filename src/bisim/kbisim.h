// Copyright 2026 The QPGC Authors.
//
// k-bisimulation, in both orientations:
//  * forward (out-edges): k rounds of the successor-signature refinement —
//    the truncation of the maximum bisimulation compressB uses;
//  * backward (in-edges): the equivalence underlying the 1-index of Milo &
//    Suciu [19] and the A(k)-index of Kaushik et al. [15], which group
//    nodes by incoming label paths (those indexes serve rooted path
//    queries).
//
// The paper uses A(k) as a *negative* baseline: Section 4.1's Fig. 6 shows
// a graph whose A(1) index graph returns every B node for the pattern
// {(B,C), (B,D)} although only two match; reproduced in
// tests/kbisim_counterexample_test.cc.

#ifndef QPGC_BISIM_KBISIM_H_
#define QPGC_BISIM_KBISIM_H_

#include "bisim/engine.h"
#include "bisim/partition.h"
#include "graph/graph.h"

namespace qpgc {

/// Forward k-bisimulation partition (k = 0 is the label partition). The
/// default engine runs bounded splitter rounds (only nodes whose successor
/// blocks changed are re-signatured); kSignature runs the plain global
/// RefineOnce rounds. Identical results either way.
Partition KBisimulation(const Graph& g, size_t k,
                        BisimEngine engine = BisimEngine::kPaigeTarjan);

/// Backward k-bisimulation partition (equal incoming structure up to depth
/// k), the A(k)-index equivalence.
Partition KBisimulationBackward(const Graph& g, size_t k,
                                BisimEngine engine = BisimEngine::kPaigeTarjan);

/// The A(k)-index graph: quotient of g by *backward* k-bisimulation, keeping
/// labels. For comparison only — not query preserving for graph patterns.
Graph AkIndexGraph(const Graph& g, size_t k);

/// Quotient of g by an arbitrary partition, keeping labels (index-graph
/// construction helper).
Graph QuotientGraph(const Graph& g, const Partition& p);

}  // namespace qpgc

#endif  // QPGC_BISIM_KBISIM_H_
