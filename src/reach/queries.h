// Copyright 2026 The QPGC Authors.
//
// Reachability queries QR(v, w) and the rewriting function F of Section 3.1.
//
// F is O(1): it maps node ids through the class map, F(QR(v, w)) =
// QR(R(v), R(w)). Evaluation on Gr uses any stock algorithm (BFS, BiBFS,
// DFS) unchanged; the only semantic care is the diagonal: under reflexive
// semantics QR(v, v) is trivially true, and under non-empty semantics the
// compressed graph answers it through the self-loop on cyclic classes.
// No post-processing P is needed (Theorem 2).

#ifndef QPGC_REACH_QUERIES_H_
#define QPGC_REACH_QUERIES_H_

#include <vector>

#include "graph/traversal.h"
#include "reach/compress_r.h"

namespace qpgc {

/// A reachability query QR(u, v) on the original graph.
struct ReachQuery {
  NodeId u = 0;
  NodeId v = 0;
};

/// The same query rewritten onto Gr: QR(R(u), R(v)).
struct RewrittenReachQuery {
  NodeId u = 0;
  NodeId v = 0;
};

/// Stock evaluation algorithms — the exact same code runs on G and on Gr.
enum class ReachAlgorithm { kBfs, kBiBfs, kDfs };

/// Evaluates a reachability query on any read-only view with the chosen
/// algorithm. The template is what lets a frozen ServingSnapshot
/// (serve/snapshot.h) answer rewritten queries on its CSR quotient with the
/// very same stock code that runs on the dynamic Graph.
template <GraphView G>
bool EvalReach(const G& g, NodeId u, NodeId v, PathMode mode,
               ReachAlgorithm algo) {
  switch (algo) {
    case ReachAlgorithm::kBfs:
      return BfsReaches(g, u, v, mode);
    case ReachAlgorithm::kBiBfs:
      return BidirectionalReaches(g, u, v, mode);
    case ReachAlgorithm::kDfs:
      return DfsReaches(g, u, v, mode);
  }
  QPGC_CHECK(false);
  return false;
}

/// Non-template Graph overload (compiled once in queries.cc).
bool EvalReach(const Graph& g, NodeId u, NodeId v, PathMode mode,
               ReachAlgorithm algo);

/// The rewriting function F: O(1) node-map lookups.
RewrittenReachQuery RewriteReachQuery(const ReachCompression& rc,
                                      const ReachQuery& q);

/// Answers QR(u, v) on the compressed graph: rewrite with F, then run the
/// stock algorithm on Gr. Exact for both path modes (Theorem 2).
bool AnswerOnCompressed(const ReachCompression& rc, const ReachQuery& q,
                        PathMode mode, ReachAlgorithm algo);

/// Generates `count` random query pairs over n nodes (the paper evaluates on
/// randomly selected node pairs).
std::vector<ReachQuery> RandomReachQueries(size_t n, size_t count,
                                           uint64_t seed);

}  // namespace qpgc

#endif  // QPGC_REACH_QUERIES_H_
