// Copyright 2026 The QPGC Authors.

#include "reach/queries.h"

#include "util/rng.h"

namespace qpgc {

bool EvalReach(const Graph& g, NodeId u, NodeId v, PathMode mode,
               ReachAlgorithm algo) {
  return EvalReach<Graph>(g, u, v, mode, algo);
}

RewrittenReachQuery RewriteReachQuery(const ReachCompression& rc,
                                      const ReachQuery& q) {
  QPGC_CHECK(q.u < rc.node_map.size() && q.v < rc.node_map.size());
  return RewrittenReachQuery{rc.node_map[q.u], rc.node_map[q.v]};
}

bool AnswerOnCompressed(const ReachCompression& rc, const ReachQuery& q,
                        PathMode mode, ReachAlgorithm algo) {
  if (mode == PathMode::kReflexive && q.u == q.v) return true;
  const RewrittenReachQuery rq = RewriteReachQuery(rc, q);
  // All remaining cases reduce to non-empty reachability on Gr: distinct
  // classes are connected iff any (equivalently every) pair of their members
  // is; equal classes answer the diagonal through their self-loop.
  return EvalReach(rc.gr, rq.u, rq.v, PathMode::kNonEmpty, algo);
}

std::vector<ReachQuery> RandomReachQueries(size_t n, size_t count,
                                           uint64_t seed) {
  QPGC_CHECK(n > 0);
  Rng rng(seed);
  std::vector<ReachQuery> queries(count);
  for (auto& q : queries) {
    q.u = static_cast<NodeId>(rng.Uniform(n));
    q.v = static_cast<NodeId>(rng.Uniform(n));
  }
  return queries;
}

}  // namespace qpgc
