// Copyright 2026 The QPGC Authors.

#include "reach/equivalence.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "graph/closure.h"
#include "graph/topology.h"
#include "util/bitset.h"
#include "util/hash.h"
#include "util/lifetime_annotations.h"

namespace qpgc {

namespace {

// Key for refinement: (current class, exact row bytes). Keying on the exact
// bytes (not a hash of them) guarantees no two distinct profiles ever land in
// the same class.
struct QPGC_GSL_POINTER RefineKey {
  NodeId cls;
  std::string_view bytes;  // borrows the row storage of the BitMatrix
  bool operator==(const RefineKey& o) const {
    return cls == o.cls && bytes == o.bytes;
  }
};
struct RefineKeyHash {
  size_t operator()(const RefineKey& k) const {
    return static_cast<size_t>(
        HashCombine(Mix64(k.cls), HashBytes(k.bytes)));
  }
};

// One refinement pass: splits every current class by the content of `rows`.
// `cls` is updated in place; returns the new class count.
size_t RefineByRows(const BitMatrix& rows, std::vector<NodeId>& cls) {
  std::unordered_map<RefineKey, NodeId, RefineKeyHash> remap;
  remap.reserve(cls.size());
  std::vector<NodeId> next(cls.size());
  NodeId next_id = 0;
  for (size_t v = 0; v < cls.size(); ++v) {
    const RefineKey key{cls[v], rows.RowBytes(v)};
    const auto [it, inserted] = remap.try_emplace(key, next_id);
    if (inserted) ++next_id;
    next[v] = it->second;
  }
  cls.swap(next);
  return next_id;
}

}  // namespace

namespace reach_detail {

std::vector<NodeId> PartitionDagNodes(const Graph& dag,
                                      const std::vector<uint8_t>& cyclic,
                                      size_t block_cols) {
  const size_t n = dag.num_nodes();
  std::vector<NodeId> cls(n, 0);
  if (n == 0) return cls;
  block_cols = std::min(block_cols, n);

  const std::vector<NodeId> rev_topo = ReverseTopologicalOrder(dag);
  const std::vector<NodeId> topo = TopologicalOrder(dag);

  BitMatrix block(n, block_cols);
  for (int pass = 0; pass < 2; ++pass) {
    const Direction dir = pass == 0 ? Direction::kForward : Direction::kBackward;
    const std::vector<NodeId>& order = pass == 0 ? rev_topo : topo;
    for (size_t start = 0; start < n; start += block_cols) {
      const size_t cols = std::min(block_cols, n - start);
      if (cols != block.cols()) block = BitMatrix(n, cols);
      BlockDescendants(dag, order, cyclic, start, cols, dir, block);
      RefineByRows(block, cls);
    }
  }
  return cls;
}

ReachPartition ExpandToNodes(size_t num_nodes, const Condensation& cond,
                             const std::vector<NodeId>& dag_cls) {
  ReachPartition part;
  const size_t n = num_nodes;
  part.class_of.assign(n, kInvalidNode);

  std::vector<NodeId> dense(cond.scc.num_components, kInvalidNode);
  // First appearance in original-node order gives deterministic ids.
  NodeId next_id = 0;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId dag_node = cond.scc.component[v];
    NodeId& d = dense[dag_cls[dag_node]];
    if (d == kInvalidNode) d = next_id++;
    part.class_of[v] = d;
  }
  part.num_classes = next_id;
  part.members.assign(next_id, {});
  part.cyclic.assign(next_id, 0);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId c = part.class_of[v];
    part.members[c].push_back(v);
    if (cond.scc.cyclic[cond.scc.component[v]]) part.cyclic[c] = 1;
  }
  return part;
}

}  // namespace reach_detail

std::vector<std::vector<NodeId>> ReachPartition::CanonicalClasses() const {
  std::vector<std::vector<NodeId>> classes = members;
  std::sort(classes.begin(), classes.end());
  return classes;
}

ReachPartition ComputeReachEquivalence(const Graph& g, size_t block_cols) {
  return ComputeReachEquivalence<Graph>(g, block_cols);
}

ReachPartition ComputeReachEquivalenceRef(const Graph& g) {
  const size_t n = g.num_nodes();
  // Non-empty-path closures in both directions; a node on a cycle naturally
  // appears in its own row, matching the augmented definition.
  const BitMatrix desc = FullClosure(g, Direction::kForward);
  const BitMatrix anc = FullClosure(g, Direction::kBackward);

  std::vector<NodeId> cls(n, 0);
  if (n > 0) {
    RefineByRows(desc, cls);
    RefineByRows(anc, cls);
  }

  ReachPartition part;
  part.class_of.assign(n, kInvalidNode);
  std::vector<NodeId> dense;
  NodeId next_id = 0;
  {
    std::vector<NodeId> remap(n, kInvalidNode);
    for (NodeId v = 0; v < n; ++v) {
      NodeId& d = remap[cls[v]];
      if (d == kInvalidNode) d = next_id++;
      part.class_of[v] = d;
    }
  }
  part.num_classes = next_id;
  part.members.assign(next_id, {});
  part.cyclic.assign(next_id, 0);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId c = part.class_of[v];
    part.members[c].push_back(v);
    if (desc.Test(v, v)) part.cyclic[c] = 1;  // on a cycle
  }
  return part;
}

}  // namespace qpgc
