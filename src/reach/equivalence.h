// Copyright 2026 The QPGC Authors.
//
// The reachability equivalence relation Re of Section 3.1: (u, v) in Re iff
// u and v have the same ancestors and the same descendants, where ancestor/
// descendant sets are taken over *non-empty* paths (Example 2 of the paper
// requires this: BSA1 ~ BSA2 although neither reaches the other; under
// reflexive semantics Re would degenerate to SCC equality).
//
// Structure theorem (used by the fast algorithm; property-tested):
//   Every Re-class is either (a) exactly one cyclic SCC, or (b) a set of
//   trivial (acyclic) SCC nodes with equal "augmented" ancestor/descendant
//   sets on the condensation DAG, where augmentation seeds a cyclic node's
//   own bit.
//   Proof sketch for (a): if u lies on a cycle then u ∈ desc(u) = desc(v)
//   and u ∈ anc(u) = anc(v), so u and v reach each other — same SCC.
//
// Two implementations:
//  * ComputeReachEquivalence — condensation + exact partition refinement on
//    blocked descendant/ancestor bitsets (refinement keys on raw row bytes,
//    so no hash-collision risk). O(|E_dag| * |V_dag| / 64) word ops with
//    O(|V_dag| * block_cols / 8) working memory. Templated over GraphView:
//    only the SCC condensation reads the input; the refinement runs on the
//    (small) condensation DAG.
//  * ComputeReachEquivalenceRef — the paper's own O(|V|(|V| + |E|)) method
//    (per-node BFS for ancestor and descendant sets), used as ground truth.

#ifndef QPGC_REACH_EQUIVALENCE_H_
#define QPGC_REACH_EQUIVALENCE_H_

#include <cstddef>
#include <vector>

#include "graph/condensation.h"
#include "graph/graph.h"
#include "graph/graph_view.h"

namespace qpgc {

/// A partition of V into reachability equivalence classes.
struct ReachPartition {
  /// class_of[v] = equivalence class of node v.
  std::vector<NodeId> class_of;
  /// Number of classes.
  size_t num_classes = 0;
  /// members[c] = nodes of class c, ascending.
  std::vector<std::vector<NodeId>> members;
  /// cyclic[c] = 1 iff the members of c lie on cycles (then c is one SCC).
  std::vector<uint8_t> cyclic;

  /// Canonical form for equality checks in tests: classes sorted by their
  /// smallest member.
  std::vector<std::vector<NodeId>> CanonicalClasses() const;
};

namespace reach_detail {

/// Groups DAG nodes by augmented ancestor AND descendant profiles.
std::vector<NodeId> PartitionDagNodes(const Graph& dag,
                                      const std::vector<uint8_t>& cyclic,
                                      size_t block_cols);

/// Renumbers classes to be dense in order of first appearance and expands a
/// per-DAG-node partition to original nodes via the SCC map.
ReachPartition ExpandToNodes(size_t num_nodes, const Condensation& cond,
                             const std::vector<NodeId>& dag_cls);

}  // namespace reach_detail

/// Fast exact computation (condensation + blocked refinement).
template <GraphView G>
ReachPartition ComputeReachEquivalence(const G& g, size_t block_cols = 8192) {
  const Condensation cond = BuildCondensation(g);
  const std::vector<NodeId> dag_cls =
      reach_detail::PartitionDagNodes(cond.dag, cond.scc.cyclic, block_cols);
  return reach_detail::ExpandToNodes(g.num_nodes(), cond, dag_cls);
}

/// Non-template Graph overload (compiled once in equivalence.cc).
ReachPartition ComputeReachEquivalence(const Graph& g,
                                       size_t block_cols = 8192);

/// Reference computation (the paper's per-node BFS algorithm).
ReachPartition ComputeReachEquivalenceRef(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_REACH_EQUIVALENCE_H_
