// Copyright 2026 The QPGC Authors.

#include "reach/compress_r.h"

#include "graph/builder.h"
#include "graph/reduction.h"
#include "graph/topology.h"
#include "util/memory.h"

namespace qpgc {

ReachCompression CompressR(const Graph& g, const CompressROptions& options) {
  ReachCompression rc;
  rc.original_num_nodes = g.num_nodes();
  rc.original_size = g.size();

  ReachPartition part = ComputeReachEquivalence(g, options.block_cols);
  rc.node_map = std::move(part.class_of);
  rc.members = std::move(part.members);
  rc.cyclic = std::move(part.cyclic);
  const size_t nc = part.num_classes;

  // Quotient edges. Intra-class edges can only occur inside a cyclic class
  // (one SCC); they are represented by that class's self-loop.
  GraphBuilder builder(nc);
  for (NodeId c = 0; c < nc; ++c) {
    if (rc.cyclic[c]) builder.AddEdge(c, c);
  }
  g.ForEachEdge([&](NodeId u, NodeId v) {
    const NodeId cu = rc.node_map[u];
    const NodeId cv = rc.node_map[v];
    if (cu != cv) builder.AddEdge(cu, cv);
  });
  rc.quotient = builder.Build();

  rc.gr = options.transitive_reduction
              ? TransitiveReductionDag(rc.quotient, options.block_cols)
              : rc.quotient;
  rc.ranks = DagTopoRanks(rc.gr);
  return rc;
}

size_t ReachCompression::MemoryBytes() const {
  return gr.MemoryBytes() + quotient.MemoryBytes() + VectorBytes(node_map) +
         NestedVectorBytes(members) + VectorBytes(cyclic) + VectorBytes(ranks);
}

}  // namespace qpgc
