// Copyright 2026 The QPGC Authors.

#include "reach/compress_r.h"

#include "graph/csr.h"
#include "util/memory.h"

namespace qpgc {

ReachCompression CompressR(const Graph& g, const CompressROptions& options) {
  // Freeze once, sweep flat: the whole batch pipeline (SCC, equivalence
  // refinement, quotient construction) is read-only over adjacency.
  const CsrGraph frozen(g);
  return CompressR<CsrGraph>(frozen, options);
}

size_t ReachCompression::MemoryBytes() const {
  return gr.MemoryBytes() + quotient.MemoryBytes() + VectorBytes(node_map) +
         NestedVectorBytes(members) + VectorBytes(cyclic) + VectorBytes(ranks);
}

}  // namespace qpgc
