// Copyright 2026 The QPGC Authors.
//
// The AHO baseline of the paper's experiments (Table 1, RCaho): the
// transitive reduction of a general digraph after Aho, Garey & Ullman
// (SICOMP 1972). Unlike compressR it keeps *all* nodes:
//   * every strongly connected component of size k > 1 is replaced by a
//     simple cycle through its k nodes;
//   * a singleton SCC keeps its self-loop if it had one;
//   * edges between components are replaced by one representative edge per
//     condensation edge, then transitively reduced on the DAG.
// The result has the same transitive closure as G and is a subgraph-sized
// graph (|V| unchanged), which is exactly why compressR beats it: merging
// equivalent nodes into hypernodes removes nodes *and* further edges.

#ifndef QPGC_REACH_AHO_H_
#define QPGC_REACH_AHO_H_

#include "graph/graph.h"

namespace qpgc {

/// Computes the Aho-Garey-Ullman transitive reduction of g (same node set,
/// same transitive closure, minimal edges).
Graph AhoTransitiveReduction(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_REACH_AHO_H_
