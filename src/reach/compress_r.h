// Copyright 2026 The QPGC Authors.
//
// compressR (Section 3.2): the reachability preserving compression function
// R. Pipeline: SCC condensation (the paper's optimization) -> reachability
// equivalence classes -> quotient graph -> unique transitive reduction of
// the class DAG (the paper's lines 6-8 insert no redundant edge).
//
// The artifact bundles everything <R, F> needs at query time: the compressed
// graph Gr, the node map R(v) = [v]_Re (for F, O(1) rewriting), the inverse
// member index, per-class cyclic flags (non-empty self-reachability), and
// topological ranks (maintained by incRCM; Lemma 7).
//
// The pipeline is a GraphView template; the `const Graph&` entry point
// freezes a CsrGraph snapshot once and runs the whole pipeline on the flat
// layout (the batch sweeps are read-only; the incremental layer keeps the
// dynamic Graph as the source of truth).

#ifndef QPGC_REACH_COMPRESS_R_H_
#define QPGC_REACH_COMPRESS_R_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "graph/reduction.h"
#include "graph/topology.h"
#include "reach/equivalence.h"

namespace qpgc {

/// Options for compressR.
struct CompressROptions {
  /// Column-block width for the blocked closure refinement.
  size_t block_cols = 8192;
  /// Apply the transitive reduction to the class DAG (the paper does; turn
  /// off to study its effect — see bench/ ablation).
  bool transitive_reduction = true;
};

/// The reachability preserving compression of a graph.
struct ReachCompression {
  /// The compressed graph Gr. Nodes are equivalence classes; cyclic classes
  /// carry a self-loop. All labels are a fixed sigma (kNoLabel) — labels are
  /// irrelevant to reachability (paper, Section 3.1).
  Graph gr;
  /// The unreduced quotient (same nodes as gr, all class-level edges before
  /// transitive reduction). Queries never need it; incRCM does: frozen
  /// classes contribute these edge-faithful edges to the hybrid graph, so
  /// that refreshing one class's edges can never hide another's direct
  /// link. May accumulate closure-preserving phantom edges across
  /// incremental updates; the reduced gr stays exact regardless (the
  /// reduction is a function of the closure, which is maintained exactly).
  Graph quotient;
  /// node_map[v] = R(v), the Gr-node of original node v.
  std::vector<NodeId> node_map;
  /// members[c] = original nodes represented by Gr-node c.
  std::vector<std::vector<NodeId>> members;
  /// cyclic[c] = 1 iff class c is a cyclic SCC of G.
  std::vector<uint8_t> cyclic;
  /// Topological rank r of every Gr node (Section 5.1).
  std::vector<uint32_t> ranks;
  /// |V| of the graph this was computed from.
  size_t original_num_nodes = 0;
  /// |G| = |V| + |E| of the original (for compression-ratio reporting).
  size_t original_size = 0;

  /// |Gr| = |Vr| + |Er| (the paper's size measure).
  size_t size() const { return gr.size(); }
  /// Compression ratio RCr = |Gr| / |G|.
  double CompressionRatio() const {
    return original_size == 0
               ? 1.0
               : static_cast<double>(size()) /
                     static_cast<double>(original_size);
  }
  /// Heap bytes of the artifact (Gr + node map + member index).
  size_t MemoryBytes() const;
};

/// Computes Gr = R(G) from any read-only view. Exact; equivalent to the
/// paper's quadratic algorithm but runs on the condensation with blocked
/// bitsets.
template <GraphView G>
ReachCompression CompressR(const G& g, const CompressROptions& options = {}) {
  ReachCompression rc;
  rc.original_num_nodes = g.num_nodes();
  rc.original_size = ViewSize(g);

  ReachPartition part = ComputeReachEquivalence(g, options.block_cols);
  rc.node_map = std::move(part.class_of);
  rc.members = std::move(part.members);
  rc.cyclic = std::move(part.cyclic);
  const size_t nc = part.num_classes;

  // Quotient edges. Intra-class edges can only occur inside a cyclic class
  // (one SCC); they are represented by that class's self-loop.
  GraphBuilder builder(nc);
  for (NodeId c = 0; c < nc; ++c) {
    if (rc.cyclic[c]) builder.AddEdge(c, c);
  }
  ForEachEdge(g, [&](NodeId u, NodeId v) {
    const NodeId cu = rc.node_map[u];
    const NodeId cv = rc.node_map[v];
    if (cu != cv) builder.AddEdge(cu, cv);
  });
  rc.quotient = builder.Build();

  rc.gr = options.transitive_reduction
              ? TransitiveReductionDag(rc.quotient, options.block_cols)
              : rc.quotient;
  rc.ranks = DagTopoRanks(rc.gr);
  return rc;
}

/// Batch entry point for the dynamic Graph: freezes a CsrGraph snapshot
/// once, then runs the pipeline above on the flat layout. Defined in
/// compress_r.cc.
ReachCompression CompressR(const Graph& g, const CompressROptions& options = {});

}  // namespace qpgc

#endif  // QPGC_REACH_COMPRESS_R_H_
