// Copyright 2026 The QPGC Authors.
//
// compressR (Section 3.2): the reachability preserving compression function
// R. Pipeline: SCC condensation (the paper's optimization) -> reachability
// equivalence classes -> quotient graph -> unique transitive reduction of
// the class DAG (the paper's lines 6-8 insert no redundant edge).
//
// The artifact bundles everything <R, F> needs at query time: the compressed
// graph Gr, the node map R(v) = [v]_Re (for F, O(1) rewriting), the inverse
// member index, per-class cyclic flags (non-empty self-reachability), and
// topological ranks (maintained by incRCM; Lemma 7).

#ifndef QPGC_REACH_COMPRESS_R_H_
#define QPGC_REACH_COMPRESS_R_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "reach/equivalence.h"

namespace qpgc {

/// Options for compressR.
struct CompressROptions {
  /// Column-block width for the blocked closure refinement.
  size_t block_cols = 8192;
  /// Apply the transitive reduction to the class DAG (the paper does; turn
  /// off to study its effect — see bench/ ablation).
  bool transitive_reduction = true;
};

/// The reachability preserving compression of a graph.
struct ReachCompression {
  /// The compressed graph Gr. Nodes are equivalence classes; cyclic classes
  /// carry a self-loop. All labels are a fixed sigma (kNoLabel) — labels are
  /// irrelevant to reachability (paper, Section 3.1).
  Graph gr;
  /// The unreduced quotient (same nodes as gr, all class-level edges before
  /// transitive reduction). Queries never need it; incRCM does: frozen
  /// classes contribute these edge-faithful edges to the hybrid graph, so
  /// that refreshing one class's edges can never hide another's direct
  /// link. May accumulate closure-preserving phantom edges across
  /// incremental updates; the reduced gr stays exact regardless (the
  /// reduction is a function of the closure, which is maintained exactly).
  Graph quotient;
  /// node_map[v] = R(v), the Gr-node of original node v.
  std::vector<NodeId> node_map;
  /// members[c] = original nodes represented by Gr-node c.
  std::vector<std::vector<NodeId>> members;
  /// cyclic[c] = 1 iff class c is a cyclic SCC of G.
  std::vector<uint8_t> cyclic;
  /// Topological rank r of every Gr node (Section 5.1).
  std::vector<uint32_t> ranks;
  /// |V| of the graph this was computed from.
  size_t original_num_nodes = 0;
  /// |G| = |V| + |E| of the original (for compression-ratio reporting).
  size_t original_size = 0;

  /// |Gr| = |Vr| + |Er| (the paper's size measure).
  size_t size() const { return gr.size(); }
  /// Compression ratio RCr = |Gr| / |G|.
  double CompressionRatio() const {
    return original_size == 0
               ? 1.0
               : static_cast<double>(size()) /
                     static_cast<double>(original_size);
  }
  /// Heap bytes of the artifact (Gr + node map + member index).
  size_t MemoryBytes() const;
};

/// Computes Gr = R(G). Exact; equivalent to the paper's quadratic algorithm
/// but runs on the condensation with blocked bitsets.
ReachCompression CompressR(const Graph& g, const CompressROptions& options = {});

}  // namespace qpgc

#endif  // QPGC_REACH_COMPRESS_R_H_
