// Copyright 2026 The QPGC Authors.

#include "reach/aho.h"

#include "graph/builder.h"
#include "graph/condensation.h"
#include "graph/reduction.h"

namespace qpgc {

Graph AhoTransitiveReduction(const Graph& g) {
  const Condensation cond = BuildCondensation(g);
  const Graph reduced_dag = TransitiveReductionDag(cond.dag);

  GraphBuilder builder(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) builder.SetLabel(u, g.label(u));

  // Each SCC becomes a simple cycle through its members (sorted order); a
  // singleton keeps its self-loop if cyclic.
  for (size_t c = 0; c < cond.scc.num_components; ++c) {
    const auto& m = cond.scc.members[c];
    if (m.size() > 1) {
      for (size_t i = 0; i < m.size(); ++i) {
        builder.AddEdge(m[i], m[(i + 1) % m.size()]);
      }
    } else if (cond.scc.cyclic[c]) {
      builder.AddEdge(m[0], m[0]);
    }
  }

  // One representative edge per reduced condensation edge.
  reduced_dag.ForEachEdge([&](NodeId cu, NodeId cv) {
    builder.AddEdge(cond.scc.members[cu][0], cond.scc.members[cv][0]);
  });
  return builder.Build();
}

}  // namespace qpgc
