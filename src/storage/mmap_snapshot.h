// Copyright 2026 The QPGC Authors.
//
// Out-of-core serving: MmapSnapshot answers the paper's query classes
// directly off a memory-mapped snapshot artifact (storage/format.h) — no
// deserialization, no heap copy of the quotients. MmapCsrGraph models the
// GraphView concept over the mapped sections, so the exact same templated
// algorithms that serve an in-RAM ServingSnapshot (reach/queries.h EvalReach,
// pattern/match.h Match/BooleanMatch, core/pattern_scheme.h ExpandMatchWith)
// run unchanged against the mapping; answers are differentially tested
// byte-equal to the in-RAM path (tests/storage_roundtrip_test.cc).
//
// Cold-start economics: Open() reads only the header and section table
// (plus the optional validation/verification passes); quotient pages fault
// in lazily as queries touch them, and the kernel shares one page-cache
// copy across every process mapping the same artifact. kVarint-encoded
// adjacency sections are the exception — not addressable in place, they are
// decoded to heap once at Open (the cold-shard trade-off, docs/STORAGE.md).
//
// Trust model: Open() defaults to {verify_checksums = false,
// validate_structure = false} — header, section table, their checksums, and
// the total file length are ALWAYS verified, but payload bytes are served
// as-is. That is the out-of-core fast path for artifacts this process (or
// its deploy pipeline) wrote. For artifacts of unknown provenance pass
// LoadOptions{true, true}: a payload bit flip can otherwise produce wrong
// answers or out-of-bounds reads, exactly like any mmap-serving store.
//
// Lifetime: MmapCsrGraph and every span accessor view the mapping owned by
// the MmapSnapshot; they are valid only while it lives (docs/LIFETIMES.md;
// the same pin-scope discipline as frozen serving sides). MmapSnapshot is
// movable — views stay valid because the mapping address and decoded heap
// buffers are stable under move.

#ifndef QPGC_STORAGE_MMAP_SNAPSHOT_H_
#define QPGC_STORAGE_MMAP_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph_view.h"
#include "pattern/match.h"
#include "pattern/pattern.h"
#include "reach/queries.h"
#include "storage/codec.h"
#include "storage/mmap_file.h"
#include "storage/snapshot_io.h"
#include "util/common.h"
#include "util/lifetime_annotations.h"

namespace qpgc::storage {

/// A CSR graph served in place from mapped artifact sections. Models
/// GraphView and DenseInEdgeView (graph/graph_view.h); every batch algorithm
/// and query evaluator runs on it unchanged. A view — valid only while the
/// owning MmapSnapshot lives.
class QPGC_GSL_POINTER MmapCsrGraph {
 public:
  MmapCsrGraph() = default;

  size_t num_nodes() const { return n_; }
  size_t num_edges() const { return m_; }
  size_t size() const { return n_ + m_; }

  std::span<const NodeId> OutNeighbors(NodeId u) const QPGC_LIFETIME_BOUND {
    QPGC_DCHECK(u < n_);
    const uint64_t begin = out_offsets_[u];
    return out_targets_.subspan(begin, out_offsets_[u + 1] - begin);
  }
  std::span<const NodeId> InNeighbors(NodeId u) const QPGC_LIFETIME_BOUND {
    QPGC_DCHECK(u < n_);
    const uint64_t begin = in_offsets_[u];
    return in_targets_.subspan(begin, in_offsets_[u + 1] - begin);
  }
  size_t OutDegree(NodeId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  size_t InDegree(NodeId u) const {
    return in_offsets_[u + 1] - in_offsets_[u];
  }
  bool HasEdge(NodeId u, NodeId v) const { return ViewHasEdge(*this, u, v); }
  Label label(NodeId u) const { return labels_[u]; }

  /// Dense in-edge interface (DenseInEdgeView): lets the PT engine borrow
  /// the mapped in-source array instead of materializing its own.
  size_t InEdgeBegin(NodeId u) const { return in_offsets_[u]; }
  std::span<const NodeId> InEdgeSources() const QPGC_LIFETIME_BOUND {
    return in_targets_;
  }

 private:
  friend class MmapSnapshot;
  friend struct MmapWire;  // Open()'s section-wiring helper (the .cc)

  OffsetsView out_offsets_;
  OffsetsView in_offsets_;
  std::span<const NodeId> out_targets_;
  std::span<const NodeId> in_targets_;
  U32View labels_;
  size_t n_ = 0;
  size_t m_ = 0;
};

static_assert(GraphView<MmapCsrGraph>);
static_assert(DenseInEdgeView<MmapCsrGraph>);

/// One snapshot artifact, opened for serving off the mapping (see file
/// comment for the cold-start and trust contracts). Read-only and
/// internally immutable after Open: any number of threads may query
/// concurrently, same as a pinned ServingSnapshot.
class QPGC_GSL_OWNER MmapSnapshot {
 public:
  MmapSnapshot() = default;

  /// Maps `path` and wires the serving views. Defaults are the trusted
  /// fast path (no payload verification — see the trust model above); pass
  /// LoadOptions{true, true} for artifacts of unknown provenance.
  static Result<MmapSnapshot> Open(
      const std::string& path,
      const LoadOptions& options = LoadOptions{/*verify_checksums=*/false,
                                               /*validate_structure=*/false});

  // --- Identity -------------------------------------------------------------

  uint64_t version() const { return header_.snapshot_version; }
  size_t original_num_nodes() const { return header_.original_num_nodes; }
  uint32_t shard() const { return header_.shard; }
  uint32_t num_shards() const { return header_.num_shards; }

  // --- Queries (mirror ServingSnapshot's semantics exactly) -----------------

  /// QR(u, v) on original node ids: rewrite through the mapped reach node
  /// map, stock algorithm on the mapped quotient (Theorem 2).
  bool Reach(NodeId u, NodeId v, PathMode mode = PathMode::kReflexive,
             ReachAlgorithm algo = ReachAlgorithm::kBfs) const {
    QPGC_CHECK(u < reach_map_.size() && v < reach_map_.size());
    if (mode == PathMode::kReflexive && u == v) return true;
    return EvalReach(reach_gr_, reach_map_[u], reach_map_[v],
                     PathMode::kNonEmpty, algo);
  }

  /// The maximum match of q, expanded to original node ids (F = id, Match
  /// on the mapped quotient, then the shared P).
  MatchResult Match(const PatternQuery& q) const;

  /// Boolean pattern query on the mapped quotient; no P needed.
  bool BooleanMatch(const PatternQuery& q) const;

  // --- Mapped artifact views (valid while this snapshot lives) --------------

  const MmapCsrGraph& reach_gr() const QPGC_LIFETIME_BOUND {
    return reach_gr_;
  }
  const MmapCsrGraph& pattern_gr() const QPGC_LIFETIME_BOUND {
    return pattern_gr_;
  }
  std::span<const NodeId> reach_map() const QPGC_LIFETIME_BOUND {
    return reach_map_;
  }
  std::span<const NodeId> pattern_map() const QPGC_LIFETIME_BOUND {
    return pattern_map_;
  }
  std::span<const NodeId> pattern_block_members(NodeId block) const
      QPGC_LIFETIME_BOUND {
    const uint64_t begin = member_offsets_[block];
    return member_flat_.subspan(begin, member_offsets_[block + 1] - begin);
  }
  /// Boundary-exit nodes (sharded artifacts; empty otherwise).
  std::span<const NodeId> boundary_exits() const QPGC_LIFETIME_BOUND {
    return boundary_exits_;
  }

  // --- Accounting -----------------------------------------------------------

  /// Bytes of the mapping (charged to page cache on demand, not resident
  /// up front).
  size_t MappedBytes() const { return file_.size(); }
  /// Heap bytes materialized at Open (decoded kVarint sections); 0 for
  /// raw-encoded artifacts — the bench's resident-cost axis.
  size_t DecodedHeapBytes() const;

 private:
  MmapFile file_;
  FileHeader header_{};
  MmapCsrGraph reach_gr_;
  MmapCsrGraph pattern_gr_;
  // Self-referential views into file_ / decoded_ below — both address-
  // stable under move, so these can never dangle while *this lives.
  // qpgc-pin-escape: allow(member-view-store)
  std::span<const NodeId> reach_map_;
  // qpgc-pin-escape: allow(member-view-store)
  std::span<const NodeId> pattern_map_;
  OffsetsView member_offsets_;
  // qpgc-pin-escape: allow(member-view-store)
  std::span<const NodeId> member_flat_;
  // qpgc-pin-escape: allow(member-view-store)
  std::span<const NodeId> boundary_exits_;
  // Stable backing for sections that cannot be served in place (kVarint
  // adjacency, defensively kConstU32): spans above may point into these.
  // vector-of-vectors so growth never moves an already-referenced buffer.
  std::vector<std::vector<NodeId>> decoded_;
};

}  // namespace qpgc::storage

#endif  // QPGC_STORAGE_MMAP_SNAPSHOT_H_
