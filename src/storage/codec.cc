// Copyright 2026 The QPGC Authors.

#include "storage/codec.h"

#include <cstdint>
#include <cstring>

namespace qpgc::storage {
namespace {

size_t NumAnchors(size_t count) {
  return (count + kDeltaBlock - 1) / kDeltaBlock;
}

void AppendBytes(std::vector<std::byte>* out, const void* data, size_t n) {
  const auto* p = static_cast<const std::byte*>(data);
  out->insert(out->end(), p, p + n);
}

/// LEB128; at most 5 bytes for a u32.
void AppendVarint(std::vector<std::byte>* out, uint32_t value) {
  while (value >= 0x80u) {
    out->push_back(static_cast<std::byte>((value & 0x7Fu) | 0x80u));
    value >>= 7;
  }
  out->push_back(static_cast<std::byte>(value));
}

/// Decodes one varint; false on truncation or >32-bit overflow.
bool ReadVarint(std::span<const std::byte> bytes, size_t* at,
                uint32_t* value) {
  uint32_t v = 0;
  for (int shift = 0; shift < 35; shift += 7) {
    if (*at >= bytes.size()) return false;
    const uint32_t b = static_cast<uint32_t>(bytes[(*at)++]);
    if (shift == 28 && (b & 0x7Fu) > 0x0Fu) return false;  // overflows u32
    v |= (b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) {
      *value = v;
      return true;
    }
  }
  return false;
}

}  // namespace

SectionEncoding ChooseOffsetEncoding(std::span<const uint64_t> offsets) {
  if (offsets.empty()) return SectionEncoding::kRaw64;
  bool delta_ok = true;
  uint64_t anchor = 0;
  for (size_t i = 0; i < offsets.size(); ++i) {
    if (i % kDeltaBlock == 0) anchor = offsets[i];
    QPGC_DCHECK(offsets[i] >= anchor);
    if (offsets[i] - anchor > 0xFFFFull) {
      delta_ok = false;
      break;
    }
  }
  if (delta_ok) return SectionEncoding::kDelta16;
  if (offsets.back() <= 0xFFFFFFFFull) return SectionEncoding::kRaw32;
  return SectionEncoding::kRaw64;
}

EncodedSection EncodeOffsets(std::span<const uint64_t> offsets,
                             SectionEncoding enc) {
  EncodedSection out;
  out.encoding = enc;
  out.element_count = offsets.size();
  switch (enc) {
    case SectionEncoding::kRaw64:
      AppendBytes(&out.bytes, offsets.data(), offsets.size_bytes());
      break;
    case SectionEncoding::kRaw32: {
      out.bytes.reserve(4 * offsets.size());
      for (const uint64_t o : offsets) {
        QPGC_CHECK(o <= 0xFFFFFFFFull);
        const uint32_t v = static_cast<uint32_t>(o);
        AppendBytes(&out.bytes, &v, sizeof(v));
      }
      break;
    }
    case SectionEncoding::kDelta16: {
      const size_t anchors = NumAnchors(offsets.size());
      out.bytes.reserve(8 * anchors + 2 * offsets.size());
      for (size_t a = 0; a < anchors; ++a) {
        const uint64_t anchor = offsets[a * kDeltaBlock];
        AppendBytes(&out.bytes, &anchor, sizeof(anchor));
      }
      for (size_t i = 0; i < offsets.size(); ++i) {
        const uint64_t anchor = offsets[(i / kDeltaBlock) * kDeltaBlock];
        const uint64_t d = offsets[i] - anchor;
        QPGC_CHECK(d <= 0xFFFFull);
        const uint16_t v = static_cast<uint16_t>(d);
        AppendBytes(&out.bytes, &v, sizeof(v));
      }
      break;
    }
    default:
      QPGC_CHECK(false);  // not an offsets encoding
  }
  return out;
}

Result<OffsetsView> OffsetsView::Make(SectionEncoding enc,
                                      std::span<const std::byte> bytes,
                                      size_t element_count) {
  OffsetsView view;
  view.enc_ = enc;
  view.count_ = element_count;
  // Every offsets encoding stores >= 2 bytes per element, so a count larger
  // than the byte length is corrupt; checking first keeps the size
  // arithmetic below overflow-free on hostile inputs.
  if (element_count > bytes.size()) {
    return Status::CorruptData("offsets section count exceeds stored bytes");
  }
  switch (enc) {
    case SectionEncoding::kRaw64:
      if (bytes.size() != 8 * element_count) {
        return Status::CorruptData("raw64 offsets section length mismatch");
      }
      view.raw64_ = reinterpret_cast<const uint64_t*>(bytes.data());
      break;
    case SectionEncoding::kRaw32:
      if (bytes.size() != 4 * element_count) {
        return Status::CorruptData("raw32 offsets section length mismatch");
      }
      view.raw32_ = reinterpret_cast<const uint32_t*>(bytes.data());
      break;
    case SectionEncoding::kDelta16: {
      const size_t anchors = NumAnchors(element_count);
      if (bytes.size() != 8 * anchors + 2 * element_count) {
        return Status::CorruptData("delta16 offsets section length mismatch");
      }
      view.anchors_ = reinterpret_cast<const uint64_t*>(bytes.data());
      view.deltas_ =
          reinterpret_cast<const uint16_t*>(bytes.data() + 8 * anchors);
      break;
    }
    default:
      return Status::CorruptData("unknown offsets encoding");
  }
  if (reinterpret_cast<uintptr_t>(bytes.data()) % kSectionAlign != 0) {
    return Status::CorruptData("misaligned offsets section");
  }
  return view;
}

EncodedSection EncodeU32(std::span<const uint32_t> values) {
  EncodedSection out;
  out.element_count = values.size();
  bool all_equal = !values.empty();
  for (const uint32_t v : values) {
    if (v != values.front()) {
      all_equal = false;
      break;
    }
  }
  if (all_equal) {
    out.encoding = SectionEncoding::kConstU32;
    AppendBytes(&out.bytes, &values.front(), sizeof(uint32_t));
  } else {
    out.encoding = SectionEncoding::kRaw32;
    AppendBytes(&out.bytes, values.data(), values.size_bytes());
  }
  return out;
}

Result<U32View> U32View::Make(SectionEncoding enc,
                              std::span<const std::byte> bytes,
                              size_t element_count) {
  U32View view;
  view.count_ = element_count;
  switch (enc) {
    case SectionEncoding::kRaw32:
      if (element_count > bytes.size() || bytes.size() != 4 * element_count) {
        return Status::CorruptData("raw32 section length mismatch");
      }
      if (reinterpret_cast<uintptr_t>(bytes.data()) % alignof(uint32_t) !=
          0) {
        return Status::CorruptData("misaligned u32 section");
      }
      view.data_ = reinterpret_cast<const uint32_t*>(bytes.data());
      break;
    case SectionEncoding::kConstU32:
      if (bytes.size() != 4 || element_count == 0) {
        return Status::CorruptData("const-u32 section length mismatch");
      }
      std::memcpy(&view.constant_, bytes.data(), sizeof(uint32_t));
      break;
    default:
      return Status::CorruptData("unknown u32 section encoding");
  }
  return view;
}

EncodedSection EncodeVarintTargets(std::span<const uint64_t> offsets,
                                   std::span<const NodeId> targets) {
  EncodedSection out;
  out.encoding = SectionEncoding::kVarint;
  out.element_count = targets.size();
  QPGC_CHECK(!offsets.empty() && offsets.back() == targets.size());
  for (size_t r = 0; r + 1 < offsets.size(); ++r) {
    NodeId prev = 0;
    for (uint64_t e = offsets[r]; e < offsets[r + 1]; ++e) {
      const NodeId t = targets[e];
      if (e == offsets[r]) {
        AppendVarint(&out.bytes, t);
      } else {
        QPGC_CHECK(t > prev);  // CSR runs are strictly ascending
        AppendVarint(&out.bytes, t - prev);
      }
      prev = t;
    }
  }
  return out;
}

Status DecodeVarintTargets(std::span<const std::byte> bytes,
                           const OffsetsView& offsets, size_t element_count,
                           NodeId num_nodes, std::vector<NodeId>* out) {
  out->clear();
  // Every element stores at least one byte — bounds the reserve below on
  // hostile counts.
  if (element_count > bytes.size()) {
    return Status::CorruptData("varint section count exceeds stored bytes");
  }
  out->reserve(element_count);
  if (offsets.size() == 0 || offsets.back() != element_count) {
    return Status::CorruptData("varint targets disagree with offsets");
  }
  size_t at = 0;
  for (size_t r = 0; r + 1 < offsets.size(); ++r) {
    const uint64_t begin = offsets[r];
    const uint64_t end = offsets[r + 1];
    if (begin > end || end > element_count) {
      return Status::CorruptData("varint run offsets not monotone");
    }
    NodeId prev = 0;
    for (uint64_t e = begin; e < end; ++e) {
      uint32_t v = 0;
      if (!ReadVarint(bytes, &at, &v)) {
        return Status::CorruptData("truncated varint targets section");
      }
      NodeId t;
      if (e == begin) {
        t = v;
      } else {
        if (v == 0 || v > num_nodes - prev) {
          return Status::CorruptData("varint target gap out of range");
        }
        t = prev + v;
      }
      if (t >= num_nodes) {
        return Status::CorruptData("varint target out of range");
      }
      out->push_back(t);
      prev = t;
    }
  }
  if (at != bytes.size()) {
    return Status::CorruptData("trailing bytes in varint targets section");
  }
  return Status::Ok();
}

}  // namespace qpgc::storage
