// Copyright 2026 The QPGC Authors.
//
// MmapFile: a read-only memory mapping of a whole file, RAII-owned. The
// substrate under storage/mmap_snapshot.h: the kernel pages artifact bytes
// in on demand and shares one page-cache copy across every process serving
// the same snapshot, which is what makes out-of-core replicas cheap
// (docs/STORAGE.md).
//
// Lifetime contract: bytes() hands out a view into the mapping, valid only
// while this MmapFile lives — the same owner/pointer regime as the frozen
// serving sides (docs/LIFETIMES.md). Failure is a Status, never an abort:
// opening artifacts is an I/O boundary (util/status.h).

#ifndef QPGC_STORAGE_MMAP_FILE_H_
#define QPGC_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <span>
#include <string>

#include "util/lifetime_annotations.h"
#include "util/status.h"

namespace qpgc::storage {

/// A read-only mapping of one file. Movable, not copyable; unmaps on
/// destruction.
class QPGC_GSL_OWNER MmapFile {
 public:
  MmapFile() = default;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  /// Maps `path` read-only in full. A zero-length file maps to an empty
  /// (but valid) MmapFile.
  static Result<MmapFile> Open(const std::string& path);

  /// The mapped bytes; valid while this object lives.
  std::span<const std::byte> bytes() const QPGC_LIFETIME_BOUND {
    return {static_cast<const std::byte*>(data_), size_};
  }
  size_t size() const { return size_; }

 private:
  void* data_ = nullptr;  // nullptr when empty/unopened
  size_t size_ = 0;
};

}  // namespace qpgc::storage

#endif  // QPGC_STORAGE_MMAP_FILE_H_
