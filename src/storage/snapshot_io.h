// Copyright 2026 The QPGC Authors.
//
// Save / load of serving snapshots as on-disk artifacts (storage/format.h).
//
// The writer serializes a frozen ServingSnapshot — both quotient CSRs, node
// maps, member index, boundary tables, and (sharded saves) the shard
// partition — choosing the tightest admissible offset encoding per section
// (storage/codec.h) unless pinned to raw64. Three readers share one parse
// layer (ParseArtifact):
//
//   * LoadServingSnapshot — full deserialization back into heap-owned
//     frozen sides; the boundary summary is NOT stored, it is deterministic
//     in the reach side + boundary sets and rebuilt here
//     (serve/boundary_summary.h).
//   * LoadShardSet — K per-shard artifacts into the router-ready pinned
//     form (each file is self-describing: it carries the partition).
//   * storage/mmap_snapshot.h — serves queries off the mapping, no
//     deserialize.
//
// Failure policy: every reader returns Status on malformed input — bad
// magic, foreign version, truncation, checksum mismatch, structurally
// invalid sections — and never feeds unvalidated bytes to QPGC_CHECK-ing
// core code (tests/storage_corruption_test.cc drives this with a
// deterministic mutator).

#ifndef QPGC_STORAGE_SNAPSHOT_IO_H_
#define QPGC_STORAGE_SNAPSHOT_IO_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/pattern_scheme.h"
#include "graph/graph.h"
#include "graph/shard_view.h"
#include "reach/compress_r.h"
#include "serve/snapshot.h"
#include "storage/codec.h"
#include "storage/format.h"
#include "util/lifetime_annotations.h"
#include "util/status.h"

namespace qpgc::storage {

/// How CSR index (offset) sections are encoded.
enum class IndexEncoding {
  /// Tightest admissible per section (ChooseOffsetEncoding): kDelta16,
  /// else kRaw32, else kRaw64.
  kAuto,
  /// Plain 8-byte offsets everywhere (the baseline bench_storage compares
  /// the compact encodings against).
  kRaw64,
};

struct SaveOptions {
  IndexEncoding index_encoding = IndexEncoding::kAuto;
  /// Store adjacency target sections as varint gap runs instead of raw u32
  /// — smallest file, but the mmap reader must decode them to heap at open
  /// (the cold-shard trade-off; docs/STORAGE.md).
  bool varint_adjacency = false;
  /// Stamped into the header. A sharded save must also pass `partition`.
  uint32_t shard = 0;
  uint32_t num_shards = 1;
  /// Saved as a kPartitionShardOf section when num_shards > 1, making each
  /// shard file self-describing. Must outlive the call.
  const ShardPartition* partition = nullptr;
};

/// Serializes a frozen snapshot to `path` (whole file replaced).
Status SaveSnapshot(const ServingSnapshot& snap, const std::string& path,
                    const SaveOptions& options = {});

struct LoadOptions {
  /// Verify every section's payload checksum. Header and section-table
  /// checksums are always verified regardless.
  bool verify_checksums = true;
  /// Validate structural invariants (monotone offsets, in-range strictly
  /// ascending adjacency runs, in-range maps) before handing sections to
  /// core code. Turning this off is only safe for trusted artifacts: core
  /// code QPGC_CHECK-aborts on malformed input instead of returning.
  bool validate_structure = true;
};

/// A parsed artifact: validated header plus section table, views into the
/// caller's bytes (which must outlive the ParsedArtifact). Shared by the
/// deserialize loader and the mmap reader.
struct QPGC_GSL_POINTER ParsedArtifact {
  FileHeader header{};
  std::span<const SectionEntry> table;
  std::span<const std::byte> bytes;

  /// The table entry of `kind`, or nullptr when absent.
  const SectionEntry* Find(SectionKind kind) const;
  /// The stored bytes of a table entry (bounds already validated).
  std::span<const std::byte> SectionBytes(const SectionEntry& entry) const {
    return bytes.subspan(entry.offset, entry.stored_bytes);
  }
};

/// Validates magic, format version, header/table checksums, total length,
/// and every entry's bounds and alignment; with `verify_payload_checksums`
/// also every section's payload checksum.
Result<ParsedArtifact> ParseArtifact(std::span<const std::byte> bytes,
                                     bool verify_payload_checksums);

/// Structural validation of one CSR-shaped index: offsets monotone from 0
/// to targets.size(), every run strictly ascending with targets <
/// target_universe. The row count (offsets.size() - 1) is the caller's to
/// check — for adjacency it equals the node count, for the member index it
/// is the block count while targets live in the original node universe.
/// What makes a section safe to AdoptCsr / serve without bounds faults.
Status ValidateCsr(const OffsetsView& offsets, std::span<const NodeId> targets,
                   size_t target_universe);

/// A fully deserialized snapshot plus its header identity.
struct LoadedSnapshot {
  std::shared_ptr<const ServingSnapshot> snapshot;
  uint32_t shard = 0;
  uint32_t num_shards = 1;
};

/// Deserializes `path` into heap-owned frozen sides; sharded artifacts get
/// their boundary summary rebuilt (deterministic; not stored).
Result<LoadedSnapshot> LoadServingSnapshot(const std::string& path,
                                           const LoadOptions& options = {});

/// A complete sharded serving state loaded from per-shard artifacts, in the
/// form serve/router.h's PinnedShards consumes directly.
struct LoadedShardSet {
  std::shared_ptr<const ShardPartition> partition;
  /// snapshots[s] is shard s's snapshot.
  std::vector<std::shared_ptr<const ServingSnapshot>> snapshots;
};

/// Loads one artifact per shard (any path order; files carry their shard
/// ids) and cross-checks that they form one consistent set: same shard
/// count, same node universe, identical partition, one file per shard.
Result<LoadedShardSet> LoadShardSet(const std::vector<std::string>& paths,
                                    const LoadOptions& options = {});

/// The maintained-artifact pair reconstructed from an unsharded snapshot,
/// for SnapshotManager adoption (serve/snapshot_manager.h).
struct ReconstructedArtifacts {
  ReachCompression rc;
  PatternCompression pc;
};

/// Rebuilds {ReachCompression, PatternCompression} from a loaded unsharded
/// snapshot plus the original graph it was compressed from. The frozen
/// sides carry the *reduced* reach quotient; the edge-faithful unreduced
/// quotient that IncRCM requires is rebuilt from `g` in O(|V| + |E|)
/// (mirroring CompressR's construction), so post-adoption incremental
/// maintenance is exact. Rejects sharded snapshots (ghost blocks / cross
/// edges / boundary tables) and graphs whose node count or labels disagree
/// with the snapshot.
Result<ReconstructedArtifacts> ReconstructArtifacts(
    const Graph& g, const ServingSnapshot& snap);

}  // namespace qpgc::storage

#endif  // QPGC_STORAGE_SNAPSHOT_IO_H_
