// Copyright 2026 The QPGC Authors.

#include "storage/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(_WIN32)
// The mmap tier is POSIX-only; Windows builds fall back to the deserialize
// path (storage/snapshot_io.h), which uses plain file reads.
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace qpgc::storage {

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    this->~MmapFile();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MmapFile::~MmapFile() {
#if !defined(_WIN32)
  if (data_ != nullptr) ::munmap(data_, size_);
#endif
  data_ = nullptr;
  size_ = 0;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
#if defined(_WIN32)
  return Status::IoError("mmap is unsupported on this platform: " + path);
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " + err);
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* data = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("cannot mmap " + path + ": " + err);
    }
    file.data_ = data;
  }
  ::close(fd);  // the mapping keeps the file alive
  return file;
#endif
}

}  // namespace qpgc::storage
