// Copyright 2026 The QPGC Authors.
//
// The qpgc snapshot artifact format: the versioned on-disk layout every
// storage/ reader and writer agrees on. One file holds one frozen
// ServingSnapshot (serve/snapshot.h) — both quotient CSRs, the node maps,
// the member index, the boundary tables of sharded serving, and (sharded
// saves) the shard partition — as a flat sequence of independently
// checksummed *sections*:
//
//   [FileHeader | SectionEntry x section_count | payload...payload]
//
// All integers are little-endian, fixed-width PODs; every payload section
// starts at an 8-byte-aligned file offset so an mmap of the file can hand
// out properly aligned typed spans without copying (storage/mmap_snapshot.h
// serves queries straight off the mapping). docs/STORAGE.md is the
// narrative spec; this header is the normative one.
//
// Versioning policy: `format_version` is bumped on ANY layout change, and
// readers hard-reject versions they were not built for — silently
// misparsing a snapshot would serve wrong answers, which is strictly worse
// than failing (tests/storage_format_test.cc pins both directions against
// a committed golden artifact).
// Integrity: the header carries a checksum of itself and one of the section
// table; each section entry carries a checksum of its stored bytes. Header
// and table checksums are always verified; payload verification is a load
// option (storage/snapshot_io.h) so the mmap tier can trade it for
// cold-start latency.

#ifndef QPGC_STORAGE_FORMAT_H_
#define QPGC_STORAGE_FORMAT_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

namespace qpgc::storage {

// The format is little-endian and the reader/writer use native typed views;
// a big-endian port would need explicit byte swaps at the section codec.
static_assert(std::endian::native == std::endian::little,
              "qpgc snapshot artifacts require a little-endian host");

/// File magic: identifies a qpgc snapshot artifact (8 bytes, no NUL).
inline constexpr char kMagic[8] = {'Q', 'P', 'G', 'C', 'S', 'N', 'A', 'P'};

/// Bumped on any layout change; readers reject other versions outright.
inline constexpr uint32_t kFormatVersion = 1;

/// Alignment of every payload section's file offset. 8 covers the widest
/// element type (uint64_t offsets / delta16 anchors), so typed spans over
/// the mapping are always properly aligned.
inline constexpr uint64_t kSectionAlign = 8;

/// What a section holds. Values are stable on-disk identifiers — append
/// only, never renumber.
enum class SectionKind : uint32_t {
  // Frozen reach side (serve/snapshot.h FrozenReachSide).
  kReachOutOffsets = 1,   // u64[n+1]
  kReachOutTargets = 2,   // u32[m]
  kReachInOffsets = 3,    // u64[n+1]
  kReachInTargets = 4,    // u32[m]
  kReachLabels = 5,       // u32[n] (all kNoLabel in practice -> kConstU32)
  kReachNodeMap = 6,      // u32[original_num_nodes]
  // Frozen pattern side (FrozenPatternSide), ghost-free compact form.
  kPatternOutOffsets = 7,
  kPatternOutTargets = 8,
  kPatternInOffsets = 9,
  kPatternInTargets = 10,
  kPatternLabels = 11,
  kPatternNodeMap = 12,     // u32[original]; kInvalidNode marks ghosts
  kMemberOffsets = 13,      // u64[owned blocks + 1]
  kMemberFlat = 14,         // u32[owned nodes]
  kCrossEdges = 15,         // u32[2 * pairs]: (owned block, ghost node)...
  // Sharded-serving boundary tables (absent for unsharded snapshots).
  kBoundaryExits = 16,      // u32[] sorted ascending
  kBoundaryEntries = 17,    // u32[] sorted ascending
  // Shard partition ownership map (sharded saves only; self-describing
  // shard files beat a sidecar that can go missing).
  kPartitionShardOf = 18,   // u32[original_num_nodes]
};

/// How a section's elements are packed. Values are stable on-disk
/// identifiers.
enum class SectionEncoding : uint32_t {
  /// uint64_t elements, memcpy layout. Valid for offset sections.
  kRaw64 = 1,
  /// uint32_t elements, memcpy layout. Identity for u32 sections; for
  /// offset sections each u64 is stored as a u32 (requires max < 2^32) —
  /// a 2.0x index cut, still O(1)-addressable off the mapping.
  kRaw32 = 2,
  /// Byte-packed delta offsets: u64 anchors (one per kDeltaBlock elements,
  /// anchor[j] = offsets[j * kDeltaBlock]) followed by u16 per-element
  /// deltas from the covering anchor. ~2.1 bytes/element (3.8x vs raw64),
  /// O(1) random access: offsets[i] = anchor[i / kDeltaBlock] + delta[i].
  /// Encodable iff every in-block span fits 16 bits. Offset sections only.
  kDelta16 = 3,
  /// Entropy-lite adjacency: per-node runs (delimited by the matching
  /// offsets section) stored as varints — first element absolute, then
  /// strictly-positive gaps. Smallest, but NOT addressable in place: the
  /// mmap tier decodes these into heap arrays at open (the cold-shard
  /// trade-off, docs/STORAGE.md). Target sections only.
  kVarint = 4,
  /// One stored u32 replicated element_count times (a constant array —
  /// the reach quotient's all-kNoLabel label vector).
  kConstU32 = 5,
};

/// Elements covered by one kDelta16 anchor.
inline constexpr size_t kDeltaBlock = 64;

/// File header, at offset 0. 64 bytes, fixed.
struct FileHeader {
  char magic[8];              // kMagic
  uint32_t format_version;    // kFormatVersion
  uint32_t section_count;
  uint64_t snapshot_version;  // ServingSnapshot::version()
  uint64_t original_num_nodes;
  uint32_t shard;             // this shard's id; 0 unsharded
  uint32_t num_shards;        // 1 unsharded
  uint64_t file_bytes;        // total file length, for truncation checks
  uint64_t table_checksum;    // Fnv1a64 over the section-table bytes
  uint64_t header_checksum;   // Fnv1a64 over this struct, this field = 0
};
static_assert(sizeof(FileHeader) == 64);

/// One section-table entry. 40 bytes, fixed; the table immediately follows
/// the header.
struct SectionEntry {
  uint32_t kind;           // SectionKind
  uint32_t encoding;       // SectionEncoding
  uint64_t offset;         // from file start; kSectionAlign-aligned
  uint64_t stored_bytes;   // encoded length in the file
  uint64_t element_count;  // decoded elements (u64s or u32s per kind)
  uint64_t checksum;       // Fnv1a64 over the stored bytes
};
static_assert(sizeof(SectionEntry) == 40);

/// FNV-1a 64-bit over a byte range — the format's checksum. Not
/// cryptographic; guards against truncation, bit rot and torn writes.
inline uint64_t Fnv1a64(std::span<const std::byte> bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const std::byte b : bytes) {
    h ^= static_cast<uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// `offset` rounded up to the next section boundary.
inline uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

}  // namespace qpgc::storage

#endif  // QPGC_STORAGE_FORMAT_H_
