// Copyright 2026 The QPGC Authors.

#include "storage/snapshot_io.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "graph/builder.h"
#include "graph/topology.h"
#include "serve/boundary_summary.h"
#include "storage/mmap_file.h"

namespace qpgc::storage {
namespace {

#define QPGC_RETURN_IF_ERROR(expr)        \
  do {                                    \
    const Status _status = (expr);        \
    if (!_status.ok()) return _status;    \
  } while (0)

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

EncodedSection RawU32Section(std::span<const uint32_t> values) {
  EncodedSection enc;
  enc.encoding = SectionEncoding::kRaw32;
  enc.element_count = values.size();
  const auto* p = reinterpret_cast<const std::byte*>(values.data());
  enc.bytes.assign(p, p + values.size_bytes());
  return enc;
}

// Accumulates (kind, payload) pairs, then lays the file out.
class ArtifactWriter {
 public:
  explicit ArtifactWriter(const SaveOptions& options) : options_(options) {}

  void AddOffsets(SectionKind kind, std::span<const uint64_t> offsets) {
    const SectionEncoding enc =
        options_.index_encoding == IndexEncoding::kRaw64
            ? SectionEncoding::kRaw64
            : ChooseOffsetEncoding(offsets);
    sections_.emplace_back(kind, EncodeOffsets(offsets, enc));
  }

  // Adjacency targets: varint gap runs when requested, raw u32 otherwise.
  // Never kConstU32 — the mmap reader serves targets as in-place spans.
  void AddTargets(SectionKind kind, std::span<const uint64_t> offsets,
                  std::span<const NodeId> targets) {
    if (options_.varint_adjacency) {
      sections_.emplace_back(kind, EncodeVarintTargets(offsets, targets));
    } else {
      sections_.emplace_back(kind, RawU32Section(targets));
    }
  }

  void AddLabels(SectionKind kind, std::span<const Label> labels) {
    // Const-detected: the reach quotient's labels are uniformly kNoLabel.
    sections_.emplace_back(kind, EncodeU32(labels));
  }

  void AddRawU32(SectionKind kind, std::span<const uint32_t> values) {
    sections_.emplace_back(kind, RawU32Section(values));
  }

  Status WriteTo(const std::string& path, uint64_t snapshot_version,
                 uint64_t original_num_nodes) const {
    const uint64_t meta_bytes =
        sizeof(FileHeader) + sections_.size() * sizeof(SectionEntry);
    std::vector<SectionEntry> table(sections_.size());
    uint64_t at = AlignUp(meta_bytes);
    for (size_t i = 0; i < sections_.size(); ++i) {
      const EncodedSection& enc = sections_[i].second;
      SectionEntry& entry = table[i];
      entry.kind = static_cast<uint32_t>(sections_[i].first);
      entry.encoding = static_cast<uint32_t>(enc.encoding);
      entry.offset = at;
      entry.stored_bytes = enc.bytes.size();
      entry.element_count = enc.element_count;
      entry.checksum = Fnv1a64(enc.bytes);
      at = AlignUp(at + entry.stored_bytes);
    }

    FileHeader header{};
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.format_version = kFormatVersion;
    header.section_count = static_cast<uint32_t>(sections_.size());
    header.snapshot_version = snapshot_version;
    header.original_num_nodes = original_num_nodes;
    header.shard = options_.shard;
    header.num_shards = options_.num_shards;
    header.file_bytes = at;
    header.table_checksum = Fnv1a64(
        {reinterpret_cast<const std::byte*>(table.data()),
         table.size() * sizeof(SectionEntry)});
    header.header_checksum = 0;
    header.header_checksum = Fnv1a64(
        {reinterpret_cast<const std::byte*>(&header), sizeof(header)});

    // Assemble in memory (alignment padding zero-filled), one write call.
    std::vector<std::byte> file(at, std::byte{0});
    std::memcpy(file.data(), &header, sizeof(header));
    std::memcpy(file.data() + sizeof(header), table.data(),
                table.size() * sizeof(SectionEntry));
    for (size_t i = 0; i < sections_.size(); ++i) {
      const EncodedSection& enc = sections_[i].second;
      std::memcpy(file.data() + table[i].offset, enc.bytes.data(),
                  enc.bytes.size());
    }

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + path + " for writing");
    out.write(reinterpret_cast<const char*>(file.data()),
              static_cast<std::streamsize>(file.size()));
    out.flush();
    if (!out) return Status::IoError("write failed: " + path);
    return Status::Ok();
  }

 private:
  const SaveOptions& options_;
  std::vector<std::pair<SectionKind, EncodedSection>> sections_;
};

// ---------------------------------------------------------------------------
// Reader helpers
// ---------------------------------------------------------------------------

std::string KindStr(SectionKind kind) {
  return std::to_string(static_cast<uint32_t>(kind));
}

Status Require(const ParsedArtifact& parsed, SectionKind kind,
               const SectionEntry** out) {
  *out = parsed.Find(kind);
  if (*out == nullptr) {
    return Status::CorruptData("missing section kind " + KindStr(kind));
  }
  return Status::Ok();
}

Result<OffsetsView> MakeOffsetsView(const ParsedArtifact& parsed,
                                    const SectionEntry& entry) {
  return OffsetsView::Make(static_cast<SectionEncoding>(entry.encoding),
                           parsed.SectionBytes(entry), entry.element_count);
}

// Decodes a u32 section (raw or const) to a heap vector; the caller has
// already checked the expected element count.
Status DecodeU32Vector(const ParsedArtifact& parsed, const SectionEntry& entry,
                       std::vector<uint32_t>* out) {
  Result<U32View> view = U32View::Make(
      static_cast<SectionEncoding>(entry.encoding), parsed.SectionBytes(entry),
      entry.element_count);
  if (!view.ok()) return view.status();
  if (view.value().is_const()) {
    out->assign(view.value().size(), view.value().constant());
  } else {
    const std::span<const uint32_t> raw = view.value().raw_span();
    out->assign(raw.begin(), raw.end());
  }
  return Status::Ok();
}

// One decoded CSR direction.
struct DecodedCsr {
  std::vector<uint64_t> offsets;
  std::vector<NodeId> targets;
  size_t n = 0;
};

Status DecodeCsr(const ParsedArtifact& parsed, SectionKind offsets_kind,
                 SectionKind targets_kind, bool validate, DecodedCsr* out) {
  const SectionEntry* off_entry = nullptr;
  const SectionEntry* tgt_entry = nullptr;
  QPGC_RETURN_IF_ERROR(Require(parsed, offsets_kind, &off_entry));
  QPGC_RETURN_IF_ERROR(Require(parsed, targets_kind, &tgt_entry));
  Result<OffsetsView> view = MakeOffsetsView(parsed, *off_entry);
  if (!view.ok()) return view.status();
  const OffsetsView& offsets = view.value();
  if (offsets.size() == 0) {
    return Status::CorruptData("empty offsets section kind " +
                               KindStr(offsets_kind));
  }
  out->n = offsets.size() - 1;
  // The O(1) endpoint invariants are always enforced — CsrGraph::AdoptCsr
  // asserts them, and an assert is not an acceptable response to a file.
  if (offsets[0] != 0 || offsets.back() != tgt_entry->element_count) {
    return Status::CorruptData("offsets endpoints disagree with targets, kind " +
                               KindStr(offsets_kind));
  }
  if (static_cast<SectionEncoding>(tgt_entry->encoding) ==
      SectionEncoding::kVarint) {
    QPGC_RETURN_IF_ERROR(DecodeVarintTargets(
        parsed.SectionBytes(*tgt_entry), offsets, tgt_entry->element_count,
        static_cast<NodeId>(out->n), &out->targets));
  } else {
    QPGC_RETURN_IF_ERROR(DecodeU32Vector(parsed, *tgt_entry, &out->targets));
  }
  if (validate) {
    QPGC_RETURN_IF_ERROR(ValidateCsr(offsets, out->targets, out->n));
  }
  out->offsets.resize(offsets.size());
  for (size_t i = 0; i < offsets.size(); ++i) out->offsets[i] = offsets[i];
  return Status::Ok();
}

// Decodes a u32 section whose element count must equal `expected`.
Status DecodeExpected(const ParsedArtifact& parsed, SectionKind kind,
                      uint64_t expected, std::vector<uint32_t>* out) {
  const SectionEntry* entry = nullptr;
  QPGC_RETURN_IF_ERROR(Require(parsed, kind, &entry));
  if (entry->element_count != expected) {
    return Status::CorruptData("section kind " + KindStr(kind) +
                               " has unexpected element count");
  }
  return DecodeU32Vector(parsed, *entry, out);
}

Status ValidateNodeMap(const std::vector<NodeId>& map, size_t num_blocks,
                       bool allow_invalid, const char* what) {
  for (const NodeId b : map) {
    if (b >= num_blocks && !(allow_invalid && b == kInvalidNode)) {
      return Status::CorruptData(std::string(what) + " out of range");
    }
  }
  return Status::Ok();
}

Status ValidateAscending(const std::vector<NodeId>& nodes, size_t num_nodes,
                         const char* what) {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= num_nodes || (i > 0 && nodes[i] <= nodes[i - 1])) {
      return Status::CorruptData(std::string(what) +
                                 " not strictly ascending in range");
    }
  }
  return Status::Ok();
}

// Everything LoadShardSet needs from one file beyond the snapshot itself.
struct ArtifactData {
  LoadedSnapshot loaded;
  bool has_partition = false;
  uint64_t partition_count = 0;
  uint64_t partition_checksum = 0;
  std::vector<uint32_t> shard_of;  // decoded only when requested
};

Status LoadArtifact(const std::string& path, const LoadOptions& options,
                    bool want_partition, ArtifactData* out) {
  Result<MmapFile> file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  Result<ParsedArtifact> parse =
      ParseArtifact(file.value().bytes(), options.verify_checksums);
  if (!parse.ok()) {
    return Status(parse.status().code(),
                  path + ": " + parse.status().message());
  }
  const ParsedArtifact& parsed = parse.value();
  const FileHeader& header = parsed.header;
  if (header.num_shards == 0 || header.shard >= header.num_shards) {
    return Status::CorruptData(path + ": invalid shard stamp");
  }
  const uint64_t original_n = header.original_num_nodes;
  const bool validate = options.validate_structure;

  // --- Reach side ---------------------------------------------------------
  auto reach = std::make_shared<FrozenReachSide>();
  {
    DecodedCsr csr;
    QPGC_RETURN_IF_ERROR(DecodeCsr(parsed, SectionKind::kReachOutOffsets,
                                   SectionKind::kReachOutTargets, validate,
                                   &csr));
    std::vector<Label> labels;
    QPGC_RETURN_IF_ERROR(
        DecodeExpected(parsed, SectionKind::kReachLabels, csr.n, &labels));
    QPGC_RETURN_IF_ERROR(DecodeExpected(parsed, SectionKind::kReachNodeMap,
                                        original_n, &reach->node_map));
    if (validate) {
      QPGC_RETURN_IF_ERROR(ValidateNodeMap(reach->node_map, csr.n,
                                           /*allow_invalid=*/false,
                                           "reach node map"));
    }
    // AdoptCsr derives the in-direction; the stored in-sections exist for
    // the zero-copy mmap reader and are not decoded here.
    reach->gr.AdoptCsr(std::move(csr.offsets), std::move(csr.targets),
                       std::move(labels));
  }

  // --- Pattern side -------------------------------------------------------
  auto pattern = std::make_shared<FrozenPatternSide>();
  size_t pattern_blocks = 0;
  {
    DecodedCsr csr;
    QPGC_RETURN_IF_ERROR(DecodeCsr(parsed, SectionKind::kPatternOutOffsets,
                                   SectionKind::kPatternOutTargets, validate,
                                   &csr));
    pattern_blocks = csr.n;
    std::vector<Label> labels;
    QPGC_RETURN_IF_ERROR(
        DecodeExpected(parsed, SectionKind::kPatternLabels, csr.n, &labels));
    QPGC_RETURN_IF_ERROR(DecodeExpected(parsed, SectionKind::kPatternNodeMap,
                                        original_n, &pattern->node_map));
    if (validate) {
      QPGC_RETURN_IF_ERROR(ValidateNodeMap(pattern->node_map, csr.n,
                                           /*allow_invalid=*/true,
                                           "pattern node map"));
    }
    pattern->gr.AdoptCsr(std::move(csr.offsets), std::move(csr.targets),
                         std::move(labels));
  }
  {
    const SectionEntry* mo_entry = nullptr;
    const SectionEntry* mf_entry = nullptr;
    QPGC_RETURN_IF_ERROR(
        Require(parsed, SectionKind::kMemberOffsets, &mo_entry));
    QPGC_RETURN_IF_ERROR(Require(parsed, SectionKind::kMemberFlat, &mf_entry));
    if (mo_entry->element_count != pattern_blocks + 1) {
      return Status::CorruptData(path + ": member offsets count mismatch");
    }
    Result<OffsetsView> mo_view = MakeOffsetsView(parsed, *mo_entry);
    if (!mo_view.ok()) return mo_view.status();
    if (mo_view.value()[0] != 0 ||
        mo_view.value().back() != mf_entry->element_count) {
      return Status::CorruptData(path + ": member index endpoints mismatch");
    }
    QPGC_RETURN_IF_ERROR(
        DecodeU32Vector(parsed, *mf_entry, &pattern->member_flat));
    if (validate) {
      // Member runs are disjoint ascending node-id runs — the same
      // structural shape as CSR adjacency over the original node universe.
      QPGC_RETURN_IF_ERROR(
          ValidateCsr(mo_view.value(), pattern->member_flat, original_n));
    }
    pattern->member_offsets.resize(mo_view.value().size());
    for (size_t i = 0; i < mo_view.value().size(); ++i) {
      pattern->member_offsets[i] = mo_view.value()[i];
    }
  }
  {
    std::vector<uint32_t> cross_flat;
    const SectionEntry* ce_entry = nullptr;
    QPGC_RETURN_IF_ERROR(Require(parsed, SectionKind::kCrossEdges, &ce_entry));
    if (ce_entry->element_count % 2 != 0) {
      return Status::CorruptData(path + ": odd cross-edge section");
    }
    QPGC_RETURN_IF_ERROR(DecodeU32Vector(parsed, *ce_entry, &cross_flat));
    pattern->cross_edges.resize(cross_flat.size() / 2);
    for (size_t i = 0; i < pattern->cross_edges.size(); ++i) {
      const NodeId block = cross_flat[2 * i];
      const NodeId ghost = cross_flat[2 * i + 1];
      if (validate && (block >= pattern_blocks || ghost >= original_n)) {
        return Status::CorruptData(path + ": cross edge out of range");
      }
      pattern->cross_edges[i] = {block, ghost};
    }
  }

  // --- Boundary tables (sharded artifacts) --------------------------------
  std::shared_ptr<const std::vector<NodeId>> exits;
  std::shared_ptr<const FrozenBoundarySummary> summary;
  if (const SectionEntry* entry = parsed.Find(SectionKind::kBoundaryExits)) {
    auto exits_vec = std::make_shared<std::vector<NodeId>>();
    QPGC_RETURN_IF_ERROR(DecodeU32Vector(parsed, *entry, exits_vec.get()));
    QPGC_RETURN_IF_ERROR(
        ValidateAscending(*exits_vec, original_n, "boundary exits"));
    exits = std::move(exits_vec);
  }
  if (const SectionEntry* entry = parsed.Find(SectionKind::kBoundaryEntries)) {
    auto entries_vec = std::make_shared<std::vector<NodeId>>();
    QPGC_RETURN_IF_ERROR(DecodeU32Vector(parsed, *entry, entries_vec.get()));
    QPGC_RETURN_IF_ERROR(
        ValidateAscending(*entries_vec, original_n, "boundary entries"));
    if (exits == nullptr) {
      return Status::CorruptData(path + ": boundary entries without exits");
    }
    // The summary is deterministic in (reach side, exits, entries) — never
    // stored, always rebuilt, so it cannot drift from the graph it
    // summarizes.
    auto built = std::make_shared<FrozenBoundarySummary>();
    built->Build(reach->gr, reach->node_map, exits,
                 std::shared_ptr<const std::vector<NodeId>>(entries_vec));
    summary = std::move(built);
  }

  // --- Partition ----------------------------------------------------------
  if (const SectionEntry* entry =
          parsed.Find(SectionKind::kPartitionShardOf)) {
    out->has_partition = true;
    out->partition_count = entry->element_count;
    out->partition_checksum = entry->checksum;
    if (want_partition) {
      if (entry->element_count != original_n) {
        return Status::CorruptData(path + ": partition count mismatch");
      }
      QPGC_RETURN_IF_ERROR(DecodeU32Vector(parsed, *entry, &out->shard_of));
      for (const uint32_t s : out->shard_of) {
        if (s >= header.num_shards) {
          return Status::CorruptData(path + ": partition shard out of range");
        }
      }
    }
  }

  auto snap = std::make_shared<ServingSnapshot>();
  snap->Adopt(header.snapshot_version, std::move(reach), std::move(pattern),
              std::move(exits), std::move(summary));
  out->loaded.snapshot = std::move(snap);
  out->loaded.shard = header.shard;
  out->loaded.num_shards = header.num_shards;
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const SectionEntry* ParsedArtifact::Find(SectionKind kind) const {
  for (const SectionEntry& entry : table) {
    if (entry.kind == static_cast<uint32_t>(kind)) return &entry;
  }
  return nullptr;
}

Result<ParsedArtifact> ParseArtifact(std::span<const std::byte> bytes,
                                     bool verify_payload_checksums) {
  ParsedArtifact parsed;
  if (bytes.size() < sizeof(FileHeader)) {
    return Status::CorruptData("artifact shorter than its header");
  }
  std::memcpy(&parsed.header, bytes.data(), sizeof(FileHeader));
  const FileHeader& header = parsed.header;
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::CorruptData("bad magic: not a qpgc snapshot artifact");
  }
  if (header.format_version != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot format version " +
        std::to_string(header.format_version) + " (this reader speaks " +
        std::to_string(kFormatVersion) + ")");
  }
  FileHeader unsigned_header = header;
  unsigned_header.header_checksum = 0;
  if (Fnv1a64({reinterpret_cast<const std::byte*>(&unsigned_header),
               sizeof(unsigned_header)}) != header.header_checksum) {
    return Status::CorruptData("header checksum mismatch");
  }
  if (header.file_bytes != bytes.size()) {
    return Status::CorruptData("file length disagrees with header (truncated?)");
  }
  const uint64_t table_bytes =
      uint64_t{header.section_count} * sizeof(SectionEntry);
  if (sizeof(FileHeader) + table_bytes > bytes.size()) {
    return Status::CorruptData("section table overruns file");
  }
  if (Fnv1a64(bytes.subspan(sizeof(FileHeader), table_bytes)) !=
      header.table_checksum) {
    return Status::CorruptData("section table checksum mismatch");
  }
  parsed.table = {
      reinterpret_cast<const SectionEntry*>(bytes.data() + sizeof(FileHeader)),
      header.section_count};
  parsed.bytes = bytes;
  for (const SectionEntry& entry : parsed.table) {
    if (entry.offset % kSectionAlign != 0) {
      return Status::CorruptData("misaligned section kind " +
                                 std::to_string(entry.kind));
    }
    if (entry.offset < sizeof(FileHeader) + table_bytes ||
        entry.offset > bytes.size() ||
        entry.stored_bytes > bytes.size() - entry.offset) {
      return Status::CorruptData("section kind " + std::to_string(entry.kind) +
                                 " overruns file");
    }
    if (verify_payload_checksums &&
        Fnv1a64(parsed.SectionBytes(entry)) != entry.checksum) {
      return Status::CorruptData("payload checksum mismatch in section kind " +
                                 std::to_string(entry.kind));
    }
  }
  return parsed;
}

Status ValidateCsr(const OffsetsView& offsets, std::span<const NodeId> targets,
                   size_t target_universe) {
  if (offsets.size() == 0) {
    return Status::CorruptData("empty offsets section");
  }
  if (offsets[0] != 0) return Status::CorruptData("offsets do not start at 0");
  uint64_t prev = 0;
  for (size_t u = 1; u < offsets.size(); ++u) {
    const uint64_t cur = offsets[u];
    if (cur < prev || cur > targets.size()) {
      return Status::CorruptData("offsets not monotone within targets");
    }
    for (uint64_t e = prev; e < cur; ++e) {
      if (targets[e] >= target_universe ||
          (e > prev && targets[e] <= targets[e - 1])) {
        return Status::CorruptData("adjacency run not strictly ascending in "
                                   "range");
      }
    }
    prev = cur;
  }
  if (prev != targets.size()) {
    return Status::CorruptData("offsets do not cover the targets section");
  }
  return Status::Ok();
}

Status SaveSnapshot(const ServingSnapshot& snap, const std::string& path,
                    const SaveOptions& options) {
  const std::shared_ptr<const FrozenReachSide> reach = snap.reach_side();
  const std::shared_ptr<const FrozenPatternSide> pattern = snap.pattern_side();
  if (reach == nullptr || pattern == nullptr) {
    return Status::InvalidArgument("cannot save an empty snapshot");
  }
  if (options.num_shards == 0 || options.shard >= options.num_shards) {
    return Status::InvalidArgument("invalid shard stamp");
  }
  if (options.num_shards > 1) {
    if (options.partition == nullptr) {
      return Status::InvalidArgument("sharded save requires a partition");
    }
    if (options.partition->shard_of.size() != snap.original_num_nodes() ||
        options.partition->num_shards != options.num_shards) {
      return Status::InvalidArgument("partition disagrees with snapshot");
    }
  }

  ArtifactWriter writer(options);
  writer.AddOffsets(SectionKind::kReachOutOffsets, reach->gr.out_offsets());
  writer.AddTargets(SectionKind::kReachOutTargets, reach->gr.out_offsets(),
                    reach->gr.out_targets());
  writer.AddOffsets(SectionKind::kReachInOffsets, reach->gr.in_offsets());
  writer.AddTargets(SectionKind::kReachInTargets, reach->gr.in_offsets(),
                    reach->gr.in_targets());
  writer.AddLabels(SectionKind::kReachLabels, reach->gr.labels());
  writer.AddRawU32(SectionKind::kReachNodeMap, reach->node_map);

  writer.AddOffsets(SectionKind::kPatternOutOffsets,
                    pattern->gr.out_offsets());
  writer.AddTargets(SectionKind::kPatternOutTargets, pattern->gr.out_offsets(),
                    pattern->gr.out_targets());
  writer.AddOffsets(SectionKind::kPatternInOffsets, pattern->gr.in_offsets());
  writer.AddTargets(SectionKind::kPatternInTargets, pattern->gr.in_offsets(),
                    pattern->gr.in_targets());
  writer.AddLabels(SectionKind::kPatternLabels, pattern->gr.labels());
  writer.AddRawU32(SectionKind::kPatternNodeMap, pattern->node_map);
  writer.AddOffsets(SectionKind::kMemberOffsets, pattern->member_offsets);
  writer.AddRawU32(SectionKind::kMemberFlat, pattern->member_flat);
  std::vector<uint32_t> cross_flat;
  cross_flat.reserve(2 * pattern->cross_edges.size());
  for (const auto& [block, ghost] : pattern->cross_edges) {
    cross_flat.push_back(block);
    cross_flat.push_back(ghost);
  }
  writer.AddRawU32(SectionKind::kCrossEdges, cross_flat);

  if (snap.boundary_exits_ptr() != nullptr) {
    writer.AddRawU32(SectionKind::kBoundaryExits, *snap.boundary_exits_ptr());
  }
  if (snap.boundary_summary() != nullptr) {
    // Entries only; the summary body is rebuilt at load (deterministic in
    // the reach side plus the boundary sets).
    writer.AddRawU32(SectionKind::kBoundaryEntries,
                     *snap.boundary_summary()->entries_ptr());
  }
  if (options.num_shards > 1) {
    writer.AddRawU32(SectionKind::kPartitionShardOf,
                     options.partition->shard_of);
  }

  return writer.WriteTo(path, snap.version(), snap.original_num_nodes());
}

Result<LoadedSnapshot> LoadServingSnapshot(const std::string& path,
                                           const LoadOptions& options) {
  ArtifactData data;
  const Status status =
      LoadArtifact(path, options, /*want_partition=*/false, &data);
  if (!status.ok()) return status;
  return std::move(data.loaded);
}

Result<LoadedShardSet> LoadShardSet(const std::vector<std::string>& paths,
                                    const LoadOptions& options) {
  if (paths.empty()) {
    return Status::InvalidArgument("no shard artifacts given");
  }
  LoadedShardSet set;
  uint32_t num_shards = 0;
  size_t original_n = 0;
  uint64_t partition_checksum = 0;
  std::vector<uint32_t> shard_of;
  for (size_t i = 0; i < paths.size(); ++i) {
    ArtifactData data;
    const Status status =
        LoadArtifact(paths[i], options, /*want_partition=*/i == 0, &data);
    if (!status.ok()) return status;
    if (i == 0) {
      num_shards = data.loaded.num_shards;
      original_n = data.loaded.snapshot->original_num_nodes();
      if (paths.size() != num_shards) {
        return Status::InvalidArgument(
            "artifact set declares " + std::to_string(num_shards) +
            " shards but " + std::to_string(paths.size()) +
            " files were given");
      }
      set.snapshots.assign(num_shards, nullptr);
      if (num_shards > 1) {
        if (!data.has_partition) {
          return Status::CorruptData(paths[i] + ": missing partition section");
        }
        shard_of = std::move(data.shard_of);
        partition_checksum = data.partition_checksum;
      }
    } else {
      if (data.loaded.num_shards != num_shards ||
          data.loaded.snapshot->original_num_nodes() != original_n) {
        return Status::InvalidArgument(paths[i] +
                                       ": inconsistent with the shard set");
      }
      // The partition sections must be byte-identical across the set; the
      // table checksums compare them without a second O(|V|) decode.
      if (!data.has_partition || data.partition_count != original_n ||
          data.partition_checksum != partition_checksum) {
        return Status::InvalidArgument(paths[i] +
                                       ": partition disagrees with the set");
      }
    }
    const uint32_t shard = data.loaded.shard;
    if (set.snapshots[shard] != nullptr) {
      return Status::InvalidArgument(paths[i] + ": duplicate shard " +
                                     std::to_string(shard));
    }
    set.snapshots[shard] = std::move(data.loaded.snapshot);
  }
  auto partition = std::make_shared<ShardPartition>();
  partition->num_shards = num_shards;
  partition->shard_of = num_shards > 1 ? std::move(shard_of)
                                       : std::vector<uint32_t>(original_n, 0);
  set.partition = std::move(partition);
  return set;
}

Result<ReconstructedArtifacts> ReconstructArtifacts(
    const Graph& g, const ServingSnapshot& snap) {
  if (snap.reach_side() == nullptr || snap.pattern_side() == nullptr) {
    return Status::InvalidArgument("cannot adopt an empty snapshot");
  }
  if (!snap.boundary_exits().empty() || snap.boundary_summary() != nullptr ||
      !snap.pattern_cross_edges().empty()) {
    return Status::InvalidArgument(
        "adoption requires an unsharded snapshot (per-shard artifacts route "
        "through LoadShardSet + PinnedShards instead)");
  }
  const size_t n = g.num_nodes();
  if (snap.original_num_nodes() != n) {
    return Status::InvalidArgument("graph/snapshot node count mismatch");
  }

  ReconstructedArtifacts out;
  ReachCompression& rc = out.rc;
  const CsrGraph& reach_gr = snap.reach_gr();
  const std::vector<NodeId>& reach_map = snap.reach_map();
  const size_t nc = reach_gr.num_nodes();
  rc.original_num_nodes = n;
  rc.original_size = g.size();
  rc.node_map = reach_map;
  rc.members.assign(nc, {});
  for (NodeId v = 0; v < n; ++v) {
    if (reach_map[v] >= nc) {
      return Status::InvalidArgument("reach node map out of range");
    }
    rc.members[reach_map[v]].push_back(v);
  }
  for (NodeId c = 0; c < nc; ++c) {
    if (rc.members[c].empty()) {
      return Status::InvalidArgument("empty reach class in snapshot");
    }
  }
  {
    GraphBuilder builder(nc);
    reach_gr.ForEachEdge([&](NodeId u, NodeId v) { builder.AddEdge(u, v); });
    rc.gr = builder.Build();
  }
  rc.cyclic.assign(nc, 0);
  for (NodeId c = 0; c < nc; ++c) {
    rc.cyclic[c] = rc.gr.HasEdge(c, c) ? 1 : 0;
  }
  // The frozen side carries only the *reduced* quotient; IncRCM additionally
  // needs the edge-faithful unreduced quotient (reach/compress_r.h — frozen
  // classes contribute their direct edges to the hybrid graph, which the
  // reduction may have dropped). Rebuild it from the original graph, exactly
  // mirroring CompressR's construction.
  {
    GraphBuilder builder(nc);
    for (NodeId c = 0; c < nc; ++c) {
      if (rc.cyclic[c]) builder.AddEdge(c, c);
    }
    bool acyclic_intra_edge = false;
    g.ForEachEdge([&](NodeId u, NodeId v) {
      const NodeId cu = reach_map[u];
      const NodeId cv = reach_map[v];
      if (cu != cv) {
        builder.AddEdge(cu, cv);
      } else if (!rc.cyclic[cu]) {
        acyclic_intra_edge = true;
      }
    });
    if (acyclic_intra_edge) {
      return Status::InvalidArgument(
          "intra-class edge in an acyclic class: snapshot was not built from "
          "this graph");
    }
    rc.quotient = builder.Build();
  }
  rc.ranks = DagTopoRanks(rc.gr);

  PatternCompression& pc = out.pc;
  const CsrGraph& pattern_gr = snap.pattern_gr();
  const std::vector<NodeId>& pattern_map = snap.pattern_map();
  const size_t np = pattern_gr.num_nodes();
  pc.original_num_nodes = n;
  pc.original_size = g.size();
  pc.node_map = pattern_map;
  for (NodeId v = 0; v < n; ++v) {
    if (pattern_map[v] >= np) {
      return Status::InvalidArgument(
          pattern_map[v] == kInvalidNode
              ? "ghost node in an unsharded snapshot"
              : "pattern node map out of range");
    }
    if (pattern_gr.label(pattern_map[v]) != g.label(v)) {
      return Status::InvalidArgument(
          "label mismatch: snapshot was not built from this graph");
    }
  }
  pc.members.assign(np, {});
  for (NodeId c = 0; c < np; ++c) {
    const std::span<const NodeId> members = snap.pattern_block_members(c);
    if (members.empty()) {
      return Status::InvalidArgument("empty pattern block in snapshot");
    }
    pc.members[c].assign(members.begin(), members.end());
  }
  {
    GraphBuilder builder(np);
    for (NodeId c = 0; c < np; ++c) {
      builder.SetLabel(c, pattern_gr.label(c));
    }
    pattern_gr.ForEachEdge([&](NodeId u, NodeId v) { builder.AddEdge(u, v); });
    pc.gr = builder.Build();
  }
  return out;
}

#undef QPGC_RETURN_IF_ERROR

}  // namespace qpgc::storage
