// Copyright 2026 The QPGC Authors.

#include "storage/mmap_snapshot.h"

#include <utility>

#include "core/pattern_scheme.h"

namespace qpgc::storage {
namespace {

#define QPGC_RETURN_IF_ERROR(expr)        \
  do {                                    \
    const Status _status = (expr);        \
    if (!_status.ok()) return _status;    \
  } while (0)

std::string KindStr(SectionKind kind) {
  return std::to_string(static_cast<uint32_t>(kind));
}

Status Require(const ParsedArtifact& parsed, SectionKind kind,
               const SectionEntry** out) {
  *out = parsed.Find(kind);
  if (*out == nullptr) {
    return Status::CorruptData("missing section kind " + KindStr(kind));
  }
  return Status::Ok();
}

// A u32 section as an in-place span; sections that cannot be viewed in
// place (kConstU32) are materialized into `decoded`, whose inner buffers
// are address-stable.
Status GetU32Span(const ParsedArtifact& parsed, const SectionEntry& entry,
                  std::vector<std::vector<NodeId>>* decoded,
                  std::span<const NodeId>* out) {
  Result<U32View> view = U32View::Make(
      static_cast<SectionEncoding>(entry.encoding), parsed.SectionBytes(entry),
      entry.element_count);
  if (!view.ok()) return view.status();
  if (view.value().is_const()) {
    decoded->emplace_back(view.value().size(), view.value().constant());
    *out = decoded->back();
  } else {
    *out = view.value().raw_span();
  }
  return Status::Ok();
}

}  // namespace

// Friend of MmapCsrGraph: wires its private views from parsed sections.
struct MmapWire {
  static Status Direction(const ParsedArtifact& parsed,
                          SectionKind offsets_kind, SectionKind targets_kind,
                          bool validate,
                          std::vector<std::vector<NodeId>>* decoded,
                          OffsetsView* offsets,
                          std::span<const NodeId>* targets, size_t* n);
  static Status Graph(const ParsedArtifact& parsed,
                      SectionKind out_offsets_kind,
                      SectionKind out_targets_kind,
                      SectionKind in_offsets_kind, SectionKind in_targets_kind,
                      SectionKind labels_kind, bool validate,
                      std::vector<std::vector<NodeId>>* decoded,
                      MmapCsrGraph* gr);
};

// Wires one CSR direction: offsets stay encoded behind the O(1) OffsetsView;
// targets are served in place when raw, decoded to heap when kVarint.
Status MmapWire::Direction(const ParsedArtifact& parsed,
                           SectionKind offsets_kind, SectionKind targets_kind,
                           bool validate,
                           std::vector<std::vector<NodeId>>* decoded,
                           OffsetsView* offsets,
                           std::span<const NodeId>* targets, size_t* n) {
  const SectionEntry* off_entry = nullptr;
  const SectionEntry* tgt_entry = nullptr;
  QPGC_RETURN_IF_ERROR(Require(parsed, offsets_kind, &off_entry));
  QPGC_RETURN_IF_ERROR(Require(parsed, targets_kind, &tgt_entry));
  Result<OffsetsView> view = OffsetsView::Make(
      static_cast<SectionEncoding>(off_entry->encoding),
      parsed.SectionBytes(*off_entry), off_entry->element_count);
  if (!view.ok()) return view.status();
  *offsets = view.value();
  if (offsets->size() == 0) {
    return Status::CorruptData("empty offsets section kind " +
                               KindStr(offsets_kind));
  }
  *n = offsets->size() - 1;
  // O(1) endpoint invariants always hold before anything is served — the
  // subspan arithmetic in MmapCsrGraph must never leave the section.
  if ((*offsets)[0] != 0 || offsets->back() != tgt_entry->element_count) {
    return Status::CorruptData("offsets endpoints disagree with targets, "
                               "kind " + KindStr(offsets_kind));
  }
  if (static_cast<SectionEncoding>(tgt_entry->encoding) ==
      SectionEncoding::kVarint) {
    std::vector<NodeId> heap;
    QPGC_RETURN_IF_ERROR(DecodeVarintTargets(
        parsed.SectionBytes(*tgt_entry), *offsets, tgt_entry->element_count,
        static_cast<NodeId>(*n), &heap));
    decoded->push_back(std::move(heap));
    *targets = decoded->back();
  } else {
    QPGC_RETURN_IF_ERROR(GetU32Span(parsed, *tgt_entry, decoded, targets));
  }
  if (validate) {
    QPGC_RETURN_IF_ERROR(ValidateCsr(*offsets, *targets, *n));
  }
  // Even without full validation, every offset must stay inside the targets
  // section or OutNeighbors could hand out an out-of-bounds span. The
  // monotone scan is O(n) over the offsets only — it does not fault the
  // (much larger) target pages in.
  if (!validate) {
    uint64_t prev = 0;
    for (size_t u = 1; u <= *n; ++u) {
      const uint64_t cur = (*offsets)[u];
      if (cur < prev || cur > targets->size()) {
        return Status::CorruptData("offsets not monotone, kind " +
                                   KindStr(offsets_kind));
      }
      prev = cur;
    }
  }
  return Status::Ok();
}

Status MmapWire::Graph(const ParsedArtifact& parsed,
                       SectionKind out_offsets_kind,
                       SectionKind out_targets_kind,
                       SectionKind in_offsets_kind, SectionKind in_targets_kind,
                       SectionKind labels_kind, bool validate,
                       std::vector<std::vector<NodeId>>* decoded,
                       MmapCsrGraph* gr) {
  size_t out_n = 0;
  size_t in_n = 0;
  QPGC_RETURN_IF_ERROR(Direction(parsed, out_offsets_kind, out_targets_kind,
                                 validate, decoded, &gr->out_offsets_,
                                 &gr->out_targets_, &out_n));
  QPGC_RETURN_IF_ERROR(Direction(parsed, in_offsets_kind, in_targets_kind,
                                 validate, decoded, &gr->in_offsets_,
                                 &gr->in_targets_, &in_n));
  if (in_n != out_n || gr->in_targets_.size() != gr->out_targets_.size()) {
    return Status::CorruptData("in/out CSR directions disagree, kind " +
                               KindStr(out_offsets_kind));
  }
  const SectionEntry* labels_entry = nullptr;
  QPGC_RETURN_IF_ERROR(Require(parsed, labels_kind, &labels_entry));
  if (labels_entry->element_count != out_n) {
    return Status::CorruptData("labels count disagrees with node count, "
                               "kind " + KindStr(labels_kind));
  }
  Result<U32View> labels = U32View::Make(
      static_cast<SectionEncoding>(labels_entry->encoding),
      parsed.SectionBytes(*labels_entry), labels_entry->element_count);
  if (!labels.ok()) return labels.status();
  gr->labels_ = labels.value();
  gr->n_ = out_n;
  gr->m_ = gr->out_targets_.size();
  return Status::Ok();
}

namespace {

Status ValidateMapSpan(std::span<const NodeId> map, size_t num_blocks,
                       bool allow_invalid, const char* what) {
  for (const NodeId b : map) {
    if (b >= num_blocks && !(allow_invalid && b == kInvalidNode)) {
      return Status::CorruptData(std::string(what) + " out of range");
    }
  }
  return Status::Ok();
}

}  // namespace

Result<MmapSnapshot> MmapSnapshot::Open(const std::string& path,
                                        const LoadOptions& options) {
  Result<MmapFile> file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  MmapSnapshot snap;
  snap.file_ = std::move(file.value());
  Result<ParsedArtifact> parse =
      ParseArtifact(snap.file_.bytes(), options.verify_checksums);
  if (!parse.ok()) {
    return Status(parse.status().code(),
                  path + ": " + parse.status().message());
  }
  const ParsedArtifact& parsed = parse.value();
  snap.header_ = parsed.header;
  if (snap.header_.num_shards == 0 ||
      snap.header_.shard >= snap.header_.num_shards) {
    return Status::CorruptData(path + ": invalid shard stamp");
  }
  const bool validate = options.validate_structure;
  const uint64_t original_n = snap.header_.original_num_nodes;

  QPGC_RETURN_IF_ERROR(MmapWire::Graph(
      parsed, SectionKind::kReachOutOffsets, SectionKind::kReachOutTargets,
      SectionKind::kReachInOffsets, SectionKind::kReachInTargets,
      SectionKind::kReachLabels, validate, &snap.decoded_, &snap.reach_gr_));
  QPGC_RETURN_IF_ERROR(MmapWire::Graph(
      parsed, SectionKind::kPatternOutOffsets, SectionKind::kPatternOutTargets,
      SectionKind::kPatternInOffsets, SectionKind::kPatternInTargets,
      SectionKind::kPatternLabels, validate, &snap.decoded_,
      &snap.pattern_gr_));

  const SectionEntry* entry = nullptr;
  QPGC_RETURN_IF_ERROR(Require(parsed, SectionKind::kReachNodeMap, &entry));
  if (entry->element_count != original_n) {
    return Status::CorruptData(path + ": reach node map count mismatch");
  }
  QPGC_RETURN_IF_ERROR(
      GetU32Span(parsed, *entry, &snap.decoded_, &snap.reach_map_));
  if (validate) {
    QPGC_RETURN_IF_ERROR(ValidateMapSpan(snap.reach_map_,
                                         snap.reach_gr_.num_nodes(),
                                         /*allow_invalid=*/false,
                                         "reach node map"));
  }

  QPGC_RETURN_IF_ERROR(Require(parsed, SectionKind::kPatternNodeMap, &entry));
  if (entry->element_count != original_n) {
    return Status::CorruptData(path + ": pattern node map count mismatch");
  }
  QPGC_RETURN_IF_ERROR(
      GetU32Span(parsed, *entry, &snap.decoded_, &snap.pattern_map_));
  if (validate) {
    QPGC_RETURN_IF_ERROR(ValidateMapSpan(snap.pattern_map_,
                                         snap.pattern_gr_.num_nodes(),
                                         /*allow_invalid=*/true,
                                         "pattern node map"));
  }

  const SectionEntry* mo_entry = nullptr;
  const SectionEntry* mf_entry = nullptr;
  QPGC_RETURN_IF_ERROR(
      Require(parsed, SectionKind::kMemberOffsets, &mo_entry));
  QPGC_RETURN_IF_ERROR(Require(parsed, SectionKind::kMemberFlat, &mf_entry));
  if (mo_entry->element_count != snap.pattern_gr_.num_nodes() + 1) {
    return Status::CorruptData(path + ": member offsets count mismatch");
  }
  Result<OffsetsView> mo_view = OffsetsView::Make(
      static_cast<SectionEncoding>(mo_entry->encoding),
      parsed.SectionBytes(*mo_entry), mo_entry->element_count);
  if (!mo_view.ok()) return mo_view.status();
  snap.member_offsets_ = mo_view.value();
  if (snap.member_offsets_[0] != 0 ||
      snap.member_offsets_.back() != mf_entry->element_count) {
    return Status::CorruptData(path + ": member index endpoints mismatch");
  }
  QPGC_RETURN_IF_ERROR(
      GetU32Span(parsed, *mf_entry, &snap.decoded_, &snap.member_flat_));
  if (validate) {
    QPGC_RETURN_IF_ERROR(
        ValidateCsr(snap.member_offsets_, snap.member_flat_, original_n));
  } else {
    uint64_t prev = 0;
    for (size_t c = 1; c < snap.member_offsets_.size(); ++c) {
      const uint64_t cur = snap.member_offsets_[c];
      if (cur < prev || cur > snap.member_flat_.size()) {
        return Status::CorruptData(path + ": member offsets not monotone");
      }
      prev = cur;
    }
  }

  if (const SectionEntry* exits_entry =
          parsed.Find(SectionKind::kBoundaryExits)) {
    QPGC_RETURN_IF_ERROR(GetU32Span(parsed, *exits_entry, &snap.decoded_,
                                    &snap.boundary_exits_));
  }

  return snap;
}

MatchResult MmapSnapshot::Match(const PatternQuery& q) const {
  return ExpandMatchWith(
      member_offsets_.size() - 1, pattern_map_,
      [this](NodeId block) { return pattern_block_members(block); },
      qpgc::Match(pattern_gr_, q));
}

bool MmapSnapshot::BooleanMatch(const PatternQuery& q) const {
  return qpgc::BooleanMatch(pattern_gr_, q);
}

size_t MmapSnapshot::DecodedHeapBytes() const {
  size_t bytes = 0;
  for (const std::vector<NodeId>& v : decoded_) {
    bytes += v.capacity() * sizeof(NodeId);
  }
  return bytes;
}

#undef QPGC_RETURN_IF_ERROR

}  // namespace qpgc::storage
