// Copyright 2026 The QPGC Authors.
//
// Section codecs for the snapshot artifact format (storage/format.h): how a
// CSR offset array or an adjacency/target array turns into stored bytes and
// back. Two regimes:
//
//   * Offset encodings (kRaw64 / kRaw32 / kDelta16) stay O(1)-addressable in
//     place — OffsetsView reads any element straight off the mapping, which
//     is what lets MmapCsrGraph serve without materializing the index.
//   * kVarint target runs are smaller still but sequential-only; readers
//     decode them to a heap array once at open (the cold-shard trade-off).
//
// Encoders are infallible (the writer owns its inputs); decoders return
// Status because they face untrusted bytes — every size and range is checked
// before a span is handed to serving code.

#ifndef QPGC_STORAGE_CODEC_H_
#define QPGC_STORAGE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "storage/format.h"
#include "util/common.h"
#include "util/lifetime_annotations.h"
#include "util/status.h"

namespace qpgc::storage {

/// One encoded section payload, ready to be written behind a SectionEntry.
struct EncodedSection {
  SectionEncoding encoding = SectionEncoding::kRaw64;
  uint64_t element_count = 0;
  std::vector<std::byte> bytes;
};

/// The tightest offset encoding `offsets` admits: kDelta16 when every
/// element's distance from its covering anchor fits 16 bits, else kRaw32
/// when the last offset fits 32 bits, else kRaw64.
SectionEncoding ChooseOffsetEncoding(std::span<const uint64_t> offsets);

/// Encodes a monotone CSR offset array with `enc` (must be admissible —
/// QPGC_CHECKed; pick with ChooseOffsetEncoding or pass kRaw64).
EncodedSection EncodeOffsets(std::span<const uint64_t> offsets,
                             SectionEncoding enc);

/// O(1) random access over an encoded offsets section, in place. A view:
/// valid only while the underlying bytes (the mapping) live.
class QPGC_GSL_POINTER OffsetsView {
 public:
  OffsetsView() = default;

  /// Validates sizes and wraps `bytes`; rejects unknown encodings and
  /// length mismatches with CorruptData.
  static Result<OffsetsView> Make(SectionEncoding enc,
                                  std::span<const std::byte> bytes
                                      QPGC_LIFETIME_BOUND,
                                  size_t element_count);

  size_t size() const { return count_; }

  uint64_t operator[](size_t i) const {
    QPGC_DCHECK(i < count_);
    switch (enc_) {
      case SectionEncoding::kRaw64:
        return raw64_[i];
      case SectionEncoding::kRaw32:
        return raw32_[i];
      default:  // kDelta16
        return anchors_[i / kDeltaBlock] + deltas_[i];
    }
  }

  uint64_t back() const { return (*this)[count_ - 1]; }

 private:
  SectionEncoding enc_ = SectionEncoding::kRaw64;
  const uint64_t* raw64_ = nullptr;
  const uint32_t* raw32_ = nullptr;
  const uint64_t* anchors_ = nullptr;
  const uint16_t* deltas_ = nullptr;
  size_t count_ = 0;
};

/// Encodes a u32 array as kConstU32 when all elements are equal (and the
/// array is non-empty), else kRaw32.
EncodedSection EncodeU32(std::span<const uint32_t> values);

/// In-place view over a kRaw32 / kConstU32 u32 section. For kRaw32 the view
/// aliases the mapping; for kConstU32 it replicates the stored constant on
/// demand.
class QPGC_GSL_POINTER U32View {
 public:
  U32View() = default;

  static Result<U32View> Make(SectionEncoding enc,
                              std::span<const std::byte> bytes
                                  QPGC_LIFETIME_BOUND,
                              size_t element_count);

  size_t size() const { return count_; }
  bool is_const() const { return data_ == nullptr; }
  uint32_t constant() const { return constant_; }

  /// The backing span; only valid for kRaw32 views (is_const() == false).
  std::span<const uint32_t> raw_span() const {
    QPGC_DCHECK(data_ != nullptr);
    return {data_, count_};
  }

  uint32_t operator[](size_t i) const {
    QPGC_DCHECK(i < count_);
    return data_ == nullptr ? constant_ : data_[i];
  }

 private:
  const uint32_t* data_ = nullptr;  // nullptr => constant array
  uint32_t constant_ = 0;
  size_t count_ = 0;
};

/// Encodes adjacency target runs (run r = targets[offsets[r]..offsets[r+1]),
/// each strictly ascending) as kVarint: first element absolute, then gaps.
EncodedSection EncodeVarintTargets(std::span<const uint64_t> offsets,
                                   std::span<const NodeId> targets);

/// Decodes a kVarint targets section into `out` (resized to
/// `element_count`). Runs are delimited by `offsets`; every decoded id is
/// range-checked against `num_nodes` and runs are checked strictly
/// ascending, so the result is safe to AdoptCsr.
Status DecodeVarintTargets(std::span<const std::byte> bytes,
                           const OffsetsView& offsets, size_t element_count,
                           NodeId num_nodes, std::vector<NodeId>* out);

}  // namespace qpgc::storage

#endif  // QPGC_STORAGE_CODEC_H_
