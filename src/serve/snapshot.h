// Copyright 2026 The QPGC Authors.
//
// ServingSnapshot: one immutable, versioned serving artifact. It bundles
// everything the read path needs to answer the paper's two query classes —
// the frozen CSR layout of the reachability quotient Gr plus its node map
// (Section 3: F rewrites, then a stock algorithm runs on Gr), and the frozen
// bisimulation quotient plus node map and member index (Section 4: F is the
// identity, P expands blocks) — under a single version id.
//
// A snapshot is a thin shell over two independently shareable *sides*
// (FrozenReachSide / FrozenPatternSide). Consecutive versions that only
// moved one artifact share the untouched side's frozen arrays by pointer:
// a reach-only update stream refreezes the reach side per publish while
// every version keeps pointing at the same frozen pattern side (and vice
// versa). Sharing is transparent to readers — the shell is immutable either
// way — and is what makes per-artifact publish cost track which dirty cone
// actually moved (serve/snapshot_manager.h decides, from the accumulated
// per-side incremental stats).
//
// Sharded serving additionally stamps each per-shard snapshot with its
// *boundary-exit table* — the ghost nodes (non-owned nodes, see
// graph/shard_view.h) that have in-edges inside this shard, i.e. the nodes
// where a path can leave the shard — and its *boundary summary*
// (serve/boundary_summary.h): the precomputed entry-to-exit reachability
// slice of the reach quotient that the router's boundary-graph search
// walks instead of sweeping whole quotients per query. Freezing both into
// the snapshot keeps them consistent with the frozen graph version by
// construction; docs/SHARDING.md has the full soundness story.
//
// Thread-safety contract:
//  * Writer side (Freeze / Adopt / Reset): exactly one thread, and only on
//    a snapshot no reader can observe (the manager freezes into inactive
//    buffers; see serve/snapshot_manager.h).
//  * Read side (everything const): any number of threads, lock-free — all
//    state is immutable once published. Readers pin a snapshot with a
//    shared_ptr for the duration of a query; the snapshot (and its shared
//    sides) stay valid for as long as any handle lives, across any number
//    of later publishes and even past the owning manager's destruction.
//
// Lifetime contract: every span/reference accessor below hands out a view
// into this snapshot's frozen sides, valid only while a pin on the snapshot
// is held (the pin-scope rule, docs/LIFETIMES.md). The accessors are
// lifetimebound-annotated and tools/qpgc_pin_escape.py rejects the escape
// shapes the annotations cannot see (dereferencing an unnamed pin, storing
// a snapshot-derived view in a member).

#ifndef QPGC_SERVE_SNAPSHOT_H_
#define QPGC_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/pattern_scheme.h"
#include "graph/csr.h"
#include "pattern/match.h"
#include "pattern/pattern.h"
#include "reach/compress_r.h"
#include "reach/queries.h"
#include "serve/boundary_summary.h"
#include "util/lifetime_annotations.h"

namespace qpgc {

/// The frozen reachability artifact: CSR quotient Gr plus the node map
/// R(v). Fill() reuses the destination arrays' capacity (CsrGraph::Refreeze
/// + vector assign), so steady-state refreezing allocates ~nothing.
struct FrozenReachSide {
  CsrGraph gr;
  std::vector<NodeId> node_map;

  /// Writer-side fill from the maintained artifact.
  void Fill(const ReachCompression& rc);
  /// Heap bytes held by this side.
  size_t MemoryBytes() const;
};

/// The frozen pattern artifact, in *compact* form: ghost singleton blocks
/// (sharded serving's non-owned nodes, recognizable by their synthetic
/// labels — graph/shard_view.h) are dropped at freeze time, because they
/// are fully determined by their sole member: no out-edges, a label no
/// pattern can carry. What remains is
///  * `gr` — the CSR quotient restricted to the owned blocks, renumbered
///    densely (for an unsharded manager this is the whole quotient),
///  * `node_map` — original node -> compact block; ghost nodes map to
///    kInvalidNode,
///  * the member index, flattened CSR-style (offsets + one contiguous id
///    array — freezing it is two bulk copies instead of one small copy per
///    block),
///  * `cross_edges` — the quotient edges that pointed into ghost blocks,
///    as (compact owned block, ghost node id) pairs; the router's stitched
///    quotient resolves them to the ghost's home-shard block.
/// Dropping the ghosts is what keeps per-shard freeze cost proportional to
/// the shard's own compressed size instead of the global node count.
/// Precondition (checked loudly in Fill): every label in the ghost range
/// must be a genuine per-node ghost label — i.e. served graphs carry real
/// labels below kGhostLabelBase (graph/shard_view.h's LabelsShardable).
struct FrozenPatternSide {
  CsrGraph gr;
  std::vector<NodeId> node_map;
  std::vector<uint64_t> member_offsets;  // num owned blocks + 1 entries
  std::vector<NodeId> member_flat;       // owned nodes, grouped by block
  std::vector<std::pair<NodeId, NodeId>> cross_edges;

  /// Members of compact block c, ascending.
  std::span<const NodeId> block_members(NodeId c) const QPGC_LIFETIME_BOUND {
    return {member_flat.data() + member_offsets[c],
            member_flat.data() + member_offsets[c + 1]};
  }

  /// Writer-side fill from the maintained artifact.
  void Fill(const PatternCompression& pc);
  /// Heap bytes held by this side.
  size_t MemoryBytes() const;
};

/// An immutable, versioned pair of frozen compressed graphs plus the
/// quotient metadata needed to answer rewritten queries (see file comment
/// for the sharing and thread-safety contracts).
class ServingSnapshot {
 public:
  /// An empty snapshot (version 0, no sides); a buffer to Freeze() into.
  ServingSnapshot() = default;

  // --- Writer side ----------------------------------------------------------

  /// Fills this snapshot from the mutable compressed state into freshly
  /// allocated sides (the standalone convenience path; the manager's
  /// publish path recycles pooled side buffers via Fill + Adopt instead).
  /// Must not be called on a published snapshot.
  void Freeze(uint64_t version, const ReachCompression& rc,
              const PatternCompression& pc);

  /// Assembles this snapshot from externally frozen (possibly shared)
  /// sides. This is the manager's publish path: sides the update stream
  /// left untouched are passed through from the previous version.
  /// `boundary_exits` must be sorted ascending (null or empty for
  /// unsharded serving); it is shared by pointer — consecutive versions
  /// whose exit membership did not change reuse one immutable vector.
  /// `boundary_summary` (null for unsharded serving) must have been built
  /// from the same reach side and exit table; the manager reuses the
  /// previous version's summary when all three inputs carried over.
  void Adopt(uint64_t version, std::shared_ptr<const FrozenReachSide> reach,
             std::shared_ptr<const FrozenPatternSide> pattern,
             std::shared_ptr<const std::vector<NodeId>> boundary_exits,
             std::shared_ptr<const FrozenBoundarySummary> boundary_summary =
                 nullptr);

  /// Drops this snapshot's side references (releasing any sharing) and
  /// resets it to the empty state. Called when a retired shell returns to
  /// the manager's buffer pool, so a pooled shell never prolongs a side's
  /// lifetime.
  void Reset();

  // --- Read side (thread-safe: touches only immutable state) ---------------

  uint64_t version() const { return version_; }
  /// |V| of the original graph this version was compressed from.
  size_t original_num_nodes() const {
    return reach_ == nullptr ? 0 : reach_->node_map.size();
  }

  /// QR(u, v) on the original node ids: rewrite through the reach node map,
  /// then run the stock algorithm on the frozen quotient (Theorem 2).
  bool Reach(NodeId u, NodeId v, PathMode mode = PathMode::kReflexive,
             ReachAlgorithm algo = ReachAlgorithm::kBfs) const;

  /// Multi-source, multi-target reachability under *non-empty* path
  /// semantics: reached[i] = 1 iff some source has a path of length >= 1 to
  /// targets[i]. One BFS over the frozen quotient regardless of the number
  /// of sources and targets — the router's boundary-crossing search uses
  /// this to resolve a whole frontier wave against a shard in one sweep.
  /// Scratch space is thread-local; any number of threads may call
  /// concurrently.
  void ReachManyNonEmpty(std::span<const NodeId> sources,
                         std::span<const NodeId> targets,
                         std::vector<char>& reached) const;

  /// One router wave against this shard: resolves, for every entry in
  /// `sources`, whether `target` is reachable (return value) and which of
  /// this snapshot's boundary_exits() are — appended to `reached_exits` as
  /// *indexes into boundary_exits()*, in discovery order, each at most once
  /// (the vector is cleared first) — all by non-empty paths, in one sweep.
  /// Emitting indexes off the visited-block queue beats a stamp probe per
  /// exit: most visited blocks carry no exits at all. Thread-safe like
  /// ReachManyNonEmpty.
  bool ResolveWave(std::span<const NodeId> sources, NodeId target,
                   std::vector<NodeId>& reached_exits) const;

  /// The return-value half of ResolveWave alone, with sources given as
  /// quotient block ids (reach_map() images): true iff some source block
  /// reaches `target` by a non-empty path. The router's final case-3 sweep
  /// uses this — its route tables carry each entry's block, and the sweep
  /// needs no exit mask.
  bool ResolveTargetBlocks(std::span<const NodeId> source_blocks,
                           NodeId target) const;

  /// The maximum match of q, expanded back to original node ids (F = id,
  /// Match on the frozen quotient, then P; Theorem 4).
  MatchResult Match(const PatternQuery& q) const;

  /// Boolean pattern query — evaluated on the frozen quotient, no P needed.
  bool BooleanMatch(const PatternQuery& q) const;

  /// The frozen reachability quotient (for stats / direct sweeps). Like
  /// every accessor below, only valid on a frozen/adopted snapshot (never
  /// on the default-constructed buffer state), and — the pin-scope rule —
  /// only while a pin on this snapshot is held.
  const CsrGraph& reach_gr() const QPGC_LIFETIME_BOUND {
    QPGC_DCHECK(reach_ != nullptr);
    return reach_->gr;
  }
  /// The reach node map R(v): original node -> reach-quotient block (what
  /// the answer cache canonicalizes reach keys through).
  const std::vector<NodeId>& reach_map() const QPGC_LIFETIME_BOUND {
    QPGC_DCHECK(reach_ != nullptr);
    return reach_->node_map;
  }
  /// The frozen bisimulation quotient (owned blocks only — see
  /// FrozenPatternSide).
  const CsrGraph& pattern_gr() const QPGC_LIFETIME_BOUND {
    QPGC_DCHECK(pattern_ != nullptr);
    return pattern_->gr;
  }
  /// Block map, member index, and ghost-directed cross edges of the frozen
  /// bisimulation quotient (what the router's stitched cross-shard quotient
  /// is built from). pattern_map() maps ghost nodes to kInvalidNode.
  const std::vector<NodeId>& pattern_map() const QPGC_LIFETIME_BOUND {
    QPGC_DCHECK(pattern_ != nullptr);
    return pattern_->node_map;
  }
  std::span<const NodeId> pattern_block_members(NodeId block) const
      QPGC_LIFETIME_BOUND {
    QPGC_DCHECK(pattern_ != nullptr);
    return pattern_->block_members(block);
  }
  const std::vector<std::pair<NodeId, NodeId>>& pattern_cross_edges() const
      QPGC_LIFETIME_BOUND {
    QPGC_DCHECK(pattern_ != nullptr);
    return pattern_->cross_edges;
  }

  /// Shared handles to the sides (the manager passes an untouched side
  /// through to the next version).
  std::shared_ptr<const FrozenReachSide> reach_side() const { return reach_; }
  std::shared_ptr<const FrozenPatternSide> pattern_side() const {
    return pattern_;
  }

  /// Boundary-exit nodes of this shard at this version, sorted ascending:
  /// ghost nodes with at least one in-edge inside the shard. Empty for
  /// unsharded serving.
  const std::vector<NodeId>& boundary_exits() const QPGC_LIFETIME_BOUND;

  /// The shared exit-table handle (pointer identity is the manager's
  /// summary-reuse key); null for unsharded serving.
  const std::shared_ptr<const std::vector<NodeId>>& boundary_exits_ptr()
      const {
    return boundary_exits_;
  }

  /// The frozen boundary summary (serve/boundary_summary.h) for the
  /// router's boundary-graph search; null for unsharded serving. Pin-scope
  /// rule applies.
  const FrozenBoundarySummary* boundary_summary() const QPGC_LIFETIME_BOUND {
    return boundary_summary_.get();
  }

  /// Shared handle to the summary (for cross-version reuse in the
  /// manager's publish path).
  const std::shared_ptr<const FrozenBoundarySummary>& boundary_summary_side()
      const {
    return boundary_summary_;
  }

  /// Heap bytes held by this snapshot. Shared sides are counted in full in
  /// every snapshot that references them (per-handle accounting, not
  /// deduplicated across versions).
  size_t MemoryBytes() const;

 private:
  uint64_t version_ = 0;
  std::shared_ptr<const FrozenReachSide> reach_;
  std::shared_ptr<const FrozenPatternSide> pattern_;
  std::shared_ptr<const std::vector<NodeId>> boundary_exits_;
  std::shared_ptr<const FrozenBoundarySummary> boundary_summary_;
  // reach_map() image of each boundary exit, parallel to *boundary_exits_,
  // plus its inverse — exit indexes grouped by quotient block (CSR) — both
  // computed at Adopt. ResolveWave runs thousands of times per routed
  // query; walking a visited block's (usually empty) exit-index run beats
  // a node-map load and stamp probe per exit.
  std::vector<NodeId> exit_block_;
  std::vector<uint32_t> block_exit_offsets_;  // quotient nodes + 1
  std::vector<NodeId> block_exit_index_;
};

}  // namespace qpgc

#endif  // QPGC_SERVE_SNAPSHOT_H_
