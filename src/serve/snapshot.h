// Copyright 2026 The QPGC Authors.
//
// ServingSnapshot: one immutable, versioned serving artifact. It bundles
// everything the read path needs to answer the paper's two query classes —
// the frozen CSR layout of the reachability quotient Gr plus its node map
// (Section 3: F rewrites, then a stock algorithm runs on Gr), and the frozen
// bisimulation quotient plus node map and member index (Section 4: F is the
// identity, P expands blocks) — under a single version id.
//
// Once published (serve/snapshot_manager.h), a snapshot is never mutated
// again: readers pin it with a shared_ptr for the duration of a query and
// run on it lock-free while the writer keeps compressing new versions.
// Freeze() is the writer-side fill; it reuses the buffers of a retired
// snapshot (CsrGraph::Refreeze + vector assign), so steady-state publishing
// allocates ~nothing.

#ifndef QPGC_SERVE_SNAPSHOT_H_
#define QPGC_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "core/pattern_scheme.h"
#include "graph/csr.h"
#include "pattern/match.h"
#include "pattern/pattern.h"
#include "reach/compress_r.h"
#include "reach/queries.h"

namespace qpgc {

/// An immutable, versioned pair of frozen compressed graphs plus the
/// quotient metadata needed to answer rewritten queries.
class ServingSnapshot {
 public:
  /// An empty snapshot (version 0, no nodes); a buffer to Freeze() into.
  ServingSnapshot() = default;

  // --- Writer side ----------------------------------------------------------

  /// Fills this snapshot from the mutable compressed state, reusing the
  /// existing arrays' capacity. Must not be called on a published snapshot
  /// (the manager only freezes into buffers no reader can observe).
  void Freeze(uint64_t version, const ReachCompression& rc,
              const PatternCompression& pc);

  // --- Read side (thread-safe: touches only immutable state) ---------------

  uint64_t version() const { return version_; }
  /// |V| of the original graph this version was compressed from.
  size_t original_num_nodes() const { return reach_map_.size(); }

  /// QR(u, v) on the original node ids: rewrite through the reach node map,
  /// then run the stock algorithm on the frozen quotient (Theorem 2).
  bool Reach(NodeId u, NodeId v, PathMode mode = PathMode::kReflexive,
             ReachAlgorithm algo = ReachAlgorithm::kBfs) const;

  /// The maximum match of q, expanded back to original node ids (F = id,
  /// Match on the frozen quotient, then P; Theorem 4).
  MatchResult Match(const PatternQuery& q) const;

  /// Boolean pattern query — evaluated on the frozen quotient, no P needed.
  bool BooleanMatch(const PatternQuery& q) const;

  /// The frozen reachability quotient (for stats / direct sweeps).
  const CsrGraph& reach_gr() const { return reach_gr_; }
  /// The frozen bisimulation quotient.
  const CsrGraph& pattern_gr() const { return pattern_gr_; }

  /// Heap bytes held by this snapshot.
  size_t MemoryBytes() const;

 private:
  uint64_t version_ = 0;

  // Reachability side: frozen Gr + R(v) map.
  CsrGraph reach_gr_;
  std::vector<NodeId> reach_map_;

  // Pattern side: frozen quotient + block map + member index (what P needs).
  CsrGraph pattern_gr_;
  std::vector<NodeId> pattern_map_;
  std::vector<std::vector<NodeId>> members_;
};

}  // namespace qpgc

#endif  // QPGC_SERVE_SNAPSHOT_H_
