// Copyright 2026 The QPGC Authors.

#include "serve/snapshot_manager.h"

#include <utility>

#include "util/common.h"

namespace qpgc {

std::unique_ptr<ServingSnapshot> SnapshotManager::BufferPool::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  if (spares_.empty()) return nullptr;
  std::unique_ptr<ServingSnapshot> buf = std::move(spares_.back());
  spares_.pop_back();
  return buf;
}

void SnapshotManager::BufferPool::Return(std::unique_ptr<ServingSnapshot> buf) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (spares_.size() < kMaxSpares) {
      spares_.push_back(std::move(buf));
      return;
    }
  }
  // Pool full: let the excess buffer die outside the lock.
}

std::shared_ptr<const ServingSnapshot> SnapshotManager::Slot::load() const {
#ifdef QPGC_SERVE_ATOMIC_SLOT
  return ptr_.load(std::memory_order_acquire);
#else
  std::lock_guard<std::mutex> lock(mu_);
  return ptr_;
#endif
}

void SnapshotManager::Slot::store(std::shared_ptr<const ServingSnapshot> p) {
#ifdef QPGC_SERVE_ATOMIC_SLOT
  ptr_.store(std::move(p), std::memory_order_release);
#else
  std::shared_ptr<const ServingSnapshot> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    doomed = std::exchange(ptr_, std::move(p));
  }
  // The displaced reference (possibly the last one) drops outside the lock:
  // its deleter re-enters the buffer pool.
#endif
}

SnapshotManager::SnapshotManager(Graph g, SnapshotManagerOptions options)
    : g_(std::move(g)),
      options_(options),
      rc_(CompressR(g_, options_.reach_options)),
      pc_(CompressB(g_, options_.pattern_options)),
      pool_(std::make_shared<BufferPool>()) {
  Publish();  // version 1: Acquire() never returns null
}

ApplyStats SnapshotManager::Apply(const UpdateBatch& batch) {
  ApplyStats stats;
  const UpdateBatch effective = ApplyBatch(g_, batch);
  stats.effective_updates = effective.size();
  if (!effective.empty()) {
    stats.rcm = IncRCM(g_, effective, rc_);
    stats.pcm = IncPCM(g_, effective, pc_, options_.pattern_options.engine);
    pending_rcm_.Accumulate(stats.rcm);
    pending_pcm_.Accumulate(stats.pcm);
    pending_updates_ += effective.size();
  }
  if (ShouldAutoPublish()) {
    stats.published = true;
    stats.publish = Publish();
  }
  return stats;
}

PublishStats SnapshotManager::Publish() {
  PublishStats stats;
  stats.version = ++version_;
  stats.updates_included = pending_updates_;

  // Freeze off the read path: readers keep running on the published
  // snapshot while the inactive buffer fills.
  Timer freeze_timer;
  std::unique_ptr<ServingSnapshot> buf = pool_->Take();
  stats.reused_buffer = buf != nullptr;
  if (buf == nullptr) buf = std::make_unique<ServingSnapshot>();
  buf->Freeze(version_, rc_, pc_);
  stats.freeze_secs = freeze_timer.ElapsedSeconds();

  // Wrap the buffer in a handle whose deleter hands it back to the pool
  // when the last reader drops it. That final refcount drop synchronizes
  // with the next Take(), so a later freeze's writes can never race a
  // straggling reader's reads.
  std::shared_ptr<BufferPool> pool = pool_;
  ServingSnapshot* raw = buf.release();
  std::shared_ptr<const ServingSnapshot> handle(
      raw, [pool = std::move(pool)](const ServingSnapshot* p) {
        pool->Return(
            std::unique_ptr<ServingSnapshot>(const_cast<ServingSnapshot*>(p)));
      });

  // The swap itself: one O(1) pointer store, independent of graph size. The
  // displaced snapshot retires whenever its last reader lets go.
  Timer swap_timer;
  current_.store(std::move(handle));
  stats.swap_secs = swap_timer.ElapsedSeconds();

  pending_updates_ = 0;
  pending_rcm_ = {};
  pending_pcm_ = {};
  staleness_timer_.Restart();
  return stats;
}

bool SnapshotManager::ShouldAutoPublish() const {
  switch (options_.policy.mode) {
    case PublishPolicy::Mode::kManual:
      return false;
    case PublishPolicy::Mode::kEveryNUpdates:
      return pending_updates_ >= options_.policy.updates_per_publish;
    case PublishPolicy::Mode::kStalenessBounded:
      return pending_updates_ > 0 &&
             staleness_timer_.ElapsedSeconds() >=
                 options_.policy.max_staleness_secs;
  }
  QPGC_CHECK(false);
  return false;
}

std::shared_ptr<const ServingSnapshot> SnapshotManager::Acquire() const {
  return current_.load();
}

}  // namespace qpgc
