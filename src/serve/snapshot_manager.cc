// Copyright 2026 The QPGC Authors.

#include "serve/snapshot_manager.h"

#include <utility>

#include "util/common.h"

namespace qpgc {

namespace {

// Freezes one artifact into a pooled (or fresh) side buffer and wraps it in
// a handle whose deleter hands the buffer back to the pool when the last
// snapshot sharing it retires. That final refcount drop synchronizes with
// the next take, so a later freeze's writes can never race a straggling
// reader's reads.
template <typename Side, typename Artifact, typename TakeFn, typename GiveFn>
std::shared_ptr<const Side> FreezeSide(const Artifact& artifact, TakeFn take,
                                       GiveFn give_back, PublishStats& stats) {
  std::unique_ptr<Side> buf = take();
  if (buf != nullptr) {
    stats.reused_buffer = true;
  } else {
    buf = std::make_unique<Side>();
  }
  buf->Fill(artifact);
  return std::shared_ptr<const Side>(
      buf.release(), [give_back](const Side* p) {
        give_back(std::unique_ptr<Side>(const_cast<Side*>(p)));
      });
}

}  // namespace

template <typename T>
std::unique_ptr<T> SnapshotManager::BufferPool::TakeSpareLocked(
    std::vector<std::unique_ptr<T>>& spares) {
  if (spares.empty()) return nullptr;
  std::unique_ptr<T> buf = std::move(spares.back());
  spares.pop_back();
  return buf;
}

template <typename T>
std::unique_ptr<T> SnapshotManager::BufferPool::StashSpareLocked(
    std::vector<std::unique_ptr<T>>& spares, std::unique_ptr<T> buf) {
  if (spares.size() < kMaxSpares) {
    spares.push_back(std::move(buf));
    return nullptr;
  }
  return buf;  // pool full: caller lets the excess die outside the lock
}

std::unique_ptr<ServingSnapshot> SnapshotManager::BufferPool::TakeShell() {
  MutexLock lock(mu_);
  return TakeSpareLocked(shells_);
}

void SnapshotManager::BufferPool::ReturnShell(
    std::unique_ptr<ServingSnapshot> shell) {
  std::unique_ptr<ServingSnapshot> excess;
  {
    MutexLock lock(mu_);
    excess = StashSpareLocked(shells_, std::move(shell));
  }
}

std::unique_ptr<FrozenReachSide> SnapshotManager::BufferPool::TakeReach() {
  MutexLock lock(mu_);
  return TakeSpareLocked(reach_spares_);
}

void SnapshotManager::BufferPool::ReturnReach(
    std::unique_ptr<FrozenReachSide> side) {
  std::unique_ptr<FrozenReachSide> excess;
  {
    MutexLock lock(mu_);
    excess = StashSpareLocked(reach_spares_, std::move(side));
  }
}

std::unique_ptr<FrozenPatternSide> SnapshotManager::BufferPool::TakePattern() {
  MutexLock lock(mu_);
  return TakeSpareLocked(pattern_spares_);
}

void SnapshotManager::BufferPool::ReturnPattern(
    std::unique_ptr<FrozenPatternSide> side) {
  std::unique_ptr<FrozenPatternSide> excess;
  {
    MutexLock lock(mu_);
    excess = StashSpareLocked(pattern_spares_, std::move(side));
  }
}

std::shared_ptr<const ServingSnapshot> SnapshotManager::Slot::load() const {
#ifdef QPGC_SERVE_ATOMIC_SLOT
  return ptr_.load(std::memory_order_acquire);
#else
  MutexLock lock(mu_);
  return ptr_;
#endif
}

void SnapshotManager::Slot::store(std::shared_ptr<const ServingSnapshot> p) {
#ifdef QPGC_SERVE_ATOMIC_SLOT
  ptr_.store(std::move(p), std::memory_order_release);
#else
  std::shared_ptr<const ServingSnapshot> doomed;
  {
    MutexLock lock(mu_);
    doomed = std::exchange(ptr_, std::move(p));
  }
  // The displaced reference (possibly the last one) drops outside the lock:
  // its deleter re-enters the buffer pool.
#endif
}

SnapshotManager::SnapshotManager(Graph g, SnapshotManagerOptions options)
    : g_(std::move(g)),
      options_(std::move(options)),
      rc_(CompressR(g_, options_.reach_options)),
      pc_(CompressB(g_, options_.pattern_options)),
      pool_(std::make_shared<BufferPool>()) {
  Publish();  // version 1: Acquire() never returns null
}

SnapshotManager::SnapshotManager(Graph g, ReachCompression rc,
                                 PatternCompression pc,
                                 SnapshotManagerOptions options)
    : g_(std::move(g)),
      options_(std::move(options)),
      rc_(std::move(rc)),
      pc_(std::move(pc)),
      pool_(std::make_shared<BufferPool>()) {
  QPGC_CHECK(rc_.original_num_nodes == g_.num_nodes() &&
             pc_.original_num_nodes == g_.num_nodes());
  Publish();  // version 1: Acquire() never returns null
}

ApplyStats SnapshotManager::Apply(const UpdateBatch& batch) {
  return Apply(batch, nullptr);
}

ApplyStats SnapshotManager::Apply(
    const UpdateBatch& batch,
    const std::function<void(const UpdateBatch&)>& on_applied) {
  ApplyStats stats;
  const UpdateBatch effective = ApplyBatch(g_, batch);
  stats.effective_updates = effective.size();
  if (!effective.empty()) {
    stats.rcm = IncRCM(g_, effective, rc_);
    stats.pcm = IncPCM(g_, effective, pc_, options_.pattern_options.engine);
    pending_rcm_.Accumulate(stats.rcm);
    pending_pcm_.Accumulate(stats.pcm);
    pending_updates_ += effective.size();
  }
  // Publish-visible side state derived from the update stream (boundary-exit
  // refcounts in sharded serving) must update before a policy-triggered
  // publish can capture it.
  if (on_applied) on_applied(effective);
  if (ShouldAutoPublish()) {
    stats.published = true;
    stats.publish = Publish();
  }
  return stats;
}

PublishStats SnapshotManager::Publish(FreezeMode mode) {
  PublishStats stats;
  stats.version = ++version_;
  stats.updates_included = pending_updates_;

  // The previous snapshot: the source of shared sides under FreezeMode::kAuto
  // (pinning it here briefly delays its retirement past the swap, which is
  // harmless).
  const std::shared_ptr<const ServingSnapshot> prev = current_.load();
  // An artifact whose accumulated incremental stats kept no updates since
  // the last publish is bit-identical to the published one (reduced updates
  // are dropped *before* the artifact is touched), so the previous side can
  // be shared instead of refrozen.
  const bool freeze_reach = mode == FreezeMode::kFull || prev == nullptr ||
                            pending_rcm_.kept_updates > 0;
  const bool freeze_pattern = mode == FreezeMode::kFull || prev == nullptr ||
                              pending_pcm_.kept_updates > 0;

  // Freeze off the read path: readers keep running on the published
  // snapshot while the inactive buffers fill.
  Timer freeze_timer;
  std::shared_ptr<const FrozenReachSide> reach;
  if (freeze_reach) {
    stats.froze_reach = true;
    reach = FreezeSide<FrozenReachSide>(
        rc_, [this] { return pool_->TakeReach(); },
        [pool = pool_](std::unique_ptr<FrozenReachSide> buf) {
          pool->ReturnReach(std::move(buf));
        },
        stats);
  } else {
    reach = prev->reach_side();
  }
  std::shared_ptr<const FrozenPatternSide> pattern;
  if (freeze_pattern) {
    stats.froze_pattern = true;
    pattern = FreezeSide<FrozenPatternSide>(
        pc_, [this] { return pool_->TakePattern(); },
        [pool = pool_](std::unique_ptr<FrozenPatternSide> buf) {
          pool->ReturnPattern(std::move(buf));
        },
        stats);
  } else {
    pattern = prev->pattern_side();
  }

  std::shared_ptr<const std::vector<NodeId>> exits;
  if (options_.boundary_exits_provider) {
    exits = options_.boundary_exits_provider();
  }
  std::shared_ptr<const std::vector<NodeId>> entries;
  if (options_.boundary_entries_provider) {
    entries = options_.boundary_entries_provider();
  }

  // The boundary summary (sharded serving only) is a pure function of the
  // frozen reach quotient and the boundary sets, so it shares the sides'
  // reuse story: when none of its three inputs moved, the previous
  // version's summary carries over by pointer; otherwise it is rebuilt —
  // two linear passes over the quotient (serve/boundary_summary.h), timed
  // separately as the publish-cost delta the artifact adds.
  std::shared_ptr<const FrozenBoundarySummary> summary;
  if (exits != nullptr && entries != nullptr) {
    const FrozenBoundarySummary* prev_summary =
        prev == nullptr ? nullptr : prev->boundary_summary();
    if (!freeze_reach && prev_summary != nullptr &&
        prev->boundary_exits_ptr() == exits &&
        prev_summary->entries_ptr() == entries) {
      summary = prev->boundary_summary_side();
    } else {
      stats.froze_summary = true;
      Timer summary_timer;
      auto built = std::make_shared<FrozenBoundarySummary>();
      built->Build(reach->gr, reach->node_map, std::move(exits),
                   std::move(entries));
      summary = std::move(built);
      stats.summary_freeze_secs = summary_timer.ElapsedSeconds();
      exits = summary->exits_ptr();
    }
  }

  std::unique_ptr<ServingSnapshot> shell = pool_->TakeShell();
  if (shell == nullptr) shell = std::make_unique<ServingSnapshot>();
  shell->Adopt(version_, std::move(reach), std::move(pattern),
               std::move(exits), std::move(summary));
  stats.freeze_secs = freeze_timer.ElapsedSeconds();

  // Wrap the shell in a handle whose deleter releases its side shares and
  // returns it to the pool when the last reader drops it.
  ServingSnapshot* raw = shell.release();
  std::shared_ptr<const ServingSnapshot> handle(
      raw, [pool = pool_](const ServingSnapshot* p) {
        ServingSnapshot* shell = const_cast<ServingSnapshot*>(p);
        shell->Reset();  // drop side shares first: unshared sides recycle
        pool->ReturnShell(std::unique_ptr<ServingSnapshot>(shell));
      });

  // The swap itself: one O(1) pointer store, independent of graph size. The
  // displaced snapshot retires whenever its last reader lets go.
  Timer swap_timer;
  current_.store(std::move(handle));
  stats.swap_secs = swap_timer.ElapsedSeconds();

  pending_updates_ = 0;
  pending_rcm_ = {};
  pending_pcm_ = {};
  staleness_timer_.Restart();
  return stats;
}

bool SnapshotManager::ShouldAutoPublish() const {
  switch (options_.policy.mode) {
    case PublishPolicy::Mode::kManual:
      return false;
    case PublishPolicy::Mode::kEveryNUpdates:
      return pending_updates_ >= options_.policy.updates_per_publish;
    case PublishPolicy::Mode::kStalenessBounded:
      return pending_updates_ > 0 &&
             staleness_timer_.ElapsedSeconds() >=
                 options_.policy.max_staleness_secs;
  }
  QPGC_CHECK(false);
  return false;
}

std::shared_ptr<const ServingSnapshot> SnapshotManager::Acquire() const {
  return current_.load();
}

}  // namespace qpgc
