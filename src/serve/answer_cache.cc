// Copyright 2026 The QPGC Authors.

#include "serve/answer_cache.h"

#include <algorithm>
#include <cstring>

#include "util/hash.h"

namespace qpgc {
namespace {

uint64_t PairHash64(uint64_t cu, uint64_t cv) {
  return Mix64(HashCombine(Mix64(cu), cv));
}

size_t RoundUpPow2(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

void AppendU32(std::string& out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(v));
}

}  // namespace

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  reach_exact_hits += other.reach_exact_hits;
  reach_subsumption_hits += other.reach_subsumption_hits;
  reach_misses += other.reach_misses;
  reach_inserts += other.reach_inserts;
  reach_evictions += other.reach_evictions;
  match_negative_hits += other.match_negative_hits;
  match_misses += other.match_misses;
  match_inserts += other.match_inserts;
  match_evictions += other.match_evictions;
  return *this;
}

std::string CanonicalPatternKey(const PatternQuery& q) {
  std::string key;
  key.reserve(8 + 4 * q.num_nodes() + 12 * q.num_edges());
  AppendU32(key, static_cast<uint32_t>(q.num_nodes()));
  for (uint32_t u = 0; u < q.num_nodes(); ++u) AppendU32(key, q.label(u));
  AppendU32(key, static_cast<uint32_t>(q.num_edges()));
  for (const PatternEdge& e : q.edges()) {
    AppendU32(key, e.from);
    AppendU32(key, e.to);
    AppendU32(key, e.bound);
  }
  return key;
}

// --- VersionAnswerCache -----------------------------------------------------

VersionAnswerCache::VersionAnswerCache(uint64_t version_id,
                                       const AnswerCacheOptions& options)
    : version_id_(version_id),
      options_(options),
      slots_per_shard_(std::max(
          kProbeWindow,
          RoundUpPow2(std::max<size_t>(1, options.reach_capacity) /
                      kNumShards))) {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.slots.resize(slots_per_shard_);
  }
}

bool VersionAnswerCache::FactSet::Contains(uint64_t x) const {
  return std::find(items.begin(), items.end(), x) != items.end();
}

bool VersionAnswerCache::FactSet::Add(uint64_t x, size_t cap) {
  if (Contains(x) || cap == 0) return false;
  if (items.size() < cap) {
    items.push_back(x);
    return false;
  }
  items[cursor] = x;
  cursor = (cursor + 1) % cap;
  return true;
}

VersionAnswerCache::Shard& VersionAnswerCache::PairShard(uint64_t cu,
                                                         uint64_t cv) {
  return shards_[PairHash64(cu, cv) % kNumShards];
}

VersionAnswerCache::Shard& VersionAnswerCache::EndpointShard(uint64_t c) {
  return shards_[Mix64(c) % kNumShards];
}

VersionAnswerCache::Shard& VersionAnswerCache::KeyShard(
    const std::string& key) {
  return shards_[HashBytes(key) % kNumShards];
}

VersionAnswerCache::EndpointFacts VersionAnswerCache::SnapshotFacts(
    uint64_t c) {
  Shard& shard = EndpointShard(c);
  MutexLock lock(shard.mu);
  const auto it = shard.facts.find(c);
  return it == shard.facts.end() ? EndpointFacts{} : it->second;
}

VersionAnswerCache::ReachHit VersionAnswerCache::LookupReach(uint64_t cu,
                                                             uint64_t cv) {
  // Tier 1: exact probe. The table is open-addressing with a short linear
  // window; a hit refreshes the entry's stamp (clock-style recency).
  {
    Shard& shard = PairShard(cu, cv);
    MutexLock lock(shard.mu);
    const size_t mask = slots_per_shard_ - 1;
    const size_t base = PairHash64(cu, cv) & mask;
    for (size_t i = 0; i < kProbeWindow; ++i) {
      ReachEntry& e = shard.slots[(base + i) & mask];
      if (e.state != 0 && e.cu == cu && e.cv == cv) {
        e.stamp = ++shard.tick;
        ++shard.stats.reach_exact_hits;
        return e.state == 2 ? ReachHit::kTrue : ReachHit::kFalse;
      }
    }
  }

  // Tier 2: subsumption by transitivity over cached facts. Fact sets are
  // copied out under their endpoint shards' locks (never nested), then
  // intersected lock-free.
  if (options_.subsumption) {
    const EndpointFacts u_facts = SnapshotFacts(cu);
    const EndpointFacts v_facts = SnapshotFacts(cv);
    const auto intersects = [](const FactSet& a, const FactSet& b) {
      for (uint64_t x : a.items) {
        if (b.Contains(x)) return true;
      }
      return false;
    };
    ReachHit hit = ReachHit::kMiss;
    // true(cu -> w) and true(w -> cv)  =>  true(cu -> cv).
    if (intersects(u_facts.true_out, v_facts.true_in)) {
      hit = ReachHit::kSubsumedTrue;
    } else if (
        // false(cu -> d) and true(cv -> d)  =>  false(cu -> cv),
        // else cu -> cv -> d would be a path.
        intersects(u_facts.false_out, v_facts.true_out) ||
        // true(a -> cu) and false(a -> cv)  =>  false(cu -> cv),
        // else a -> cu -> cv would be a path.
        intersects(u_facts.true_in, v_facts.false_in)) {
      hit = ReachHit::kSubsumedFalse;
    }
    if (hit != ReachHit::kMiss) {
      {
        Shard& shard = PairShard(cu, cv);
        MutexLock lock(shard.mu);
        ++shard.stats.reach_subsumption_hits;
      }
      // Promote: the derived fact becomes an exact entry (and a new
      // subsumption fact), so repeats take the tier-1 path.
      InsertReach(cu, cv, hit == ReachHit::kSubsumedTrue);
      return hit;
    }
  }

  {
    Shard& shard = PairShard(cu, cv);
    MutexLock lock(shard.mu);
    ++shard.stats.reach_misses;
  }
  return ReachHit::kMiss;
}

void VersionAnswerCache::RecordFact(uint64_t endpoint, uint64_t other,
                                    bool answer, bool out) {
  Shard& shard = EndpointShard(endpoint);
  MutexLock lock(shard.mu);
  auto it = shard.facts.find(endpoint);
  if (it == shard.facts.end()) {
    // Bound the endpoint universe: past the cap, recycle an arbitrary
    // tracked endpoint (dropping facts is always sound).
    const size_t cap =
        std::max<size_t>(1, options_.subsumption_endpoints / kNumShards);
    if (shard.facts.size() >= cap && !shard.facts.empty()) {
      shard.facts.erase(shard.facts.begin());
      ++shard.stats.reach_evictions;
    }
    it = shard.facts.emplace(endpoint, EndpointFacts{}).first;
  }
  EndpointFacts& facts = it->second;
  FactSet& set = answer ? (out ? facts.true_out : facts.true_in)
                        : (out ? facts.false_out : facts.false_in);
  if (set.Add(other, options_.facts_per_endpoint)) {
    ++shard.stats.reach_evictions;
  }
}

void VersionAnswerCache::InsertReach(uint64_t cu, uint64_t cv, bool answer) {
  {
    Shard& shard = PairShard(cu, cv);
    MutexLock lock(shard.mu);
    const size_t mask = slots_per_shard_ - 1;
    const size_t base = PairHash64(cu, cv) & mask;
    ReachEntry* victim = nullptr;
    for (size_t i = 0; i < kProbeWindow; ++i) {
      ReachEntry& e = shard.slots[(base + i) & mask];
      if (e.state != 0 && e.cu == cu && e.cv == cv) {
        e.state = answer ? 2 : 1;  // immutable per version in practice
        e.stamp = ++shard.tick;
        return;
      }
      if (e.state == 0) {
        if (victim == nullptr || victim->state != 0) victim = &e;
      } else if (victim == nullptr ||
                 (victim->state != 0 && e.stamp < victim->stamp)) {
        victim = &e;
      }
    }
    if (victim->state != 0) ++shard.stats.reach_evictions;
    victim->cu = cu;
    victim->cv = cv;
    victim->state = answer ? 2 : 1;
    victim->stamp = ++shard.tick;
    ++shard.stats.reach_inserts;
  }
  if (options_.subsumption) {
    RecordFact(cu, cv, answer, /*out=*/true);
    RecordFact(cv, cu, answer, /*out=*/false);
  }
}

bool VersionAnswerCache::LookupNegativeMatch(const std::string& key) {
  Shard& shard = KeyShard(key);
  MutexLock lock(shard.mu);
  const auto it = shard.negative.find(key);
  if (it == shard.negative.end()) return false;
  it->second = ++shard.tick;
  ++shard.stats.match_negative_hits;
  return true;
}

void VersionAnswerCache::InsertMatchOutcome(const std::string& key,
                                            bool matched) {
  Shard& shard = KeyShard(key);
  MutexLock lock(shard.mu);
  ++shard.stats.match_misses;
  if (matched) return;  // negative cache: only misses are remembered
  const size_t cap = std::max<size_t>(1, options_.match_capacity / kNumShards);
  if (shard.negative.size() >= cap &&
      shard.negative.find(key) == shard.negative.end()) {
    // Evict the least-recently-touched key (caps are small; linear scan).
    auto oldest = shard.negative.begin();
    for (auto it = shard.negative.begin(); it != shard.negative.end(); ++it) {
      if (it->second < oldest->second) oldest = it;
    }
    shard.negative.erase(oldest);
    ++shard.stats.match_evictions;
  }
  if (shard.negative.emplace(key, ++shard.tick).second) {
    ++shard.stats.match_inserts;
  }
}

CacheStats VersionAnswerCache::Stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.stats;
  }
  return total;
}

// --- AnswerCache ------------------------------------------------------------

AnswerCache::AnswerCache(AnswerCacheOptions options) : options_(options) {}

std::shared_ptr<VersionAnswerCache> AnswerCache::ForVersion(
    uint64_t version_id) {
  MutexLock lock(mu_);
  for (const auto& cache : live_) {
    if (cache->version_id() == version_id) return cache;
  }
  auto cache = std::make_shared<VersionAnswerCache>(version_id, options_);
  live_.push_back(cache);
  const size_t max_live = std::max<size_t>(1, options_.max_versions);
  while (live_.size() > max_live) {
    // Version ids are allocated monotonically; the smallest is the oldest.
    size_t oldest = 0;
    for (size_t i = 1; i < live_.size(); ++i) {
      if (live_[i]->version_id() < live_[oldest]->version_id()) oldest = i;
    }
    retired_ += live_[oldest]->Stats();
    live_.erase(live_.begin() + static_cast<ptrdiff_t>(oldest));
  }
  return cache;
}

CacheStats AnswerCache::Stats() const {
  MutexLock lock(mu_);
  CacheStats total = retired_;
  for (const auto& cache : live_) total += cache->Stats();
  return total;
}

// --- Cached read surfaces ---------------------------------------------------

bool CachedSnapshot::Reach(NodeId u, NodeId v, PathMode mode,
                           ReachAlgorithm algo) const {
  if (mode == PathMode::kReflexive && u == v) return true;
  // Canonical fact: non-empty-path reachability between reach-quotient
  // blocks. Every remaining (u, v, mode) combination reduces to it —
  // including the kNonEmpty diagonal, which asks for a cycle through u's
  // block — so one cached answer covers all equivalent probes.
  const std::vector<NodeId>& map = snap_->reach_map();
  const uint64_t cu = map[u];
  const uint64_t cv = map[v];
  switch (cache_->LookupReach(cu, cv)) {
    case VersionAnswerCache::ReachHit::kTrue:
    case VersionAnswerCache::ReachHit::kSubsumedTrue:
      return true;
    case VersionAnswerCache::ReachHit::kFalse:
    case VersionAnswerCache::ReachHit::kSubsumedFalse:
      return false;
    case VersionAnswerCache::ReachHit::kMiss:
      break;
  }
  const bool answer = snap_->Reach(u, v, PathMode::kNonEmpty, algo);
  cache_->InsertReach(cu, cv, answer);
  return answer;
}

bool CachedSnapshot::BooleanMatch(const PatternQuery& q) const {
  if (!cache_->options().negative_match) return snap_->BooleanMatch(q);
  const std::string key = CanonicalPatternKey(q);
  if (cache_->LookupNegativeMatch(key)) return false;
  const bool matched = snap_->BooleanMatch(q);
  cache_->InsertMatchOutcome(key, matched);
  return matched;
}

std::shared_ptr<const CachedSnapshot> CachedQueryService::Pin() const {
  const auto snap = manager_.Acquire();
  MutexLock lock(pin_mu_);
  if (pin_ == nullptr || pin_->version() != snap->version()) {
    pin_ = std::make_shared<const CachedSnapshot>(
        snap, cache_.ForVersion(snap->version()));
  }
  return pin_;
}

bool CachedPinnedShards::Reach(NodeId u, NodeId v, PathMode mode) const {
  if (mode == PathMode::kReflexive && u == v) return true;
  // Sharded canonical keys are the original node ids (see header): a node's
  // global reach identity depends on its block in EVERY shard that has
  // in-edges to it, not just its home shard, so block-level transfer is
  // reserved for the unsharded path. The cached fact is global
  // non-empty-path reachability.
  const uint64_t cu = u;
  const uint64_t cv = v;
  switch (cache_->LookupReach(cu, cv)) {
    case VersionAnswerCache::ReachHit::kTrue:
    case VersionAnswerCache::ReachHit::kSubsumedTrue:
      return true;
    case VersionAnswerCache::ReachHit::kFalse:
    case VersionAnswerCache::ReachHit::kSubsumedFalse:
      return false;
    case VersionAnswerCache::ReachHit::kMiss:
      break;
  }
  const bool answer = pins_->Reach(u, v, PathMode::kNonEmpty);
  cache_->InsertReach(cu, cv, answer);
  return answer;
}

bool CachedPinnedShards::BooleanMatch(const PatternQuery& q) const {
  if (!cache_->options().negative_match) return pins_->BooleanMatch(q);
  const std::string key = CanonicalPatternKey(q);
  if (cache_->LookupNegativeMatch(key)) return false;
  const bool matched = pins_->BooleanMatch(q);
  cache_->InsertMatchOutcome(key, matched);
  return matched;
}

std::shared_ptr<const CachedPinnedShards> CachedShardedQueryService::Pin()
    const {
  const auto pins = inner_.Pin();
  MutexLock lock(pin_mu_);
  // PinnedShards wrappers are freshly allocated per version vector (never
  // pooled), so pointer identity is version-vector identity.
  if (pin_ == nullptr || &pin_->pins() != pins.get()) {
    pin_ = std::make_shared<const CachedPinnedShards>(
        pins, cache_.ForVersion(next_cache_id_++));
  }
  return pin_;
}

}  // namespace qpgc
