// Copyright 2026 The QPGC Authors.
//
// Shared reader-side load for the serving simulator (qpgc_tool serve-sim)
// and bench_serving: one pattern-set builder and one pin-then-hammer query
// loop, so the tool and the bench drive the exact same query mix and a
// change to the workload (ratio, pattern shape) lands in both at once.

#ifndef QPGC_SERVE_LOAD_GEN_H_
#define QPGC_SERVE_LOAD_GEN_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "pattern/pattern.h"
#include "serve/query_service.h"

namespace qpgc {

/// Small weakly-connected patterns (3 nodes / 3 edges, bounds <= 2) drawn
/// from g's labels, for boolean-match load. Returns an empty set for
/// effectively unlabeled graphs — a single-label pattern matches everything
/// and measures nothing.
std::vector<PatternQuery> ServeLoadPatterns(const Graph& g, size_t count,
                                            uint64_t seed);

/// What one reader's RunReaderLoad call did.
struct ReaderLoadCounters {
  uint64_t reach_queries = 0;
  uint64_t match_queries = 0;
};

/// The reader hammer loop: until `stop` is set, pin the current snapshot,
/// issue 64 random reach queries, then one boolean match (when patterns are
/// available). Deterministic in `seed` up to snapshot timing.
ReaderLoadCounters RunReaderLoad(const QueryService& service,
                                 const std::vector<PatternQuery>& patterns,
                                 uint64_t seed,
                                 const std::atomic<bool>& stop);

}  // namespace qpgc

#endif  // QPGC_SERVE_LOAD_GEN_H_
