// Copyright 2026 The QPGC Authors.
//
// Shared reader/writer load for the serving simulators (qpgc_tool
// serve-sim, bench_serving, bench_sharded) and the stress tests: one
// pattern-set builder, one pin-then-hammer query loop, and one shard-local
// update generator, so the tool and the benches drive the exact same
// workload and a change to it lands everywhere at once.

#ifndef QPGC_SERVE_LOAD_GEN_H_
#define QPGC_SERVE_LOAD_GEN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "graph/update.h"
#include "pattern/pattern.h"
#include "util/common.h"
#include "util/rng.h"
#include "util/timer.h"

namespace qpgc {

/// Small weakly-connected patterns (3 nodes / 3 edges, bounds <= 2) drawn
/// from g's labels, for boolean-match load. Returns an empty set for
/// effectively unlabeled graphs — a single-label pattern matches everything
/// and measures nothing.
std::vector<PatternQuery> ServeLoadPatterns(const Graph& g, size_t count,
                                            uint64_t seed);

/// What one reader's RunReaderLoad call did.
struct ReaderLoadCounters {
  uint64_t reach_queries = 0;
  uint64_t match_queries = 0;
};

/// How RunReaderLoad draws its queries.
///  * kUniform — independent uniform endpoints (the PR 4/5 workload).
///  * kZipfHotSet — production-shaped repetition: a fixed hot set of
///    `hot_set_size` query pairs; each query draws a Zipf(zipf_s) rank and
///    replays that rank's pair. The rank -> pair mapping is a pure function
///    of `hot_seed`, so every reader (and every phase of an A/B run)
///    hammers the same hot set, which is what makes answer caching
///    measurable (docs/CACHING.md).
struct ReaderWorkload {
  enum class Mode { kUniform, kZipfHotSet };

  Mode mode = Mode::kUniform;
  /// Zipf exponent s over hot-set ranks (rank 0 most frequent).
  double zipf_s = 1.1;
  /// Number of distinct hot query pairs (clamped to the graph size).
  size_t hot_set_size = 1024;
  /// Seed of the rank -> pair mapping, shared across readers.
  uint64_t hot_seed = 0x40095eedull;

  static ReaderWorkload Uniform() { return {}; }
  static ReaderWorkload ZipfHotSet(double s, size_t hot_pairs) {
    ReaderWorkload w;
    w.mode = Mode::kZipfHotSet;
    w.zipf_s = s;
    w.hot_set_size = hot_pairs;
    return w;
  }
};

/// Draws reach endpoints / pattern indexes for one workload over a graph of
/// `num_nodes` nodes. Cheap to construct (one Zipf CDF); each reader thread
/// builds its own and feeds it its own Rng.
class WorkloadSampler {
 public:
  WorkloadSampler(const ReaderWorkload& workload, size_t num_nodes);

  /// Endpoints of one reach query.
  std::pair<NodeId, NodeId> SampleReachPair(Rng& rng) const;

  /// Index of one pattern in [0, num_patterns); num_patterns > 0.
  size_t SamplePatternIndex(Rng& rng, size_t num_patterns) const;

 private:
  ReaderWorkload workload_;
  size_t num_nodes_;
  std::optional<ZipfSampler> zipf_;  // over hot ranks (kZipfHotSet only)
};

/// The reader hammer loop: until `stop` is set, pin the current snapshot
/// (or sharded version vector), issue 64 workload-drawn reach queries, then
/// one boolean match (when patterns are available). Deterministic in `seed`
/// up to snapshot timing. Works against any service whose Pin() returns a
/// handle with original_num_nodes / Reach / BooleanMatch — QueryService
/// (pins a ServingSnapshot), ShardedQueryService (pins a PinnedShards), and
/// the caching facades in serve/answer_cache.h all qualify.
template <typename Service>
ReaderLoadCounters RunReaderLoad(const Service& service,
                                 const std::vector<PatternQuery>& patterns,
                                 uint64_t seed, const std::atomic<bool>& stop,
                                 const ReaderWorkload& workload) {
  ReaderLoadCounters counters;
  Rng rng(seed);
  std::optional<WorkloadSampler> sampler;
  size_t sampler_nodes = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const auto snap = service.Pin();
    const size_t n = snap->original_num_nodes();
    if (n == 0) continue;
    if (!sampler.has_value() || sampler_nodes != n) {
      sampler.emplace(workload, n);
      sampler_nodes = n;
    }
    for (int i = 0; i < 64; ++i) {
      const std::pair<NodeId, NodeId> uv = sampler->SampleReachPair(rng);
      (void)snap->Reach(uv.first, uv.second);
      ++counters.reach_queries;
    }
    if (!patterns.empty()) {
      (void)snap->BooleanMatch(
          patterns[sampler->SamplePatternIndex(rng, patterns.size())]);
      ++counters.match_queries;
    }
  }
  return counters;
}

/// Backward-compatible overload: uniform workload.
template <typename Service>
ReaderLoadCounters RunReaderLoad(const Service& service,
                                 const std::vector<PatternQuery>& patterns,
                                 uint64_t seed,
                                 const std::atomic<bool>& stop) {
  return RunReaderLoad(service, patterns, seed, stop, ReaderWorkload{});
}

/// What one timed multi-reader window did.
struct LoadRunResult {
  double elapsed_secs = 0.0;
  uint64_t reach_queries = 0;
  uint64_t match_queries = 0;

  double reach_qps() const {
    return elapsed_secs > 0 ? static_cast<double>(reach_queries) / elapsed_secs
                            : 0.0;
  }
  double match_qps() const {
    return elapsed_secs > 0 ? static_cast<double>(match_queries) / elapsed_secs
                            : 0.0;
  }
};

/// Spawns `num_readers` RunReaderLoad threads against `service` for one
/// `window_secs` window (reach-only when `patterns` is empty) and returns
/// the aggregate counters. The A/B harness of the benches and qpgc_tool
/// serve-sim: measuring cached vs uncached services on the same workload is
/// two calls with the same seeds.
template <typename Service>
LoadRunResult RunTimedLoad(const Service& service,
                           const std::vector<PatternQuery>& patterns,
                           const ReaderWorkload& workload, double window_secs,
                           int num_readers, uint64_t seed_base = 40) {
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reach_queries{0};
  std::atomic<uint64_t> match_queries{0};
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(num_readers));
  for (int r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      const ReaderLoadCounters counters = RunReaderLoad(
          service, patterns, seed_base + static_cast<uint64_t>(r), done,
          workload);
      reach_queries.fetch_add(counters.reach_queries,
                              std::memory_order_relaxed);
      match_queries.fetch_add(counters.match_queries,
                              std::memory_order_relaxed);
    });
  }
  Timer window;
  while (window.ElapsedSeconds() < window_secs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  LoadRunResult result;
  result.elapsed_secs = window.ElapsedSeconds();
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  result.reach_queries = reach_queries.load();
  result.match_queries = match_queries.load();
  return result;
}

/// A random shard-local batch for per-shard writer threads: `count` updates
/// whose sources are drawn from `owned` (the shard's node set) and whose
/// targets are uniform over the whole universe — inserts with probability
/// `insert_fraction`, deletions of an existing out-edge of an owned source
/// otherwise (skipped when the drawn source has none). Applying such
/// batches through ShardedSnapshotManager::ApplyToShard keeps the edge-cut
/// invariant (every update's source is owned) by construction.
UpdateBatch RandomShardLocalBatch(const Graph& shard_graph,
                                  std::span<const NodeId> owned, size_t count,
                                  double insert_fraction, uint64_t seed);

}  // namespace qpgc

#endif  // QPGC_SERVE_LOAD_GEN_H_
