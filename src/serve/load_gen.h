// Copyright 2026 The QPGC Authors.
//
// Shared reader/writer load for the serving simulators (qpgc_tool
// serve-sim, bench_serving, bench_sharded) and the stress tests: one
// pattern-set builder, one pin-then-hammer query loop, and one shard-local
// update generator, so the tool and the benches drive the exact same
// workload and a change to it lands everywhere at once.

#ifndef QPGC_SERVE_LOAD_GEN_H_
#define QPGC_SERVE_LOAD_GEN_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/update.h"
#include "pattern/pattern.h"
#include "util/rng.h"

namespace qpgc {

/// Small weakly-connected patterns (3 nodes / 3 edges, bounds <= 2) drawn
/// from g's labels, for boolean-match load. Returns an empty set for
/// effectively unlabeled graphs — a single-label pattern matches everything
/// and measures nothing.
std::vector<PatternQuery> ServeLoadPatterns(const Graph& g, size_t count,
                                            uint64_t seed);

/// What one reader's RunReaderLoad call did.
struct ReaderLoadCounters {
  uint64_t reach_queries = 0;
  uint64_t match_queries = 0;
};

/// The reader hammer loop: until `stop` is set, pin the current snapshot
/// (or sharded version vector), issue 64 random reach queries, then one
/// boolean match (when patterns are available). Deterministic in `seed` up
/// to snapshot timing. Works against any service whose Pin() returns a
/// handle with original_num_nodes / Reach / BooleanMatch — QueryService
/// (pins a ServingSnapshot) and ShardedQueryService (pins a PinnedShards)
/// both qualify.
template <typename Service>
ReaderLoadCounters RunReaderLoad(const Service& service,
                                 const std::vector<PatternQuery>& patterns,
                                 uint64_t seed,
                                 const std::atomic<bool>& stop) {
  ReaderLoadCounters counters;
  Rng rng(seed);
  while (!stop.load(std::memory_order_relaxed)) {
    const auto snap = service.Pin();
    const size_t n = snap->original_num_nodes();
    for (int i = 0; i < 64; ++i) {
      (void)snap->Reach(static_cast<NodeId>(rng.Uniform(n)),
                        static_cast<NodeId>(rng.Uniform(n)));
      ++counters.reach_queries;
    }
    if (!patterns.empty()) {
      (void)snap->BooleanMatch(patterns[rng.Uniform(patterns.size())]);
      ++counters.match_queries;
    }
  }
  return counters;
}

/// A random shard-local batch for per-shard writer threads: `count` updates
/// whose sources are drawn from `owned` (the shard's node set) and whose
/// targets are uniform over the whole universe — inserts with probability
/// `insert_fraction`, deletions of an existing out-edge of an owned source
/// otherwise (skipped when the drawn source has none). Applying such
/// batches through ShardedSnapshotManager::ApplyToShard keeps the edge-cut
/// invariant (every update's source is owned) by construction.
UpdateBatch RandomShardLocalBatch(const Graph& shard_graph,
                                  std::span<const NodeId> owned, size_t count,
                                  double insert_fraction, uint64_t seed);

}  // namespace qpgc

#endif  // QPGC_SERVE_LOAD_GEN_H_
