// Copyright 2026 The QPGC Authors.
//
// ShardedSnapshotManager: K independent single-writer serving pipelines
// behind one facade. The input graph is node-partitioned (hash by default;
// graph/shard_view.h), every shard materializes its local subgraph — owned
// nodes with their full out-adjacency, plus ghost-labeled copies of the
// rest of the node universe — and runs its *own* SnapshotManager: its own
// dynamic source of truth, its own IncRCM/IncPCM maintenance, its own
// versioned snapshot publishing. Nothing is shared between shards on the
// write path, so K writer threads scale update throughput and publish work
// K-ways, and each shard's publish freezes a quotient ~1/K the size of the
// whole graph's.
//
// Cross-shard bookkeeping is limited to two structures per shard, both
// refcount tables over live cross-shard edges:
//  * the boundary-*exit* table — for each ghost node v, how many live
//    edges of this shard point at v. Written only by this shard's own
//    writer (every counted edge is one of this shard's edges), so it needs
//    no lock under the single-writer-per-shard contract.
//  * the boundary-*entry* table — for each owned node v, how many live
//    edges of *other* shards point at v. Updated by those shards' writers
//    (an edge (u, v) is applied by shard_of(u)'s writer) and read by this
//    shard's publish, so it is the one genuinely cross-thread structure
//    here and sits behind an annotated qpgc::Mutex.
// Snapshots of both (the sorted sets with refcount > 0) are frozen into
// every published ServingSnapshot via the manager options' boundary
// providers, together with the FrozenBoundarySummary built from them
// (serve/boundary_summary.h), so the router's boundary-graph search always
// walks boundary state consistent with the pinned version. Query routing
// and answer merging live in serve/router.h; the whole sharding story is
// docs/SHARDING.md. Single-writer-per-shard is a contract, not a lock —
// docs/CONCURRENCY.md lists which contracts are lock-checked and which are
// TSan-checked.
//
// Thread-safety contract:
//  * Construction: single thread.
//  * Writer side: at most one writer thread *per shard* may call
//    ApplyToShard(shard, ...) / PublishShard(shard, ...); distinct shards
//    are otherwise independent and may be driven concurrently (their only
//    touch point, the entry tables, is locked). The convenience
//    Apply()/PublishAll() drive every shard from the calling thread and
//    therefore require exclusive write access to all shards.
//  * Read side: AcquireAll() (and the router built on it) may be called
//    from any number of threads concurrently with all writers. Each
//    acquired snapshot is internally consistent; the vector is a cut of
//    per-shard versions, which is a legitimate global state because shards
//    own disjoint edge sets (any combination of per-shard states is the
//    graph whose shard-s edges are at shard s's version).
//  * Lifetime: the manager must outlive writer calls; acquired snapshots
//    (and PinnedShards built from them) may outlive the manager.

#ifndef QPGC_SERVE_SHARDED_MANAGER_H_
#define QPGC_SERVE_SHARDED_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/shard_view.h"
#include "serve/snapshot_manager.h"
#include "util/lifetime_annotations.h"
#include "util/thread_annotations.h"

namespace qpgc {

struct ShardedManagerOptions {
  /// Number of shards K >= 1. K = 1 degenerates to a single SnapshotManager
  /// with no ghosts and empty exit tables (the differential baseline).
  uint32_t num_shards = 1;
  /// Seed of the hash partition (ignored by the other partitioners).
  uint64_t partition_seed = 0;
  /// How nodes are assigned to shards (graph/shard_view.h): hash (the
  /// structure-blind workhorse), contiguous id ranges (locality-friendly
  /// when ids correlate with structure), or the SCC-coarsened structure
  /// partitioner (docs/SHARDING.md discusses the trade-offs).
  PartitionerKind partitioner = PartitionerKind::kHash;
  /// Per-shard manager options (publish policy, compression engines). The
  /// boundary_exits_provider / boundary_entries_provider fields are
  /// overwritten per shard.
  SnapshotManagerOptions shard_options;
};

/// What one routed Apply() did, summed over the touched shards.
struct ShardedApplyStats {
  size_t effective_updates = 0;
  size_t shards_touched = 0;
  /// Policy-triggered publishes that fired inside this Apply().
  size_t publishes = 0;
};

class ShardedSnapshotManager {
 public:
  /// Partitions `g`, materializes the K shard subgraphs, compresses each,
  /// and publishes version 1 on every shard.
  explicit ShardedSnapshotManager(const Graph& g,
                                  ShardedManagerOptions options = {});

  ShardedSnapshotManager(const ShardedSnapshotManager&) = delete;
  ShardedSnapshotManager& operator=(const ShardedSnapshotManager&) = delete;

  // --- Writer side ----------------------------------------------------------

  /// Routes a global batch to its shards (SplitBatchByShard) and applies
  /// each sub-batch. Single global writer convenience; see the class
  /// comment for the per-shard threading contract.
  ShardedApplyStats Apply(const UpdateBatch& batch);

  /// Applies a shard-local batch (every update's source owned by `shard`)
  /// through that shard's SnapshotManager, maintaining the boundary-exit
  /// table before any policy-triggered publish. This is the entry point for
  /// per-shard writer threads.
  ApplyStats ApplyToShard(uint32_t shard, const UpdateBatch& batch);

  /// Publishes one shard / all shards.
  PublishStats PublishShard(uint32_t shard,
                            FreezeMode mode = FreezeMode::kAuto);
  std::vector<PublishStats> PublishAll(FreezeMode mode = FreezeMode::kAuto);

  /// Number of distinct ghost nodes this shard currently points at
  /// (writer-side inspection of the exit table).
  size_t BoundaryExitCount(uint32_t shard) const;

  /// Number of owned nodes of `shard` that other shards currently point at
  /// (inspection of the entry table; takes its lock, any thread).
  size_t BoundaryEntryCount(uint32_t shard) const;

  // --- Read side (any thread) -----------------------------------------------

  /// Pins the current snapshot of every shard (never null entries). Index
  /// i is shard i's snapshot. Prefer serve/router.h's ShardedQueryService,
  /// which wraps the vector in a query facade.
  std::vector<std::shared_ptr<const ServingSnapshot>> AcquireAll() const;

  uint32_t num_shards() const { return part_->num_shards; }
  const ShardPartition& partition() const QPGC_LIFETIME_BOUND {
    return *part_;
  }
  /// Shared handle for routers/pins that may outlive the manager.
  std::shared_ptr<const ShardPartition> partition_ptr() const { return part_; }

  /// Per-shard manager access (writer-side; same threading contract as the
  /// writer entry points above).
  SnapshotManager& shard(uint32_t s) QPGC_LIFETIME_BOUND { return *shards_[s]; }
  const SnapshotManager& shard(uint32_t s) const QPGC_LIFETIME_BOUND {
    return *shards_[s];
  }

 private:
  // Live cross-shard edge counts into each ghost node. Written only by the
  // owning shard's writer; published snapshots share an immutable sorted
  // copy that is rebuilt only when the exit *membership* changed (refcount
  // moves across zero) — refcount-only churn republishes the same vector.
  struct ExitTable {
    std::unordered_map<NodeId, uint32_t> refcount;
    std::shared_ptr<const std::vector<NodeId>> published;
    bool dirty = true;

    std::shared_ptr<const std::vector<NodeId>> Current();
  };

  // Live cross-shard edge counts into each *owned* node of one shard —
  // the mirror image of ExitTable, but written by the *other* shards'
  // writers (the shard owning an edge's source applies it), so everything
  // here is mutex-guarded; Current() shares the same
  // rebuild-only-on-membership-change vector discipline.
  struct EntryTable {
    Mutex mu;
    std::unordered_map<NodeId, uint32_t> refcount QPGC_GUARDED_BY(mu);
    std::shared_ptr<const std::vector<NodeId>> published QPGC_GUARDED_BY(mu);
    bool dirty QPGC_GUARDED_BY(mu) = true;

    std::shared_ptr<const std::vector<NodeId>> Current() QPGC_EXCLUDES(mu);
  };

  std::shared_ptr<const ShardPartition> part_;
  std::vector<std::unique_ptr<ExitTable>> exits_;
  std::vector<std::unique_ptr<EntryTable>> entries_;
  std::vector<std::unique_ptr<SnapshotManager>> shards_;
};

}  // namespace qpgc

#endif  // QPGC_SERVE_SHARDED_MANAGER_H_
