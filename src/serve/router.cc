// Copyright 2026 The QPGC Authors.

#include "serve/router.h"

#include <algorithm>
#include <limits>

#include "core/pattern_scheme.h"
#include "serve/boundary_summary.h"
#include "util/common.h"

namespace qpgc {

StitchedPatternQuotient BuildStitchedPatternQuotient(
    const ShardPartition& part,
    const std::vector<std::shared_ptr<const ServingSnapshot>>& snaps) {
  const uint32_t num_shards = part.num_shards;
  QPGC_CHECK(snaps.size() == num_shards);

  // Frozen pattern sides are already compact (owned blocks only, ghost
  // blocks dropped; serve/snapshot.h), so stitched ids are just per-shard
  // block ranges laid end to end.
  std::vector<NodeId> base(num_shards + 1, 0);
  for (uint32_t s = 0; s < num_shards; ++s) {
    base[s + 1] =
        base[s] + static_cast<NodeId>(snaps[s]->pattern_gr().num_nodes());
  }
  const size_t total = base[num_shards];

  StitchedPatternQuotient st;
  st.origin.resize(total);
  // Direct CSR assembly (no dynamic-Graph round trip): per-shard intra
  // edges are a uniform base[s] shift of already sorted frozen runs, so a
  // node's stitched run only needs re-sorting when cross-shard redirects
  // were appended to it.
  std::vector<Label> labels(total);
  std::vector<uint64_t> offsets(total + 1, 0);
  size_t edge_estimate = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    edge_estimate += snaps[s]->pattern_gr().num_edges() +
                     snaps[s]->pattern_cross_edges().size();
  }
  std::vector<NodeId> targets;
  targets.reserve(edge_estimate);
  for (uint32_t s = 0; s < num_shards; ++s) {
    const CsrGraph& gr = snaps[s]->pattern_gr();
    // Cross-shard quotient edges, sorted by source block (RefreezeMapped
    // collects them in traversal order): redirect each ghost-directed edge
    // to the ghost's block in its home shard (where the ghost is owned, so
    // its pattern_map entry is valid).
    const std::vector<std::pair<NodeId, NodeId>>& cross =
        snaps[s]->pattern_cross_edges();
    size_t ci = 0;
    for (NodeId c = 0; c < gr.num_nodes(); ++c) {
      const NodeId id = base[s] + c;
      st.origin[id] = {s, c};
      labels[id] = gr.label(c);
      const size_t run_begin = targets.size();
      for (const NodeId t : gr.OutNeighbors(c)) targets.push_back(base[s] + t);
      bool redirected = false;
      while (ci < cross.size() && cross[ci].first == c) {
        const NodeId ghost = cross[ci].second;
        const uint32_t home = part.shard_of[ghost];
        const NodeId home_block = snaps[home]->pattern_map()[ghost];
        QPGC_DCHECK(home_block != kInvalidNode);
        targets.push_back(base[home] + home_block);
        redirected = true;
        ++ci;
      }
      if (redirected) {
        // Redirects land out of order and may collapse onto one home
        // block: re-sort and dedupe this run only.
        std::sort(targets.begin() + run_begin, targets.end());
        targets.erase(std::unique(targets.begin() + run_begin, targets.end()),
                      targets.end());
      }
      offsets[id + 1] = targets.size();
    }
    QPGC_DCHECK(ci == cross.size());
  }
  st.gr.AdoptCsr(std::move(offsets), std::move(targets), std::move(labels));
  // Global node map: every node is owned by exactly one shard, where its
  // pattern_map entry is a compact (owned) block id.
  st.node_map.resize(part.num_nodes());
  for (NodeId v = 0; v < part.num_nodes(); ++v) {
    const uint32_t s = part.shard_of[v];
    const NodeId block = snaps[s]->pattern_map()[v];
    QPGC_DCHECK(block != kInvalidNode);
    st.node_map[v] = base[s] + block;
  }
  return st;
}

PinnedShards::PinnedShards(
    std::shared_ptr<const ShardPartition> part,
    std::vector<std::shared_ptr<const ServingSnapshot>> snaps,
    std::shared_ptr<StitchCache> stitch_cache)
    : part_(std::move(part)),
      snaps_(std::move(snaps)),
      stitch_cache_(std::move(stitch_cache)) {
  QPGC_CHECK(part_ != nullptr && snaps_.size() == part_->num_shards);
  for (const auto& snap : snaps_) QPGC_CHECK(snap != nullptr);
}

std::shared_ptr<const StitchedPatternQuotient> StitchCache::Stitch(
    const ShardPartition& part,
    const std::vector<std::shared_ptr<const ServingSnapshot>>& snaps) {
  const uint32_t num_shards = part.num_shards;
  {
    MutexLock lock(mu_);
    stats_.segments_total += num_shards;
    size_t carried = 0;
    if (sides_.size() == num_shards) {
      for (uint32_t s = 0; s < num_shards; ++s) {
        if (sides_[s] == snaps[s]->pattern_side()) ++carried;
      }
    }
    stats_.segments_reused += carried;
    if (stitched_ != nullptr && carried == num_shards) {
      ++stats_.full_reuses;
      return stitched_;
    }
  }
  // Assemble outside the lock; a concurrent racer builds its own equally
  // valid quotient and the last writer wins the cache slot.
  auto built = std::make_shared<const StitchedPatternQuotient>(
      BuildStitchedPatternQuotient(part, snaps));
  MutexLock lock(mu_);
  ++stats_.builds;
  sides_.resize(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    sides_[s] = snaps[s]->pattern_side();
  }
  stitched_ = built;
  return built;
}

StitchCache::Stats StitchCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::vector<uint64_t> PinnedShards::versions() const {
  std::vector<uint64_t> versions;
  versions.reserve(snaps_.size());
  for (const auto& snap : snaps_) versions.push_back(snap->version());
  return versions;
}

bool PinnedShards::SameVersions(
    const std::vector<std::shared_ptr<const ServingSnapshot>>& snaps) const {
  if (snaps.size() != snaps_.size()) return false;
  for (size_t s = 0; s < snaps.size(); ++s) {
    if (snaps[s]->version() != snaps_[s]->version()) return false;
  }
  return true;
}

// The stitched route graph, built once per version vector: the per-shard
// frozen boundary summaries fused into ONE block-granularity CSR the
// routed-reach loop can walk with a single stamp array.
//
// Nodes ("gids") come in two flavors. Real gids [0, G) are all shards'
// summary nodes laid end to end; a real gid is *visited* — some non-empty
// path ends in its block — so its exits may be emitted freely. Virtual
// gids [G, 2G) mirror them as *entered* states: an exit whose home-shard
// entry block is summary node m contributes one edge to virtual(m), whose
// only out-edges are m's intra-shard successors as real gids. The split is
// what keeps both soundness and the hub bound: entering a shard at block m
// must not emit m's exits (the new segment would be empty; an exit in m's
// own block is reachable non-emptily iff m is cyclic, i.e. m's self-loop
// makes real(m) a successor of virtual(m)), yet m's fan-out — thousands of
// entries collapse onto few hub blocks — is scanned at most TWICE per
// query (once per flavor), not once per discovering exit. Emission itself
// is precomputed into per-real-gid annotation rows:
//
//  * finals: the (home shard, home reach-quotient block) of every known
//    entry among the gid's exits, deduplicated — the case-3 final sweep
//    seeds from the rows whose home is shard_of(v). Pruned entries (their
//    block reaches no exit of their home shard) are still listed: they
//    cannot continue the boundary walk, but their block may well reach a
//    target *inside* the home shard.
//  * stale_exits: exits unknown to their home's frozen summary (their
//    first cross-shard in-edge landed after that shard's last publish) —
//    the live-sweep fallback queue feeds from these.
//
// The mask tables are the same three facts keyed by exit *index* (the
// order ResolveWave's exit mask uses) instead of by gid, plus the reverse
// case-2 lookup. Everything the hot loops touch is therefore either a
// sequential row scan or a stamp probe into one gid-sized array — the
// previous per-(shard, node) scheme spent most of the query re-deriving
// these facts through node-indexed random loads.
struct RouteTables {
  size_t num_real = 0;  // G; gids [G, 2G) are the virtual mirrors
  size_t num_gids = 0;  // 2G

  // All row bounds of one real gid in one struct — a pop costs one cache
  // line of metadata instead of probes into three offset arrays. A virtual
  // gid has no row of its own: its whole adjacency is the mirrored row's
  // intra run, [adj_begin, intra_end).
  struct Row {
    uint32_t adj_begin;    // intra edges first ...
    uint32_t intra_end;    // ... then cross edges to virtual gids
    uint32_t adj_end;
    uint32_t final_begin;  // (home shard, home block) per known entry
    uint32_t final_end;
    uint32_t stale_begin;  // exits unknown to their home's summary
    uint32_t stale_end;
  };
  std::vector<Row> rows;  // [real gid]
  std::vector<NodeId> adj;
  std::vector<uint16_t> final_home;
  std::vector<NodeId> final_block;
  std::vector<NodeId> stale_exits;

  // One packed row per boundary exit — the mask side reads one struct
  // where it used to stride three arrays.
  struct MaskRow {
    NodeId seed_gid;  // virtual gid of the exit's entry block
                      // (kInvalidNode: stale exit or pruned block)
    NodeId block;     // home quotient block; kInvalidNode marks stale
    uint16_t home;    // valid when block != kInvalidNode
  };
  struct Shard {
    std::vector<MaskRow> mask;          // parallel to boundary_exits()
    std::vector<NodeId> mask_emit_gid;  // reverse case-2 lookup: the real
                                        // gid of THIS shard emitting the
                                        // exit (kInvalidNode if its block
                                        // was pruned — then no walk emits
                                        // it)
  };
  std::vector<Shard> shards;
};

namespace {

// Per-thread scratch for the routed Reach search: reused containers keep
// the per-query allocation count at zero in steady state. The visit-mark
// families are epoch-stamped, so "clearing" them is one counter bump per
// query, not a sweep.
struct RouteScratch {
  std::vector<NodeId> reached;         // ResolveWave's reached exit indices
  std::vector<NodeId> stale_queue;     // entries needing live-sweep fallback
  std::vector<uint32_t> node_stamp;    // [node] = epoch; stale-exit dedup
  // Quotient blocks (pre-mapped) of visited entries owned by shard_of(v),
  // each distinct block once (block_stamp dedups at insert).
  std::vector<NodeId> final_sources;
  std::vector<uint32_t> block_stamp;   // [target-shard block] = epoch
  std::vector<NodeId> gid_stack;       // route-graph traversal frontier
  std::vector<uint32_t> gid_stamp;     // [gid] = epoch; the one visit mark
  std::vector<NodeId> case2_gids;      // gids emitting v (at most one per
                                       // shard v is an exit of)
  uint32_t epoch = 0;
};

thread_local RouteScratch t_route_scratch;

// Packed routing fact for one boundary node, used only while building the
// route tables: bit 63 = the node was a known entry of its home shard's
// frozen summary, bits 32..47 = the home shard, low 32 bits = the entry
// block's summary node (kNoSummaryNode when pruned). Zero = stale/unknown.
constexpr uint64_t kRouteKnown = uint64_t{1} << 63;

constexpr uint64_t PackRoute(uint32_t shard, NodeId summary_node) {
  return kRouteKnown | (uint64_t{shard} << 32) | uint64_t{summary_node};
}

}  // namespace

PinnedShards::~PinnedShards() = default;

const RouteTables& PinnedShards::route_tables() const {
  std::call_once(route_tables_once_, [this] {
    auto tables = std::make_unique<RouteTables>();
    const uint32_t num_shards = part_->num_shards;
    // Dense per-node routing facts, one pass over the frozen entry tables.
    // Entries of shard s are owned by s, so the fills are disjoint; nodes
    // left at zero (never an entry, or their home shard's summary predates
    // them) are the stale exits. Build-time scratch only.
    std::vector<uint64_t> routes(part_->num_nodes(), 0);
    for (uint32_t s = 0; s < num_shards; ++s) {
      const FrozenBoundarySummary* summary = snaps_[s]->boundary_summary();
      if (summary == nullptr || summary->entries_ptr() == nullptr) continue;
      const std::vector<NodeId>& entries = *summary->entries_ptr();
      const std::span<const NodeId> nodes = summary->entry_summary_nodes();
      for (size_t i = 0; i < entries.size(); ++i) {
        routes[entries[i]] = PackRoute(s, nodes[i]);
      }
    }

    // Gid layout: each shard's summary nodes laid end to end (real), then
    // the virtual mirrors.
    std::vector<NodeId> base(num_shards + 1, 0);
    for (uint32_t s = 0; s < num_shards; ++s) {
      const FrozenBoundarySummary* summary = snaps_[s]->boundary_summary();
      base[s + 1] =
          base[s] +
          static_cast<NodeId>(summary == nullptr ? 0 : summary->num_nodes());
    }
    const NodeId real_gids = base[num_shards];
    tables->num_real = real_gids;
    tables->num_gids = size_t{2} * real_gids;

    // Per-source-gid dedup stamps (a node's exits collapse onto few entry
    // blocks — one virtual edge and one finals row per distinct block).
    std::vector<uint32_t> gid_mark(real_gids, 0);
    std::vector<std::vector<uint32_t>> block_mark(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      block_mark[s].assign(snaps_[s]->reach_gr().num_nodes(), 0);
    }
    uint32_t stamp = 0;

    tables->rows.resize(real_gids);
    tables->shards.resize(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      const FrozenBoundarySummary* summary = snaps_[s]->boundary_summary();
      if (summary == nullptr) continue;
      for (NodeId n = 0; n < summary->num_nodes(); ++n) {
        RouteTables::Row& row = tables->rows[base[s] + n];
        ++stamp;
        row.adj_begin = static_cast<uint32_t>(tables->adj.size());
        row.final_begin = static_cast<uint32_t>(tables->final_home.size());
        row.stale_begin = static_cast<uint32_t>(tables->stale_exits.size());
        // Intra-shard summary edges first (real targets) — this prefix
        // doubles as the virtual mirror's adjacency.
        for (const NodeId next : summary->OutNeighbors(n)) {
          tables->adj.push_back(base[s] + next);
        }
        row.intra_end = static_cast<uint32_t>(tables->adj.size());
        for (const NodeId x : summary->ExitsAt(n)) {
          const uint64_t route = routes[x];
          if ((route & kRouteKnown) == 0) {
            tables->stale_exits.push_back(x);
            continue;
          }
          const uint32_t home = static_cast<uint32_t>(route >> 32) & 0xFFFF;
          const NodeId block = snaps_[home]->reach_map()[x];
          if (block_mark[home][block] != stamp) {
            block_mark[home][block] = stamp;
            tables->final_home.push_back(static_cast<uint16_t>(home));
            tables->final_block.push_back(block);
          }
          const NodeId m = static_cast<NodeId>(route);
          if (m == FrozenBoundarySummary::kNoSummaryNode) continue;
          // One cross edge per distinct entry block, to its virtual mirror.
          const NodeId g2 = base[home] + m;
          if (gid_mark[g2] != stamp) {
            gid_mark[g2] = stamp;
            tables->adj.push_back(real_gids + g2);
          }
        }
        row.adj_end = static_cast<uint32_t>(tables->adj.size());
        row.final_end = static_cast<uint32_t>(tables->final_home.size());
        row.stale_end = static_cast<uint32_t>(tables->stale_exits.size());
      }
    }

    // Mask tables: the same routing facts keyed by exit index, plus the
    // reverse case-2 lookup.
    for (uint32_t s = 0; s < num_shards; ++s) {
      RouteTables::Shard& t = tables->shards[s];
      const std::vector<NodeId>& exits = snaps_[s]->boundary_exits();
      t.mask.resize(exits.size());
      t.mask_emit_gid.assign(exits.size(), kInvalidNode);
      for (size_t i = 0; i < exits.size(); ++i) {
        RouteTables::MaskRow& row = t.mask[i];
        const uint64_t route = routes[exits[i]];
        if ((route & kRouteKnown) == 0) {
          row = {kInvalidNode, kInvalidNode, 0};
          continue;
        }
        const uint32_t home = static_cast<uint32_t>(route >> 32) & 0xFFFF;
        const NodeId m = static_cast<NodeId>(route);
        row.home = static_cast<uint16_t>(home);
        row.block = snaps_[home]->reach_map()[exits[i]];
        row.seed_gid = m == FrozenBoundarySummary::kNoSummaryNode
                           ? kInvalidNode
                           : real_gids + base[home] + m;
      }
      const FrozenBoundarySummary* summary = snaps_[s]->boundary_summary();
      if (summary == nullptr) continue;
      const std::span<const NodeId> grouped = summary->exit_nodes();
      for (NodeId n = 0; n < summary->num_nodes(); ++n) {
        const auto [pb, pe] = summary->ExitRangeAt(n);
        for (size_t pos = pb; pos < pe; ++pos) {
          const auto it =
              std::lower_bound(exits.begin(), exits.end(), grouped[pos]);
          QPGC_DCHECK(it != exits.end() && *it == grouped[pos]);
          t.mask_emit_gid[it - exits.begin()] = base[s] + n;
        }
      }
    }
    route_tables_ = std::move(tables);
  });
  return *route_tables_;
}

bool PinnedShards::Reach(NodeId u, NodeId v, PathMode mode) const {
  const ShardPartition& part = *part_;
  QPGC_CHECK(u < part.num_nodes() && v < part.num_nodes());
  // Single shard: no boundaries to cross, the local snapshot is the global
  // answer (also keeps the K = 1 router at snapshot speed).
  if (part.num_shards == 1) return snaps_[0]->Reach(u, v, mode);
  if (mode == PathMode::kReflexive && u == v) return true;
  // All remaining cases need a non-empty global path. Three cases cover one
  // (the soundness argument of docs/SHARDING.md): the path stays inside
  // shard_of(u); or it ends exactly at a boundary node; or its last
  // within-shard segment starts at a visited entry owned by shard_of(v).
  // Case 1 costs one sweep of shard_of(u)'s quotient, case 3 one sweep of
  // shard_of(v)'s; everything in between walks the frozen boundary
  // summaries, each summary node expanding at most once per query.
  const uint32_t num_shards = part.num_shards;
  const uint32_t target_shard = part.shard_of[v];
  const RouteTables& tables = route_tables();
  RouteScratch& scratch = t_route_scratch;
  if (scratch.node_stamp.size() < part.num_nodes()) {
    scratch.node_stamp.resize(part.num_nodes(), 0);
  }
  if (scratch.gid_stamp.size() < tables.num_gids) {
    scratch.gid_stamp.resize(tables.num_gids, 0);
  }
  const size_t target_blocks = snaps_[target_shard]->reach_gr().num_nodes();
  if (scratch.block_stamp.size() < target_blocks) {
    scratch.block_stamp.resize(target_blocks, 0);
  }
  if (scratch.epoch == std::numeric_limits<uint32_t>::max()) {
    std::fill(scratch.gid_stamp.begin(), scratch.gid_stamp.end(), 0);
    std::fill(scratch.node_stamp.begin(), scratch.node_stamp.end(), 0);
    std::fill(scratch.block_stamp.begin(), scratch.block_stamp.end(), 0);
    scratch.epoch = 0;
  }
  const uint32_t epoch = ++scratch.epoch;
  scratch.stale_queue.clear();
  scratch.final_sources.clear();
  scratch.gid_stack.clear();

  // Case-2 lookup, once per query: the gids whose exit annotation holds v
  // (at most one per shard v is an exit of). Popping one means some
  // selected block reaches v, i.e. a global path ends exactly at boundary
  // node v — so the per-exit `x == v` comparison leaves the hot loops
  // entirely, replaced by at most num_shards compares per pop.
  scratch.case2_gids.clear();
  for (uint32_t s = 0; s < num_shards; ++s) {
    const std::vector<NodeId>& exits = snaps_[s]->boundary_exits();
    const auto it = std::lower_bound(exits.begin(), exits.end(), v);
    if (it != exits.end() && *it == v) {
      const NodeId g = tables.shards[s].mask_emit_gid[it - exits.begin()];
      if (g != kInvalidNode) scratch.case2_gids.push_back(g);
    }
  }

  const auto push_gid = [&scratch, epoch](NodeId g) {
    if (scratch.gid_stamp[g] != epoch) {
      scratch.gid_stamp[g] = epoch;
      scratch.gid_stack.push_back(g);
    }
  };
  const auto push_final = [&scratch, epoch](NodeId block) {
    if (scratch.block_stamp[block] != epoch) {
      scratch.block_stamp[block] = epoch;
      scratch.final_sources.push_back(block);
    }
  };

  // Turns shard s's ResolveWave reached-exit indices (into its
  // boundary_exits()) into route-graph steps off the mask tables: case-3
  // bookkeeping when the target shard owns the exit, entry-block seed
  // pushes, or the stale fallback queue. No exit here can equal v: v being
  // an exit of the swept shard means v's block was stamped, so ResolveWave
  // itself returned true.
  const auto enqueue_reached_exits = [&scratch, &tables, target_shard,
                                      epoch, &push_gid, &push_final](
                                         uint32_t s,
                                         const ServingSnapshot& snap) {
    const std::vector<NodeId>& exits = snap.boundary_exits();
    const RouteTables::Shard& t = tables.shards[s];
    for (const NodeId i : scratch.reached) {
      const RouteTables::MaskRow& row = t.mask[i];
      if (row.block == kInvalidNode) {
        const NodeId x = exits[i];
        if (scratch.node_stamp[x] != epoch) {
          scratch.node_stamp[x] = epoch;
          scratch.stale_queue.push_back(x);
        }
        continue;
      }
      if (row.home == target_shard) push_final(row.block);
      if (row.seed_gid != kInvalidNode) push_gid(row.seed_gid);
    }
  };

  // Case 1 + seeding: one sweep over shard_of(u)'s full quotient resolves
  // v-within-the-home-shard and every boundary exit u reaches.
  scratch.node_stamp[u] = epoch;  // u itself never needs the stale fallback
  {
    const uint32_t s = part.shard_of[u];
    const ServingSnapshot& snap = *snaps_[s];
    const NodeId sources[1] = {u};
    if (snap.ResolveWave(sources, v, scratch.reached)) return true;
    enqueue_reached_exits(s, snap);
  }

  size_t head = 0;
  while (true) {
    // Drain the route-graph traversal first: a visited gid either answers
    // case 2 outright (the precomputed case2_gids) or streams its
    // annotation rows — case-3 blocks, stale exits — and its dedup'd
    // successor edges.
    while (!scratch.gid_stack.empty()) {
      const NodeId g = scratch.gid_stack.back();
      scratch.gid_stack.pop_back();
      if (g >= tables.num_real) {
        // Virtual mirror: an "entered at this block" state. Its only moves
        // are the block's intra-shard successors (the real row's intra
        // prefix); annotations belong to the real flavor.
        const RouteTables::Row& row = tables.rows[g - tables.num_real];
        for (uint32_t j = row.adj_begin; j < row.intra_end; ++j) {
          push_gid(tables.adj[j]);
        }
        continue;
      }
      const RouteTables::Row& row = tables.rows[g];
      for (const NodeId tg : scratch.case2_gids) {
        if (g == tg) return true;
      }
      for (uint32_t j = row.final_begin; j < row.final_end; ++j) {
        if (tables.final_home[j] == target_shard) {
          push_final(tables.final_block[j]);
        }
      }
      for (uint32_t j = row.stale_begin; j < row.stale_end; ++j) {
        const NodeId x = tables.stale_exits[j];
        if (scratch.node_stamp[x] != epoch) {
          scratch.node_stamp[x] = epoch;
          scratch.stale_queue.push_back(x);
        }
      }
      for (uint32_t j = row.adj_begin; j < row.adj_end; ++j) {
        push_gid(tables.adj[j]);
      }
    }
    if (head >= scratch.stale_queue.size()) break;
    // Stale entry: live sweep of its home shard's full quotient. The sweep
    // checks v itself, so nothing is lost by skipping the summary — in
    // particular a stale entry owned by the target shard needs no case-3
    // bookkeeping, because this sweep IS its final-sweep contribution.
    const NodeId entry = scratch.stale_queue[head++];
    const uint32_t s = part.shard_of[entry];
    const ServingSnapshot& snap = *snaps_[s];
    const NodeId sources[1] = {entry};
    if (snap.ResolveWave(sources, v, scratch.reached)) return true;
    enqueue_reached_exits(s, snap);
  }

  // Case 3: one final sweep inside shard_of(v) from every visited entry it
  // owns (non-empty semantics — an entry equal to v was already caught as
  // case 2 before it could be visited), seeded straight from the
  // pre-mapped entry blocks. No exit mask: only the target verdict matters
  // here.
  if (scratch.final_sources.empty()) return false;
  return snaps_[target_shard]->ResolveTargetBlocks(scratch.final_sources, v);
}

MatchResult PinnedShards::Match(const PatternQuery& q) const {
  // Single shard: the local quotient is the global quotient.
  if (part_->num_shards == 1) return snaps_[0]->Match(q);
  // Match on the stitched quotient, then the shared expansion P over the
  // stitched node map (ascending answer sets, fixpoint at stitched-block
  // granularity — mirroring the single-manager behavior).
  const StitchedPatternQuotient& st = stitched();
  return ExpandMatchWith(
      st.gr.num_nodes(), st.node_map,
      [&](NodeId block) {
        const auto& [s, c] = st.origin[block];
        return snaps_[s]->pattern_block_members(c);
      },
      qpgc::Match(st.gr, q));
}

bool PinnedShards::BooleanMatch(const PatternQuery& q) const {
  if (part_->num_shards == 1) return snaps_[0]->BooleanMatch(q);
  return qpgc::BooleanMatch(stitched().gr, q);
}

const StitchedPatternQuotient& PinnedShards::stitched() const {
  std::call_once(stitched_once_, [this] {
    if (stitch_cache_ != nullptr) {
      stitched_ = stitch_cache_->Stitch(*part_, snaps_);
    } else {
      stitched_ = std::make_shared<const StitchedPatternQuotient>(
          BuildStitchedPatternQuotient(*part_, snaps_));
    }
  });
  return *stitched_;
}

std::shared_ptr<const PinnedShards> ShardedQueryService::Pin() const {
  std::vector<std::shared_ptr<const ServingSnapshot>> snaps =
      manager_.AcquireAll();
  {
    MutexLock lock(pins_mu_);
    if (pins_ != nullptr && pins_->SameVersions(snaps)) return pins_;
  }
  // Build the fresh pin outside the lock (the stitched quotient inside it
  // stays lazy anyway); last writer wins on a rebuild race, and either
  // result is a valid pin of its own version vector.
  auto pins = std::make_shared<const PinnedShards>(
      manager_.partition_ptr(), std::move(snaps), stitch_cache_);
  MutexLock lock(pins_mu_);
  pins_ = pins;
  return pins;
}

}  // namespace qpgc
