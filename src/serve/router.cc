// Copyright 2026 The QPGC Authors.

#include "serve/router.h"

#include <unordered_set>

#include "core/pattern_scheme.h"
#include "graph/builder.h"
#include "util/common.h"

namespace qpgc {

StitchedPatternQuotient BuildStitchedPatternQuotient(
    const ShardPartition& part,
    const std::vector<std::shared_ptr<const ServingSnapshot>>& snaps) {
  const uint32_t num_shards = part.num_shards;
  QPGC_CHECK(snaps.size() == num_shards);

  // Frozen pattern sides are already compact (owned blocks only, ghost
  // blocks dropped; serve/snapshot.h), so stitched ids are just per-shard
  // block ranges laid end to end.
  std::vector<NodeId> base(num_shards + 1, 0);
  for (uint32_t s = 0; s < num_shards; ++s) {
    base[s + 1] =
        base[s] + static_cast<NodeId>(snaps[s]->pattern_gr().num_nodes());
  }
  const size_t total = base[num_shards];

  StitchedPatternQuotient st;
  st.origin.resize(total);
  GraphBuilder builder(total);
  for (uint32_t s = 0; s < num_shards; ++s) {
    const CsrGraph& gr = snaps[s]->pattern_gr();
    for (NodeId c = 0; c < gr.num_nodes(); ++c) {
      const NodeId id = base[s] + c;
      st.origin[id] = {s, c};
      builder.SetLabel(id, gr.label(c));
      for (const NodeId t : gr.OutNeighbors(c)) {
        builder.AddEdge(id, base[s] + t);
      }
    }
    // Cross-shard quotient edges: redirect each ghost-directed edge to the
    // ghost's block in its home shard (where the ghost is owned, so its
    // pattern_map entry is valid). GraphBuilder dedupes redirects that
    // collapse onto one home block.
    for (const auto& [block, ghost] : snaps[s]->pattern_cross_edges()) {
      const uint32_t home = part.shard_of[ghost];
      const NodeId home_block = snaps[home]->pattern_map()[ghost];
      QPGC_DCHECK(home_block != kInvalidNode);
      builder.AddEdge(base[s] + block, base[home] + home_block);
    }
  }
  const Graph stitched = builder.Build();
  st.gr = CsrGraph(stitched);
  // Global node map: every node is owned by exactly one shard, where its
  // pattern_map entry is a compact (owned) block id.
  st.node_map.resize(part.num_nodes());
  for (NodeId v = 0; v < part.num_nodes(); ++v) {
    const uint32_t s = part.shard_of[v];
    const NodeId block = snaps[s]->pattern_map()[v];
    QPGC_DCHECK(block != kInvalidNode);
    st.node_map[v] = base[s] + block;
  }
  return st;
}

PinnedShards::PinnedShards(
    std::shared_ptr<const ShardPartition> part,
    std::vector<std::shared_ptr<const ServingSnapshot>> snaps)
    : part_(std::move(part)), snaps_(std::move(snaps)) {
  QPGC_CHECK(part_ != nullptr && snaps_.size() == part_->num_shards);
  for (const auto& snap : snaps_) QPGC_CHECK(snap != nullptr);
}

std::vector<uint64_t> PinnedShards::versions() const {
  std::vector<uint64_t> versions;
  versions.reserve(snaps_.size());
  for (const auto& snap : snaps_) versions.push_back(snap->version());
  return versions;
}

bool PinnedShards::SameVersions(
    const std::vector<std::shared_ptr<const ServingSnapshot>>& snaps) const {
  if (snaps.size() != snaps_.size()) return false;
  for (size_t s = 0; s < snaps.size(); ++s) {
    if (snaps[s]->version() != snaps_[s]->version()) return false;
  }
  return true;
}

namespace {

// Per-thread scratch for the boundary-crossing search: reused containers
// keep the per-query allocation count at zero in steady state.
struct RouteScratch {
  std::vector<std::vector<NodeId>> pending;
  std::unordered_set<NodeId> entered;
  std::vector<char> reached;
};

thread_local RouteScratch t_route_scratch;

}  // namespace

bool PinnedShards::Reach(NodeId u, NodeId v, PathMode mode) const {
  const ShardPartition& part = *part_;
  QPGC_CHECK(u < part.num_nodes() && v < part.num_nodes());
  // Single shard: no boundaries to cross, the local snapshot is the global
  // answer (also keeps the K = 1 router at snapshot speed).
  if (part.num_shards == 1) return snaps_[0]->Reach(u, v, mode);
  if (mode == PathMode::kReflexive && u == v) return true;
  // All remaining cases need a non-empty global path. BFS over entry nodes:
  // nodes where a path (re-)enters the shard that owns them. Per wave, one
  // multi-source sweep per touched shard resolves v and every boundary exit
  // at once.
  const uint32_t num_shards = part.num_shards;
  RouteScratch& scratch = t_route_scratch;
  if (scratch.pending.size() < num_shards) scratch.pending.resize(num_shards);
  std::vector<std::vector<NodeId>>& pending = scratch.pending;
  for (auto& p : pending) p.clear();
  std::unordered_set<NodeId>& entered = scratch.entered;
  entered.clear();
  pending[part.shard_of[u]].push_back(u);
  entered.insert(u);
  std::vector<char>& reached = scratch.reached;
  bool progress = true;
  while (progress) {
    progress = false;
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (pending[s].empty()) continue;
      // Safe to sweep in place: an exit of shard s is owned elsewhere, so
      // this wave never appends to pending[s] while processing it.
      const std::vector<NodeId>& sources = pending[s];
      const ServingSnapshot& snap = *snaps_[s];
      const std::vector<NodeId>& exits = snap.boundary_exits();
      const bool target_reached = snap.ResolveWave(sources, v, reached);
      pending[s].clear();
      if (target_reached) return true;  // some entry reaches v within s
      for (size_t i = 0; i < exits.size(); ++i) {
        if (!reached[i]) continue;
        // An exit is owned by another shard by definition; continue there.
        const NodeId exit = exits[i];
        QPGC_DCHECK(part.shard_of[exit] != s);
        if (entered.insert(exit).second) {
          pending[part.shard_of[exit]].push_back(exit);
          progress = true;
        }
      }
    }
  }
  return false;
}

MatchResult PinnedShards::Match(const PatternQuery& q) const {
  // Single shard: the local quotient is the global quotient.
  if (part_->num_shards == 1) return snaps_[0]->Match(q);
  // Match on the stitched quotient, then the shared expansion P over the
  // stitched node map (ascending answer sets, fixpoint at stitched-block
  // granularity — mirroring the single-manager behavior).
  const StitchedPatternQuotient& st = stitched();
  return ExpandMatchWith(
      st.gr.num_nodes(), st.node_map,
      [&](NodeId block) {
        const auto& [s, c] = st.origin[block];
        return snaps_[s]->pattern_block_members(c);
      },
      qpgc::Match(st.gr, q));
}

bool PinnedShards::BooleanMatch(const PatternQuery& q) const {
  if (part_->num_shards == 1) return snaps_[0]->BooleanMatch(q);
  return qpgc::BooleanMatch(stitched().gr, q);
}

const StitchedPatternQuotient& PinnedShards::stitched() const {
  std::call_once(stitched_once_, [this] {
    stitched_ = std::make_unique<const StitchedPatternQuotient>(
        BuildStitchedPatternQuotient(*part_, snaps_));
  });
  return *stitched_;
}

std::shared_ptr<const PinnedShards> ShardedQueryService::Pin() const {
  std::vector<std::shared_ptr<const ServingSnapshot>> snaps =
      manager_.AcquireAll();
  {
    MutexLock lock(pins_mu_);
    if (pins_ != nullptr && pins_->SameVersions(snaps)) return pins_;
  }
  // Build the fresh pin outside the lock (the stitched quotient inside it
  // stays lazy anyway); last writer wins on a rebuild race, and either
  // result is a valid pin of its own version vector.
  auto pins = std::make_shared<const PinnedShards>(manager_.partition_ptr(),
                                                   std::move(snaps));
  MutexLock lock(pins_mu_);
  pins_ = pins;
  return pins;
}

}  // namespace qpgc
