// Copyright 2026 The QPGC Authors.

#include "serve/load_gen.h"

#include <algorithm>

#include "pattern/pattern_gen.h"
#include "util/hash.h"

namespace qpgc {

WorkloadSampler::WorkloadSampler(const ReaderWorkload& workload,
                                 size_t num_nodes)
    : workload_(workload), num_nodes_(num_nodes) {
  QPGC_CHECK(num_nodes_ > 0);
  if (workload_.mode == ReaderWorkload::Mode::kZipfHotSet) {
    const size_t hot = std::max<size_t>(
        1, std::min(workload_.hot_set_size, num_nodes_ * num_nodes_));
    zipf_.emplace(hot, workload_.zipf_s);
  }
}

std::pair<NodeId, NodeId> WorkloadSampler::SampleReachPair(Rng& rng) const {
  if (workload_.mode == ReaderWorkload::Mode::kUniform) {
    return {static_cast<NodeId>(rng.Uniform(num_nodes_)),
            static_cast<NodeId>(rng.Uniform(num_nodes_))};
  }
  // Replay the hot pair of a Zipf-drawn rank. The rank -> pair mapping is a
  // pure hash of (hot_seed, rank), so every reader shares one hot set while
  // the endpoints still spread over the whole graph.
  const uint64_t rank = zipf_->Sample(rng);
  return {static_cast<NodeId>(Mix64(workload_.hot_seed + 2 * rank) %
                              num_nodes_),
          static_cast<NodeId>(Mix64(workload_.hot_seed + 2 * rank + 1) %
                              num_nodes_)};
}

size_t WorkloadSampler::SamplePatternIndex(Rng& rng,
                                           size_t num_patterns) const {
  QPGC_DCHECK(num_patterns > 0);
  if (workload_.mode == ReaderWorkload::Mode::kUniform) {
    return rng.Uniform(num_patterns);
  }
  return zipf_->Sample(rng) % num_patterns;
}

std::vector<PatternQuery> ServeLoadPatterns(const Graph& g, size_t count,
                                            uint64_t seed) {
  std::vector<PatternQuery> patterns;
  if (g.CountDistinctLabels() <= 1) return patterns;
  PatternGenOptions options;
  options.num_nodes = 3;
  options.num_edges = 3;
  options.max_bound = 2;
  const std::vector<Label> labels = DistinctLabels(g);
  patterns.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    patterns.push_back(RandomPattern(labels, options, seed + i));
  }
  return patterns;
}

UpdateBatch RandomShardLocalBatch(const Graph& shard_graph,
                                  std::span<const NodeId> owned, size_t count,
                                  double insert_fraction, uint64_t seed) {
  UpdateBatch batch;
  if (owned.empty()) return batch;
  Rng rng(seed);
  const size_t n = shard_graph.num_nodes();
  for (size_t i = 0; i < count; ++i) {
    const NodeId u = owned[rng.Uniform(owned.size())];
    if (rng.UniformDouble() < insert_fraction) {
      const NodeId v = static_cast<NodeId>(rng.Uniform(n));
      if (u != v) batch.Insert(u, v);
    } else {
      const auto out = shard_graph.OutNeighbors(u);
      if (!out.empty()) batch.Delete(u, out[rng.Uniform(out.size())]);
    }
  }
  return batch;
}

}  // namespace qpgc
