// Copyright 2026 The QPGC Authors.

#include "serve/load_gen.h"

#include "pattern/pattern_gen.h"

namespace qpgc {

std::vector<PatternQuery> ServeLoadPatterns(const Graph& g, size_t count,
                                            uint64_t seed) {
  std::vector<PatternQuery> patterns;
  if (g.CountDistinctLabels() <= 1) return patterns;
  PatternGenOptions options;
  options.num_nodes = 3;
  options.num_edges = 3;
  options.max_bound = 2;
  const std::vector<Label> labels = DistinctLabels(g);
  patterns.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    patterns.push_back(RandomPattern(labels, options, seed + i));
  }
  return patterns;
}

UpdateBatch RandomShardLocalBatch(const Graph& shard_graph,
                                  std::span<const NodeId> owned, size_t count,
                                  double insert_fraction, uint64_t seed) {
  UpdateBatch batch;
  if (owned.empty()) return batch;
  Rng rng(seed);
  const size_t n = shard_graph.num_nodes();
  for (size_t i = 0; i < count; ++i) {
    const NodeId u = owned[rng.Uniform(owned.size())];
    if (rng.UniformDouble() < insert_fraction) {
      const NodeId v = static_cast<NodeId>(rng.Uniform(n));
      if (u != v) batch.Insert(u, v);
    } else {
      const auto out = shard_graph.OutNeighbors(u);
      if (!out.empty()) batch.Delete(u, out[rng.Uniform(out.size())]);
    }
  }
  return batch;
}

}  // namespace qpgc
