// Copyright 2026 The QPGC Authors.

#include "serve/load_gen.h"

#include "pattern/pattern_gen.h"
#include "util/rng.h"

namespace qpgc {

std::vector<PatternQuery> ServeLoadPatterns(const Graph& g, size_t count,
                                            uint64_t seed) {
  std::vector<PatternQuery> patterns;
  if (g.CountDistinctLabels() <= 1) return patterns;
  PatternGenOptions options;
  options.num_nodes = 3;
  options.num_edges = 3;
  options.max_bound = 2;
  const std::vector<Label> labels = DistinctLabels(g);
  patterns.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    patterns.push_back(RandomPattern(labels, options, seed + i));
  }
  return patterns;
}

ReaderLoadCounters RunReaderLoad(const QueryService& service,
                                 const std::vector<PatternQuery>& patterns,
                                 uint64_t seed,
                                 const std::atomic<bool>& stop) {
  ReaderLoadCounters counters;
  Rng rng(seed);
  while (!stop.load(std::memory_order_relaxed)) {
    const auto snap = service.Pin();
    const size_t n = snap->original_num_nodes();
    for (int i = 0; i < 64; ++i) {
      (void)snap->Reach(static_cast<NodeId>(rng.Uniform(n)),
                        static_cast<NodeId>(rng.Uniform(n)));
      ++counters.reach_queries;
    }
    if (!patterns.empty()) {
      (void)snap->BooleanMatch(patterns[rng.Uniform(patterns.size())]);
      ++counters.match_queries;
    }
  }
  return counters;
}

}  // namespace qpgc
