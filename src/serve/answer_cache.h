// Copyright 2026 The QPGC Authors.
//
// Answer-caching serving tier: a per-snapshot-version memo cache in front of
// QueryService / ShardedQueryService, so repeated traffic is answered by
// remembering work instead of redoing it. Three lookup tiers run before any
// quotient walk:
//
//  1. *Exact*: a bounded open-addressing table keyed on the canonical reach
//     pair. Unsharded serving canonicalizes endpoints to reach-quotient
//     block ids via the snapshot node map, so one cached answer serves every
//     pair of nodes in the same blocks; sharded serving keys on original
//     node ids (a node's global reach identity is NOT determined by its
//     home-shard block — it may have in-edges in other shards — so
//     block-level transfer would be unsound there; see docs/CACHING.md).
//  2. *Subsumption*: per-canonical-endpoint compact sets of known-true and
//     known-false facts. A cached true reach(u→w) plus true reach(w→v)
//     answers reach(u→v) true; a cached false reach(u→d) plus true
//     reach(v→d) — or true reach(a→u) plus false reach(a→v) — answers
//     reach(u→v) false. All three rules are pure transitivity, sound on any
//     fixed graph (the klee-mc CexCachingSolver superset/subset shape).
//  3. *Negative match*: BooleanMatch misses keyed on the full canonical
//     pattern serialization (bucketed by its structural hash, compared by
//     bytes — a hash collision can never fabricate an answer; the klee-mc
//     PoisonCache shape).
//
// Invalidation is the snapshot lifetime model itself: every cache attaches
// to one immutable artifact version, a publish starts a cold cache for the
// new version, and pinned readers keep their warm cache alive exactly as
// long as their pin. Everything here follows the statically enforced
// concurrency/lifetime layers: annotated qpgc::Mutex per cache shard (no
// raw atomics), pins held by value, bounded memory with clock-style
// overwrite eviction. Counters come back through CacheStats.

#ifndef QPGC_SERVE_ANSWER_CACHE_H_
#define QPGC_SERVE_ANSWER_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pattern/match.h"
#include "pattern/pattern.h"
#include "serve/query_service.h"
#include "serve/router.h"
#include "serve/snapshot.h"
#include "util/thread_annotations.h"

namespace qpgc {

/// Tuning knobs for one AnswerCache (all sizes are hard bounds; the cache
/// never allocates past them — overwrite eviction, not growth).
struct AnswerCacheOptions {
  /// Enable the subsumption tier (tier 2).
  bool subsumption = true;
  /// Enable the negative BooleanMatch cache (tier 3).
  bool negative_match = true;
  /// Exact reach table capacity, in entries (rounded up to a power of two).
  size_t reach_capacity = 1 << 16;
  /// Negative match cache capacity, in entries.
  size_t match_capacity = 1 << 10;
  /// Per-endpoint bound on each subsumption fact set (true/false × in/out).
  size_t facts_per_endpoint = 16;
  /// Bound on distinct endpoints tracked by the subsumption index.
  size_t subsumption_endpoints = 1 << 12;
  /// How many snapshot versions keep live caches at once; publishing past
  /// this retires the oldest (pinned readers holding its handle keep using
  /// it until they unpin — the stats snapshot freezes at retirement).
  size_t max_versions = 4;

  /// Tier-1-only configuration (qpgc_tool --cache=exact).
  static AnswerCacheOptions ExactOnly() {
    AnswerCacheOptions o;
    o.subsumption = false;
    o.negative_match = false;
    return o;
  }
};

/// Counter snapshot for one cache (or one aggregation of caches).
struct CacheStats {
  uint64_t reach_exact_hits = 0;
  uint64_t reach_subsumption_hits = 0;
  uint64_t reach_misses = 0;
  uint64_t reach_inserts = 0;
  uint64_t reach_evictions = 0;
  uint64_t match_negative_hits = 0;
  uint64_t match_misses = 0;
  uint64_t match_inserts = 0;
  uint64_t match_evictions = 0;

  uint64_t reach_hits() const { return reach_exact_hits + reach_subsumption_hits; }
  /// Fraction of reach lookups answered from the cache (0 when idle).
  double ReachHitRate() const {
    const uint64_t total = reach_hits() + reach_misses;
    return total == 0 ? 0.0 : static_cast<double>(reach_hits()) / total;
  }
  CacheStats& operator+=(const CacheStats& other);
};

/// The full canonical serialization of a pattern (node count, labels, edges
/// with bounds). Byte-equal keys <=> structurally identical patterns, which
/// is what makes the negative cache sound under hash collisions.
std::string CanonicalPatternKey(const PatternQuery& q);

/// The memo state of ONE artifact version: a sharded-by-key, annotated-mutex
/// table bank. Thread-safe for any number of concurrent readers; lookups
/// mutate only counters, stamps, and fact sets under per-shard mutexes.
class VersionAnswerCache {
 public:
  enum class ReachHit : uint8_t {
    kMiss,
    kTrue,           // exact tier
    kFalse,          // exact tier
    kSubsumedTrue,   // subsumption tier
    kSubsumedFalse,  // subsumption tier
  };

  VersionAnswerCache(uint64_t version_id, const AnswerCacheOptions& options);

  VersionAnswerCache(const VersionAnswerCache&) = delete;
  VersionAnswerCache& operator=(const VersionAnswerCache&) = delete;

  uint64_t version_id() const { return version_id_; }
  const AnswerCacheOptions& options() const { return options_; }

  /// Tier 1 then (on miss, if enabled) tier 2 for the canonical pair
  /// (cu, cv). A subsumption hit is promoted into the exact table.
  ReachHit LookupReach(uint64_t cu, uint64_t cv);

  /// Records a freshly evaluated (or subsumed) canonical reach fact.
  void InsertReach(uint64_t cu, uint64_t cv, bool answer);

  /// Tier 3: true iff `key` is a known BooleanMatch miss.
  bool LookupNegativeMatch(const std::string& key);

  /// Records a BooleanMatch outcome; only misses are stored (tier 3 is a
  /// negative cache), but hits still count as match_misses for the rate.
  void InsertMatchOutcome(const std::string& key, bool matched);

  /// Sums the per-shard counters.
  CacheStats Stats() const;

 private:
  static constexpr size_t kNumShards = 16;
  /// Linear-probe window of the exact table; a full window overwrites the
  /// stalest entry (clock-style eviction) instead of rehashing.
  static constexpr size_t kProbeWindow = 8;

  struct ReachEntry {
    uint64_t cu = 0;
    uint64_t cv = 0;
    uint32_t stamp = 0;
    uint8_t state = 0;  // 0 = empty, 1 = cached false, 2 = cached true
  };

  // A bounded unordered fact set with ring-cursor overwrite at capacity.
  struct FactSet {
    std::vector<uint64_t> items;
    size_t cursor = 0;

    bool Contains(uint64_t x) const;
    /// Returns true when an existing fact was overwritten (an eviction).
    bool Add(uint64_t x, size_t cap);
  };

  struct EndpointFacts {
    FactSet true_out;   // {w : reach(this -> w) cached true}
    FactSet true_in;    // {a : reach(a -> this) cached true}
    FactSet false_out;  // {d : reach(this -> d) cached false}
    FactSet false_in;   // {a : reach(a -> this) cached false}
  };

  struct Shard {
    mutable Mutex mu;
    std::vector<ReachEntry> slots QPGC_GUARDED_BY(mu);
    uint32_t tick QPGC_GUARDED_BY(mu) = 0;
    std::unordered_map<uint64_t, EndpointFacts> facts QPGC_GUARDED_BY(mu);
    std::unordered_map<std::string, uint32_t> negative QPGC_GUARDED_BY(mu);
    CacheStats stats QPGC_GUARDED_BY(mu);
  };

  Shard& PairShard(uint64_t cu, uint64_t cv);
  Shard& EndpointShard(uint64_t c);
  Shard& KeyShard(const std::string& key);
  /// Copies endpoint c's fact sets out under its shard lock (empty sets when
  /// the endpoint is untracked), so set intersection runs lock-free.
  EndpointFacts SnapshotFacts(uint64_t c);
  void RecordFact(uint64_t endpoint, uint64_t other, bool answer, bool out);

  const uint64_t version_id_;
  const AnswerCacheOptions options_;
  const size_t slots_per_shard_;  // power of two
  Shard shards_[kNumShards];
};

/// The cache bank a cached service owns: per-version caches created on
/// demand, at most options.max_versions live at once. Thread-safe.
class AnswerCache {
 public:
  explicit AnswerCache(AnswerCacheOptions options = {});

  /// The cache attached to `version_id`, creating a cold one on first use
  /// (and retiring the oldest live version past the bound).
  std::shared_ptr<VersionAnswerCache> ForVersion(uint64_t version_id);

  /// Aggregated counters: all live versions plus retired versions' final
  /// snapshots.
  CacheStats Stats() const;

  const AnswerCacheOptions& options() const { return options_; }

 private:
  const AnswerCacheOptions options_;
  mutable Mutex mu_;
  std::vector<std::shared_ptr<VersionAnswerCache>> live_ QPGC_GUARDED_BY(mu_);
  CacheStats retired_ QPGC_GUARDED_BY(mu_);
};

/// A pinned ServingSnapshot plus its version's cache, with the snapshot's
/// query surface (what CachedQueryService::Pin() returns — duck-compatible
/// with RunReaderLoad). Owns shared handles; copy/share freely.
class CachedSnapshot {
 public:
  CachedSnapshot(std::shared_ptr<const ServingSnapshot> snap,
                 std::shared_ptr<VersionAnswerCache> cache)
      : snap_(std::move(snap)), cache_(std::move(cache)) {}

  uint64_t version() const { return snap_->version(); }
  size_t original_num_nodes() const { return snap_->original_num_nodes(); }

  /// QR(u, v) through the cache tiers; canonical key = reach-quotient block
  /// pair under non-empty-path semantics (the reflexive diagonal never
  /// reaches the cache).
  bool Reach(NodeId u, NodeId v, PathMode mode = PathMode::kReflexive,
             ReachAlgorithm algo = ReachAlgorithm::kBfs) const;

  /// Full matches are not memoized (answer sets are large); pass-through.
  MatchResult Match(const PatternQuery& q) const { return snap_->Match(q); }

  /// BooleanMatch through the negative cache.
  bool BooleanMatch(const PatternQuery& q) const;

  const ServingSnapshot& snapshot() const { return *snap_; }

 private:
  std::shared_ptr<const ServingSnapshot> snap_;
  std::shared_ptr<VersionAnswerCache> cache_;
};

/// Caching facade over a SnapshotManager: QueryService's surface plus
/// cache_stats(). Publishes cold-start naturally — Pin() attaches the cache
/// keyed by the pinned snapshot's version.
class CachedQueryService {
 public:
  explicit CachedQueryService(const SnapshotManager& manager,
                              AnswerCacheOptions options = {})
      : manager_(manager), cache_(options) {}

  /// Pins the current snapshot together with its version's cache.
  std::shared_ptr<const CachedSnapshot> Pin() const;

  bool Reach(NodeId u, NodeId v, PathMode mode = PathMode::kReflexive,
             ReachAlgorithm algo = ReachAlgorithm::kBfs) const {
    return Pin()->Reach(u, v, mode, algo);
  }
  MatchResult Match(const PatternQuery& q) const { return Pin()->Match(q); }
  bool BooleanMatch(const PatternQuery& q) const {
    return Pin()->BooleanMatch(q);
  }

  CacheStats cache_stats() const { return cache_.Stats(); }
  const AnswerCacheOptions& cache_options() const { return cache_.options(); }

 private:
  const SnapshotManager& manager_;
  mutable AnswerCache cache_;
  // Guards only the cached pin wrapper (one allocation per version, not per
  // Pin call); queries run lock-free on the pinned snapshot.
  mutable Mutex pin_mu_;
  mutable std::shared_ptr<const CachedSnapshot> pin_ QPGC_GUARDED_BY(pin_mu_);
};

/// A pinned version vector plus its cache, with the PinnedShards query
/// surface. Canonical reach keys are original node ids (see file comment).
class CachedPinnedShards {
 public:
  CachedPinnedShards(std::shared_ptr<const PinnedShards> pins,
                     std::shared_ptr<VersionAnswerCache> cache)
      : pins_(std::move(pins)), cache_(std::move(cache)) {}

  size_t original_num_nodes() const { return pins_->original_num_nodes(); }

  /// Global QR(u, v) through the cache tiers.
  bool Reach(NodeId u, NodeId v, PathMode mode = PathMode::kReflexive) const;

  MatchResult Match(const PatternQuery& q) const { return pins_->Match(q); }

  /// Global BooleanMatch through the negative cache.
  bool BooleanMatch(const PatternQuery& q) const;

  const PinnedShards& pins() const { return *pins_; }

 private:
  std::shared_ptr<const PinnedShards> pins_;
  std::shared_ptr<VersionAnswerCache> cache_;
};

/// Caching facade over a ShardedSnapshotManager. Each distinct pinned
/// version vector gets a fresh cache id (version vectors are not totally
/// ordered, so ids are allocated per distinct pin — aliasing two vectors to
/// one cache would be unsound; the worst case is a cold cache).
class CachedShardedQueryService {
 public:
  explicit CachedShardedQueryService(const ShardedSnapshotManager& manager,
                                     AnswerCacheOptions options = {})
      : inner_(manager), cache_(options) {}

  /// Pins the current version vector together with its cache.
  std::shared_ptr<const CachedPinnedShards> Pin() const;

  bool Reach(NodeId u, NodeId v, PathMode mode = PathMode::kReflexive) const {
    return Pin()->Reach(u, v, mode);
  }
  MatchResult Match(const PatternQuery& q) const { return Pin()->Match(q); }
  bool BooleanMatch(const PatternQuery& q) const {
    return Pin()->BooleanMatch(q);
  }

  CacheStats cache_stats() const { return cache_.Stats(); }
  const AnswerCacheOptions& cache_options() const { return cache_.options(); }

 private:
  ShardedQueryService inner_;
  mutable AnswerCache cache_;
  // Guards the cached pin wrapper and the cache-id allocator.
  mutable Mutex pin_mu_;
  mutable std::shared_ptr<const CachedPinnedShards> pin_
      QPGC_GUARDED_BY(pin_mu_);
  mutable uint64_t next_cache_id_ QPGC_GUARDED_BY(pin_mu_) = 1;
};

}  // namespace qpgc

#endif  // QPGC_SERVE_ANSWER_CACHE_H_
