// Copyright 2026 The QPGC Authors.
//
// Query routing over sharded serving snapshots (serve/sharded_manager.h):
// the read-path half of sharded serving. Answers are *exact* — bit-identical
// to evaluating on the unsharded graph — for all three query classes:
//
//  * Reach(u, v): boundary-graph search over the frozen per-shard boundary
//    summaries (serve/boundary_summary.h). Any global path decomposes into
//    maximal within-shard segments stitched at ghost nodes (a segment's
//    edges all live in the shard owning its sources; the segment ends where
//    a non-owned target — a boundary exit — is reached). Three cases cover
//    a path u -> v: (1) it stays in shard_of(u) — resolved by ONE
//    multi-source sweep over that shard's full reach quotient, which also
//    seeds the boundary search with every exit u reaches; (2) it ends
//    exactly at a boundary node — detected when the search visits that
//    node; (3) its last segment starts at a visited entry owned by
//    shard_of(v) — resolved by one final multi-source sweep over
//    shard_of(v)'s quotient. Everything in between runs on the summaries:
//    each visited entry seeds its block's summary node, summary nodes
//    expand at most once per query, and stamped exit annotations become
//    entries of their home shards. An entry with no summary row (its first
//    cross-shard in-edge landed after its home shard's last publish) falls
//    back to a live quotient sweep, so exactness never depends on publish
//    ordering. Per query that is ~2 full sweeps plus a walk of the (much
//    smaller) pruned summaries — this is what closed the routed-reach
//    cliff; docs/SHARDING.md gives the full soundness argument.
//
//  * Match / BooleanMatch(q): evaluated on the *stitched pattern quotient*.
//    Ghost nodes carry per-node unique labels (graph/shard_view.h), so
//    every ghost is a singleton block of its shard's local bisimulation and
//    two owned nodes merge only when their cross-shard successors are
//    identical nodes. The union of the per-shard partitions (restricted to
//    owned nodes) is therefore a bisimulation on the WHOLE graph, and the
//    graph obtained by taking all owned blocks and redirecting edges into
//    ghost singletons to the ghost's home block is exactly the quotient of
//    the global graph by that bisimulation. Quotients by any bisimulation —
//    not just the maximum one — preserve bounded-simulation matches
//    (Theorem 4's proof only uses stability), so Match on the stitched
//    quotient, expanded through the per-shard member indexes, equals Match
//    on the original graph. The stitched quotient is built lazily once per
//    pinned version vector; the service-level StitchCache additionally
//    reuses it across version vectors whose pattern sides all carried over
//    (reach-only publishes) and counts per-shard segment reuse — the
//    stitch_reuse_ratio metric.
//
// Consistency model: each query pins one snapshot per shard (a version
// vector). Because shards own disjoint edge sets, ANY version vector is a
// legitimate global state — the graph whose shard-s edges are at shard s's
// version — so concurrent per-shard writers never produce a cut that
// corresponds to no graph. Callers needing multi-query consistency hold one
// PinnedShards across the queries.
//
// Thread-safety: ShardedQueryService and PinnedShards are safe for
// concurrent use from any number of reader threads. The service must not
// outlive its manager; a PinnedShards may (it owns shared handles to the
// snapshots and the partition). The pin-cache locking discipline is part of
// the statically enforced capability model in docs/CONCURRENCY.md.

#ifndef QPGC_SERVE_ROUTER_H_
#define QPGC_SERVE_ROUTER_H_

#include <memory>
#include <mutex>  // std::once_flag (the pin cache lock is qpgc::Mutex)
#include <utility>
#include <vector>

#include "graph/csr.h"
#include "graph/shard_view.h"
#include "pattern/match.h"
#include "pattern/pattern.h"
#include "serve/sharded_manager.h"
#include "serve/snapshot.h"
#include "util/lifetime_annotations.h"
#include "util/thread_annotations.h"

namespace qpgc {

/// The cross-shard pattern quotient stitched from per-shard frozen
/// bisimulation quotients (see file comment). Immutable once built.
struct StitchedPatternQuotient {
  /// The stitched quotient graph: one node per *owned* block across all
  /// shards, edges redirected through ghost singletons to home blocks.
  CsrGraph gr;
  /// origin[b] = (shard, local block id) of stitched node b — the key into
  /// that shard's member index for the expansion P.
  std::vector<std::pair<uint32_t, NodeId>> origin;
  /// node_map[v] = stitched block of original node v (via v's home shard) —
  /// what lets the expansion P emit ascending answer sets with the shared
  /// block-mask pass instead of a comparison sort.
  std::vector<NodeId> node_map;
};

/// Builds the stitched quotient for one pinned snapshot vector. Exposed for
/// tests; queries normally go through PinnedShards, which builds and caches
/// it lazily.
StitchedPatternQuotient BuildStitchedPatternQuotient(
    const ShardPartition& part,
    const std::vector<std::shared_ptr<const ServingSnapshot>>& snaps);

class PinnedShards;
struct RouteTables;  // router.cc: per-shard boundary routing tables

/// Cross-pin stitch cache, one per ShardedQueryService. A publish bumps a
/// shard's version even when only its reach side moved, but the stitched
/// pattern quotient depends only on the frozen *pattern* sides — which are
/// pointer-shared across such versions (serve/snapshot_manager.h skips the
/// pattern refreeze when no pattern update was kept). The cache keys on
/// those pointers: when every shard's pattern side carried over, the
/// previous stitched quotient is returned outright; otherwise it rebuilds
/// and records how many per-shard segments carried over unchanged. The
/// reused/total segment counts are the stitch_reuse_ratio metric
/// (docs/SHARDING.md#incremental-stitch).
class StitchCache {
 public:
  struct Stats {
    /// Stitched quotients actually assembled / served straight from cache.
    uint64_t builds = 0;
    uint64_t full_reuses = 0;
    /// Per-shard segments considered across all Stitch() calls, and how
    /// many of them had an unchanged frozen pattern side.
    uint64_t segments_total = 0;
    uint64_t segments_reused = 0;

    double reuse_ratio() const {
      return segments_total == 0
                 ? 0.0
                 : static_cast<double>(segments_reused) / segments_total;
    }
  };

  /// Returns the stitched quotient for `snaps`, from cache when every
  /// shard's pattern side is unchanged. Thread-safe.
  std::shared_ptr<const StitchedPatternQuotient> Stitch(
      const ShardPartition& part,
      const std::vector<std::shared_ptr<const ServingSnapshot>>& snaps)
      QPGC_EXCLUDES(mu_);

  Stats stats() const QPGC_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<std::shared_ptr<const FrozenPatternSide>> sides_
      QPGC_GUARDED_BY(mu_);
  std::shared_ptr<const StitchedPatternQuotient> stitched_
      QPGC_GUARDED_BY(mu_);
  Stats stats_ QPGC_GUARDED_BY(mu_);
};

/// A consistent pinned vector of per-shard snapshots with the query surface
/// of a single ServingSnapshot. Create via ShardedQueryService::Pin() (or
/// directly from AcquireAll() in tests). Non-copyable; share by shared_ptr.
class PinnedShards {
 public:
  /// `stitch_cache` may be null (tests / direct pins): the stitched
  /// quotient is then built from scratch for this pin.
  PinnedShards(std::shared_ptr<const ShardPartition> part,
               std::vector<std::shared_ptr<const ServingSnapshot>> snaps,
               std::shared_ptr<StitchCache> stitch_cache = nullptr);

  PinnedShards(const PinnedShards&) = delete;
  PinnedShards& operator=(const PinnedShards&) = delete;
  ~PinnedShards();  // out of line: RouteTables is incomplete here

  /// |V| of the (global) original graph.
  size_t original_num_nodes() const { return part_->num_nodes(); }
  /// Per-shard snapshot versions, index = shard id.
  std::vector<uint64_t> versions() const;
  /// True iff this pin holds exactly the given snapshots (version check,
  /// index-wise).
  bool SameVersions(
      const std::vector<std::shared_ptr<const ServingSnapshot>>& snaps) const;

  /// Global QR(u, v) via boundary-crossing search (see file comment).
  bool Reach(NodeId u, NodeId v, PathMode mode = PathMode::kReflexive) const;

  /// Global maximum match of q: Match on the stitched quotient, expanded
  /// through the per-shard member indexes, answer sets ascending.
  MatchResult Match(const PatternQuery& q) const;

  /// Global Boolean pattern query — stitched quotient, no expansion.
  bool BooleanMatch(const PatternQuery& q) const;

  /// Shard s's pinned snapshot / the partition (for direct shard-local
  /// access and stats). Valid while this pin lives — the pin-scope rule of
  /// docs/LIFETIMES.md applies to the whole version vector at once.
  const ServingSnapshot& shard(uint32_t s) const QPGC_LIFETIME_BOUND {
    return *snaps_[s];
  }
  uint32_t num_shards() const { return part_->num_shards; }
  const ShardPartition& partition() const QPGC_LIFETIME_BOUND {
    return *part_;
  }

  /// The stitched pattern quotient for this version vector (built on first
  /// use, then cached for the pin's lifetime; thread-safe).
  const StitchedPatternQuotient& stitched() const QPGC_LIFETIME_BOUND;

 private:
  /// Per-shard routing tables for the boundary search, laid out parallel to
  /// the frozen exit lists so the hot loops stream them sequentially
  /// instead of probing per-node hash/entry tables; built lazily once per
  /// version vector (router.cc has the layout).
  const RouteTables& route_tables() const QPGC_LIFETIME_BOUND;

  std::shared_ptr<const ShardPartition> part_;
  std::vector<std::shared_ptr<const ServingSnapshot>> snaps_;
  std::shared_ptr<StitchCache> stitch_cache_;
  mutable std::once_flag stitched_once_;
  mutable std::shared_ptr<const StitchedPatternQuotient> stitched_;
  mutable std::once_flag route_tables_once_;
  mutable std::unique_ptr<const RouteTables> route_tables_;
};

/// The sharded counterpart of QueryService: each call pins a version vector
/// once and routes against it. Pin() results are cached per version vector,
/// so the stitched quotient is rebuilt only when some shard published.
class ShardedQueryService {
 public:
  explicit ShardedQueryService(const ShardedSnapshotManager& manager)
      : manager_(manager), stitch_cache_(std::make_shared<StitchCache>()) {}

  /// Pins the current per-shard snapshots (for multi-query consistency).
  /// Returns the cached pin when no shard has published since.
  std::shared_ptr<const PinnedShards> Pin() const;

  /// Global QR(u, v) against the current version vector.
  bool Reach(NodeId u, NodeId v, PathMode mode = PathMode::kReflexive) const {
    return Pin()->Reach(u, v, mode);
  }

  /// Global maximum match against the current version vector.
  MatchResult Match(const PatternQuery& q) const { return Pin()->Match(q); }

  /// Global Boolean pattern query against the current version vector.
  bool BooleanMatch(const PatternQuery& q) const {
    return Pin()->BooleanMatch(q);
  }

  /// Stitched-quotient reuse counters across this service's pins (the
  /// stitch_reuse_ratio metric).
  StitchCache::Stats stitch_stats() const { return stitch_cache_->stats(); }

 private:
  const ShardedSnapshotManager& manager_;
  const std::shared_ptr<StitchCache> stitch_cache_;
  // Guards only the cached pin; queries run on the pinned snapshots
  // lock-free once Pin() returns.
  mutable Mutex pins_mu_;
  mutable std::shared_ptr<const PinnedShards> pins_
      QPGC_GUARDED_BY(pins_mu_);
};

}  // namespace qpgc

#endif  // QPGC_SERVE_ROUTER_H_
