// Copyright 2026 The QPGC Authors.
//
// QueryService: the thin read-path facade over a SnapshotManager. Each call
// pins the current published snapshot once and routes the query against it,
// so a query always sees one consistent version even while the writer keeps
// publishing. Callers that issue several queries against the same version
// should Pin() once and query the snapshot directly.
//
// Thread-safety contract: any number of threads may share one QueryService
// concurrently with the manager's single writer; every entry point is a
// lock-free snapshot pin plus read-only evaluation. The referenced
// SnapshotManager must outlive the service; pinned snapshots returned by
// Pin() may outlive both (see serve/snapshot.h). The sharded counterpart
// with the same surface is ShardedQueryService (serve/router.h). The
// serving layer's capability model is documented in docs/CONCURRENCY.md.

#ifndef QPGC_SERVE_QUERY_SERVICE_H_
#define QPGC_SERVE_QUERY_SERVICE_H_

#include <memory>

#include "serve/snapshot_manager.h"

namespace qpgc {

/// Pin-per-query facade over one SnapshotManager (see file comment for the
/// thread-safety and lifetime contracts).
class QueryService {
 public:
  explicit QueryService(const SnapshotManager& manager) : manager_(manager) {}

  /// Pins the current snapshot (for multi-query consistency). The snapshot
  /// stays valid and immutable for as long as the handle lives, across any
  /// number of later publishes.
  std::shared_ptr<const ServingSnapshot> Pin() const {
    return manager_.Acquire();
  }

  /// QR(u, v) against the current snapshot.
  bool Reach(NodeId u, NodeId v, PathMode mode = PathMode::kReflexive,
             ReachAlgorithm algo = ReachAlgorithm::kBfs) const;

  /// Maximum match of q against the current snapshot, expanded via P.
  MatchResult Match(const PatternQuery& q) const;

  /// Boolean pattern query against the current snapshot.
  bool BooleanMatch(const PatternQuery& q) const;

 private:
  const SnapshotManager& manager_;
};

}  // namespace qpgc

#endif  // QPGC_SERVE_QUERY_SERVICE_H_
