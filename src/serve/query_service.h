// Copyright 2026 The QPGC Authors.
//
// QueryService: the thin read-path facade over a SnapshotManager. Each call
// pins the current published snapshot once and routes the query against it,
// so a query always sees one consistent version even while the writer keeps
// publishing. Callers that issue several queries against the same version
// should Pin() once and query the snapshot directly.
//
// Thread-safe: any number of threads may share one QueryService. The
// referenced SnapshotManager must outlive it.

#ifndef QPGC_SERVE_QUERY_SERVICE_H_
#define QPGC_SERVE_QUERY_SERVICE_H_

#include <memory>

#include "serve/snapshot_manager.h"

namespace qpgc {

class QueryService {
 public:
  explicit QueryService(const SnapshotManager& manager) : manager_(manager) {}

  /// Pins the current snapshot (for multi-query consistency).
  std::shared_ptr<const ServingSnapshot> Pin() const {
    return manager_.Acquire();
  }

  /// QR(u, v) against the current snapshot.
  bool Reach(NodeId u, NodeId v, PathMode mode = PathMode::kReflexive,
             ReachAlgorithm algo = ReachAlgorithm::kBfs) const;

  /// Maximum match of q against the current snapshot, expanded via P.
  MatchResult Match(const PatternQuery& q) const;

  /// Boolean pattern query against the current snapshot.
  bool BooleanMatch(const PatternQuery& q) const;

 private:
  const SnapshotManager& manager_;
};

}  // namespace qpgc

#endif  // QPGC_SERVE_QUERY_SERVICE_H_
