// Copyright 2026 The QPGC Authors.

#include "serve/sharded_manager.h"

#include <algorithm>
#include <utility>

#include "util/common.h"

namespace qpgc {

std::shared_ptr<const std::vector<NodeId>>
ShardedSnapshotManager::ExitTable::Current() {
  if (dirty) {
    auto exits = std::make_shared<std::vector<NodeId>>();
    exits->reserve(refcount.size());
    for (const auto& [v, count] : refcount) {
      QPGC_DCHECK(count > 0);
      exits->push_back(v);
    }
    std::sort(exits->begin(), exits->end());
    published = std::move(exits);
    dirty = false;
  }
  return published;
}

std::shared_ptr<const std::vector<NodeId>>
ShardedSnapshotManager::EntryTable::Current() {
  MutexLock lock(mu);
  if (dirty) {
    auto entries = std::make_shared<std::vector<NodeId>>();
    entries->reserve(refcount.size());
    for (const auto& [v, count] : refcount) {
      QPGC_DCHECK(count > 0);
      entries->push_back(v);
    }
    std::sort(entries->begin(), entries->end());
    published = std::move(entries);
    dirty = false;
  }
  return published;
}

ShardedSnapshotManager::ShardedSnapshotManager(const Graph& g,
                                               ShardedManagerOptions options) {
  QPGC_CHECK(options.num_shards >= 1);
  part_ = std::make_shared<const ShardPartition>(BuildPartition(
      options.partitioner, g, options.num_shards, options.partition_seed));

  exits_.resize(num_shards());
  entries_.resize(num_shards());
  for (uint32_t s = 0; s < num_shards(); ++s) {
    exits_[s] = std::make_unique<ExitTable>();
    entries_[s] = std::make_unique<EntryTable>();
  }
  // Seed both boundary tables from the initial cross-shard edges (still
  // single-threaded: no locks needed, but the annotations require them).
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const uint32_t su = part_->shard_of[u];
    for (const NodeId v : g.OutNeighbors(u)) {
      const uint32_t sv = part_->shard_of[v];
      if (sv == su) continue;
      ++exits_[su]->refcount[v];
      EntryTable& entry_table = *entries_[sv];
      MutexLock lock(entry_table.mu);
      ++entry_table.refcount[v];
    }
  }
  shards_.resize(num_shards());
  for (uint32_t s = 0; s < num_shards(); ++s) {
    // The providers bound here capture the tables, so even version 1
    // carries the right boundary sets (and their summary).
    ExitTable& exit_table = *exits_[s];
    EntryTable& entry_table = *entries_[s];
    SnapshotManagerOptions shard_options = options.shard_options;
    shard_options.boundary_exits_provider = [&exit_table] {
      return exit_table.Current();
    };
    shard_options.boundary_entries_provider = [&entry_table] {
      return entry_table.Current();
    };
    shards_[s] = std::make_unique<SnapshotManager>(
        MaterializeShard(g, *part_, s), std::move(shard_options));
  }
}

ShardedApplyStats ShardedSnapshotManager::Apply(const UpdateBatch& batch) {
  ShardedApplyStats stats;
  const std::vector<UpdateBatch> split = SplitBatchByShard(batch, *part_);
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (split[s].empty()) continue;
    ++stats.shards_touched;
    const ApplyStats applied = ApplyToShard(s, split[s]);
    stats.effective_updates += applied.effective_updates;
    stats.publishes += applied.published ? 1 : 0;
  }
  return stats;
}

ApplyStats ShardedSnapshotManager::ApplyToShard(uint32_t shard,
                                                const UpdateBatch& batch) {
  QPGC_CHECK(shard < num_shards());
  ExitTable& table = *exits_[shard];
  const ShardPartition& part = *part_;
  return shards_[shard]->Apply(batch, [&](const UpdateBatch& effective) {
    for (const EdgeUpdate& up : effective.updates) {
      QPGC_DCHECK(part.shard_of[up.u] == shard);
      const uint32_t target_shard = part.shard_of[up.v];
      if (target_shard == shard) continue;
      // This shard's exit table: lock-free under single-writer-per-shard.
      if (up.is_insert) {
        if (++table.refcount[up.v] == 1) table.dirty = true;
      } else {
        auto it = table.refcount.find(up.v);
        QPGC_CHECK(it != table.refcount.end() && it->second > 0);
        if (--it->second == 0) {
          table.refcount.erase(it);
          table.dirty = true;
        }
      }
      // The *target* shard's entry table: cross-thread (its owner's writer
      // publishes it), hence the lock. Note the target shard learns about
      // a new entry only at its own next publish; until then its frozen
      // summary has no row for it and the router falls back to a live
      // sweep for that entry (serve/router.cc) — exactness never depends
      // on publish ordering across shards.
      EntryTable& entry_table = *entries_[target_shard];
      MutexLock lock(entry_table.mu);
      if (up.is_insert) {
        if (++entry_table.refcount[up.v] == 1) entry_table.dirty = true;
      } else {
        auto it = entry_table.refcount.find(up.v);
        QPGC_CHECK(it != entry_table.refcount.end() && it->second > 0);
        if (--it->second == 0) {
          entry_table.refcount.erase(it);
          entry_table.dirty = true;
        }
      }
    }
  });
}

PublishStats ShardedSnapshotManager::PublishShard(uint32_t shard,
                                                  FreezeMode mode) {
  QPGC_CHECK(shard < num_shards());
  return shards_[shard]->Publish(mode);
}

std::vector<PublishStats> ShardedSnapshotManager::PublishAll(FreezeMode mode) {
  std::vector<PublishStats> stats;
  stats.reserve(num_shards());
  for (uint32_t s = 0; s < num_shards(); ++s) {
    stats.push_back(shards_[s]->Publish(mode));
  }
  return stats;
}

size_t ShardedSnapshotManager::BoundaryExitCount(uint32_t shard) const {
  QPGC_CHECK(shard < num_shards());
  return exits_[shard]->refcount.size();
}

size_t ShardedSnapshotManager::BoundaryEntryCount(uint32_t shard) const {
  QPGC_CHECK(shard < num_shards());
  EntryTable& table = *entries_[shard];
  MutexLock lock(table.mu);
  return table.refcount.size();
}

std::vector<std::shared_ptr<const ServingSnapshot>>
ShardedSnapshotManager::AcquireAll() const {
  std::vector<std::shared_ptr<const ServingSnapshot>> snaps;
  snaps.reserve(num_shards());
  for (uint32_t s = 0; s < num_shards(); ++s) {
    snaps.push_back(shards_[s]->Acquire());
  }
  return snaps;
}

}  // namespace qpgc
