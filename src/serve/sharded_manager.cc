// Copyright 2026 The QPGC Authors.

#include "serve/sharded_manager.h"

#include <algorithm>
#include <utility>

#include "util/common.h"

namespace qpgc {

std::shared_ptr<const std::vector<NodeId>>
ShardedSnapshotManager::ExitTable::Current() {
  if (dirty) {
    auto exits = std::make_shared<std::vector<NodeId>>();
    exits->reserve(refcount.size());
    for (const auto& [v, count] : refcount) {
      QPGC_DCHECK(count > 0);
      exits->push_back(v);
    }
    std::sort(exits->begin(), exits->end());
    published = std::move(exits);
    dirty = false;
  }
  return published;
}

ShardedSnapshotManager::ShardedSnapshotManager(const Graph& g,
                                               ShardedManagerOptions options) {
  QPGC_CHECK(options.num_shards >= 1);
  ShardPartition part =
      options.contiguous_partition
          ? ShardPartition::Contiguous(g.num_nodes(), options.num_shards)
          : ShardPartition::Hash(g.num_nodes(), options.num_shards,
                                 options.partition_seed);
  part_ = std::make_shared<const ShardPartition>(std::move(part));

  exits_.resize(num_shards());
  shards_.resize(num_shards());
  for (uint32_t s = 0; s < num_shards(); ++s) {
    // Seed the exit table from the initial cross-shard edges; the provider
    // bound below captures it, so even version 1 carries the right exits.
    exits_[s] = std::make_unique<ExitTable>();
    ExitTable& table = *exits_[s];
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (part_->shard_of[u] != s) continue;
      for (const NodeId v : g.OutNeighbors(u)) {
        if (part_->shard_of[v] != s) ++table.refcount[v];
      }
    }
    SnapshotManagerOptions shard_options = options.shard_options;
    shard_options.boundary_exits_provider = [&table] {
      return table.Current();
    };
    shards_[s] = std::make_unique<SnapshotManager>(
        MaterializeShard(g, *part_, s), std::move(shard_options));
  }
}

ShardedApplyStats ShardedSnapshotManager::Apply(const UpdateBatch& batch) {
  ShardedApplyStats stats;
  const std::vector<UpdateBatch> split = SplitBatchByShard(batch, *part_);
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (split[s].empty()) continue;
    ++stats.shards_touched;
    const ApplyStats applied = ApplyToShard(s, split[s]);
    stats.effective_updates += applied.effective_updates;
    stats.publishes += applied.published ? 1 : 0;
  }
  return stats;
}

ApplyStats ShardedSnapshotManager::ApplyToShard(uint32_t shard,
                                                const UpdateBatch& batch) {
  QPGC_CHECK(shard < num_shards());
  ExitTable& table = *exits_[shard];
  const ShardPartition& part = *part_;
  return shards_[shard]->Apply(batch, [&](const UpdateBatch& effective) {
    for (const EdgeUpdate& up : effective.updates) {
      QPGC_DCHECK(part.shard_of[up.u] == shard);
      if (part.shard_of[up.v] == shard) continue;
      if (up.is_insert) {
        if (++table.refcount[up.v] == 1) table.dirty = true;
      } else {
        auto it = table.refcount.find(up.v);
        QPGC_CHECK(it != table.refcount.end() && it->second > 0);
        if (--it->second == 0) {
          table.refcount.erase(it);
          table.dirty = true;
        }
      }
    }
  });
}

PublishStats ShardedSnapshotManager::PublishShard(uint32_t shard,
                                                  FreezeMode mode) {
  QPGC_CHECK(shard < num_shards());
  return shards_[shard]->Publish(mode);
}

std::vector<PublishStats> ShardedSnapshotManager::PublishAll(FreezeMode mode) {
  std::vector<PublishStats> stats;
  stats.reserve(num_shards());
  for (uint32_t s = 0; s < num_shards(); ++s) {
    stats.push_back(shards_[s]->Publish(mode));
  }
  return stats;
}

size_t ShardedSnapshotManager::BoundaryExitCount(uint32_t shard) const {
  QPGC_CHECK(shard < num_shards());
  return exits_[shard]->refcount.size();
}

std::vector<std::shared_ptr<const ServingSnapshot>>
ShardedSnapshotManager::AcquireAll() const {
  std::vector<std::shared_ptr<const ServingSnapshot>> snaps;
  snaps.reserve(num_shards());
  for (uint32_t s = 0; s < num_shards(); ++s) {
    snaps.push_back(shards_[s]->Acquire());
  }
  return snaps;
}

}  // namespace qpgc
