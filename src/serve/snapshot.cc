// Copyright 2026 The QPGC Authors.

#include "serve/snapshot.h"

#include "util/memory.h"

namespace qpgc {

void ServingSnapshot::Freeze(uint64_t version, const ReachCompression& rc,
                             const PatternCompression& pc) {
  version_ = version;
  // Copy-assignment reuses the destination buffers' capacity; Refreeze does
  // the same for the CSR arrays. Steady-state publishing therefore recycles
  // a retired snapshot's allocations wholesale.
  reach_gr_.Refreeze(rc.gr);
  reach_map_ = rc.node_map;
  pattern_gr_.Refreeze(pc.gr);
  pattern_map_ = pc.node_map;
  members_ = pc.members;
}

bool ServingSnapshot::Reach(NodeId u, NodeId v, PathMode mode,
                            ReachAlgorithm algo) const {
  QPGC_CHECK(u < reach_map_.size() && v < reach_map_.size());
  if (mode == PathMode::kReflexive && u == v) return true;
  // All remaining cases reduce to non-empty reachability on Gr: distinct
  // classes are connected iff any pair of their members is; equal classes
  // answer the diagonal through their self-loop (reach/queries.cc keeps the
  // same reduction for the unfrozen artifact).
  return EvalReach(reach_gr_, reach_map_[u], reach_map_[v],
                   PathMode::kNonEmpty, algo);
}

MatchResult ServingSnapshot::Match(const PatternQuery& q) const {
  return ExpandMatch(members_, pattern_map_, qpgc::Match(pattern_gr_, q));
}

bool ServingSnapshot::BooleanMatch(const PatternQuery& q) const {
  return qpgc::BooleanMatch(pattern_gr_, q);
}

size_t ServingSnapshot::MemoryBytes() const {
  return reach_gr_.MemoryBytes() + VectorBytes(reach_map_) +
         pattern_gr_.MemoryBytes() + VectorBytes(pattern_map_) +
         NestedVectorBytes(members_);
}

}  // namespace qpgc
