// Copyright 2026 The QPGC Authors.

#include "serve/snapshot.h"

#include <algorithm>
#include <utility>

#include "graph/shard_view.h"
#include "util/memory.h"

namespace qpgc {

void FrozenReachSide::Fill(const ReachCompression& rc) {
  // Copy-assignment reuses the destination buffers' capacity; Refreeze does
  // the same for the CSR arrays. Steady-state publishing therefore recycles
  // a retired side's allocations wholesale.
  gr.Refreeze(rc.gr);
  node_map = rc.node_map;
}

size_t FrozenReachSide::MemoryBytes() const {
  return gr.MemoryBytes() + VectorBytes(node_map);
}

namespace {

// Writer-side scratch for the ghost-dropping block permutation (one freeze
// runs at a time per writer thread; distinct managers freeze on distinct
// threads).
thread_local std::vector<NodeId> t_block_perm;

}  // namespace

void FrozenPatternSide::Fill(const PatternCompression& pc) {
  // Compact permutation: owned blocks keep their relative order and get
  // dense ids; ghost singleton blocks (synthetic labels) are dropped.
  const size_t num_blocks = pc.members.size();
  std::vector<NodeId>& perm = t_block_perm;
  perm.assign(num_blocks, kInvalidNode);
  NodeId owned_blocks = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    const Label label = pc.gr.label(static_cast<NodeId>(b));
    if (!IsGhostLabel(label)) {
      perm[b] = owned_blocks++;
    } else {
      // A block may only be dropped when it really is a ghost singleton
      // (label == GhostLabel(its sole member)). A *user* label that strays
      // into the ghost range would otherwise be dropped silently — fail
      // loudly instead: serving requires real labels below kGhostLabelBase
      // (graph/shard_view.h's LabelsShardable is the boundary check).
      QPGC_CHECK(pc.members[b].size() == 1 &&
                 label == GhostLabel(pc.members[b][0]));
    }
  }

  if (owned_blocks == num_blocks) {
    // No ghost blocks (every unsharded manager, and a K = 1 sharded one):
    // the permutation is the identity, so skip the per-edge remap in favor
    // of the bulk-copy freeze and plain map/member copies.
    gr.Refreeze(pc.gr);
    node_map = pc.node_map;
    member_offsets.assign(num_blocks + 1, 0);
    for (size_t c = 0; c < num_blocks; ++c) {
      member_offsets[c + 1] = member_offsets[c] + pc.members[c].size();
    }
    member_flat.resize(member_offsets[num_blocks]);
    for (size_t c = 0; c < num_blocks; ++c) {
      std::copy(pc.members[c].begin(), pc.members[c].end(),
                member_flat.begin() +
                    static_cast<ptrdiff_t>(member_offsets[c]));
    }
    cross_edges.clear();
    return;
  }

  // One traversal freezes the owned-block quotient and collects the
  // ghost-directed edges; the dropped targets (ghost blocks) are then
  // rewritten to the ghost's node id — its block's sole member.
  cross_edges.clear();
  gr.RefreezeMapped(pc.gr, perm, owned_blocks, &cross_edges);
  for (auto& [block, target] : cross_edges) {
    QPGC_DCHECK(pc.members[target].size() == 1);
    target = pc.members[target][0];
  }

  // node_map through the permutation: ghosts -> kInvalidNode.
  node_map.resize(pc.node_map.size());
  for (size_t v = 0; v < pc.node_map.size(); ++v) {
    node_map[v] = perm[pc.node_map[v]];
  }

  // Flatten the member index of the owned blocks: offsets by prefix sum,
  // then one grouped pass — two bulk arrays regardless of the block count.
  member_offsets.assign(owned_blocks + 1, 0);
  for (size_t b = 0; b < num_blocks; ++b) {
    if (perm[b] != kInvalidNode) {
      member_offsets[perm[b] + 1] = pc.members[b].size();
    }
  }
  for (size_t c = 0; c < owned_blocks; ++c) {
    member_offsets[c + 1] += member_offsets[c];
  }
  member_flat.resize(member_offsets[owned_blocks]);
  for (size_t b = 0; b < num_blocks; ++b) {
    if (perm[b] == kInvalidNode) continue;
    std::copy(pc.members[b].begin(), pc.members[b].end(),
              member_flat.begin() +
                  static_cast<ptrdiff_t>(member_offsets[perm[b]]));
  }

}

size_t FrozenPatternSide::MemoryBytes() const {
  return gr.MemoryBytes() + VectorBytes(node_map) +
         VectorBytes(member_offsets) + VectorBytes(member_flat) +
         VectorBytes(cross_edges);
}

void ServingSnapshot::Freeze(uint64_t version, const ReachCompression& rc,
                             const PatternCompression& pc) {
  version_ = version;
  // Fresh sides every time: this standalone path never mutates state that
  // another snapshot could share. Pooled buffer recycling is the manager's
  // publish path (Fill into pooled side buffers, then Adopt).
  auto reach = std::make_shared<FrozenReachSide>();
  reach->Fill(rc);
  reach_ = std::move(reach);
  auto pattern = std::make_shared<FrozenPatternSide>();
  pattern->Fill(pc);
  pattern_ = std::move(pattern);
  boundary_exits_.reset();
  boundary_summary_.reset();
  exit_block_.clear();
  block_exit_offsets_.clear();
  block_exit_index_.clear();
}

void ServingSnapshot::Adopt(
    uint64_t version, std::shared_ptr<const FrozenReachSide> reach,
    std::shared_ptr<const FrozenPatternSide> pattern,
    std::shared_ptr<const std::vector<NodeId>> boundary_exits,
    std::shared_ptr<const FrozenBoundarySummary> boundary_summary) {
  QPGC_CHECK(reach != nullptr && pattern != nullptr);
  version_ = version;
  reach_ = std::move(reach);
  pattern_ = std::move(pattern);
  boundary_exits_ = std::move(boundary_exits);
  boundary_summary_ = std::move(boundary_summary);
  exit_block_.clear();
  block_exit_offsets_.clear();
  block_exit_index_.clear();
  if (boundary_exits_ != nullptr) {
    exit_block_.reserve(boundary_exits_->size());
    for (const NodeId x : *boundary_exits_) {
      exit_block_.push_back(reach_->node_map[x]);
    }
    // Inverse: exit indexes grouped by block (counting sort — exits are
    // few, blocks many).
    block_exit_offsets_.assign(reach_->gr.num_nodes() + 1, 0);
    for (const NodeId b : exit_block_) ++block_exit_offsets_[b + 1];
    for (size_t b = 1; b < block_exit_offsets_.size(); ++b) {
      block_exit_offsets_[b] += block_exit_offsets_[b - 1];
    }
    block_exit_index_.resize(exit_block_.size());
    std::vector<uint32_t> cursor(block_exit_offsets_.begin(),
                                 block_exit_offsets_.end() - 1);
    for (size_t i = 0; i < exit_block_.size(); ++i) {
      block_exit_index_[cursor[exit_block_[i]]++] =
          static_cast<NodeId>(i);
    }
  }
}

void ServingSnapshot::Reset() {
  version_ = 0;
  reach_.reset();
  pattern_.reset();
  boundary_exits_.reset();
  boundary_summary_.reset();
  exit_block_.clear();
  block_exit_offsets_.clear();
  block_exit_index_.clear();
}

const std::vector<NodeId>& ServingSnapshot::boundary_exits() const {
  static const std::vector<NodeId> kEmpty;
  return boundary_exits_ == nullptr ? kEmpty : *boundary_exits_;
}

bool ServingSnapshot::Reach(NodeId u, NodeId v, PathMode mode,
                            ReachAlgorithm algo) const {
  QPGC_CHECK(reach_ != nullptr);
  const std::vector<NodeId>& map = reach_->node_map;
  QPGC_CHECK(u < map.size() && v < map.size());
  if (mode == PathMode::kReflexive && u == v) return true;
  // All remaining cases reduce to non-empty reachability on Gr: distinct
  // classes are connected iff any pair of their members is; equal classes
  // answer the diagonal through their self-loop (reach/queries.cc keeps the
  // same reduction for the unfrozen artifact).
  return EvalReach(reach_->gr, map[u], map[v], PathMode::kNonEmpty, algo);
}

namespace {

// Per-thread BFS scratch for ReachManyNonEmpty: epoch-stamped visited and
// source-block arrays avoid both per-call allocation and per-call clearing.
struct ReachScratch {
  std::vector<uint32_t> stamp;
  std::vector<uint32_t> src_stamp;
  std::vector<NodeId> queue;
  uint32_t epoch = 0;
};

thread_local ReachScratch t_reach_scratch;

// The multi-source non-empty-path BFS over a frozen quotient shared by
// ReachManyNonEmpty and ResolveWave: stamps every quotient node reachable
// from the mapped sources by a path of length >= 1 with a fresh epoch
// (a source class itself counts as reached only when some edge — its
// self-loop for a cyclic class, or a longer cycle — comes back) and
// returns that epoch for the caller's probes.
// The source classes may be given either as original node ids (mapped
// through `map`) or directly as quotient block ids (`map` == nullptr — the
// router's route tables precompute the blocks).
uint32_t MultiSourceSweep(const CsrGraph& gr, const std::vector<NodeId>* map,
                          std::span<const NodeId> sources) {
  ReachScratch& scratch = t_reach_scratch;
  if (scratch.stamp.size() < gr.num_nodes() || scratch.epoch == UINT32_MAX) {
    scratch.stamp.assign(gr.num_nodes(), 0);
    scratch.src_stamp.assign(gr.num_nodes(), 0);
    scratch.epoch = 0;
  }
  const uint32_t epoch = ++scratch.epoch;
  std::vector<uint32_t>& stamp = scratch.stamp;
  std::vector<NodeId>& queue = scratch.queue;
  queue.clear();
  for (const NodeId s : sources) {
    // Many sources share a class (boundary-entry waves collapse onto hub
    // blocks); scanning a hub's fan-out once per *source* instead of once
    // per *class* used to dominate wide waves. The stamps only suppress
    // re-scans, not reachability: the class's out-edges are expanded the
    // first time it is seen.
    const NodeId b = map == nullptr ? s : (*map)[s];
    QPGC_DCHECK(b < gr.num_nodes());
    if (scratch.src_stamp[b] == epoch) continue;
    scratch.src_stamp[b] = epoch;
    for (const NodeId w : gr.OutNeighbors(b)) {
      if (stamp[w] != epoch) {
        stamp[w] = epoch;
        queue.push_back(w);
      }
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    for (const NodeId w : gr.OutNeighbors(queue[head])) {
      if (stamp[w] != epoch) {
        stamp[w] = epoch;
        queue.push_back(w);
      }
    }
  }
  return epoch;
}

}  // namespace

void ServingSnapshot::ReachManyNonEmpty(std::span<const NodeId> sources,
                                        std::span<const NodeId> targets,
                                        std::vector<char>& reached) const {
  QPGC_CHECK(reach_ != nullptr);
  reached.assign(targets.size(), 0);
  if (sources.empty() || targets.empty()) return;
  const std::vector<NodeId>& map = reach_->node_map;
  const uint32_t epoch = MultiSourceSweep(reach_->gr, &map, sources);
  const std::vector<uint32_t>& stamp = t_reach_scratch.stamp;
  for (size_t i = 0; i < targets.size(); ++i) {
    QPGC_DCHECK(targets[i] < map.size());
    reached[i] = stamp[map[targets[i]]] == epoch ? 1 : 0;
  }
}

bool ServingSnapshot::ResolveWave(std::span<const NodeId> sources,
                                  NodeId target,
                                  std::vector<NodeId>& reached_exits) const {
  QPGC_CHECK(reach_ != nullptr);
  reached_exits.clear();
  if (sources.empty()) return false;
  const std::vector<NodeId>& map = reach_->node_map;
  const uint32_t epoch = MultiSourceSweep(reach_->gr, &map, sources);
  // The sweep's queue is exactly the set of stamped blocks, each once:
  // emit their exit-index runs instead of probing the stamp per exit.
  if (!block_exit_offsets_.empty()) {
    for (const NodeId b : t_reach_scratch.queue) {
      for (uint32_t j = block_exit_offsets_[b]; j < block_exit_offsets_[b + 1];
           ++j) {
        reached_exits.push_back(block_exit_index_[j]);
      }
    }
  }
  QPGC_DCHECK(target < map.size());
  return t_reach_scratch.stamp[map[target]] == epoch;
}

bool ServingSnapshot::ResolveTargetBlocks(std::span<const NodeId> source_blocks,
                                          NodeId target) const {
  QPGC_CHECK(reach_ != nullptr);
  if (source_blocks.empty()) return false;
  const std::vector<NodeId>& map = reach_->node_map;
  const uint32_t epoch =
      MultiSourceSweep(reach_->gr, /*map=*/nullptr, source_blocks);
  QPGC_DCHECK(target < map.size());
  return t_reach_scratch.stamp[map[target]] == epoch;
}

MatchResult ServingSnapshot::Match(const PatternQuery& q) const {
  QPGC_CHECK(pattern_ != nullptr);
  // F = identity, Match on the frozen quotient, then the shared expansion P
  // over the flattened member index (ghost nodes map to kInvalidNode and
  // are skipped).
  return ExpandMatchWith(
      pattern_->member_offsets.size() - 1, pattern_->node_map,
      [this](NodeId block) { return pattern_->block_members(block); },
      qpgc::Match(pattern_->gr, q));
}

bool ServingSnapshot::BooleanMatch(const PatternQuery& q) const {
  QPGC_CHECK(pattern_ != nullptr);
  return qpgc::BooleanMatch(pattern_->gr, q);
}

size_t ServingSnapshot::MemoryBytes() const {
  return (reach_ == nullptr ? 0 : reach_->MemoryBytes()) +
         (pattern_ == nullptr ? 0 : pattern_->MemoryBytes()) +
         VectorBytes(boundary_exits()) +
         (boundary_summary_ == nullptr ? 0 : boundary_summary_->MemoryBytes());
}

}  // namespace qpgc
