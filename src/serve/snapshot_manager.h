// Copyright 2026 The QPGC Authors.
//
// SnapshotManager: the serving side of the paper's incremental story. It
// owns the mutable compressed state — the dynamic Graph source of truth plus
// the maintained ReachCompression / PatternCompression artifacts — and
// publishes immutable, versioned ServingSnapshots that readers query while
// updates keep landing.
//
// Concurrency contract (single-writer / many-readers):
//  * Exactly one writer thread calls Apply() / Publish(). Updates flow
//    through the existing incremental algorithms (IncRCM Section 5.1,
//    IncPCM Section 5.2), so per-batch maintenance cost stays a function of
//    |AFF| and |Gr|, never |G|. In sharded serving every shard has its own
//    manager and therefore its own independent writer
//    (serve/sharded_manager.h); the single-writer contract is per shard.
//  * Any number of reader threads call Acquire() (or go through
//    serve/query_service.h). A reader pins the current snapshot with a
//    shared_ptr for the duration of a query and runs on it lock-free.
//  * Publish() freezes the compressed state into *inactive* buffers — off
//    the read path, readers never observe a half-frozen snapshot — and then
//    swaps the assembled snapshot in with one O(1) atomic pointer store.
//    Swap latency is independent of graph size by construction.
//  * Per-artifact freezing: an artifact whose accumulated incremental stats
//    show no kept updates since the last publish is *shared* from the
//    previous snapshot instead of refrozen (the new version's shell points
//    at the same immutable FrozenReachSide / FrozenPatternSide). Reach-only
//    or pattern-only update streams therefore pay publish cost for the side
//    that actually moved. FreezeMode::kFull forces both (benchmarks use it
//    to measure full freeze cost).
//  * Retirement is reader-driven: a published snapshot's control block
//    carries a deleter that returns the shell — and, once unshared, its
//    side buffers — to the manager's pool when the last reader drops it
//    (double buffering in steady state). The pool is shared-owned by every
//    outstanding handle, so snapshots outliving the manager stay valid.
//
// Publish policies decouple *when* to publish from the update stream:
// manual (caller decides), every-N-updates (amortize freeze cost over N
// effective updates), and staleness-bounded (cap how long readers can lag
// behind the source of truth). The accumulated dirty-cone stats of the
// incremental layer since the last publish are exposed for callers that
// want to build smarter policies on top.
//
// The locking discipline (what each qpgc::Mutex guards, the one sanctioned
// atomic<shared_ptr> slot, the TSan fallback) is documented — and statically
// enforced via the Thread Safety annotations below — in docs/CONCURRENCY.md.

#ifndef QPGC_SERVE_SNAPSHOT_MANAGER_H_
#define QPGC_SERVE_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/pattern_scheme.h"
#include "graph/update.h"
#include "inc/inc_pcm.h"
#include "inc/inc_rcm.h"
#include "reach/compress_r.h"
#include "serve/snapshot.h"
#include "util/lifetime_annotations.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

// The published-snapshot slot prefers the C++20 atomic<shared_ptr>
// specialization. Under ThreadSanitizer we force the mutex fallback:
// libstdc++'s _Sp_atomic guards its pointer word with a lock bit TSan cannot
// see through (GCC PR 101761), so the lock-free path reports false races.
#if defined(__SANITIZE_THREAD__)
#define QPGC_SERVE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define QPGC_SERVE_TSAN 1
#endif
#endif
#if !defined(QPGC_SERVE_TSAN) && defined(__cpp_lib_atomic_shared_ptr) && \
    __cpp_lib_atomic_shared_ptr >= 201711L
#define QPGC_SERVE_ATOMIC_SLOT 1
#endif

namespace qpgc {

/// When the manager publishes a fresh snapshot on its own.
struct PublishPolicy {
  enum class Mode {
    /// Only when the caller invokes Publish().
    kManual,
    /// After at least `updates_per_publish` effective updates accumulated.
    kEveryNUpdates,
    /// As soon as the published snapshot is both stale (>=
    /// `max_staleness_secs` old) and behind (>= 1 pending update).
    kStalenessBounded,
  };

  Mode mode = Mode::kManual;
  size_t updates_per_publish = 1024;
  double max_staleness_secs = 0.1;

  static PublishPolicy Manual() { return {}; }
  static PublishPolicy EveryNUpdates(size_t n) {
    return {Mode::kEveryNUpdates, n, 0.0};
  }
  static PublishPolicy StalenessBounded(double secs) {
    return {Mode::kStalenessBounded, 0, secs};
  }
};

struct SnapshotManagerOptions {
  PublishPolicy policy = PublishPolicy::Manual();
  CompressROptions reach_options;
  CompressBOptions pattern_options;
  /// Sharded serving hook: called on the writer path inside Publish() to
  /// capture the shard's current boundary-exit set (sorted ascending,
  /// immutable, shared by pointer across versions whose membership did not
  /// change) into the snapshot being assembled, so exits and frozen graphs
  /// can never disagree about the version they describe. Null (the
  /// default) stamps every snapshot with an empty exit set — correct for
  /// unsharded serving.
  std::function<std::shared_ptr<const std::vector<NodeId>>()>
      boundary_exits_provider;
  /// Sharded serving hook, symmetric to boundary_exits_provider: captures
  /// the shard's current boundary-entry set (owned nodes with cross-shard
  /// in-edges, sorted ascending). When both providers are set, Publish()
  /// additionally freezes a FrozenBoundarySummary over the reach quotient
  /// (reused from the previous version when reach side, exits, and entries
  /// all carried over) — the artifact the router's boundary-graph search
  /// runs on (docs/SHARDING.md). Null for unsharded serving.
  std::function<std::shared_ptr<const std::vector<NodeId>>()>
      boundary_entries_provider;
};

/// How Publish() treats artifacts the update stream left untouched.
enum class FreezeMode {
  /// Share untouched sides from the previous snapshot (the default).
  kAuto,
  /// Refreeze both sides unconditionally (benchmarking full freeze cost).
  kFull,
};

/// What one Publish() did.
struct PublishStats {
  /// Version id of the snapshot that went live.
  uint64_t version = 0;
  /// Effective updates included since the previous publish.
  size_t updates_included = 0;
  /// Wall time of the freeze into the inactive buffers (off the read path).
  double freeze_secs = 0.0;
  /// Wall time of the atomic pointer swap (what readers can ever contend
  /// with; O(1) regardless of graph size).
  double swap_secs = 0.0;
  /// Which sides were actually refrozen (a side is shared from the previous
  /// snapshot when its accumulated incremental stats kept no updates and
  /// FreezeMode::kFull was not requested).
  bool froze_reach = false;
  bool froze_pattern = false;
  /// Whether the boundary summary was rebuilt (sharded serving only; false
  /// when it was shared from the previous version along with its inputs,
  /// and always false unsharded). Its build time — the publish-cost delta
  /// the summary adds — is broken out in summary_freeze_secs (also counted
  /// inside freeze_secs).
  bool froze_summary = false;
  double summary_freeze_secs = 0.0;
  /// True when the freeze recycled at least one retired *side* buffer
  /// (shell recycling, which carries no artifact data, is not counted).
  bool reused_buffer = false;
};

/// What one Apply() did.
struct ApplyStats {
  /// Updates surviving ApplyBatch's no-op elimination.
  size_t effective_updates = 0;
  /// Incremental-maintenance work counters for this batch.
  IncRcmStats rcm;
  IncPcmStats pcm;
  /// Set when the publish policy fired within this Apply().
  bool published = false;
  PublishStats publish;
};

class SnapshotManager {
 public:
  /// Takes ownership of the initial graph, compresses it (batch compressR +
  /// compressB), and publishes version 1 — Acquire() never returns null.
  explicit SnapshotManager(Graph g, SnapshotManagerOptions options = {});

  /// Adopts pre-built compressed artifacts instead of recompressing — the
  /// warm-start path for state reconstructed from an on-disk snapshot
  /// (storage/snapshot_io.h ReconstructArtifacts). The artifacts must
  /// describe exactly `g` (storage's reconstruction probes check this);
  /// incremental maintenance then continues as if this manager had built
  /// them. Publishes version 1 from the adopted state.
  SnapshotManager(Graph g, ReachCompression rc, PatternCompression pc,
                  SnapshotManagerOptions options = {});

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  // --- Writer side (single thread) ------------------------------------------

  /// Applies a batch to the source of truth and maintains both compressed
  /// artifacts incrementally; publishes if the policy says so.
  ApplyStats Apply(const UpdateBatch& batch);

  /// Same, invoking `on_applied` with the *effective* batch after the
  /// artifacts were maintained but before any policy-triggered publish —
  /// the window in which publish-visible side state derived from the update
  /// stream (e.g. the sharded manager's boundary-exit refcounts) must be
  /// brought up to date.
  ApplyStats Apply(const UpdateBatch& batch,
                   const std::function<void(const UpdateBatch&)>& on_applied);

  /// Freezes the current compressed state into inactive buffers and
  /// atomically swaps it in as the new published snapshot. Under
  /// FreezeMode::kAuto an artifact with no kept updates since the last
  /// publish is shared from the previous snapshot instead of refrozen.
  PublishStats Publish(FreezeMode mode = FreezeMode::kAuto);

  /// The mutable source of truth (writer-side inspection).
  const Graph& graph() const QPGC_LIFETIME_BOUND { return g_; }
  /// The maintained artifacts the next Publish() will freeze.
  const ReachCompression& reach_artifact() const QPGC_LIFETIME_BOUND {
    return rc_;
  }
  const PatternCompression& pattern_artifact() const QPGC_LIFETIME_BOUND {
    return pc_;
  }

  /// Version of the latest published snapshot.
  uint64_t published_version() const { return version_; }
  /// Effective updates applied since the last publish.
  size_t pending_updates() const { return pending_updates_; }
  /// Seconds since the last publish (the published snapshot's age).
  double staleness_secs() const { return staleness_timer_.ElapsedSeconds(); }
  /// Accumulated dirty-cone stats since the last publish (for policies, and
  /// what Publish() keys the per-side freeze skip on).
  const IncRcmStats& pending_rcm_stats() const QPGC_LIFETIME_BOUND {
    return pending_rcm_;
  }
  const IncPcmStats& pending_pcm_stats() const QPGC_LIFETIME_BOUND {
    return pending_pcm_;
  }

  // --- Read side (any thread) -----------------------------------------------

  /// Pins and returns the current published snapshot. Never null. The
  /// snapshot stays valid (and immutable) for as long as the returned
  /// handle lives, across any number of later publishes. Bind the handle
  /// to a named local and keep everything borrowed through it inside that
  /// local's scope — the pin-scope rule (docs/LIFETIMES.md), enforced by
  /// tools/qpgc_pin_escape.py.
  std::shared_ptr<const ServingSnapshot> Acquire() const;

 private:
  // Recycled freeze buffers: snapshot shells plus per-side artifact
  // buffers. Shared-owned by the manager and (through the handle deleters)
  // by every outstanding snapshot, so a reader outliving the manager still
  // has somewhere to return its buffers.
  class BufferPool {
   public:
    std::unique_ptr<ServingSnapshot> TakeShell() QPGC_EXCLUDES(mu_);
    void ReturnShell(std::unique_ptr<ServingSnapshot> shell)
        QPGC_EXCLUDES(mu_);
    std::unique_ptr<FrozenReachSide> TakeReach() QPGC_EXCLUDES(mu_);
    void ReturnReach(std::unique_ptr<FrozenReachSide> side) QPGC_EXCLUDES(mu_);
    std::unique_ptr<FrozenPatternSide> TakePattern() QPGC_EXCLUDES(mu_);
    void ReturnPattern(std::unique_ptr<FrozenPatternSide> side)
        QPGC_EXCLUDES(mu_);

   private:
    // Keeps at most kMaxSpares of each kind; the excess is freed.
    static constexpr size_t kMaxSpares = 2;

    // Must-hold-lock core of every Take*/Return* above (defined in the .cc,
    // which is their only user). Stash returns the buffer back to the
    // caller when the pool is full, so the excess can die outside the lock.
    template <typename T>
    std::unique_ptr<T> TakeSpareLocked(std::vector<std::unique_ptr<T>>& spares)
        QPGC_REQUIRES(mu_);
    template <typename T>
    std::unique_ptr<T> StashSpareLocked(
        std::vector<std::unique_ptr<T>>& spares, std::unique_ptr<T> buf)
        QPGC_REQUIRES(mu_);

    Mutex mu_;
    std::vector<std::unique_ptr<ServingSnapshot>> shells_ QPGC_GUARDED_BY(mu_);
    std::vector<std::unique_ptr<FrozenReachSide>> reach_spares_
        QPGC_GUARDED_BY(mu_);
    std::vector<std::unique_ptr<FrozenPatternSide>> pattern_spares_
        QPGC_GUARDED_BY(mu_);
  };

  // The published-snapshot slot. Uses the C++20 atomic<shared_ptr>
  // specialization when the standard library has one; degrades to a
  // mutex-guarded pointer otherwise. Either way the store is O(1) and the
  // load is a pin (refcount bump), never a copy of snapshot data.
  //
  // This is the repository's ONE sanctioned lock-free shared slot — the
  // documented exception to the Mutex-everywhere rule (see
  // util/thread_annotations.h and docs/CONCURRENCY.md). Thread Safety
  // Analysis cannot model the atomic path, so correctness here rests on
  // the atomic specialization's own guarantees plus the TSan stress suite
  // (which exercises the annotated mutex fallback instead, QPGC_SERVE_TSAN
  // above).
  class Slot {
   public:
    std::shared_ptr<const ServingSnapshot> load() const;
    void store(std::shared_ptr<const ServingSnapshot> p);

   private:
#ifdef QPGC_SERVE_ATOMIC_SLOT
    // qpgc-lint: allow(raw-atomic-shared-ptr)
    std::atomic<std::shared_ptr<const ServingSnapshot>> ptr_;
#else
    mutable Mutex mu_;
    std::shared_ptr<const ServingSnapshot> ptr_ QPGC_GUARDED_BY(mu_);
#endif
  };

  bool ShouldAutoPublish() const;

  Graph g_;
  SnapshotManagerOptions options_;
  ReachCompression rc_;
  PatternCompression pc_;

  uint64_t version_ = 0;
  size_t pending_updates_ = 0;
  IncRcmStats pending_rcm_;
  IncPcmStats pending_pcm_;
  Timer staleness_timer_;

  std::shared_ptr<BufferPool> pool_;
  Slot current_;
};

}  // namespace qpgc

#endif  // QPGC_SERVE_SNAPSHOT_MANAGER_H_
