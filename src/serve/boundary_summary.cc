// Copyright 2026 The QPGC Authors.

#include "serve/boundary_summary.h"

#include <algorithm>
#include <utility>

#include "util/memory.h"

namespace qpgc {

namespace {

// Marks every quotient block reachable from the blocks of `seeds` by a path
// of length >= 0, following `forward` out-edges or (for the backward pass)
// in-edges. Linear in the visited slice; `mark` must be zeroed on entry.
void MarkClosure(const CsrGraph& quotient, const std::vector<NodeId>& map,
                 const std::vector<NodeId>& seeds, bool forward,
                 std::vector<uint8_t>& mark, std::vector<NodeId>& queue) {
  queue.clear();
  for (const NodeId s : seeds) {
    QPGC_DCHECK(s < map.size());
    const NodeId b = map[s];
    if (!mark[b]) {
      mark[b] = 1;
      queue.push_back(b);
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    const NodeId b = queue[head];
    for (const NodeId w :
         forward ? quotient.OutNeighbors(b) : quotient.InNeighbors(b)) {
      if (!mark[w]) {
        mark[w] = 1;
        queue.push_back(w);
      }
    }
  }
}

}  // namespace

void FrozenBoundarySummary::Build(
    const CsrGraph& quotient, const std::vector<NodeId>& node_map,
    std::shared_ptr<const std::vector<NodeId>> exits,
    std::shared_ptr<const std::vector<NodeId>> entries) {
  exits_ = std::move(exits);
  entries_ = std::move(entries);
  static const std::vector<NodeId> kEmpty;
  const std::vector<NodeId>& exit_nodes = exits_ ? *exits_ : kEmpty;
  const std::vector<NodeId>& entry_nodes = entries_ ? *entries_ : kEmpty;
  QPGC_DCHECK(std::is_sorted(exit_nodes.begin(), exit_nodes.end()));
  QPGC_DCHECK(std::is_sorted(entry_nodes.begin(), entry_nodes.end()));

  const size_t num_blocks = quotient.num_nodes();
  // Select the blocks on some entry-to-exit walk: forward closure of the
  // entry blocks intersected with the backward closure of the exit blocks.
  std::vector<uint8_t> from_entry(num_blocks, 0), to_exit(num_blocks, 0);
  std::vector<NodeId> queue;
  MarkClosure(quotient, node_map, entry_nodes, /*forward=*/true, from_entry,
              queue);
  MarkClosure(quotient, node_map, exit_nodes, /*forward=*/false, to_exit,
              queue);
  std::vector<NodeId> summary_id(num_blocks, kNoSummaryNode);
  NodeId num_summary = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    if (from_entry[b] && to_exit[b]) {
      summary_id[b] = num_summary++;
    }
  }

  // Summary edges: the quotient edges between selected blocks (self-loops
  // included — they carry the non-empty-path diagonal).
  out_offsets_.assign(num_summary + 1, 0);
  out_targets_.clear();
  for (size_t b = 0; b < num_blocks; ++b) {
    if (summary_id[b] == kNoSummaryNode) continue;
    for (const NodeId w : quotient.OutNeighbors(static_cast<NodeId>(b))) {
      if (summary_id[w] != kNoSummaryNode) out_targets_.push_back(summary_id[w]);
    }
    // Blocks are visited in ascending order and summary ids follow block
    // order, so writing each cumulative size fills the offsets in place.
    out_offsets_[summary_id[b] + 1] = out_targets_.size();
  }

  // Exit annotation, grouped by summary node; exits stay ascending within
  // a node because the input table is sorted. An exit whose block is not
  // selected is unreachable from every entry and is dropped.
  exit_offsets_.assign(num_summary + 1, 0);
  for (const NodeId x : exit_nodes) {
    const NodeId sid = summary_id[node_map[x]];
    if (sid != kNoSummaryNode) ++exit_offsets_[sid + 1];
  }
  for (size_t n = 1; n <= num_summary; ++n) {
    exit_offsets_[n] += exit_offsets_[n - 1];
  }
  exit_nodes_.resize(exit_offsets_[num_summary]);
  {
    std::vector<uint64_t> cursor(exit_offsets_.begin(),
                                 exit_offsets_.end() - 1);
    for (const NodeId x : exit_nodes) {
      const NodeId sid = summary_id[node_map[x]];
      if (sid != kNoSummaryNode) exit_nodes_[cursor[sid]++] = x;
    }
  }

  // Entry table: each entry's block, as a summary node (kNoSummaryNode for
  // pruned blocks — that entry reaches no exit here), plus the dense
  // node-indexed slot vector behind the O(1) LookupEntry.
  entry_summary_node_.resize(entry_nodes.size());
  entry_slot_.assign(node_map.size(), 0);
  for (size_t i = 0; i < entry_nodes.size(); ++i) {
    entry_summary_node_[i] = summary_id[node_map[entry_nodes[i]]];
    entry_slot_[entry_nodes[i]] = static_cast<uint32_t>(i + 1);
  }
}

size_t FrozenBoundarySummary::MemoryBytes() const {
  return VectorBytes(out_offsets_) + VectorBytes(out_targets_) +
         VectorBytes(exit_offsets_) + VectorBytes(exit_nodes_) +
         VectorBytes(entry_summary_node_) + VectorBytes(entry_slot_) +
         (exits_ == nullptr ? 0 : VectorBytes(*exits_)) +
         (entries_ == nullptr ? 0 : VectorBytes(*entries_));
}

}  // namespace qpgc
