// Copyright 2026 The QPGC Authors.
//
// FrozenBoundarySummary: the per-shard boundary-to-boundary reachability
// summary frozen into every sharded ServingSnapshot at publish time.
//
// The routed-reach problem (serve/router.h) only ever needs one question
// answered per shard: *from a boundary-entry node, which boundary-exit
// nodes are reachable inside this shard?* Before this artifact existed the
// router re-derived the answer per query with full quotient sweeps — one
// multi-source BFS over the whole frozen reach quotient per wave per shard.
// The summary precomputes the relevant slice once per publish:
//
//  * Summary nodes are the reach-quotient blocks that lie on some
//    entry-to-exit path — reachable from at least one entry block AND
//    reaching at least one exit block (both by paths of length >= 0). Two
//    linear marking passes over the quotient (forward from entries,
//    backward from exits) select them; everything else is pruned.
//  * Summary edges are the quotient edges between selected blocks,
//    self-loops included (a cyclic class's self-loop is what lets an
//    entry's own block count as reached by a non-empty path — the same
//    convention as ServingSnapshot's quotient sweeps).
//  * Each summary node carries the boundary-exit nodes whose block it is,
//    so a traversal that stamps a summary node can emit the exits to hand
//    to their home shards.
//  * The entry table maps each boundary-entry node (an owned node with a
//    cross-shard in-edge, sorted ascending) to its block's summary node —
//    or kNoSummaryNode when the block was pruned (that entry reaches no
//    exit inside the shard).
//
// Soundness rests on the quotient being exact for non-empty reachability
// (reach/compress_r.h) restricted to this shard's edges; pruning only
// removes blocks that cannot appear on any entry-to-exit walk. The full
// argument, and the router search built on top, live in docs/SHARDING.md.
//
// An entry *absent* from the table is meaningful: the entry gained its
// first cross-shard in-edge after this shard's last publish (another
// shard's writer created it). LookupEntry returns false for those and the
// router falls back to a live quotient sweep, preserving exactness.
//
// Lifecycle and thread safety match the frozen sides in serve/snapshot.h:
// built by the owning shard's writer inside Publish() on a buffer no
// reader can observe, immutable afterwards, shared by pointer across
// versions whose reach side, exit set, and entry set all carried over.

#ifndef QPGC_SERVE_BOUNDARY_SUMMARY_H_
#define QPGC_SERVE_BOUNDARY_SUMMARY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "util/common.h"
#include "util/lifetime_annotations.h"

namespace qpgc {

/// The frozen boundary summary of one shard at one version (see file
/// comment). Writer-side Build(), then immutable.
class FrozenBoundarySummary {
 public:
  /// The summary node of an entry whose block reaches no exit.
  static constexpr NodeId kNoSummaryNode = kInvalidNode;

  /// Builds the summary from the shard's frozen reach quotient plus the
  /// publish-consistent boundary sets. `exits` and `entries` must be
  /// sorted ascending; both are shared by pointer (the sharded manager's
  /// boundary tables hand out one immutable vector per membership state).
  void Build(const CsrGraph& quotient, const std::vector<NodeId>& node_map,
             std::shared_ptr<const std::vector<NodeId>> exits,
             std::shared_ptr<const std::vector<NodeId>> entries);

  /// Looks up a boundary-entry node. Returns false when `entry` was not an
  /// entry at freeze time (the router's stale-entry fallback); otherwise
  /// true with *summary_node = the entry block's summary node, or
  /// kNoSummaryNode when that block was pruned. O(1): the router resolves
  /// every boundary node the search visits through here, so on dense
  /// partitions this sits on the per-query critical path thousands of
  /// times.
  bool LookupEntry(NodeId entry, NodeId* summary_node) const {
    if (entry >= entry_slot_.size()) return false;
    const uint32_t slot = entry_slot_[entry];
    if (slot == 0) return false;
    *summary_node = entry_summary_node_[slot - 1];
    return true;
  }

  /// Number of summary nodes (pruned quotient blocks) / edges.
  size_t num_nodes() const { return out_offsets_.empty() ? 0 : out_offsets_.size() - 1; }
  size_t num_edges() const { return out_targets_.size(); }

  /// Out-neighbors of summary node `n`, as summary node ids.
  std::span<const NodeId> OutNeighbors(NodeId n) const QPGC_LIFETIME_BOUND {
    return {out_targets_.data() + out_offsets_[n],
            out_targets_.data() + out_offsets_[n + 1]};
  }

  /// The boundary-exit nodes (global node ids) whose block is summary node
  /// `n`, ascending.
  std::span<const NodeId> ExitsAt(NodeId n) const QPGC_LIFETIME_BOUND {
    return {exit_nodes_.data() + exit_offsets_[n],
            exit_nodes_.data() + exit_offsets_[n + 1]};
  }

  /// ExitsAt(n) as a position range into exit_nodes(), for callers keeping
  /// side tables parallel to the grouped exit list (the router's per-pin
  /// route tables).
  std::pair<size_t, size_t> ExitRangeAt(NodeId n) const {
    return {exit_offsets_[n], exit_offsets_[n + 1]};
  }

  /// The whole grouped exit list (concatenated ExitsAt runs, in summary
  /// node order).
  std::span<const NodeId> exit_nodes() const QPGC_LIFETIME_BOUND {
    return exit_nodes_;
  }

  /// The summary node of each entry, in entries_ptr() order (the bulk form
  /// of LookupEntry — what the router's per-pin route table is built from).
  std::span<const NodeId> entry_summary_nodes() const QPGC_LIFETIME_BOUND {
    return entry_summary_node_;
  }

  /// The frozen boundary sets this summary was built from (pointer
  /// identity is the manager's reuse key across publishes).
  const std::shared_ptr<const std::vector<NodeId>>& exits_ptr() const {
    return exits_;
  }
  const std::shared_ptr<const std::vector<NodeId>>& entries_ptr() const {
    return entries_;
  }

  /// Heap bytes held by this summary.
  size_t MemoryBytes() const;

 private:
  std::vector<uint64_t> out_offsets_;   // num summary nodes + 1
  std::vector<NodeId> out_targets_;     // summary node ids
  std::vector<uint64_t> exit_offsets_;  // num summary nodes + 1
  std::vector<NodeId> exit_nodes_;      // exit node ids, grouped by node
  std::shared_ptr<const std::vector<NodeId>> exits_;
  std::shared_ptr<const std::vector<NodeId>> entries_;
  std::vector<NodeId> entry_summary_node_;  // parallel to *entries_
  // Dense entry index: [node] = 1 + index into entry_summary_node_, 0 when
  // the node was not an entry at freeze time. One word per graph node —
  // publish already pays an O(|V|) node_map scan, and the vector is shared
  // across versions whenever the whole summary carries over.
  std::vector<uint32_t> entry_slot_;
};

}  // namespace qpgc

#endif  // QPGC_SERVE_BOUNDARY_SUMMARY_H_
