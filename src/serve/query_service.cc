// Copyright 2026 The QPGC Authors.

#include "serve/query_service.h"

namespace qpgc {

bool QueryService::Reach(NodeId u, NodeId v, PathMode mode,
                         ReachAlgorithm algo) const {
  return Pin()->Reach(u, v, mode, algo);
}

MatchResult QueryService::Match(const PatternQuery& q) const {
  return Pin()->Match(q);
}

bool QueryService::BooleanMatch(const PatternQuery& q) const {
  return Pin()->BooleanMatch(q);
}

}  // namespace qpgc
