// Copyright 2026 The QPGC Authors.

#include "gen/uniform.h"

#include "graph/builder.h"
#include "util/rng.h"

namespace qpgc {

Graph GenerateUniform(size_t num_nodes, size_t num_edges, size_t num_labels,
                      uint64_t seed) {
  QPGC_CHECK(num_nodes >= 2 || num_edges == 0);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  // Build may deduplicate; oversample slightly and trust dedup for the
  // small overshoot (exact edge counts are not load-bearing anywhere).
  const size_t target = num_edges;
  size_t produced = 0;
  size_t guard = 0;
  const size_t max_tries = target * 4 + 64;
  while (produced < target && guard < max_tries) {
    ++guard;
    const NodeId u = static_cast<NodeId>(rng.Uniform(num_nodes));
    const NodeId v = static_cast<NodeId>(rng.Uniform(num_nodes));
    if (u == v) continue;
    builder.AddEdge(u, v);
    ++produced;
  }
  Graph g = builder.Build();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    g.set_label(v, num_labels == 0
                       ? kNoLabel
                       : static_cast<Label>(rng.Uniform(num_labels)));
  }
  return g;
}

void AssignZipfLabels(Graph& g, size_t num_labels, double zipf_s,
                      uint64_t seed) {
  QPGC_CHECK(num_labels > 0);
  Rng rng(seed);
  const ZipfSampler zipf(num_labels, zipf_s);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    g.set_label(v, static_cast<Label>(zipf.Sample(rng)));
  }
}

}  // namespace qpgc
