// Copyright 2026 The QPGC Authors.
//
// Workload generators for the incremental experiments (Exp-3): random batch
// insertions, deletions and mixed updates against a fixed graph.

#ifndef QPGC_GEN_UPDATE_GEN_H_
#define QPGC_GEN_UPDATE_GEN_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/update.h"

namespace qpgc {

/// `count` random edge insertions (edges absent from g, no self-loops).
UpdateBatch RandomInsertions(const Graph& g, size_t count, uint64_t seed);

/// `count` random edge deletions (edges present in g).
UpdateBatch RandomDeletions(const Graph& g, size_t count, uint64_t seed);

/// A mixed batch: `count` updates, each an insertion with probability
/// `insert_fraction`, else a deletion.
UpdateBatch RandomMixed(const Graph& g, size_t count, double insert_fraction,
                        uint64_t seed);

}  // namespace qpgc

#endif  // QPGC_GEN_UPDATE_GEN_H_
