// Copyright 2026 The QPGC Authors.

#include "gen/dataset_catalog.h"

#include "gen/random_models.h"
#include "gen/uniform.h"

namespace qpgc {

namespace {

// Scaled ~5-20x below the published sizes to stay laptop-friendly; the
// structural knobs (family, reciprocity, label alphabet) are what drive the
// compression behaviour the experiments check.
std::vector<DatasetSpec> BuildReachCatalog() {
  return {
      // name        family                |V|   |L| seed struct twin  paperV   paperE    RCr    PCr
      {"facebook", DatasetFamily::kSocial, 6400, 0, 101, 0.60, 0.10, 64000, 1500000, 0.00028, -1},
      {"amazon", DatasetFamily::kSocial, 26000, 0, 102, 0.95, 0.30, 262000, 1200000, 0.0018, -1},
      {"Youtube", DatasetFamily::kSocial, 15500, 0, 103, 0.65, 0.15, 155000, 796000, 0.0177, -1},
      {"wikiVote", DatasetFamily::kSocial, 7000, 0, 104, 0.35, 0.00, 7000, 104000, 0.0191, -1},
      {"wikiTalk", DatasetFamily::kSocial, 24000, 0, 105, 0.60, 0.10, 2400000, 5000000, 0.0327, -1},
      {"socEpinions", DatasetFamily::kSocial, 7600, 0, 106, 0.45, 0.00, 76000, 509000, 0.0288, -1},
      {"NotreDame", DatasetFamily::kWeb, 16300, 0, 107, 0.25, 0.00, 326000, 1500000, 0.0261, -1},
      {"P2P", DatasetFamily::kP2P, 6300, 0, 108, 0.65, 0.25, 6000, 21000, 0.0597, -1},
      {"Internet", DatasetFamily::kInternet, 5200, 0, 109, 0.15, 0.00, 52000, 103000, 0.1608, -1},
      {"citHepTh", DatasetFamily::kCitation, 2800, 0, 110, 0.50, 0.50, 28000, 353000, 0.1470, -1},
  };
}

std::vector<DatasetSpec> BuildPatternCatalog() {
  return {
      {"California", DatasetFamily::kWeb, 10000, 95, 201, 0.25, 0.40, 10000, 16000, -1, 0.459},
      {"Internet", DatasetFamily::kInternet, 5200, 247, 202, 0.25, 0.60, 52000, 103000, -1, 0.298},
      {"Youtube", DatasetFamily::kSocial, 15500, 16, 203, 0.50, 0.40, 155000, 796000, -1, 0.413},
      {"Citation", DatasetFamily::kCitation, 12600, 67, 204, 0.50, 0.35, 630000, 633000, -1, 0.482},
      {"P2P", DatasetFamily::kP2P, 6300, 1, 205, 0.30, 0.35, 6000, 21000, -1, 0.493},
  };
}

}  // namespace

const std::vector<DatasetSpec>& ReachabilityDatasets() {
  static const std::vector<DatasetSpec>* catalog =
      new std::vector<DatasetSpec>(BuildReachCatalog());
  return *catalog;
}

const std::vector<DatasetSpec>& PatternDatasets() {
  static const std::vector<DatasetSpec>* catalog =
      new std::vector<DatasetSpec>(BuildPatternCatalog());
  return *catalog;
}

Graph MakeDataset(const DatasetSpec& spec) {
  Graph g;
  switch (spec.family) {
    case DatasetFamily::kSocial: {
      // Average out-degree follows the published density; the structure
      // knob is reciprocity — it drives the giant SCC that dominates RCr
      // on social networks.
      const double paper_avg_deg =
          static_cast<double>(spec.paper_edges) /
          static_cast<double>(spec.paper_nodes);
      const size_t m = std::max<size_t>(2, static_cast<size_t>(paper_avg_deg / 2.2));
      g = PreferentialAttachment(spec.num_nodes, m, spec.structure, spec.seed);
      break;
    }
    case DatasetFamily::kWeb:
      g = CopyingModel(spec.num_nodes, 5, 0.6, spec.seed);
      break;
    case DatasetFamily::kP2P:
      g = LayeredRandom(spec.num_nodes, 8, 3, spec.structure * 0.45, spec.seed);
      break;
    case DatasetFamily::kCitation:
      // Paper-density reference lists with same-window mutual citations
      // (citHepTh's published SCC mass is substantial).
      g = CitationDag(spec.num_nodes, 8, spec.structure, spec.seed,
                      /*mutual_cite_prob=*/0.25);
      break;
    case DatasetFamily::kInternet:
      g = InternetTopology(spec.num_nodes, spec.structure, spec.seed);
      break;
  }
  if (spec.num_labels > 0) {
    // Heavy-tailed label frequencies, as in real category/domain labels.
    AssignZipfLabels(g, spec.num_labels, 0.9, spec.seed ^ 0xabcdef);
  }
  if (spec.twin_fraction > 0.0) {
    // Duplicate content (mirror pages, reposts, cloned reference lists):
    // the structural redundancy both equivalence relations merge.
    CloneOutNeighborhoods(g, spec.twin_fraction, 0.3, spec.seed ^ 0x7777);
  }
  return g;
}

const DatasetSpec& FindPatternDataset(const std::string& name) {
  for (const auto& s : PatternDatasets()) {
    if (s.name == name) return s;
  }
  QPGC_CHECK(false && "unknown pattern dataset");
  static DatasetSpec dummy;
  return dummy;
}

const DatasetSpec& FindDataset(const std::string& name) {
  for (const auto& s : ReachabilityDatasets()) {
    if (s.name == name) return s;
  }
  for (const auto& s : PatternDatasets()) {
    if (s.name == name) return s;
  }
  QPGC_CHECK(false && "unknown dataset");
  static DatasetSpec dummy;
  return dummy;
}

}  // namespace qpgc
