// Copyright 2026 The QPGC Authors.

#include "gen/update_gen.h"

#include <unordered_set>

#include "util/hash.h"
#include "util/rng.h"

namespace qpgc {

namespace {
using EdgeSet = std::unordered_set<std::pair<NodeId, NodeId>, PairHash>;
}  // namespace

UpdateBatch RandomInsertions(const Graph& g, size_t count, uint64_t seed) {
  Rng rng(seed);
  const size_t n = g.num_nodes();
  QPGC_CHECK(n >= 2);
  UpdateBatch batch;
  EdgeSet chosen;
  size_t guard = 0;
  while (batch.size() < count && guard < count * 20 + 64) {
    ++guard;
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    if (u == v || g.HasEdge(u, v)) continue;
    if (!chosen.insert({u, v}).second) continue;
    batch.Insert(u, v);
  }
  return batch;
}

UpdateBatch RandomDeletions(const Graph& g, size_t count, uint64_t seed) {
  Rng rng(seed);
  auto edges = g.EdgeList();
  QPGC_CHECK(!edges.empty());
  rng.Shuffle(edges);
  UpdateBatch batch;
  for (size_t i = 0; i < edges.size() && batch.size() < count; ++i) {
    batch.Delete(edges[i].first, edges[i].second);
  }
  return batch;
}

UpdateBatch RandomMixed(const Graph& g, size_t count, double insert_fraction,
                        uint64_t seed) {
  Rng rng(seed);
  const size_t n_ins = static_cast<size_t>(count * insert_fraction);
  const size_t n_del = count - n_ins;
  UpdateBatch ins = RandomInsertions(g, n_ins, seed ^ 0x1111);
  UpdateBatch del = RandomDeletions(g, n_del, seed ^ 0x2222);
  // Interleave deterministically.
  UpdateBatch batch;
  size_t i = 0, d = 0;
  while (i < ins.size() || d < del.size()) {
    if (i < ins.size() && (d >= del.size() || rng.Chance(0.5))) {
      batch.updates.push_back(ins.updates[i++]);
    } else if (d < del.size()) {
      batch.updates.push_back(del.updates[d++]);
    }
  }
  return batch;
}

}  // namespace qpgc
