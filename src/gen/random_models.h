// Copyright 2026 The QPGC Authors.
//
// Structural random-graph models emulating the paper's dataset families
// (DESIGN.md §4). Each model exposes the knobs that drive the two
// compression ratios: SCC mass (reciprocity), leaf redundancy (attachment
// spread), topology diversity and label diversity.

#ifndef QPGC_GEN_RANDOM_MODELS_H_
#define QPGC_GEN_RANDOM_MODELS_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"

namespace qpgc {

/// Directed preferential attachment (social networks: facebook, wikiVote,
/// socEpinions, Youtube, wikiTalk). Each new node draws `out_degree` targets
/// proportional to degree+1; each edge is reciprocated with probability
/// `reciprocity` — reciprocity is what creates the giant SCC that makes
/// social networks compress so well for reachability.
Graph PreferentialAttachment(size_t num_nodes, size_t out_degree,
                             double reciprocity, uint64_t seed);

/// Linear copying model (web graphs: NotreDame, California). A new page
/// picks a prototype and copies each of its links with probability
/// `copy_prob`, otherwise links uniformly. Produces hub/authority structure
/// and large families of structurally identical leaf pages.
Graph CopyingModel(size_t num_nodes, size_t out_degree, double copy_prob,
                   uint64_t seed);

/// P2P overlay (Gnutella): an ultrapeer core arranged in `num_layers`
/// layers with query-forwarding edges, wrap-around links closing the core,
/// and occasional long links — plus a large pendant fringe of leaf peers
/// that hang off random core ultrapeers (the Gnutella leaf/ultrapeer
/// architecture). Pendants are what reachability equivalence collapses.
Graph LayeredRandom(size_t num_nodes, size_t num_layers, size_t out_degree,
                    double long_link_prob, uint64_t seed);

/// Temporal citation graph (citHepTh, Citation): node i cites earlier
/// papers, preferring recent and highly cited ones, with reference lists
/// frequently copied from a related paper. `mutual_cite_prob` adds
/// same-window back-citations (simultaneous revisions citing each other),
/// the cyclic mass real citation snapshots contain; with the default 0 the
/// graph is acyclic by construction.
Graph CitationDag(size_t num_nodes, size_t out_degree, double recency_bias,
                  uint64_t seed, double mutual_cite_prob = 0.0);

/// Autonomous-system style topology (Internet): directed customer->provider
/// announcements over a preferential core, with partial route back-export
/// and bidirectional peering — a transit SCC plus a directed stub fringe.
Graph InternetTopology(size_t num_nodes, double peering_fraction,
                       uint64_t seed);

/// Rewires `fraction` of the nodes into structural twins: each twin copies
/// the label and the entire out-neighborhood of a (non-twin) prototype.
/// This is the generator's rendition of the duplicate content real graphs
/// are full of — mirror pages, reposted videos, duplicated product entries,
/// cloned reference lists — and it is exactly what both equivalence
/// relations merge. Twins are drawn from the id range
/// [lo_fraction * n, n); in temporal models high ids are recent nodes,
/// which keeps twins lightly cited (ancestor sets stay equal).
void CloneOutNeighborhoods(Graph& g, double fraction, double lo_fraction,
                           uint64_t seed);

}  // namespace qpgc

#endif  // QPGC_GEN_RANDOM_MODELS_H_
