// Copyright 2026 The QPGC Authors.
//
// Graph evolution for Exp-4 (Figures 12(i)-(l)):
//  * Densification-law growth [17]: at iteration i, |V(i+1)| = beta * |V(i)|
//    and |E(i+1)| = |V(i+1)|^alpha — denser and denser graphs.
//  * Power-law growth [20]: edge count grows by a fixed rate per step, and
//    each new edge attaches to a high-degree endpoint with probability 0.8.

#ifndef QPGC_GEN_EVOLUTION_H_
#define QPGC_GEN_EVOLUTION_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/update.h"

namespace qpgc {

/// Densifying synthetic series: returns the graph of iteration `iteration`
/// (0-based), with |V| = v0 * beta^iteration and |E| = |V|^alpha, labels
/// uniform over num_labels. Deterministic in seed.
Graph DensifiedGraph(size_t v0, double alpha, double beta, size_t num_labels,
                     int iteration, uint64_t seed);

/// One power-law growth step: adds `g.num_edges() * growth_rate` new edges;
/// with probability `high_degree_prob` an endpoint is drawn proportionally
/// to its degree, otherwise uniformly. Returns the batch actually applied.
UpdateBatch PowerLawGrowthStep(Graph& g, double growth_rate,
                               double high_degree_prob, uint64_t seed);

}  // namespace qpgc

#endif  // QPGC_GEN_EVOLUTION_H_
