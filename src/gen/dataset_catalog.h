// Copyright 2026 The QPGC Authors.
//
// Offline stand-ins for the paper's evaluation datasets (Section 6). The
// real graphs are SNAP / web downloads; this environment is offline, so each
// dataset is emulated by the structural model of its family, scaled 5-20x
// down (EXPERIMENTS.md records paper-vs-measured sizes). A user with the
// original files can load them through graph/io.h instead — every harness
// takes a plain Graph.

#ifndef QPGC_GEN_DATASET_CATALOG_H_
#define QPGC_GEN_DATASET_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace qpgc {

/// Dataset family, deciding the generator used.
enum class DatasetFamily { kSocial, kWeb, kP2P, kCitation, kInternet };

/// A named dataset stand-in.
struct DatasetSpec {
  std::string name;       // paper's dataset name
  DatasetFamily family;
  size_t num_nodes;       // scaled size
  size_t num_labels;      // 0 = unlabeled (reachability experiments)
  uint64_t seed;
  /// Family-specific structure knob: reciprocity (social), back-link rate
  /// (web), wrap rate (P2P), recency bias (citation), back-export rate
  /// (Internet). Drives SCC mass and hence RCr.
  double structure;
  /// Fraction of nodes rewired into structural twins (duplicate content —
  /// mirror pages, reposts, cloned reference lists). Drives bisimulation
  /// merging and hence PCr.
  double twin_fraction;
  // Paper-reported reference values for EXPERIMENTS.md (sizes as published).
  size_t paper_nodes;
  size_t paper_edges;
  double paper_rc_r;      // Table 1 RCr (reachability), or -1 if n/a
  double paper_pc_r;      // Table 2 PCr (pattern), or -1 if n/a
};

/// The ten reachability datasets of Table 1, in table order.
const std::vector<DatasetSpec>& ReachabilityDatasets();

/// The five labeled pattern datasets of Table 2, in table order.
const std::vector<DatasetSpec>& PatternDatasets();

/// Instantiates a dataset stand-in (deterministic in spec.seed).
Graph MakeDataset(const DatasetSpec& spec);

/// Looks a spec up by name, reachability catalog first. Aborts if unknown.
const DatasetSpec& FindDataset(const std::string& name);

/// Looks a spec up in the *pattern* catalog (labeled stand-ins). Several
/// names (Youtube, Internet, P2P) exist in both catalogs with different
/// label alphabets; pattern experiments must use this lookup.
const DatasetSpec& FindPatternDataset(const std::string& name);

}  // namespace qpgc

#endif  // QPGC_GEN_DATASET_CATALOG_H_
