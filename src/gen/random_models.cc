// Copyright 2026 The QPGC Authors.

#include "gen/random_models.h"

#include <algorithm>
#include <cmath>

#include "graph/builder.h"
#include "util/rng.h"

namespace qpgc {

namespace {

// Out-degree with the heavy skew of real graphs: a substantial fraction of
// nodes emit nothing (lurkers, dangling pages, never-citing papers), and
// the rest draw around `mean`. Leaf mass is what both compressions feed on,
// so generators must produce it the way real datasets do.
size_t SkewedOutDegree(Rng& rng, size_t mean, double leaf_fraction) {
  if (rng.Chance(leaf_fraction)) return 0;
  // 1 + geometric-ish around mean.
  size_t d = 1;
  while (d < mean * 3 && rng.Chance(1.0 - 1.0 / static_cast<double>(mean))) {
    ++d;
  }
  return d;
}

}  // namespace

Graph PreferentialAttachment(size_t num_nodes, size_t out_degree,
                             double reciprocity, uint64_t seed) {
  QPGC_CHECK(num_nodes >= 2);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  // Degree-proportional pool; nodes enter as they arrive.
  std::vector<NodeId> pool{0};
  // ~35% of users never link out (lurkers) — they still receive edges.
  constexpr double kLeafFraction = 0.35;
  for (NodeId v = 1; v < num_nodes; ++v) {
    const size_t m =
        std::min<size_t>(SkewedOutDegree(rng, out_degree, kLeafFraction), v);
    for (size_t i = 0; i < m; ++i) {
      const NodeId target = pool[rng.Uniform(pool.size())];
      if (target == v) continue;
      builder.AddEdge(v, target);
      pool.push_back(target);
      if (rng.Chance(reciprocity)) {
        builder.AddEdge(target, v);
        pool.push_back(v);
      }
    }
    pool.push_back(v);
  }
  return builder.Build();
}

Graph CopyingModel(size_t num_nodes, size_t out_degree, double copy_prob,
                   uint64_t seed) {
  QPGC_CHECK(num_nodes >= 2);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  std::vector<std::vector<NodeId>> out(num_nodes);
  // Web graphs: plenty of dangling pages, plus navigational back-links that
  // create the well-known giant SCC of the web.
  constexpr double kLeafFraction = 0.3;
  constexpr double kBackLink = 0.25;
  for (NodeId v = 1; v < num_nodes; ++v) {
    const NodeId prototype = static_cast<NodeId>(rng.Uniform(v));
    const size_t m =
        std::min<size_t>(SkewedOutDegree(rng, out_degree, kLeafFraction), v);
    for (size_t i = 0; i < m; ++i) {
      NodeId target;
      if (!out[prototype].empty() && rng.Chance(copy_prob)) {
        target = out[prototype][rng.Uniform(out[prototype].size())];
      } else {
        target = static_cast<NodeId>(rng.Uniform(v));
      }
      if (target == v) continue;
      builder.AddEdge(v, target);
      out[v].push_back(target);
      if (rng.Chance(kBackLink)) builder.AddEdge(target, v);
    }
  }
  return builder.Build();
}

Graph LayeredRandom(size_t num_nodes, size_t num_layers, size_t out_degree,
                    double long_link_prob, uint64_t seed) {
  QPGC_CHECK(num_nodes >= num_layers * 2 && num_layers >= 2);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  // Ultrapeer core: the first ~45% of peers, layered with wrap-around
  // links. Pendant fringe: leaf peers attached to random ultrapeers, mostly
  // sink-only (free riders) — the redundancy reachability equivalence
  // collapses, as in real Gnutella snapshots.
  const size_t core = std::max(num_layers * 2, num_nodes * 45 / 100);
  const size_t per_layer = core / num_layers;
  const auto layer_of = [&](NodeId v) -> size_t {
    return std::min<size_t>(v / per_layer, num_layers - 1);
  };
  const auto pick_in_layer = [&](size_t layer) -> NodeId {
    const size_t lo = layer * per_layer;
    const size_t hi = layer == num_layers - 1 ? core : (layer + 1) * per_layer;
    return static_cast<NodeId>(lo + rng.Uniform(hi - lo));
  };
  constexpr double kWrap = 0.5;
  for (NodeId v = 0; v < core; ++v) {
    const size_t layer = layer_of(v);
    const size_t m = SkewedOutDegree(rng, out_degree, /*leaf_fraction=*/0.1);
    for (size_t i = 0; i < m; ++i) {
      NodeId target;
      if (rng.Chance(long_link_prob)) {
        target = static_cast<NodeId>(rng.Uniform(core));
      } else if (layer + 1 < num_layers) {
        target = pick_in_layer(layer + 1);
      } else if (rng.Chance(kWrap)) {
        target = pick_in_layer(0);  // close the overlay ring
      } else {
        continue;  // bottom-layer peer without a back-link
      }
      if (target == v) continue;
      builder.AddEdge(v, target);
    }
  }
  for (NodeId v = static_cast<NodeId>(core); v < num_nodes; ++v) {
    // Each leaf peer registers with 1-2 ultrapeers; a quarter also forward
    // queries back into the core.
    const size_t registrations = 1 + rng.Uniform(2);
    for (size_t i = 0; i < registrations; ++i) {
      builder.AddEdge(static_cast<NodeId>(rng.Uniform(core)), v);
    }
    if (rng.Chance(0.25)) {
      builder.AddEdge(v, static_cast<NodeId>(rng.Uniform(core)));
    }
  }
  return builder.Build();
}

Graph CitationDag(size_t num_nodes, size_t out_degree, double recency_bias,
                  uint64_t seed, double mutual_cite_prob) {
  QPGC_CHECK(num_nodes >= 2);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  std::vector<std::vector<NodeId>> refs(num_nodes);
  // Citation networks: reference lists are heavily copied from related work
  // (which is what makes whole groups of papers reachability- and
  // bisimulation-equivalent), and a fraction of papers cite nothing in the
  // corpus.
  constexpr double kLeafFraction = 0.3;
  constexpr double kCopyRefs = 0.6;
  for (NodeId v = 1; v < num_nodes; ++v) {
    const size_t m =
        std::min<size_t>(SkewedOutDegree(rng, out_degree, kLeafFraction), v);
    if (m == 0) continue;
    const NodeId prototype = static_cast<NodeId>(rng.Uniform(v));
    for (size_t i = 0; i < m; ++i) {
      NodeId target;
      if (!refs[prototype].empty() && rng.Chance(kCopyRefs)) {
        target = refs[prototype][rng.Uniform(refs[prototype].size())];
      } else if (rng.Chance(recency_bias)) {
        const size_t window = std::max<size_t>(1, v / 8);
        target = static_cast<NodeId>(v - 1 - rng.Uniform(window));
        // Simultaneous revisions sometimes cite each other — the cyclic
        // mass real citation snapshots contain.
        if (rng.Chance(mutual_cite_prob)) builder.AddEdge(target, v);
      } else {
        target = static_cast<NodeId>(rng.Uniform(v));
      }
      builder.AddEdge(v, target);
      refs[v].push_back(target);
    }
  }
  return builder.Build();
}

Graph InternetTopology(size_t num_nodes, double peering_fraction,
                       uint64_t seed) {
  QPGC_CHECK(num_nodes >= 2);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  std::vector<NodeId> pool{0};
  // AS-level routing edges are directional exports: customers announce to
  // providers; only some providers propagate routes back (giving a core SCC
  // among transit ASes, with a directed stub fringe — the mixed structure
  // behind the paper's mid-range 16% RCr).
  constexpr double kBackExport = 0.35;
  for (NodeId v = 1; v < num_nodes; ++v) {
    const NodeId provider = pool[rng.Uniform(pool.size())];
    if (provider != v) {
      builder.AddEdge(v, provider);
      if (rng.Chance(kBackExport)) builder.AddEdge(provider, v);
      pool.push_back(provider);
      pool.push_back(provider);  // providers accumulate attachment mass
    }
    pool.push_back(v);
    if (rng.Chance(peering_fraction) && v >= 2) {
      const NodeId peer = static_cast<NodeId>(rng.Uniform(v));
      if (peer != v) {
        builder.AddEdge(v, peer);
        builder.AddEdge(peer, v);
      }
    }
  }
  return builder.Build();
}

void CloneOutNeighborhoods(Graph& g, double fraction, double lo_fraction,
                           uint64_t seed) {
  const size_t n = g.num_nodes();
  if (n < 4 || fraction <= 0.0) return;
  Rng rng(seed);
  const NodeId lo = static_cast<NodeId>(static_cast<double>(n) * lo_fraction);
  QPGC_CHECK(lo < n);

  // Choose twins from [lo, n); prototypes come from the non-twin rest so a
  // twin never copies a node that is itself about to be rewired.
  std::vector<NodeId> candidates;
  candidates.reserve(n - lo);
  for (NodeId v = lo; v < n; ++v) candidates.push_back(v);
  rng.Shuffle(candidates);
  const size_t num_twins = std::min(
      candidates.size(), static_cast<size_t>(static_cast<double>(n) * fraction));
  std::vector<uint8_t> is_twin(n, 0);
  for (size_t i = 0; i < num_twins; ++i) is_twin[candidates[i]] = 1;

  // Prototypes come from a small pool — duplicate content clusters around a
  // few canonical originals (survey reference lists, popular reposts), and
  // that concentration is what lets whole twin groups collapse together.
  std::vector<NodeId> pool;
  const size_t pool_target = std::max<size_t>(8, n / 32);
  for (int tries = 0; pool.size() < pool_target && tries < 4096; ++tries) {
    const NodeId p = static_cast<NodeId>(rng.Uniform(n));
    if (!is_twin[p]) pool.push_back(p);
  }
  if (pool.empty()) return;

  // Decide each twin's prototype, then rebuild the graph in one shot. Twins
  // copy the out-lists of popular prototypes, so per-edge AddEdge would pay
  // O(in-degree) sorted inserts into exactly the hubs every twin points at —
  // quadratic in the twin mass. Prototypes are never twins, so reading the
  // original adjacency is equivalent to the sequential rewiring.
  std::vector<NodeId> proto_of(n, kInvalidNode);
  for (size_t i = 0; i < num_twins; ++i) {
    const NodeId v = candidates[i];
    NodeId prototype = v;
    for (int tries = 0; tries < 32; ++tries) {
      const NodeId p = pool[rng.Uniform(pool.size())];
      if (p != v) {
        prototype = p;
        break;
      }
    }
    if (prototype == v) continue;
    proto_of[v] = prototype;
  }

  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId prototype = proto_of[v];
    if (prototype == kInvalidNode) {
      builder.SetLabel(v, g.label(v));
      for (NodeId w : g.OutNeighbors(v)) builder.AddEdge(v, w);
    } else {
      builder.SetLabel(v, g.label(prototype));
      for (NodeId w : g.OutNeighbors(prototype)) {
        if (w != v) builder.AddEdge(v, w);
      }
    }
  }
  g = builder.Build();
}

}  // namespace qpgc
