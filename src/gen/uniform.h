// Copyright 2026 The QPGC Authors.
//
// The paper's synthetic graph generator (Section 6): graphs controlled by
// the number of nodes |V|, the number of edges |E| and the size |L| of the
// label alphabet, with edges drawn uniformly at random.

#ifndef QPGC_GEN_UNIFORM_H_
#define QPGC_GEN_UNIFORM_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"

namespace qpgc {

/// Generates a uniform random graph with `num_nodes` nodes, `num_edges`
/// distinct directed edges (no self-loops) and labels uniform over
/// [0, num_labels). Deterministic in `seed`.
Graph GenerateUniform(size_t num_nodes, size_t num_edges, size_t num_labels,
                      uint64_t seed);

/// Assigns labels from a Zipf(s) distribution over [0, num_labels) —
/// real-life label frequencies are heavy-tailed. In place.
void AssignZipfLabels(Graph& g, size_t num_labels, double zipf_s,
                      uint64_t seed);

}  // namespace qpgc

#endif  // QPGC_GEN_UNIFORM_H_
