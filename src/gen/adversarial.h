// Copyright 2026 The QPGC Authors.
//
// Adversarial deep-graph generators: the topologies graph-summarization
// systems are stressed with (long chains, layered DAGs, brooms, grids).
// Their common trait is large refinement *depth* — the maximum bisimulation
// needs Θ(depth) refinement rounds to converge — which is exactly what
// degrades round-based fixpoint engines to Θ(depth · |E|) and what the
// Paige–Tarjan engine handles in O(|E| log |V|). All generators are
// deterministic in their arguments (seeded where randomness exists).

#ifndef QPGC_GEN_ADVERSARIAL_H_
#define QPGC_GEN_ADVERSARIAL_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"

namespace qpgc {

/// A directed chain v0 -> v1 -> ... -> v_{depth-1}. Labels cycle through
/// [0, num_labels). With num_labels == 1 every node is distinguished only
/// by its distance to the sink, the worst case for round-based refinement:
/// depth rounds, Θ(depth²) total work for the signature engine.
Graph LongChain(size_t depth, size_t num_labels = 1);

/// A layered DAG: `depth` layers of `width` nodes, one label. Every node of
/// layer l points to the next layer at the same `out_degree` column offsets
/// (offsets drawn per layer from `seed`), so each layer is
/// rotation-symmetric: all of its nodes are bisimilar, the maximum
/// bisimulation has exactly `depth` blocks, and reaching it takes depth
/// refinement rounds — Θ(depth · |E|) for the signature engine.
Graph LayeredDag(size_t depth, size_t width, size_t out_degree,
                 uint64_t seed);

/// A broom: a chain (handle) of `handle_depth` nodes whose last node fans
/// out to `num_bristles` same-labeled leaves. The bristles collapse into
/// one block immediately; the handle still forces depth-many splits.
Graph Broom(size_t handle_depth, size_t num_bristles);

/// A directed grid: node (r, c) points to (r+1, c) and (r, c+1). Refinement
/// depth is rows + cols; nodes on the same anti-diagonal with the same
/// remaining row/col extent are bisimilar.
Graph DirectedGrid(size_t rows, size_t cols);

/// A complete binary tree of `depth` levels (2^depth - 1 nodes), edges
/// parent -> child, one label. Siblings are bisimilar, so the maximum
/// bisimulation has exactly `depth` blocks — reached only after depth
/// rounds of refinement.
Graph CompleteBinaryTree(size_t depth);

}  // namespace qpgc

#endif  // QPGC_GEN_ADVERSARIAL_H_
