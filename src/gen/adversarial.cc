// Copyright 2026 The QPGC Authors.

#include "gen/adversarial.h"

#include <algorithm>

#include "graph/builder.h"
#include "util/rng.h"

namespace qpgc {

Graph LongChain(size_t depth, size_t num_labels) {
  QPGC_CHECK(depth >= 1 && num_labels >= 1);
  GraphBuilder builder(depth);
  for (NodeId v = 0; v < depth; ++v) {
    builder.SetLabel(v, static_cast<Label>(v % num_labels));
    if (v + 1 < depth) builder.AddEdge(v, v + 1);
  }
  return builder.Build();
}

Graph LayeredDag(size_t depth, size_t width, size_t out_degree,
                 uint64_t seed) {
  QPGC_CHECK(depth >= 1 && width >= 1 && out_degree >= 1 &&
             out_degree <= width);
  Rng rng(seed);
  const size_t n = depth * width;
  GraphBuilder builder(n);
  std::vector<size_t> offsets(width);
  for (size_t i = 0; i < width; ++i) offsets[i] = i;
  for (size_t layer = 0; layer + 1 < depth; ++layer) {
    // One shared offset set per layer keeps each layer rotation-symmetric:
    // column c of layer l points to columns (c + o) mod width of layer
    // l + 1 for the same offsets o, so a cyclic column shift is an
    // automorphism and all nodes of a layer stay bisimilar.
    rng.Shuffle(offsets);
    const size_t base = (layer + 1) * width;
    for (size_t c = 0; c < width; ++c) {
      const NodeId v = static_cast<NodeId>(layer * width + c);
      for (size_t d = 0; d < out_degree; ++d) {
        builder.AddEdge(
            v, static_cast<NodeId>(base + (c + offsets[d]) % width));
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) builder.SetLabel(v, 0);
  return builder.Build();
}

Graph Broom(size_t handle_depth, size_t num_bristles) {
  QPGC_CHECK(handle_depth >= 1);
  const size_t n = handle_depth + num_bristles;
  GraphBuilder builder(n);
  for (NodeId v = 0; v < handle_depth; ++v) {
    builder.SetLabel(v, 0);
    if (v + 1 < handle_depth) builder.AddEdge(v, v + 1);
  }
  const NodeId head = static_cast<NodeId>(handle_depth - 1);
  for (size_t i = 0; i < num_bristles; ++i) {
    const NodeId leaf = static_cast<NodeId>(handle_depth + i);
    builder.SetLabel(leaf, 1);
    builder.AddEdge(head, leaf);
  }
  return builder.Build();
}

Graph DirectedGrid(size_t rows, size_t cols) {
  QPGC_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder builder(rows * cols);
  const auto id = [cols](size_t r, size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      builder.SetLabel(id(r, c), 0);
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
    }
  }
  return builder.Build();
}

Graph CompleteBinaryTree(size_t depth) {
  QPGC_CHECK(depth >= 1 && depth < 31);
  const size_t n = (size_t{1} << depth) - 1;
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    builder.SetLabel(v, 0);
    const size_t left = 2 * static_cast<size_t>(v) + 1;
    if (left < n) builder.AddEdge(v, static_cast<NodeId>(left));
    if (left + 1 < n) builder.AddEdge(v, static_cast<NodeId>(left + 1));
  }
  return builder.Build();
}

}  // namespace qpgc
