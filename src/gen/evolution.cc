// Copyright 2026 The QPGC Authors.

#include "gen/evolution.h"

#include <cmath>

#include "gen/uniform.h"
#include "util/rng.h"

namespace qpgc {

Graph DensifiedGraph(size_t v0, double alpha, double beta, size_t num_labels,
                     int iteration, uint64_t seed) {
  double v = static_cast<double>(v0);
  for (int i = 0; i < iteration; ++i) v *= beta;
  const size_t nodes = static_cast<size_t>(v);
  const size_t edges = static_cast<size_t>(std::pow(v, alpha));
  return GenerateUniform(nodes, edges, num_labels, seed + iteration);
}

UpdateBatch PowerLawGrowthStep(Graph& g, double growth_rate,
                               double high_degree_prob, uint64_t seed) {
  Rng rng(seed);
  const size_t n = g.num_nodes();
  QPGC_CHECK(n >= 2);
  const size_t to_add = static_cast<size_t>(
      static_cast<double>(g.num_edges()) * growth_rate);

  // Degree-proportional endpoint pool.
  std::vector<NodeId> pool;
  pool.reserve(2 * g.num_edges());
  g.ForEachEdge([&](NodeId u, NodeId v) {
    pool.push_back(u);
    pool.push_back(v);
  });
  if (pool.empty()) {
    for (NodeId v = 0; v < n; ++v) pool.push_back(v);
  }

  const auto draw = [&]() -> NodeId {
    if (rng.Chance(high_degree_prob)) return pool[rng.Uniform(pool.size())];
    return static_cast<NodeId>(rng.Uniform(n));
  };

  UpdateBatch batch;
  size_t added = 0;
  size_t guard = 0;
  while (added < to_add && guard < to_add * 10 + 64) {
    ++guard;
    const NodeId u = draw();
    const NodeId v = draw();
    if (u == v || g.HasEdge(u, v)) continue;
    batch.Insert(u, v);
    g.AddEdge(u, v);
    pool.push_back(u);
    pool.push_back(v);
    ++added;
  }
  return batch;
}

}  // namespace qpgc
