// Copyright 2026 The QPGC Authors.

#include "util/status.h"

namespace qpgc {

std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* name = "UNKNOWN";
  switch (code_) {
    case StatusCode::kOk:
      name = "OK";
      break;
    case StatusCode::kInvalidArgument:
      name = "INVALID_ARGUMENT";
      break;
    case StatusCode::kNotFound:
      name = "NOT_FOUND";
      break;
    case StatusCode::kIoError:
      name = "IO_ERROR";
      break;
    case StatusCode::kCorruptData:
      name = "CORRUPT_DATA";
      break;
  }
  return std::string(name) + ": " + message_;
}

}  // namespace qpgc
