// Copyright 2026 The QPGC Authors.

#include "util/timer.h"

namespace qpgc {}  // namespace qpgc
