// Copyright 2026 The QPGC Authors.
//
// Memory accounting for the Fig. 12(d) experiment: report the resident bytes
// of a graph representation or an index, computed analytically from container
// capacities (deterministic, allocator-independent).

#ifndef QPGC_UTIL_MEMORY_H_
#define QPGC_UTIL_MEMORY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace qpgc {

/// Heap bytes held by a vector (capacity-based).
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Heap bytes held by a vector of vectors.
template <typename T>
size_t NestedVectorBytes(const std::vector<std::vector<T>>& v) {
  size_t total = v.capacity() * sizeof(std::vector<T>);
  for (const auto& inner : v) total += inner.capacity() * sizeof(T);
  return total;
}

/// Pretty-prints a byte count as B / KB / MB / GB with two decimals.
std::string FormatBytes(size_t bytes);

}  // namespace qpgc

#endif  // QPGC_UTIL_MEMORY_H_
