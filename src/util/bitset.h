// Copyright 2026 The QPGC Authors.
//
// A dynamic bitset sized at runtime, with the block-level operations the
// compression algorithms need: word access for hashing/equality of ranges,
// bulk OR (closure propagation), and fast iteration over set bits.

#ifndef QPGC_UTIL_BITSET_H_
#define QPGC_UTIL_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "util/common.h"

namespace qpgc {

/// Runtime-sized bitset backed by 64-bit words.
class Bitset {
 public:
  using Word = uint64_t;
  static constexpr size_t kWordBits = 64;

  Bitset() = default;
  /// Creates a bitset with `n` bits, all clear.
  explicit Bitset(size_t n) : n_bits_(n), words_((n + kWordBits - 1) / kWordBits, 0) {}

  /// Number of addressable bits.
  size_t size() const { return n_bits_; }
  /// Number of backing words.
  size_t num_words() const { return words_.size(); }

  /// Resizes to `n` bits; newly added bits are clear.
  void Resize(size_t n) {
    n_bits_ = n;
    words_.resize((n + kWordBits - 1) / kWordBits, 0);
    ClearTail();
  }

  void Set(size_t i) {
    QPGC_DCHECK(i < n_bits_);
    words_[i / kWordBits] |= Word{1} << (i % kWordBits);
  }
  void Clear(size_t i) {
    QPGC_DCHECK(i < n_bits_);
    words_[i / kWordBits] &= ~(Word{1} << (i % kWordBits));
  }
  bool Test(size_t i) const {
    QPGC_DCHECK(i < n_bits_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
  }

  /// Clears all bits without changing the size.
  void Reset() { std::memset(words_.data(), 0, words_.size() * sizeof(Word)); }

  /// Sets all bits.
  void Fill() {
    std::memset(words_.data(), 0xff, words_.size() * sizeof(Word));
    ClearTail();
  }

  /// this |= other. Sizes must match.
  void OrWith(const Bitset& other) {
    QPGC_DCHECK(other.n_bits_ == n_bits_);
    const Word* src = other.words_.data();
    Word* dst = words_.data();
    for (size_t i = 0; i < words_.size(); ++i) dst[i] |= src[i];
  }

  /// this &= other. Sizes must match.
  void AndWith(const Bitset& other) {
    QPGC_DCHECK(other.n_bits_ == n_bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// this &= ~other. Sizes must match.
  void AndNotWith(const Bitset& other) {
    QPGC_DCHECK(other.n_bits_ == n_bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (Word w : words_) c += static_cast<size_t>(std::popcount(w));
    return c;
  }

  /// True if no bit is set.
  bool None() const {
    for (Word w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  bool operator==(const Bitset& other) const {
    return n_bits_ == other.n_bits_ && words_ == other.words_;
  }

  /// Calls `fn(i)` for every set bit `i` in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      Word w = words_[wi];
      while (w != 0) {
        const int b = std::countr_zero(w);
        fn(wi * kWordBits + static_cast<size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// Collects set bits into a vector of NodeId.
  std::vector<NodeId> ToVector() const {
    std::vector<NodeId> out;
    out.reserve(Count());
    ForEachSetBit([&](size_t i) { out.push_back(static_cast<NodeId>(i)); });
    return out;
  }

  /// Raw word storage, e.g. for hashing or exact-bytes partition refinement.
  const Word* words() const { return words_.data(); }
  Word* mutable_words() { return words_.data(); }

  /// Read-only view of the raw bytes (exact content; tail bits are zero).
  std::string_view BytesView() const {
    return std::string_view(reinterpret_cast<const char*>(words_.data()),
                            words_.size() * sizeof(Word));
  }

  /// Heap bytes held by this bitset (for memory accounting).
  size_t MemoryBytes() const { return words_.capacity() * sizeof(Word); }

 private:
  // Keeps bits past n_bits_ zero so that word-level equality and hashing are
  // well defined.
  void ClearTail() {
    const size_t tail = n_bits_ % kWordBits;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (Word{1} << tail) - 1;
    }
  }

  size_t n_bits_ = 0;
  std::vector<Word> words_;
};

/// A rectangular array of bitsets (rows of equal width), stored contiguously.
/// Used for blocked transitive-closure computation where `rows` nodes each
/// track reachability into a block of `cols` target nodes.
class BitMatrix {
 public:
  using Word = Bitset::Word;

  BitMatrix() = default;
  BitMatrix(size_t rows, size_t cols)
      : rows_(rows),
        cols_(cols),
        words_per_row_((cols + Bitset::kWordBits - 1) / Bitset::kWordBits),
        data_(rows * words_per_row_, 0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t words_per_row() const { return words_per_row_; }

  void Reset() { std::memset(data_.data(), 0, data_.size() * sizeof(Word)); }

  void Set(size_t r, size_t c) {
    QPGC_DCHECK(r < rows_ && c < cols_);
    Row(r)[c / Bitset::kWordBits] |= Word{1} << (c % Bitset::kWordBits);
  }
  bool Test(size_t r, size_t c) const {
    QPGC_DCHECK(r < rows_ && c < cols_);
    return (Row(r)[c / Bitset::kWordBits] >> (c % Bitset::kWordBits)) & 1;
  }

  /// row(dst) |= row(src).
  void OrRowInto(size_t src, size_t dst) {
    const Word* s = Row(src);
    Word* d = Row(dst);
    for (size_t i = 0; i < words_per_row_; ++i) d[i] |= s[i];
  }

  Word* Row(size_t r) { return data_.data() + r * words_per_row_; }
  const Word* Row(size_t r) const { return data_.data() + r * words_per_row_; }

  /// Exact bytes of a row, for partition refinement keyed on row content.
  std::string_view RowBytes(size_t r) const {
    return std::string_view(reinterpret_cast<const char*>(Row(r)),
                            words_per_row_ * sizeof(Word));
  }

  size_t MemoryBytes() const { return data_.capacity() * sizeof(Word); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t words_per_row_ = 0;
  std::vector<Word> data_;
};

}  // namespace qpgc

#endif  // QPGC_UTIL_BITSET_H_
