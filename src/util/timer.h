// Copyright 2026 The QPGC Authors.
//
// Wall-clock timing for the benchmark harness.

#ifndef QPGC_UTIL_TIMER_H_
#define QPGC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace qpgc {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qpgc

#endif  // QPGC_UTIL_TIMER_H_
