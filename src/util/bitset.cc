// Copyright 2026 The QPGC Authors.
//
// Bitset and BitMatrix are header-only; this translation unit exists to give
// the build a home for future out-of-line helpers and to keep one .cc per
// header in the module layout.

#include "util/bitset.h"

namespace qpgc {}  // namespace qpgc
