// Copyright 2026 The QPGC Authors.
//
// Minimal Status/Result types for fallible operations at the I/O boundary
// (file loading, parsing). The algorithmic core never fails; it checks its
// invariants with QPGC_CHECK instead.

#ifndef QPGC_UTIL_STATUS_H_
#define QPGC_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/common.h"
#include "util/lifetime_annotations.h"

namespace qpgc {

/// Error category for Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruptData,
};

/// Result of a fallible operation: a code plus a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status CorruptData(std::string m) {
    return Status(StatusCode::kCorruptData, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const QPGC_LIFETIME_BOUND { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Minimal StatusOr.
template <typename T>
class Result {
 public:
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    QPGC_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const QPGC_LIFETIME_BOUND { return status_; }

  const T& value() const& QPGC_LIFETIME_BOUND {
    QPGC_CHECK(status_.ok());
    return value_;
  }
  T& value() & QPGC_LIFETIME_BOUND {
    QPGC_CHECK(status_.ok());
    return value_;
  }
  T&& value() && {
    QPGC_CHECK(status_.ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace qpgc

#endif  // QPGC_UTIL_STATUS_H_
