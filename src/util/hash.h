// Copyright 2026 The QPGC Authors.
//
// Hashing helpers: 64-bit mixing, hash combining, and hashing of byte ranges.
// Partition refinement in reach/ and bisim/ keys hash tables on *exact* byte
// content (std::string_view) so hash collisions can never merge distinct
// classes; these helpers only accelerate the table lookups.

#ifndef QPGC_UTIL_HASH_H_
#define QPGC_UTIL_HASH_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

namespace qpgc {

/// Strong 64-bit mix (SplitMix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Combines a hash with a new value, boost-style but 64-bit.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

/// FNV-1a over raw bytes.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Hash functor for pair keys in unordered containers.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    return static_cast<size_t>(
        HashCombine(Mix64(static_cast<uint64_t>(p.first)),
                    static_cast<uint64_t>(p.second)));
  }
};

/// Hash functor for small integer vectors (e.g. sorted successor-block ids in
/// bisimulation signatures).
struct VectorHash {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    uint64_t h = 0x9e3779b97f4a7c15ull ^ v.size();
    for (const T& x : v) h = HashCombine(h, static_cast<uint64_t>(x));
    return static_cast<size_t>(h);
  }
};

}  // namespace qpgc

#endif  // QPGC_UTIL_HASH_H_
