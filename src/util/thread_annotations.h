// Copyright 2026 The QPGC Authors.
//
// Clang Thread Safety Analysis surface for the whole repository: the
// annotation macros plus the annotated qpgc::Mutex / qpgc::MutexLock
// wrappers every lock in the codebase goes through. With Clang,
// `-Wthread-safety` turns the serving layer's concurrency contracts (which
// mutex guards which member, which helpers require which lock — see
// docs/CONCURRENCY.md) into compile errors under -Werror; with other
// compilers the macros expand to nothing and Mutex degrades to a plain
// std::mutex wrapper with zero overhead.
//
// This header is the ONLY place in the repository allowed to name
// std::mutex or the std::lock_guard family directly — tools/qpgc_lint.py
// enforces that, so un-annotated (and therefore unanalyzable) locking can
// never sneak back in. The one sanctioned exception to the "all shared
// state is Mutex-guarded" rule is the published-snapshot slot's
// std::atomic<std::shared_ptr> fast path in serve/snapshot_manager.h,
// documented there and allowlisted by the lint.
//
// Annotation cheat sheet (attributes are per Clang's thread-safety docs):
//   QPGC_GUARDED_BY(mu)   member may only be read/written with mu held
//   QPGC_REQUIRES(mu)     function may only be called with mu held
//   QPGC_ACQUIRE(mu)      function acquires mu and does not release it
//   QPGC_RELEASE(mu)      function releases mu
//   QPGC_EXCLUDES(mu)     function must NOT be called with mu held
//
// Negative-compile tests in tests/static_analysis/ prove the annotations
// actually bite (an unlocked GUARDED_BY access and an unlocked REQUIRES
// call both fail to compile under Clang).

#ifndef QPGC_UTIL_THREAD_ANNOTATIONS_H_
#define QPGC_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>  // qpgc-lint: allow(raw-mutex)

// Clang (any version this repo supports) implements the thread-safety
// attributes; GCC and MSVC silently accept the code without the analysis.
#if defined(__clang__)
#define QPGC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define QPGC_THREAD_ANNOTATION_(x)
#endif

#define QPGC_CAPABILITY(x) QPGC_THREAD_ANNOTATION_(capability(x))
#define QPGC_SCOPED_CAPABILITY QPGC_THREAD_ANNOTATION_(scoped_lockable)
#define QPGC_GUARDED_BY(x) QPGC_THREAD_ANNOTATION_(guarded_by(x))
#define QPGC_PT_GUARDED_BY(x) QPGC_THREAD_ANNOTATION_(pt_guarded_by(x))
#define QPGC_REQUIRES(...) \
  QPGC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define QPGC_ACQUIRE(...) \
  QPGC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define QPGC_RELEASE(...) \
  QPGC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define QPGC_EXCLUDES(...) QPGC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define QPGC_RETURN_CAPABILITY(x) QPGC_THREAD_ANNOTATION_(lock_returned(x))
#define QPGC_NO_THREAD_SAFETY_ANALYSIS \
  QPGC_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace qpgc {

/// The repository's mutex: a std::mutex carrying the `capability` attribute
/// so Clang can track which locks protect which state. Same cost and
/// semantics as std::mutex everywhere.
class QPGC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QPGC_ACQUIRE() { mu_.lock(); }
  void Unlock() QPGC_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;  // qpgc-lint: allow(raw-mutex)
};

/// RAII lock for Mutex (the std::lock_guard counterpart). Scoped-capability
/// annotated: Clang treats the guarded region as holding the mutex from
/// construction to the end of the enclosing scope.
class QPGC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QPGC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() QPGC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace qpgc

#endif  // QPGC_UTIL_THREAD_ANNOTATIONS_H_
