// Copyright 2026 The QPGC Authors.
//
// Deterministic, seedable random number generation for the synthetic graph
// generators and workload generators. All experiments in the paper harness
// are reproducible given a seed; we avoid std::mt19937 to keep cross-platform
// determinism and speed.

#ifndef QPGC_UTIL_RNG_H_
#define QPGC_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace qpgc {

/// xoshiro256** PRNG seeded via SplitMix64. Fast, high quality, deterministic
/// across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  /// Re-seeds the generator deterministically.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound) for bound > 0 (Lemire's unbiased method).
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(Uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element. Vector must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    QPGC_DCHECK(!v.empty());
    return v[static_cast<size_t>(Uniform(v.size()))];
  }

 private:
  uint64_t s_[4];
};

/// Zipf-distributed sampler over {0, 1, ..., n-1} with exponent `s`.
/// Rank 0 is the most frequent value. Used for label assignment (real-life
/// label distributions are heavy-tailed) and preferential workloads.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Samples one value in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1.0
};

}  // namespace qpgc

#endif  // QPGC_UTIL_RNG_H_
