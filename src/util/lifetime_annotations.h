// Copyright 2026 The QPGC Authors.
//
// Lifetime-contract annotation surface for the whole repository — the
// compile-time half of the capability model whose concurrency side lives in
// util/thread_annotations.h. The serving stack is built on zero-copy
// handles: std::span neighbor runs into frozen CSR buffers, GraphView
// adapters referencing a base graph, snapshot accessors returning references
// into pooled side buffers that a BufferPool recycles the moment the last
// pin drops. Every one of those handles carries a lifetime contract ("valid
// only while the owner lives", "valid only while the pin is held"); these
// macros turn the common violations into Clang compile errors instead of
// doc-comment fine print. The taxonomy, the pin-scope rule, and the
// suppression policy are documented in docs/LIFETIMES.md.
//
//   QPGC_LIFETIME_BOUND   [[clang::lifetimebound]] — the returned reference/
//                         view is tied to the lifetime of the annotated
//                         parameter (or of *this when placed after the
//                         member function's cv-qualifiers). Binding the
//                         result of a call on a temporary, or returning a
//                         parameter-bound handle from a function whose
//                         owner argument is local, becomes -Wdangling /
//                         -Wreturn-stack-address.
//   QPGC_GSL_OWNER        [[gsl::Owner]] — the class owns the storage its
//                         handles point into (Graph, CsrGraph). Clang's
//                         statement-local -Wdangling-gsl analysis treats a
//                         destroyed Owner as invalidating Pointers obtained
//                         from it.
//   QPGC_GSL_POINTER      [[gsl::Pointer]] — the class is itself a
//                         non-owning view (ReversedView, ShardView):
//                         constructing one from a temporary Owner is
//                         -Wdangling-gsl, and the pin-escape analyzer
//                         (tools/qpgc_pin_escape.py) exempts it from the
//                         view-typed-member ban (a view may alias; classes
//                         that are not views may not hold bare views).
//
// With Clang the three warning groups involved (-Wdangling, -Wdangling-gsl,
// -Wreturn-stack-address) are promoted to errors unconditionally by the
// root CMakeLists, so the clang++ CI leg gates on them; other compilers
// compile the macros as no-ops with zero overhead. The dangle shapes the
// statement-local analysis cannot see (pin temporaries dereferenced across
// a full-expression, view-typed members, view returns of function-scoped
// owners) are covered by tools/qpgc_pin_escape.py, and the use-after-retire
// class is additionally caught dynamically by the ASan regression test
// (tests/static_analysis/). Negative-compile tests in tests/static_analysis/
// prove each layer actually rejects a planted dangle.

#ifndef QPGC_UTIL_LIFETIME_ANNOTATIONS_H_
#define QPGC_UTIL_LIFETIME_ANNOTATIONS_H_

// Clang implements both the lifetimebound attribute and the GSL Owner /
// Pointer analysis; feature-test each so future compilers that pick one up
// get it automatically while GCC/MSVC compile the code unchanged (an
// unguarded unknown attribute would trip -Wattributes under -Werror).
#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::lifetimebound)
#define QPGC_LIFETIME_BOUND [[clang::lifetimebound]]
#endif
#if __has_cpp_attribute(gsl::Owner)
#define QPGC_GSL_OWNER [[gsl::Owner]]
#endif
#if __has_cpp_attribute(gsl::Pointer)
#define QPGC_GSL_POINTER [[gsl::Pointer]]
#endif
#endif

#ifndef QPGC_LIFETIME_BOUND
#define QPGC_LIFETIME_BOUND
#endif
#ifndef QPGC_GSL_OWNER
#define QPGC_GSL_OWNER
#endif
#ifndef QPGC_GSL_POINTER
#define QPGC_GSL_POINTER
#endif

#endif  // QPGC_UTIL_LIFETIME_ANNOTATIONS_H_
