// Copyright 2026 The QPGC Authors.

#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace qpgc {

namespace {
inline uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& si : s_) si = SplitMix64(x);
  // Avoid the all-zero state (cannot occur from SplitMix64 in practice, but
  // cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  QPGC_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  QPGC_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  QPGC_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_[n - 1] = 1.0;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace qpgc
