// Copyright 2026 The QPGC Authors.

#include "util/memory.h"

#include <cstdio>

namespace qpgc {

std::string FormatBytes(size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (size_t{1} << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", b / (1ull << 30));
  } else if (bytes >= (size_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", b / (1ull << 20));
  } else if (bytes >= (size_t{1} << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2fKB", b / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return std::string(buf);
}

}  // namespace qpgc
