// Copyright 2026 The QPGC Authors.
//
// Basic shared definitions: integral node/edge id types and lightweight
// invariant-checking macros. The library does not throw exceptions; fatal
// invariant violations abort with a diagnostic (kept in release builds, as
// they guard algorithmic correctness rather than user input).

#ifndef QPGC_UTIL_COMMON_H_
#define QPGC_UTIL_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace qpgc {

/// Node identifier within a graph. Dense, 0-based.
using NodeId = uint32_t;
/// Edge identifier (index into an edge array). Dense, 0-based.
using EdgeId = uint64_t;
/// Node label. Labels are small dense integers; a `LabelTable` can map them
/// to/from strings at the I/O boundary.
using Label = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
/// Sentinel for "no label". Graphs without labels use kNoLabel everywhere.
inline constexpr Label kNoLabel = std::numeric_limits<Label>::max();

namespace internal {
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "QPGC_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}
}  // namespace internal

/// Invariant check that stays on in release builds. Use for algorithmic
/// invariants whose violation would silently corrupt results.
#define QPGC_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) {                                              \
      ::qpgc::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                           \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define QPGC_DCHECK(expr) QPGC_CHECK(expr)
#else
#define QPGC_DCHECK(expr) \
  do {                    \
  } while (0)
#endif

}  // namespace qpgc

#endif  // QPGC_UTIL_COMMON_H_
