// Copyright 2026 The QPGC Authors.

#include "graph/update.h"

#include <map>

namespace qpgc {

UpdateBatch ApplyBatch(Graph& g, const UpdateBatch& batch) {
  // Net effect per edge: the last effective operation wins; an edge that
  // ends in its original state contributes nothing.
  std::map<std::pair<NodeId, NodeId>, bool> original_present;
  for (const auto& up : batch.updates) {
    const auto key = std::make_pair(up.u, up.v);
    original_present.try_emplace(key, g.HasEdge(up.u, up.v));
    if (up.is_insert) {
      g.AddEdge(up.u, up.v);
    } else {
      g.RemoveEdge(up.u, up.v);
    }
  }
  UpdateBatch effective;
  for (const auto& [key, was_present] : original_present) {
    const bool now_present = g.HasEdge(key.first, key.second);
    if (now_present == was_present) continue;  // no net change
    if (now_present) {
      effective.Insert(key.first, key.second);
    } else {
      effective.Delete(key.first, key.second);
    }
  }
  return effective;
}

std::vector<UpdateBatch> SplitBatchByShard(const UpdateBatch& batch,
                                           const ShardPartition& part) {
  std::vector<UpdateBatch> split(part.num_shards);
  for (const EdgeUpdate& up : batch.updates) {
    QPGC_CHECK(up.u < part.shard_of.size() && up.v < part.shard_of.size());
    split[part.shard_of[up.u]].updates.push_back(up);
  }
  return split;
}

}  // namespace qpgc
