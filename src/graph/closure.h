// Copyright 2026 The QPGC Authors.
//
// Transitive-closure computation, in two flavors:
//
//  * FullClosure: one BFS per node, materializing the whole V x V closure as
//    a bit matrix. This is the paper's O(|V|(|V| + |E|)) reference procedure
//    (Section 3.2 computes Re exactly this way) — used for small graphs and
//    as the ground truth in property tests.
//
//  * BlockDescendants: the memory-bounded workhorse. For a DAG, computes for
//    *every* node its reachability bits into one block of target columns, by
//    a single sweep in reverse topological order (children before parents).
//    Sweeping over all blocks costs O(|E| * |V| / 64) word operations but
//    only O(|V| * block_cols / 8) bytes at a time, which is what makes the
//    equivalence-class refinement in reach/ scale past the naive algorithm.
//
// All closures here are *non-empty-path* closures: desc(u) contains u only
// when explicitly seeded (see `self_seed` — used to mark cyclic SCC nodes,
// the "augmented" sets of DESIGN.md §3).

#ifndef QPGC_GRAPH_CLOSURE_H_
#define QPGC_GRAPH_CLOSURE_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/traversal.h"
#include "util/bitset.h"

namespace qpgc {

/// Full non-empty-path closure of g: row u has bit v iff u reaches v via a
/// path of length >= 1. O(|V|(|V| + |E|)) time, |V|^2/8 bytes.
BitMatrix FullClosure(const Graph& g,
                      Direction dir = Direction::kForward);

/// Blocked DAG reachability. Fills `out` (rows = |V|, cols = block_cols) so
/// that row u has bit (t - block_start) iff u reaches DAG node t (non-empty
/// path) for t in [block_start, block_start + block_cols), OR u == t and
/// self_seed[u] is set (augmentation for cyclic SCC nodes).
///
/// `dir` selects descendants (kForward) or ancestors (kBackward).
/// `order` must be a traversal order with dependencies first: reverse
/// topological for kForward, topological for kBackward.
void BlockDescendants(const Graph& dag, std::span<const NodeId> order,
                      std::span<const uint8_t> self_seed, size_t block_start,
                      size_t block_cols, Direction dir, BitMatrix& out);

/// Descendant bitsets for a whole (small) DAG with augmentation, via a single
/// full-width blocked sweep. Convenience wrapper used on compressed graphs,
/// which are small enough for the full matrix.
BitMatrix DagClosure(const Graph& dag, std::span<const uint8_t> self_seed,
                     Direction dir = Direction::kForward);

}  // namespace qpgc

#endif  // QPGC_GRAPH_CLOSURE_H_
