// Copyright 2026 The QPGC Authors.

#include "graph/scc.h"

namespace qpgc {

SccResult ComputeScc(const Graph& g) { return ComputeScc<Graph>(g); }

}  // namespace qpgc
