// Copyright 2026 The QPGC Authors.
//
// The GraphView concept: the read-only adjacency interface every batch
// algorithm is written against. The paper's batch pipeline (compressR,
// maximum-bisimulation compression, the Match fixpoint) never mutates the
// graph — it sweeps adjacency. Abstracting the sweeps behind a concept
// splits the system into
//
//   * a mutable source of truth (`Graph`, vector-of-vectors, O(d) edge
//     updates) that the incremental algorithms of Section 5 keep current,
//   * frozen serving snapshots (`CsrGraph`, flat offset/target arrays,
//     ~40% of the memory and far better sweep locality) that the batch
//     entry points freeze once and run the whole pipeline on.
//
// Any type exposing the seven members below participates — `Graph`,
// `CsrGraph`, the shard-local `ShardView` (graph/shard_view.h), and the
// zero-copy `ReversedView` adapter all do; future substrates (e.g. an
// mmap-backed snapshot) slot in without touching the algorithms. Adjacency
// runs are required to be sorted ascending (every built-in view guarantees
// it), which the algorithms exploit for binary-search edge tests.
//
// Thread-safety contract: the concept is read-only — algorithms templated
// over it never mutate the view, so any number of threads may run batch
// algorithms over one view concurrently, PROVIDED no writer mutates the
// underlying representation meanwhile. The serving layer gets this for
// free by freezing immutable CsrGraph snapshots (serve/snapshot.h); running
// directly on a mutable Graph concurrently with its single writer is a
// race and is never done by the serving read path.

#ifndef QPGC_GRAPH_GRAPH_VIEW_H_
#define QPGC_GRAPH_GRAPH_VIEW_H_

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <span>
#include <unordered_set>

#include "util/common.h"
#include "util/lifetime_annotations.h"

namespace qpgc {

/// The read-only graph interface of the batch layer. `OutNeighbors` /
/// `InNeighbors` return sorted runs viewable as std::span<const NodeId>.
template <typename G>
concept GraphView = requires(const G& g, NodeId u) {
  { g.num_nodes() } -> std::convertible_to<size_t>;
  { g.num_edges() } -> std::convertible_to<size_t>;
  { g.OutNeighbors(u) } -> std::convertible_to<std::span<const NodeId>>;
  { g.InNeighbors(u) } -> std::convertible_to<std::span<const NodeId>>;
  { g.OutDegree(u) } -> std::convertible_to<size_t>;
  { g.InDegree(u) } -> std::convertible_to<size_t>;
  { g.label(u) } -> std::convertible_to<Label>;
};

/// Optional extension of GraphView: a view whose in-adjacency is ONE flat
/// dense array of source ids with per-node runs at stable positions —
/// InEdgeSources()[InEdgeBegin(u) + i] is the source of u's i-th in-edge,
/// and [InEdgeBegin(u), InEdgeBegin(u) + InDegree(u)) is a dense edge-id
/// range. Algorithms that would otherwise build their own edge-id CSR copy
/// (the Paige–Tarjan engine's count records, bisim/paige_tarjan.h) borrow
/// the view's arrays instead, dropping an O(|V| + |E|) copy on CsrGraph and
/// the mmap substrate (storage/mmap_snapshot.h).
template <typename G>
concept DenseInEdgeView = GraphView<G> && requires(const G& g, NodeId u) {
  { g.InEdgeBegin(u) } -> std::convertible_to<size_t>;
  { g.InEdgeSources() } -> std::convertible_to<std::span<const NodeId>>;
};

/// |G| = |V| + |E|, the paper's size measure, for any view.
template <GraphView G>
size_t ViewSize(const G& g) {
  return g.num_nodes() + g.num_edges();
}

/// Calls fn(u, v) for every edge, in (u ascending, v ascending) order —
/// the generic counterpart of Graph::ForEachEdge.
template <GraphView G, typename Fn>
void ForEachEdge(const G& g, Fn&& fn) {
  const size_t n = g.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) fn(u, static_cast<NodeId>(v));
  }
}

/// Edge test by binary search on the sorted out-run. O(log d).
template <GraphView G>
bool ViewHasEdge(const G& g, NodeId u, NodeId v) {
  const auto run = g.OutNeighbors(u);
  return std::binary_search(run.begin(), run.end(), v);
}

/// Number of distinct labels on a view's nodes (kNoLabel counts as one
/// value if any node is unlabeled).
template <GraphView G>
size_t CountDistinctLabels(const G& g) {
  std::unordered_set<Label> seen;
  seen.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) seen.insert(g.label(v));
  return seen.size();
}

/// Zero-copy reversed adapter: OutNeighbors(u) is the base view's
/// InNeighbors(u) and vice versa. Running a forward algorithm on
/// ReversedView(g) computes its in-edge-driven dual without copying or
/// reversing the graph — backward k-bisimulation (the A(k)-index
/// equivalence) is exactly forward refinement over this view.
///
/// GSL Pointer: a non-owning view over `g`, which must outlive it —
/// constructing one over a temporary graph is a compile error under Clang
/// (docs/LIFETIMES.md).
template <GraphView G>
class QPGC_GSL_POINTER ReversedView {
 public:
  explicit ReversedView(const G& g QPGC_LIFETIME_BOUND) : g_(&g) {}

  size_t num_nodes() const { return g_->num_nodes(); }
  size_t num_edges() const { return g_->num_edges(); }
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return g_->InNeighbors(u);
  }
  std::span<const NodeId> InNeighbors(NodeId u) const {
    return g_->OutNeighbors(u);
  }
  size_t OutDegree(NodeId u) const { return g_->InDegree(u); }
  size_t InDegree(NodeId u) const { return g_->OutDegree(u); }
  Label label(NodeId u) const { return g_->label(u); }

 private:
  const G* g_;
};

}  // namespace qpgc

#endif  // QPGC_GRAPH_GRAPH_VIEW_H_
