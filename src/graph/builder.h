// Copyright 2026 The QPGC Authors.
//
// Bulk construction of graphs from edge streams: accumulates edges, then
// sorts and deduplicates once. Much faster than repeated Graph::AddEdge for
// the generators and loaders (O(E log E) total instead of O(E * d)).

#ifndef QPGC_GRAPH_BUILDER_H_
#define QPGC_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"

namespace qpgc {

/// Accumulates nodes/edges and produces a Graph in one shot.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares `n` nodes with kNoLabel.
  explicit GraphBuilder(size_t n) : labels_(n, kNoLabel) {}

  /// Adds a node, returns its id.
  NodeId AddNode(Label label = kNoLabel) {
    labels_.push_back(label);
    return static_cast<NodeId>(labels_.size() - 1);
  }

  /// Sets the label of an existing node.
  void SetLabel(NodeId u, Label l) {
    QPGC_CHECK(u < labels_.size());
    labels_[u] = l;
  }

  /// Queues edge (u, v); duplicates are removed at Build time. Node ids must
  /// already exist (use AddNode or the sizing constructor).
  void AddEdge(NodeId u, NodeId v) {
    QPGC_CHECK(u < labels_.size() && v < labels_.size());
    edges_.emplace_back(u, v);
  }

  /// Queues an edge, growing the node set as needed (for edge-list loading).
  void AddEdgeAutoGrow(NodeId u, NodeId v) {
    const NodeId needed = std::max(u, v);
    if (needed >= labels_.size()) labels_.resize(needed + 1, kNoLabel);
    edges_.emplace_back(u, v);
  }

  size_t num_nodes() const { return labels_.size(); }
  size_t num_queued_edges() const { return edges_.size(); }

  /// Produces the graph. The builder is left empty.
  Graph Build();

 private:
  std::vector<Label> labels_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace qpgc

#endif  // QPGC_GRAPH_BUILDER_H_
