// Copyright 2026 The QPGC Authors.

#include "graph/condensation.h"

#include "graph/builder.h"

namespace qpgc {

Condensation BuildCondensation(const Graph& g) {
  Condensation result;
  result.scc = ComputeScc(g);

  GraphBuilder builder(result.scc.num_components);
  g.ForEachEdge([&](NodeId u, NodeId v) {
    const NodeId cu = result.scc.component[u];
    const NodeId cv = result.scc.component[v];
    if (cu != cv) builder.AddEdge(cu, cv);
  });
  result.dag = builder.Build();
  return result;
}

}  // namespace qpgc
