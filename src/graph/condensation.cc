// Copyright 2026 The QPGC Authors.

#include "graph/condensation.h"

namespace qpgc {

Condensation BuildCondensation(const Graph& g) {
  return BuildCondensation<Graph>(g);
}

}  // namespace qpgc
