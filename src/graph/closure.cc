// Copyright 2026 The QPGC Authors.

#include "graph/closure.h"

#include <deque>

#include "graph/topology.h"

namespace qpgc {

BitMatrix FullClosure(const Graph& g, Direction dir) {
  const size_t n = g.num_nodes();
  BitMatrix closure(n, n);
  std::vector<uint8_t> visited(n, 0);
  std::vector<NodeId> queue;
  for (NodeId s = 0; s < n; ++s) {
    std::fill(visited.begin(), visited.end(), 0);
    queue.clear();
    // Non-empty paths: start from s's neighbors.
    const auto start = dir == Direction::kForward ? g.OutNeighbors(s)
                                                  : g.InNeighbors(s);
    for (NodeId w : start) {
      if (!visited[w]) {
        visited[w] = 1;
        closure.Set(s, w);
        queue.push_back(w);
      }
    }
    for (size_t i = 0; i < queue.size(); ++i) {
      const NodeId x = queue[i];
      const auto nbrs = dir == Direction::kForward ? g.OutNeighbors(x)
                                                   : g.InNeighbors(x);
      for (NodeId w : nbrs) {
        if (!visited[w]) {
          visited[w] = 1;
          closure.Set(s, w);
          queue.push_back(w);
        }
      }
    }
  }
  return closure;
}

void BlockDescendants(const Graph& dag, std::span<const NodeId> order,
                      std::span<const uint8_t> self_seed, size_t block_start,
                      size_t block_cols, Direction dir, BitMatrix& out) {
  QPGC_CHECK(out.rows() == dag.num_nodes() && out.cols() == block_cols);
  out.Reset();
  const size_t block_end = block_start + block_cols;
  for (const NodeId u : order) {
    const auto children =
        dir == Direction::kForward ? dag.OutNeighbors(u) : dag.InNeighbors(u);
    for (const NodeId c : children) {
      out.OrRowInto(c, u);
      if (c >= block_start && c < block_end) out.Set(u, c - block_start);
    }
    if (!self_seed.empty() && self_seed[u] && u >= block_start &&
        u < block_end) {
      out.Set(u, u - block_start);
    }
  }
}

BitMatrix DagClosure(const Graph& dag, std::span<const uint8_t> self_seed,
                     Direction dir) {
  const size_t n = dag.num_nodes();
  BitMatrix out(n, n);
  const std::vector<NodeId> order = dir == Direction::kForward
                                        ? ReverseTopologicalOrder(dag)
                                        : TopologicalOrder(dag);
  BlockDescendants(dag, order, self_seed, 0, n, dir, out);
  return out;
}

}  // namespace qpgc
