// Copyright 2026 The QPGC Authors.
//
// The SCC graph Gscc of Section 5: each strongly connected component becomes
// a single node; edges are deduplicated; intra-SCC edges (including
// self-loops) are dropped, so the condensation is a simple DAG. Whether a
// component was cyclic is retained in `scc.cyclic` — the compression
// algorithms need it to preserve non-empty-path self-reachability.

#ifndef QPGC_GRAPH_CONDENSATION_H_
#define QPGC_GRAPH_CONDENSATION_H_

#include "graph/graph.h"
#include "graph/scc.h"

namespace qpgc {

/// SCC condensation: a simple DAG plus the SCC mapping.
struct Condensation {
  /// DAG over SCC ids (node c of `dag` is SCC c of `scc`). No self-loops.
  Graph dag;
  /// The SCC decomposition (component map, members, cyclic flags).
  SccResult scc;
};

/// Builds the condensation of g. O(|V| + |E| log |E|).
Condensation BuildCondensation(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_GRAPH_CONDENSATION_H_
