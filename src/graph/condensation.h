// Copyright 2026 The QPGC Authors.
//
// The SCC graph Gscc of Section 5: each strongly connected component becomes
// a single node; edges are deduplicated; intra-SCC edges (including
// self-loops) are dropped, so the condensation is a simple DAG. Whether a
// component was cyclic is retained in `scc.cyclic` — the compression
// algorithms need it to preserve non-empty-path self-reachability.
//
// The condensation DAG itself is always a dynamic Graph: it is orders of
// magnitude smaller than the input, and the downstream refinement machinery
// mutates-by-rebuild on it. Only the input is representation-generic.

#ifndef QPGC_GRAPH_CONDENSATION_H_
#define QPGC_GRAPH_CONDENSATION_H_

#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "graph/scc.h"

namespace qpgc {

/// SCC condensation: a simple DAG plus the SCC mapping.
struct Condensation {
  /// DAG over SCC ids (node c of `dag` is SCC c of `scc`). No self-loops.
  Graph dag;
  /// The SCC decomposition (component map, members, cyclic flags).
  SccResult scc;
};

/// Builds the condensation of g. O(|V| + |E| log |E|).
template <GraphView G>
Condensation BuildCondensation(const G& g) {
  Condensation result;
  result.scc = ComputeScc(g);

  GraphBuilder builder(result.scc.num_components);
  ForEachEdge(g, [&](NodeId u, NodeId v) {
    const NodeId cu = result.scc.component[u];
    const NodeId cv = result.scc.component[v];
    if (cu != cv) builder.AddEdge(cu, cv);
  });
  result.dag = builder.Build();
  return result;
}

/// Non-template Graph overload (compiled once in condensation.cc).
Condensation BuildCondensation(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_GRAPH_CONDENSATION_H_
