// Copyright 2026 The QPGC Authors.
//
// The labeled directed graph G = (V, E, L) of the paper (Section 2.1).
//
// Design notes:
//  * Nodes are dense 0-based ids; labels are dense small integers (a label
//    table can map them to strings at the I/O layer).
//  * Adjacency (both out- and in-) is kept in sorted vectors: O(log d) edge
//    tests, O(d) insertion/removal. The incremental algorithms (Section 5)
//    need in-neighbors and efficient single-edge updates; the batch
//    algorithms only read.
//  * Parallel edges are not represented (the paper's E ⊆ V × V is a set);
//    AddEdge returns false on duplicates. Self-loops are allowed.
//  * |G| is measured as |V| + |E| everywhere, matching the paper's
//    compression ratio |Gr| / |G|.

#ifndef QPGC_GRAPH_GRAPH_H_
#define QPGC_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/lifetime_annotations.h"

namespace qpgc {

/// A labeled directed graph with dynamic adjacency. GSL Owner: the span /
/// reference accessors below hand out views into storage this object owns,
/// valid only while it lives and is not mutated (docs/LIFETIMES.md).
class QPGC_GSL_OWNER Graph {
 public:
  Graph() = default;

  /// Creates a graph with `n` nodes, no edges, all labels kNoLabel.
  explicit Graph(size_t n)
      : labels_(n, kNoLabel), out_(n), in_(n), num_edges_(0) {}

  /// Creates a graph with explicit labels (one per node).
  explicit Graph(std::vector<Label> labels)
      : labels_(std::move(labels)),
        out_(labels_.size()),
        in_(labels_.size()),
        num_edges_(0) {}

  // --- Structure ------------------------------------------------------------

  /// Number of nodes |V|.
  size_t num_nodes() const { return out_.size(); }
  /// Number of edges |E|.
  size_t num_edges() const { return num_edges_; }
  /// Graph size |G| = |V| + |E| (the paper's measure).
  size_t size() const { return num_nodes() + num_edges(); }

  /// Appends a new node with the given label; returns its id.
  NodeId AddNode(Label label = kNoLabel);

  /// Inserts edge (u, v). Returns false (and does nothing) if it exists.
  bool AddEdge(NodeId u, NodeId v);

  /// Removes edge (u, v). Returns false if it did not exist.
  bool RemoveEdge(NodeId u, NodeId v);

  /// True iff edge (u, v) exists.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Out-neighbors of u, sorted ascending. The run is invalidated by any
  /// later mutation of u's adjacency (AddEdge/RemoveEdge reallocate).
  std::span<const NodeId> OutNeighbors(NodeId u) const QPGC_LIFETIME_BOUND {
    QPGC_DCHECK(u < out_.size());
    return out_[u];
  }
  /// In-neighbors of u, sorted ascending (same invalidation contract).
  std::span<const NodeId> InNeighbors(NodeId u) const QPGC_LIFETIME_BOUND {
    QPGC_DCHECK(u < in_.size());
    return in_[u];
  }

  size_t OutDegree(NodeId u) const { return out_[u].size(); }
  size_t InDegree(NodeId u) const { return in_[u].size(); }

  // --- Labels ---------------------------------------------------------------

  Label label(NodeId u) const {
    QPGC_DCHECK(u < labels_.size());
    return labels_[u];
  }
  void set_label(NodeId u, Label l) {
    QPGC_DCHECK(u < labels_.size());
    labels_[u] = l;
  }
  const std::vector<Label>& labels() const QPGC_LIFETIME_BOUND {
    return labels_;
  }

  /// Number of distinct labels present (kNoLabel counts as one value if any
  /// node is unlabeled).
  size_t CountDistinctLabels() const;

  // --- Whole-graph operations -------------------------------------------------

  /// Reverses every edge, in place. O(|E|).
  void Reverse() { out_.swap(in_); }

  /// Calls fn(u, v) for every edge, in (u ascending, v ascending) order.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    for (NodeId u = 0; u < out_.size(); ++u) {
      for (NodeId v : out_[u]) fn(u, static_cast<NodeId>(v));
    }
  }

  /// All edges as a vector of pairs (u, v), sorted.
  std::vector<std::pair<NodeId, NodeId>> EdgeList() const;

  /// Structural equality: same node count, labels, and edge set.
  bool operator==(const Graph& other) const {
    return labels_ == other.labels_ && out_ == other.out_;
  }

  /// Heap bytes held by the representation (Fig. 12(d) accounting).
  size_t MemoryBytes() const;

  /// Human-readable one-line summary, e.g. "Graph(|V|=6, |E|=9, |L|=3)".
  std::string DebugString() const;

 private:
  // GraphBuilder::Build fills the adjacency vectors directly from a sorted
  // deduplicated edge list (O(|V| + |E|)), bypassing the per-edge sorted
  // insert that AddEdge pays for the incremental update paths.
  friend class GraphBuilder;

  std::vector<Label> labels_;
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  size_t num_edges_ = 0;
};

}  // namespace qpgc

#endif  // QPGC_GRAPH_GRAPH_H_
