// Copyright 2026 The QPGC Authors.

#include "graph/topology.h"

#include <algorithm>

namespace qpgc {

std::vector<NodeId> TopologicalOrder(const Graph& dag) {
  const size_t n = dag.num_nodes();
  std::vector<uint32_t> in_degree(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : dag.OutNeighbors(u)) {
      // Self-loops are permitted (compressed class graphs mark cyclic classes
      // with one) and ignored for ordering purposes; real multi-node cycles
      // are caught by the size check below.
      if (v != u) ++in_degree[v];
    }
  }
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    if (in_degree[u] == 0) order.push_back(u);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    const NodeId u = order[i];
    for (NodeId v : dag.OutNeighbors(u)) {
      if (v == u) continue;
      if (--in_degree[v] == 0) order.push_back(v);
    }
  }
  QPGC_CHECK(order.size() == n);  // cycle otherwise
  return order;
}

std::vector<NodeId> ReverseTopologicalOrder(const Graph& dag) {
  std::vector<NodeId> order = TopologicalOrder(dag);
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<uint32_t> DagTopoRanks(const Graph& dag) {
  std::vector<uint32_t> rank(dag.num_nodes(), 0);
  for (NodeId c : ReverseTopologicalOrder(dag)) {
    uint32_t r = 0;
    for (NodeId d : dag.OutNeighbors(c)) {
      if (d == c) continue;  // self-loop: same SCC, contributes no rank step
      r = std::max(r, rank[d] + 1);
    }
    rank[c] = r;
  }
  return rank;
}

std::vector<uint32_t> ReachTopoRanks(const Graph& g) {
  const Condensation cond = BuildCondensation(g);
  const std::vector<uint32_t> dag_rank = DagTopoRanks(cond.dag);
  std::vector<uint32_t> rank(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    rank[v] = dag_rank[cond.scc.component[v]];
  }
  return rank;
}

std::vector<uint8_t> WellFounded(const Graph& g) {
  const Condensation cond = BuildCondensation(g);
  const size_t nc = cond.scc.num_components;
  // WF(c) iff c is acyclic and all condensation children are WF.
  std::vector<uint8_t> wf_comp(nc, 0);
  for (NodeId c : ReverseTopologicalOrder(cond.dag)) {
    bool wf = !cond.scc.cyclic[c];
    if (wf) {
      for (NodeId d : cond.dag.OutNeighbors(c)) {
        if (!wf_comp[d]) {
          wf = false;
          break;
        }
      }
    }
    wf_comp[c] = wf ? 1 : 0;
  }
  std::vector<uint8_t> wf(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    wf[v] = wf_comp[cond.scc.component[v]];
  }
  return wf;
}

std::vector<int32_t> BisimRanksFromCondensation(const Condensation& cond) {
  const Graph& dag = cond.dag;
  const size_t nc = cond.scc.num_components;

  std::vector<uint8_t> wf_comp(nc, 0);
  std::vector<int32_t> rank_comp(nc, 0);
  for (NodeId c : ReverseTopologicalOrder(dag)) {
    bool wf = !cond.scc.cyclic[c];
    for (NodeId d : dag.OutNeighbors(c)) {
      if (!wf_comp[d]) wf = false;
    }
    wf_comp[c] = wf ? 1 : 0;

    if (dag.OutDegree(c) == 0) {
      // Sink SCC: rank 0 if the component is a true leaf (acyclic single
      // node), -inf if it is cyclic (members have children inside the SCC).
      rank_comp[c] = cond.scc.cyclic[c] ? kRankNegInf : 0;
    } else {
      int32_t r = kRankNegInf;
      for (NodeId d : dag.OutNeighbors(c)) {
        const int32_t rd = rank_comp[d];
        int32_t contribution;
        if (wf_comp[d]) {
          QPGC_DCHECK(rd != kRankNegInf);
          contribution = rd + 1;
        } else {
          contribution = rd;  // NWF child contributes its own rank
        }
        r = std::max(r, contribution);
      }
      rank_comp[c] = r;
    }
  }

  std::vector<int32_t> rank(cond.scc.component.size());
  for (NodeId v = 0; v < rank.size(); ++v) {
    rank[v] = rank_comp[cond.scc.component[v]];
  }
  return rank;
}

std::vector<int32_t> BisimRanks(const Graph& g) {
  return BisimRanksFromCondensation(BuildCondensation(g));
}

}  // namespace qpgc
