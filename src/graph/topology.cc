// Copyright 2026 The QPGC Authors.

#include "graph/topology.h"

namespace qpgc {

std::vector<NodeId> TopologicalOrder(const Graph& dag) {
  return TopologicalOrder<Graph>(dag);
}

std::vector<NodeId> ReverseTopologicalOrder(const Graph& dag) {
  return ReverseTopologicalOrder<Graph>(dag);
}

std::vector<uint32_t> DagTopoRanks(const Graph& dag) {
  return DagTopoRanks<Graph>(dag);
}

std::vector<uint32_t> ReachTopoRanks(const Graph& g) {
  return ReachTopoRanks<Graph>(g);
}

std::vector<uint8_t> WellFounded(const Graph& g) {
  return WellFounded<Graph>(g);
}

std::vector<int32_t> BisimRanksFromCondensation(const Condensation& cond) {
  const Graph& dag = cond.dag;
  const size_t nc = cond.scc.num_components;

  std::vector<uint8_t> wf_comp(nc, 0);
  std::vector<int32_t> rank_comp(nc, 0);
  for (NodeId c : ReverseTopologicalOrder(dag)) {
    bool wf = !cond.scc.cyclic[c];
    for (NodeId d : dag.OutNeighbors(c)) {
      if (!wf_comp[d]) wf = false;
    }
    wf_comp[c] = wf ? 1 : 0;

    if (dag.OutDegree(c) == 0) {
      // Sink SCC: rank 0 if the component is a true leaf (acyclic single
      // node), -inf if it is cyclic (members have children inside the SCC).
      rank_comp[c] = cond.scc.cyclic[c] ? kRankNegInf : 0;
    } else {
      int32_t r = kRankNegInf;
      for (NodeId d : dag.OutNeighbors(c)) {
        const int32_t rd = rank_comp[d];
        int32_t contribution;
        if (wf_comp[d]) {
          QPGC_DCHECK(rd != kRankNegInf);
          contribution = rd + 1;
        } else {
          contribution = rd;  // NWF child contributes its own rank
        }
        r = std::max(r, contribution);
      }
      rank_comp[c] = r;
    }
  }

  std::vector<int32_t> rank(cond.scc.component.size());
  for (NodeId v = 0; v < rank.size(); ++v) {
    rank[v] = rank_comp[cond.scc.component[v]];
  }
  return rank;
}

std::vector<int32_t> BisimRanks(const Graph& g) {
  return BisimRanks<Graph>(g);
}

}  // namespace qpgc
