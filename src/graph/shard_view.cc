// Copyright 2026 The QPGC Authors.

#include "graph/shard_view.h"

#include <algorithm>
#include <cstring>

#include "graph/scc.h"
#include "util/hash.h"

namespace qpgc {

ShardPartition ShardPartition::Hash(size_t num_nodes, uint32_t k,
                                    uint64_t seed) {
  QPGC_CHECK(k >= 1);
  ShardPartition part;
  part.num_shards = k;
  part.shard_of.resize(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    part.shard_of[v] =
        static_cast<uint32_t>(Mix64(HashCombine(seed, v)) % k);
  }
  return part;
}

ShardPartition ShardPartition::Contiguous(size_t num_nodes, uint32_t k) {
  QPGC_CHECK(k >= 1);
  ShardPartition part;
  part.num_shards = k;
  part.shard_of.resize(num_nodes);
  const size_t span = (num_nodes + k - 1) / k;
  for (NodeId v = 0; v < num_nodes; ++v) {
    part.shard_of[v] = static_cast<uint32_t>(span == 0 ? 0 : v / span);
  }
  return part;
}

ShardPartition ShardPartition::Structure(const Graph& g, uint32_t k) {
  QPGC_CHECK(k >= 1);
  const size_t n = g.num_nodes();
  ShardPartition part;
  part.num_shards = k;
  part.shard_of.assign(n, 0);
  if (n == 0 || k == 1) return part;

  // Tarjan assigns component ids in reverse topological order, so iterating
  // components from high id to low id walks the condensation topologically.
  // Bucketing nodes by component id (a counting sort — members stay in
  // ascending node order within a component) therefore yields an order where
  // every SCC is one consecutive run and inter-SCC edges point forward.
  const SccResult scc = ComputeScc(g);
  std::vector<uint32_t> bucket_start(scc.num_components + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    ++bucket_start[scc.num_components - 1 - scc.component[v]];
  }
  uint32_t acc = 0;
  for (size_t c = 0; c <= scc.num_components; ++c) {
    const uint32_t count = c < scc.num_components ? bucket_start[c] : 0;
    bucket_start[c] = acc;
    acc += count;
  }
  std::vector<NodeId> order(n);
  {
    std::vector<uint32_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      order[cursor[scc.num_components - 1 - scc.component[v]]++] = v;
    }
  }
  // Balanced contiguous cut of the structural order, with chunk boundaries
  // snapped forward to the next SCC boundary when that keeps the chunk
  // within 1.5x of the ideal span — small cycles stay co-sharded, while an
  // SCC larger than the slack still splits rather than starving later
  // shards.
  const size_t span = (n + k - 1) / k;
  const size_t slack = span + span / 2;
  size_t pos = 0;
  for (uint32_t shard = 0; shard < k && pos < n; ++shard) {
    size_t end = shard + 1 == k ? n : std::min(n, pos + span);
    if (shard + 1 < k) {
      // Advance to the end of the SCC straddling `end`, within the slack.
      size_t snapped = end;
      while (snapped < n && snapped > pos &&
             scc.component[order[snapped]] ==
                 scc.component[order[snapped - 1]]) {
        ++snapped;
      }
      if (snapped - pos <= slack) end = snapped;
    }
    for (size_t i = pos; i < end; ++i) part.shard_of[order[i]] = shard;
    pos = end;
  }
  return part;
}

bool ParsePartitionerKind(const char* name, PartitionerKind* out) {
  if (std::strcmp(name, "hash") == 0) {
    *out = PartitionerKind::kHash;
  } else if (std::strcmp(name, "contiguous") == 0) {
    *out = PartitionerKind::kContiguous;
  } else if (std::strcmp(name, "structure") == 0) {
    *out = PartitionerKind::kStructure;
  } else {
    return false;
  }
  return true;
}

const char* PartitionerKindName(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kHash:
      return "hash";
    case PartitionerKind::kContiguous:
      return "contiguous";
    case PartitionerKind::kStructure:
      return "structure";
  }
  return "hash";
}

ShardPartition BuildPartition(PartitionerKind kind, const Graph& g, uint32_t k,
                              uint64_t hash_seed) {
  switch (kind) {
    case PartitionerKind::kContiguous:
      return ShardPartition::Contiguous(g.num_nodes(), k);
    case PartitionerKind::kStructure:
      return ShardPartition::Structure(g, k);
    case PartitionerKind::kHash:
      break;
  }
  return ShardPartition::Hash(g.num_nodes(), k, hash_seed);
}

}  // namespace qpgc
