// Copyright 2026 The QPGC Authors.

#include "graph/shard_view.h"

#include "util/hash.h"

namespace qpgc {

ShardPartition ShardPartition::Hash(size_t num_nodes, uint32_t k,
                                    uint64_t seed) {
  QPGC_CHECK(k >= 1);
  ShardPartition part;
  part.num_shards = k;
  part.shard_of.resize(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    part.shard_of[v] =
        static_cast<uint32_t>(Mix64(HashCombine(seed, v)) % k);
  }
  return part;
}

ShardPartition ShardPartition::Contiguous(size_t num_nodes, uint32_t k) {
  QPGC_CHECK(k >= 1);
  ShardPartition part;
  part.num_shards = k;
  part.shard_of.resize(num_nodes);
  const size_t span = (num_nodes + k - 1) / k;
  for (NodeId v = 0; v < num_nodes; ++v) {
    part.shard_of[v] = static_cast<uint32_t>(span == 0 ? 0 : v / span);
  }
  return part;
}

}  // namespace qpgc
