// Copyright 2026 The QPGC Authors.

#include "graph/stats.h"

#include <algorithm>
#include <cstdio>

#include "graph/scc.h"

namespace qpgc {

GraphStats ComputeStats(const Graph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.num_labels = g.CountDistinctLabels();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    s.max_out_degree = std::max(s.max_out_degree, g.OutDegree(u));
    s.max_in_degree = std::max(s.max_in_degree, g.InDegree(u));
    if (g.InDegree(u) == 0) ++s.num_sources;
    if (g.OutDegree(u) == 0) ++s.num_sinks;
  }
  s.avg_degree = s.num_nodes == 0
                     ? 0.0
                     : static_cast<double>(s.num_edges) /
                           static_cast<double>(s.num_nodes);
  const SccResult scc = ComputeScc(g);
  s.num_sccs = scc.num_components;
  size_t cyclic_nodes = 0;
  for (size_t c = 0; c < scc.num_components; ++c) {
    s.largest_scc = std::max(s.largest_scc, scc.members[c].size());
    if (scc.cyclic[c]) cyclic_nodes += scc.members[c].size();
  }
  s.cyclic_node_fraction =
      s.num_nodes == 0 ? 0.0
                       : static_cast<double>(cyclic_nodes) /
                             static_cast<double>(s.num_nodes);
  return s;
}

std::string FormatStats(const GraphStats& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "|V|=%zu |E|=%zu |L|=%zu avg_deg=%.2f max_out=%zu max_in=%zu\n"
      "SCCs=%zu largest_scc=%zu cyclic_frac=%.3f sources=%zu sinks=%zu",
      s.num_nodes, s.num_edges, s.num_labels, s.avg_degree, s.max_out_degree,
      s.max_in_degree, s.num_sccs, s.largest_scc, s.cyclic_node_fraction,
      s.num_sources, s.num_sinks);
  return std::string(buf);
}

}  // namespace qpgc
