// Copyright 2026 The QPGC Authors.
//
// Topological orders and the two rank functions the paper's incremental
// algorithms are built on:
//
//  * r(s)  — the *topological rank* of Section 5.1: r(s) = 0 if s's SCC has
//    no child in the condensation; nodes of one SCC share a rank; otherwise
//    r(s) = max over children + 1. Lemma 7: (u,v) in Re implies r(u) = r(v).
//
//  * rb(v) — the *bisimulation rank* of Section 5.2 (after Dovier, Piazza &
//    Policriti): rb(v) = 0 for leaves; rb(v) = -inf for nodes of a cyclic
//    sink SCC; otherwise rb(v) = max of (rb(child)+1) over well-founded
//    children SCCs and rb(child) over non-well-founded ones. Lemma 9:
//    bisimilar nodes have equal rank, and a node is only affected by updates
//    of strictly lower rank.

#ifndef QPGC_GRAPH_TOPOLOGY_H_
#define QPGC_GRAPH_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "graph/condensation.h"
#include "graph/graph.h"

namespace qpgc {

/// Sentinel for rb = -infinity (cyclic sink SCCs).
inline constexpr int32_t kRankNegInf = INT32_MIN;

/// Topological order of a DAG (every edge goes from an earlier to a later
/// position). Aborts if the graph has a cycle — callers pass condensations.
std::vector<NodeId> TopologicalOrder(const Graph& dag);

/// Reverse topological order (children before parents).
std::vector<NodeId> ReverseTopologicalOrder(const Graph& dag);

/// The paper's topological rank r for every node of g (Section 5.1).
std::vector<uint32_t> ReachTopoRanks(const Graph& g);

/// Topological ranks computed directly on a condensation DAG (rank of each
/// DAG node; used when the condensation is already available).
std::vector<uint32_t> DagTopoRanks(const Graph& dag);

/// Bisimulation ranks rb for every node of g (Section 5.2). Requires the
/// condensation, which the caller typically already has.
std::vector<int32_t> BisimRanks(const Graph& g);

/// Same, but reusing a precomputed condensation of g.
std::vector<int32_t> BisimRanksFromCondensation(const Condensation& cond);

/// Well-foundedness per node: WF(v) iff v cannot reach any cycle.
std::vector<uint8_t> WellFounded(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_GRAPH_TOPOLOGY_H_
